package piano

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VI), plus the ablation battery and protocol micro-benches.
// Workload benchmarks run reduced trial counts per iteration so the suite
// stays tractable; `cmd/piano-experiments` runs the paper's full campaign.
//
// Regeneration map:
//
//	Figure 1   → BenchmarkFig1DistanceErrors
//	Figure 2a  → BenchmarkFig2aMultiUser
//	Figure 2b  → BenchmarkFig2bProtocolComparison
//	Table I    → BenchmarkTable1FRR
//	Table II   → BenchmarkTable2FAR
//	§VI-B wall → BenchmarkWallAndRange
//	§VI-E      → BenchmarkSecurityCampaign
//	§VI-D      → BenchmarkEfficiency
//	DESIGN.md  → BenchmarkAblation*
import (
	"testing"

	"github.com/acoustic-auth/piano/internal/experiments"
	"github.com/acoustic-auth/piano/internal/stats"
)

// benchOpts keeps per-iteration work bounded.
var benchOpts = experiments.Options{Trials: 2, Seed: 17}

func BenchmarkFig1DistanceErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2aMultiUser(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2a(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2bProtocolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2b(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// tableSigmas are representative measured σ_d values (meters) so the table
// benches exercise the decision-model evaluation in isolation.
var tableSigmas = []experiments.EnvironmentResult{
	{Label: "Office", SigmaM: 0.066},
	{Label: "Home", SigmaM: 0.125},
	{Label: "Street", SigmaM: 0.158},
	{Label: "Restaurant", SigmaM: 0.104},
	{Label: "Multiple users", SigmaM: 0.090},
}

func BenchmarkTable1FRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.BuildTables(tableSigmas)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 5 {
			b.Fatal("row count")
		}
	}
}

func BenchmarkTable2FAR(b *testing.B) {
	m := stats.DecisionModel{SigmaM: 0.07, MaxDetectableM: 2.5, BTRangeM: 10}
	for i := 0; i < b.N; i++ {
		for _, tau := range experiments.PaperThresholds {
			if _, err := m.FAR(tau); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWallAndRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunWall(experiments.Options{Trials: 1, Seed: 17}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSecurityCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSecurity(experiments.Options{Trials: 2, Seed: 17}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEfficiency(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRandomizationDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationRandomizationDomain(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSanityCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationSanityCheck(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTheta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationTheta(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationStep(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOneWay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationOneWay(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCandidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationCandidates(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuthentication measures one full end-to-end PIANO session
// (world render + four detections + protocol messaging).
func BenchmarkAuthentication(b *testing.B) {
	dep, err := NewDeployment(DefaultConfig(),
		DeviceSpec{Name: "speaker", X: 0, Y: 0},
		DeviceSpec{Name: "watch", X: 0.8, Y: 0})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Authenticate(); err != nil {
			b.Fatal(err)
		}
	}
}
