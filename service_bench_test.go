package piano

import (
	"sync"
	"testing"
)

// benchRequests is the BenchmarkService workload: 8 device pairs at
// staggered distances, one session each.
func benchRequests() []AuthRequest {
	reqs := make([]AuthRequest, 8)
	for i := range reqs {
		reqs[i] = AuthRequest{
			Auth:  DeviceSpec{Name: "hub", X: 0, Y: 0, ClockSkewPPM: float64(4 + i)},
			Vouch: DeviceSpec{Name: "watch", X: 0.3 + 0.12*float64(i), Y: 0, ClockSkewPPM: -float64(6 + i)},
			Seed:  int64(500 + i),
		}
	}
	return reqs
}

// BenchmarkService compares session throughput of the serial
// one-Deployment-at-a-time path against the batched Service with all 8
// sessions in flight (the ISSUE-2 acceptance workload). One benchmark
// iteration = 8 sessions; sessions/op is what to compare. On a 1-core
// machine the two run at parity (the service's win there is pooled scratch,
// not parallelism); the concurrent variant scales with cores. Recorded
// numbers live in BENCH_service.json / PERFORMANCE.md.
func BenchmarkService(b *testing.B) {
	reqs := benchRequests()

	b.Run("serial-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				cfg := DefaultConfig()
				cfg.Seed = req.Seed
				dep, err := NewDeployment(cfg, req.Auth, req.Vouch)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dep.Authenticate(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs)), "sessions/op")
	})

	b.Run("concurrent-8", func(b *testing.B) {
		svcCfg := DefaultServiceConfig()
		svcCfg.MaxSessions = len(reqs)
		svc, err := NewService(svcCfg)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, req := range reqs {
				wg.Add(1)
				go func(req AuthRequest) {
					defer wg.Done()
					if _, err := svc.Authenticate(req); err != nil {
						b.Error(err)
					}
				}(req)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(len(reqs)), "sessions/op")
	})
}
