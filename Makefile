GO ?= go

.PHONY: all build vet test test-race test-chaos test-lifecycle test-loss test-fuzz staticcheck bench bench-smoke bench-auth bench-detect bench-fine bench-render bench-service bench-online bench-lifecycle bench-loadgen bench-loss cover docs-check clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector: enforces that concurrent service
# sessions are data-race-free and bit-identical to serial runs.
test-race:
	$(GO) test -race ./...

# Chaos suite under the race detector: concurrent fault storms (slot
# starvation, mid-scan cancellation, worker panics, slow-scan stalls) must
# resolve every request to a typed error or a bit-identical result and
# leave the service serviceable (ARCHITECTURE.md "Failure semantics").
test-chaos:
	$(GO) test -race -run TestChaos ./internal/service/ ./internal/faultinject/

# Session-lifecycle suite under the race detector: watchdog reaping
# (stalled/expired sessions resolve typed, slots come back after abandoned-
# session storms), arrival-model determinism (jittered live-microphone
# feeds decide bit-identically to batch), and client retry/backoff.
test-lifecycle:
	$(GO) test -race -run 'TestLifecycle|TestChaosLifecycle|TestArrival|TestSessionArrival|TestRetry|TestServiceLifecycle' ./internal/service/ ./internal/arrival/ .

# Lossy-transport suite under the race detector: framed ingestion must be
# bit-identical to batch on a clean wire, deterministic (decide-or-typed-
# refusal) under seeded loss at any GOMAXPROCS, and the loss-storm chaos
# test must leak no slots (ARCHITECTURE.md "Lossy transport").
test-loss:
	$(GO) test -race -run 'TestSessionFramed|TestSessionGapRepair|TestChaosLossStorm' ./internal/service/
	$(GO) test -race ./internal/frame/ ./internal/arrival/

# Fuzz smoke against the two wire-facing decoders — the Step-II descriptor
# (sigref trust boundary) and the lossy-transport frame codec: ten seconds
# of coverage-guided mutation each on top of the seed corpora, which also
# run as plain tests in every `make test`.
test-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshalSignal -fuzztime 10s ./internal/sigref/
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime 10s ./internal/frame/

# Pinned staticcheck alongside go vet (CI installs the pin; locally the
# target is a no-op with a hint when the binary is absent, because the
# build environment may have no network).
STATICCHECK_VERSION ?= 2025.1
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; run: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

# Full benchmark suite with allocation stats (slow: runs every paper figure).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One-iteration smoke run of every benchmark: catches benchmarks that crash
# or regress catastrophically without paying the full measurement cost (CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The authentication hot path against the recorded seed baseline
# (BENCH_seed.json / PERFORMANCE.md).
bench-auth:
	$(GO) test -run '^$$' -bench 'BenchmarkAuthentication' -benchmem -benchtime 10x .

# The batched multi-session service against the serial loop
# (BENCH_service.json / PERFORMANCE.md).
bench-service:
	$(GO) test -run '^$$' -bench 'BenchmarkService' -benchmem -benchtime 5x .

# The band-limited streaming scan engine: detection end-to-end (default
# config + sliding-vs-exact at a sub-break-even coarse step) and the dsp
# micro-benches behind the break-even constants (BENCH_stream.json /
# PERFORMANCE.md).
bench-detect:
	$(GO) test -run '^$$' -bench 'BenchmarkDetectAll' -benchmem -benchtime 5x ./internal/detect/
	$(GO) test -run '^$$' -bench 'PowerSpectrumInto|PowerSpectrumBandInto|SlidingBandDFT|BandScorer' -benchmem ./internal/dsp/

# The streaming fine scan and zero-copy PCM ingestion: streamed
# (sliding-DFT fine hops + exact-at-peak re-check, the default-config
# production path) vs forced all-exact fine scan, plus the int16 ingestion
# path (BENCH_finescan.json / PERFORMANCE.md).
bench-fine:
	$(GO) test -run '^$$' -bench 'BenchmarkDetectAllFine|BenchmarkDetectAllPCM' -benchmem -count=3 -benchtime 5x ./internal/detect/

# The online streaming session: decision latency from the last needed
# sample's arrival, streaming replay of the full recording, and the batch
# path on the same request (BENCH_online.json / PERFORMANCE.md).
bench-online:
	$(GO) test -run '^$$' -bench 'BenchmarkOnline' -benchmem -count=3 -benchtime 10x .

# Lifecycle-watchdog overhead: the batch hot path and the streaming replay
# with generous idle/lifetime bounds armed (watchdog goroutine live) vs the
# PR-7 no-watchdog paths — must stay within noise (BENCH_lifecycle.json /
# PERFORMANCE.md).
bench-lifecycle:
	$(GO) test -run '^$$' -bench 'BenchmarkAuthentication$$|BenchmarkOnline' -benchmem -count=3 -benchtime 10x .

# The multi-core load-harness scaling grid: piano-loadgen drives closed-loop
# saturation workloads across GOMAXPROCS × concurrency × {sharded, unsharded}
# × {batch, stream} and records BENCH_loadgen.json (PERFORMANCE.md "PR 9").
bench-loadgen:
	$(GO) run ./cmd/piano-loadgen -grid -json BENCH_loadgen.json

# Framing overhead on clean transport: the framed decision-latency path vs
# the plain Feed path — the delta must stay under 2% (BENCH_loss.json /
# PERFORMANCE.md "PR 10").
bench-loss:
	$(GO) test -run '^$$' -bench 'BenchmarkOnline(Framed)?/decision-latency' -benchmem -count=3 -benchtime 20x .

# The acoustic renderer: per-tap (RenderNaive oracle) vs composite-kernel
# mixing, interleaved A/B at several tap counts (BENCH_render.json /
# PERFORMANCE.md).
bench-render:
	$(GO) test -run '^$$' -bench 'BenchmarkRenderMix|BenchmarkRender$$|BenchmarkRenderNaive' -benchmem -count=3 -benchtime 20x ./internal/world/

# Documentation gate: vet + the stdlib-only lint in tools/docscheck
# (package comments everywhere, doc.go + exported-comment rules for library
# packages, README/ARCHITECTURE presence). CI runs this on every push.
docs-check:
	$(GO) vet ./...
	$(GO) run ./tools/docscheck

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
