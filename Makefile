GO ?= go

.PHONY: all build vet test bench bench-smoke bench-auth cover clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark suite with allocation stats (slow: runs every paper figure).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One-iteration smoke run of every benchmark: catches benchmarks that crash
# or regress catastrophically without paying the full measurement cost (CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The authentication hot path against the recorded seed baseline
# (BENCH_seed.json / PERFORMANCE.md).
bench-auth:
	$(GO) test -run '^$$' -bench 'BenchmarkAuthentication' -benchmem -benchtime 10x .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
