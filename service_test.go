package piano

import (
	"math"
	"sync"
	"testing"
)

// serviceRequests builds a mixed workload: distances across the decision
// boundary, distinct seeds and skews, one session with an interferer and
// one with a per-session threshold override.
func serviceRequests() []AuthRequest {
	reqs := make([]AuthRequest, 6)
	for i := range reqs {
		reqs[i] = AuthRequest{
			Auth:  DeviceSpec{Name: "hub", X: 0, Y: 0, ClockSkewPPM: 15},
			Vouch: DeviceSpec{Name: "watch", X: 0.3 + 0.4*float64(i), Y: 0, ClockSkewPPM: -20},
			Seed:  int64(70 + i),
		}
	}
	reqs[2].Interferers = []DeviceSpec{{Name: "colleague", X: 2.0, Y: 1.5}}
	reqs[4].ThresholdM = 0.5
	return reqs
}

// deploymentRun reproduces one AuthRequest through the serial Deployment
// path — the reference the Service promises to match bit for bit.
func deploymentRun(t testing.TB, req AuthRequest) *Decision {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = req.Seed
	if req.ThresholdM > 0 {
		cfg.ThresholdM = req.ThresholdM
	}
	if req.Environment != 0 {
		cfg.Environment = req.Environment
	}
	dep, err := NewDeployment(cfg, req.Auth, req.Vouch)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range req.Interferers {
		if err := dep.AddInterferer(in.Name, in.X, in.Y); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestServiceMatchesDeploymentSerially: session-by-session, the batched
// service reproduces the public serial path bit for bit.
func TestServiceMatchesDeploymentSerially(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i, req := range serviceRequests() {
		want := deploymentRun(t, req)
		got, err := svc.Authenticate(req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Granted != want.Granted || got.Reason != want.Reason ||
			math.Float64bits(got.DistanceM) != math.Float64bits(want.DistanceM) ||
			math.Float64bits(got.AuthTimeSec) != math.Float64bits(want.AuthTimeSec) {
			t.Fatalf("request %d: service %+v != deployment %+v", i, got, want)
		}
	}
}

// TestServiceConcurrentSessionsBitIdentical is the concurrency gate (run
// with -race in CI): ≥4 sessions in flight at once, every result
// bit-identical to its serial-run counterpart.
func TestServiceConcurrentSessionsBitIdentical(t *testing.T) {
	reqs := serviceRequests()
	want := make([]*Decision, len(reqs))
	for i, req := range reqs {
		want[i] = deploymentRun(t, req)
	}

	svc, err := NewService(ServiceConfig{Workers: 2, MaxSessions: len(reqs)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	got := make([]*Decision, len(reqs))
	errs := make([]error, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = svc.Authenticate(reqs[i])
		}(i)
	}
	wg.Wait()

	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got[i].Granted != want[i].Granted || got[i].Reason != want[i].Reason ||
			math.Float64bits(got[i].DistanceM) != math.Float64bits(want[i].DistanceM) ||
			math.Float64bits(got[i].AuthTimeSec) != math.Float64bits(want[i].AuthTimeSec) {
			t.Fatalf("request %d: concurrent service %+v != serial deployment %+v", i, got[i], want[i])
		}
	}
	if n := svc.Sessions(); n != uint64(len(reqs)) {
		t.Fatalf("sessions = %d, want %d", n, len(reqs))
	}
}

// TestDeploymentConcurrentCallsSerialize: a Deployment shared between
// goroutines (the weblogin pattern) must be race-free — sessions serialize
// internally.
func TestDeploymentConcurrentCallsSerialize(t *testing.T) {
	dep := newDeploymentT(t, DefaultConfig(), 0.8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := dep.Authenticate(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if dep.Energy().Authentications != 4 {
		t.Fatalf("authCount = %d", dep.Energy().Authentications)
	}
}
