package piano

import (
	"errors"
	"math"
	"testing"
)

// TestAuthSessionMatchesAuthenticate: the public streaming session must
// decide bit-identically to the batch Authenticate call for the same
// request, both when fed to the early horizon and when fed everything.
func TestAuthSessionMatchesAuthenticate(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := AuthRequest{
		Auth:  DeviceSpec{Name: "hub"},
		Vouch: DeviceSpec{Name: "watch", X: 0.7},
		Seed:  11,
	}
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	for _, early := range []bool{false, true} {
		sess, err := svc.OpenSession(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, role := range []Role{RoleAuth, RoleVouch} {
			rec := sess.Recording(role)
			limit := len(rec)
			if early {
				limit = sess.EarlyFeedLen(role)
				if limit >= len(rec) {
					t.Fatalf("horizon %d does not precede recording end %d", limit, len(rec))
				}
			}
			for at := 0; at < limit; at += 4096 {
				end := at + 4096
				if end > limit {
					end = limit
				}
				if err := sess.Feed(role, rec[at:end]); err != nil {
					t.Fatalf("early=%v feed %v: %v", early, role, err)
				}
			}
		}
		got, err := sess.Result()
		if err != nil {
			t.Fatalf("early=%v: %v", early, err)
		}
		if got.Granted != want.Granted || got.Reason != want.Reason ||
			math.Float64bits(got.DistanceM) != math.Float64bits(want.DistanceM) ||
			math.Float64bits(got.AuthTimeSec) != math.Float64bits(want.AuthTimeSec) {
			t.Fatalf("early=%v: streamed decision %+v != batch %+v", early, got, want)
		}
	}
}

// TestAuthSessionTypedErrors pins the public sentinels: premature Result,
// over-length feed, post-decision feed, and post-Close admission.
func TestAuthSessionTypedErrors(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := AuthRequest{
		Auth:  DeviceSpec{Name: "hub"},
		Vouch: DeviceSpec{Name: "watch", X: 0.7},
		Seed:  12,
	}
	sess, err := svc.OpenSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Result(); !errors.Is(err, ErrNeedMoreAudio) {
		t.Fatalf("empty Result: %v, want ErrNeedMoreAudio", err)
	}
	rec := sess.Recording(RoleAuth)
	if err := sess.Feed(RoleAuth, make([]int16, len(rec)+1)); !errors.Is(err, ErrFeedOverflow) {
		t.Fatalf("over-length feed: %v, want ErrFeedOverflow", err)
	}
	for _, role := range []Role{RoleAuth, RoleVouch} {
		if err := sess.Feed(role, sess.Recording(role)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Result(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Feed(RoleVouch, make([]int16, 1)); !errors.Is(err, ErrStreamDecided) {
		t.Fatalf("post-decision feed: %v, want ErrStreamDecided", err)
	}
	svc.Close()
	if _, err := svc.OpenSession(req); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close open: %v, want ErrClosed", err)
	}
}
