package energy

import (
	"math"
	"strings"
	"testing"
)

func TestBatteryBasics(t *testing.T) {
	if _, err := NewBattery(0); err == nil {
		t.Error("zero capacity accepted")
	}
	b, err := NewBattery(1000)
	if err != nil {
		t.Fatal(err)
	}
	b.Drain(10)
	b.Drain(-5) // ignored
	if b.UsedJoules() != 10 {
		t.Fatalf("used %g", b.UsedJoules())
	}
	if math.Abs(b.UsedPercent()-1.0) > 1e-12 {
		t.Fatalf("percent %g", b.UsedPercent())
	}
	if b.CapacityJoules() != 1000 {
		t.Fatal("capacity accessor")
	}
}

func TestGalaxyS4Capacity(t *testing.T) {
	// 9.88 Wh ≈ 35.6 kJ.
	if GalaxyS4CapacityJoules < 35000 || GalaxyS4CapacityJoules > 36000 {
		t.Fatalf("capacity %g out of S4 range", GalaxyS4CapacityJoules)
	}
}

func TestPowerModelValidate(t *testing.T) {
	if err := DefaultPowerModel().Validate(); err != nil {
		t.Fatal(err)
	}
	m := DefaultPowerModel()
	m.CPUW = 0
	if err := m.Validate(); err == nil {
		t.Error("zero cpu accepted")
	}
	if _, err := NewLedger(m); err == nil {
		t.Error("ledger accepted bad model")
	}
}

func TestLedgerAccounting(t *testing.T) {
	l, err := NewLedger(DefaultPowerModel())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultPowerModel()
	l.RecordMic(10)
	l.RecordSpeaker(2)
	l.RecordCPU(1)
	l.RecordBluetooth(1)
	l.RecordBaseline(10)
	l.RecordMic(-1) // ignored
	want := m.MicW*10 + m.SpeakerW*2 + m.CPUW*1 + m.BluetoothW*1 + m.BaselineW*10
	if got := l.TotalJoules(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("total %g, want %g", got, want)
	}
	bd := l.Breakdown()
	for _, comp := range []string{"mic", "speaker", "cpu", "bluetooth", "baseline"} {
		if !strings.Contains(bd, comp) {
			t.Errorf("breakdown missing %s: %s", comp, bd)
		}
	}
	b, err := NewBattery(GalaxyS4CapacityJoules)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.DrainInto(b); math.Abs(got-want) > 1e-9 {
		t.Fatal("DrainInto total mismatch")
	}
	if math.Abs(b.UsedJoules()-want) > 1e-9 {
		t.Fatal("battery not drained")
	}
	if l.DrainInto(nil) != l.TotalJoules() {
		t.Fatal("nil battery should still report total")
	}
	if l.Model().CPUW != DefaultPowerModel().CPUW {
		t.Fatal("model accessor")
	}
}
