package energy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// GalaxyS4CapacityJoules is the S4's 2600 mAh battery at 3.8 V nominal:
// 2.6 Ah · 3.8 V · 3600 s/h ≈ 35,568 J.
const GalaxyS4CapacityJoules = 2.6 * 3.8 * 3600

// PowerModel holds component draw in watts while active. Values follow
// published smartphone component measurements (PowerTutor-era hardware).
type PowerModel struct {
	// MicW is the microphone + ADC capture path draw.
	MicW float64
	// SpeakerW is the speaker amplifier draw while playing.
	SpeakerW float64
	// CPUW is the application-processor draw during FFT scanning.
	CPUW float64
	// BluetoothW is the radio draw during message exchange.
	BluetoothW float64
	// BaselineW is the app's residual draw (wakelock, scheduling) for the
	// whole authentication span.
	BaselineW float64
}

// DefaultPowerModel returns the calibrated Galaxy-S4-class model.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		MicW:       0.12,
		SpeakerW:   0.45,
		CPUW:       1.2,
		BluetoothW: 0.10,
		BaselineW:  0.30,
	}
}

// Validate rejects non-positive component draws.
func (m PowerModel) Validate() error {
	for name, w := range map[string]float64{
		"mic": m.MicW, "speaker": m.SpeakerW, "cpu": m.CPUW,
		"bluetooth": m.BluetoothW, "baseline": m.BaselineW,
	} {
		if w <= 0 {
			return fmt.Errorf("energy: %s power %g must be positive", name, w)
		}
	}
	return nil
}

// Battery tracks cumulative drain against a capacity.
type Battery struct {
	mu       sync.Mutex
	capacity float64
	used     float64
}

// NewBattery builds a battery with the given capacity in joules.
func NewBattery(capacityJoules float64) (*Battery, error) {
	if capacityJoules <= 0 {
		return nil, errors.New("energy: capacity must be positive")
	}
	return &Battery{capacity: capacityJoules}, nil
}

// Drain consumes j joules (negative values are ignored).
func (b *Battery) Drain(j float64) {
	if j <= 0 {
		return
	}
	b.mu.Lock()
	b.used += j
	b.mu.Unlock()
}

// UsedJoules returns cumulative consumption.
func (b *Battery) UsedJoules() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// UsedPercent returns consumption as a percentage of capacity.
func (b *Battery) UsedPercent() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used / b.capacity * 100
}

// CapacityJoules returns the battery capacity.
func (b *Battery) CapacityJoules() float64 { return b.capacity }

// Ledger accumulates per-component energy for a run of authentications.
type Ledger struct {
	mu     sync.Mutex
	model  PowerModel
	joules map[string]float64
}

// NewLedger builds a ledger over the given power model.
func NewLedger(model PowerModel) (*Ledger, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Ledger{model: model, joules: make(map[string]float64)}, nil
}

// Model returns the ledger's power model.
func (l *Ledger) Model() PowerModel { return l.model }

// add records durSec seconds of a component drawing watts.
func (l *Ledger) add(component string, watts, durSec float64) {
	if durSec <= 0 {
		return
	}
	l.mu.Lock()
	l.joules[component] += watts * durSec
	l.mu.Unlock()
}

// RecordMic accounts for capture time.
func (l *Ledger) RecordMic(durSec float64) { l.add("mic", l.model.MicW, durSec) }

// RecordSpeaker accounts for playback time.
func (l *Ledger) RecordSpeaker(durSec float64) { l.add("speaker", l.model.SpeakerW, durSec) }

// RecordCPU accounts for detection/compute time.
func (l *Ledger) RecordCPU(durSec float64) { l.add("cpu", l.model.CPUW, durSec) }

// RecordBluetooth accounts for radio exchange time.
func (l *Ledger) RecordBluetooth(durSec float64) { l.add("bluetooth", l.model.BluetoothW, durSec) }

// RecordBaseline accounts for the app's residual draw.
func (l *Ledger) RecordBaseline(durSec float64) { l.add("baseline", l.model.BaselineW, durSec) }

// TotalJoules returns the summed consumption. Components are summed in
// sorted order so the result is deterministic across calls.
func (l *Ledger) TotalJoules() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.joules))
	for k := range l.joules {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += l.joules[k]
	}
	return sum
}

// Breakdown returns a stable, human-readable component split.
func (l *Ledger) Breakdown() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.joules))
	for k := range l.joules {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%.3fJ", k, l.joules[k])
	}
	return sb.String()
}

// DrainInto transfers the ledger total into a battery and returns it.
func (l *Ledger) DrainInto(b *Battery) float64 {
	total := l.TotalJoules()
	if b != nil {
		b.Drain(total)
	}
	return total
}
