// Package energy reproduces the paper's PowerTutor-style accounting
// (§VI-D): a component PowerModel for a Galaxy-S4-class device and a
// per-authentication Ledger, used to regenerate the "100 authentications
// consume ≈0.6% of the battery" result. Battery tracks cumulative drain
// against the handset's capacity.
//
// Invariant: the ledger only accumulates durations the session actually
// modeled (Bluetooth exchange, playback, recording, detection CPU), so the
// energy figures move in lockstep with the latency model rather than being
// estimated independently.
package energy
