// Package bluetooth simulates the registration-phase pairing and the secure
// channel the ACTION protocol uses to ship reference signals and location
// differences between devices (paper §IV, Steps II and V).
//
// Pairing performs a real ECDH (P-256) key agreement and derives an
// AES-256-GCM channel key, so the "attacker cannot eavesdrop the reference
// signals" assumption is enforced by actual cryptography rather than by
// fiat. The Link also models Bluetooth's transmission latency and its
// ~10 m communication range — the range is what makes PIANO's false-accept
// rate exactly zero beyond 10 m (paper §VI-C).
//
// Invariants: Send draws its latency from the caller's session RNG (part of
// the session's fixed draw order); messages are authenticated-encrypted in
// transit and tampering is detected by GCM, which the tests exercise by
// flipping ciphertext bits.
package bluetooth
