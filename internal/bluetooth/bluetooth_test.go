package bluetooth

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/device"
)

func newDev(t *testing.T, name string, pos [2]float64) *device.Device {
	t.Helper()
	d, err := device.New(device.Config{Name: name, Position: pos, SampleRate: 44100})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func pairT(t *testing.T, a, b *device.Device) (*Link, *Link) {
	t.Helper()
	la, lb, err := Pair(a, b, DefaultLatency(), DefaultRangeM)
	if err != nil {
		t.Fatal(err)
	}
	return la, lb
}

func TestPairValidation(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	if _, _, err := Pair(nil, a, DefaultLatency(), 10); err == nil {
		t.Error("nil device accepted")
	}
	if _, _, err := Pair(a, a, DefaultLatency(), 10); err == nil {
		t.Error("self-pairing accepted")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	b := newDev(t, "b", [2]float64{1, 0})
	la, lb := pairT(t, a, b)
	rng := rand.New(rand.NewSource(1))

	msg := []byte("reference signal descriptor")
	lat, err := la.Send(msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 0 || lat > 0.1 {
		t.Errorf("latency %g out of expected band", lat)
	}
	got, err := lb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}

	// Reverse direction.
	if _, err := lb.Send([]byte("location difference"), rng); err != nil {
		t.Fatal(err)
	}
	got, err = la.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "location difference" {
		t.Fatalf("got %q", got)
	}
}

func TestRecvEmptyInbox(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	b := newDev(t, "b", [2]float64{1, 0})
	la, _ := pairT(t, a, b)
	if _, err := la.Recv(); !errors.Is(err, ErrEmptyInbox) {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfRange(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	b := newDev(t, "b", [2]float64{1, 0})
	la, lb := pairT(t, a, b)
	rng := rand.New(rand.NewSource(2))

	if !la.InRange() {
		t.Fatal("1 m not in range")
	}
	// The user walks away beyond Bluetooth range.
	b.SetPosition([2]float64{15, 0})
	if la.InRange() {
		t.Fatal("15 m in range")
	}
	if _, err := la.Send([]byte("x"), rng); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("send err = %v", err)
	}
	if _, err := lb.Recv(); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("recv err = %v", err)
	}
	// Walking back restores the link (pairing persists).
	b.SetPosition([2]float64{2, 0})
	if _, err := la.Send([]byte("x"), rng); err != nil {
		t.Fatalf("send after return: %v", err)
	}
	if _, err := lb.Recv(); err != nil {
		t.Fatalf("recv after return: %v", err)
	}
}

func TestTamperedFrameRejected(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	b := newDev(t, "b", [2]float64{1, 0})
	la, lb := pairT(t, a, b)
	rng := rand.New(rand.NewSource(3))

	if _, err := la.Send([]byte("secret"), rng); err != nil {
		t.Fatal(err)
	}
	// Attacker flips ciphertext bits in flight.
	lb.box.mu.Lock()
	lb.box.queues[lb.side][0].ciphertext[0] ^= 0xFF
	lb.box.mu.Unlock()
	if _, err := lb.Recv(); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("tampered frame: err = %v", err)
	}

	// Attacker injects a forged frame without the channel key.
	lb.injectRaw(make([]byte, 12), []byte("forged ciphertext bytes"))
	if _, err := lb.Recv(); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("forged frame: err = %v", err)
	}
}

func TestDistinctPairingsHaveDistinctKeys(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	b := newDev(t, "b", [2]float64{1, 0})
	la, _ := pairT(t, a, b)
	_, lb2 := pairT(t, a, b) // second, independent pairing
	rng := rand.New(rand.NewSource(4))

	if _, err := la.Send([]byte("hello"), rng); err != nil {
		t.Fatal(err)
	}
	// Move the frame from pairing 1's mailbox into pairing 2's endpoint:
	// decryption must fail because the channel keys differ.
	la.box.mu.Lock()
	f := la.box.queues[1][0]
	la.box.mu.Unlock()
	lb2.injectRaw(f.nonce, f.ciphertext)
	if _, err := lb2.Recv(); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("cross-pairing frame accepted: %v", err)
	}
}

func TestLatencyModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := LatencyModel{MeanSec: 0.03, JitterSec: 0.015}
	for i := 0; i < 1000; i++ {
		l := m.Sample(rng)
		if l < 0.015-1e-12 || l > 0.045+1e-12 {
			t.Fatalf("latency %g out of band", l)
		}
	}
	neg := LatencyModel{MeanSec: 0.001, JitterSec: 0.5}
	for i := 0; i < 100; i++ {
		if neg.Sample(rng) < 0 {
			t.Fatal("negative latency")
		}
	}
}

func TestSendNilRNGUsesMean(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	b := newDev(t, "b", [2]float64{1, 0})
	la, _ := pairT(t, a, b)
	lat, err := la.Send([]byte("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultLatency().MeanSec {
		t.Fatalf("latency %g, want mean", lat)
	}
}

func TestAccessors(t *testing.T) {
	a := newDev(t, "a", [2]float64{0, 0})
	b := newDev(t, "b", [2]float64{1, 0})
	la, lb := pairT(t, a, b)
	if la.Peer() != b || lb.Peer() != a {
		t.Error("peer mismatch")
	}
	if la.RangeM() != DefaultRangeM {
		t.Error("range mismatch")
	}
	// Zero range falls back to the default.
	lc, _, err := Pair(a, b, DefaultLatency(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lc.RangeM() != DefaultRangeM {
		t.Error("default range not applied")
	}
}
