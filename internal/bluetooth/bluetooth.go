package bluetooth

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"

	"github.com/acoustic-auth/piano/internal/device"
)

// Common link errors.
var (
	// ErrOutOfRange is returned when the peer is beyond Bluetooth range.
	ErrOutOfRange = errors.New("bluetooth: peer out of range")
	// ErrEmptyInbox is returned by Recv when no frame is queued.
	ErrEmptyInbox = errors.New("bluetooth: no message pending")
	// ErrAuthFailed is returned when a frame fails AEAD authentication.
	ErrAuthFailed = errors.New("bluetooth: frame authentication failed")
)

// DefaultRangeM is the Bluetooth communication range the paper assumes
// ("roughly the communication range of Bluetooth on many commodity mobile
// devices" — 10 meters).
const DefaultRangeM = 10.0

// LatencyModel samples per-message transmission latency.
type LatencyModel struct {
	MeanSec   float64
	JitterSec float64
}

// DefaultLatency reflects a BT-classic RFCOMM round: ~30 ms ± 15 ms.
func DefaultLatency() LatencyModel {
	return LatencyModel{MeanSec: 0.030, JitterSec: 0.015}
}

// Sample draws one latency realization using the supplied RNG (simulation
// randomness, distinct from the cryptographic randomness of pairing).
func (m LatencyModel) Sample(rng *mrand.Rand) float64 {
	l := m.MeanSec + (2*rng.Float64()-1)*m.JitterSec
	if l < 0 {
		l = 0
	}
	return l
}

// frame is one encrypted message in flight.
type frame struct {
	nonce      []byte
	ciphertext []byte
}

// mailbox is the shared state of one pairing.
type mailbox struct {
	mu     sync.Mutex
	queues [2][]frame // indexed by receiving side
}

// Link is one device's endpoint of a paired Bluetooth connection.
type Link struct {
	local   *device.Device
	peer    *device.Device
	side    int // 0 or 1; nonce domain separator
	aead    cipher.AEAD
	rangeM  float64
	latency LatencyModel
	box     *mailbox
	sendSeq uint64
}

// Pair executes the registration phase: an ECDH key agreement between the
// two devices followed by channel-key derivation. It returns one Link per
// device. This mirrors the paper's one-time, user-confirmed pairing.
func Pair(a, b *device.Device, latency LatencyModel, rangeM float64) (*Link, *Link, error) {
	if a == nil || b == nil {
		return nil, nil, errors.New("bluetooth: nil device")
	}
	if a == b {
		return nil, nil, errors.New("bluetooth: cannot pair a device with itself")
	}
	if rangeM <= 0 {
		rangeM = DefaultRangeM
	}

	curve := ecdh.P256()
	privA, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("bluetooth: generate key for %q: %w", a.Name(), err)
	}
	privB, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("bluetooth: generate key for %q: %w", b.Name(), err)
	}
	sharedA, err := privA.ECDH(privB.PublicKey())
	if err != nil {
		return nil, nil, fmt.Errorf("bluetooth: ecdh: %w", err)
	}
	// Channel key = SHA-256(shared secret || context).
	h := sha256.New()
	h.Write(sharedA)
	h.Write([]byte("piano-bt-channel-v1"))
	key := h.Sum(nil)

	makeAEAD := func() (cipher.AEAD, error) {
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		return cipher.NewGCM(block)
	}
	aeadA, err := makeAEAD()
	if err != nil {
		return nil, nil, fmt.Errorf("bluetooth: aead: %w", err)
	}
	aeadB, err := makeAEAD()
	if err != nil {
		return nil, nil, fmt.Errorf("bluetooth: aead: %w", err)
	}

	box := &mailbox{}
	linkA := &Link{local: a, peer: b, side: 0, aead: aeadA, rangeM: rangeM, latency: latency, box: box}
	linkB := &Link{local: b, peer: a, side: 1, aead: aeadB, rangeM: rangeM, latency: latency, box: box}
	return linkA, linkB, nil
}

// Peer returns the remote device.
func (l *Link) Peer() *device.Device { return l.peer }

// RangeM returns the modeled communication range.
func (l *Link) RangeM() float64 { return l.rangeM }

// InRange reports whether the peer is currently within Bluetooth range.
// PIANO's authentication phase checks this first: if the vouching device is
// not reachable, access is denied without estimating distance.
func (l *Link) InRange() bool {
	return l.local.DistanceTo(l.peer) <= l.rangeM
}

// Send encrypts payload and queues it for the peer, returning the sampled
// transmission latency in seconds (the protocol layer advances its
// simulated timeline by this much). Fails when the peer is out of range.
func (l *Link) Send(payload []byte, rng *mrand.Rand) (float64, error) {
	if !l.InRange() {
		return 0, fmt.Errorf("bluetooth: send from %q: %w", l.local.Name(), ErrOutOfRange)
	}
	nonce := make([]byte, l.aead.NonceSize())
	nonce[0] = byte(l.side)
	binary.LittleEndian.PutUint64(nonce[4:], l.sendSeq)
	l.sendSeq++
	ct := l.aead.Seal(nil, nonce, payload, nil)

	l.box.mu.Lock()
	recvSide := 1 - l.side
	l.box.queues[recvSide] = append(l.box.queues[recvSide], frame{nonce: nonce, ciphertext: ct})
	l.box.mu.Unlock()

	if rng == nil {
		return l.latency.MeanSec, nil
	}
	return l.latency.Sample(rng), nil
}

// Recv pops and decrypts the next pending frame for this endpoint.
func (l *Link) Recv() ([]byte, error) {
	if !l.InRange() {
		return nil, fmt.Errorf("bluetooth: recv at %q: %w", l.local.Name(), ErrOutOfRange)
	}
	l.box.mu.Lock()
	q := l.box.queues[l.side]
	if len(q) == 0 {
		l.box.mu.Unlock()
		return nil, ErrEmptyInbox
	}
	f := q[0]
	l.box.queues[l.side] = q[1:]
	l.box.mu.Unlock()

	pt, err := l.aead.Open(nil, f.nonce, f.ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuthFailed, err)
	}
	return pt, nil
}

// injectRaw queues an arbitrary frame for this endpoint, bypassing
// encryption. Tests use it to prove tampered frames are rejected.
func (l *Link) injectRaw(nonce, ciphertext []byte) {
	l.box.mu.Lock()
	defer l.box.mu.Unlock()
	l.box.queues[l.side] = append(l.box.queues[l.side], frame{nonce: nonce, ciphertext: ciphertext})
}
