// Package audio provides the PCM sample handling shared by the simulated
// devices and the acoustic channel: 16-bit buffers with saturating
// quantization (matching Android's 16-bit audio path the paper's prototype
// uses), band-limited fractional-delay mixing, and WAV encoding for
// debugging artifacts.
//
// Key operations: Buffer pairs int16 samples with a sample rate;
// FromFloat/Float convert to and from the float64 domain the world mixes in
// (accumulate in float64, quantize once — intermediate mixing never clips).
// MixFloatSincGain adds a source into an accumulator at a fractional offset
// through the 48-tap Hann-windowed sinc kernel defined once in
// dsp.SincDelayKernel; MixSparseFIR applies a whole composite kernel
// (dsp.SparseFIR, all taps of one propagation path folded together) in a
// single convolution — the renderer's one-convolution-per-play fast path.
//
// Invariants: both mixers are allocation-free and bit-deterministic (edge
// samples take a bounds-checked path whose per-sample accumulation order
// matches the unchecked interior); SincMixCalls/SparseFIRMixCalls are
// cheap atomic call counters (one add per mix call, never per sample) that
// op-count tests use to prove the renderer performs exactly one convolution
// per play per path.
package audio
