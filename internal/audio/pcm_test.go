package audio

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClamp16(t *testing.T) {
	cases := []struct {
		in   float64
		want int16
	}{
		{0, 0},
		{1.4, 1},
		{1.6, 2},
		{-1.6, -2},
		{40000, MaxSample},
		{-40000, MinSample},
		{MaxSample, MaxSample},
		{MinSample, MinSample},
	}
	for _, c := range cases {
		if got := Clamp16(c.in); got != c.want {
			t.Errorf("Clamp16(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	pcm := []int16{0, 1, -1, MaxSample, MinSample, 1234}
	back := FromFloat(ToFloat(pcm))
	for i := range pcm {
		if back[i] != pcm[i] {
			t.Fatalf("round trip diverged at %d: %d vs %d", i, back[i], pcm[i])
		}
	}
}

func TestMixIntoIntegerOffset(t *testing.T) {
	dst := make([]int16, 10)
	MixInto(dst, []float64{100, 200, 300}, 4)
	want := []int16{0, 0, 0, 0, 100, 200, 300, 0, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestMixIntoFractionalOffsetConservesEnergyApprox(t *testing.T) {
	dst := make([]int16, 16)
	MixInto(dst, []float64{1000}, 5.5)
	if dst[5] != 500 || dst[6] != 500 {
		t.Fatalf("fractional mix: dst[5]=%d dst[6]=%d, want 500/500", dst[5], dst[6])
	}
}

func TestMixIntoClipsAtBoundaries(t *testing.T) {
	dst := make([]int16, 4)
	MixInto(dst, []float64{1, 2, 3, 4, 5, 6}, -2) // head clipped
	if dst[0] != 3 || dst[3] != 6 {
		t.Fatalf("head clip: %v", dst)
	}
	dst = make([]int16, 4)
	MixInto(dst, []float64{7, 8, 9}, 2) // tail clipped
	if dst[2] != 7 || dst[3] != 8 {
		t.Fatalf("tail clip: %v", dst)
	}
	MixInto(dst, nil, 0) // no-op
	MixInto(nil, []float64{1}, 0)
}

func TestMixIntoSaturates(t *testing.T) {
	dst := []int16{30000}
	MixInto(dst, []float64{10000}, 0)
	if dst[0] != MaxSample {
		t.Fatalf("saturation: got %d", dst[0])
	}
}

func TestNewSilence(t *testing.T) {
	b, err := NewSilence(44100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) != 100 {
		t.Fatalf("len = %d", len(b.Samples))
	}
	if d := b.Duration(); math.Abs(d-100.0/44100) > 1e-12 {
		t.Fatalf("duration = %g", d)
	}
	if _, err := NewSilence(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSilence(44100, -1); err == nil {
		t.Error("negative length accepted")
	}
	var empty Buffer
	if empty.Duration() != 0 {
		t.Error("zero-value duration not 0")
	}
}

func TestWAVRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 2048)
		b := &Buffer{SampleRate: 44100, Samples: make([]int16, n)}
		for i := range b.Samples {
			b.Samples[i] = int16(rng.Intn(65536) - 32768)
		}
		var buf bytes.Buffer
		if err := EncodeWAV(&buf, b); err != nil {
			return false
		}
		got, err := DecodeWAV(&buf)
		if err != nil {
			return false
		}
		if got.SampleRate != b.SampleRate || len(got.Samples) != n {
			return false
		}
		for i := range b.Samples {
			if got.Samples[i] != b.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWAVRejectsGarbage(t *testing.T) {
	if _, err := DecodeWAV(bytes.NewReader([]byte("not a wav"))); err == nil {
		t.Error("short garbage accepted")
	}
	junk := make([]byte, 44)
	copy(junk, "RIFFxxxxWAVEfmt ")
	if _, err := DecodeWAV(bytes.NewReader(junk)); err == nil {
		t.Error("zeroed header accepted")
	}
	if err := EncodeWAV(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil buffer accepted")
	}
}
