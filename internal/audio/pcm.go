package audio

import (
	"fmt"
	"math"
)

const (
	// MaxSample is the largest representable 16-bit PCM value. The paper
	// sizes reference-signal power against the 16-bit integer range
	// ("we use 32000 because the Android system uses 16 bit integer").
	MaxSample = 32767
	// MinSample is the smallest representable 16-bit PCM value.
	MinSample = -32768
)

// Clamp16 saturates v to the representable int16 range, mimicking the
// clipping a real ADC/DAC applies.
func Clamp16(v float64) int16 {
	switch {
	case v > MaxSample:
		return MaxSample
	case v < MinSample:
		return MinSample
	default:
		return int16(math.Round(v))
	}
}

// ToFloat converts int16 PCM samples to float64 without rescaling, so a
// full-scale sine keeps amplitude ≈ 32767. Keeping the integer scale makes
// the paper's power parameters (R_f = (32000/n)²) directly comparable.
func ToFloat(pcm []int16) []float64 {
	out := make([]float64, len(pcm))
	for i, v := range pcm {
		out[i] = float64(v)
	}
	return out
}

// FromFloat converts float64 samples to int16 PCM with saturation.
func FromFloat(x []float64) []int16 {
	out := make([]int16, len(x))
	for i, v := range x {
		out[i] = Clamp16(v)
	}
	return out
}

// Buffer is a mono PCM recording with its sampling rate.
type Buffer struct {
	SampleRate float64 // samples per second
	Samples    []int16
}

// Duration returns the buffer length in seconds.
func (b *Buffer) Duration() float64 {
	if b.SampleRate <= 0 {
		return 0
	}
	return float64(len(b.Samples)) / b.SampleRate
}

// Float returns the samples as float64 (integer scale preserved). It
// allocates a fresh copy 4× the PCM's byte size per call; the detection hot path ingests
// Samples directly instead (detect.Detector.DetectAllPCM fuses the exact
// widening conversion into its spectral engine), so Float is for baselines,
// experiments, and diagnostics rather than per-session use.
func (b *Buffer) Float() []float64 {
	return ToFloat(b.Samples)
}

// MixInto adds src (float samples) into dst starting at sample offset,
// saturating at the int16 range. Samples falling outside dst are dropped —
// the microphone simply wasn't recording then. Negative offsets clip the
// head of src. A fractional offset is applied by linear interpolation,
// modelling sub-sample propagation delay.
func MixInto(dst []int16, src []float64, offset float64) {
	if len(src) == 0 || len(dst) == 0 {
		return
	}
	base := math.Floor(offset)
	frac := offset - base
	start := int(base)
	// With linear interpolation, sample dst[start+i] receives
	// (1-frac)*src[i] + frac*src[i-1].
	for i := 0; i <= len(src); i++ {
		di := start + i
		if di < 0 || di >= len(dst) {
			continue
		}
		var v float64
		if i < len(src) {
			v += (1 - frac) * src[i]
		}
		if i > 0 {
			v += frac * src[i-1]
		}
		dst[di] = Clamp16(float64(dst[di]) + v)
	}
}

// NewSilence returns an all-zero buffer of length n at the given rate.
func NewSilence(sampleRate float64, n int) (*Buffer, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("audio: sample rate %g must be positive", sampleRate)
	}
	if n < 0 {
		return nil, fmt.Errorf("audio: length %d must be non-negative", n)
	}
	return &Buffer{SampleRate: sampleRate, Samples: make([]int16, n)}, nil
}
