package audio

import (
	"math"
	"sync/atomic"

	"github.com/acoustic-auth/piano/internal/dsp"
)

// sincHalfWidth is the one-sided length of the windowed-sinc interpolation
// kernel used for band-limited fractional delay; the kernel itself is
// defined once in dsp.SincDelayKernel (see dsp.SincHalfWidth for why a
// 48-tap Hann-windowed sinc and not linear interpolation) so that this
// per-tap mixer and the composite-kernel builder fold bit-identical
// coefficients.
const sincHalfWidth = dsp.SincHalfWidth

// Mix-call counters: cheap test instrumentation (one atomic add per mix
// call, never per sample) that lets the renderer's op-count tests assert
// "exactly one sparse-FIR convolution per play per path, zero per-tap sinc
// mixes" without build tags.
var (
	sincMixes      atomic.Uint64
	sparseFIRMixes atomic.Uint64
)

// SincMixCalls returns the number of MixFloatSinc/MixFloatSincGain calls
// since process start.
func SincMixCalls() uint64 { return sincMixes.Load() }

// SparseFIRMixCalls returns the number of MixSparseFIR calls since process
// start.
func SparseFIRMixCalls() uint64 { return sparseFIRMixes.Load() }

// MixFloatSinc adds src into dst starting at the (possibly fractional)
// sample offset, applying the fractional part as a band-limited delay via a
// Hann-windowed sinc kernel.
func MixFloatSinc(dst, src []float64, offset float64) {
	MixFloatSincGain(dst, src, offset, 1)
}

// MixFloatSincGain is MixFloatSinc with every source sample scaled by gain
// on the fly. This is the render hot path's per-tap mixer: folding the tap
// gain into the kernel accumulation removes the per-tap scaled-copy buffer
// the renderer used to allocate, with bit-identical results (the scale is
// applied to the source sample before the kernel product, exactly as the
// pre-scaled copy was).
func MixFloatSincGain(dst, src []float64, offset, gain float64) {
	sincMixes.Add(1)
	if len(src) == 0 || len(dst) == 0 {
		return
	}
	base := math.Floor(offset)
	frac := offset - base
	start := int(base)
	if frac < dsp.IntegerDelayEps {
		// Pure integer delay: add directly.
		for i, v := range src {
			di := start + i
			if di >= 0 && di < len(dst) {
				dst[di] += v * gain
			}
		}
		return
	}

	// Kernel h[k] for k in [-L+1, L]: delayed-by-frac band-limited
	// impulse, Hann-windowed.
	const l = sincHalfWidth
	var kernel [2 * l]float64
	dsp.SincDelayKernel(frac, &kernel)

	// Interior samples write their whole kernel inside dst, so the per-tap
	// destination range check can be hoisted out of the kernel loop; only
	// the few edge samples take the checked path. Accumulation order per
	// sample is unchanged (k ascending), so results are bit-identical to
	// the fully checked loop.
	safeLo := l - 1 - start
	if safeLo < 0 {
		safeLo = 0
	}
	safeHi := len(dst) - 1 - l - start
	if safeHi > len(src)-1 {
		safeHi = len(src) - 1
	}

	mixChecked := func(i int) {
		sv := src[i] * gain
		if sv == 0 {
			return
		}
		for k := -l + 1; k <= l; k++ {
			di := start + i + k
			if di >= 0 && di < len(dst) {
				dst[di] += sv * kernel[k+l-1]
			}
		}
	}
	for i := 0; i < safeLo && i < len(src); i++ {
		mixChecked(i)
	}
	kern := kernel[:]
	for i := safeLo; i <= safeHi; i++ {
		sv := src[i] * gain
		if sv == 0 {
			continue
		}
		out := dst[start+i-l+1:][:2*l]
		for k, kv := range kern {
			out[k] += sv * kv
		}
	}
	edgeLo := safeHi + 1
	if edgeLo < safeLo {
		edgeLo = safeLo
	}
	for i := edgeLo; i < len(src); i++ {
		mixChecked(i)
	}
}

// MixSparseFIR adds src convolved with the composite sparse kernel into dst:
// dst[seg.Start+n+i] += src[n]·seg.Coeffs[i] for every segment, source
// sample n, and coefficient i. One call replaces one MixFloatSincGain call
// per folded tap — the renderer's composite-kernel fast path (one
// convolution per play per path instead of one per tap). Allocation-free.
//
// Like MixFloatSincGain, the destination range check is hoisted out of the
// inner loop for interior samples; only edge samples take the checked path,
// with per-sample accumulation order unchanged, so results are bit-identical
// to a fully checked loop.
func MixSparseFIR(dst, src []float64, fir *dsp.SparseFIR) {
	sparseFIRMixes.Add(1)
	if len(src) == 0 || len(dst) == 0 || fir == nil {
		return
	}
	for si := range fir.Segments {
		seg := &fir.Segments[si]
		start := seg.Start
		width := len(seg.Coeffs)
		if width == 0 {
			continue
		}

		// src[i] writes dst[start+i : start+i+width]; interior samples are
		// those whose whole window is inside dst.
		safeLo := -start
		if safeLo < 0 {
			safeLo = 0
		}
		safeHi := len(dst) - width - start
		if safeHi > len(src)-1 {
			safeHi = len(src) - 1
		}

		mixChecked := func(i int) {
			sv := src[i]
			if sv == 0 {
				return
			}
			for k, c := range seg.Coeffs {
				di := start + i + k
				if di >= 0 && di < len(dst) {
					dst[di] += sv * c
				}
			}
		}
		for i := 0; i < safeLo && i < len(src); i++ {
			mixChecked(i)
		}
		coeffs := seg.Coeffs
		for i := safeLo; i <= safeHi; i++ {
			sv := src[i]
			if sv == 0 {
				continue
			}
			out := dst[start+i:][:width]
			for k, c := range coeffs {
				out[k] += sv * c
			}
		}
		edgeLo := safeHi + 1
		if edgeLo < safeLo {
			edgeLo = safeLo
		}
		for i := edgeLo; i < len(src); i++ {
			mixChecked(i)
		}
	}
}

// MixFloat adds src into the float64 accumulation buffer dst starting at the
// (possibly fractional) sample offset, using linear interpolation for the
// fractional part. The world simulator accumulates all acoustic sources in
// float64 and quantizes to int16 once, so intermediate mixing never clips.
func MixFloat(dst, src []float64, offset float64) {
	if len(src) == 0 || len(dst) == 0 {
		return
	}
	base := math.Floor(offset)
	frac := offset - base
	start := int(base)
	for i := 0; i <= len(src); i++ {
		di := start + i
		if di < 0 || di >= len(dst) {
			continue
		}
		var v float64
		if i < len(src) {
			v += (1 - frac) * src[i]
		}
		if i > 0 {
			v += frac * src[i-1]
		}
		dst[di] += v
	}
}
