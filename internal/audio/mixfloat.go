package audio

import "math"

// sincHalfWidth is the one-sided length of the windowed-sinc interpolation
// kernel used for band-limited fractional delay. Linear interpolation is a
// 2-tap averaging filter that attenuates near-Nyquist content by up to
// −13 dB — fatal for PIANO's candidate band, which aliases to 9–19 kHz —
// so propagation delays are applied with a 48-tap Hann-windowed sinc that
// stays flat through the candidate band.
const sincHalfWidth = 24

// MixFloatSinc adds src into dst starting at the (possibly fractional)
// sample offset, applying the fractional part as a band-limited delay via a
// Hann-windowed sinc kernel.
func MixFloatSinc(dst, src []float64, offset float64) {
	MixFloatSincGain(dst, src, offset, 1)
}

// MixFloatSincGain is MixFloatSinc with every source sample scaled by gain
// on the fly. This is the render hot path's per-tap mixer: folding the tap
// gain into the kernel accumulation removes the per-tap scaled-copy buffer
// the renderer used to allocate, with bit-identical results (the scale is
// applied to the source sample before the kernel product, exactly as the
// pre-scaled copy was).
func MixFloatSincGain(dst, src []float64, offset, gain float64) {
	if len(src) == 0 || len(dst) == 0 {
		return
	}
	base := math.Floor(offset)
	frac := offset - base
	start := int(base)
	if frac < 1e-9 {
		// Pure integer delay: add directly.
		for i, v := range src {
			di := start + i
			if di >= 0 && di < len(dst) {
				dst[di] += v * gain
			}
		}
		return
	}

	// Kernel h[k] for k in [-L+1, L]: delayed-by-frac band-limited
	// impulse, Hann-windowed.
	const l = sincHalfWidth
	var kernel [2 * l]float64
	for k := -l + 1; k <= l; k++ {
		x := float64(k) - frac
		var s float64
		if math.Abs(x) < 1e-12 {
			s = 1
		} else {
			s = math.Sin(math.Pi*x) / (math.Pi * x)
		}
		// Hann window centered on the delayed impulse.
		w := 0.5 * (1 + math.Cos(math.Pi*x/float64(l)))
		if x < -float64(l) || x > float64(l) {
			w = 0
		}
		kernel[k+l-1] = s * w
	}

	// Interior samples write their whole kernel inside dst, so the per-tap
	// destination range check can be hoisted out of the kernel loop; only
	// the few edge samples take the checked path. Accumulation order per
	// sample is unchanged (k ascending), so results are bit-identical to
	// the fully checked loop.
	safeLo := l - 1 - start
	if safeLo < 0 {
		safeLo = 0
	}
	safeHi := len(dst) - 1 - l - start
	if safeHi > len(src)-1 {
		safeHi = len(src) - 1
	}

	mixChecked := func(i int) {
		sv := src[i] * gain
		if sv == 0 {
			return
		}
		for k := -l + 1; k <= l; k++ {
			di := start + i + k
			if di >= 0 && di < len(dst) {
				dst[di] += sv * kernel[k+l-1]
			}
		}
	}
	for i := 0; i < safeLo && i < len(src); i++ {
		mixChecked(i)
	}
	kern := kernel[:]
	for i := safeLo; i <= safeHi; i++ {
		sv := src[i] * gain
		if sv == 0 {
			continue
		}
		out := dst[start+i-l+1:][:2*l]
		for k, kv := range kern {
			out[k] += sv * kv
		}
	}
	edgeLo := safeHi + 1
	if edgeLo < safeLo {
		edgeLo = safeLo
	}
	for i := edgeLo; i < len(src); i++ {
		mixChecked(i)
	}
}

// MixFloat adds src into the float64 accumulation buffer dst starting at the
// (possibly fractional) sample offset, using linear interpolation for the
// fractional part. The world simulator accumulates all acoustic sources in
// float64 and quantizes to int16 once, so intermediate mixing never clips.
func MixFloat(dst, src []float64, offset float64) {
	if len(src) == 0 || len(dst) == 0 {
		return
	}
	base := math.Floor(offset)
	frac := offset - base
	start := int(base)
	for i := 0; i <= len(src); i++ {
		di := start + i
		if di < 0 || di >= len(dst) {
			continue
		}
		var v float64
		if i < len(src) {
			v += (1 - frac) * src[i]
		}
		if i > 0 {
			v += frac * src[i-1]
		}
		dst[di] += v
	}
}
