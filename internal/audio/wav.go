package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// WAV support is provided for debugging: experiment runners can dump the
// exact PCM a simulated microphone recorded and inspect it with standard
// tools. Only the canonical 16-bit mono PCM layout is implemented.

// ErrBadWAV is returned when decoding input that is not a canonical
// 16-bit mono PCM RIFF/WAVE stream.
var ErrBadWAV = errors.New("audio: malformed WAV data")

// EncodeWAV writes b as a canonical RIFF/WAVE file (PCM, mono, 16-bit).
func EncodeWAV(w io.Writer, b *Buffer) error {
	if b == nil || b.SampleRate <= 0 {
		return fmt.Errorf("audio: encode wav: invalid buffer")
	}
	dataLen := uint32(len(b.Samples) * 2)
	rate := uint32(b.SampleRate)

	var header [44]byte
	copy(header[0:4], "RIFF")
	binary.LittleEndian.PutUint32(header[4:8], 36+dataLen)
	copy(header[8:12], "WAVE")
	copy(header[12:16], "fmt ")
	binary.LittleEndian.PutUint32(header[16:20], 16) // PCM fmt chunk size
	binary.LittleEndian.PutUint16(header[20:22], 1)  // PCM
	binary.LittleEndian.PutUint16(header[22:24], 1)  // mono
	binary.LittleEndian.PutUint32(header[24:28], rate)
	binary.LittleEndian.PutUint32(header[28:32], rate*2) // byte rate
	binary.LittleEndian.PutUint16(header[32:34], 2)      // block align
	binary.LittleEndian.PutUint16(header[34:36], 16)     // bits per sample
	copy(header[36:40], "data")
	binary.LittleEndian.PutUint32(header[40:44], dataLen)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("audio: encode wav header: %w", err)
	}

	body := make([]byte, dataLen)
	for i, s := range b.Samples {
		binary.LittleEndian.PutUint16(body[2*i:], uint16(s))
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("audio: encode wav data: %w", err)
	}
	return nil
}

// DecodeWAV parses a canonical 16-bit mono PCM WAV stream produced by
// EncodeWAV (or any compatible writer).
func DecodeWAV(r io.Reader) (*Buffer, error) {
	var header [44]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("audio: decode wav header: %w", err)
	}
	if string(header[0:4]) != "RIFF" || string(header[8:12]) != "WAVE" || string(header[12:16]) != "fmt " {
		return nil, fmt.Errorf("audio: decode wav: bad magic: %w", ErrBadWAV)
	}
	if binary.LittleEndian.Uint16(header[20:22]) != 1 {
		return nil, fmt.Errorf("audio: decode wav: not PCM: %w", ErrBadWAV)
	}
	if binary.LittleEndian.Uint16(header[22:24]) != 1 {
		return nil, fmt.Errorf("audio: decode wav: not mono: %w", ErrBadWAV)
	}
	if binary.LittleEndian.Uint16(header[34:36]) != 16 {
		return nil, fmt.Errorf("audio: decode wav: not 16-bit: %w", ErrBadWAV)
	}
	if string(header[36:40]) != "data" {
		return nil, fmt.Errorf("audio: decode wav: missing data chunk: %w", ErrBadWAV)
	}
	rate := binary.LittleEndian.Uint32(header[24:28])
	dataLen := binary.LittleEndian.Uint32(header[40:44])
	if dataLen%2 != 0 {
		return nil, fmt.Errorf("audio: decode wav: odd data length: %w", ErrBadWAV)
	}
	body := make([]byte, dataLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("audio: decode wav data: %w", err)
	}
	samples := make([]int16, dataLen/2)
	for i := range samples {
		samples[i] = int16(binary.LittleEndian.Uint16(body[2*i:]))
	}
	return &Buffer{SampleRate: float64(rate), Samples: samples}, nil
}
