package audio

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/dsp"
)

// mixBothWays runs the same tap set through the per-tap oracle
// (MixFloatSincGain, one call per tap) and through the folded composite
// kernel (one MixSparseFIR call) and returns both accumulators.
func mixBothWays(taps []dsp.FIRTap, src []float64, n int) (perTap, composite []float64) {
	perTap = make([]float64, n)
	for _, tap := range taps {
		MixFloatSincGain(perTap, src, tap.Offset, tap.Gain)
	}
	composite = make([]float64, n)
	MixSparseFIR(composite, src, dsp.NewSparseFIR(taps))
	return perTap, composite
}

func assertParity(t *testing.T, perTap, composite []float64) {
	t.Helper()
	peak := 0.0
	for _, v := range perTap {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	tol := 1e-9 * math.Max(1, peak)
	for i := range perTap {
		if d := math.Abs(perTap[i] - composite[i]); d > tol {
			t.Fatalf("sample %d: per-tap %g vs composite %g (diff %g > tol %g)",
				i, perTap[i], composite[i], d, tol)
		}
	}
}

// TestMixSparseFIRMatchesPerTapMix is the mixer-level parity oracle: folding
// taps into one sparse FIR and convolving once must match one
// MixFloatSincGain per tap to within 1e-9 of the peak (only the summation
// order differs; the coefficients come from the same dsp.SincDelayKernel).
func TestMixSparseFIRMatchesPerTapMix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := make([]float64, 3000)
	for i := range src {
		src[i] = 2*rng.Float64() - 1
	}
	cases := map[string][]dsp.FIRTap{
		"single fractional": {{Offset: 100.37, Gain: 0.8}},
		"single integer":    {{Offset: 100, Gain: 0.8}},
		"clustered": {
			{Offset: 50.0, Gain: 0.9}, {Offset: 51.3, Gain: -0.1},
			{Offset: 52.7, Gain: 0.05}, {Offset: 53.1, Gain: 0.02},
		},
		"clustered plus distant reflections": {
			{Offset: 40.6, Gain: 0.7}, {Offset: 41.9, Gain: 0.1},
			{Offset: 140.25, Gain: -0.04}, {Offset: 900.75, Gain: 0.03},
		},
		"mixed integer and fractional": {
			{Offset: 10, Gain: 0.5}, {Offset: 10.5, Gain: 0.25}, {Offset: 11, Gain: -0.125},
		},
	}
	for name, taps := range cases {
		t.Run(name, func(t *testing.T) {
			perTap, composite := mixBothWays(taps, src, 5000)
			assertParity(t, perTap, composite)
		})
	}
}

// TestMixSparseFIRManyRandomTaps drives parity at the tap counts where the
// composite path actually pays off (the ≥8-tap acceptance case) with random
// geometry, including negative gains and sub-sample clustering.
func TestMixSparseFIRManyRandomTaps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]float64, 2000)
	for i := range src {
		src[i] = 2*rng.Float64() - 1
	}
	for _, tapCount := range []int{8, 24} {
		taps := make([]dsp.FIRTap, tapCount)
		taps[0] = dsp.FIRTap{Offset: 200 + rng.Float64(), Gain: 0.8}
		for i := 1; i < tapCount; i++ {
			taps[i] = dsp.FIRTap{
				Offset: 200 + rng.Float64()*120,
				Gain:   (2*rng.Float64() - 1) * 0.2,
			}
		}
		perTap, composite := mixBothWays(taps, src, 4000)
		assertParity(t, perTap, composite)
	}
}

// TestMixSparseFIREdgeClipping pins the checked edge paths: kernels that
// fall partially before dst[0] or past the end must clip exactly like the
// per-tap mixer's bounds checks.
func TestMixSparseFIREdgeClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := make([]float64, 300)
	for i := range src {
		src[i] = 2*rng.Float64() - 1
	}
	taps := []dsp.FIRTap{
		{Offset: -40.5, Gain: 0.6}, // mostly before dst start
		{Offset: -3.25, Gain: 0.3}, // straddles dst start
		{Offset: 70.75, Gain: 0.5}, // straddles dst end (dst shorter than src span)
	}
	perTap, composite := mixBothWays(taps, src, 120)
	assertParity(t, perTap, composite)

	// Degenerate inputs must be no-ops, matching the per-tap mixer.
	MixSparseFIR(nil, src, dsp.NewSparseFIR(taps))
	MixSparseFIR(make([]float64, 10), nil, dsp.NewSparseFIR(taps))
	MixSparseFIR(make([]float64, 10), src, nil)
}

// TestMixCallCounters pins the op-count instrumentation the renderer tests
// rely on: each mixer bumps its own counter exactly once per call.
func TestMixCallCounters(t *testing.T) {
	dst := make([]float64, 64)
	src := []float64{1, 2, 3}
	s0, f0 := SincMixCalls(), SparseFIRMixCalls()
	MixFloatSincGain(dst, src, 4.5, 1)
	MixSparseFIR(dst, src, dsp.NewSparseFIR([]dsp.FIRTap{{Offset: 4.5, Gain: 1}}))
	if got := SincMixCalls() - s0; got != 1 {
		t.Fatalf("sinc mix counter advanced by %d, want 1", got)
	}
	if got := SparseFIRMixCalls() - f0; got != 1 {
		t.Fatalf("sparse FIR mix counter advanced by %d, want 1", got)
	}
}
