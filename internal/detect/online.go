package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// MaxStreamLength bounds the total PCM one Stream may be declared to (and
// therefore ever ingest): ~6.3 minutes at 44.1 kHz. Like
// sigref.MaxSignalLength at the Step-II trust boundary, it keeps a
// hostile or buggy feeder from making the engine commit unbounded memory —
// the stream's buffer is allocated up front from the declared length, so
// the declaration is where the bound must hold.
const MaxStreamLength = 1 << 24

// ErrFeedOverflow is returned (wrapped, match with errors.Is) by
// Stream.Feed when the appended PCM would exceed the stream's declared
// recording length. The offending chunk is rejected whole; the stream
// remains usable with the audio fed so far.
var ErrFeedOverflow = errors.New("detect: streamed PCM exceeds the declared recording length")

// Stream is the incremental form of DetectAllPCM: one recording's scan fed
// chunk by chunk while the audio is still arriving.
//
// The stream is declared with the recording's total length up front (the
// session knows its recording duration before the first sample exists), so
// the coarse window grid, the fine-scan clamping range, and the
// WindowsScanned cost accounting are all fixed a priori — identical to the
// batch scan of the eventual complete recording. Feed appends PCM and
// advances the coarse scan over exactly the windows the new samples
// completed, on the same fixed block grid and in the same window order as
// the batch engine; Results reduces the scanned prefix and, once the
// audio covering each candidate's fine band has arrived, runs the same
// fine scan (streamed hops + exact-at-peak re-check, via the shared
// fineLocate machinery) the batch engine runs.
//
// Determinism contract: after the full declared length has been fed —
// in chunks of ANY size, including all at once — Results is bit-identical
// to DetectAllPCM of the complete recording, at any GOMAXPROCS. Results
// called on a prefix is the exact deterministic fold of that prefix's
// windows: it equals the batch result whenever no unscanned tail window
// both passes the α/β sanity checks and beats the prefix maximum (the
// session layer derives a protocol horizon after which the schedule
// guarantees that; see core).
//
// A Stream serializes its own methods with an internal mutex, but the
// intended use is one feeder per stream. It must not be used after its
// Detector is gone.
type Stream struct {
	d     *Detector
	specs []*sigSpec
	band  bandRange

	winLen int
	total  int // declared recording length, samples
	limit  int // total − winLen: last window start of the full recording
	grid   dsp.HopGrid
	stream bool // coarse scan below the sliding-DFT break-even

	maxLost int // lost-sample ceiling (MaxLossFraction × total)

	mu      sync.Mutex
	buf     []int16   // arrived PCM, cap == total
	scanned int       // coarse windows scored so far (prefix, window order)
	scores  []float64 // coarse scores, grid.Count × len(specs)

	// Lossy-transport accounting: spans declared lost via FeedLost,
	// merged ascending, zero-filled in buf. Windows overlapping them are
	// excluded from the Results fold (see loss.go).
	lost        []lostSpan
	lostSamples int
}

// NewStream opens an incremental scan for a recording declared to be total
// samples long. The signals must share Params (length and grid), exactly as
// in DetectAll; total must cover at least one window and stay within
// MaxStreamLength.
func (d *Detector) NewStream(total int, sigs ...*sigref.Signal) (*Stream, error) {
	if len(sigs) == 0 {
		return nil, errors.New("detect: no signals given")
	}
	for _, s := range sigs {
		if s == nil {
			return nil, errors.New("detect: nil signal")
		}
		if s.Params() != sigs[0].Params() {
			return nil, errors.New("detect: signals have differing parameters")
		}
	}
	winLen := sigs[0].Params().Length
	if total < winLen {
		return nil, fmt.Errorf("detect: declared recording %d shorter than window %d", total, winLen)
	}
	if total > MaxStreamLength {
		return nil, fmt.Errorf("detect: declared recording %d exceeds the %d-sample stream bound", total, MaxStreamLength)
	}
	band, err := d.cfg.scanBand(sigs[0].Params())
	if err != nil {
		return nil, err
	}
	specs := make([]*sigSpec, len(sigs))
	for i, s := range sigs {
		specs[i] = d.newSigSpec(s)
	}
	limit := total - winLen
	stream := !d.disableStream && dsp.StreamingWins(winLen, band.hi-band.lo, d.cfg.CoarseStep)
	block := fftScanBlock
	if stream {
		block = dsp.StreamResyncHops
	}
	grid := dsp.HopGrid{
		Lo:     0,
		Step:   d.cfg.CoarseStep,
		WinLen: winLen,
		Count:  limit/d.cfg.CoarseStep + 1,
		Block:  block,
	}
	frac := d.cfg.MaxLossFraction
	if frac == 0 {
		frac = DefaultMaxLossFraction
	}
	return &Stream{
		d:       d,
		specs:   specs,
		band:    band,
		winLen:  winLen,
		total:   total,
		limit:   limit,
		grid:    grid,
		stream:  stream,
		maxLost: int(frac * float64(total)),
		buf:     make([]int16, 0, total),
		scores:  make([]float64, grid.Count*len(specs)),
	}, nil
}

// Total returns the declared recording length in samples.
func (st *Stream) Total() int { return st.total }

// Fed returns how many samples have arrived so far.
func (st *Stream) Fed() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf)
}

// CoarseScanned returns how many coarse windows of the fixed grid have
// been scored so far (diagnostics; grid completion is CoarseScanned ==
// the grid's Count).
func (st *Stream) CoarseScanned() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.scanned
}

// Feed appends a chunk of PCM and scores every coarse window the new
// samples completed, through the detector's shared scan engine (pool
// workers, pooled scratch, cancellation checkpoints between hop blocks).
// A chunk that would exceed the declared total is rejected whole with
// ErrFeedOverflow, leaving the stream usable. A scan error (cancellation,
// a recovered worker panic) leaves the appended audio in place with the
// scan frontier unchanged — a later Feed or Results resumes the scan.
func (st *Stream) Feed(ctx context.Context, pcm []int16) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.buf)+len(pcm) > st.total {
		return fmt.Errorf("%w: %d + %d samples against declared length %d",
			ErrFeedOverflow, len(st.buf), len(pcm), st.total)
	}
	st.buf = append(st.buf, pcm...)
	return st.advance(ctx)
}

// advance scores coarse windows [scanned, frontier) — the windows fully
// contained in the audio fed so far that have not been scored yet. Called
// with st.mu held.
//
// In exact-FFT coarse mode (the paper's default: coarse step 1000 is far
// above the sliding-DFT break-even) every window is scored by an
// independent band-restricted FFT, so scores are independent of how the
// windows are grouped into scan calls and the frontier advances in one
// call. In streaming coarse mode the batch engine resynchronizes (full-FFT
// Reset) at fixed StreamResyncHops block starts and slides within a block,
// so the incremental scan advances block-aligned: each call covers whole
// grid blocks from the block containing the frontier, re-sliding a partial
// block's already-scored prefix when its block completes later —
// recomputing bit-identical values, never diverging from the batch grid.
func (st *Stream) advance(ctx context.Context) error {
	frontier := st.grid.CompleteWindows(len(st.buf))
	if frontier <= st.scanned {
		return nil
	}
	rec := recSource{pcm: st.buf}
	k := len(st.specs)
	if !st.stream {
		lo := st.grid.WindowStart(st.scanned)
		count := frontier - st.scanned
		if err := st.d.scanWindows(ctx, rec, st.winLen, lo, st.grid.Step, count, st.band, false, st.specs, st.scores[st.scanned*k:frontier*k], nil); err != nil {
			return err
		}
		st.scanned = frontier
		return nil
	}
	for b := st.scanned / st.grid.Block; ; b++ {
		w0, w1 := st.grid.BlockBounds(b)
		if w0 >= frontier {
			break
		}
		end := w1
		if end > frontier {
			end = frontier
		}
		if err := st.d.scanWindows(ctx, rec, st.winLen, st.grid.WindowStart(w0), st.grid.Step, end-w0, st.band, true, st.specs, st.scores[w0*k:end*k], nil); err != nil {
			return err
		}
		st.scanned = end
	}
	return nil
}

// Results reduces the scanned prefix into one Result per signal — the
// same argmax fold, fine scan, exact-at-peak re-check, and ε absent check
// the batch engine performs, over the windows arrived so far.
//
// The int return is the need: 0 when the results are valid for the current
// prefix, otherwise the largest number of additional samples required
// before they can be computed — because no coarse window is complete yet,
// or because a candidate's fine-scan band (argmax ± CoarseStep, clamped to
// the FULL recording's window range, plus one window length) has not fully
// arrived. Results is repeatable and side-effect-free on the scan state:
// calling it on a longer prefix re-reduces from the same scores.
//
// Cost accounting note: WindowsScanned and CoarseScanned report the FULL
// fixed grid's coarse count (known a priori from the declared length), not
// the prefix's — the modeled per-window cost of the eventual complete scan,
// byte-identical to the batch engine's accounting, which is what keeps an
// early decision's modeled timing equal to the batch oracle's.
func (st *Stream) Results(ctx context.Context) ([]Result, int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	// A stream past its loss ceiling never decides — the refusal is
	// sticky and typed, whatever the caller does next.
	if err := st.ceiling(); err != nil {
		return nil, 0, err
	}
	// Resume a scan a failed Feed left behind (no-op otherwise).
	if err := st.advance(ctx); err != nil {
		return nil, 0, err
	}
	fed := len(st.buf)
	if st.scanned == 0 {
		return nil, st.grid.NeedFor(0) - fed, nil
	}

	// Degraded mode: windows overlapping a lost span hold zero-filled
	// fabricated audio. Their scores are computed (keeping the scan
	// arithmetic identical to a clean feed) but deterministically excluded
	// from the argmax — exclusion depends only on the fixed grid and the
	// lost spans, never on chunking or GOMAXPROCS.
	excl, nExcl := st.excludedWindows()

	k := len(st.specs)
	bestIdx := make([]int, k)
	bestPow := make([]float64, k)
	for s := range st.specs {
		bestPow[s] = math.Inf(-1)
		bestIdx[s] = -1
	}
	for w := 0; w < st.scanned; w++ {
		if excl != nil && excl[w] {
			continue
		}
		i := st.grid.WindowStart(w)
		row := st.scores[w*k : (w+1)*k]
		for s := range st.specs {
			if p := row[s]; p > bestPow[s] {
				bestPow[s], bestIdx[s] = p, i
			}
		}
	}

	// Every candidate's fine band must have arrived before any fine scan
	// runs, so a Results call either returns complete results or a need —
	// never a half-fine state.
	need := 0
	for s := range st.specs {
		if bestIdx[s] < 0 || math.IsInf(bestPow[s], -1) {
			continue
		}
		_, hi, _ := st.d.cfg.fineRange(bestIdx[s], st.limit)
		if n := hi + st.winLen - fed; n > need {
			need = n
		}
	}
	if need > 0 {
		return nil, need, nil
	}

	// Degraded-mode gates, after the candidates are known. A candidate
	// whose fine-scan span (argmax ± CoarseStep plus one window) touches a
	// lost span cannot be exact-at-peak re-checked against real audio; a ⊥
	// with excluded windows might have found its signal in the audio that
	// never arrived. Both refuse typed rather than guess.
	for s := range st.specs {
		if bestIdx[s] < 0 || math.IsInf(bestPow[s], -1) {
			if nExcl > 0 {
				return nil, 0, fmt.Errorf("%w: no signal in the surviving windows with %d of %d windows lost",
					ErrInsufficientAudio, nExcl, st.grid.Count)
			}
			continue
		}
		lo, hi, _ := st.d.cfg.fineRange(bestIdx[s], st.limit)
		if st.overlapsLost(lo, hi+st.winLen) {
			return nil, 0, fmt.Errorf("%w: fine-scan span [%d, %d) around the peak at %d overlaps lost audio",
				ErrInsufficientAudio, lo, hi+st.winLen, bestIdx[s])
		}
	}

	fineStream := !st.d.disableStream && dsp.StreamingWins(st.winLen, st.band.hi-st.band.lo, st.d.cfg.FineStep)
	rec := recSource{pcm: st.buf}
	sb := st.d.getScores(1)
	defer st.d.scorePool.Put(sb)
	results := make([]Result, k)
	for s, ss := range st.specs {
		if err := ctxErr(ctx); err != nil {
			return nil, 0, err
		}
		results[s].WindowsScanned = st.grid.Count
		results[s].CoarseScanned = st.grid.Count
		if bestIdx[s] < 0 || math.IsInf(bestPow[s], -1) {
			// Every scanned window failed the sanity checks: ⊥ on this
			// prefix (equal to the batch ⊥ once the tail holds no passing
			// window — the horizon contract).
			results[s].Power = bestPow[s]
			results[s].Found = false
			continue
		}
		fineCount, err := st.d.fineLocate(ctx, rec, st.winLen, st.limit, st.band, fineStream, st.specs[s:s+1], sb, &bestPow[s], &bestIdx[s])
		if err != nil {
			return nil, 0, err
		}
		results[s].WindowsScanned += fineCount
		results[s].Power = bestPow[s]
		if bestPow[s] < ss.absentFloor {
			if nExcl > 0 {
				// An absent verdict is only trustworthy when every grid
				// window was scored: the signal may sit in the lost audio.
				return nil, 0, fmt.Errorf("%w: signal below the ε floor with %d of %d windows lost",
					ErrInsufficientAudio, nExcl, st.grid.Count)
			}
			results[s].Found = false
			continue
		}
		results[s].Location = bestIdx[s]
		results[s].Found = true
	}
	return results, 0, nil
}
