package detect

import (
	"context"
	"errors"
	"fmt"
)

// DefaultMaxLossFraction is the degraded-mode ceiling applied when
// Config.MaxLossFraction is zero: a stream that loses more than a quarter
// of its declared recording refuses to decide.
const DefaultMaxLossFraction = 0.25

// ErrInsufficientAudio is returned (wrapped, match with errors.Is) by a
// Stream when transport loss precludes a trustworthy decision: the total
// lost audio exceeded the configured ceiling, the surviving argmax's
// fine-scan band overlaps a lost span (the exact-at-peak re-check would
// score fabricated zeros), or loss excluded windows while every scored
// window failed the sanity checks (a ⊥ that might be a loss artifact).
// It is a decision-grade refusal — the caller gets a typed error, never a
// silently low-confidence accept or reject.
var ErrInsufficientAudio = errors.New("detect: lost audio precludes a trustworthy decision")

// lostSpan is a half-open sample range [lo, hi) declared lost.
type lostSpan struct{ lo, hi int }

// FeedLost declares the next n samples of the stream's recording lost:
// the transport could not deliver them and the repair deadline passed.
// The span is zero-filled in the buffer — keeping the fixed hop grid, the
// block-aligned scan order, and the sliding-DFT resync arithmetic
// bit-identical to a clean feed — and recorded so Results deterministically
// excludes every coarse window overlapping it from the argmax fold. Like
// Feed, an over-length span is rejected whole with ErrFeedOverflow. When
// cumulative loss crosses the MaxLossFraction ceiling the span is still
// recorded but FeedLost (and every later Results) reports
// ErrInsufficientAudio — the stream refuses to decide.
func (st *Stream) FeedLost(ctx context.Context, n int) error {
	if n < 0 {
		return fmt.Errorf("detect: negative lost-span length %d", n)
	}
	if n == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.buf)+n > st.total {
		return fmt.Errorf("%w: %d + %d lost samples against declared length %d",
			ErrFeedOverflow, len(st.buf), n, st.total)
	}
	lo := len(st.buf)
	st.buf = st.buf[:lo+n]
	clear(st.buf[lo:])
	if k := len(st.lost); k > 0 && st.lost[k-1].hi == lo {
		st.lost[k-1].hi = lo + n
	} else {
		st.lost = append(st.lost, lostSpan{lo, lo + n})
	}
	st.lostSamples += n
	if err := st.ceiling(); err != nil {
		return err
	}
	return st.advance(ctx)
}

// ceiling reports ErrInsufficientAudio once cumulative loss exceeds the
// configured bound. Called with st.mu held.
func (st *Stream) ceiling() error {
	if st.lostSamples > st.maxLost {
		return fmt.Errorf("%w: %d of %d samples lost exceeds the %d-sample ceiling",
			ErrInsufficientAudio, st.lostSamples, st.total, st.maxLost)
	}
	return nil
}

// Loss reports the stream's degraded-mode accounting: how many samples
// have been declared lost, and how many coarse windows of the full fixed
// grid those spans exclude from scoring.
func (st *Stream) Loss() (samples, windows int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, n := st.excludedWindows()
	return st.lostSamples, n
}

// excludedWindows marks the grid windows overlapping any lost span (nil
// when the feed is clean — the zero-loss path allocates nothing). Called
// with st.mu held.
func (st *Stream) excludedWindows() ([]bool, int) {
	if len(st.lost) == 0 {
		return nil, 0
	}
	excl := make([]bool, st.grid.Count)
	n := 0
	for _, sp := range st.lost {
		w0, w1 := st.grid.WindowsOverlapping(sp.lo, sp.hi)
		for w := w0; w < w1; w++ {
			if !excl[w] {
				excl[w] = true
				n++
			}
		}
	}
	return excl, n
}

// overlapsLost reports whether the sample range [lo, hi) intersects any
// lost span. Called with st.mu held.
func (st *Stream) overlapsLost(lo, hi int) bool {
	for _, sp := range st.lost {
		if sp.lo < hi && sp.hi > lo {
			return true
		}
	}
	return false
}
