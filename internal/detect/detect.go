package detect

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// Config carries the detection parameters of Algorithms 1 and 2. The
// defaults are the paper's prototype settings (§VI-A).
type Config struct {
	// Alpha is the attenuation tolerance: a window may match only if each
	// chosen frequency retains power > Alpha·R_f. Paper: 1%.
	Alpha float64
	// BetaFrac sets the foreign-frequency ceiling β = BetaFrac·R_f: every
	// candidate frequency NOT in the reference signal must stay below β.
	// Paper: β = 0.5%·R_f.
	BetaFrac float64
	// Epsilon is the absent-signal threshold fraction: if the maximum
	// normalized power over all windows is below Epsilon·R_S (R_S = Σ R_f),
	// the signal is declared not present (⊥). The paper sets ε = 1%.
	Epsilon float64
	// Theta is the frequency-smoothing aggregation half-width in FFT bins.
	// Paper: 5.
	Theta int
	// CoarseStep and FineStep are the two stage sizes of the prototype's
	// adaptive search. Paper: 1000 and 10.
	CoarseStep int
	FineStep   int

	// CandidateBandLo and CandidateBandHi optionally pin the canonical
	// half-spectrum bin range [lo, hi) the band-limited scan engine
	// computes per window. Both zero (the default) derives the band from
	// the signals being detected — every bin Algorithm 2 reads, i.e. the
	// candidate frequencies' (possibly aliased) bins ± Theta. When set
	// explicitly the band must lie inside the canonical half-spectrum
	// [0, winLen/2] (hi is half-open, so hi ≤ winLen/2+1) and cover the
	// signals' spectral footprint; DetectAll rejects it otherwise rather
	// than silently scoring bins the engine never computed.
	CandidateBandLo int
	CandidateBandHi int

	// DisableBetaCheck turns off the foreign-frequency sanity check.
	// ABLATION ONLY: the paper's §V argues this check is what defeats
	// all-frequency spoofing; the ablation bench demonstrates that
	// attacks start succeeding without it.
	DisableBetaCheck bool
}

// DefaultConfig returns the paper's prototype parameters.
func DefaultConfig() Config {
	return Config{
		Alpha:      0.01,
		BetaFrac:   0.005,
		Epsilon:    0.01,
		Theta:      5,
		CoarseStep: 1000,
		FineStep:   10,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("detect: alpha %g out of (0,1)", c.Alpha)
	case c.BetaFrac <= 0 || c.BetaFrac >= 1:
		return fmt.Errorf("detect: beta fraction %g out of (0,1)", c.BetaFrac)
	case c.Epsilon <= 0 || c.Epsilon >= 1:
		return fmt.Errorf("detect: epsilon %g out of (0,1)", c.Epsilon)
	case c.Theta < 0:
		return fmt.Errorf("detect: theta %d negative", c.Theta)
	case c.CoarseStep < 1 || c.FineStep < 1:
		return fmt.Errorf("detect: steps %d/%d must be ≥1", c.CoarseStep, c.FineStep)
	case c.FineStep > c.CoarseStep:
		return fmt.Errorf("detect: fine step %d exceeds coarse step %d", c.FineStep, c.CoarseStep)
	}
	if c.CandidateBandLo != 0 || c.CandidateBandHi != 0 {
		switch {
		case c.CandidateBandLo < 0:
			return fmt.Errorf("detect: candidate band [%d, %d) has negative low bin", c.CandidateBandLo, c.CandidateBandHi)
		case c.CandidateBandLo >= c.CandidateBandHi:
			return fmt.Errorf("detect: candidate band [%d, %d) is inverted (lo ≥ hi)", c.CandidateBandLo, c.CandidateBandHi)
		}
		// The upper bound depends on the window length, which is a signal
		// property; DetectAll enforces CandidateBandHi ≤ winLen/2+1.
	}
	return nil
}

// bandRange is a canonical half-spectrum bin range [lo, hi).
type bandRange struct{ lo, hi int }

// CandidateBand returns the canonical half-spectrum bin range [lo, hi)
// covering every power-spectrum bin Algorithm 2 can read for signals drawn
// from p with smoothing half-width theta: each candidate frequency's bin
// ⌊f/fs·N⌋ (which lands above Nyquist for the paper's 25–35 kHz band, on
// the conjugate mirror), widened by ±theta and clamped exactly the way
// BandPower clamps, then folded to canonical bins k ≤ N/2. The band-limited
// scan engine computes only this range (~45% of the bins at the paper's
// parameters).
func CandidateBand(p sigref.Params, theta int) (lo, hi int) {
	n := p.Length
	half := n / 2
	minB, maxB := n, -1
	for _, f := range p.Candidates() {
		b := dsp.BinIndex(f, p.SampleRate, n)
		rlo, rhi := b-theta, b+theta
		if rlo < 0 {
			rlo = 0
		}
		if rhi > n-1 {
			rhi = n - 1
		}
		for r := rlo; r <= rhi; r++ {
			m := r
			if m > half {
				m = n - m
			}
			if m < minB {
				minB = m
			}
			if m > maxB {
				maxB = m
			}
		}
	}
	if maxB < 0 {
		// No candidate maps into the spectrum at all (degenerate params);
		// fall back to the full half-spectrum so scoring stays well-defined.
		return 0, half + 1
	}
	return minB, maxB + 1
}

// scanBand resolves the band the engine computes for signals drawn from p:
// the derived footprint by default, or the configured override after
// validating it against the window length and checking it covers the
// footprint.
func (c Config) scanBand(p sigref.Params) (bandRange, error) {
	lo, hi := CandidateBand(p, c.Theta)
	if c.CandidateBandLo == 0 && c.CandidateBandHi == 0 {
		return bandRange{lo, hi}, nil
	}
	cLo, cHi := c.CandidateBandLo, c.CandidateBandHi
	switch {
	// hi is half-open, so hi = winLen/2+1 (including the Nyquist bin) is
	// the largest expressible band — matching the engines' convention, and
	// necessary when a candidate's footprint folds onto bin winLen/2.
	case cLo < 0 || cHi > p.Length/2+1:
		return bandRange{}, fmt.Errorf("detect: candidate band [%d, %d) outside the canonical spectrum [0, %d] for window length %d", cLo, cHi, p.Length/2, p.Length)
	case cLo >= cHi:
		return bandRange{}, fmt.Errorf("detect: candidate band [%d, %d) is inverted (lo ≥ hi)", cLo, cHi)
	case cLo > lo || cHi < hi:
		return bandRange{}, fmt.Errorf("detect: candidate band [%d, %d) does not cover the signals' spectral footprint [%d, %d)", cLo, cHi, lo, hi)
	}
	return bandRange{cLo, cHi}, nil
}

// Result is the outcome of locating one reference signal.
type Result struct {
	// Location is the sample index where the signal starts, valid only
	// when Found.
	Location int
	// Power is the maximum normalized power observed.
	Power float64
	// Found is false when Algorithm 1 outputs ⊥ (signal not present).
	Found bool
	// WindowsScanned counts NormPower evaluations attributable to this
	// signal (coarse scan + its fine scan); the coarse scan is shared
	// across signals detected in the same pass.
	WindowsScanned int
	// CoarseScanned is the shared coarse-scan window count, so callers
	// can compute total FFT work without double-counting.
	CoarseScanned int
}

// Detector locates reference signals in recorded audio.
//
// A Detector is safe for concurrent use and holds pooled per-scan scratch
// (FFT workspaces and score buffers), so steady-state scans perform no
// per-window heap allocations. Must not be copied after first use.
//
// By default each scan fans out over transient goroutines (≤ GOMAXPROCS).
// A long-lived service instead attaches a shared Pool (UsePool) and a
// pinned plan set (UsePlans), so concurrent sessions batch their windows
// through one bounded worker set and one FFT plan per window length.
// Scores are always reduced in window order, so the attachment never
// changes results.
type Detector struct {
	cfg Config

	// pool, when non-nil, supplies scan workers instead of per-scan
	// goroutine fan-out. Set once before first use (UsePool).
	pool *Pool
	// plans, when non-nil, resolves FFT plans with a pinned lock-free
	// lookup instead of the process-wide cache. Set once before first use
	// (UsePlans).
	plans *dsp.PlanSet

	// disableStream forces exact per-window FFTs even when the streaming
	// break-even would choose the sliding engine. Used by benchmarks and
	// A/B tests to measure the engine choice itself; production code
	// leaves it false and lets dsp.StreamingWins decide.
	disableStream bool

	// wsPool holds *scanWorkspace values; one is checked out per scan
	// worker and returned when the scan finishes.
	wsPool sync.Pool
	// scorePool holds *scoreBuf values: the per-window score storage the
	// parallel scan writes into before the deterministic reduction.
	scorePool sync.Pool
}

// scanWorkspace is the per-worker scratch for window scoring: a shared
// immutable FFT plan plus this worker's private spectrum and FFT buffers,
// and — once a streaming scan has run — the worker-local sliding-DFT state
// the range-claiming coarse scan advances incrementally.
type scanWorkspace struct {
	n       int
	plan    *dsp.FFTPlan
	scratch []complex128
	spec    []float64
	// slide is the lazily built streaming engine, reused as long as the
	// scan's band and hop stay the same (they do, across every session of a
	// service: the band is a function of the signal design and Theta).
	slide *dsp.SlidingBandDFT
}

// sliding returns the workspace's streaming engine for (band, step),
// (re)building it only when the requested geometry changes — steady-state
// service traffic reuses the pinned state allocation-free.
func (ws *scanWorkspace) sliding(band bandRange, step int) (*dsp.SlidingBandDFT, error) {
	if s := ws.slide; s != nil {
		if lo, hi := s.Band(); lo == band.lo && hi == band.hi && s.Step() == step {
			return s, nil
		}
	}
	s, err := dsp.NewSlidingBandDFT(ws.plan, band.lo, band.hi, step)
	if err != nil {
		return nil, err
	}
	ws.slide = s
	return s, nil
}

// scoreBuf wraps a growable score slice so it can round-trip through a
// sync.Pool without re-boxing.
type scoreBuf struct{ buf []float64 }

// New builds a Detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// UsePool attaches a shared worker pool: scans stop spawning their own
// goroutines and batch windows through the pool's workers instead. Call
// before the first scan; a nil pool restores the default fan-out.
func (d *Detector) UsePool(p *Pool) { d.pool = p }

// UsePlans attaches a pinned FFT plan set (see dsp.PlanSet). Call before
// the first scan; a nil set restores the process-wide plan cache.
func (d *Detector) UsePlans(ps *dsp.PlanSet) { d.plans = ps }

// getWorkspace checks a workspace for window length n out of the pool,
// building one (with the process-shared FFT plan) on a miss or length
// change.
func (d *Detector) getWorkspace(n int) (*scanWorkspace, error) {
	if v := d.wsPool.Get(); v != nil {
		ws := v.(*scanWorkspace)
		if ws.n == n {
			return ws, nil
		}
		// Window length changed (different signal params): drop the stale
		// workspace and build a fresh one.
	}
	var plan *dsp.FFTPlan
	var err error
	if d.plans != nil {
		plan, err = d.plans.Plan(n)
	} else {
		plan, err = dsp.SharedFFTPlan(n)
	}
	if err != nil {
		return nil, err
	}
	return &scanWorkspace{n: n, plan: plan, scratch: plan.NewScratch(), spec: make([]float64, n)}, nil
}

// getScores checks the score buffer out of the pool, growing it to hold at
// least n values.
func (d *Detector) getScores(n int) *scoreBuf {
	sb, _ := d.scorePool.Get().(*scoreBuf)
	if sb == nil {
		sb = &scoreBuf{}
	}
	if cap(sb.buf) < n {
		sb.buf = make([]float64, n)
	}
	return sb
}

// Config returns the detector's parameters.
func (d *Detector) Config() Config { return d.cfg }

// sigSpec is the precomputed spectral footprint of one reference signal.
type sigSpec struct {
	sig          *sigref.Signal
	chosenBins   []int // spectrum bin per chosen candidate
	foreignBins  []int // spectrum bin per non-chosen candidate
	alphaFloor   float64
	betaCeiling  float64
	absentFloor  float64
	windowLength int
	skipBeta     bool
}

func (d *Detector) newSigSpec(sig *sigref.Signal) *sigSpec {
	p := sig.Params()
	chosenSet := make(map[int]bool, sig.Count())
	for _, idx := range sig.Indices() {
		chosenSet[idx] = true
	}
	var chosen, foreign []int
	for i, f := range p.Candidates() {
		bin := dsp.BinIndex(f, p.SampleRate, p.Length)
		if chosenSet[i] {
			chosen = append(chosen, bin)
		} else {
			foreign = append(foreign, bin)
		}
	}
	return &sigSpec{
		sig:          sig,
		chosenBins:   chosen,
		foreignBins:  foreign,
		alphaFloor:   d.cfg.Alpha * sig.RF(),
		betaCeiling:  d.cfg.BetaFrac * sig.RF(),
		absentFloor:  d.cfg.Epsilon * sig.TotalRF(),
		windowLength: p.Length,
		skipBeta:     d.cfg.DisableBetaCheck,
	}
}

// normPower implements Algorithm 2 given a precomputed window power
// spectrum. It returns −Inf when either sanity check fails.
func (s *sigSpec) normPower(spectrum []float64, theta int) float64 {
	var sumChosen float64
	for _, bin := range s.chosenBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if p <= s.alphaFloor {
			return math.Inf(-1)
		}
		sumChosen += p
	}
	var sumForeign float64
	for _, bin := range s.foreignBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if !s.skipBeta && p >= s.betaCeiling {
			return math.Inf(-1)
		}
		sumForeign += p
	}
	return sumChosen - sumForeign
}

// NormPower exposes Algorithm 2 for a single window (tests, ablations).
func (d *Detector) NormPower(window []float64, sig *sigref.Signal) (float64, error) {
	if sig == nil {
		return 0, errors.New("detect: nil signal")
	}
	if len(window) != sig.Params().Length {
		return 0, fmt.Errorf("detect: window length %d != signal length %d", len(window), sig.Params().Length)
	}
	spec, err := dsp.PowerSpectrum(window)
	if err != nil {
		return 0, err
	}
	return d.newSigSpec(sig).normPower(spec, d.cfg.Theta), nil
}

// Detect runs Algorithm 1 for a single reference signal.
func (d *Detector) Detect(recording []float64, sig *sigref.Signal) (Result, error) {
	results, err := d.DetectAll(recording, sig)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// DetectAll locates several reference signals in one recording, sharing the
// coarse-scan FFTs across signals — the prototype's "detect the two
// reference signals simultaneously in one scan" optimization. All signals
// must share Params (length and grid).
//
// Window spectra run through the pooled zero-alloc band-limited engine —
// exact band-restricted FFTs (dsp.FFTPlan.PowerSpectrumBandInto) or, when
// the coarse step sits below the dsp.StreamingWins break-even, incremental
// sliding-DFT updates (dsp.SlidingBandDFT) — computed only over the band
// Algorithm 2 reads (see Config.CandidateBandLo/Hi; an explicit band that
// is invalid or fails to cover the signals' footprint is rejected here).
// Windows are scored across a bounded worker pool claiming fixed hop
// blocks, and the reduction is performed in window order, so results are
// deterministic for a given recording regardless of GOMAXPROCS.
func (d *Detector) DetectAll(recording []float64, sigs ...*sigref.Signal) ([]Result, error) {
	if len(sigs) == 0 {
		return nil, errors.New("detect: no signals given")
	}
	for _, s := range sigs {
		if s == nil {
			return nil, errors.New("detect: nil signal")
		}
		if s.Params() != sigs[0].Params() {
			return nil, errors.New("detect: signals have differing parameters")
		}
	}
	winLen := sigs[0].Params().Length
	if len(recording) < winLen {
		return nil, fmt.Errorf("detect: recording %d shorter than window %d", len(recording), winLen)
	}
	band, err := d.cfg.scanBand(sigs[0].Params())
	if err != nil {
		return nil, err
	}

	specs := make([]*sigSpec, len(sigs))
	for i, s := range sigs {
		specs[i] = d.newSigSpec(s)
	}

	results := make([]Result, len(sigs))
	bestIdx := make([]int, len(sigs))
	bestPow := make([]float64, len(sigs))
	for i := range bestPow {
		bestPow[i] = math.Inf(-1)
		bestIdx[i] = -1
	}

	// Coarse scan: one FFT per window, scored against every signal. The
	// windows are scored across the worker pool, then reduced sequentially
	// in window order, so the result (including ties, which the earliest
	// window wins) is deterministic and independent of GOMAXPROCS —
	// identical to running this engine's scan sequentially. (It is not
	// bit-identical to the pre-plan implementation: the planned FFT rounds
	// a few ULPs differently; see dsp.FFTPlan.)
	limit := len(recording) - winLen
	coarseCount := limit/d.cfg.CoarseStep + 1
	sb := d.getScores(coarseCount * len(specs))
	defer d.scorePool.Put(sb)

	// The coarse scan streams (sliding-DFT hops between periodic full-FFT
	// resyncs) when the measured break-even says the incremental update is
	// cheaper than an independent band-restricted FFT per window; at the
	// paper's default coarse step of 1000 it is not, and the scan runs
	// exact per-window FFTs — bit-identical to the pre-streaming engine.
	stream := !d.disableStream && dsp.StreamingWins(winLen, band.hi-band.lo, d.cfg.CoarseStep)
	scores := sb.buf[:coarseCount*len(specs)]
	if err := d.scanWindows(recording, winLen, 0, d.cfg.CoarseStep, coarseCount, band, stream, specs, scores); err != nil {
		return nil, err
	}
	for w := 0; w < coarseCount; w++ {
		i := w * d.cfg.CoarseStep
		row := scores[w*len(specs) : (w+1)*len(specs)]
		for s := range specs {
			if p := row[s]; p > bestPow[s] {
				bestPow[s], bestIdx[s] = p, i
			}
		}
	}
	scanned := coarseCount

	// Fine scan per signal around its coarse argmax.
	for s, ss := range specs {
		results[s].WindowsScanned = scanned
		results[s].CoarseScanned = scanned
		if bestIdx[s] < 0 || math.IsInf(bestPow[s], -1) {
			// Every coarse window failed the sanity checks: ⊥.
			results[s].Power = bestPow[s]
			results[s].Found = false
			continue
		}
		lo := bestIdx[s] - d.cfg.CoarseStep
		if lo < 0 {
			lo = 0
		}
		hi := bestIdx[s] + d.cfg.CoarseStep
		if hi > limit {
			hi = limit
		}
		fineCount := (hi-lo)/d.cfg.FineStep + 1
		one := specs[s : s+1]
		fineScores := sb.buf
		if cap(fineScores) < fineCount {
			sb.buf = make([]float64, fineCount)
			fineScores = sb.buf
		}
		fineScores = fineScores[:fineCount]
		// The fine scan localizes the argmax: it keeps exact per-window
		// FFTs (band-restricted unpack only) so fine scores never carry
		// sliding-DFT drift into the reported location and power.
		if err := d.scanWindows(recording, winLen, lo, d.cfg.FineStep, fineCount, band, false, one, fineScores); err != nil {
			return nil, err
		}
		results[s].WindowsScanned += fineCount
		for w := 0; w < fineCount; w++ {
			if p := fineScores[w]; p > bestPow[s] {
				bestPow[s], bestIdx[s] = p, lo+w*d.cfg.FineStep
			}
		}
		results[s].Power = bestPow[s]
		// Absent-signal check (Algorithm 1 lines 11–14 with the
		// prototype's ε threshold): deny when the best match is weaker
		// than ε·R_S.
		if bestPow[s] < ss.absentFloor {
			results[s].Found = false
			continue
		}
		results[s].Location = bestIdx[s]
		results[s].Found = true
	}
	return results, nil
}

// fftScanBlock is the contiguous hop-range size workers claim in the exact
// per-window-FFT mode. Range claiming exists for the streaming mode (the
// incremental state must stay worker-local); in FFT mode every window is
// independent, so the block size only tunes claim overhead and cache
// locality and never changes a score.
const fftScanBlock = 4

// scanJob bundles one window-scan's parameters so block processing is
// shared verbatim between the sequential fast path and pool workers — the
// block grid, not the worker schedule, determines every score.
type scanJob struct {
	rec    []float64
	winLen int
	lo     int
	step   int
	count  int
	band   bandRange
	stream bool
	specs  []*sigSpec
	scores []float64
	theta  int
	block  int
}

// runBlock scores the contiguous hop range of block b with ws (and its
// sliding engine sd in streaming mode: one exact Reset at the block start,
// incremental advances within).
func (j *scanJob) runBlock(ws *scanWorkspace, sd *dsp.SlidingBandDFT, b int) error {
	w0 := b * j.block
	wEnd := w0 + j.block
	if wEnd > j.count {
		wEnd = j.count
	}
	if j.stream {
		if err := sd.Reset(j.rec, j.lo+w0*j.step); err != nil {
			return err
		}
		for w := w0; w < wEnd; w++ {
			if w > w0 {
				if err := sd.Advance(); err != nil {
					return err
				}
			}
			if err := sd.PowersInto(ws.spec); err != nil {
				return err
			}
			j.score(w, ws.spec)
		}
		return nil
	}
	for w := w0; w < wEnd; w++ {
		i := j.lo + w*j.step
		if err := ws.plan.PowerSpectrumBandInto(ws.spec, j.rec[i:i+j.winLen], ws.scratch, j.band.lo, j.band.hi); err != nil {
			return err
		}
		j.score(w, ws.spec)
	}
	return nil
}

func (j *scanJob) score(w int, spec []float64) {
	for s, ss := range j.specs {
		j.scores[w*len(j.specs)+s] = ss.normPower(spec, j.theta)
	}
}

// scanWindows scores the arithmetic window sequence lo, lo+step, … (count
// windows) against every spec, writing scores[w*len(specs)+s]. Workers —
// idle goroutines borrowed from the attached Pool when one is set,
// transient goroutines (≤ GOMAXPROCS) otherwise — claim contiguous blocks
// of hops off a shared atomic counter, each with one pooled workspace.
//
// In FFT mode each window gets an exact band-restricted power spectrum
// (dsp.FFTPlan.PowerSpectrumBandInto), so scores are independent of
// scheduling and blocking. In streaming mode (coarse scans below the
// sliding-DFT break-even) each block starts with a full-FFT Reset and
// advances incrementally within the block; the block grid is fixed
// (dsp.StreamResyncHops), so which worker computes a block never changes
// its scores and results stay bit-deterministic at any GOMAXPROCS. The
// caller's in-order reduction therefore always matches a sequential scan.
func (d *Detector) scanWindows(recording []float64, winLen, lo, step, count int, band bandRange, stream bool, specs []*sigSpec, scores []float64) error {
	// Bounds guard: the last window is recording[lo+(count-1)*step :
	// lo+(count-1)*step+winLen]. A recording too short for the requested
	// sequence used to slice out of range and panic; refuse it instead.
	if lo < 0 || step < 1 || count < 1 {
		return fmt.Errorf("detect: invalid window sequence lo=%d step=%d count=%d", lo, step, count)
	}
	if last := lo + (count-1)*step; last > len(recording)-winLen {
		return fmt.Errorf("detect: recording of %d samples too short for window [%d:%d] (lo=%d step=%d count=%d winLen=%d)",
			len(recording), last, last+winLen, lo, step, count, winLen)
	}

	job := scanJob{
		rec:    recording,
		winLen: winLen,
		lo:     lo,
		step:   step,
		count:  count,
		band:   band,
		stream: stream,
		specs:  specs,
		scores: scores,
		theta:  d.cfg.Theta,
		block:  fftScanBlock,
	}
	if stream {
		// One resync (full-FFT Reset) per block bounds sliding-DFT drift;
		// see dsp.StreamResyncHops for the drift budget.
		job.block = dsp.StreamResyncHops
	}
	blocks := (count + job.block - 1) / job.block

	// Sequential fast path (single-core machines, tiny scans): the
	// submitting goroutine walks the same fixed block grid alone — no
	// closures, no synchronization — so scores are identical to a parallel
	// run by construction and steady-state allocations stay at zero.
	helpers := runtime.GOMAXPROCS(0) - 1
	if d.pool != nil {
		helpers = d.pool.Workers()
	}
	if helpers > blocks-1 {
		helpers = blocks - 1
	}
	if helpers <= 0 {
		ws, err := d.getWorkspace(winLen)
		if err != nil {
			return err
		}
		defer d.wsPool.Put(ws)
		var sd *dsp.SlidingBandDFT
		if stream {
			if sd, err = ws.sliding(band, step); err != nil {
				return err
			}
			// Don't let the pooled workspace pin this scan's recording
			// after the scan ends (runs before the deferred wsPool.Put).
			defer sd.Release()
		}
		for b := 0; b < blocks; b++ {
			if err := job.runBlock(ws, sd, b); err != nil {
				return err
			}
		}
		return nil
	}
	// The parallel path's closures share one heap copy of the job; job
	// itself stays on the stack so the sequential path above is
	// allocation-free.
	jobp := new(scanJob)
	*jobp = job

	var next atomic.Int64
	var errMu sync.Mutex
	var scanErr error
	fail := func(err error) {
		errMu.Lock()
		if scanErr == nil {
			scanErr = err
		}
		errMu.Unlock()
		next.Store(int64(blocks)) // stop remaining claims
	}
	work := func() {
		ws, err := d.getWorkspace(winLen)
		if err != nil {
			fail(err)
			return
		}
		defer d.wsPool.Put(ws)
		var sd *dsp.SlidingBandDFT
		if stream {
			if sd, err = ws.sliding(band, step); err != nil {
				fail(err)
				return
			}
			// Don't let the pooled workspace pin this scan's recording
			// after the scan ends (runs before the deferred wsPool.Put).
			defer sd.Release()
		}
		for {
			b := int(next.Add(1)) - 1
			if b >= blocks {
				return
			}
			if err := jobp.runBlock(ws, sd, b); err != nil {
				fail(err)
				return
			}
		}
	}

	// The submitting goroutine always participates; extra workers join up
	// to the bound. With a pool attached only idle pool workers join (a
	// busy pool never blocks a scan); without one, transient goroutines
	// are spawned as before.
	var wg sync.WaitGroup
	for g := 0; g < helpers; g++ {
		if d.pool != nil {
			wg.Add(1)
			if !d.pool.offer(func() { defer wg.Done(); work() }) {
				wg.Done()
				break // pool saturated; stop recruiting
			}
		} else {
			wg.Add(1)
			go func() { defer wg.Done(); work() }()
		}
	}
	work()
	wg.Wait()
	return scanErr
}

// Prewarm builds and pools workers scan workspaces sized for signals drawn
// from p: the pinned FFT plan, the full-length spectrum buffer, the packed
// FFT scratch, and — when the configured coarse step streams — the
// sliding-DFT state and its shared rotation table. A long-lived service
// calls this at construction so steady-state traffic never pays cold-start
// allocations (and the first sessions don't race to build the same
// tables).
func (d *Detector) Prewarm(p sigref.Params, workers int) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("detect: prewarm: %w", err)
	}
	band, err := d.cfg.scanBand(p)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	stream := dsp.StreamingWins(p.Length, band.hi-band.lo, d.cfg.CoarseStep)
	wss := make([]*scanWorkspace, 0, workers)
	for i := 0; i < workers; i++ {
		ws, err := d.getWorkspace(p.Length)
		if err != nil {
			return err
		}
		if stream {
			if _, err := ws.sliding(band, d.cfg.CoarseStep); err != nil {
				return err
			}
		}
		wss = append(wss, ws)
	}
	for _, ws := range wss {
		d.wsPool.Put(ws)
	}
	return nil
}

// DetectCrossCorrelation locates a reference signal using plain normalized
// cross-correlation against the original time-domain waveform — the
// BeepBeep-style detector the ACTION-CC baseline uses. It has no absent
// check; it always returns the correlation argmax, which is exactly why it
// fails under frequency smoothing (Fig. 2b).
func (d *Detector) DetectCrossCorrelation(recording []float64, sig *sigref.Signal) (Result, error) {
	if sig == nil {
		return Result{}, errors.New("detect: nil signal")
	}
	ref := sig.Samples()
	if len(recording) < len(ref) {
		return Result{}, fmt.Errorf("detect: recording %d shorter than reference %d", len(recording), len(ref))
	}
	corr, err := dsp.CrossCorrelate(recording, ref)
	if err != nil {
		return Result{}, err
	}
	idx, val := dsp.ArgMax(corr)
	return Result{Location: idx, Power: val, Found: true, WindowsScanned: len(corr)}, nil
}
