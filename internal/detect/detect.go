package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/faultinject"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// Config carries the detection parameters of Algorithms 1 and 2. The
// defaults are the paper's prototype settings (§VI-A).
type Config struct {
	// Alpha is the attenuation tolerance: a window may match only if each
	// chosen frequency retains power > Alpha·R_f. Paper: 1%.
	Alpha float64
	// BetaFrac sets the foreign-frequency ceiling β = BetaFrac·R_f: every
	// candidate frequency NOT in the reference signal must stay below β.
	// Paper: β = 0.5%·R_f.
	BetaFrac float64
	// Epsilon is the absent-signal threshold fraction: if the maximum
	// normalized power over all windows is below Epsilon·R_S (R_S = Σ R_f),
	// the signal is declared not present (⊥). The paper sets ε = 1%.
	Epsilon float64
	// Theta is the frequency-smoothing aggregation half-width in FFT bins.
	// Paper: 5.
	Theta int
	// CoarseStep and FineStep are the two stage sizes of the prototype's
	// adaptive search. Paper: 1000 and 10.
	CoarseStep int
	FineStep   int

	// CandidateBandLo and CandidateBandHi optionally pin the canonical
	// half-spectrum bin range [lo, hi) the band-limited scan engine
	// computes per window. Both zero (the default) derives the band from
	// the signals being detected — every bin Algorithm 2 reads, i.e. the
	// candidate frequencies' (possibly aliased) bins ± Theta. When set
	// explicitly the band must lie inside the canonical half-spectrum
	// [0, winLen/2] (hi is half-open, so hi ≤ winLen/2+1) and cover the
	// signals' spectral footprint; DetectAll rejects it otherwise rather
	// than silently scoring bins the engine never computed.
	CandidateBandLo int
	CandidateBandHi int

	// MaxLossFraction is the degraded-mode ceiling for streaming
	// ingestion over a lossy transport: the fraction of a stream's
	// declared recording that may be declared lost before the scan gives
	// up with ErrInsufficientAudio instead of deciding from what remains.
	// 0 means DefaultMaxLossFraction; 1 disables the ceiling. Values
	// outside [0, 1] are rejected. Batch scans ignore it.
	MaxLossFraction float64

	// DisableBetaCheck turns off the foreign-frequency sanity check.
	// ABLATION ONLY: the paper's §V argues this check is what defeats
	// all-frequency spoofing; the ablation bench demonstrates that
	// attacks start succeeding without it.
	DisableBetaCheck bool
}

// DefaultConfig returns the paper's prototype parameters.
func DefaultConfig() Config {
	return Config{
		Alpha:      0.01,
		BetaFrac:   0.005,
		Epsilon:    0.01,
		Theta:      5,
		CoarseStep: 1000,
		FineStep:   10,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("detect: alpha %g out of (0,1)", c.Alpha)
	case c.BetaFrac <= 0 || c.BetaFrac >= 1:
		return fmt.Errorf("detect: beta fraction %g out of (0,1)", c.BetaFrac)
	case c.Epsilon <= 0 || c.Epsilon >= 1:
		return fmt.Errorf("detect: epsilon %g out of (0,1)", c.Epsilon)
	case c.Theta < 0:
		return fmt.Errorf("detect: theta %d negative", c.Theta)
	case c.CoarseStep < 1 || c.FineStep < 1:
		return fmt.Errorf("detect: steps %d/%d must be ≥1", c.CoarseStep, c.FineStep)
	case c.FineStep > c.CoarseStep:
		return fmt.Errorf("detect: fine step %d exceeds coarse step %d", c.FineStep, c.CoarseStep)
	case c.MaxLossFraction < 0 || c.MaxLossFraction > 1:
		return fmt.Errorf("detect: max loss fraction %g outside [0, 1]", c.MaxLossFraction)
	}
	if c.CandidateBandLo != 0 || c.CandidateBandHi != 0 {
		switch {
		case c.CandidateBandLo < 0:
			return fmt.Errorf("detect: candidate band [%d, %d) has negative low bin", c.CandidateBandLo, c.CandidateBandHi)
		case c.CandidateBandLo >= c.CandidateBandHi:
			return fmt.Errorf("detect: candidate band [%d, %d) is inverted (lo ≥ hi)", c.CandidateBandLo, c.CandidateBandHi)
		}
		// The upper bound depends on the window length, which is a signal
		// property; DetectAll enforces CandidateBandHi ≤ winLen/2+1.
	}
	return nil
}

// bandRange is a canonical half-spectrum bin range [lo, hi).
type bandRange struct{ lo, hi int }

// CandidateBand returns the canonical half-spectrum bin range [lo, hi)
// covering every power-spectrum bin Algorithm 2 can read for signals drawn
// from p with smoothing half-width theta: each candidate frequency's bin
// ⌊f/fs·N⌋ (which lands above Nyquist for the paper's 25–35 kHz band, on
// the conjugate mirror), widened by ±theta and clamped exactly the way
// BandPower clamps, then folded to canonical bins k ≤ N/2. The band-limited
// scan engine computes only this range (~45% of the bins at the paper's
// parameters).
func CandidateBand(p sigref.Params, theta int) (lo, hi int) {
	n := p.Length
	half := n / 2
	minB, maxB := n, -1
	for _, f := range p.Candidates() {
		b := dsp.BinIndex(f, p.SampleRate, n)
		rlo, rhi := b-theta, b+theta
		if rlo < 0 {
			rlo = 0
		}
		if rhi > n-1 {
			rhi = n - 1
		}
		for r := rlo; r <= rhi; r++ {
			m := r
			if m > half {
				m = n - m
			}
			if m < minB {
				minB = m
			}
			if m > maxB {
				maxB = m
			}
		}
	}
	if maxB < 0 {
		// No candidate maps into the spectrum at all (degenerate params);
		// fall back to the full half-spectrum so scoring stays well-defined.
		return 0, half + 1
	}
	return minB, maxB + 1
}

// scanBand resolves the band the engine computes for signals drawn from p:
// the derived footprint by default, or the configured override after
// validating it against the window length and checking it covers the
// footprint.
func (c Config) scanBand(p sigref.Params) (bandRange, error) {
	lo, hi := CandidateBand(p, c.Theta)
	if c.CandidateBandLo == 0 && c.CandidateBandHi == 0 {
		return bandRange{lo, hi}, nil
	}
	cLo, cHi := c.CandidateBandLo, c.CandidateBandHi
	switch {
	// hi is half-open, so hi = winLen/2+1 (including the Nyquist bin) is
	// the largest expressible band — matching the engines' convention, and
	// necessary when a candidate's footprint folds onto bin winLen/2.
	case cLo < 0 || cHi > p.Length/2+1:
		return bandRange{}, fmt.Errorf("detect: candidate band [%d, %d) outside the canonical spectrum [0, %d] for window length %d", cLo, cHi, p.Length/2, p.Length)
	case cLo >= cHi:
		return bandRange{}, fmt.Errorf("detect: candidate band [%d, %d) is inverted (lo ≥ hi)", cLo, cHi)
	case cLo > lo || cHi < hi:
		return bandRange{}, fmt.Errorf("detect: candidate band [%d, %d) does not cover the signals' spectral footprint [%d, %d)", cLo, cHi, lo, hi)
	}
	return bandRange{cLo, cHi}, nil
}

// Result is the outcome of locating one reference signal.
type Result struct {
	// Location is the sample index where the signal starts, valid only
	// when Found.
	Location int
	// Power is the maximum normalized power observed.
	Power float64
	// Found is false when Algorithm 1 outputs ⊥ (signal not present).
	Found bool
	// WindowsScanned counts NormPower evaluations attributable to this
	// signal (coarse scan + its fine scan); the coarse scan is shared
	// across signals detected in the same pass.
	WindowsScanned int
	// CoarseScanned is the shared coarse-scan window count, so callers
	// can compute total FFT work without double-counting.
	CoarseScanned int
}

// PanicError is a panic recovered inside the scan engine (a pool worker,
// a transient scan goroutine, or the submitting goroutine's own share of a
// scan), converted to an error so one crashing scan cannot take down the
// process or the shared worker pool. The workspace the panicking goroutine
// held is discarded, not recycled, so later scans never see its
// potentially corrupted scratch; the service layer wraps PanicError into
// its typed ErrInternal and re-prewarms a replacement workspace.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("detect: panic during scan: %v", e.Value)
}

// Detector locates reference signals in recorded audio.
//
// A Detector is safe for concurrent use and holds pooled per-scan scratch
// (FFT workspaces and score buffers), so steady-state scans perform no
// per-window heap allocations. Must not be copied after first use.
//
// By default each scan fans out over transient goroutines (≤ GOMAXPROCS).
// A long-lived service instead attaches a shared Pool (UsePool) and a
// pinned plan set (UsePlans), so concurrent sessions batch their windows
// through one bounded worker set and one FFT plan per window length.
// Scores are always reduced in window order, so the attachment never
// changes results.
type Detector struct {
	cfg Config

	// pool, when non-nil, supplies scan workers instead of per-scan
	// goroutine fan-out. Set once before first use (UsePool).
	pool *Pool
	// plans, when non-nil, resolves FFT plans with a pinned lock-free
	// lookup instead of the process-wide cache. Set once before first use
	// (UsePlans).
	plans *dsp.PlanSet

	// disableStream forces exact per-window FFTs even when the streaming
	// break-even would choose the sliding engine. Used by benchmarks and
	// A/B tests to measure the engine choice itself; production code
	// leaves it false and lets dsp.StreamingWins decide.
	disableStream bool

	// wsPool holds *scanWorkspace values; one is checked out per scan
	// worker and returned when the scan finishes.
	wsPool sync.Pool
	// scorePool holds *scoreBuf values: the per-window score storage the
	// parallel scan writes into before the deterministic reduction.
	scorePool sync.Pool
}

// scanWorkspace is the per-worker scratch for window scoring: a shared
// immutable FFT plan plus this worker's private spectrum and FFT buffers,
// and — once a streaming scan has run — the worker-local sliding-DFT state
// the range-claiming coarse scan advances incrementally.
type scanWorkspace struct {
	n       int
	plan    *dsp.FFTPlan
	scratch []complex128
	spec    []float64
	// slide is the lazily built streaming engine, reused as long as the
	// scan's band and hop stay the same (they do, across every session of a
	// service: the band is a function of the signal design and Theta).
	slide *dsp.SlidingBandDFT
}

// sliding returns the workspace's streaming engine for (band, step),
// (re)building it only when the requested band changes — the hop size is
// mutable on the engine (dsp.SlidingBandDFT.SetStep), so one pinned state
// serves both the coarse and the fine hop sequences and steady-state
// service traffic reuses it allocation-free.
func (ws *scanWorkspace) sliding(band bandRange, step int) (*dsp.SlidingBandDFT, error) {
	if s := ws.slide; s != nil {
		if lo, hi := s.Band(); lo == band.lo && hi == band.hi {
			if err := s.SetStep(step); err != nil {
				return nil, err
			}
			return s, nil
		}
	}
	s, err := dsp.NewSlidingBandDFT(ws.plan, band.lo, band.hi, step)
	if err != nil {
		return nil, err
	}
	ws.slide = s
	return s, nil
}

// scoreBuf wraps a growable score slice so it can round-trip through a
// sync.Pool without re-boxing.
type scoreBuf struct{ buf []float64 }

// recSource is the scanned recording in whichever representation the caller
// holds: float64 samples or raw int16 PCM. Exactly one field is non-nil.
// The int16→float64 widening is exact and the PCM path fuses it into the
// FFT pack stage and the sliding-DFT feed (see dsp), so scanning PCM is
// bit-identical to scanning audio.ToFloat(pcm) — without the 4×-sized float64 copy
// a session used to pay per device.
type recSource struct {
	f   []float64
	pcm []int16
}

func (r recSource) len() int {
	if r.pcm != nil {
		return len(r.pcm)
	}
	return len(r.f)
}

// bandSpectrumAt computes the exact band-restricted power spectrum of the
// window starting at i into ws.spec — the single-window primitive both the
// exact scan mode and the fine scan's at-peak re-check use.
func (r recSource) bandSpectrumAt(ws *scanWorkspace, i, winLen int, band bandRange) error {
	if r.pcm != nil {
		return ws.plan.PowerSpectrumBandIntoPCM(ws.spec, r.pcm[i:i+winLen], ws.scratch, band.lo, band.hi)
	}
	return ws.plan.PowerSpectrumBandInto(ws.spec, r.f[i:i+winLen], ws.scratch, band.lo, band.hi)
}

// reset arms the sliding engine on this recording at the given window start.
func (r recSource) reset(sd *dsp.SlidingBandDFT, start int) error {
	if r.pcm != nil {
		return sd.ResetPCM(r.pcm, start)
	}
	return sd.Reset(r.f, start)
}

// fineDriftMargin is the relative half-width of the streamed-score
// confidence interval the streaming fine scan uses to choose its exact
// re-check candidates: window w is re-scored with an exact band-restricted
// FFT iff score(w) + margin·gross(w) ≥ max_v(score(v) − margin·gross(v)),
// where gross is the total (unsigned) band power the score read — i.e. iff
// the window's true score could still be the true maximum. The sliding
// engine's drift between resyncs is bounded at ≤2e-13 relative
// (dsp.StreamResyncHops); 1e-9 keeps >5000× headroom above that bound
// (the contract floor is 1e3×) while in practice re-checking only the peak
// window plus exact ties.
const fineDriftMargin = 1e-9

// New builds a Detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// UsePool attaches a shared worker pool: scans stop spawning their own
// goroutines and batch windows through the pool's workers instead. Call
// before the first scan; a nil pool restores the default fan-out.
func (d *Detector) UsePool(p *Pool) { d.pool = p }

// UsePlans attaches a pinned FFT plan set (see dsp.PlanSet). Call before
// the first scan; a nil set restores the process-wide plan cache.
func (d *Detector) UsePlans(ps *dsp.PlanSet) { d.plans = ps }

// getWorkspace checks a workspace for window length n out of the pool,
// building one (with the process-shared FFT plan) on a miss or length
// change.
func (d *Detector) getWorkspace(n int) (*scanWorkspace, error) {
	if v := d.wsPool.Get(); v != nil {
		ws := v.(*scanWorkspace)
		if ws.n == n {
			return ws, nil
		}
		// Window length changed (different signal params): drop the stale
		// workspace and build a fresh one.
	}
	var plan *dsp.FFTPlan
	var err error
	if d.plans != nil {
		plan, err = d.plans.Plan(n)
	} else {
		plan, err = dsp.SharedFFTPlan(n)
	}
	if err != nil {
		return nil, err
	}
	return &scanWorkspace{n: n, plan: plan, scratch: plan.NewScratch(), spec: make([]float64, n)}, nil
}

// getScores checks the score buffer out of the pool, growing it to hold at
// least n values.
func (d *Detector) getScores(n int) *scoreBuf {
	sb, _ := d.scorePool.Get().(*scoreBuf)
	if sb == nil {
		sb = &scoreBuf{}
	}
	if cap(sb.buf) < n {
		sb.buf = make([]float64, n)
	}
	return sb
}

// Config returns the detector's parameters.
func (d *Detector) Config() Config { return d.cfg }

// sigSpec is the precomputed spectral footprint of one reference signal.
type sigSpec struct {
	sig          *sigref.Signal
	chosenBins   []int // spectrum bin per chosen candidate
	foreignBins  []int // spectrum bin per non-chosen candidate
	alphaFloor   float64
	betaCeiling  float64
	absentFloor  float64
	windowLength int
	skipBeta     bool
}

func (d *Detector) newSigSpec(sig *sigref.Signal) *sigSpec {
	p := sig.Params()
	chosenSet := make(map[int]bool, sig.Count())
	for _, idx := range sig.Indices() {
		chosenSet[idx] = true
	}
	var chosen, foreign []int
	for i, f := range p.Candidates() {
		bin := dsp.BinIndex(f, p.SampleRate, p.Length)
		if chosenSet[i] {
			chosen = append(chosen, bin)
		} else {
			foreign = append(foreign, bin)
		}
	}
	return &sigSpec{
		sig:          sig,
		chosenBins:   chosen,
		foreignBins:  foreign,
		alphaFloor:   d.cfg.Alpha * sig.RF(),
		betaCeiling:  d.cfg.BetaFrac * sig.RF(),
		absentFloor:  d.cfg.Epsilon * sig.TotalRF(),
		windowLength: p.Length,
		skipBeta:     d.cfg.DisableBetaCheck,
	}
}

// normPower implements Algorithm 2 given a precomputed window power
// spectrum. It returns −Inf when either sanity check fails.
func (s *sigSpec) normPower(spectrum []float64, theta int) float64 {
	var sumChosen float64
	for _, bin := range s.chosenBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if p <= s.alphaFloor {
			return math.Inf(-1)
		}
		sumChosen += p
	}
	var sumForeign float64
	for _, bin := range s.foreignBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if !s.skipBeta && p >= s.betaCeiling {
			return math.Inf(-1)
		}
		sumForeign += p
	}
	return sumChosen - sumForeign
}

// normPowerStreamed is normPower over a possibly drifted (streamed)
// spectrum. Each α/β sanity check classifies its band power into one of
// three zones relative to fineDriftMargin:
//
//   - certain fail — outside the threshold by more than drift can explain
//     (p ≤ α·R_f·(1−m), or p ≥ β·(1+m)): the exact check fails too, so the
//     (−Inf, 0) return is authoritative and the window is never re-checked.
//   - certain pass — inside the threshold by more than the margin: the
//     exact check passes, and the streamed score lies within
//     fineDriftMargin·gross of the exact score (gross = total unsigned
//     band power read).
//   - ambiguous — straddling a threshold within the margin: the exact
//     check could go either way, so the window's exact score could be
//     anything from −Inf to its drift interval. Such a window returns
//     gross = +Inf, which makes its confidence interval (−Inf, +Inf): it
//     never tightens the re-check bound but is always re-checked exactly.
func (s *sigSpec) normPowerStreamed(spectrum []float64, theta int) (score, gross float64) {
	const m = fineDriftMargin
	ambiguous := false
	var sumChosen float64
	for _, bin := range s.chosenBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if p <= s.alphaFloor*(1-m) {
			return math.Inf(-1), 0
		}
		if p <= s.alphaFloor*(1+m) {
			ambiguous = true
		}
		sumChosen += p
	}
	var sumForeign float64
	for _, bin := range s.foreignBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if !s.skipBeta {
			if p >= s.betaCeiling*(1+m) {
				return math.Inf(-1), 0
			}
			if p >= s.betaCeiling*(1-m) {
				ambiguous = true
			}
		}
		sumForeign += p
	}
	if ambiguous {
		return sumChosen - sumForeign, math.Inf(1)
	}
	return sumChosen - sumForeign, sumChosen + sumForeign
}

// NormPower exposes Algorithm 2 for a single window (tests, ablations). It
// scores through the same pooled planned band-restricted spectrum as the
// scan engine — so a NormPower value is bit-identical to the score DetectAll
// computes for that window — and agrees with the legacy one-shot
// dsp.PowerSpectrum path to 1e-9 relative (the planned FFT's fused radix-2²
// schedule rounds a few ULPs differently; pinned by the parity test).
func (d *Detector) NormPower(window []float64, sig *sigref.Signal) (float64, error) {
	if sig == nil {
		return 0, errors.New("detect: nil signal")
	}
	if len(window) != sig.Params().Length {
		return 0, fmt.Errorf("detect: window length %d != signal length %d", len(window), sig.Params().Length)
	}
	band, err := d.cfg.scanBand(sig.Params())
	if err != nil {
		return 0, err
	}
	ws, err := d.getWorkspace(len(window))
	if err != nil {
		return 0, err
	}
	defer d.wsPool.Put(ws)
	if err := ws.plan.PowerSpectrumBandInto(ws.spec, window, ws.scratch, band.lo, band.hi); err != nil {
		return 0, err
	}
	return d.newSigSpec(sig).normPower(ws.spec, d.cfg.Theta), nil
}

// Detect runs Algorithm 1 for a single reference signal.
func (d *Detector) Detect(recording []float64, sig *sigref.Signal) (Result, error) {
	results, err := d.DetectAll(recording, sig)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// DetectAll locates several reference signals in one recording, sharing the
// coarse-scan FFTs across signals — the prototype's "detect the two
// reference signals simultaneously in one scan" optimization. All signals
// must share Params (length and grid).
//
// Window spectra run through the pooled zero-alloc band-limited engine —
// exact band-restricted FFTs (dsp.FFTPlan.PowerSpectrumBandInto) or, when
// the scan's hop sits below the dsp.StreamingWins break-even, incremental
// sliding-DFT updates (dsp.SlidingBandDFT) — computed only over the band
// Algorithm 2 reads (see Config.CandidateBandLo/Hi; an explicit band that
// is invalid or fails to cover the signals' footprint is rejected here).
// Windows are scored across a bounded worker pool claiming fixed hop
// blocks, and the reduction is performed in window order, so results are
// deterministic for a given recording regardless of GOMAXPROCS. The fine
// scan streams whenever its hop is below the break-even (the paper's
// default fine step of 10 is) and re-scores every near-peak window with an
// exact FFT, so reported locations and powers are bit-identical to an
// all-exact fine scan by construction (see the fine-scan section below).
func (d *Detector) DetectAll(recording []float64, sigs ...*sigref.Signal) ([]Result, error) {
	return d.detectAll(nil, recSource{f: recording}, sigs)
}

// DetectAllContext is DetectAll with cooperative cancellation: the scan
// observes ctx between hop blocks (the fixed dsp.StreamResyncHops /
// fftScanBlock grid) and between phases, returning ctx.Err() as soon as a
// checkpoint sees the context done. Scans that complete are bit-identical
// to DetectAll — cancellation can only abort a scan, never reorder or
// change its scores. A nil ctx scans without checkpoints.
func (d *Detector) DetectAllContext(ctx context.Context, recording []float64, sigs ...*sigref.Signal) ([]Result, error) {
	return d.detectAll(ctx, recSource{f: recording}, sigs)
}

// DetectAllPCM is DetectAll over a raw int16 PCM recording — the
// representation sessions actually record (audio.Buffer.Samples). The
// widening conversion is fused into the engine's FFT pack stage and
// sliding-window feed, so no float64 copy of the recording is ever
// materialized and results are bit-identical to
// DetectAll(audio.ToFloat(pcm), ...).
func (d *Detector) DetectAllPCM(pcm []int16, sigs ...*sigref.Signal) ([]Result, error) {
	return d.detectAll(nil, recSource{pcm: pcm}, sigs)
}

// DetectAllPCMContext is DetectAllPCM with the cooperative-cancellation
// checkpoints of DetectAllContext.
func (d *Detector) DetectAllPCMContext(ctx context.Context, pcm []int16, sigs ...*sigref.Signal) ([]Result, error) {
	return d.detectAll(ctx, recSource{pcm: pcm}, sigs)
}

// ctxErr reports a done context without blocking; nil contexts never err.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

func (d *Detector) detectAll(ctx context.Context, rec recSource, sigs []*sigref.Signal) ([]Result, error) {
	if len(sigs) == 0 {
		return nil, errors.New("detect: no signals given")
	}
	for _, s := range sigs {
		if s == nil {
			return nil, errors.New("detect: nil signal")
		}
		if s.Params() != sigs[0].Params() {
			return nil, errors.New("detect: signals have differing parameters")
		}
	}
	winLen := sigs[0].Params().Length
	if rec.len() < winLen {
		return nil, fmt.Errorf("detect: recording %d shorter than window %d", rec.len(), winLen)
	}
	band, err := d.cfg.scanBand(sigs[0].Params())
	if err != nil {
		return nil, err
	}

	specs := make([]*sigSpec, len(sigs))
	for i, s := range sigs {
		specs[i] = d.newSigSpec(s)
	}

	results := make([]Result, len(sigs))
	bestIdx := make([]int, len(sigs))
	bestPow := make([]float64, len(sigs))
	for i := range bestPow {
		bestPow[i] = math.Inf(-1)
		bestIdx[i] = -1
	}

	// Coarse scan: one FFT per window, scored against every signal. The
	// windows are scored across the worker pool, then reduced sequentially
	// in window order, so the result (including ties, which the earliest
	// window wins) is deterministic and independent of GOMAXPROCS —
	// identical to running this engine's scan sequentially. (It is not
	// bit-identical to the pre-plan implementation: the planned FFT rounds
	// a few ULPs differently; see dsp.FFTPlan.)
	limit := rec.len() - winLen
	coarseCount := limit/d.cfg.CoarseStep + 1
	sb := d.getScores(coarseCount * len(specs))
	defer d.scorePool.Put(sb)

	// The coarse scan streams (sliding-DFT hops between periodic full-FFT
	// resyncs) when the measured break-even says the incremental update is
	// cheaper than an independent band-restricted FFT per window; at the
	// paper's default coarse step of 1000 it is not, and the scan runs
	// exact per-window FFTs — bit-identical to the pre-streaming engine.
	stream := !d.disableStream && dsp.StreamingWins(winLen, band.hi-band.lo, d.cfg.CoarseStep)
	scores := sb.buf[:coarseCount*len(specs)]
	if err := d.scanWindows(ctx, rec, winLen, 0, d.cfg.CoarseStep, coarseCount, band, stream, specs, scores, nil); err != nil {
		return nil, err
	}
	for w := 0; w < coarseCount; w++ {
		i := w * d.cfg.CoarseStep
		row := scores[w*len(specs) : (w+1)*len(specs)]
		for s := range specs {
			if p := row[s]; p > bestPow[s] {
				bestPow[s], bestIdx[s] = p, i
			}
		}
	}
	scanned := coarseCount

	// The fine scan streams whenever its hop sits below the sliding-DFT
	// break-even — the paper's default fine step of 10 does (break-even is
	// hop ≲15 at the paper's 909-bin band) — without giving up the fine
	// scan's exactness contract: streamed scores pick RE-CHECK CANDIDATES
	// only. Every window whose streamed score could still be the true
	// maximum (see fineDriftMargin) is re-scored with one exact
	// band-restricted FFT, in window order, and the reported location and
	// power come from those exact scores alone. The exact fine argmax (and
	// any exact tie for it) always lands inside the candidate interval, so
	// the result is bit-identical to an all-exact fine scan by
	// construction; the per-window cost drops from one O(N·log N) FFT to
	// O(bins·step) rotate-accumulate updates.
	fineStream := !d.disableStream && dsp.StreamingWins(winLen, band.hi-band.lo, d.cfg.FineStep)

	// Fine scan per signal around its coarse argmax.
	for s, ss := range specs {
		// Cancellation checkpoint between scan phases: an abandoned
		// session stops before burning another fine scan.
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		results[s].WindowsScanned = scanned
		results[s].CoarseScanned = scanned
		if bestIdx[s] < 0 || math.IsInf(bestPow[s], -1) {
			// Every coarse window failed the sanity checks: ⊥.
			results[s].Power = bestPow[s]
			results[s].Found = false
			continue
		}
		fineCount, err := d.fineLocate(ctx, rec, winLen, limit, band, fineStream, specs[s:s+1], sb, &bestPow[s], &bestIdx[s])
		if err != nil {
			return nil, err
		}
		// The streamed evaluations stand in one-for-one for the exact
		// evaluations of the historical all-exact fine scan (the handful of
		// at-peak re-checks ride along uncounted), so the modeled per-window
		// cost accounting is unchanged.
		results[s].WindowsScanned += fineCount
		results[s].Power = bestPow[s]
		// Absent-signal check (Algorithm 1 lines 11–14 with the
		// prototype's ε threshold): deny when the best match is weaker
		// than ε·R_S.
		if bestPow[s] < ss.absentFloor {
			results[s].Found = false
			continue
		}
		results[s].Location = bestIdx[s]
		results[s].Found = true
	}
	return results, nil
}

// fineRange returns the fine-scan window sequence around a coarse argmax:
// starts lo, lo+FineStep, …, hi (count windows), the ±CoarseStep span
// clamped to the recording's window range [0, limit]. limit must be the
// FULL recording's last window start — the streaming engine passes the
// declared total length's limit even when only a prefix has arrived, so an
// early fine scan runs over exactly the range the batch oracle would.
func (c Config) fineRange(bestIdx, limit int) (lo, hi, count int) {
	lo = bestIdx - c.CoarseStep
	if lo < 0 {
		lo = 0
	}
	hi = bestIdx + c.CoarseStep
	if hi > limit {
		hi = limit
	}
	count = (hi-lo)/c.FineStep + 1
	return lo, hi, count
}

// fineLocate runs one signal's fine scan around its coarse argmax
// (*bestIdx), updating (*bestPow, *bestIdx) exactly as the sequential
// all-exact fine reduction would, and returns the number of fine windows
// evaluated. one is the single-spec slice for this signal (a subslice of
// the caller's spec array, so the call is allocation-free); sb is the
// caller's pooled score storage, grown in place as needed. Shared verbatim
// between the batch scan (detectAll) and the incremental engine
// (Stream.Results), which is what keeps streamed decisions bit-identical
// to the batch oracle.
func (d *Detector) fineLocate(ctx context.Context, rec recSource, winLen, limit int, band bandRange, fineStream bool, one []*sigSpec, sb *scoreBuf, bestPow *float64, bestIdx *int) (int, error) {
	lo, _, fineCount := d.cfg.fineRange(*bestIdx, limit)
	need := fineCount
	if fineStream {
		need = 2 * fineCount // scores + per-window gross band power
	}
	if cap(sb.buf) < need {
		sb.buf = make([]float64, need)
	}
	fineScores := sb.buf[:fineCount]
	if !fineStream {
		// Exact per-window FFTs (band-restricted unpack only): fine
		// steps above the break-even don't benefit from streaming.
		if err := d.scanWindows(ctx, rec, winLen, lo, d.cfg.FineStep, fineCount, band, false, one, fineScores, nil); err != nil {
			return 0, err
		}
		for w := 0; w < fineCount; w++ {
			if p := fineScores[w]; p > *bestPow {
				*bestPow, *bestIdx = p, lo+w*d.cfg.FineStep
			}
		}
		return fineCount, nil
	}
	gross := sb.buf[fineCount : 2*fineCount]
	if err := d.scanWindows(ctx, rec, winLen, lo, d.cfg.FineStep, fineCount, band, true, one, fineScores, gross); err != nil {
		return 0, err
	}
	if err := d.rescoreFinePeaks(ctx, rec, winLen, lo, fineCount, band, one[0], fineScores, gross, bestPow, bestIdx); err != nil {
		return 0, err
	}
	return fineCount, nil
}

// rescoreFinePeaks is the exact-at-peak verification pass of the streaming
// fine scan. scores/gross hold the streamed (drift-relaxed) score and total
// unsigned band power of each fine window; every window whose exact score
// could still be the true fine maximum — streamed score within the
// fineDriftMargin confidence interval of the streamed maximum — is
// re-scored with one exact band-restricted FFT, in window order, against
// the strict Algorithm 2 checks, updating (*bestPow, *bestIdx) exactly as
// the all-exact fine reduction would.
//
// Why this is bit-identical to scanning every fine window exactly: every
// window's exact score s(v) lies inside its streamed confidence interval
// [s̃(v) − margin·gross(v), s̃(v) + margin·gross(v)] — for certain-pass
// windows by the drift bound, for certain-fail windows because both are
// −Inf, and for threshold-ambiguous windows because gross = +Inf makes the
// interval (−Inf, +Inf) (see normPowerStreamed's three zones). The exact
// argmax w* therefore satisfies s̃(w*) + margin·gross(w*) ≥ s(w*) ≥ s(v) ≥
// s̃(v) − margin·gross(v) for every v — i.e. w* (and every exact tie for
// the maximum) is always a re-check candidate. Candidates are re-scored in
// ascending window order with the same strictly-greater update rule, so
// the earliest window attaining the exact maximum wins, exactly as in the
// all-exact scan; skipped windows have exact scores strictly below the
// maximum and could never have changed the outcome. A streamed −Inf is
// authoritative, so certain-fail windows are never re-checked and an
// all-certain-fail fine scan re-checks nothing, again matching the
// all-exact scan.
func (d *Detector) rescoreFinePeaks(ctx context.Context, rec recSource, winLen, lo, fineCount int, band bandRange, ss *sigSpec, scores, gross []float64, bestPow *float64, bestIdx *int) error {
	// maxLower is the best exact score certainly attained (the largest
	// interval lower bound); ambiguous windows contribute −Inf to it but
	// still force their own re-check via a +Inf upper bound.
	maxLower := math.Inf(-1)
	anyFinite := false
	for w := 0; w < fineCount; w++ {
		if !math.IsInf(scores[w], -1) {
			anyFinite = true
		}
		if l := scores[w] - fineDriftMargin*gross[w]; l > maxLower {
			maxLower = l
		}
	}
	if !anyFinite {
		// Every fine window certainly failed the sanity checks, so every
		// exact score is −Inf too: nothing can improve on the coarse best.
		return nil
	}
	ws, err := d.getWorkspace(winLen)
	if err != nil {
		return err
	}
	defer d.wsPool.Put(ws)
	for w := 0; w < fineCount; w++ {
		if math.IsInf(scores[w], -1) || scores[w]+fineDriftMargin*gross[w] < maxLower {
			continue
		}
		// Each candidate costs one exact FFT; let cancellation land
		// between them (usually just the peak window, so this is ~free).
		if err := ctxErr(ctx); err != nil {
			return err
		}
		i := lo + w*d.cfg.FineStep
		if err := rec.bandSpectrumAt(ws, i, winLen, band); err != nil {
			return err
		}
		if p := ss.normPower(ws.spec, d.cfg.Theta); p > *bestPow {
			*bestPow, *bestIdx = p, i
		}
	}
	return nil
}

// fftScanBlock is the contiguous hop-range size workers claim in the exact
// per-window-FFT mode. Range claiming exists for the streaming mode (the
// incremental state must stay worker-local); in FFT mode every window is
// independent, so the block size only tunes claim overhead and cache
// locality and never changes a score.
const fftScanBlock = 4

// scanJob bundles one window-scan's parameters so block processing is
// shared verbatim between the sequential fast path and pool workers — the
// block grid, not the worker schedule, determines every score.
type scanJob struct {
	rec    recSource
	winLen int
	lo     int
	step   int
	count  int
	band   bandRange
	stream bool
	specs  []*sigSpec
	scores []float64
	// gross, when non-nil, switches scoring to the drift-relaxed streamed
	// variant (normPowerStreamed) and records each window's total unsigned
	// band power alongside its score — the streaming fine scan's re-check
	// candidate input. Same layout as scores.
	gross []float64
	theta int
	block int
	// blocks is the total block count of the fixed grid.
	blocks int
	// ctx/done are the scan's cancellation checkpoint state: done is
	// ctx.Done(), captured once so the per-block check is a nil test plus
	// a non-blocking select. Both nil for uncancellable scans.
	ctx  context.Context
	done <-chan struct{}
}

// checkpoint returns ctx.Err() once the scan's context is done. It sits
// between hop blocks, so the happy path pays one nil check per block and a
// canceled scan stops within one block's worth of FFT work.
func (j *scanJob) checkpoint() error {
	if j.done == nil {
		return nil
	}
	select {
	case <-j.done:
		return j.ctx.Err()
	default:
		return nil
	}
}

// runBlock scores the contiguous hop range of block b with ws (and its
// sliding engine sd in streaming mode: one exact Reset at the block start,
// incremental advances within).
func (j *scanJob) runBlock(ws *scanWorkspace, sd *dsp.SlidingBandDFT, b int) error {
	// Chaos hook: one atomic load when the fault registry is disabled (the
	// production state); armed, it can stall this block, panic the worker
	// (exercising panic isolation), or trip a Hook that cancels the
	// session mid-scan.
	if err := faultinject.Fire(faultinject.SiteDetectBlock); err != nil {
		return err
	}
	w0 := b * j.block
	wEnd := w0 + j.block
	if wEnd > j.count {
		wEnd = j.count
	}
	if j.stream {
		if err := j.rec.reset(sd, j.lo+w0*j.step); err != nil {
			return err
		}
		for w := w0; w < wEnd; w++ {
			if w > w0 {
				if err := sd.Advance(); err != nil {
					return err
				}
			}
			if err := sd.PowersInto(ws.spec); err != nil {
				return err
			}
			j.score(w, ws.spec)
		}
		return nil
	}
	for w := w0; w < wEnd; w++ {
		if err := j.rec.bandSpectrumAt(ws, j.lo+w*j.step, j.winLen, j.band); err != nil {
			return err
		}
		j.score(w, ws.spec)
	}
	return nil
}

func (j *scanJob) score(w int, spec []float64) {
	if j.gross != nil {
		for s, ss := range j.specs {
			sc, g := ss.normPowerStreamed(spec, j.theta)
			j.scores[w*len(j.specs)+s] = sc
			j.gross[w*len(j.specs)+s] = g
		}
		return
	}
	for s, ss := range j.specs {
		j.scores[w*len(j.specs)+s] = ss.normPower(spec, j.theta)
	}
}

// scanWindows scores the arithmetic window sequence lo, lo+step, … (count
// windows) against every spec, writing scores[w*len(specs)+s] (and, when
// gross is non-nil, the drift-relaxed streamed scores plus per-window gross
// band power — see scanJob.gross). Workers — idle goroutines borrowed from
// the attached Pool when one is set, transient goroutines (≤ GOMAXPROCS)
// otherwise — claim contiguous blocks of hops off a shared atomic counter,
// each with one pooled workspace.
//
// In FFT mode each window gets an exact band-restricted power spectrum
// (dsp.FFTPlan.PowerSpectrumBandInto), so scores are independent of
// scheduling and blocking. In streaming mode (coarse scans below the
// sliding-DFT break-even) each block starts with a full-FFT Reset and
// advances incrementally within the block; the block grid is fixed
// (dsp.StreamResyncHops), so which worker computes a block never changes
// its scores and results stay bit-deterministic at any GOMAXPROCS. The
// caller's in-order reduction therefore always matches a sequential scan.
func (d *Detector) scanWindows(ctx context.Context, rec recSource, winLen, lo, step, count int, band bandRange, stream bool, specs []*sigSpec, scores, gross []float64) error {
	// Bounds guard: the last window is recording[lo+(count-1)*step :
	// lo+(count-1)*step+winLen]. A recording too short for the requested
	// sequence used to slice out of range and panic; refuse it instead.
	if lo < 0 || step < 1 || count < 1 {
		return fmt.Errorf("detect: invalid window sequence lo=%d step=%d count=%d", lo, step, count)
	}
	if last := lo + (count-1)*step; last > rec.len()-winLen {
		return fmt.Errorf("detect: recording of %d samples too short for window [%d:%d] (lo=%d step=%d count=%d winLen=%d)",
			rec.len(), last, last+winLen, lo, step, count, winLen)
	}

	job := scanJob{
		rec:    rec,
		winLen: winLen,
		lo:     lo,
		step:   step,
		count:  count,
		band:   band,
		stream: stream,
		specs:  specs,
		scores: scores,
		gross:  gross,
		theta:  d.cfg.Theta,
		block:  fftScanBlock,
		ctx:    ctx,
	}
	if ctx != nil {
		job.done = ctx.Done()
	}
	if stream {
		// One resync (full-FFT Reset) per block bounds sliding-DFT drift;
		// see dsp.StreamResyncHops for the drift budget.
		job.block = dsp.StreamResyncHops
	}
	job.blocks = (count + job.block - 1) / job.block

	// Sequential fast path (single-core machines, tiny scans): the
	// submitting goroutine walks the same fixed block grid alone — no
	// extra goroutines, no synchronization — so scores are identical to a
	// parallel run by construction and steady-state allocations stay at
	// zero. The shared atomic counter only ever sees one claimant here.
	helpers := runtime.GOMAXPROCS(0) - 1
	if d.pool != nil {
		helpers = d.pool.Workers()
	}
	if helpers > job.blocks-1 {
		helpers = job.blocks - 1
	}
	if helpers <= 0 {
		var next atomic.Int64
		return d.scanWorker(&job, &next)
	}
	// The parallel path's closures share one heap copy of the job; job
	// itself stays on the stack so the sequential path above is
	// allocation-free.
	jobp := new(scanJob)
	*jobp = job

	var next atomic.Int64
	var errMu sync.Mutex
	var scanErr error
	fail := func(err error) {
		errMu.Lock()
		if scanErr == nil {
			scanErr = err
		}
		errMu.Unlock()
		next.Store(int64(jobp.blocks)) // stop remaining claims
	}
	work := func() {
		if err := d.scanWorker(jobp, &next); err != nil {
			fail(err)
		}
	}

	// The submitting goroutine always participates; extra workers join up
	// to the bound. With a pool attached only idle pool workers join (a
	// busy pool never blocks a scan); without one, transient goroutines
	// are spawned as before.
	var wg sync.WaitGroup
	for g := 0; g < helpers; g++ {
		if d.pool != nil {
			wg.Add(1)
			if !d.pool.offer(func() { defer wg.Done(); work() }) {
				wg.Done()
				break // pool saturated; stop recruiting
			}
		} else {
			wg.Add(1)
			go func() { defer wg.Done(); work() }()
		}
	}
	work()
	wg.Wait()
	return scanErr
}

// scanWorker is one goroutine's share of a scan: it checks a workspace
// out of the pool and claims blocks off the shared counter until the grid
// is exhausted, an error occurs, or a checkpoint observes cancellation.
//
// Panic isolation: a panic anywhere in the claimed blocks (a bug, or an
// injected fault) is recovered here and converted to a *PanicError so the
// scan fails with a typed error instead of killing the process. The
// workspace the panic may have left mid-update is treated as poisoned and
// discarded — never recycled into the pool — so subsequent scans only ever
// see scratch in a known-good state; the owning service re-prewarms a
// replacement (detect.Prewarm) when it sees the error.
func (d *Detector) scanWorker(j *scanJob, next *atomic.Int64) (err error) {
	ws, err := d.getWorkspace(j.winLen)
	if err != nil {
		return err
	}
	var sd *dsp.SlidingBandDFT
	defer func() {
		if r := recover(); r != nil {
			// Poisoned: drop ws on the floor (GC reclaims it) and report.
			err = &PanicError{Value: r, Stack: debug.Stack()}
			return
		}
		if sd != nil {
			// Don't let the pooled workspace pin this scan's recording
			// after the scan ends.
			sd.Release()
		}
		d.wsPool.Put(ws)
	}()
	if j.stream {
		if sd, err = ws.sliding(j.band, j.step); err != nil {
			return err
		}
	}
	for {
		b := int(next.Add(1)) - 1
		if b >= j.blocks {
			return nil
		}
		if err := j.checkpoint(); err != nil {
			return err
		}
		if err := j.runBlock(ws, sd, b); err != nil {
			return err
		}
	}
}

// Prewarm builds and pools workers scan workspaces sized for signals drawn
// from p: the pinned FFT plan, the full-length spectrum buffer, the packed
// FFT scratch, and — when the configured coarse step streams — the
// sliding-DFT state and its shared rotation table. A long-lived service
// calls this at construction so steady-state traffic never pays cold-start
// allocations (and the first sessions don't race to build the same
// tables).
func (d *Detector) Prewarm(p sigref.Params, workers int) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("detect: prewarm: %w", err)
	}
	band, err := d.cfg.scanBand(p)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	// One sliding engine per workspace covers every hop size that streams
	// (the hop is mutable on the engine); the paper's default fine step of
	// 10 streams even though its coarse step of 1000 does not.
	bins := band.hi - band.lo
	stream := dsp.StreamingWins(p.Length, bins, d.cfg.CoarseStep) ||
		dsp.StreamingWins(p.Length, bins, d.cfg.FineStep)
	wss := make([]*scanWorkspace, 0, workers)
	for i := 0; i < workers; i++ {
		ws, err := d.getWorkspace(p.Length)
		if err != nil {
			return err
		}
		if stream {
			if _, err := ws.sliding(band, d.cfg.FineStep); err != nil {
				return err
			}
		}
		wss = append(wss, ws)
	}
	for _, ws := range wss {
		d.wsPool.Put(ws)
	}
	return nil
}

// DetectCrossCorrelation locates a reference signal using plain normalized
// cross-correlation against the original time-domain waveform — the
// BeepBeep-style detector the ACTION-CC baseline uses. It has no absent
// check; it always returns the correlation argmax, which is exactly why it
// fails under frequency smoothing (Fig. 2b).
func (d *Detector) DetectCrossCorrelation(recording []float64, sig *sigref.Signal) (Result, error) {
	if sig == nil {
		return Result{}, errors.New("detect: nil signal")
	}
	ref := sig.Samples()
	if len(recording) < len(ref) {
		return Result{}, fmt.Errorf("detect: recording %d shorter than reference %d", len(recording), len(ref))
	}
	corr, err := dsp.CrossCorrelate(recording, ref)
	if err != nil {
		return Result{}, err
	}
	idx, val := dsp.ArgMax(corr)
	return Result{Location: idx, Power: val, Found: true, WindowsScanned: len(corr)}, nil
}
