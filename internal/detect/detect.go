// Package detect implements the paper's signal-detection algorithms:
//
//   - Algorithm 2 (NormPower): the sanity-checked spectral matcher that
//     scores how well a window of recorded audio matches a reference
//     signal's power spectrum, with the α (attenuation floor), β (foreign
//     frequency ceiling), and θ (frequency-smoothing aggregation width)
//     parameters;
//   - Algorithm 1: the sliding-window search for a reference signal's
//     location, with the prototype's adaptive two-stage step (coarse 1000,
//     fine 10), the simultaneous two-signal single-scan optimization, and
//     the ε·R_S absent-signal check that denies authentication when the
//     signal never reached the microphone.
//
// It also provides the cross-correlation detector used by the ACTION-CC
// baseline of Fig. 2(b).
package detect

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// Config carries the detection parameters of Algorithms 1 and 2. The
// defaults are the paper's prototype settings (§VI-A).
type Config struct {
	// Alpha is the attenuation tolerance: a window may match only if each
	// chosen frequency retains power > Alpha·R_f. Paper: 1%.
	Alpha float64
	// BetaFrac sets the foreign-frequency ceiling β = BetaFrac·R_f: every
	// candidate frequency NOT in the reference signal must stay below β.
	// Paper: β = 0.5%·R_f.
	BetaFrac float64
	// Epsilon is the absent-signal threshold fraction: if the maximum
	// normalized power over all windows is below Epsilon·R_S (R_S = Σ R_f),
	// the signal is declared not present (⊥). The paper sets ε = 1%.
	Epsilon float64
	// Theta is the frequency-smoothing aggregation half-width in FFT bins.
	// Paper: 5.
	Theta int
	// CoarseStep and FineStep are the two stage sizes of the prototype's
	// adaptive search. Paper: 1000 and 10.
	CoarseStep int
	FineStep   int

	// DisableBetaCheck turns off the foreign-frequency sanity check.
	// ABLATION ONLY: the paper's §V argues this check is what defeats
	// all-frequency spoofing; the ablation bench demonstrates that
	// attacks start succeeding without it.
	DisableBetaCheck bool
}

// DefaultConfig returns the paper's prototype parameters.
func DefaultConfig() Config {
	return Config{
		Alpha:      0.01,
		BetaFrac:   0.005,
		Epsilon:    0.01,
		Theta:      5,
		CoarseStep: 1000,
		FineStep:   10,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("detect: alpha %g out of (0,1)", c.Alpha)
	case c.BetaFrac <= 0 || c.BetaFrac >= 1:
		return fmt.Errorf("detect: beta fraction %g out of (0,1)", c.BetaFrac)
	case c.Epsilon <= 0 || c.Epsilon >= 1:
		return fmt.Errorf("detect: epsilon %g out of (0,1)", c.Epsilon)
	case c.Theta < 0:
		return fmt.Errorf("detect: theta %d negative", c.Theta)
	case c.CoarseStep < 1 || c.FineStep < 1:
		return fmt.Errorf("detect: steps %d/%d must be ≥1", c.CoarseStep, c.FineStep)
	case c.FineStep > c.CoarseStep:
		return fmt.Errorf("detect: fine step %d exceeds coarse step %d", c.FineStep, c.CoarseStep)
	}
	return nil
}

// Result is the outcome of locating one reference signal.
type Result struct {
	// Location is the sample index where the signal starts, valid only
	// when Found.
	Location int
	// Power is the maximum normalized power observed.
	Power float64
	// Found is false when Algorithm 1 outputs ⊥ (signal not present).
	Found bool
	// WindowsScanned counts NormPower evaluations attributable to this
	// signal (coarse scan + its fine scan); the coarse scan is shared
	// across signals detected in the same pass.
	WindowsScanned int
	// CoarseScanned is the shared coarse-scan window count, so callers
	// can compute total FFT work without double-counting.
	CoarseScanned int
}

// Detector locates reference signals in recorded audio.
//
// A Detector is safe for concurrent use and holds pooled per-scan scratch
// (FFT workspaces and score buffers), so steady-state scans perform no
// per-window heap allocations. Must not be copied after first use.
//
// By default each scan fans out over transient goroutines (≤ GOMAXPROCS).
// A long-lived service instead attaches a shared Pool (UsePool) and a
// pinned plan set (UsePlans), so concurrent sessions batch their windows
// through one bounded worker set and one FFT plan per window length.
// Scores are always reduced in window order, so the attachment never
// changes results.
type Detector struct {
	cfg Config

	// pool, when non-nil, supplies scan workers instead of per-scan
	// goroutine fan-out. Set once before first use (UsePool).
	pool *Pool
	// plans, when non-nil, resolves FFT plans with a pinned lock-free
	// lookup instead of the process-wide cache. Set once before first use
	// (UsePlans).
	plans *dsp.PlanSet

	// wsPool holds *scanWorkspace values; one is checked out per scan
	// worker and returned when the scan finishes.
	wsPool sync.Pool
	// scorePool holds *scoreBuf values: the per-window score storage the
	// parallel scan writes into before the deterministic reduction.
	scorePool sync.Pool
}

// scanWorkspace is the per-worker scratch for window scoring: a shared
// immutable FFT plan plus this worker's private spectrum and FFT buffers.
type scanWorkspace struct {
	n       int
	plan    *dsp.FFTPlan
	scratch []complex128
	spec    []float64
}

// scoreBuf wraps a growable score slice so it can round-trip through a
// sync.Pool without re-boxing.
type scoreBuf struct{ buf []float64 }

// New builds a Detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// UsePool attaches a shared worker pool: scans stop spawning their own
// goroutines and batch windows through the pool's workers instead. Call
// before the first scan; a nil pool restores the default fan-out.
func (d *Detector) UsePool(p *Pool) { d.pool = p }

// UsePlans attaches a pinned FFT plan set (see dsp.PlanSet). Call before
// the first scan; a nil set restores the process-wide plan cache.
func (d *Detector) UsePlans(ps *dsp.PlanSet) { d.plans = ps }

// getWorkspace checks a workspace for window length n out of the pool,
// building one (with the process-shared FFT plan) on a miss or length
// change.
func (d *Detector) getWorkspace(n int) (*scanWorkspace, error) {
	if v := d.wsPool.Get(); v != nil {
		ws := v.(*scanWorkspace)
		if ws.n == n {
			return ws, nil
		}
		// Window length changed (different signal params): drop the stale
		// workspace and build a fresh one.
	}
	var plan *dsp.FFTPlan
	var err error
	if d.plans != nil {
		plan, err = d.plans.Plan(n)
	} else {
		plan, err = dsp.SharedFFTPlan(n)
	}
	if err != nil {
		return nil, err
	}
	return &scanWorkspace{n: n, plan: plan, scratch: plan.NewScratch(), spec: make([]float64, n)}, nil
}

// getScores checks the score buffer out of the pool, growing it to hold at
// least n values.
func (d *Detector) getScores(n int) *scoreBuf {
	sb, _ := d.scorePool.Get().(*scoreBuf)
	if sb == nil {
		sb = &scoreBuf{}
	}
	if cap(sb.buf) < n {
		sb.buf = make([]float64, n)
	}
	return sb
}

// Config returns the detector's parameters.
func (d *Detector) Config() Config { return d.cfg }

// sigSpec is the precomputed spectral footprint of one reference signal.
type sigSpec struct {
	sig          *sigref.Signal
	chosenBins   []int // spectrum bin per chosen candidate
	foreignBins  []int // spectrum bin per non-chosen candidate
	alphaFloor   float64
	betaCeiling  float64
	absentFloor  float64
	windowLength int
	skipBeta     bool
}

func (d *Detector) newSigSpec(sig *sigref.Signal) *sigSpec {
	p := sig.Params()
	chosenSet := make(map[int]bool, sig.Count())
	for _, idx := range sig.Indices() {
		chosenSet[idx] = true
	}
	var chosen, foreign []int
	for i, f := range p.Candidates() {
		bin := dsp.BinIndex(f, p.SampleRate, p.Length)
		if chosenSet[i] {
			chosen = append(chosen, bin)
		} else {
			foreign = append(foreign, bin)
		}
	}
	return &sigSpec{
		sig:          sig,
		chosenBins:   chosen,
		foreignBins:  foreign,
		alphaFloor:   d.cfg.Alpha * sig.RF(),
		betaCeiling:  d.cfg.BetaFrac * sig.RF(),
		absentFloor:  d.cfg.Epsilon * sig.TotalRF(),
		windowLength: p.Length,
		skipBeta:     d.cfg.DisableBetaCheck,
	}
}

// normPower implements Algorithm 2 given a precomputed window power
// spectrum. It returns −Inf when either sanity check fails.
func (s *sigSpec) normPower(spectrum []float64, theta int) float64 {
	var sumChosen float64
	for _, bin := range s.chosenBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if p <= s.alphaFloor {
			return math.Inf(-1)
		}
		sumChosen += p
	}
	var sumForeign float64
	for _, bin := range s.foreignBins {
		p := dsp.BandPower(spectrum, bin, theta)
		if !s.skipBeta && p >= s.betaCeiling {
			return math.Inf(-1)
		}
		sumForeign += p
	}
	return sumChosen - sumForeign
}

// NormPower exposes Algorithm 2 for a single window (tests, ablations).
func (d *Detector) NormPower(window []float64, sig *sigref.Signal) (float64, error) {
	if sig == nil {
		return 0, errors.New("detect: nil signal")
	}
	if len(window) != sig.Params().Length {
		return 0, fmt.Errorf("detect: window length %d != signal length %d", len(window), sig.Params().Length)
	}
	spec, err := dsp.PowerSpectrum(window)
	if err != nil {
		return 0, err
	}
	return d.newSigSpec(sig).normPower(spec, d.cfg.Theta), nil
}

// Detect runs Algorithm 1 for a single reference signal.
func (d *Detector) Detect(recording []float64, sig *sigref.Signal) (Result, error) {
	results, err := d.DetectAll(recording, sig)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// DetectAll locates several reference signals in one recording, sharing the
// coarse-scan FFTs across signals — the prototype's "detect the two
// reference signals simultaneously in one scan" optimization. All signals
// must share Params (length and grid).
//
// Window spectra run through the pooled zero-alloc FFT engine
// (dsp.FFTPlan.PowerSpectrumInto) and are scored across a bounded worker
// pool; the reduction is performed in window order, so results are
// deterministic for a given recording regardless of GOMAXPROCS.
func (d *Detector) DetectAll(recording []float64, sigs ...*sigref.Signal) ([]Result, error) {
	if len(sigs) == 0 {
		return nil, errors.New("detect: no signals given")
	}
	for _, s := range sigs {
		if s == nil {
			return nil, errors.New("detect: nil signal")
		}
		if s.Params() != sigs[0].Params() {
			return nil, errors.New("detect: signals have differing parameters")
		}
	}
	winLen := sigs[0].Params().Length
	if len(recording) < winLen {
		return nil, fmt.Errorf("detect: recording %d shorter than window %d", len(recording), winLen)
	}

	specs := make([]*sigSpec, len(sigs))
	for i, s := range sigs {
		specs[i] = d.newSigSpec(s)
	}

	results := make([]Result, len(sigs))
	bestIdx := make([]int, len(sigs))
	bestPow := make([]float64, len(sigs))
	for i := range bestPow {
		bestPow[i] = math.Inf(-1)
		bestIdx[i] = -1
	}

	// Coarse scan: one FFT per window, scored against every signal. The
	// windows are scored across the worker pool, then reduced sequentially
	// in window order, so the result (including ties, which the earliest
	// window wins) is deterministic and independent of GOMAXPROCS —
	// identical to running this engine's scan sequentially. (It is not
	// bit-identical to the pre-plan implementation: the planned FFT rounds
	// a few ULPs differently; see dsp.FFTPlan.)
	limit := len(recording) - winLen
	coarseCount := limit/d.cfg.CoarseStep + 1
	sb := d.getScores(coarseCount * len(specs))
	defer d.scorePool.Put(sb)

	scores := sb.buf[:coarseCount*len(specs)]
	if err := d.scanWindows(recording, winLen, 0, d.cfg.CoarseStep, coarseCount, specs, scores); err != nil {
		return nil, err
	}
	for w := 0; w < coarseCount; w++ {
		i := w * d.cfg.CoarseStep
		row := scores[w*len(specs) : (w+1)*len(specs)]
		for s := range specs {
			if p := row[s]; p > bestPow[s] {
				bestPow[s], bestIdx[s] = p, i
			}
		}
	}
	scanned := coarseCount

	// Fine scan per signal around its coarse argmax.
	for s, ss := range specs {
		results[s].WindowsScanned = scanned
		results[s].CoarseScanned = scanned
		if bestIdx[s] < 0 || math.IsInf(bestPow[s], -1) {
			// Every coarse window failed the sanity checks: ⊥.
			results[s].Power = bestPow[s]
			results[s].Found = false
			continue
		}
		lo := bestIdx[s] - d.cfg.CoarseStep
		if lo < 0 {
			lo = 0
		}
		hi := bestIdx[s] + d.cfg.CoarseStep
		if hi > limit {
			hi = limit
		}
		fineCount := (hi-lo)/d.cfg.FineStep + 1
		one := specs[s : s+1]
		fineScores := sb.buf
		if cap(fineScores) < fineCount {
			sb.buf = make([]float64, fineCount)
			fineScores = sb.buf
		}
		fineScores = fineScores[:fineCount]
		if err := d.scanWindows(recording, winLen, lo, d.cfg.FineStep, fineCount, one, fineScores); err != nil {
			return nil, err
		}
		results[s].WindowsScanned += fineCount
		for w := 0; w < fineCount; w++ {
			if p := fineScores[w]; p > bestPow[s] {
				bestPow[s], bestIdx[s] = p, lo+w*d.cfg.FineStep
			}
		}
		results[s].Power = bestPow[s]
		// Absent-signal check (Algorithm 1 lines 11–14 with the
		// prototype's ε threshold): deny when the best match is weaker
		// than ε·R_S.
		if bestPow[s] < ss.absentFloor {
			results[s].Found = false
			continue
		}
		results[s].Location = bestIdx[s]
		results[s].Found = true
	}
	return results, nil
}

// scanWindows scores the arithmetic window sequence lo, lo+step, … (count
// windows) against every spec, writing scores[w*len(specs)+s]. Windows are
// claimed off a shared atomic counter by a bounded set of workers — idle
// goroutines borrowed from the attached Pool when one is set, transient
// goroutines (≤ GOMAXPROCS) otherwise — each with one pooled FFT
// workspace. Every score depends only on its window, so the output is
// independent of scheduling and the caller's in-order reduction stays
// bit-identical to a sequential scan.
func (d *Detector) scanWindows(recording []float64, winLen, lo, step, count int, specs []*sigSpec, scores []float64) error {
	// Bounds guard: the last window is recording[lo+(count-1)*step :
	// lo+(count-1)*step+winLen]. A recording too short for the requested
	// sequence used to slice out of range and panic; refuse it instead.
	if lo < 0 || step < 1 || count < 1 {
		return fmt.Errorf("detect: invalid window sequence lo=%d step=%d count=%d", lo, step, count)
	}
	if last := lo + (count-1)*step; last > len(recording)-winLen {
		return fmt.Errorf("detect: recording of %d samples too short for window [%d:%d] (lo=%d step=%d count=%d winLen=%d)",
			len(recording), last, last+winLen, lo, step, count, winLen)
	}

	theta := d.cfg.Theta

	// Sequential fast path (single-core machines, tiny scans): no helper
	// goroutines means no closure or synchronization overhead at all.
	helpers := runtime.GOMAXPROCS(0) - 1
	if d.pool != nil {
		helpers = d.pool.Workers()
	}
	if helpers > count-1 {
		helpers = count - 1
	}
	if helpers <= 0 {
		ws, err := d.getWorkspace(winLen)
		if err != nil {
			return err
		}
		defer d.wsPool.Put(ws)
		for w := 0; w < count; w++ {
			i := lo + w*step
			if err := ws.plan.PowerSpectrumInto(ws.spec, recording[i:i+winLen], ws.scratch); err != nil {
				return err
			}
			for s, ss := range specs {
				scores[w*len(specs)+s] = ss.normPower(ws.spec, theta)
			}
		}
		return nil
	}

	var next atomic.Int64
	var errMu sync.Mutex
	var scanErr error
	fail := func(err error) {
		errMu.Lock()
		if scanErr == nil {
			scanErr = err
		}
		errMu.Unlock()
		next.Store(int64(count)) // stop remaining claims
	}
	work := func() {
		ws, err := d.getWorkspace(winLen)
		if err != nil {
			fail(err)
			return
		}
		defer d.wsPool.Put(ws)
		for {
			w := int(next.Add(1)) - 1
			if w >= count {
				return
			}
			i := lo + w*step
			if err := ws.plan.PowerSpectrumInto(ws.spec, recording[i:i+winLen], ws.scratch); err != nil {
				fail(err)
				return
			}
			for s, ss := range specs {
				scores[w*len(specs)+s] = ss.normPower(ws.spec, theta)
			}
		}
	}

	// The submitting goroutine always participates; extra workers join up
	// to the bound. With a pool attached only idle pool workers join (a
	// busy pool never blocks a scan); without one, transient goroutines
	// are spawned as before.
	var wg sync.WaitGroup
	for g := 0; g < helpers; g++ {
		if d.pool != nil {
			wg.Add(1)
			if !d.pool.offer(func() { defer wg.Done(); work() }) {
				wg.Done()
				break // pool saturated; stop recruiting
			}
		} else {
			wg.Add(1)
			go func() { defer wg.Done(); work() }()
		}
	}
	work()
	wg.Wait()
	return scanErr
}

// DetectCrossCorrelation locates a reference signal using plain normalized
// cross-correlation against the original time-domain waveform — the
// BeepBeep-style detector the ACTION-CC baseline uses. It has no absent
// check; it always returns the correlation argmax, which is exactly why it
// fails under frequency smoothing (Fig. 2b).
func (d *Detector) DetectCrossCorrelation(recording []float64, sig *sigref.Signal) (Result, error) {
	if sig == nil {
		return Result{}, errors.New("detect: nil signal")
	}
	ref := sig.Samples()
	if len(recording) < len(ref) {
		return Result{}, fmt.Errorf("detect: recording %d shorter than reference %d", len(recording), len(ref))
	}
	corr, err := dsp.CrossCorrelate(recording, ref)
	if err != nil {
		return Result{}, err
	}
	idx, val := dsp.ArgMax(corr)
	return Result{Location: idx, Power: val, Found: true, WindowsScanned: len(corr)}, nil
}
