package detect

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// fineStreams asserts the configuration's fine step sits below the
// sliding-DFT break-even, i.e. the fine scan streams.
func fineStreams(tb testing.TB, cfg Config) {
	tb.Helper()
	p := sigref.DefaultParams()
	lo, hi := CandidateBand(p, cfg.Theta)
	if !dsp.StreamingWins(p.Length, hi-lo, cfg.FineStep) {
		tb.Fatalf("fine step %d should stream for band [%d, %d)", cfg.FineStep, lo, hi)
	}
}

// TestDefaultFineStepStreams pins the premise of the streaming fine scan:
// the paper's default fine step of 10 sits below the measured break-even
// (hop ≲15 at the 909-bin candidate band), so the default configuration
// exercises the streamed + exact-at-peak path.
func TestDefaultFineStepStreams(t *testing.T) {
	fineStreams(t, DefaultConfig())
}

// TestFineScanStreamedBitIdentical is the exactness-contract sweep: on the
// default configuration (exact coarse scan, streamed fine scan) every
// reported field must be bit-identical to the all-exact engine
// (disableStream), across seeds, GOMAXPROCS 1/2/4/8, and both recording
// representations (float64 and raw int16 PCM).
func TestFineScanStreamedBitIdentical(t *testing.T) {
	fineStreams(t, DefaultConfig())
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, seed := range []int64{21, 301, 777} {
		rec, s1, s2 := benchRecording(t, seed, 52920)
		pcm := audio.FromFloat(rec)
		recQ := audio.ToFloat(pcm) // quantized float recording == PCM content

		streamed, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		exact, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		exact.disableStream = true

		runtime.GOMAXPROCS(1)
		want, err := exact.DetectAll(rec, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		wantQ, err := exact.DetectAll(recQ, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if !want[0].Found || !want[1].Found {
			t.Fatalf("seed %d: planted signals not found: %+v", seed, want)
		}

		for _, procs := range []int{1, 2, 4, 8} {
			runtime.GOMAXPROCS(procs)
			got, err := streamed.DetectAll(rec, s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			gotPCM, err := streamed.DetectAllPCM(pcm, s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d GOMAXPROCS %d signal %d: streamed %+v != all-exact %+v", seed, procs, i, got[i], want[i])
				}
				if gotPCM[i] != wantQ[i] {
					t.Fatalf("seed %d GOMAXPROCS %d signal %d: PCM %+v != all-exact-on-quantized %+v", seed, procs, i, gotPCM[i], wantQ[i])
				}
			}
		}
	}
}

// nearTieConfig widens the coarse step so one fine span (±CoarseStep around
// the coarse argmax) can hold two non-overlapping full windows — the
// adversarial geometry for the exact-at-peak re-check.
func nearTieConfig() Config {
	cfg := DefaultConfig()
	cfg.CoarseStep = 5000
	cfg.FineStep = 10
	return cfg
}

// nearTieRecording plants the SAME 4096-sample waveform (signal plus a
// baked-in noise floor) at two fine-grid locations inside one fine span, so
// the two aligned fine windows read bit-identical samples and their exact
// scores tie EXACTLY — the hardest case for the streamed fine scan, which
// must re-check both and let the in-order exact reduction pick the earlier,
// exactly as the all-exact scan does. perturb nudges the second copy's
// first sample by one small absolute step, turning the exact tie into a
// near-tie well inside the drift margin.
func nearTieRecording(tb testing.TB, seed int64, perturb float64) ([]float64, *sigref.Signal, int, int) {
	tb.Helper()
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(seed))
	sig, err := sigref.New(p, rng)
	if err != nil {
		tb.Fatal(err)
	}
	w := make([]float64, p.Length)
	for i, v := range sig.Samples() {
		w[i] = 0.5*v + 20*rng.NormFloat64()
	}
	const at1, at2 = 2000, 6800 // both multiples of FineStep, gap > 0
	rec := make([]float64, 16384)
	copy(rec[at1:], w)
	copy(rec[at2:], w)
	rec[at2] += perturb
	return rec, sig, at1, at2
}

// TestFineScanExactAtPeakNearTie is the adversarial exactness fixture: two
// bit-identical (or drift-margin-close) windows inside one fine span. The
// streamed fine scan must surface both as re-check candidates and report
// exactly what the all-exact scan reports — same location (the earlier
// window on an exact tie) and bit-equal power — at every GOMAXPROCS.
func TestFineScanExactAtPeakNearTie(t *testing.T) {
	cfg := nearTieConfig()
	fineStreams(t, cfg)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, tc := range []struct {
		name    string
		perturb float64
	}{
		{"exact-tie", 0},
		{"near-tie", 1e-6}, // score shift ~1e-16 relative: far inside the 1e-9 margin
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{5, 91, 1234} {
				rec, sig, at1, at2 := nearTieRecording(t, seed, tc.perturb)

				streamed, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				exact.disableStream = true

				// Premise 1: the two planted windows score identically (or
				// within the drift margin) and finitely.
				p1, err := streamed.NormPower(rec[at1:at1+len(sig.Samples())], sig)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := streamed.NormPower(rec[at2:at2+len(sig.Samples())], sig)
				if err != nil {
					t.Fatal(err)
				}
				if math.IsInf(p1, -1) || math.IsInf(p2, -1) {
					t.Fatalf("seed %d: planted windows rejected: %g %g", seed, p1, p2)
				}
				if tc.perturb == 0 && p1 != p2 {
					t.Fatalf("seed %d: identical windows score differently: %g != %g", seed, p1, p2)
				}
				if d := math.Abs(p1-p2) / math.Abs(p1); d > 1e-9 {
					t.Fatalf("seed %d: windows not a near-tie: relative gap %g", seed, d)
				}

				// Premise 2: the coarse argmax's fine span covers BOTH
				// copies — reproduce the coarse scan via NormPower (which is
				// bit-identical to scan scores).
				limit := len(rec) - len(sig.Samples())
				bestC, bestP := -1, math.Inf(-1)
				for i := 0; i <= limit; i += cfg.CoarseStep {
					pw, err := streamed.NormPower(rec[i:i+len(sig.Samples())], sig)
					if err != nil {
						t.Fatal(err)
					}
					if pw > bestP {
						bestP, bestC = pw, i
					}
				}
				if lo, hi := bestC-cfg.CoarseStep, bestC+cfg.CoarseStep; at1 < lo || at2 > hi {
					t.Fatalf("seed %d: fine span [%d, %d] around coarse argmax %d misses a planted copy (%d, %d) — fixture needs retuning", seed, lo, hi, bestC, at1, at2)
				}

				runtime.GOMAXPROCS(1)
				want, err := exact.Detect(rec, sig)
				if err != nil {
					t.Fatal(err)
				}
				if !want.Found {
					t.Fatalf("seed %d: all-exact scan lost the signal: %+v", seed, want)
				}
				if tc.perturb == 0 && want.Location != at1 {
					t.Fatalf("seed %d: all-exact tie-break picked %d, want earliest copy %d", seed, want.Location, at1)
				}

				for _, procs := range []int{1, 2, 4, 8} {
					runtime.GOMAXPROCS(procs)
					got, err := streamed.Detect(rec, sig)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("seed %d GOMAXPROCS %d: streamed %+v != all-exact %+v", seed, procs, got, want)
					}
				}
			}
		})
	}
}

// TestNormPowerStreamedThresholdZones pins the three-zone classification
// that makes the exact-at-peak proof sound: a band power that straddles the
// α (or β) threshold within the drift margin must mark the window AMBIGUOUS
// (gross = +Inf ⇒ interval (−Inf, +Inf): never tightens the re-check bound,
// always re-checked), not contribute a confident finite score — otherwise a
// threshold-straddling window whose exact score is −Inf could inflate the
// candidate bound and evict the true exact argmax from the re-check set.
func TestNormPowerStreamedThresholdZones(t *testing.T) {
	p := sigref.DefaultParams()
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := sigref.NewFromIndices(p, []int{0, 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := det.newSigSpec(sig)
	theta := det.Config().Theta
	mkSpec := func(set map[int]float64) []float64 {
		spec := make([]float64, p.Length)
		for bin, pw := range set {
			spec[bin] = pw // all band power on the center bin
		}
		return spec
	}
	binA, binB := ss.chosenBins[0], ss.chosenBins[1]
	foreign := ss.foreignBins[0]
	hot := 1000 * ss.alphaFloor

	cases := []struct {
		name      string
		spec      []float64
		wantInf   bool // certain fail: (-Inf, 0)
		wantAmbig bool // ambiguous: gross = +Inf
	}{
		{"alpha-certain-pass", mkSpec(map[int]float64{binA: hot, binB: hot}), false, false},
		{"alpha-certain-fail", mkSpec(map[int]float64{binA: hot, binB: ss.alphaFloor * (1 - 3e-9)}), true, false},
		{"alpha-straddle-at-floor", mkSpec(map[int]float64{binA: hot, binB: ss.alphaFloor}), false, true},
		{"alpha-straddle-just-above", mkSpec(map[int]float64{binA: hot, binB: ss.alphaFloor * (1 + 5e-10)}), false, true},
		{"beta-certain-fail", mkSpec(map[int]float64{binA: hot, binB: hot, foreign: ss.betaCeiling * (1 + 3e-9)}), true, false},
		{"beta-straddle-at-ceiling", mkSpec(map[int]float64{binA: hot, binB: hot, foreign: ss.betaCeiling}), false, true},
		{"beta-certain-pass", mkSpec(map[int]float64{binA: hot, binB: hot, foreign: ss.betaCeiling / 2}), false, false},
	}
	for _, tc := range cases {
		score, gross := ss.normPowerStreamed(tc.spec, theta)
		switch {
		case tc.wantInf:
			if !math.IsInf(score, -1) || gross != 0 {
				t.Errorf("%s: got (%g, %g), want (-Inf, 0)", tc.name, score, gross)
			}
		case tc.wantAmbig:
			if math.IsInf(score, -1) || !math.IsInf(gross, 1) {
				t.Errorf("%s: got (%g, %g), want (finite, +Inf)", tc.name, score, gross)
			}
		default:
			if math.IsInf(score, -1) || math.IsInf(gross, 1) {
				t.Errorf("%s: got (%g, %g), want finite confident pair", tc.name, score, gross)
			}
		}
		// The strict check used by the exact re-check must agree with the
		// certain zones and resolve the ambiguous ones.
		exact := ss.normPower(tc.spec, theta)
		if tc.wantInf && !math.IsInf(exact, -1) {
			t.Errorf("%s: certain-fail window passes the strict check (%g)", tc.name, exact)
		}
		if !tc.wantInf && !tc.wantAmbig && math.IsInf(exact, -1) {
			t.Errorf("%s: certain-pass window fails the strict check", tc.name)
		}
	}
}

// TestDetectAllPCMMatchesFloat: scanning raw PCM must be bit-identical to
// scanning the converted recording, and validation errors carry over.
func TestDetectAllPCMMatchesFloat(t *testing.T) {
	rec, s1, s2 := benchRecording(t, 55, 30000)
	pcm := audio.FromFloat(rec)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.DetectAll(audio.ToFloat(pcm), s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.DetectAllPCM(pcm, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("signal %d: PCM %+v != float %+v", i, got[i], want[i])
		}
	}
	if !got[0].Found || !got[1].Found {
		t.Fatalf("planted signals not found via PCM: %+v", got)
	}
	if _, err := det.DetectAllPCM(make([]int16, 100), s1); err == nil {
		t.Fatal("short PCM recording accepted")
	}
	if _, err := det.DetectAllPCM(pcm); err == nil {
		t.Fatal("no signals accepted")
	}
}

// TestDetectAllPCMSteadyStateAllocs extends the zero-alloc contract to the
// PCM ingestion path: once pools are warm, DetectAllPCM allocations are
// per-call, not per-window — and in particular there is no hidden
// recording-sized conversion buffer.
func TestDetectAllPCMSteadyStateAllocs(t *testing.T) {
	recShortF, a1, a2 := benchRecording(t, 56, 26460)
	recLongF, b1, b2 := benchRecording(t, 57, 52920)
	recShort, recLong := audio.FromFloat(recShortF), audio.FromFloat(recLongF)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectAllPCM(recLong, b1, b2); err != nil {
		t.Fatal(err)
	}
	measure := func(rec []int16, s1, s2 *sigref.Signal) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := det.DetectAllPCM(rec, s1, s2); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(recShort, a1, a2)
	long := measure(recLong, b1, b2)
	const fixedBudget = 80
	if long > fixedBudget {
		t.Fatalf("DetectAllPCM allocates %.0f per call, budget %d", long, fixedBudget)
	}
	if long > short+8 {
		t.Fatalf("allocations scale with windows: %.0f (short) → %.0f (long)", short, long)
	}
	// A recording-sized float64 copy alone would be ~413 KiB; make the
	// contract explicit in bytes as well — but only without the race
	// detector, whose instrumentation inflates TotalAlloc by a
	// nondeterministic ~100 KB per call.
	if raceEnabled {
		return
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := det.DetectAllPCM(recLong, b1, b2); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<10 {
		t.Fatalf("one warm DetectAllPCM call allocated %d bytes — conversion copy crept back in", grew)
	}
}

// TestNormPowerPlannedParity pins the satellite contract for NormPower's
// switch to the planned band-restricted spectrum: values agree with the
// legacy one-shot dsp.PowerSpectrum scoring to 1e-9 relative (the planned
// FFT rounds a few ULPs differently), and sanity-check rejections agree
// exactly.
func TestNormPowerPlannedParity(t *testing.T) {
	p := sigref.DefaultParams()
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, s1, s2 := benchRecording(t, 59, 30000)
	windows := [][]float64{
		s1.Samples(),
		s2.Samples(),
		rec[5000 : 5000+p.Length],
		rec[18000 : 18000+p.Length],
		make([]float64, p.Length), // silence: -Inf on both paths
	}
	for wi, win := range windows {
		for _, sig := range []*sigref.Signal{s1, s2} {
			got, err := det.NormPower(win, sig)
			if err != nil {
				t.Fatal(err)
			}
			legacySpec, err := dsp.PowerSpectrum(win)
			if err != nil {
				t.Fatal(err)
			}
			want := det.newSigSpec(sig).normPower(legacySpec, det.Config().Theta)
			switch {
			case math.IsInf(want, -1) || math.IsInf(got, -1):
				if got != want {
					t.Fatalf("window %d: rejection disagrees: planned %g, legacy %g", wi, got, want)
				}
			case math.Abs(got-want) > 1e-9*math.Abs(want):
				t.Fatalf("window %d: planned %g vs legacy %g (diff %g)", wi, got, want, got-want)
			}
		}
	}
}
