//go:build race

package detect

// raceEnabled reports whether the race detector is compiled into this test
// binary. Byte-level allocation budgets are asserted only without it: race
// instrumentation grows TotalAlloc nondeterministically (shadow state,
// deferred sweep timing), so those assertions would measure the detector,
// not the code under test. Allocation *counts* stay asserted either way.
const raceEnabled = true
