// Package detect implements the paper's signal-detection algorithms:
// Algorithm 2 (NormPower), the sanity-checked spectral matcher that scores
// how well a window of recorded audio matches a reference signal's power
// spectrum — with the α (attenuation floor), β (foreign-frequency ceiling),
// and θ (frequency-smoothing aggregation width) parameters — and
// Algorithm 1, the sliding-window search for a reference signal's location
// with the prototype's adaptive two-stage step (coarse 1000, fine 10), the
// simultaneous two-signal single-scan optimization, and the ε·R_S
// absent-signal check. It also provides the cross-correlation detector used
// by the ACTION-CC baseline of Fig. 2(b).
//
// Key types: Config carries the algorithm parameters plus the candidate
// band (derived by CandidateBand or pinned via CandidateBandLo/Hi, both
// validated); Detector owns pooled per-worker scan workspaces and runs
// DetectAll, the two-signal scan, and DetectAllPCM, its zero-copy raw
// int16 form (the widening conversion is fused into the spectral engine,
// bit-identically); Pool is the bounded worker set a batching service
// shares across sessions, with cooperative idle-worker recruitment. Scans
// compute per-window spectra only over the candidate band and switch to
// the streaming sliding-DFT engine below the measured dsp.StreamingWins
// break-even — the default fine step does, so the fine scan streams its
// hops and then re-scores every window within a drift margin of the
// streamed maximum with an exact band-restricted FFT, reporting locations
// and powers from exact scores only (bit-identical to an all-exact fine
// scan by construction).
//
// Detector.NewStream is the incremental form of the same scan: a Stream
// accumulates chunked PCM against the recording length declared at
// construction (bounded by MaxStreamLength; over-feeding is rejected
// whole with ErrFeedOverflow), scores coarse blocks as they complete on
// the exact grid the batch scan would use, runs the fine re-check as soon
// as the candidate band is buffered, and reports via Results either the
// per-signal results or how many more samples it needs — after any prefix,
// its state is bit-identical to a batch scan of that prefix.
//
// Invariants: scans are bit-deterministic at any GOMAXPROCS and pool size —
// streaming-scan workers claim contiguous hop blocks aligned to the resync
// grid, and window scores (and the fine scan's exact re-checks) reduce in
// window order regardless of which worker computed them. Scan workspaces
// are recycled across sessions and allocate nothing in steady state
// (Prewarm builds them up front); a truncated recording errors instead of
// panicking.
package detect
