package detect

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// benchRecording builds a deterministic two-signal recording shaped like one
// authentication capture (1.2 s at 44.1 kHz).
func benchRecording(tb testing.TB, seed int64, total int) ([]float64, *sigref.Signal, *sigref.Signal) {
	tb.Helper()
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(seed))
	s1, err := sigref.New(p, rng)
	if err != nil {
		tb.Fatal(err)
	}
	s2, err := sigref.New(p, rng)
	if err != nil {
		tb.Fatal(err)
	}
	rec := make([]float64, total)
	for i := range rec {
		rec[i] = 40 * rng.NormFloat64() // faint wideband floor
	}
	at1, at2 := total/6, total*3/5 // both windows fit: total ≥ at2+signal length
	for i, v := range s1.Samples() {
		rec[at1+i] += 0.5 * v
	}
	for i, v := range s2.Samples() {
		rec[at2+i] += 0.4 * v
	}
	return rec, s1, s2
}

// TestDetectAllDeterministicAcrossWorkerCounts forces the parallel scan path
// and asserts it produces results identical to the single-worker path — the
// bit-exactness contract of the parallel pipeline.
func TestDetectAllDeterministicAcrossWorkerCounts(t *testing.T) {
	rec, s1, s2 := benchRecording(t, 21, 52920)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(1)
	seq, errSeq := det.DetectAll(rec, s1, s2)
	runtime.GOMAXPROCS(4)
	par, errPar := det.DetectAll(rec, s1, s2)
	runtime.GOMAXPROCS(prev)
	if errSeq != nil || errPar != nil {
		t.Fatal(errSeq, errPar)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("signal %d: sequential %+v != parallel %+v", i, seq[i], par[i])
		}
	}
	if !seq[0].Found || !seq[1].Found {
		t.Fatalf("planted signals not found: %+v", seq)
	}

	// And repeated runs are stable.
	again, err := det.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != again[i] {
			t.Fatalf("signal %d: run-to-run drift: %+v != %+v", i, seq[i], again[i])
		}
	}
}

// TestDetectAllSteadyStateAllocs is the satellite gate: once the pools are
// warm, DetectAll's allocations must not scale with the number of scanned
// windows (i.e. zero per-window heap allocations).
func TestDetectAllSteadyStateAllocs(t *testing.T) {
	recShort, a1, a2 := benchRecording(t, 22, 26460) // ~0.6 s: ~27 coarse windows
	recLong, b1, b2 := benchRecording(t, 23, 52920)  // ~1.2 s: ~49 coarse windows
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the workspace and score pools.
	if _, err := det.DetectAll(recLong, b1, b2); err != nil {
		t.Fatal(err)
	}

	measure := func(rec []float64, s1, s2 *sigref.Signal) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := det.DetectAll(rec, s1, s2); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(recShort, a1, a2)
	long := measure(recLong, b1, b2)

	// Fixed per-call overhead: results + sigSpecs + worker bookkeeping.
	const fixedBudget = 80
	if long > fixedBudget {
		t.Fatalf("DetectAll allocates %.0f per call, budget %d", long, fixedBudget)
	}
	// Doubling the window count must not grow allocations: whatever remains
	// is per-call, not per-window.
	if long > short+8 {
		t.Fatalf("allocations scale with windows: %.0f (short) → %.0f (long)", short, long)
	}
}

func BenchmarkDetectAll(b *testing.B) {
	rec, s1, s2 := benchRecording(b, 24, 52920)
	det, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := det.DetectAll(rec, s1, s2)
		if err != nil {
			b.Fatal(err)
		}
		if !res[0].Found || !res[1].Found {
			b.Fatal("planted signals not found")
		}
	}
}

// BenchmarkDetectAllFine isolates the streaming fine scan on the paper's
// default configuration: "streamed" runs the sliding-DFT fine hops with
// exact-at-peak re-checks (the production path; the default coarse step
// never streams either way), "exact" forces the historical all-exact fine
// scan. The gap is the tentpole win of the fine-scan streaming work
// (BENCH_finescan.json / `make bench-fine`); results are bit-identical by
// construction (TestFineScanStreamedBitIdentical).
func BenchmarkDetectAllFine(b *testing.B) {
	rec, s1, s2 := benchRecording(b, 24, 52920)
	run := func(b *testing.B, disable bool) {
		det, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		det.disableStream = disable
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := det.DetectAll(rec, s1, s2)
			if err != nil {
				b.Fatal(err)
			}
			if !res[0].Found || !res[1].Found {
				b.Fatal("planted signals not found")
			}
		}
	}
	b.Run("streamed", func(b *testing.B) { run(b, false) })
	b.Run("exact", func(b *testing.B) { run(b, true) })
}

// BenchmarkDetectAllPCM measures the zero-copy int16 ingestion path on the
// session-shaped recording: identical scan work to BenchmarkDetectAll, no
// recording-sized conversion copy (compare allocs/op).
func BenchmarkDetectAllPCM(b *testing.B) {
	recF, s1, s2 := benchRecording(b, 24, 52920)
	rec := audio.FromFloat(recF)
	det, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := det.DetectAllPCM(rec, s1, s2)
		if err != nil {
			b.Fatal(err)
		}
		if !res[0].Found || !res[1].Found {
			b.Fatal("planted signals not found")
		}
	}
}
