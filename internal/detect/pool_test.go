package detect

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// testBand is the derived candidate band tests hand to scanWindows directly.
func testBand(p sigref.Params) bandRange {
	lo, hi := CandidateBand(p, DefaultConfig().Theta)
	return bandRange{lo, hi}
}

// TestScanWindowsBoundsGuard is the truncated-recording regression test:
// scanWindows used to trust its caller and slice recording[i:i+winLen]
// unchecked, so a window sequence extending past the recording end
// panicked with an out-of-range slice. It must return an error instead.
func TestScanWindowsBoundsGuard(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(7))
	sig, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := det.newSigSpec(sig)

	// A window sequence sized for a 30000-sample recording, handed a
	// truncated one: lo + (count-1)*step + winLen = 24096 > 20000.
	truncated := make([]float64, 20000)
	scores := make([]float64, 21)
	err = det.scanWindows(nil, recSource{f: truncated}, p.Length, 0, 1000, 21, testBand(p), false, []*sigSpec{spec}, scores, nil)
	if err == nil {
		t.Fatal("scanWindows accepted a window sequence past the recording end")
	}
	if !strings.Contains(err.Error(), "too short") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Degenerate sequences are refused too.
	if err := det.scanWindows(nil, recSource{f: truncated}, p.Length, -1, 1000, 1, testBand(p), false, []*sigSpec{spec}, scores, nil); err == nil {
		t.Fatal("negative lo accepted")
	}
	if err := det.scanWindows(nil, recSource{f: truncated}, p.Length, 0, 0, 1, testBand(p), false, []*sigSpec{spec}, scores, nil); err == nil {
		t.Fatal("zero step accepted")
	}
	if err := det.scanWindows(nil, recSource{f: truncated}, p.Length, 0, 1000, 0, testBand(p), false, []*sigSpec{spec}, scores, nil); err == nil {
		t.Fatal("zero count accepted")
	}

	// The exported surface rejects too-short recordings outright.
	if _, err := det.Detect(make([]float64, p.Length-1), sig); err == nil {
		t.Fatal("Detect accepted a recording shorter than the window")
	}
	if _, err := det.DetectAll(make([]float64, p.Length-1), sig, sig); err == nil {
		t.Fatal("DetectAll accepted a recording shorter than the window")
	}
}

// TestPooledScanMatchesUnpooled: attaching a shared Pool (and pinned plan
// set) must not change any detection output bit.
func TestPooledScanMatchesUnpooled(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(11))
	sigA, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	sigB, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := plantSignal(sigA, 40000, 6000, 0.5)
	for i, v := range plantSignal(sigB, 40000, 21000, 0.5) {
		rec[i] += v
	}

	plain, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.DetectAll(rec, sigA, sigB)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool(4)
	defer pool.Close()
	plans, err := dsp.NewPlanSet(p.Length)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pooled.UsePool(pool)
	pooled.UsePlans(plans)

	for trial := 0; trial < 3; trial++ {
		got, err := pooled.DetectAll(rec, sigA, sigB)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d signal %d: pooled %+v != unpooled %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestPooledScanConcurrentSessions: many goroutines sharing one pooled
// Detector must each get the same answer they'd get alone (run under
// -race in CI).
func TestPooledScanConcurrentSessions(t *testing.T) {
	p := sigref.DefaultParams()
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(3)
	defer pool.Close()
	det.UsePool(pool)

	type job struct {
		sig  *sigref.Signal
		rec  []float64
		want Result
	}
	jobs := make([]job, 6)
	for i := range jobs {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		sig, err := sigref.New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		rec := plantSignal(sig, 30000, 2000+3000*i, 0.5)
		want, err := det.Detect(rec, sig)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Found {
			t.Fatalf("job %d: planted signal not found", i)
		}
		jobs[i] = job{sig: sig, rec: rec, want: want}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	got := make([]Result, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = det.Detect(jobs[i].rec, jobs[i].sig)
		}(i)
	}
	wg.Wait()
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if got[i] != jobs[i].want {
			t.Fatalf("job %d: concurrent %+v != serial %+v", i, got[i], jobs[i].want)
		}
	}
}

// TestPoolCloseDegradesGracefully: a closed pool declines work, and scans
// complete on the submitting goroutine with identical results.
func TestPoolCloseDegradesGracefully(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(13))
	sig, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := plantSignal(sig, 25000, 4000, 0.5)

	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2)
	det.UsePool(pool)
	want, err := det.Detect(rec, sig)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // idempotent
	got, err := det.Detect(rec, sig)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("after Close %+v != before %+v", got, want)
	}
	if math.IsInf(got.Power, 1) {
		t.Fatal("nonsense power")
	}
}
