package detect

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/sigref"
)

// TestDisableBetaCheckAdmitsAllFrequencyWindow verifies the ablation flag:
// with the β check off, a window containing every candidate frequency is
// scored finite (and would be detected as any reference signal), which is
// exactly the vulnerability the paper's sanity check closes.
func TestDisableBetaCheckAdmitsAllFrequencyWindow(t *testing.T) {
	p := sigref.DefaultParams()
	sig, err := sigref.NewFromIndices(p, []int{2, 9, 17, 25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, p.NumCandidates-1)
	for i := range all {
		all[i] = i
	}
	allSig, err := sigref.NewFromIndices(p, all, nil)
	if err != nil {
		t.Fatal(err)
	}
	window := allSig.Samples()

	strict, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pw, err := strict.NormPower(window, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(pw, -1) {
		t.Fatalf("strict detector accepted the all-frequency window: %g", pw)
	}

	lax := DefaultConfig()
	lax.DisableBetaCheck = true
	laxDet, err := New(lax)
	if err != nil {
		t.Fatal(err)
	}
	pw, err = laxDet.NormPower(window, sig)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(pw, -1) {
		t.Fatal("ablated detector still rejected the all-frequency window")
	}
}

// TestThetaZeroMissesOffGridPower: candidate frequencies are not FFT-bin
// centered, so θ=0 reads a single bin and loses most of the scalloped
// power — the reason the paper aggregates over ±θ bins.
func TestThetaZeroMissesOffGridPower(t *testing.T) {
	p := sigref.DefaultParams()
	sig, err := sigref.New(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	window := sig.Samples()

	mkDet := func(theta int) *Detector {
		cfg := DefaultConfig()
		cfg.Theta = theta
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	p0, err := mkDet(0).NormPower(window, sig)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := mkDet(5).NormPower(window, sig)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(p5, -1) {
		t.Fatal("θ=5 rejected a clean aligned window")
	}
	// On a clean, perfectly aligned window scalloping loses only part of
	// the power; the strict capture ordering must still hold. (Through
	// the dispersive channel θ=0 fails outright — see the θ ablation.)
	if !math.IsInf(p0, -1) && p0 >= p5 {
		t.Fatalf("θ=0 captured %g ≥ θ=5 %g — aggregation gained nothing", p0, p5)
	}
}

// TestDetectNeverConfusesManyRandomSignals draws many signal pairs and
// verifies a recording containing only signal A is never reported as
// containing signal B (the detector-level analogue of the replay-guess
// analysis).
func TestDetectNeverConfusesManyRandomSignals(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(4))
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 12; trial++ {
		a, err := sigref.New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sigref.New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sigref.Equal(a, b) {
			continue // astronomically unlikely; skip if it happens
		}
		rec := make([]float64, 16384)
		for i, v := range a.Samples() {
			rec[4000+i] += 0.5 * v
		}
		res, err := det.Detect(rec, b)
		if err != nil {
			t.Fatal(err)
		}
		// b may share a subset of a's frequencies, but the α check on
		// b's non-shared frequencies or the β check on a's extra
		// frequencies must reject every window.
		if res.Found {
			t.Fatalf("trial %d: detected signal B in a recording containing only A", trial)
		}
	}
}
