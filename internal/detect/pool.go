package detect

import (
	"runtime"
	"sync"
)

// Pool is a long-lived, bounded set of scan workers that many Detectors —
// and many concurrent authentication sessions — can share. A service
// creates one Pool sized to the machine and attaches it to a shared
// Detector (Detector.UsePool); every scan then batches its windows through
// the same workers, instead of each scan spawning its own goroutine
// fan-out. Because workers are shared, the total scan concurrency across
// any number of concurrent sessions stays bounded by the pool size (plus
// one submitting goroutine per in-flight scan, which always participates
// in its own scan).
//
// Work distribution is cooperative: a scan offers work to idle pool
// workers only and never blocks waiting for one, so a saturated pool
// degrades to the submitter scanning alone — throughput degrades smoothly
// and deadlock is impossible. Window scores are written by window index,
// so how many workers join a scan never changes its result.
type Pool struct {
	workers int
	tasks   chan func()
	done    chan struct{}
	once    sync.Once
}

// NewPool starts a pool with the given number of workers (≤ 0 means
// GOMAXPROCS). Close it when the owning service shuts down.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func()),
		done:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case <-p.done:
			return
		case fn := <-p.tasks:
			p.invoke(fn)
		}
	}
}

// invoke runs one task with last-resort panic isolation: a panicking task
// must not take the long-lived worker goroutine (and with it the process)
// down. Scan tasks convert their own panics to typed errors before this
// recover ever fires (see Detector scan internals / PanicError), so a
// value reaching here has already been reported to its submitter; it is
// dropped and the worker returns to the queue.
func (p *Pool) invoke(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// offer hands fn to an idle worker. It never blocks: when every worker is
// busy (or the pool is closed) it returns false and the caller runs the
// work itself.
func (p *Pool) offer(fn func()) bool {
	select {
	case <-p.done:
		return false
	default:
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Close stops the workers. In-flight work finishes; subsequent offers are
// declined, so scans submitted after Close still complete on the
// submitting goroutine. Close is idempotent.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.done) })
}
