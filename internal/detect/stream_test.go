package detect

import (
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// streamConfig is a high-resolution scan configuration whose coarse step
// sits below the sliding-DFT break-even, so the coarse scan streams.
func streamConfig(t testing.TB) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CoarseStep = 8
	cfg.FineStep = 2
	p := sigref.DefaultParams()
	lo, hi := CandidateBand(p, cfg.Theta)
	if !dsp.StreamingWins(p.Length, hi-lo, cfg.CoarseStep) {
		t.Fatalf("coarse step %d should stream for band [%d, %d)", cfg.CoarseStep, lo, hi)
	}
	return cfg
}

// TestCandidateBandCoversDefaults: the derived band at the paper's
// parameters is the ~940-bin canonical range the mirrored 25–35 kHz
// candidates fold into.
func TestCandidateBandCoversDefaults(t *testing.T) {
	p := sigref.DefaultParams()
	lo, hi := CandidateBand(p, DefaultConfig().Theta)
	if lo >= hi || lo < 0 || hi > p.Length/2+1 {
		t.Fatalf("nonsense band [%d, %d)", lo, hi)
	}
	// The lowest candidate (25.17 kHz, the center of the first of 30 bins
	// over [25, 35] kHz) aliases to bin 2337 → canonical 1759; the highest
	// (34.83 kHz) to bin 3235 → canonical 861. With ±θ=5 and the
	// half-open upper end: [856, 1765), 909 of 2048 bins (~44%).
	if lo != 856 || hi != 1765 {
		t.Fatalf("derived band [%d, %d), want [856, 1765)", lo, hi)
	}
	// Every bin Algorithm 2 reads for any signal from these params must
	// fold inside the band.
	rng := rand.New(rand.NewSource(3)) // #nosec: deterministic test
	sig, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ss := det.newSigSpec(sig)
	for _, bins := range [][]int{ss.chosenBins, ss.foreignBins} {
		for _, b := range bins {
			for r := b - det.cfg.Theta; r <= b+det.cfg.Theta; r++ {
				if r < 0 || r > p.Length-1 {
					continue
				}
				m := r
				if m > p.Length/2 {
					m = p.Length - m
				}
				if m < lo || m >= hi {
					t.Fatalf("read bin %d (canonical %d) outside derived band [%d, %d)", r, m, lo, hi)
				}
			}
		}
	}
}

// TestCandidateBandConfigValidation is the satellite regression test: a
// configured candidate band outside [0, winLen/2) or inverted must be
// rejected with a descriptive error instead of silently scoring an empty
// (or partially stale) band.
func TestCandidateBandConfigValidation(t *testing.T) {
	// Construction-time checks (window length unknown yet).
	for _, tc := range []struct {
		lo, hi int
		msg    string
	}{
		{-3, 100, "negative"},
		{100, 100, "inverted"},
		{200, 100, "inverted"},
	} {
		cfg := DefaultConfig()
		cfg.CandidateBandLo, cfg.CandidateBandHi = tc.lo, tc.hi
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.msg) {
			t.Fatalf("band [%d, %d): got err %v, want %q", tc.lo, tc.hi, err, tc.msg)
		}
	}

	// Scan-time checks (window length known).
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(5))
	sig, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := plantSignal(sig, 30000, 9000, 0.5)

	beyond := DefaultConfig()
	beyond.CandidateBandLo, beyond.CandidateBandHi = 100, p.Length/2+7
	det, err := New(beyond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectAll(rec, sig); err == nil || !strings.Contains(err.Error(), "outside the canonical spectrum [0, 2048]") {
		t.Fatalf("band past the canonical spectrum accepted: %v", err)
	}

	narrow := DefaultConfig()
	narrow.CandidateBandLo, narrow.CandidateBandHi = 900, 1000 // misses the footprint
	det, err = New(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectAll(rec, sig); err == nil || !strings.Contains(err.Error(), "does not cover") {
		t.Fatalf("non-covering band accepted: %v", err)
	}

	// A covering explicit band is accepted and changes nothing: the extra
	// computed bins are never read, so results are bit-identical.
	derived, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := derived.DetectAll(rec, sig)
	if err != nil {
		t.Fatal(err)
	}
	wide := DefaultConfig()
	wide.CandidateBandLo, wide.CandidateBandHi = 800, 1900
	det, err = New(wide)
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.DetectAll(rec, sig)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("explicit covering band changed the result: %+v != %+v", got[0], want[0])
	}
}

// TestStreamingCoarseScanFindsSignals: with a sub-break-even coarse step
// the scan streams, still locates the planted signals at the exact sample,
// and its powers stay within the engine's 1e-9 drift budget of the exact
// per-window-FFT scan.
func TestStreamingCoarseScanFindsSignals(t *testing.T) {
	cfg := streamConfig(t)
	rec, s1, s2 := benchRecording(t, 77, 30000)

	streaming, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact.disableStream = true

	got, err := streaming.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !want[i].Found || !got[i].Found {
			t.Fatalf("signal %d not found: stream %+v exact %+v", i, got[i], want[i])
		}
		// The fine scan is exact in both engines and the coarse drift is
		// ≤1e-9 relative, so the located sample must agree.
		if got[i].Location != want[i].Location {
			t.Fatalf("signal %d: streaming location %d != exact %d", i, got[i].Location, want[i].Location)
		}
		if diff := math.Abs(got[i].Power - want[i].Power); diff > 1e-9*math.Abs(want[i].Power) {
			t.Fatalf("signal %d: streaming power %g drifts %g from exact %g", i, got[i].Power, diff, want[i].Power)
		}
	}
	// The planted locations (8820·30000/52920 scaled in benchRecording:
	// total/6 and total·3/5) are found to fine-step resolution.
	for i, at := range []int{30000 / 6, 30000 * 3 / 5} {
		if d := got[i].Location - at; d < -cfg.FineStep || d > cfg.FineStep {
			t.Fatalf("signal %d located at %d, planted at %d", i, got[i].Location, at)
		}
	}
}

// TestStreamingScanDeterministicAcrossGOMAXPROCS is the satellite
// GOMAXPROCS-sweep: the range-claiming streaming coarse scan must produce
// bit-identical results no matter how many workers claim blocks — the
// fixed block grid, not the schedule, defines every score. Swept with and
// without a shared Pool attached.
func TestStreamingScanDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := streamConfig(t)
	rec, s1, s2 := benchRecording(t, 78, 30000)

	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	base, err := det.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}

	for _, procs := range []int{2, 4, 7} {
		runtime.GOMAXPROCS(procs)
		got, err := det.DetectAll(rec, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("GOMAXPROCS=%d signal %d: %+v != single-worker %+v", procs, i, got[i], base[i])
			}
		}
	}

	pool := NewPool(5)
	defer pool.Close()
	pooled, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pooled.UsePool(pool)
	for trial := 0; trial < 3; trial++ {
		got, err := pooled.DetectAll(rec, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("pooled trial %d signal %d: %+v != %+v", trial, i, got[i], base[i])
			}
		}
	}
}

// TestStreamingSteadyStateAllocs: once pools are warm, the streaming scan
// — sliding state pinned in the pooled workspaces — allocates a fixed
// per-call amount, independent of the window count.
func TestStreamingSteadyStateAllocs(t *testing.T) {
	cfg := streamConfig(t)
	recShort, a1, a2 := benchRecording(t, 79, 16384)
	recLong, b1, b2 := benchRecording(t, 80, 32768)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectAll(recLong, b1, b2); err != nil {
		t.Fatal(err)
	}
	measure := func(rec []float64, s1, s2 *sigref.Signal) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := det.DetectAll(rec, s1, s2); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(recShort, a1, a2)
	long := measure(recLong, b1, b2)
	const fixedBudget = 80
	if long > fixedBudget {
		t.Fatalf("streaming DetectAll allocates %.0f per call, budget %d", long, fixedBudget)
	}
	if long > short+8 {
		t.Fatalf("allocations scale with windows: %.0f (short) → %.0f (long)", short, long)
	}
}

// TestPrewarm: a prewarmed detector performs its first scan without
// building plans or sliding state (observable as a low first-call
// allocation count), and Prewarm validates its inputs.
func TestPrewarm(t *testing.T) {
	p := sigref.DefaultParams()
	cfg := streamConfig(t)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Prewarm(p, 2); err != nil {
		t.Fatal(err)
	}
	rec, s1, s2 := benchRecording(t, 81, 16384)
	prev := runtime.GOMAXPROCS(1) // single worker: one pooled workspace suffices
	defer runtime.GOMAXPROCS(prev)
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := det.DetectAll(rec, s1, s2); err != nil {
			t.Fatal(err)
		}
	})
	const fixedBudget = 80
	if allocs > fixedBudget {
		t.Fatalf("first post-Prewarm scan allocates %.0f, budget %d — prewarm missed scan state", allocs, fixedBudget)
	}

	bad := p
	bad.Length = 1000 // not a power of two
	if err := det.Prewarm(bad, 1); err == nil {
		t.Fatal("Prewarm accepted invalid params")
	}
}

// BenchmarkDetectAllStream measures the streaming coarse scan against the
// forced exact-FFT scan on the same high-resolution configuration
// (CoarseStep 8, ~3450 coarse windows over a 0.7 s recording). The gap is
// the sliding-DFT win; BENCH_stream.json records both.
func BenchmarkDetectAllStream(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CoarseStep = 8
	cfg.FineStep = 2
	rec, s1, s2 := benchRecording(b, 82, 32768)
	run := func(b *testing.B, det *Detector) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := det.DetectAll(rec, s1, s2)
			if err != nil {
				b.Fatal(err)
			}
			if !res[0].Found || !res[1].Found {
				b.Fatal("planted signals not found")
			}
		}
	}
	b.Run("sliding", func(b *testing.B) {
		det, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		run(b, det)
	})
	b.Run("exact-fft", func(b *testing.B) {
		det, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		det.disableStream = true
		run(b, det)
	})
}
