package detect

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// feedChunks feeds pcm to the stream in chunks of the given size (the final
// chunk may be short) and returns the stream's results, requiring need == 0.
func feedChunks(t *testing.T, st *Stream, pcm []int16, chunk int) []Result {
	t.Helper()
	for at := 0; at < len(pcm); at += chunk {
		end := at + chunk
		if end > len(pcm) {
			end = len(pcm)
		}
		if err := st.Feed(nil, pcm[at:end]); err != nil {
			t.Fatalf("chunk %d: feed [%d, %d): %v", chunk, at, end, err)
		}
	}
	res, need, err := st.Results(nil)
	if err != nil {
		t.Fatal(err)
	}
	if need != 0 {
		t.Fatalf("chunk %d: full feed still needs %d samples", chunk, need)
	}
	return res
}

// TestStreamNewValidation pins the trust-boundary checks of NewStream.
func TestStreamNewValidation(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(3))
	sig, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	pOther := p
	pOther.Length = p.Length * 2
	other, err := sigref.New(pOther, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.NewStream(40000); err == nil {
		t.Error("no signals accepted")
	}
	if _, err := det.NewStream(40000, nil); err == nil {
		t.Error("nil signal accepted")
	}
	if _, err := det.NewStream(40000, sig, other); err == nil {
		t.Error("differing params accepted")
	}
	if _, err := det.NewStream(p.Length-1, sig); err == nil {
		t.Error("sub-window recording accepted")
	}
	if _, err := det.NewStream(MaxStreamLength+1, sig); err == nil {
		t.Error("over-bound recording accepted")
	}
	if _, err := det.NewStream(p.Length, sig); err != nil {
		t.Errorf("minimal recording rejected: %v", err)
	}
}

// TestStreamFeedOverflowTyped is the ingestion-bound regression test: a
// chunk that would exceed the declared length is rejected whole with
// ErrFeedOverflow and the stream stays usable with the audio fed so far.
func TestStreamFeedOverflowTyped(t *testing.T) {
	recF, s1, s2 := benchRecording(t, 17, 30000)
	pcm := audio.FromFloat(recF)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := det.NewStream(len(pcm), s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Feed(nil, pcm[:20000]); err != nil {
		t.Fatal(err)
	}
	// 20000 fed + 10001 > 30000: rejected whole, nothing ingested.
	if err := st.Feed(nil, pcm[19999:]); !errors.Is(err, ErrFeedOverflow) {
		t.Fatalf("overlong feed returned %v, want ErrFeedOverflow", err)
	}
	if got := st.Fed(); got != 20000 {
		t.Fatalf("rejected chunk changed Fed to %d", got)
	}
	// The stream remains usable: the exact remainder completes it.
	if err := st.Feed(nil, pcm[20000:]); err != nil {
		t.Fatal(err)
	}
	res, need, err := st.Results(nil)
	if err != nil || need != 0 {
		t.Fatalf("after recovery: need=%d err=%v", need, err)
	}
	want, err := det.DetectAllPCM(pcm, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("signal %d: recovered stream %+v != batch %+v", i, res[i], want[i])
		}
	}
}

// TestStreamReplayBitIdenticalAnyChunking is the engine-level oracle check:
// the same recording fed in 1-sample, prime-sized, window-aligned, and
// whole-recording chunks must reproduce DetectAllPCM field-for-field, at
// several GOMAXPROCS settings.
func TestStreamReplayBitIdenticalAnyChunking(t *testing.T) {
	recF, s1, s2 := benchRecording(t, 21, 52920)
	pcm := audio.FromFloat(recF)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.DetectAllPCM(pcm, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, chunk := range []int{1, 997, 4096, len(pcm)} {
			st, err := det.NewStream(len(pcm), s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			got := feedChunks(t, st, pcm, chunk)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("procs=%d chunk=%d signal %d: stream %+v != batch %+v", procs, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamEarlyPrefixDecision: once the audio containing both signals —
// plus the fine band and one window — has arrived, Results must return the
// batch answer without the tail ever being fed.
func TestStreamEarlyPrefixDecision(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(6))
	s1, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	const total = 60000
	recF := make([]float64, total)
	for i, v := range s1.Samples() {
		recF[3000+i] += 0.5 * v
	}
	for i, v := range s2.Samples() {
		recF[9000+i] += 0.4 * v
	}
	pcm := audio.FromFloat(recF)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.DetectAllPCM(pcm, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !want[0].Found || !want[1].Found {
		t.Fatalf("fixture signals not found: %+v", want)
	}

	st, err := det.NewStream(total, s1, s2)
	if err != nil {
		t.Fatal(err)
	}

	// Too little audio for even one window: need reports the shortfall.
	if err := st.Feed(nil, pcm[:100]); err != nil {
		t.Fatal(err)
	}
	if _, need, err := st.Results(nil); err != nil || need != p.Length-100 {
		t.Fatalf("sub-window prefix: need=%d err=%v, want %d", need, err, p.Length-100)
	}

	// The horizon: the later signal's window (arg ≈ 9000), its fine band
	// (+CoarseStep), plus one window length — everything the batch fine
	// scan will touch. Feed to just past it and stop.
	horizon := 9000 + det.Config().CoarseStep + p.Length + 64
	if err := st.Feed(nil, pcm[100:horizon]); err != nil {
		t.Fatal(err)
	}
	got, need, err := st.Results(nil)
	if err != nil {
		t.Fatal(err)
	}
	if need != 0 {
		t.Fatalf("horizon prefix still needs %d samples", need)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("signal %d: early %+v != batch %+v (fed %d of %d)", i, got[i], want[i], horizon, total)
		}
	}

	// Feeding the tail afterwards must not change anything.
	if err := st.Feed(nil, pcm[horizon:]); err != nil {
		t.Fatal(err)
	}
	late, need, err := st.Results(nil)
	if err != nil || need != 0 {
		t.Fatalf("full feed: need=%d err=%v", need, err)
	}
	for i := range want {
		if late[i] != want[i] {
			t.Fatalf("signal %d: full-feed %+v != batch %+v", i, late[i], want[i])
		}
	}
}

// TestStreamAbsentSignalPrefix: a silent recording's stream must report ⊥
// exactly like the batch scan, both on a prefix and after the full feed.
func TestStreamAbsentSignalPrefix(t *testing.T) {
	p := sigref.DefaultParams()
	sig, err := sigref.New(p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcm := make([]int16, 20000)
	want, err := det.DetectAllPCM(pcm, sig)
	if err != nil {
		t.Fatal(err)
	}
	st, err := det.NewStream(len(pcm), sig)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Feed(nil, pcm[:10000]); err != nil {
		t.Fatal(err)
	}
	res, need, err := st.Results(nil)
	if err != nil || need != 0 {
		t.Fatalf("prefix: need=%d err=%v", need, err)
	}
	if res[0].Found {
		t.Fatal("found a signal in silence")
	}
	if err := st.Feed(nil, pcm[10000:]); err != nil {
		t.Fatal(err)
	}
	res, need, err = st.Results(nil)
	if err != nil || need != 0 {
		t.Fatalf("full: need=%d err=%v", need, err)
	}
	if res[0] != want[0] {
		t.Fatalf("silent stream %+v != batch %+v", res[0], want[0])
	}
}
