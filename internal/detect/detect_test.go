package detect

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/sigref"
	"github.com/acoustic-auth/piano/internal/world"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"alpha 0", func(c *Config) { c.Alpha = 0 }},
		{"alpha 1", func(c *Config) { c.Alpha = 1 }},
		{"beta 0", func(c *Config) { c.BetaFrac = 0 }},
		{"epsilon 0", func(c *Config) { c.Epsilon = 0 }},
		{"theta neg", func(c *Config) { c.Theta = -1 }},
		{"coarse 0", func(c *Config) { c.CoarseStep = 0 }},
		{"fine > coarse", func(c *Config) { c.FineStep = 2000 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

// plantSignal embeds sig's waveform (scaled by gain) at the given location
// in a noise-free recording of length total.
func plantSignal(sig *sigref.Signal, total, at int, gain float64) []float64 {
	rec := make([]float64, total)
	for i, v := range sig.Samples() {
		if at+i < total {
			rec[at+i] += gain * v
		}
	}
	return rec
}

func TestDetectCleanPlantedSignal(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(1))
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int{0, 1234, 7777, 20000} {
		sig, err := sigref.New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		rec := plantSignal(sig, 30000, at, 0.5)
		res, err := det.Detect(rec, sig)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("at=%d: signal not found", at)
		}
		if d := res.Location - at; d < -det.Config().FineStep || d > det.Config().FineStep {
			t.Fatalf("at=%d: located %d (off by %d)", at, res.Location, res.Location-at)
		}
	}
}

func TestDetectAbsentSignalIsBottom(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(2))
	sig, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Pure silence.
	res, err := det.Detect(make([]float64, 20000), sig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found signal in silence")
	}

	// A different random signal (disjoint draw) should not match either.
	other, err := sigref.New(p, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	rec := plantSignal(other, 20000, 5000, 0.5)
	res, err = det.Detect(rec, sig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("detected the wrong reference signal")
	}
}

func TestDetectHeavilyAttenuatedIsAbsent(t *testing.T) {
	p := sigref.DefaultParams()
	sig, err := sigref.New(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Wall-grade attenuation: amplitude 0.02 → power 0.04% < α.
	rec := plantSignal(sig, 20000, 5000, 0.02)
	res, err := det.Detect(rec, sig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("detected signal attenuated below the α floor")
	}
}

// TestNormPowerSanityChecks exercises Algorithm 2's two checks directly.
func TestNormPowerSanityChecks(t *testing.T) {
	p := sigref.DefaultParams()
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := sigref.NewFromIndices(p, []int{3, 10, 20}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Perfectly aligned clean window: finite, large power.
	pw, err := det.NormPower(sig.Samples(), sig)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(pw, -1) {
		t.Fatal("clean aligned window rejected")
	}
	if pw < 0.5*sig.TotalRF() {
		t.Fatalf("norm power %g too small vs R_S %g", pw, sig.TotalRF())
	}

	// All-frequency window (every candidate hot): β check must reject.
	all := make([]int, p.NumCandidates-1)
	for i := range all {
		all[i] = i
	}
	allSig, err := sigref.NewFromIndices(p, all, nil)
	if err != nil {
		t.Fatal(err)
	}
	pw, err = det.NormPower(allSig.Samples(), sig)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(pw, -1) {
		t.Fatalf("all-frequency window accepted with power %g", pw)
	}

	// Silence: α check must reject.
	pw, err = det.NormPower(make([]float64, p.Length), sig)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(pw, -1) {
		t.Fatal("silent window accepted")
	}

	// Window length mismatch is an error.
	if _, err := det.NormPower(make([]float64, 100), sig); err == nil {
		t.Fatal("bad window length accepted")
	}
	if _, err := det.NormPower(nil, nil); err == nil {
		t.Fatal("nil signal accepted")
	}
}

func TestDetectAllValidation(t *testing.T) {
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectAll(make([]float64, 10000)); err == nil {
		t.Error("no signals accepted")
	}
	p := sigref.DefaultParams()
	sig, err := sigref.New(p, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectAll(make([]float64, 100), sig); err == nil {
		t.Error("short recording accepted")
	}
	if _, err := det.DetectAll(make([]float64, 10000), sig, nil); err == nil {
		t.Error("nil signal accepted")
	}
	p2 := p
	p2.Length = 2048
	sig2, err := sigref.New(p2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectAll(make([]float64, 10000), sig, sig2); err == nil {
		t.Error("mismatched params accepted")
	}
}

func TestDetectBothSignalsOneScan(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(6))
	s1, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := plantSignal(s1, 40000, 3000, 0.5)
	for i, v := range s2.Samples() {
		rec[20000+i] += 0.4 * v
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	results, err := det.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Found || !results[1].Found {
		t.Fatalf("found=%v/%v", results[0].Found, results[1].Found)
	}
	if d := results[0].Location - 3000; d < -10 || d > 10 {
		t.Errorf("s1 at %d", results[0].Location)
	}
	if d := results[1].Location - 20000; d < -10 || d > 10 {
		t.Errorf("s2 at %d", results[1].Location)
	}
}

// TestDetectThroughSimulatedChannel is the integration gate: a reference
// signal played through the acoustic world at 1 m in an office must be
// located within a few fine steps of its true arrival.
func TestDetectThroughSimulatedChannel(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(7))
	sig, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}

	wcfg := world.DefaultConfig()
	wcfg.Environment = acoustic.EnvOffice
	wcfg.DurationSec = 0.8
	w, err := world.New(wcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := device.New(device.Config{Name: "src", Position: [2]float64{0, 0}, SampleRate: 44100})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := device.New(device.Config{Name: "dst", Position: [2]float64{1, 0}, SampleRate: 44100})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddDevice(src); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDevice(dst); err != nil {
		t.Fatal(err)
	}

	const playAt = 0.25
	if err := w.SchedulePlay(src, sig.Samples(), playAt); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Render()
	if err != nil {
		t.Fatal(err)
	}

	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(recs[dst].Float(), sig)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("signal not found through channel")
	}
	wantArrival := (playAt + 1.0/acoustic.SpeedOfSoundMPS) * 44100
	if diff := math.Abs(float64(res.Location) - wantArrival); diff > 40 {
		t.Fatalf("located %d, want ≈%g (off %g samples)", res.Location, wantArrival, diff)
	}
	_ = audio.MaxSample // keep audio import for the int16-scale contract
}

func TestDetectCrossCorrelationCleanChannel(t *testing.T) {
	p := sigref.DefaultParams()
	sig, err := sigref.New(p, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// On a clean, undistorted channel cross-correlation works perfectly —
	// it's the frequency smoothing that breaks it (see baseline tests).
	rec := plantSignal(sig, 20000, 6000, 0.5)
	res, err := det.DetectCrossCorrelation(rec, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Location != 6000 {
		t.Fatalf("cc located %d, want 6000", res.Location)
	}
	if _, err := det.DetectCrossCorrelation(rec, nil); err == nil {
		t.Error("nil signal accepted")
	}
	if _, err := det.DetectCrossCorrelation(make([]float64, 10), sig); err == nil {
		t.Error("short recording accepted")
	}
}
