//go:build !race

package detect

// raceEnabled is false without the race detector; see race_enabled_test.go.
const raceEnabled = false
