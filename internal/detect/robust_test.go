package detect

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/faultinject"
)

// TestDetectAllContextPreCanceled: a context canceled before the scan
// starts aborts at the first checkpoint with ctx.Err().
func TestDetectAllContextPreCanceled(t *testing.T) {
	rec, s1, s2 := benchRecording(t, 31, 52920)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.DetectAllContext(ctx, rec, s1, s2); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled scan returned %v, want context.Canceled", err)
	}
	// A nil context scans exactly as before.
	if _, err := det.DetectAllContext(nil, rec, s1, s2); err != nil {
		t.Fatal(err)
	}
}

// TestDetectAllContextCancelMidScan: a fault-injection hook cancels the
// context partway through the coarse scan's block grid; the scan must
// abort with ctx.Err() instead of finishing, and the detector must keep
// working for later scans with identical results.
func TestDetectAllContextCancelMidScan(t *testing.T) {
	rec, s1, s2 := benchRecording(t, 32, 52920)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := det.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Enable(1)
	defer faultinject.Disable()
	// Let a few blocks complete so cancellation genuinely lands mid-scan.
	faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
		Action: faultinject.ActHook, Skip: 3, Times: 1, Hook: cancel,
	})
	if _, err := det.DetectAllContext(ctx, rec, s1, s2); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancel returned %v, want context.Canceled", err)
	}
	if faultinject.Hits(faultinject.SiteDetectBlock) != 1 {
		t.Fatal("cancellation hook never fired; the scan did not reach block 4")
	}
	faultinject.Disable()

	// The detector (and its pooled workspaces) must be unharmed.
	after, err := det.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != after[i] {
			t.Fatalf("post-cancel scan diverged: %+v != %+v", after[i], clean[i])
		}
	}
}

// TestScanPanicIsolation: an injected panic in a scan block surfaces as a
// typed *PanicError (process intact), the poisoned workspace is discarded,
// and subsequent scans are bit-identical to pre-panic scans.
func TestScanPanicIsolation(t *testing.T) {
	rec, s1, s2 := benchRecording(t, 33, 52920)
	for _, pooled := range []bool{false, true} {
		det, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if pooled {
			p := NewPool(2)
			defer p.Close()
			det.UsePool(p)
		}
		clean, err := det.DetectAll(rec, s1, s2)
		if err != nil {
			t.Fatal(err)
		}

		faultinject.Enable(1)
		faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
			Action: faultinject.ActPanic, Skip: 2, Times: 1,
		})
		_, err = det.DetectAll(rec, s1, s2)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("pooled=%v: injected panic returned %v, want *PanicError", pooled, err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("pooled=%v: PanicError carries no stack", pooled)
		}
		faultinject.Disable()

		// The detector and (when attached) the pool must still scan, and
		// identically: the poisoned workspace must not have been recycled.
		for round := 0; round < 2; round++ {
			after, err := det.DetectAll(rec, s1, s2)
			if err != nil {
				t.Fatalf("pooled=%v round %d: post-panic scan failed: %v", pooled, round, err)
			}
			for i := range clean {
				if clean[i] != after[i] {
					t.Fatalf("pooled=%v round %d: post-panic scan diverged: %+v != %+v", pooled, round, after[i], clean[i])
				}
			}
		}
	}
}

// TestScanStallStillCompletes: an injected slow-scan stall delays but must
// not corrupt a scan.
func TestScanStallStillCompletes(t *testing.T) {
	rec, s1, s2 := benchRecording(t, 34, 52920)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := det.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
		Action: faultinject.ActDelay, Delay: 2e6, Times: 3, // 2 ms
	})
	stalled, err := det.DetectAll(rec, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != stalled[i] {
			t.Fatalf("stalled scan diverged: %+v != %+v", stalled[i], clean[i])
		}
	}
	if faultinject.Hits(faultinject.SiteDetectBlock) != 3 {
		t.Fatalf("stall fired %d times, want 3", faultinject.Hits(faultinject.SiteDetectBlock))
	}
}

// TestPoolSurvivesPanickingTask: the last-resort recover in Pool workers —
// an arbitrary panicking task must not kill the worker goroutine; the pool
// keeps accepting and running work afterwards.
func TestPoolSurvivesPanickingTask(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	// offer is non-blocking by design; retry briefly while the worker
	// goroutine parks on the task queue.
	submit := func(fn func()) bool {
		for i := 0; i < 1000; i++ {
			if p.offer(fn) {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}
	boom := make(chan struct{})
	if !submit(func() { defer close(boom); panic("task bug") }) {
		t.Fatal("idle pool declined work")
	}
	<-boom
	// The single worker just panicked; it must still be alive to take
	// this task.
	ran := make(chan struct{})
	if !submit(func() { close(ran) }) {
		t.Fatal("pool worker died after a panicking task")
	}
	<-ran
}
