package detect

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// lossFixture builds the two-signal recording of the early-prefix test:
// s1 at 3000, s2 at 9000, 60000 samples — both found by the batch scan.
func lossFixture(t *testing.T) (*Detector, []int16, []*sigref.Signal, []Result) {
	t.Helper()
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(6))
	s1, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sigref.New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	const total = 60000
	recF := make([]float64, total)
	for i, v := range s1.Samples() {
		recF[3000+i] += 0.5 * v
	}
	for i, v := range s2.Samples() {
		recF[9000+i] += 0.4 * v
	}
	pcm := audio.FromFloat(recF)
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.DetectAllPCM(pcm, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !want[0].Found || !want[1].Found {
		t.Fatalf("fixture signals not found: %+v", want)
	}
	return det, pcm, []*sigref.Signal{s1, s2}, want
}

// feedWithGap streams pcm with the span [gapLo, gapLo+gapN) declared lost
// and returns the stream plus the Results outcome.
func feedWithGap(t *testing.T, det *Detector, pcm []int16, sigs []*sigref.Signal, gapLo, gapN int) (*Stream, []Result, error) {
	t.Helper()
	st, err := det.NewStream(len(pcm), sigs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Feed(nil, pcm[:gapLo]); err != nil {
		t.Fatal(err)
	}
	if err := st.FeedLost(nil, gapN); err != nil {
		return st, nil, err
	}
	if err := st.Feed(nil, pcm[gapLo+gapN:]); err != nil {
		t.Fatal(err)
	}
	res, need, err := st.Results(nil)
	if err != nil {
		return st, nil, err
	}
	if need != 0 {
		t.Fatalf("full lossy feed still needs %d samples", need)
	}
	return st, res, nil
}

// TestStreamLossGapEdgeCases is the gap edge-case table: gaps starting and
// ending exactly on hop-grid window edges, a 1-sample gap, and a gap
// inside the fine-scan re-check span. Each produces its documented
// deterministic outcome — window exclusion per dsp.HopGrid arithmetic
// when the peak band survives, typed ErrInsufficientAudio when the
// fine-scan span is tainted — identically at GOMAXPROCS 1, 2, 4, and 8.
func TestStreamLossGapEdgeCases(t *testing.T) {
	det, pcm, sigs, want := lossFixture(t)
	winLen := sigs[0].Params().Length
	step := det.Config().CoarseStep
	grid := dsp.HopGrid{Lo: 0, Step: step, WinLen: winLen, Count: (len(pcm)-winLen)/step + 1, Block: 1}

	cases := []struct {
		name         string
		gapLo, gapN  int
		insufficient bool // expect ErrInsufficientAudio instead of a result
	}{
		// Gap starting exactly on a grid window edge, far from both
		// signals and fine spans: the overlapped windows are excluded,
		// the peak survives, the decision equals the clean-feed decision.
		{name: "window-edge-start", gapLo: grid.WindowStart(20), gapN: 500},
		// Gap ending exactly on a window-completion edge (NeedFor).
		{name: "window-edge-end", gapLo: grid.NeedFor(20) - 500, gapN: 500},
		// The minimal gap: one sample still excludes every window whose
		// span contains it.
		{name: "one-sample", gapLo: 20001, gapN: 1},
		// Gap inside s2's fine-scan re-check span (argmax 9000 ±
		// CoarseStep plus one window = [8000, 14410)): the exact-at-peak
		// re-check would score fabricated zeros, so the stream refuses.
		{name: "fine-span", gapLo: 13500, gapN: 100, insufficient: true},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, tc := range cases {
		wantW0, wantW1 := grid.WindowsOverlapping(tc.gapLo, tc.gapLo+tc.gapN)
		var baseRes []Result
		var baseErr error
		for pi, procs := range []int{1, 2, 4, 8} {
			runtime.GOMAXPROCS(procs)
			for rep := 0; rep < 2; rep++ {
				st, res, err := feedWithGap(t, det, pcm, sigs, tc.gapLo, tc.gapN)
				if tc.insufficient {
					if !errors.Is(err, ErrInsufficientAudio) {
						t.Fatalf("%s procs=%d: got res=%v err=%v, want ErrInsufficientAudio", tc.name, procs, res, err)
					}
				} else {
					if err != nil {
						t.Fatalf("%s procs=%d: %v", tc.name, procs, err)
					}
					samples, windows := st.Loss()
					if samples != tc.gapN || windows != wantW1-wantW0 {
						t.Fatalf("%s procs=%d: Loss()=(%d, %d), want (%d, %d)",
							tc.name, procs, samples, windows, tc.gapN, wantW1-wantW0)
					}
					// Far-from-peak gaps must not perturb the decision.
					for i := range want {
						if res[i].Found != want[i].Found || res[i].Location != want[i].Location ||
							math.Float64bits(res[i].Power) != math.Float64bits(want[i].Power) {
							t.Fatalf("%s procs=%d signal %d: lossy %+v != batch %+v", tc.name, procs, i, res[i], want[i])
						}
					}
				}
				if pi == 0 && rep == 0 {
					baseRes, baseErr = res, err
					continue
				}
				// Identical outcome across GOMAXPROCS and repeats.
				if (err == nil) != (baseErr == nil) {
					t.Fatalf("%s procs=%d: err %v diverges from baseline %v", tc.name, procs, err, baseErr)
				}
				if err != nil && err.Error() != baseErr.Error() {
					t.Fatalf("%s procs=%d: error %q != baseline %q", tc.name, procs, err, baseErr)
				}
				for i := range baseRes {
					if math.Float64bits(res[i].Power) != math.Float64bits(baseRes[i].Power) || res[i] != baseRes[i] {
						t.Fatalf("%s procs=%d signal %d: %+v != baseline %+v", tc.name, procs, i, res[i], baseRes[i])
					}
				}
			}
		}
	}
}

// TestStreamLossCeiling: loss past MaxLossFraction refuses typed at
// FeedLost time and stays refused at Results — never a decision.
func TestStreamLossCeiling(t *testing.T) {
	det, pcm, sigs, _ := lossFixture(t)
	st, err := det.NewStream(len(pcm), sigs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.FeedLost(nil, -1); err == nil {
		t.Error("negative lost span accepted")
	}
	// Default ceiling: 25% of 60000 = 15000 samples.
	if err := st.FeedLost(nil, 15000); err != nil {
		t.Fatalf("loss at the ceiling refused early: %v", err)
	}
	if err := st.FeedLost(nil, 1); !errors.Is(err, ErrInsufficientAudio) {
		t.Fatalf("loss past the ceiling: got %v", err)
	}
	if err := st.Feed(nil, pcm[15001:]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Results(nil); !errors.Is(err, ErrInsufficientAudio) {
		t.Fatalf("Results past the ceiling: got %v", err)
	}
}

// TestStreamLossAbsentRefuses: a recording whose surviving windows hold no
// signal cannot report ⊥ while windows are lost — the signal might sit in
// the audio that never arrived.
func TestStreamLossAbsentRefuses(t *testing.T) {
	p := sigref.DefaultParams()
	sig, err := sigref.New(p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcm := make([]int16, 20000)
	st, err := det.NewStream(len(pcm), sig)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Feed(nil, pcm[:10000]); err != nil {
		t.Fatal(err)
	}
	if err := st.FeedLost(nil, 500); err != nil {
		t.Fatal(err)
	}
	if err := st.Feed(nil, pcm[10500:]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Results(nil); !errors.Is(err, ErrInsufficientAudio) {
		t.Fatalf("⊥ under loss: got %v, want ErrInsufficientAudio", err)
	}
}

// TestStreamZeroLossBitIdentical: a framed-clean stream (Feed only, no
// FeedLost) is byte-identical to batch — the loss machinery must cost
// nothing when unused.
func TestStreamZeroLossBitIdentical(t *testing.T) {
	det, pcm, sigs, want := lossFixture(t)
	st, err := det.NewStream(len(pcm), sigs...)
	if err != nil {
		t.Fatal(err)
	}
	got := feedChunks(t, st, pcm, 881)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("signal %d: stream %+v != batch %+v", i, got[i], want[i])
		}
	}
	if s, w := st.Loss(); s != 0 || w != 0 {
		t.Fatalf("clean feed reports loss (%d, %d)", s, w)
	}
}
