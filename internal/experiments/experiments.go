package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/device"
)

// PaperDistances are the four true distances evaluated throughout §VI-B.
var PaperDistances = []float64{0.5, 1.0, 1.5, 2.0}

// PaperThresholds are the τ columns of Tables I and II.
var PaperThresholds = []float64{0.5, 1.0, 1.5, 2.0}

// Options configures an experiment run.
type Options struct {
	// Trials per measurement point. The paper uses 10; tests may use
	// fewer for speed. Defaults to 10 when zero.
	Trials int
	// Seed drives all randomness for reproducibility. Defaults to 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// newDevicePair builds the canonical experiment pair: the authenticating
// device at the origin and the vouching device at (distM, 0), with
// realistic distinct crystal skews drawn from rng.
func newDevicePair(distM float64, sameRoom bool, rng *rand.Rand) (*device.Device, *device.Device, error) {
	vouchRoom := 0
	if !sameRoom {
		vouchRoom = 1
	}
	auth, err := device.New(device.Config{
		Name:         "auth",
		Position:     [2]float64{0, 0},
		Room:         0,
		SampleRate:   44100,
		ClockSkewPPM: rng.NormFloat64() * 20,
		ProcDelay:    device.DefaultProcessingDelay(),
	})
	if err != nil {
		return nil, nil, err
	}
	vouch, err := device.New(device.Config{
		Name:         "vouch",
		Position:     [2]float64{distM, 0},
		Room:         vouchRoom,
		SampleRate:   44100,
		ClockSkewPPM: rng.NormFloat64() * 20,
		ProcDelay:    device.DefaultProcessingDelay(),
	})
	if err != nil {
		return nil, nil, err
	}
	return auth, vouch, nil
}

// envConfig returns the deployment config for one environment.
func envConfig(env acoustic.Environment) core.Config {
	cfg := core.DefaultConfig()
	cfg.World.Environment = env
	return cfg
}

// errNoTrials guards against empty result aggregation.
var errNoTrials = errors.New("experiments: no successful trials")

// scenarioName maps an environment to the row label used in Tables I/II.
func scenarioName(env acoustic.Environment) string {
	switch env {
	case acoustic.EnvOffice:
		return "Office"
	case acoustic.EnvHome:
		return "Home"
	case acoustic.EnvStreet:
		return "Street"
	case acoustic.EnvRestaurant:
		return "Restaurant"
	default:
		return fmt.Sprintf("%v", env)
	}
}
