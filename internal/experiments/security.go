package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/attack"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/stats"
)

// AttackOutcome summarizes one attack campaign.
type AttackOutcome struct {
	Attack   string
	Trials   int
	Accepted int // authentications falsely granted
}

// SecurityResult reproduces §VI-E: 100 trials each of the two spoofing
// attacks, plus the §V analytic replay-success probability.
type SecurityResult struct {
	Outcomes []AttackOutcome
	// AnalyticReplayProb is 1/2^(N+1) for the configured candidate count.
	AnalyticReplayProb float64
}

// RunSecurity stages the paper's threat scenario: the legitimate user (and
// the vouching device) is 6 m away — within Bluetooth range but beyond
// d_s — while an attacker 0.4 m from the authenticating device plays
// spoofing signals.
func RunSecurity(opts Options) (*SecurityResult, error) {
	opts = opts.withDefaults()
	trials := opts.Trials
	if opts.Trials == 10 { // default: match the paper's 100-trial campaign
		trials = 100
	}
	cfg := envConfig(acoustic.EnvOffice)
	out := &SecurityResult{}

	prob, err := stats.ReplaySuccessProbability(cfg.Signal.NumCandidates)
	if err != nil {
		return nil, err
	}
	out.AnalyticReplayProb = prob

	campaigns := []struct {
		name  string
		plays func(rng *rand.Rand, attacker *device.Device) ([]core.ExtraPlay, error)
	}{
		{
			name: "guessing-based replay",
			plays: func(rng *rand.Rand, attacker *device.Device) ([]core.ExtraPlay, error) {
				return attack.GuessingReplay(cfg.Signal, attacker, rng)
			},
		},
		{
			name: "all-frequency spoofing",
			plays: func(rng *rand.Rand, attacker *device.Device) ([]core.ExtraPlay, error) {
				return attack.AllFrequency(cfg.Signal, attacker, cfg.World.DurationSec, 1, rng)
			},
		},
	}

	for i, c := range campaigns {
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)*131071 + 41))
		auth, vouch, err := newDevicePair(6.0, true, rng) // user away, BT still in range
		if err != nil {
			return nil, err
		}
		attacker, err := attack.NewAttackerDevice("attacker", [2]float64{0.4, 0}, 0)
		if err != nil {
			return nil, err
		}
		a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
		if err != nil {
			return nil, err
		}
		accepted := 0
		for t := 0; t < trials; t++ {
			plays, err := c.plays(rng, attacker)
			if err != nil {
				return nil, err
			}
			res, err := a.Authenticate(plays...)
			if err != nil {
				return nil, err
			}
			if res.Granted {
				accepted++
			}
		}
		out.Outcomes = append(out.Outcomes, AttackOutcome{Attack: c.name, Trials: trials, Accepted: accepted})
	}
	return out, nil
}

// FprintSecurity renders the attack campaign results.
func FprintSecurity(w io.Writer, res *SecurityResult) {
	fmt.Fprintln(w, "Security against spoofing attacks (§VI-E): user 6 m away, attacker 0.4 m away")
	for _, o := range res.Outcomes {
		fmt.Fprintf(w, "  %-24s  %d/%d attacks succeeded (paper: 0/100)\n", o.Attack, o.Accepted, o.Trials)
	}
	fmt.Fprintf(w, "  analytic replay success probability 1/2^(N+1) = %.3g (N=30)\n", res.AnalyticReplayProb)
}
