package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/attack"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
	"github.com/acoustic-auth/piano/internal/stats"
	"github.com/acoustic-auth/piano/internal/world"
)

// AblationResult is a generic labeled series for the design-choice benches
// DESIGN.md calls out.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Config string
	Value  float64
	Unit   string
	Note   string
}

// FprintAblation renders one ablation.
func FprintAblation(w io.Writer, res *AblationResult) {
	fmt.Fprintf(w, "Ablation: %s\n", res.Title)
	for _, r := range res.Rows {
		note := ""
		if r.Note != "" {
			note = "  — " + r.Note
		}
		fmt.Fprintf(w, "  %-28s %10.2f %s%s\n", r.Config, r.Value, r.Unit, note)
	}
}

// playThroughChannel renders one play of the given samples through an
// office scene at distM and returns the receiving device's recording plus
// the true arrival sample index.
func playThroughChannel(samples []float64, distM float64, rng *rand.Rand) ([]float64, float64, error) {
	wcfg := world.DefaultConfig()
	wcfg.Environment = acoustic.EnvOffice
	wcfg.DurationSec = 0.8
	w, err := world.New(wcfg, rng)
	if err != nil {
		return nil, 0, err
	}
	src, err := device.New(device.Config{Name: "src", Position: [2]float64{0, 0}, SampleRate: 44100})
	if err != nil {
		return nil, 0, err
	}
	dst, err := device.New(device.Config{Name: "dst", Position: [2]float64{distM, 0}, SampleRate: 44100})
	if err != nil {
		return nil, 0, err
	}
	if err := w.AddDevice(src); err != nil {
		return nil, 0, err
	}
	if err := w.AddDevice(dst); err != nil {
		return nil, 0, err
	}
	const playAt = 0.25
	if err := w.SchedulePlay(src, samples, playAt); err != nil {
		return nil, 0, err
	}
	recs, err := w.Render()
	if err != nil {
		return nil, 0, err
	}
	arrival := (playAt + distM/acoustic.SpeedOfSoundMPS) * 44100
	return recs[dst].Float(), arrival, nil
}

// RunAblationRandomizationDomain compares the paper's frequency-domain
// randomized signals (detected by Algorithm 1) against the §IV-B strawman
// of time-domain random samples (detectable only by cross-correlation),
// measuring location error through the noisy street channel at 2 m, plus
// the fraction of signal power inside the audible band — the time-domain
// strawman is loudly audible, which alone disqualifies it for a system
// designed around inaudible ranging.
func RunAblationRandomizationDomain(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed + 61))
	p := sigref.DefaultParams()
	det, err := detect.New(detect.DefaultConfig())
	if err != nil {
		return nil, err
	}

	audibleFraction := func(x []float64) float64 {
		spec, err := dsp.PowerSpectrum(x[:p.Length])
		if err != nil {
			return 0
		}
		cut := dsp.BinIndex(16000, p.SampleRate, p.Length)
		var below, total float64
		for k := 1; k <= p.Length/2; k++ {
			total += spec[k]
			if k <= cut {
				below += spec[k]
			}
		}
		if total == 0 {
			return 0
		}
		return below / total
	}

	const distM = 2.0
	var freqErr, timeErr []float64
	var freqAud, timeAud float64
	for t := 0; t < opts.Trials; t++ {
		// Frequency-domain randomized signal + Algorithm 1.
		sig, err := sigref.New(p, rng)
		if err != nil {
			return nil, err
		}
		rec, truth, err := playThroughChannel(sig.Samples(), distM, rng)
		if err != nil {
			return nil, err
		}
		res, err := det.Detect(rec, sig)
		if err != nil {
			return nil, err
		}
		if res.Found {
			freqErr = append(freqErr, math.Abs(float64(res.Location)-truth)*acoustic.SpeedOfSoundMPS/44100*100)
		}
		// The emitted analog components sit at 25-35 kHz by construction;
		// judging audibility on the sampled (aliased) spectrum would be
		// wrong, so count the design frequencies directly.
		for _, f := range sig.Frequencies() {
			if f < 16000 {
				freqAud += 1 / float64(sig.Count())
			}
		}

		// Time-domain random signal + cross-correlation.
		raw, err := sigref.TimeDomainRandom(p, rng)
		if err != nil {
			return nil, err
		}
		rec2, truth2, err := playThroughChannel(raw, distM, rng)
		if err != nil {
			return nil, err
		}
		corr, err := dsp.CrossCorrelate(rec2, raw)
		if err != nil {
			return nil, err
		}
		idx, _ := dsp.ArgMax(corr)
		timeErr = append(timeErr, math.Abs(float64(idx)-truth2)*acoustic.SpeedOfSoundMPS/44100*100)
		timeAud += audibleFraction(raw)
	}
	n := float64(opts.Trials)

	return &AblationResult{
		Title: "randomization domain (paper §IV-B): location error at 2 m, office",
		Rows: []AblationRow{
			{Config: "frequency-domain + Alg. 1", Value: stats.Mean(freqErr), Unit: "cm",
				Note: fmt.Sprintf("%d/%d detected, %.0f%% of emitted power audible (<16 kHz)", len(freqErr), opts.Trials, freqAud/n*100)},
			{Config: "time-domain + xcorr", Value: stats.Mean(timeErr), Unit: "cm",
				Note: fmt.Sprintf("%.0f%% of power audible — unusable for inaudible ranging; no ⊥/spoof checks exist for it", timeAud/n*100)},
		},
	}, nil
}

// RunAblationSanityCheck shows the β check is load-bearing. The strongest
// §V adversary runs it two-sided: synchronized attacker speakers near BOTH
// devices play timed all-frequency bursts that mimic the protocol cadence.
// With the β check on, every such session returns ⊥; with it off, the
// spoof bursts are accepted as reference signals, the attacker controls
// the distance estimate, and a fraction of attacks is outright granted.
func RunAblationSanityCheck(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Title: "β sanity check vs timed two-sided all-frequency spoofing (user 6 m away)"}

	for _, disable := range []bool{false, true} {
		rng := rand.New(rand.NewSource(opts.Seed + 67))
		cfg := envConfig(acoustic.EnvOffice)
		cfg.Detect.DisableBetaCheck = disable
		// A naive implementation would not have the geometry gate either.
		if disable {
			cfg.PlausibleMinM = -1000
			cfg.PlausibleMaxM = 1000
		}
		auth, vouch, err := newDevicePair(6.0, true, rng)
		if err != nil {
			return nil, err
		}
		atkAuth, err := attack.NewAttackerDevice("attacker-near-auth", [2]float64{0.4, 0}, 0)
		if err != nil {
			return nil, err
		}
		atkVouch, err := attack.NewAttackerDevice("attacker-near-vouch", [2]float64{5.6, 0}, 0)
		if err != nil {
			return nil, err
		}
		a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
		if err != nil {
			return nil, err
		}
		granted, spoofMeasured := 0, 0
		for t := 0; t < opts.Trials; t++ {
			// The attacker estimates the midpoint of the two legitimate
			// plays from the protocol cadence and fires synchronized
			// bursts there from both speakers.
			const burstAt = 0.49
			plays, err := attack.TimedAllFrequency(cfg.Signal, []*device.Device{atkAuth, atkVouch}, burstAt, rng)
			if err != nil {
				return nil, err
			}
			r, err := a.Authenticate(plays...)
			if err != nil {
				return nil, err
			}
			if r.Granted {
				granted++
			}
			if r.Session != nil && r.Session.Found {
				spoofMeasured++
			}
		}
		label := "β check ON (paper)"
		if disable {
			label = "β check OFF (ablated)"
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: label,
			Value:  float64(granted) / float64(opts.Trials) * 100,
			Unit:   "% attacks granted",
			Note: fmt.Sprintf("%d/%d sessions yielded an attacker-controlled distance",
				spoofMeasured, opts.Trials),
		})
	}
	return res, nil
}

// RunAblationTheta sweeps the frequency-smoothing aggregation width.
func RunAblationTheta(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Title: "θ smoothing aggregation width: abs distance error at 1 m, office"}
	for _, theta := range []int{0, 1, 5, 10} {
		rng := rand.New(rand.NewSource(opts.Seed + 71))
		cfg := envConfig(acoustic.EnvOffice)
		cfg.Detect.Theta = theta
		pts, err := measureSeries(cfg, []float64{1.0}, opts.Trials, rng, nil)
		if err != nil {
			return nil, err
		}
		note := fmt.Sprintf("⊥ %d/%d", pts[0].Absent, pts[0].Trials)
		res.Rows = append(res.Rows, AblationRow{
			Config: fmt.Sprintf("θ=%d", theta),
			Value:  pts[0].MeanAbsErrCM,
			Unit:   "cm",
			Note:   note,
		})
	}
	return res, nil
}

// RunAblationStep sweeps the fine search step (accuracy/cost trade-off of
// the prototype's adaptive stepping).
func RunAblationStep(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Title: "fine search step: abs error and scan cost at 1 m, office"}
	for _, step := range []int{1, 10, 50, 200} {
		rng := rand.New(rand.NewSource(opts.Seed + 73))
		cfg := envConfig(acoustic.EnvOffice)
		cfg.Detect.FineStep = step
		auth, vouch, err := newDevicePair(1.0, true, rng)
		if err != nil {
			return nil, err
		}
		a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
		if err != nil {
			return nil, err
		}
		var errs []float64
		windows := 0
		for t := 0; t < opts.Trials; t++ {
			sr, err := a.Measure()
			if err != nil {
				return nil, err
			}
			if sr.Found {
				errs = append(errs, math.Abs(sr.DistanceM-1.0)*100)
			}
			windows += sr.WindowsScanned
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: fmt.Sprintf("fine step %d", step),
			Value:  stats.Mean(errs),
			Unit:   "cm",
			Note:   fmt.Sprintf("%d windows/auth", windows/opts.Trials),
		})
	}
	return res, nil
}

// RunAblationOneWay contrasts Eq. 3's two-way combination with the naive
// one-way Eq. 1, which requires synchronized clocks. The one-way estimate
// naively assumes both recordings started simultaneously; the tens of
// milliseconds of Bluetooth/processing offset turn into tens of meters.
func RunAblationOneWay(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed + 79))
	cfg := envConfig(acoustic.EnvOffice)
	auth, vouch, err := newDevicePair(1.0, true, rng)
	if err != nil {
		return nil, err
	}
	a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		return nil, err
	}
	var twoWay, oneWay []float64
	for t := 0; t < opts.Trials; t++ {
		sr, err := a.Measure()
		if err != nil {
			return nil, err
		}
		if !sr.Found {
			continue
		}
		twoWay = append(twoWay, math.Abs(sr.DistanceM-1.0)*100)
		// Eq. 1 with the naive same-origin assumption:
		// d_A = s·(t_VA − t_AA) where both are local sample clocks.
		naive := acoustic.SpeedOfSoundMPS *
			(float64(sr.LocVA)/vouch.SampleRate() - float64(sr.LocAA)/auth.SampleRate())
		oneWay = append(oneWay, math.Abs(naive-1.0)*100)
	}
	return &AblationResult{
		Title: "two-way Eq. 3 vs one-way Eq. 1 without time synchronization",
		Rows: []AblationRow{
			{Config: "two-way (Eq. 3, PIANO)", Value: stats.Mean(twoWay), Unit: "cm"},
			{Config: "one-way (Eq. 1, unsynced)", Value: stats.Mean(oneWay), Unit: "cm",
				Note: "clock offset enters at 343 m/s"},
		},
	}, nil
}

// RunAblationCandidates sweeps the candidate-set size N: guessing-attack
// probability (analytic, §V) against measured accuracy.
func RunAblationCandidates(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Title: "candidate count N: replay-guess probability vs accuracy at 1 m"}
	for _, n := range []int{10, 20, 30, 60} {
		rng := rand.New(rand.NewSource(opts.Seed + 83))
		cfg := envConfig(acoustic.EnvOffice)
		cfg.Signal.NumCandidates = n
		pts, err := measureSeries(cfg, []float64{1.0}, opts.Trials, rng, nil)
		if err != nil {
			return nil, err
		}
		prob, err := stats.ReplaySuccessProbability(n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: fmt.Sprintf("N=%d", n),
			Value:  pts[0].MeanAbsErrCM,
			Unit:   "cm",
			Note:   fmt.Sprintf("replay success 1/2^(N+1) = %.2g, ⊥ %d/%d", prob, pts[0].Absent, pts[0].Trials),
		})
	}
	return res, nil
}

// RunAllAblations executes the full ablation battery.
func RunAllAblations(opts Options) ([]*AblationResult, error) {
	runners := []func(Options) (*AblationResult, error){
		RunAblationRandomizationDomain,
		RunAblationSanityCheck,
		RunAblationTheta,
		RunAblationStep,
		RunAblationOneWay,
		RunAblationCandidates,
	}
	out := make([]*AblationResult, 0, len(runners))
	for _, r := range runners {
		res, err := r(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
