package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
)

// WallPoint is one distance of the wall/range experiment.
type WallPoint struct {
	DistanceM   float64
	DetectRate  float64 // fraction of trials where ACTION measured a distance
	DeniedCount int
	Trials      int
}

// WallResult covers the §VI-B "separated by a wall" observation and the
// d_s ≈ 2.5 m detectability limit.
type WallResult struct {
	SameRoom    []WallPoint // range sweep, no wall
	ThroughWall []WallPoint
}

// RunWall measures detection rates with and without a wall across a range
// sweep. Expected shape: same-room detection holds to ≈2.5 m then dies;
// through-wall detection is ≈0 at every distance.
func RunWall(opts Options) (*WallResult, error) {
	opts = opts.withDefaults()
	sweep := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}

	run := func(sameRoom bool, seedOff int64) ([]WallPoint, error) {
		rng := rand.New(rand.NewSource(opts.Seed + seedOff))
		cfg := envConfig(acoustic.EnvOffice)
		points := make([]WallPoint, 0, len(sweep))
		for _, d := range sweep {
			auth, vouch, err := newDevicePair(d, sameRoom, rng)
			if err != nil {
				return nil, err
			}
			a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
			if err != nil {
				return nil, err
			}
			found := 0
			for t := 0; t < opts.Trials; t++ {
				sr, err := a.Measure()
				if err != nil {
					return nil, err
				}
				if sr.Found {
					found++
				}
			}
			points = append(points, WallPoint{
				DistanceM:   d,
				DetectRate:  float64(found) / float64(opts.Trials),
				DeniedCount: opts.Trials - found,
				Trials:      opts.Trials,
			})
		}
		return points, nil
	}

	same, err := run(true, 31)
	if err != nil {
		return nil, fmt.Errorf("experiments: wall same-room: %w", err)
	}
	walled, err := run(false, 37)
	if err != nil {
		return nil, fmt.Errorf("experiments: wall through-wall: %w", err)
	}
	return &WallResult{SameRoom: same, ThroughWall: walled}, nil
}

// FprintWall renders the wall/range experiment.
func FprintWall(w io.Writer, res *WallResult) {
	fmt.Fprintln(w, "Wall & range experiment: fraction of trials where ACTION measured a distance")
	fmt.Fprintf(w, "  %-14s", "distance (m)")
	for _, p := range res.SameRoom {
		fmt.Fprintf(w, "%7.1f", p.DistanceM)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-14s", "same room")
	for _, p := range res.SameRoom {
		fmt.Fprintf(w, "%7.0f%%", p.DetectRate*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-14s", "through wall")
	for _, p := range res.ThroughWall {
		fmt.Fprintf(w, "%7.0f%%", p.DetectRate*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  Paper: detection holds to d_s ≈ 2.5 m in the open and always fails through a wall")
}
