package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/stats"
)

// DistancePoint aggregates the trials at one true distance.
type DistancePoint struct {
	DistanceM float64
	// MeanAbsErrCM / StdAbsErrCM are the error-bar statistics the paper
	// plots in Fig. 1 (mean and std of the absolute error, centimeters).
	MeanAbsErrCM float64
	StdAbsErrCM  float64
	// MeanSignedErrCM and SigmaCM describe the signed-error distribution
	// (σ_d feeds the §VI-C decision model).
	MeanSignedErrCM float64
	SigmaCM         float64
	// Absent counts trials where ACTION returned ⊥.
	Absent int
	// Trials is the attempted trial count.
	Trials int
}

// EnvironmentResult is one panel of Fig. 1 (or the Fig. 2a panel).
type EnvironmentResult struct {
	Env    acoustic.Environment
	Label  string
	Points []DistancePoint
	// SigmaM is σ_d in meters: the per-point signed-error stds averaged
	// over the four points, exactly as §VI-C estimates it.
	SigmaM float64
}

// measureSeries runs trials×len(distances) ACTION measurements in one
// environment, optionally injecting extra plays built per trial.
func measureSeries(
	cfg core.Config,
	distances []float64,
	trials int,
	rng *rand.Rand,
	extrasFor func(trial int) ([]core.ExtraPlay, error),
) ([]DistancePoint, error) {
	points := make([]DistancePoint, 0, len(distances))
	for _, d := range distances {
		auth, vouch, err := newDevicePair(d, true, rng)
		if err != nil {
			return nil, err
		}
		a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
		if err != nil {
			return nil, err
		}
		var absErrs, signed []float64
		absent := 0
		for trial := 0; trial < trials; trial++ {
			var extras []core.ExtraPlay
			if extrasFor != nil {
				extras, err = extrasFor(trial)
				if err != nil {
					return nil, err
				}
			}
			sr, err := a.Measure(extras...)
			if err != nil {
				return nil, err
			}
			if !sr.Found {
				absent++
				continue
			}
			errM := sr.DistanceM - d
			signed = append(signed, errM*100)
			if errM < 0 {
				errM = -errM
			}
			absErrs = append(absErrs, errM*100)
		}
		pt := DistancePoint{DistanceM: d, Absent: absent, Trials: trials}
		if len(absErrs) > 0 {
			pt.MeanAbsErrCM = stats.Mean(absErrs)
			pt.StdAbsErrCM = stats.Std(absErrs)
			pt.MeanSignedErrCM = stats.Mean(signed)
			pt.SigmaCM = stats.Std(signed)
		}
		points = append(points, pt)
	}
	return points, nil
}

// sigmaOf averages the per-point signed-error stds (meters).
func sigmaOf(points []DistancePoint) float64 {
	var sum float64
	var n int
	for _, p := range points {
		if p.Trials-p.Absent >= 2 {
			sum += p.SigmaCM / 100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunFig1 reproduces Fig. 1: distance-estimation absolute errors at
// {0.5, 1.0, 1.5, 2.0} m in the office, home, street, and restaurant
// environments, averaged over Options.Trials trials each.
func RunFig1(opts Options) ([]EnvironmentResult, error) {
	opts = opts.withDefaults()
	results := make([]EnvironmentResult, 0, 4)
	for i, env := range acoustic.AllEnvironments() {
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)*7919))
		points, err := measureSeries(envConfig(env), PaperDistances, opts.Trials, rng, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 %v: %w", env, err)
		}
		results = append(results, EnvironmentResult{
			Env:    env,
			Label:  scenarioName(env),
			Points: points,
			SigmaM: sigmaOf(points),
		})
	}
	return results, nil
}

// FprintFig1 renders Fig. 1 as one row per (environment, distance), with
// the paper's measured bands alongside for comparison.
func FprintFig1(w io.Writer, results []EnvironmentResult) {
	fmt.Fprintln(w, "Figure 1: distance estimation absolute error (cm), mean ± std over trials")
	for _, env := range results {
		fmt.Fprintf(w, "  %s:\n", env.Label)
		for _, p := range env.Points {
			fmt.Fprintf(w, "    d=%.1fm  abs err %6.2f ± %5.2f cm   (signed mean %+.2f, σ_d %.2f cm, ⊥ %d/%d)\n",
				p.DistanceM, p.MeanAbsErrCM, p.StdAbsErrCM, p.MeanSignedErrCM, p.SigmaCM, p.Absent, p.Trials)
		}
		fmt.Fprintf(w, "    σ_d(avg) = %.1f cm\n", env.SigmaM*100)
	}
	fmt.Fprintln(w, "  Paper bands: office ≈5–7 cm, home/restaurant in between, street ≈10–15 cm")
}
