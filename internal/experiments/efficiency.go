package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/energy"
	"github.com/acoustic-auth/piano/internal/stats"
)

// EfficiencyResult reproduces §VI-D: per-authentication latency and the
// battery cost of 100 authentications.
type EfficiencyResult struct {
	Trials int
	// MeanAuthSec / MaxAuthSec are the modeled wall-clock latency.
	MeanAuthSec float64
	MaxAuthSec  float64
	// MeanEnergyJ is energy per authentication.
	MeanEnergyJ float64
	// BatteryPercentPer100 is the headline number (paper: ≈0.6%).
	BatteryPercentPer100 float64
	// Breakdown is the per-component energy split.
	Breakdown string
}

// RunEfficiency measures timing and energy over Options.Trials
// authentications at 1 m in the office.
func RunEfficiency(opts Options) (*EfficiencyResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed + 53))
	cfg := envConfig(acoustic.EnvOffice)

	auth, vouch, err := newDevicePair(1.0, true, rng)
	if err != nil {
		return nil, err
	}
	a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		return nil, err
	}
	ledger, err := energy.NewLedger(energy.DefaultPowerModel())
	if err != nil {
		return nil, err
	}
	battery, err := energy.NewBattery(energy.GalaxyS4CapacityJoules)
	if err != nil {
		return nil, err
	}
	a.TrackEnergy(ledger, battery)

	var times []float64
	for t := 0; t < opts.Trials; t++ {
		sr, err := a.Measure()
		if err != nil {
			return nil, err
		}
		times = append(times, sr.AuthTimeSec)
	}
	if len(times) == 0 {
		return nil, errNoTrials
	}

	maxT := times[0]
	for _, v := range times {
		if v > maxT {
			maxT = v
		}
	}
	meanJ := ledger.TotalJoules() / float64(len(times))
	return &EfficiencyResult{
		Trials:               len(times),
		MeanAuthSec:          stats.Mean(times),
		MaxAuthSec:           maxT,
		MeanEnergyJ:          meanJ,
		BatteryPercentPer100: meanJ * 100 / energy.GalaxyS4CapacityJoules * 100,
		Breakdown:            ledger.Breakdown(),
	}, nil
}

// FprintEfficiency renders the §VI-D comparison.
func FprintEfficiency(w io.Writer, res *EfficiencyResult) {
	fmt.Fprintln(w, "Efficiency (§VI-D):")
	fmt.Fprintf(w, "  authentication latency: mean %.2f s, max %.2f s  (paper: within ≈3 s)\n",
		res.MeanAuthSec, res.MaxAuthSec)
	fmt.Fprintf(w, "  energy per authentication: %.2f J (%s)\n", res.MeanEnergyJ, res.Breakdown)
	fmt.Fprintf(w, "  battery per 100 authentications: %.2f%%  (paper: ≈0.6%%)\n", res.BatteryPercentPer100)
}
