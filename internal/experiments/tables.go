package experiments

import (
	"fmt"
	"io"

	"github.com/acoustic-auth/piano/internal/stats"
)

// TableRow is one scenario row of Tables I and II.
type TableRow struct {
	Scenario string
	SigmaM   float64
	FRR      []float64 // one per PaperThresholds entry
	FAR      []float64
}

// TablesResult bundles both tables plus the σ_d estimates they derive from.
type TablesResult struct {
	Rows       []TableRow
	Thresholds []float64
}

// MaxDetectableM is d_s, the maximum distance at which reference signals
// remain detectable ("with our current parameter setting, we have
// d_s ≈ 2.5 meters").
const MaxDetectableM = 2.5

// BTRangeM is the Bluetooth range bound used by the decision model.
const BTRangeM = 10.0

// BuildTables converts measured σ_d values into the §VI-C Gaussian
// decision model and evaluates FRR/FAR at the paper's thresholds.
func BuildTables(envs []EnvironmentResult) (*TablesResult, error) {
	out := &TablesResult{Thresholds: PaperThresholds}
	for _, env := range envs {
		if env.SigmaM <= 0 {
			return nil, fmt.Errorf("experiments: scenario %q has no σ estimate", env.Label)
		}
		m := stats.DecisionModel{SigmaM: env.SigmaM, MaxDetectableM: MaxDetectableM, BTRangeM: BTRangeM}
		row := TableRow{Scenario: env.Label, SigmaM: env.SigmaM}
		for _, tau := range PaperThresholds {
			frr, err := m.FRR(tau)
			if err != nil {
				return nil, err
			}
			far, err := m.FAR(tau)
			if err != nil {
				return nil, err
			}
			row.FRR = append(row.FRR, frr)
			row.FAR = append(row.FAR, far)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RunTables reproduces Tables I and II end to end: measure σ_d in the four
// environments (Fig. 1 workload) and the multi-user scenario (Fig. 2a
// workload), then evaluate the decision model.
func RunTables(opts Options) (*TablesResult, error) {
	envs, err := RunFig1(opts)
	if err != nil {
		return nil, err
	}
	multi, err := RunFig2a(opts)
	if err != nil {
		return nil, err
	}
	return BuildTables(append(envs, multi))
}

// paperFRR/paperFAR are the published Table I/II values for side-by-side
// printing (percent).
var (
	paperFRR = map[string][]float64{
		"Office":         {5.6, 2.8, 1.9, 1.4},
		"Home":           {9.5, 4.8, 3.2, 2.4},
		"Street":         {12.6, 6.3, 4.2, 3.1},
		"Restaurant":     {8.5, 4.2, 2.8, 2.1},
		"Multiple users": {7.9, 4.0, 2.6, 2.0},
	}
	paperFAR = map[string][]float64{
		"Office":         {0.3, 0.3, 0.3, 0.4},
		"Home":           {0.5, 0.5, 0.6, 0.6},
		"Street":         {0.7, 0.7, 0.7, 0.8},
		"Restaurant":     {0.4, 0.5, 0.4, 0.4},
		"Multiple users": {0.4, 0.4, 0.5, 0.5},
	}
)

// FprintTables renders both tables with the paper's values alongside.
func FprintTables(w io.Writer, res *TablesResult) {
	printOne := func(title string, pick func(TableRow) []float64, paper map[string][]float64) {
		fmt.Fprintf(w, "%s (percent; measured | paper)\n", title)
		fmt.Fprintf(w, "  %-16s", "scenario")
		for _, tau := range res.Thresholds {
			fmt.Fprintf(w, "  τ=%.1fm          ", tau)
		}
		fmt.Fprintln(w)
		for _, row := range res.Rows {
			fmt.Fprintf(w, "  %-16s", row.Scenario)
			pub := paper[row.Scenario]
			for i := range res.Thresholds {
				p := "   - "
				if i < len(pub) {
					p = fmt.Sprintf("%5.1f", pub[i])
				}
				fmt.Fprintf(w, "  %5.2f |%s   ", pick(row)[i]*100, p)
			}
			fmt.Fprintf(w, "  (σ=%.1fcm)\n", row.SigmaM*100)
		}
	}
	printOne("Table I: FRRs", func(r TableRow) []float64 { return r.FRR }, paperFRR)
	printOne("Table II: FARs", func(r TableRow) []float64 { return r.FAR }, paperFAR)
	fmt.Fprintln(w, "  FAR is exactly 0 beyond the 10 m Bluetooth range (pairing check).")
}
