package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
)

// Small trial counts keep the suite fast; the cmd tool and benches run the
// paper's full 10/100-trial campaigns.
var fastOpts = Options{Trials: 3, Seed: 5}

func TestRunFig1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 workload in -short mode")
	}
	res, err := RunFig1(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d environments", len(res))
	}
	byEnv := map[acoustic.Environment]EnvironmentResult{}
	for _, r := range res {
		byEnv[r.Env] = r
		if len(r.Points) != len(PaperDistances) {
			t.Fatalf("%v: %d points", r.Env, len(r.Points))
		}
		for _, p := range r.Points {
			if p.Absent == p.Trials {
				t.Errorf("%v d=%.1f: everything ⊥", r.Env, p.DistanceM)
			}
			// Errors stay within tens of centimeters at ≤2 m.
			if p.MeanAbsErrCM > 60 {
				t.Errorf("%v d=%.1f: error %.1f cm too large", r.Env, p.DistanceM, p.MeanAbsErrCM)
			}
		}
	}
	// Paper ordering: the street is the noisiest, the office the calmest.
	office := byEnv[acoustic.EnvOffice].SigmaM
	street := byEnv[acoustic.EnvStreet].SigmaM
	if street <= office {
		t.Errorf("street σ %.3f should exceed office σ %.3f", street, office)
	}

	var buf bytes.Buffer
	FprintFig1(&buf, res)
	if !strings.Contains(buf.String(), "Office") || !strings.Contains(buf.String(), "σ_d") {
		t.Error("Fig1 rendering incomplete")
	}
}

func TestRunFig2aTerminatesAndRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2a workload in -short mode")
	}
	res, err := RunFig2a(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "Multiple users" || len(res.Points) != 4 {
		t.Fatalf("result %+v", res)
	}
	var buf bytes.Buffer
	FprintFig2a(&buf, res)
	if !strings.Contains(buf.String(), "Multiple users") && !strings.Contains(buf.String(), "shared office") {
		t.Error("Fig2a rendering incomplete")
	}
}

func TestRunFig2bOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2b workload in -short mode")
	}
	res, err := RunFig2b(Options{Trials: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	mean := func(s MethodSeries) float64 {
		var sum float64
		var n int
		for _, p := range s.Points {
			if p.Trials-p.Absent > 0 {
				sum += p.MeanAbsErrCM
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	action, cc, echo := mean(res.Series[0]), mean(res.Series[1]), mean(res.Series[2])
	if !(action < cc && action < echo) {
		t.Fatalf("ordering violated: ACTION %.1f, CC %.1f, Echo %.1f cm", action, cc, echo)
	}
	if cc < 5*action {
		t.Errorf("ACTION-CC %.1f cm not ≫ ACTION %.1f cm", cc, action)
	}
	var buf bytes.Buffer
	FprintFig2b(&buf, res)
	if !strings.Contains(buf.String(), "Echo-Secure") {
		t.Error("Fig2b rendering incomplete")
	}
}

func TestBuildTablesFromSigma(t *testing.T) {
	envs := []EnvironmentResult{
		{Label: "Office", SigmaM: 0.070},
		{Label: "Street", SigmaM: 0.158},
	}
	res, err := BuildTables(envs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	office := res.Rows[0]
	// Paper Table I office row: 5.6, 2.8, 1.9, 1.4 percent.
	paper := []float64{0.056, 0.028, 0.019, 0.014}
	for i, want := range paper {
		if got := office.FRR[i]; got < want-0.006 || got > want+0.006 {
			t.Errorf("office FRR[τ=%.1f] = %.4f, paper %.3f", res.Thresholds[i], got, want)
		}
	}
	// FARs all under 1%.
	for i, far := range office.FAR {
		if far > 0.01 {
			t.Errorf("office FAR[%d] = %.4f", i, far)
		}
	}
	// Street FRR must exceed office FRR at every τ.
	for i := range paper {
		if res.Rows[1].FRR[i] <= office.FRR[i] {
			t.Errorf("street FRR ≤ office FRR at τ=%.1f", res.Thresholds[i])
		}
	}

	if _, err := BuildTables([]EnvironmentResult{{Label: "x", SigmaM: 0}}); err == nil {
		t.Error("zero sigma accepted")
	}

	var buf bytes.Buffer
	FprintTables(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Table II") {
		t.Error("tables rendering incomplete")
	}
}

func TestRunWallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall workload in -short mode")
	}
	res, err := RunWall(Options{Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Near same-room points detect; all through-wall points deny.
	if res.SameRoom[0].DetectRate == 0 {
		t.Error("0.5 m same-room never detected")
	}
	last := res.SameRoom[len(res.SameRoom)-1]
	if last.DetectRate > 0.5 {
		t.Errorf("4 m same-room detect rate %.2f", last.DetectRate)
	}
	for _, p := range res.ThroughWall {
		if p.DetectRate > 0 {
			t.Errorf("through-wall detection at %.1f m", p.DistanceM)
		}
	}
	var buf bytes.Buffer
	FprintWall(&buf, res)
	if !strings.Contains(buf.String(), "through wall") {
		t.Error("wall rendering incomplete")
	}
}

func TestRunSecurityNoFalseAccepts(t *testing.T) {
	if testing.Short() {
		t.Skip("security workload in -short mode")
	}
	res, err := RunSecurity(Options{Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.Accepted != 0 {
			t.Errorf("%s: %d/%d accepted", o.Attack, o.Accepted, o.Trials)
		}
	}
	if res.AnalyticReplayProb <= 0 || res.AnalyticReplayProb > 1e-8 {
		t.Errorf("analytic probability %g", res.AnalyticReplayProb)
	}
	var buf bytes.Buffer
	FprintSecurity(&buf, res)
	if !strings.Contains(buf.String(), "spoofing") {
		t.Error("security rendering incomplete")
	}
}

func TestRunEfficiencyBands(t *testing.T) {
	if testing.Short() {
		t.Skip("efficiency workload in -short mode")
	}
	res, err := RunEfficiency(Options{Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAuthSec <= 0.5 || res.MeanAuthSec > 3.5 {
		t.Errorf("mean auth time %.2f s outside the paper band", res.MeanAuthSec)
	}
	if res.BatteryPercentPer100 <= 0.1 || res.BatteryPercentPer100 > 2 {
		t.Errorf("battery per 100 auths %.2f%% outside the paper band", res.BatteryPercentPer100)
	}
	var buf bytes.Buffer
	FprintEfficiency(&buf, res)
	if !strings.Contains(buf.String(), "battery") {
		t.Error("efficiency rendering incomplete")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 10 || o.Seed != 1 {
		t.Fatalf("defaults %+v", o)
	}
	o = Options{Trials: 7, Seed: 3}.withDefaults()
	if o.Trials != 7 || o.Seed != 3 {
		t.Fatalf("explicit options overridden: %+v", o)
	}
}

func TestScenarioNames(t *testing.T) {
	if scenarioName(acoustic.EnvOffice) != "Office" || scenarioName(acoustic.EnvStreet) != "Street" {
		t.Fatal("scenario names")
	}
	if scenarioName(acoustic.EnvQuiet) != "quiet" {
		t.Fatalf("fallback name %q", scenarioName(acoustic.EnvQuiet))
	}
}
