package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/attack"
	"github.com/acoustic-auth/piano/internal/baseline"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/stats"
)

// RunFig2a reproduces Fig. 2(a): three PIANO users authenticating at close
// times in a shared office. Two interferer devices each play two
// randomized reference signals at random moments during the measured
// pair's session. Significantly overlapped trials fail the Algorithm 2
// sanity check and come back ⊥, counted in DistancePoint.Absent (the paper
// observed 3 such trials out of 40).
func RunFig2a(opts Options) (EnvironmentResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed + 104729))
	cfg := envConfig(acoustic.EnvOffice)

	// The other users' devices sit a couple of meters away in the same
	// office.
	mkInterferer := func(name string, pos [2]float64) (*device.Device, error) {
		return device.New(device.Config{
			Name:       name,
			Position:   pos,
			Room:       0,
			SampleRate: 44100,
			ProcDelay:  device.DefaultProcessingDelay(),
		})
	}
	i1, err := mkInterferer("user2", [2]float64{1.8, 1.6})
	if err != nil {
		return EnvironmentResult{}, err
	}
	i2, err := mkInterferer("user3", [2]float64{-1.4, 2.1})
	if err != nil {
		return EnvironmentResult{}, err
	}

	// "Launch the system on their devices at close times": the other two
	// users' four reference-signal plays land anywhere in a ±3 s launch
	// window around the measured pair's session, so overlaps happen but
	// are not the common case (the paper saw 3 significant overlaps in 40
	// trials).
	const launchWindowSec = 6.0
	extras := func(int) ([]core.ExtraPlay, error) {
		plays, err := attack.Interference(cfg.Signal, []*device.Device{i1, i2}, rng)
		if err != nil {
			return nil, err
		}
		for i := range plays {
			plays[i].Random = false
			plays[i].AtSec = rng.Float64() * launchWindowSec
		}
		return plays, nil
	}
	points, err := measureSeries(cfg, PaperDistances, opts.Trials, rng, extras)
	if err != nil {
		return EnvironmentResult{}, fmt.Errorf("experiments: fig2a: %w", err)
	}
	return EnvironmentResult{
		Env:    acoustic.EnvOffice,
		Label:  "Multiple users",
		Points: points,
		SigmaM: sigmaOf(points),
	}, nil
}

// FprintFig2a renders the multi-user panel.
func FprintFig2a(w io.Writer, res EnvironmentResult) {
	fmt.Fprintln(w, "Figure 2(a): three users authenticating simultaneously in a shared office")
	totalAbsent, totalTrials := 0, 0
	for _, p := range res.Points {
		fmt.Fprintf(w, "  d=%.1fm  abs err %6.2f ± %5.2f cm   (⊥ %d/%d)\n",
			p.DistanceM, p.MeanAbsErrCM, p.StdAbsErrCM, p.Absent, p.Trials)
		totalAbsent += p.Absent
		totalTrials += p.Trials
	}
	fmt.Fprintf(w, "  σ_d(avg) = %.1f cm; overlap rejections %d/%d (paper: 3/40)\n",
		res.SigmaM*100, totalAbsent, totalTrials)
	fmt.Fprintln(w, "  Paper: slightly larger errors than the single-user office panel")
}

// MethodSeries is one curve of Fig. 2(b).
type MethodSeries struct {
	Method string
	Points []DistancePoint
}

// Fig2bResult holds the three compared protocols.
type Fig2bResult struct {
	Series []MethodSeries
}

// RunFig2b reproduces Fig. 2(b): ACTION vs ACTION-CC (cross-correlation
// detection) vs Echo-Secure (one-way, calibrated processing delay), all in
// the office environment.
func RunFig2b(opts Options) (*Fig2bResult, error) {
	opts = opts.withDefaults()
	out := &Fig2bResult{}

	// ACTION.
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	actionPts, err := measureSeries(envConfig(acoustic.EnvOffice), PaperDistances, opts.Trials, rng, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2b action: %w", err)
	}
	out.Series = append(out.Series, MethodSeries{Method: "ACTION", Points: actionPts})

	// ACTION-CC: same protocol, cross-correlation detector.
	rng = rand.New(rand.NewSource(opts.Seed + 13))
	ccCfg := envConfig(acoustic.EnvOffice)
	ccCfg.Mode = core.DetectCrossCorrelation
	ccPts, err := measureSeries(ccCfg, PaperDistances, opts.Trials, rng, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2b action-cc: %w", err)
	}
	out.Series = append(out.Series, MethodSeries{Method: "ACTION-CC", Points: ccPts})

	// Echo-Secure.
	rng = rand.New(rand.NewSource(opts.Seed + 23))
	echoPts := make([]DistancePoint, 0, len(PaperDistances))
	for _, d := range PaperDistances {
		auth, vouch, err := newDevicePair(d, true, rng)
		if err != nil {
			return nil, err
		}
		echo, err := baseline.NewEchoSecure(envConfig(acoustic.EnvOffice), auth, vouch, rng)
		if err != nil {
			return nil, err
		}
		if err := echo.Calibrate(5); err != nil {
			return nil, fmt.Errorf("experiments: fig2b echo calibrate: %w", err)
		}
		var absErrs, signed []float64
		absent := 0
		for trial := 0; trial < opts.Trials; trial++ {
			r, err := echo.Measure()
			if err != nil {
				return nil, err
			}
			if !r.Found {
				absent++
				continue
			}
			e := (r.DistanceM - d) * 100
			signed = append(signed, e)
			if e < 0 {
				e = -e
			}
			absErrs = append(absErrs, e)
		}
		pt := DistancePoint{DistanceM: d, Absent: absent, Trials: opts.Trials}
		if len(absErrs) > 0 {
			pt.MeanAbsErrCM = stats.Mean(absErrs)
			pt.StdAbsErrCM = stats.Std(absErrs)
			pt.MeanSignedErrCM = stats.Mean(signed)
			pt.SigmaCM = stats.Std(signed)
		}
		echoPts = append(echoPts, pt)
	}
	out.Series = append(out.Series, MethodSeries{Method: "Echo-Secure", Points: echoPts})
	return out, nil
}

// FprintFig2b renders the protocol comparison.
func FprintFig2b(w io.Writer, res *Fig2bResult) {
	fmt.Fprintln(w, "Figure 2(b): secure acoustic ranging protocols, office, abs error (cm)")
	for _, s := range res.Series {
		fmt.Fprintf(w, "  %-12s:", s.Method)
		for _, p := range s.Points {
			fmt.Fprintf(w, "  d=%.1fm %8.1f±%-8.1f", p.DistanceM, p.MeanAbsErrCM, p.StdAbsErrCM)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  Paper shape: ACTION is orders of magnitude more accurate than both baselines")
}
