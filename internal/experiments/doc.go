// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): the four-environment accuracy sweep (Fig. 1), the
// multi-user interference and protocol-comparison curves (Fig. 2), the FRR
// and FAR tables (Tables I and II), the spoofing-success analysis, the wall
// experiment, the efficiency/latency breakdown, and the parameter
// ablations.
//
// Each runner returns structured results; Fprint helpers render them in the
// paper's units so the output can be compared row by row against the
// published numbers. Runners seed every trial independently and
// deterministically, so a full experiment reproduces bit-identically while
// still averaging over many channel realizations; the heavier sweeps
// parallelize across trials without changing results (per-trial RNG
// streams, in-order aggregation).
package experiments
