package stats

import (
	"errors"
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Std returns the sample standard deviation of x (0 for fewer than two
// values).
func Std(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var sum float64
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(x)-1))
}

// MeanAbs returns the mean of |x_i|.
func MeanAbs(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += math.Abs(v)
	}
	return sum / float64(len(x))
}

// Q is the Gaussian tail function Q(x) = P(Z > x) for Z ~ N(0,1).
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// DecisionModel is the §VI-C evaluation model: estimated distance for a
// true distance d is N(d, σ²); the signal is undetectable past
// MaxDetectableM (d_s ≈ 2.5 m); Bluetooth pairing bounds the attack
// surface at BTRangeM (FAR is exactly 0 beyond it).
type DecisionModel struct {
	// SigmaM is the distance-estimation standard deviation σ_d in meters
	// (estimated from the Fig. 1 measurements).
	SigmaM float64
	// MaxDetectableM is d_s: beyond it the reference signal is absent
	// and PIANO rejects outright.
	MaxDetectableM float64
	// BTRangeM is the Bluetooth communication range.
	BTRangeM float64
}

// Validate checks model consistency.
func (m DecisionModel) Validate() error {
	switch {
	case m.SigmaM <= 0:
		return errors.New("stats: sigma must be positive")
	case m.MaxDetectableM <= 0:
		return errors.New("stats: max detectable distance must be positive")
	case m.BTRangeM < m.MaxDetectableM:
		return fmt.Errorf("stats: bluetooth range %g below detectable range %g", m.BTRangeM, m.MaxDetectableM)
	}
	return nil
}

// integrationSteps is the grid resolution for averaging rates over
// distance, matching the paper's "averaging the FRRs at each legitimate
// distance" formulation.
const integrationSteps = 4000

// FRR computes the false rejection rate for threshold tau: the average
// over legitimate distances d ∈ (0, τ] of P(estimate > τ). A legitimate
// user past d_s is also rejected (signal absent), which the model counts
// as rejection for d ∈ (d_s, τ] — with the paper's parameters τ < d_s so
// that branch is empty.
func (m DecisionModel) FRR(tau float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if tau <= 0 {
		return 0, errors.New("stats: tau must be positive")
	}
	var sum float64
	for i := 0; i < integrationSteps; i++ {
		d := (float64(i) + 0.5) / integrationSteps * tau
		if d >= m.MaxDetectableM {
			sum += 1 // absent ⇒ always rejected
			continue
		}
		sum += Q((tau - d) / m.SigmaM)
	}
	return sum / integrationSteps, nil
}

// FAR computes the false acceptance rate for threshold tau: the average
// over illegitimate distances d ∈ (τ, BTRangeM] of P(estimate ≤ τ), with
// probability 0 for d ≥ d_s (signal absent) — and 0 beyond Bluetooth range
// by construction (those distances never reach ACTION).
func (m DecisionModel) FAR(tau float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if tau <= 0 || tau >= m.BTRangeM {
		return 0, fmt.Errorf("stats: tau %g out of (0, bt range)", tau)
	}
	span := m.BTRangeM - tau
	var sum float64
	for i := 0; i < integrationSteps; i++ {
		d := tau + (float64(i)+0.5)/integrationSteps*span
		if d >= m.MaxDetectableM {
			continue // absent ⇒ never falsely accepted
		}
		sum += Q((d - tau) / m.SigmaM)
	}
	return sum / integrationSteps, nil
}

// ReplaySuccessProbability is the §V analysis: guessing one reference
// signal succeeds with probability 1/(2^N − 2) ≈ 1/2^N (the attacker must
// hit the exact frequency subset), and a replay needs both signals, giving
// ≈ 1/2^(N+1).
func ReplaySuccessProbability(numCandidates int) (float64, error) {
	if numCandidates < 2 {
		return 0, errors.New("stats: need at least 2 candidate frequencies")
	}
	return 1 / math.Exp2(float64(numCandidates)+1), nil
}
