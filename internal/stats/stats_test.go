package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || MeanAbs(nil) != 0 {
		t.Fatal("empty-input conventions")
	}
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Fatalf("mean %g", got)
	}
	if got := Std(x); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("std %g", got)
	}
	if got := MeanAbs([]float64{-1, 1, -3}); math.Abs(got-5.0/3) > 1e-12 {
		t.Fatalf("meanabs %g", got)
	}
	if Std([]float64{5}) != 0 {
		t.Fatal("single-element std")
	}
}

func TestQFunction(t *testing.T) {
	if got := Q(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Q(0) = %g", got)
	}
	if got := Q(1.96); math.Abs(got-0.025) > 0.001 {
		t.Fatalf("Q(1.96) = %g", got)
	}
	if got := Q(-1.96); math.Abs(got-0.975) > 0.001 {
		t.Fatalf("Q(-1.96) = %g", got)
	}
	// Monotone decreasing property.
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 5), math.Mod(b, 5)
		if a > b {
			a, b = b, a
		}
		return Q(a) >= Q(b)-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func paperModel(sigmaM float64) DecisionModel {
	return DecisionModel{SigmaM: sigmaM, MaxDetectableM: 2.5, BTRangeM: 10}
}

func TestModelValidate(t *testing.T) {
	if err := paperModel(0.07).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (DecisionModel{SigmaM: 0, MaxDetectableM: 2.5, BTRangeM: 10}).Validate(); err == nil {
		t.Error("zero sigma accepted")
	}
	if err := (DecisionModel{SigmaM: 0.1, MaxDetectableM: 0, BTRangeM: 10}).Validate(); err == nil {
		t.Error("zero ds accepted")
	}
	if err := (DecisionModel{SigmaM: 0.1, MaxDetectableM: 2.5, BTRangeM: 1}).Validate(); err == nil {
		t.Error("bt < ds accepted")
	}
}

// TestFRRMatchesPaperOffice checks that σ ≈ 7 cm reproduces the paper's
// office FRR row (5.6%, 2.8%, 1.9%, 1.4%).
func TestFRRMatchesPaperOffice(t *testing.T) {
	m := paperModel(0.070)
	want := map[float64]float64{0.5: 0.056, 1.0: 0.028, 1.5: 0.019, 2.0: 0.014}
	for tau, w := range want {
		got, err := m.FRR(tau)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > 0.004 {
			t.Errorf("FRR(τ=%g) = %.4f, paper %.3f", tau, got, w)
		}
	}
}

// TestFARMatchesPaperOffice checks σ ≈ 7 cm against Table II's office row
// (0.3%, 0.3%, 0.3%, 0.4%).
func TestFARMatchesPaperOffice(t *testing.T) {
	m := paperModel(0.070)
	want := map[float64]float64{0.5: 0.003, 1.0: 0.003, 1.5: 0.003, 2.0: 0.004}
	for tau, w := range want {
		got, err := m.FAR(tau)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > 0.0015 {
			t.Errorf("FAR(τ=%g) = %.4f, paper %.3f", tau, got, w)
		}
	}
}

// TestFRRHalvesWithDoubledThreshold reproduces the paper's observation
// that FRRs decrease by half when τ goes from 0.5 m to 1.0 m.
func TestFRRHalvesWithDoubledThreshold(t *testing.T) {
	for _, sigma := range []float64{0.07, 0.12, 0.16} {
		m := paperModel(sigma)
		f05, err := m.FRR(0.5)
		if err != nil {
			t.Fatal(err)
		}
		f10, err := m.FRR(1.0)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := f05 / f10; math.Abs(ratio-2) > 0.1 {
			t.Errorf("σ=%g: FRR ratio %g, want ≈2", sigma, ratio)
		}
	}
}

func TestFARSlightlyIncreasesWithThreshold(t *testing.T) {
	m := paperModel(0.07)
	f05, err := m.FAR(0.5)
	if err != nil {
		t.Fatal(err)
	}
	f20, err := m.FAR(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if f20 <= f05 {
		t.Errorf("FAR(2.0)=%g should exceed FAR(0.5)=%g", f20, f05)
	}
	if f20 > 2*f05 {
		t.Errorf("FAR increase too steep: %g vs %g", f20, f05)
	}
}

func TestRateArgumentValidation(t *testing.T) {
	m := paperModel(0.07)
	if _, err := m.FRR(0); err == nil {
		t.Error("FRR tau=0 accepted")
	}
	if _, err := m.FAR(0); err == nil {
		t.Error("FAR tau=0 accepted")
	}
	if _, err := m.FAR(10); err == nil {
		t.Error("FAR tau=btrange accepted")
	}
	bad := DecisionModel{}
	if _, err := bad.FRR(1); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := bad.FAR(1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestReplaySuccessProbability(t *testing.T) {
	p, err := ReplaySuccessProbability(30)
	if err != nil {
		t.Fatal(err)
	}
	// 1/2^31 ≈ 4.66e-10 — "negligible" per the paper.
	if math.Abs(p-1/math.Pow(2, 31)) > 1e-18 {
		t.Fatalf("p = %g", p)
	}
	if _, err := ReplaySuccessProbability(1); err == nil {
		t.Error("N=1 accepted")
	}
	// More candidates ⇒ strictly harder to guess.
	p10, err := ReplaySuccessProbability(10)
	if err != nil {
		t.Fatal(err)
	}
	if p10 <= p {
		t.Error("probability should decrease with N")
	}
}
