// Package stats provides the statistical machinery of the paper's
// evaluation: error-bar aggregation for the distance experiments (Figs. 1
// and 2) and the Gaussian decision model of §VI-C used to compute the FRR
// and FAR tables (Tables I and II), plus the analytic spoofing-success
// probability of §V.
//
// Aggregations are order-deterministic (summaries of the same sample set
// are bit-identical regardless of how trials were parallelized upstream),
// and the decision model is closed-form, so table regeneration is exact
// rather than Monte Carlo.
package stats
