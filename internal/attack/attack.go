package attack

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// NewAttackerDevice builds a speaker-equipped attacker device at the given
// position (same room as the victim unless room differs).
func NewAttackerDevice(name string, pos [2]float64, room int) (*device.Device, error) {
	d, err := device.New(device.Config{
		Name:       name,
		Position:   pos,
		Room:       room,
		SampleRate: 44100,
		ProcDelay:  device.ProcessingDelay{MeanSec: 0.05, JitterSec: 0.02},
	})
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return d, nil
}

// GuessingReplay builds the §V guessing-based replay attack: the attacker
// knows the candidate set and the construction algorithm, synthesizes two
// guessed reference signals, and plays them near the authenticating device
// timed like the legitimate schedule.
func GuessingReplay(p sigref.Params, attacker *device.Device, rng *rand.Rand) ([]core.ExtraPlay, error) {
	if attacker == nil {
		return nil, errors.New("attack: nil attacker device")
	}
	if rng == nil {
		return nil, errors.New("attack: nil rng")
	}
	guessA, err := sigref.New(p, rng)
	if err != nil {
		return nil, fmt.Errorf("attack: guess S_A: %w", err)
	}
	guessV, err := sigref.New(p, rng)
	if err != nil {
		return nil, fmt.Errorf("attack: guess S_V: %w", err)
	}
	// The attacker mimics the protocol cadence: two plays spaced by
	// roughly the legitimate gap, at plausible absolute times.
	return []core.ExtraPlay{
		{Device: attacker, Samples: guessA.Samples(), Random: true},
		{Device: attacker, Samples: guessV.Samples(), Random: true},
	}, nil
}

// AllFrequency builds the §V all-frequency-based spoofing attack: a long
// signal containing every candidate frequency at equal power, played for
// the entire authentication window. The α/β sanity checks of Algorithm 2
// are specifically designed to defeat it.
func AllFrequency(p sigref.Params, attacker *device.Device, durSec float64, powerScale float64, rng *rand.Rand) ([]core.ExtraPlay, error) {
	if attacker == nil {
		return nil, errors.New("attack: nil attacker device")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if durSec <= 0 {
		return nil, errors.New("attack: duration must be positive")
	}
	if powerScale <= 0 {
		powerScale = 1
	}
	n := int(durSec * p.SampleRate)
	samples := make([]float64, n)
	amp := powerScale * p.FullScale / float64(p.NumCandidates)
	for _, f := range p.Candidates() {
		w := 2 * math.Pi * f / p.SampleRate
		phase := 0.0
		if rng != nil {
			phase = rng.Float64() * 2 * math.Pi
		}
		for t := range samples {
			samples[t] += amp * math.Sin(w*float64(t)+phase)
		}
	}
	return []core.ExtraPlay{
		{Device: attacker, Samples: samples, AtSec: 0},
	}, nil
}

// TimedAllFrequency builds the strongest §V all-frequency variant: each
// attacker speaker plays one reference-signal-length burst containing every
// candidate frequency, all synchronized at the given global time — crafted
// to be accepted as both reference signals by a detector without the β
// sanity check.
func TimedAllFrequency(p sigref.Params, attackers []*device.Device, atSec float64, rng *rand.Rand) ([]core.ExtraPlay, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(attackers) == 0 {
		return nil, errors.New("attack: no attacker devices")
	}
	burst := make([]float64, p.Length)
	amp := p.FullScale / float64(p.NumCandidates)
	for _, f := range p.Candidates() {
		w := 2 * math.Pi * f / p.SampleRate
		phase := 0.0
		if rng != nil {
			phase = rng.Float64() * 2 * math.Pi
		}
		for t := range burst {
			burst[t] += amp * math.Sin(w*float64(t)+phase)
		}
	}
	plays := make([]core.ExtraPlay, 0, len(attackers))
	for _, d := range attackers {
		if d == nil {
			return nil, errors.New("attack: nil attacker device")
		}
		// One shared immutable burst would render identically (sessions
		// only read scheduled samples), but per-attacker copies keep each
		// play independently mutable for callers that post-process
		// individual speakers' waveforms.
		cp := make([]float64, len(burst))
		copy(cp, burst)
		plays = append(plays, core.ExtraPlay{Device: d, Samples: cp, AtSec: atSec})
	}
	return plays, nil
}

// Interference builds the benign multi-user scenario of Fig. 2(a): count
// other PIANO pairs in the same space launch authentications at close
// times, each playing two randomized reference signals at random moments.
// Devices must contain one entry per interfering emitter.
func Interference(p sigref.Params, devices []*device.Device, rng *rand.Rand) ([]core.ExtraPlay, error) {
	if rng == nil {
		return nil, errors.New("attack: nil rng")
	}
	plays := make([]core.ExtraPlay, 0, 2*len(devices))
	for _, d := range devices {
		if d == nil {
			return nil, errors.New("attack: nil interferer device")
		}
		for k := 0; k < 2; k++ {
			sig, err := sigref.New(p, rng)
			if err != nil {
				return nil, fmt.Errorf("attack: interferer signal: %w", err)
			}
			plays = append(plays, core.ExtraPlay{Device: d, Samples: sig.Samples(), Random: true})
		}
	}
	return plays, nil
}
