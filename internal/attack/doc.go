// Package attack implements the paper's threat harness (§III, §V, §VI-E):
// zero-effort attacks, guessing-based replay attacks, all-frequency-based
// spoofing attacks, and the benign multi-user interference of Fig. 2(a).
// Attacks are expressed as core.ExtraPlay injections into the ACTION
// session's acoustic scene.
//
// Ownership invariant: sessions schedule ExtraPlay.Samples by reference
// (the world stopped deep-copying scheduled waveforms), so every
// constructor here returns plays backed by freshly synthesized slices that
// nothing else aliases — callers may hand them to one session and forget
// them. Callers that inject the same plays into several sessions may do so
// concurrently only because sessions never write scheduled samples; what
// they must not do is mutate a returned Samples slice while any session
// using it is in flight.
package attack
