package attack

import (
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/dsp"
	"github.com/acoustic-auth/piano/internal/sigref"
)

func TestNewAttackerDevice(t *testing.T) {
	d, err := NewAttackerDevice("mallory", [2]float64{0.4, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "mallory" || d.Room() != 0 {
		t.Fatal("attacker device misconfigured")
	}
	if _, err := NewAttackerDevice("", [2]float64{0, 0}, 0); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestGuessingReplayShape(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(1))
	atk, err := NewAttackerDevice("mallory", [2]float64{0.4, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	plays, err := GuessingReplay(p, atk, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plays) != 2 {
		t.Fatalf("%d plays, want 2 (guessed S_A and S_V)", len(plays))
	}
	for _, pl := range plays {
		if pl.Device != atk || !pl.Random {
			t.Fatal("play misconfigured")
		}
		if len(pl.Samples) != p.Length {
			t.Fatalf("guessed signal length %d", len(pl.Samples))
		}
	}
	if _, err := GuessingReplay(p, nil, rng); err == nil {
		t.Fatal("nil attacker accepted")
	}
	if _, err := GuessingReplay(p, atk, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// TestAllFrequencyCoversAllCandidates verifies the spoof signal carries
// power at every candidate frequency — the construction §V describes.
func TestAllFrequencyCoversAllCandidates(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(2))
	atk, err := NewAttackerDevice("mallory", [2]float64{0.4, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	plays, err := AllFrequency(p, atk, 0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plays) != 1 || plays[0].AtSec != 0 {
		t.Fatalf("plays %+v", plays)
	}
	window := plays[0].Samples[:p.Length]
	spec, err := dsp.PowerSpectrum(window)
	if err != nil {
		t.Fatal(err)
	}
	amp := p.FullScale / float64(p.NumCandidates)
	for i, f := range p.Candidates() {
		bin := dsp.BinIndex(f, p.SampleRate, p.Length)
		if got := dsp.BandPower(spec, bin, 5); got < 0.3*amp*amp {
			t.Errorf("candidate %d power %g too low", i, got)
		}
	}

	if _, err := AllFrequency(p, nil, 1, 1, rng); err == nil {
		t.Fatal("nil attacker accepted")
	}
	if _, err := AllFrequency(p, atk, 0, 1, rng); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestInterferencePlays(t *testing.T) {
	p := sigref.DefaultParams()
	rng := rand.New(rand.NewSource(3))
	d1, err := NewAttackerDevice("u2", [2]float64{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewAttackerDevice("u3", [2]float64{-2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	plays, err := Interference(p, []*device.Device{d1, d2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plays) != 4 {
		t.Fatalf("%d plays, want 4 (2 users × 2 signals)", len(plays))
	}
	if _, err := Interference(p, []*device.Device{nil}, rng); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := Interference(p, nil, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// TestSpoofingAttacksAllFail is the §VI-E result in miniature: with the
// user away (6 m), neither attack ever yields a grant.
func TestSpoofingAttacksAllFail(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.World.Environment = acoustic.EnvOffice
	rng := rand.New(rand.NewSource(4))

	auth, err := device.New(device.Config{
		Name: "auth", Position: [2]float64{0, 0}, SampleRate: 44100,
		ProcDelay: device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vouch, err := device.New(device.Config{
		Name: "vouch", Position: [2]float64{6, 0}, SampleRate: 44100,
		ProcDelay: device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := NewAttackerDevice("mallory", [2]float64{0.4, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}

	const trials = 5
	for i := 0; i < trials; i++ {
		replay, err := GuessingReplay(cfg.Signal, atk, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Authenticate(replay...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Granted {
			t.Fatalf("replay attack %d granted (distance %.2f)", i, res.DistanceM)
		}

		spoof, err := AllFrequency(cfg.Signal, atk, cfg.World.DurationSec, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err = a.Authenticate(spoof...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Granted {
			t.Fatalf("all-frequency attack %d granted", i)
		}
	}
}
