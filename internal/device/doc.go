// Package device models the simulated IoT endpoints of the paper's
// prototype: each Device owns a speaker, a microphone with its own sample
// clock (simclock.Clock: offset + ppm skew), a position and room in the
// scene, and the unpredictable audio-path processing delay that the paper
// identifies as the reason one-way protocols like Echo are inaccurate on
// commodity hardware.
//
// Key types: Config/New build a device; ProcessingDelay samples the
// command-to-sound latency distribution; helpers expose geometry
// (DistanceTo, SameRoom, SelfDistance) and per-session clock resets.
//
// Invariants: a Device is mutable session state (positions move, clocks
// reset between sessions), so devices are built per session or guarded by
// the session serialization of their Deployment; the clock's nominal rate
// is what protocol code sees while the true (skewed) rate drives rendering,
// which is exactly the mismatch ACTION's Eq. 3 is designed to tolerate.
package device
