package device

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/simclock"
)

// ProcessingDelay models the latency between asking the audio API to play a
// buffer and sound actually leaving the speaker. On Android this is large
// and unpredictable (the paper measured it to be the dominant error source
// for Echo-style protocols). Samples are Mean ± uniform Jitter.
type ProcessingDelay struct {
	MeanSec   float64
	JitterSec float64
}

// Sample draws one delay realization.
func (p ProcessingDelay) Sample(rng *rand.Rand) float64 {
	d := p.MeanSec + (2*rng.Float64()-1)*p.JitterSec
	if d < 0 {
		d = 0
	}
	return d
}

// DefaultProcessingDelay reflects a commodity-smartphone audio stack:
// ~150 ms mean latency with ±60 ms jitter.
func DefaultProcessingDelay() ProcessingDelay {
	return ProcessingDelay{MeanSec: 0.150, JitterSec: 0.060}
}

// Config describes one simulated device.
type Config struct {
	// Name identifies the device in traces and errors.
	Name string
	// Position is the device's 2-D location in meters.
	Position [2]float64
	// Room identifies which room the device is in; paths between
	// different rooms suffer the wall transmission loss.
	Room int
	// SampleRate is the nominal audio sampling rate (paper: 44100 Hz,
	// "the largest sampling frequency supported by the Android system").
	SampleRate float64
	// ClockOffsetSec is the global time at which this device's recording
	// starts — i.e. the origin of its private time coordinate. ACTION
	// must work for arbitrary offsets (Eq. 3 cancels them).
	ClockOffsetSec float64
	// ClockSkewPPM is the crystal error of the device's audio clock.
	ClockSkewPPM float64
	// ProcDelay is the device's audio-path latency model.
	ProcDelay ProcessingDelay
	// SelfDistanceM is the acoustic distance from the device's speaker to
	// its own microphone (a few centimeters on a phone).
	SelfDistanceM float64
}

// Device is a simulated voice-powered IoT device.
type Device struct {
	cfg   Config
	clock *simclock.Clock
}

// NewSessionDevice builds a protocol device the way every PIANO session
// entry point does: 44.1 kHz audio path (the paper's Android maximum) and
// the commodity-smartphone processing-delay model. The serial Deployment
// path and the batched service share this constructor so their sessions
// stay bit-identical by construction. An empty name falls back to
// fallback.
func NewSessionDevice(name, fallback string, x, y float64, room int, clockSkewPPM float64) (*Device, error) {
	if name == "" {
		name = fallback
	}
	return New(Config{
		Name:         name,
		Position:     [2]float64{x, y},
		Room:         room,
		SampleRate:   44100,
		ClockSkewPPM: clockSkewPPM,
		ProcDelay:    DefaultProcessingDelay(),
	})
}

// New validates cfg and builds a Device.
func New(cfg Config) (*Device, error) {
	if cfg.Name == "" {
		return nil, errors.New("device: name is required")
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("device %q: sample rate %g must be positive", cfg.Name, cfg.SampleRate)
	}
	if cfg.SelfDistanceM <= 0 {
		cfg.SelfDistanceM = 0.03
	}
	clk, err := simclock.New(cfg.ClockOffsetSec, cfg.SampleRate, cfg.ClockSkewPPM)
	if err != nil {
		return nil, fmt.Errorf("device %q: %w", cfg.Name, err)
	}
	return &Device{cfg: cfg, clock: clk}, nil
}

// Name returns the device's identifier.
func (d *Device) Name() string { return d.cfg.Name }

// Position returns the device's location in meters.
func (d *Device) Position() [2]float64 { return d.cfg.Position }

// Room returns the device's room identifier.
func (d *Device) Room() int { return d.cfg.Room }

// SampleRate returns the nominal audio sampling rate the device reports to
// protocol code (the true ADC rate differs by the clock skew).
func (d *Device) SampleRate() float64 { return d.cfg.SampleRate }

// Clock exposes the device's private time coordinate.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// ProcDelay returns the device's audio-latency model.
func (d *Device) ProcDelay() ProcessingDelay { return d.cfg.ProcDelay }

// SelfDistance returns the speaker-to-own-microphone distance in meters.
func (d *Device) SelfDistance() float64 { return d.cfg.SelfDistanceM }

// ResetClock re-anchors the device's recording origin to a new global time
// (every authentication session starts a fresh recording). The crystal skew
// is a hardware property and is preserved.
func (d *Device) ResetClock(offsetSec float64) error {
	clk, err := simclock.New(offsetSec, d.cfg.SampleRate, d.cfg.ClockSkewPPM)
	if err != nil {
		return fmt.Errorf("device %q: %w", d.cfg.Name, err)
	}
	d.clock = clk
	d.cfg.ClockOffsetSec = offsetSec
	return nil
}

// SetPosition moves the device (the user carrying it walked somewhere).
func (d *Device) SetPosition(pos [2]float64) { d.cfg.Position = pos }

// SetRoom moves the device to another room (e.g. behind a wall).
func (d *Device) SetRoom(room int) { d.cfg.Room = room }

// DistanceTo returns the Euclidean distance to another device in meters.
func (d *Device) DistanceTo(o *Device) float64 {
	dx := d.cfg.Position[0] - o.cfg.Position[0]
	dy := d.cfg.Position[1] - o.cfg.Position[1]
	return math.Hypot(dx, dy)
}

// SameRoom reports whether both devices share a room (no wall between).
func (d *Device) SameRoom(o *Device) bool { return d.cfg.Room == o.cfg.Room }
