package device

import (
	"math"
	"math/rand"
	"testing"
)

func validConfig(name string) Config {
	return Config{
		Name:       name,
		Position:   [2]float64{0, 0},
		SampleRate: 44100,
		ProcDelay:  DefaultProcessingDelay(),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SampleRate: 44100}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := New(Config{Name: "x", SampleRate: 0}); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestSelfDistanceDefault(t *testing.T) {
	d, err := New(validConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	if d.SelfDistance() != 0.03 {
		t.Errorf("default self distance %g", d.SelfDistance())
	}
	cfg := validConfig("b")
	cfg.SelfDistanceM = 0.05
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d2.SelfDistance() != 0.05 {
		t.Errorf("explicit self distance %g", d2.SelfDistance())
	}
}

func TestDistanceAndRoom(t *testing.T) {
	ca := validConfig("a")
	cb := validConfig("b")
	cb.Position = [2]float64{3, 4}
	cb.Room = 1
	a, err := New(ca)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cb)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DistanceTo(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("distance %g, want 5", got)
	}
	if got := b.DistanceTo(a); math.Abs(got-5) > 1e-12 {
		t.Errorf("distance not symmetric: %g", got)
	}
	if a.SameRoom(b) {
		t.Error("different rooms reported as same")
	}
	if !a.SameRoom(a) {
		t.Error("device not in same room as itself")
	}
}

func TestProcessingDelaySample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pd := ProcessingDelay{MeanSec: 0.1, JitterSec: 0.05}
	for i := 0; i < 1000; i++ {
		v := pd.Sample(rng)
		if v < 0.05-1e-12 || v > 0.15+1e-12 {
			t.Fatalf("sample %g outside [0.05, 0.15]", v)
		}
	}
	// Never negative even with jitter > mean.
	pd = ProcessingDelay{MeanSec: 0.01, JitterSec: 0.5}
	for i := 0; i < 1000; i++ {
		if pd.Sample(rng) < 0 {
			t.Fatal("negative delay")
		}
	}
}

func TestAccessors(t *testing.T) {
	cfg := validConfig("dev")
	cfg.Room = 7
	cfg.ClockOffsetSec = 1.5
	cfg.ClockSkewPPM = 25
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "dev" || d.Room() != 7 || d.SampleRate() != 44100 {
		t.Error("accessor mismatch")
	}
	if d.Clock().OffsetSec != 1.5 || d.Clock().SkewPPM != 25 {
		t.Error("clock not configured")
	}
	if d.ProcDelay().MeanSec != DefaultProcessingDelay().MeanSec {
		t.Error("proc delay not stored")
	}
	if d.Position() != [2]float64{0, 0} {
		t.Error("position mismatch")
	}
}
