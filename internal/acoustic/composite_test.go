package acoustic

import (
	"math/rand"
	"testing"
)

func newTestPath(t *testing.T, taps int) *Path {
	t.Helper()
	cfg := DefaultChannelConfig()
	cfg.TransducerTaps = taps
	p, err := NewPath(cfg, ProfileFor(EnvOffice), 1.0, true, 44100, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompositeKernelCachedOnPath pins the memoization contract: repeated
// calls with the same (baseArrival, tapRate) key return the same kernel
// without rebuilding; a changed key rebuilds.
func TestCompositeKernelCachedOnPath(t *testing.T) {
	p := newTestPath(t, 4)
	k1 := p.CompositeKernel(1234.25, 1)
	if k1.TapCount != len(p.Taps) {
		t.Fatalf("kernel folded %d taps, path has %d", k1.TapCount, len(p.Taps))
	}
	if k2 := p.CompositeKernel(1234.25, 1); k2 != k1 {
		t.Fatal("same key rebuilt the kernel; want the cached one")
	}
	k3 := p.CompositeKernel(1234.75, 1)
	if k3 == k1 {
		t.Fatal("changed baseArrival returned the stale cached kernel")
	}
	if k4 := p.CompositeKernel(1234.75, 1+3e-5); k4 == k3 {
		t.Fatal("changed tapRate (clock skew) returned the stale cached kernel")
	}
}

// TestCompositeKernelShiftsWithBaseArrival sanity-checks the folded
// geometry: moving the base arrival by exactly one sample shifts every
// segment by one coefficient index and leaves the coefficients unchanged.
func TestCompositeKernelShiftsWithBaseArrival(t *testing.T) {
	p := newTestPath(t, 3)
	a := p.CompositeKernel(500.3, 1)
	aSegs := make([]FIRSnapshot, 0, len(a.Segments))
	for _, s := range a.Segments {
		aSegs = append(aSegs, FIRSnapshot{Start: s.Start, Coeffs: append([]float64(nil), s.Coeffs...)})
	}
	b := p.CompositeKernel(501.3, 1)
	if len(b.Segments) != len(aSegs) {
		t.Fatalf("segment count changed: %d → %d", len(aSegs), len(b.Segments))
	}
	for i, s := range b.Segments {
		if s.Start != aSegs[i].Start+1 {
			t.Fatalf("segment %d start %d, want %d", i, s.Start, aSegs[i].Start+1)
		}
		for j, c := range s.Coeffs {
			if c != aSegs[i].Coeffs[j] {
				t.Fatalf("segment %d coeff %d changed: %g != %g", i, j, c, aSegs[i].Coeffs[j])
			}
		}
	}
}

// FIRSnapshot is a test-local copy of one kernel segment (the kernel returned
// by CompositeKernel is overwritten by the next rebuild).
type FIRSnapshot struct {
	Start  int
	Coeffs []float64
}

// TestCompositeKernelInvalidate is the cache-invalidation regression test at
// the path level: after mutating Taps, the cached kernel is stale by
// contract until InvalidateKernel is called, and the rebuild reflects the
// mutation. (World-level invalidation — geometry/config changes — is
// structural: every render draws fresh paths; see the world tests.)
func TestCompositeKernelInvalidate(t *testing.T) {
	p := newTestPath(t, 2)
	k1 := p.CompositeKernel(100, 1)

	p.Taps[0].Gain *= 2
	if k := p.CompositeKernel(100, 1); k != k1 {
		t.Fatal("documented contract: without InvalidateKernel the cached kernel is returned")
	}
	p.InvalidateKernel()
	k2 := p.CompositeKernel(100, 1)
	if k2 == k1 {
		t.Fatal("InvalidateKernel did not force a rebuild")
	}
	if k2.TapCount != len(p.Taps) {
		t.Fatalf("rebuilt kernel folded %d taps, want %d", k2.TapCount, len(p.Taps))
	}
}
