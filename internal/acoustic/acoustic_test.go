package acoustic

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/dsp"
)

func TestDefaultChannelConfigValid(t *testing.T) {
	if err := DefaultChannelConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ChannelConfig)
	}{
		{"zero ref gain", func(c *ChannelConfig) { c.RefGain = 0 }},
		{"zero max gain", func(c *ChannelConfig) { c.MaxGain = 0 }},
		{"wall above 1", func(c *ChannelConfig) { c.WallTransmission = 1.5 }},
		{"wall negative", func(c *ChannelConfig) { c.WallTransmission = -0.1 }},
		{"zero min distance", func(c *ChannelConfig) { c.MinDistance = 0 }},
		{"negative taps", func(c *ChannelConfig) { c.TransducerTaps = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultChannelConfig()
			c.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
}

func TestGainMonotoneAndClamped(t *testing.T) {
	cfg := DefaultChannelConfig()
	if g := cfg.Gain(0.001); g != cfg.MaxGain {
		t.Errorf("near-field gain %g, want clamp %g", g, cfg.MaxGain)
	}
	prev := math.Inf(1)
	for d := 0.5; d <= 4; d += 0.5 {
		g := cfg.Gain(d)
		if g > prev {
			t.Errorf("gain not monotone at %g m", d)
		}
		prev = g
	}
	// Calibration anchor: ~4% power at 2.5 m (the paper's detectability
	// limit d_s ≈ 2.5 m emerges from this together with α = 1%).
	g := cfg.Gain(2.5)
	if g*g < 0.01 || g*g > 0.1 {
		t.Errorf("power gain at 2.5 m = %g, outside calibrated band", g*g)
	}
}

func TestNewPathBasics(t *testing.T) {
	cfg := DefaultChannelConfig()
	rng := rand.New(rand.NewSource(1))
	pr := ProfileFor(EnvOffice)

	p, err := NewPath(cfg, pr, 1.0, true, 44100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The base delay wanders around the geometric value by the
	// environment's time-of-flight jitter (±5σ bound here).
	wantDelay := 1.0 / SpeedOfSoundMPS * 44100
	if math.Abs(p.BaseDelaySamples-wantDelay) > 5*pr.PathJitterSamples {
		t.Errorf("base delay %g, want %g ± jitter", p.BaseDelaySamples, wantDelay)
	}

	// Self-range paths (≤0.2 m) must not wander at all.
	self, err := NewPath(cfg, pr, 0.05, true, 44100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := self.BaseDelaySamples, 0.05/SpeedOfSoundMPS*44100; math.Abs(got-want) > 1e-9 {
		t.Errorf("self path delay %g, want exact %g", got, want)
	}
	if p.Blocked {
		t.Error("same-room path marked blocked")
	}
	if len(p.Taps) != 1+cfg.TransducerTaps+pr.ReflectionCount {
		t.Errorf("tap count %d", len(p.Taps))
	}
	if p.Taps[0].DelaySamples != 0 {
		t.Error("direct tap has nonzero delay")
	}
	if math.Abs(p.Taps[0].Gain-cfg.Gain(1.0)) > 1e-12 {
		t.Errorf("direct gain %g", p.Taps[0].Gain)
	}
}

func TestNewPathWallAttenuates(t *testing.T) {
	cfg := DefaultChannelConfig()
	rng := rand.New(rand.NewSource(2))
	pr := ProfileFor(EnvQuiet)
	open, err := NewPath(cfg, pr, 1.0, true, 44100, rng)
	if err != nil {
		t.Fatal(err)
	}
	walled, err := NewPath(cfg, pr, 1.0, false, 44100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !walled.Blocked {
		t.Error("walled path not marked blocked")
	}
	ratio := walled.Taps[0].Gain / open.Taps[0].Gain
	if math.Abs(ratio-cfg.WallTransmission) > 1e-12 {
		t.Errorf("wall ratio %g, want %g", ratio, cfg.WallTransmission)
	}
}

func TestNewPathValidation(t *testing.T) {
	cfg := DefaultChannelConfig()
	pr := ProfileFor(EnvOffice)
	rng := rand.New(rand.NewSource(3))
	if _, err := NewPath(cfg, pr, 1, true, 0, rng); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := NewPath(cfg, pr, 1, true, 44100, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := cfg
	bad.RefGain = -1
	if _, err := NewPath(bad, pr, 1, true, 44100, rng); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestEnvironmentStrings(t *testing.T) {
	names := map[Environment]string{
		EnvQuiet:      "quiet",
		EnvOffice:     "office",
		EnvHome:       "home",
		EnvRestaurant: "restaurant",
		EnvStreet:     "street",
	}
	for env, want := range names {
		if got := env.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", env, got, want)
		}
	}
	if got := Environment(99).String(); got != "environment(99)" {
		t.Errorf("unknown env = %q", got)
	}
	if len(AllEnvironments()) != 4 {
		t.Error("AllEnvironments should list the four Fig. 1 environments")
	}
}

func TestGenerateNoiseRMSLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 44100
	for _, env := range AllEnvironments() {
		pr := ProfileFor(env)
		noise, err := pr.GenerateNoise(44100, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		rms := math.Sqrt(dsp.TotalPower(noise))
		// RMS should be dominated by (and at least as large as) the hum.
		if rms < 0.5*pr.HumRMS || rms > 4*pr.HumRMS {
			t.Errorf("%s: rms %g vs hum %g", env, rms, pr.HumRMS)
		}
	}
}

// TestNoiseSpectrumConcentratesBelow6kHz reproduces the measurement that
// motivated the paper's candidate band: ambient power must concentrate
// below ~6 kHz, leaving the aliased candidate band (9–19 kHz) quiet.
func TestNoiseSpectrumConcentratesBelow6kHz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const (
		fs = 44100.0
		n  = 16384
	)
	for _, env := range AllEnvironments() {
		pr := ProfileFor(env)
		noise, err := pr.GenerateNoise(fs, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := dsp.PowerSpectrum(noise)
		if err != nil {
			t.Fatal(err)
		}
		cut := dsp.BinIndex(6000, fs, n)
		var below, total float64
		for k := 1; k <= n/2; k++ {
			total += spec[k]
			if k <= cut {
				below += spec[k]
			}
		}
		if frac := below / total; frac < 0.9 {
			t.Errorf("%s: only %.1f%% of noise power below 6 kHz", env, frac*100)
		}
	}
}

func TestGenerateNoiseValidation(t *testing.T) {
	pr := ProfileFor(EnvOffice)
	rng := rand.New(rand.NewSource(6))
	if _, err := pr.GenerateNoise(0, 10, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := pr.GenerateNoise(44100, -1, rng); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := pr.GenerateNoise(44100, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	got, err := pr.GenerateNoise(44100, 0, rng)
	if err != nil || len(got) != 0 {
		t.Error("zero length should succeed with empty output")
	}
}

func TestQuietProfileIsSilent(t *testing.T) {
	pr := ProfileFor(EnvQuiet)
	noise, err := pr.GenerateNoise(44100, 1000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range noise {
		if v != 0 {
			t.Fatalf("quiet noise sample %d = %g", i, v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const mean = 5.0
	var sum int
	const trials = 2000
	for i := 0; i < trials; i++ {
		sum += poisson(mean, rng)
	}
	got := float64(sum) / trials
	if math.Abs(got-mean) > 0.3 {
		t.Fatalf("poisson mean %g, want ≈%g", got, mean)
	}
	if poisson(0, rng) != 0 || poisson(-1, rng) != 0 {
		t.Error("non-positive mean should give 0")
	}
}
