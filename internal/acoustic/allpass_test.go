package acoustic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/acoustic-auth/piano/internal/dsp"
)

// TestAllpassPreservesEnergy: an allpass cascade has |H(f)| = 1, so total
// signal energy must be preserved (modulo the truncated tail).
func TestAllpassPreservesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var inEnergy float64
	for _, v := range x {
		inEnergy += v * v
	}
	coeffs := []float64{0.4, -0.3, 0.25, -0.45}
	y := ApplyAllpass(x, coeffs)
	var outEnergy float64
	for _, v := range y {
		outEnergy += v * v
	}
	if math.Abs(outEnergy-inEnergy) > 0.02*inEnergy {
		t.Fatalf("energy not preserved: in %g out %g", inEnergy, outEnergy)
	}
}

// TestAllpassPreservesBandPower: a sinusoid's band power (what Algorithm 2
// reads) must survive the dispersion essentially unchanged.
func TestAllpassPreservesBandPower(t *testing.T) {
	const (
		fs = 44100.0
		n  = 4096
	)
	sine, err := dsp.Sine(30166.67, 1000, 0.4, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := []float64{0.45, -0.4, 0.3, -0.2}
	y := ApplyAllpass(sine, coeffs)

	specIn, err := dsp.PowerSpectrum(sine)
	if err != nil {
		t.Fatal(err)
	}
	specOut, err := dsp.PowerSpectrum(y[:n])
	if err != nil {
		t.Fatal(err)
	}
	bin := dsp.BinIndex(30166.67, fs, n)
	in := dsp.BandPower(specIn, bin, 5)
	out := dsp.BandPower(specOut, bin, 5)
	if out < 0.75*in || out > 1.25*in {
		t.Fatalf("band power changed: in %g out %g", in, out)
	}
}

// TestAllpassDecorrelatesWaveform: the same cascade must visibly reduce
// normalized cross-correlation against the original waveform — the
// frequency-smoothing effect.
func TestAllpassDecorrelatesWaveform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	coeffs := []float64{0.45, -0.45, 0.45, -0.45}
	y := ApplyAllpass(x, coeffs)

	corr, err := dsp.CrossCorrelate(y, x)
	if err != nil {
		t.Fatal(err)
	}
	_, peak := dsp.ArgMax(corr)
	if peak > 0.9 {
		t.Fatalf("correlation peak %g: dispersion too weak to smooth anything", peak)
	}
}

func TestAllpassIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := ApplyAllpass(x, nil)
	for i, v := range x {
		if y[i] != v {
			t.Fatalf("no-coefficient cascade altered sample %d", i)
		}
	}
	// Zero coefficient = pure one-sample delay per section.
	y = ApplyAllpass(x, []float64{0})
	if y[0] != 0 || y[1] != 1 || y[2] != 2 {
		t.Fatalf("a=0 section should delay by one sample: %v", y[:4])
	}
}

func TestAllpassEnergyProperty(t *testing.T) {
	f := func(seed int64, aRaw float64) bool {
		a := math.Mod(aRaw, 0.9)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 1024)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var in float64
		for _, v := range x {
			in += v * v
		}
		y := ApplyAllpass(x, []float64{a})
		var out float64
		for _, v := range y {
			out += v * v
		}
		return math.Abs(out-in) < 0.05*in+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
