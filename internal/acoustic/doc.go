// Package acoustic simulates the physical layer the paper's prototype
// exercised with real speakers and microphones: sound propagation with
// distance-dependent delay and attenuation, multipath reflections and
// transducer imperfections (the source of the paper's "frequency smoothing"
// effect), wall transmission loss, and per-environment ambient noise whose
// power concentrates below 6 kHz — exactly the measurement that led the
// authors to place the candidate band at [25 kHz, 35 kHz].
//
// Key types: ChannelConfig holds the physical constants of the air channel
// (spreading gain, wall loss, transducer tap count); Profile describes one
// environment's ambient noise and reflection richness (ProfileFor calibrates
// office/home/restaurant/street to the paper's Fig. 1 error bands); Path is
// the complete impulse response between one speaker and one microphone — a
// base delay, a set of Taps, and an allpass cascade modelling transducer
// phase dispersion. Path.CompositeKernel folds all taps into one
// dsp.SparseFIR so the renderer convolves each play once instead of once per
// tap; the kernel is cached on the path, keyed by the play's base arrival
// and rate ratio, and invalidated structurally because geometry or config
// changes always draw fresh paths.
//
// Invariants: NewPath consumes the scene RNG in a fixed order (seeded
// reproducibility depends on it); AllpassWorkspace owns its scratch and its
// Apply result is valid only until the next Apply, so each rendering
// goroutine needs its own workspace; a Path's Taps must not be mutated after
// CompositeKernel has been called without calling InvalidateKernel.
package acoustic
