package acoustic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/dsp"
)

// SpeedOfSoundMPS is the propagation speed used throughout (the paper uses
// "around 340 m/s"; 343 m/s is the 20 °C value).
const SpeedOfSoundMPS = 343.0

// ChannelConfig holds the physical constants of the simulated air channel.
type ChannelConfig struct {
	// RefGain is the amplitude gain at 1 m: gain(d) = RefGain/d (spherical
	// spreading), clamped to MaxGain. Calibrated so that the detectable
	// range d_s lands near the paper's ≈2.5 m.
	RefGain float64
	// MaxGain caps the gain at very short range (models microphone AGC;
	// also keeps a device's own reference signal from clipping its ADC).
	MaxGain float64
	// WallTransmission is the extra amplitude factor applied when source
	// and receiver are in different rooms. The paper observes walls
	// attenuate the reference signals below detectability.
	WallTransmission float64
	// MinDistance clamps the geometric distance (devices are never
	// acoustically coincident).
	MinDistance float64
	// TransducerTaps is the number of short-delay echo taps modelling the
	// combined speaker+microphone impulse response; TransducerGain bounds
	// their amplitude relative to the direct path. These taps smear the
	// waveform in time — the frequency-smoothing phenomenon that defeats
	// cross-correlation detection (paper §IV-C, Fig. 2b).
	TransducerTaps int
	TransducerGain float64
}

// DefaultChannelConfig returns the calibrated physical constants.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		RefGain:          0.32,
		MaxGain:          0.85,
		WallTransmission: 0.05,
		MinDistance:      0.02,
		TransducerTaps:   2,
		TransducerGain:   0.12,
	}
}

// Validate checks the configuration for physical plausibility.
func (c ChannelConfig) Validate() error {
	switch {
	case c.RefGain <= 0:
		return errors.New("acoustic: RefGain must be positive")
	case c.MaxGain <= 0:
		return errors.New("acoustic: MaxGain must be positive")
	case c.WallTransmission < 0 || c.WallTransmission > 1:
		return fmt.Errorf("acoustic: WallTransmission %g out of [0,1]", c.WallTransmission)
	case c.MinDistance <= 0:
		return errors.New("acoustic: MinDistance must be positive")
	case c.TransducerTaps < 0 || c.TransducerGain < 0:
		return errors.New("acoustic: transducer parameters must be non-negative")
	}
	return nil
}

// Tap is one impulse-response component of a propagation path: an extra
// delay (relative to the direct line-of-sight arrival) and an amplitude
// gain (already folded with the direct-path gain).
type Tap struct {
	DelaySamples float64
	Gain         float64
}

// Path is the complete impulse response between one speaker and one
// microphone: the line-of-sight base delay plus a set of taps (direct path,
// transducer smearing, room reflections) and a random allpass cascade
// modelling transducer phase dispersion.
type Path struct {
	// BaseDelaySamples is distance/343 · sampleRate for the direct path.
	BaseDelaySamples float64
	// Taps are offsets on top of the base delay. Taps[0] is the direct
	// path (delay 0).
	Taps []Tap
	// AllpassCoeffs are first-order allpass coefficients applied in
	// cascade to the emitted waveform. Speakers and microphones driven an
	// octave above their design band (25–35 kHz on phone hardware) have
	// wildly non-linear phase; an allpass cascade reproduces exactly that:
	// unit magnitude response (the frequency detector's band powers are
	// untouched) but heavy phase dispersion, which is the frequency
	// smoothing that collapses time-domain cross-correlation (Fig. 2b).
	AllpassCoeffs []float64
	// Blocked reports whether the path is attenuated below usefulness
	// (kept for diagnostics; blocked paths still render, just faintly).
	Blocked bool

	// Composite-kernel cache (see CompositeKernel). The kernel depends on
	// the play's base arrival and the destination's rate ratio, so those
	// form the cache key; the taps themselves are baked in at build time.
	kernel     *dsp.SparseFIR
	kernelBase float64
	kernelRate float64
}

// CompositeKernel folds the path's taps into one sparse FIR for a play whose
// direct-path (tap-0) arrival lands at baseArrival destination samples, with
// tapRate converting tap delays (scene-rate samples) into destination
// samples (destination true rate ÷ scene sample rate; ≠1 only under clock
// skew). Tap t lands at offset baseArrival + Taps[t].DelaySamples·tapRate,
// so applying the returned FIR once (audio.MixSparseFIR) replaces one
// windowed-sinc mix per tap with bit-equivalent coefficients folded from the
// same dsp.SincDelayKernel — only the floating-point summation order
// changes.
//
// The kernel is cached on the path and rebuilt only when (baseArrival,
// tapRate) changes. Geometry and channel-config changes invalidate it
// structurally: paths are drawn fresh from the scene RNG on every render
// (world.Render → NewPath), so a mutated scene never sees a stale kernel —
// the regression tests in world pin that. Callers that mutate Taps on a
// live Path (tests, mostly) must call InvalidateKernel afterwards.
//
// The returned FIR is owned by the path; treat it as read-only. A Path is
// not safe for concurrent CompositeKernel calls (the renderer gives each
// goroutine its own paths).
func (p *Path) CompositeKernel(baseArrival, tapRate float64) *dsp.SparseFIR {
	if p.kernel != nil && p.kernelBase == baseArrival && p.kernelRate == tapRate {
		return p.kernel
	}
	taps := make([]dsp.FIRTap, len(p.Taps))
	for i, t := range p.Taps {
		taps[i] = dsp.FIRTap{Offset: baseArrival + t.DelaySamples*tapRate, Gain: t.Gain}
	}
	p.kernel = dsp.NewSparseFIR(taps)
	p.kernelBase, p.kernelRate = baseArrival, tapRate
	return p.kernel
}

// InvalidateKernel drops the cached composite kernel so the next
// CompositeKernel call rebuilds it. Only needed after mutating Taps on a
// Path that has already handed out a kernel; NewPath-built paths start
// clean.
func (p *Path) InvalidateKernel() { p.kernel = nil }

// allpassTail is the extra buffer length appended to hold the dispersion
// tail of the allpass cascade.
const allpassTail = 256

// ApplyAllpass runs src through the first-order allpass cascade described
// by coeffs (y[n] = −a·x[n] + x[n−1] + a·y[n−1] per section), returning a
// slightly longer buffer to hold the dispersion tail.
func ApplyAllpass(src []float64, coeffs []float64) []float64 {
	var ws AllpassWorkspace
	out := ws.Apply(src, coeffs)
	// The workspace owns its buffers; hand the caller a private copy.
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// AllpassWorkspace applies allpass cascades while reusing two scratch
// buffers across calls, so render loops filter many plays without per-play
// allocations. The zero value is ready to use. Not safe for concurrent use;
// give each rendering goroutine its own workspace.
type AllpassWorkspace struct {
	cur, next []float64
}

// Apply is ApplyAllpass into workspace-owned storage. The returned slice
// (len(src)+256, like ApplyAllpass) aliases the workspace and is valid only
// until the next Apply call.
func (w *AllpassWorkspace) Apply(src []float64, coeffs []float64) []float64 {
	total := len(src) + allpassTail
	if cap(w.cur) < total {
		w.cur = make([]float64, total)
		w.next = make([]float64, total)
	}
	cur := w.cur[:total]
	next := w.next[:total]
	copy(cur, src)
	for i := len(src); i < total; i++ {
		cur[i] = 0
	}
	for _, a := range coeffs {
		var xPrev, yPrev float64
		for i, x := range cur {
			y := -a*x + xPrev + a*yPrev
			next[i] = y
			xPrev, yPrev = x, y
		}
		cur, next = next, cur
	}
	w.cur, w.next = cur[:cap(cur)], next[:cap(next)]
	return cur
}

// Gain returns the direct-path amplitude gain for distance d (meters).
func (c ChannelConfig) Gain(d float64) float64 {
	if d < c.MinDistance {
		d = c.MinDistance
	}
	g := c.RefGain / d
	if g > c.MaxGain {
		g = c.MaxGain
	}
	return g
}

// NewPath builds the impulse response for a speaker→microphone pair.
// distance is in meters; sameRoom=false applies the wall loss; profile
// supplies the environment's reflection richness; rng drives the randomized
// reflection geometry (every authentication sees a slightly different
// channel, as real rooms do when people move).
func NewPath(cfg ChannelConfig, profile Profile, distance float64, sameRoom bool, sampleRate float64, rng *rand.Rand) (*Path, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, errors.New("acoustic: sample rate must be positive")
	}
	if rng == nil {
		return nil, errors.New("acoustic: nil rng")
	}
	if distance < cfg.MinDistance {
		distance = cfg.MinDistance
	}

	g := cfg.Gain(distance)
	blocked := false
	if !sameRoom {
		g *= cfg.WallTransmission
		blocked = true
	}

	// Time-of-flight wander on inter-device paths (see
	// Profile.PathJitterSamples). Self paths (speaker to own mic, a few
	// centimeters inside one chassis) do not wander.
	baseDelay := distance / SpeedOfSoundMPS * sampleRate
	if distance > 0.2 && profile.PathJitterSamples > 0 {
		baseDelay += rng.NormFloat64() * profile.PathJitterSamples
		if baseDelay < 0 {
			baseDelay = 0
		}
	}

	taps := make([]Tap, 0, 1+cfg.TransducerTaps+profile.ReflectionCount)
	taps = append(taps, Tap{DelaySamples: 0, Gain: g})

	// Transducer smearing: short-delay taps within a few samples.
	for i := 0; i < cfg.TransducerTaps; i++ {
		decay := math.Pow(0.6, float64(i))
		gain := g * cfg.TransducerGain * decay * (2*rng.Float64() - 1)
		delay := 1 + float64(i) + rng.Float64()
		taps = append(taps, Tap{DelaySamples: delay, Gain: gain})
	}

	// Room reflections: longer excess paths, attenuated by the extra
	// travel and surface absorption. Reflections also pass the wall when
	// the direct path does not, so they inherit the wall loss.
	for i := 0; i < profile.ReflectionCount; i++ {
		delay := profile.ReflectionDelayMin +
			rng.Float64()*(profile.ReflectionDelayMax-profile.ReflectionDelayMin)
		gain := g * (profile.ReflectionGainMin +
			rng.Float64()*(profile.ReflectionGainMax-profile.ReflectionGainMin))
		if rng.Intn(2) == 0 {
			gain = -gain
		}
		taps = append(taps, Tap{DelaySamples: delay, Gain: gain})
	}

	// Transducer phase dispersion: a handful of random allpass sections.
	allpass := make([]float64, 4)
	for i := range allpass {
		allpass[i] = (2*rng.Float64() - 1) * 0.45
	}

	return &Path{
		BaseDelaySamples: baseDelay,
		Taps:             taps,
		AllpassCoeffs:    allpass,
		Blocked:          blocked,
	}, nil
}
