package acoustic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Environment names the ambient-noise scenarios of the paper's §VI-B:
// a shared office, a home, a street, and a restaurant, plus a silent
// baseline used by unit tests.
type Environment int

// Environments evaluated in the paper (Fig. 1) plus a noiseless baseline.
const (
	EnvQuiet Environment = iota + 1
	EnvOffice
	EnvHome
	EnvRestaurant
	EnvStreet
)

// String implements fmt.Stringer.
func (e Environment) String() string {
	switch e {
	case EnvQuiet:
		return "quiet"
	case EnvOffice:
		return "office"
	case EnvHome:
		return "home"
	case EnvRestaurant:
		return "restaurant"
	case EnvStreet:
		return "street"
	default:
		return fmt.Sprintf("environment(%d)", int(e))
	}
}

// AllEnvironments lists the four environments of Fig. 1 in paper order.
func AllEnvironments() []Environment {
	return []Environment{EnvOffice, EnvHome, EnvStreet, EnvRestaurant}
}

// KnownEnvironment reports whether e names a defined scenario — the
// validation gate for environment values arriving from outside the
// process (service requests), which must be rejected rather than silently
// mapped to a default profile.
func KnownEnvironment(e Environment) bool {
	return e >= EnvQuiet && e <= EnvStreet
}

// Profile describes one environment's ambient acoustics. Amplitudes are on
// the int16 PCM scale (full scale 32767).
//
// The paper measured that "most powers of background noises concentrate on
// frequencies that are smaller than around 6K Hz"; the profile therefore
// has three components:
//   - a low-passed hum (voices, traffic, HVAC) — high power, <6 kHz, which
//     by design never touches the candidate band;
//   - a faint wideband floor (microphone self-noise, air) — reaches the
//     candidate band at negligible power;
//   - transient wideband bursts (clattering dishes, keys, door slams, tire
//     noise) — the component that actually perturbs detection and makes
//     noisy environments measurably worse (street > restaurant > home >
//     office), reproducing the ordering of Fig. 1 and Tables I/II.
type Profile struct {
	Env Environment

	// HumRMS is the RMS amplitude of the <6 kHz ambient component.
	HumRMS float64
	// HumCutoffHz is the one-pole low-pass cutoff for the hum.
	HumCutoffHz float64
	// FloorRMS is the RMS of the white wideband floor.
	FloorRMS float64

	// Burst process: Poisson arrivals of short wideband transients.
	BurstRatePerSec float64
	BurstRMSMin     float64
	BurstRMSMax     float64
	BurstDurMinSec  float64
	BurstDurMaxSec  float64

	// Room reflection richness used by NewPath.
	ReflectionCount    int
	ReflectionGainMin  float64
	ReflectionGainMax  float64
	ReflectionDelayMin float64 // samples, excess over direct path
	ReflectionDelayMax float64

	// PathJitterSamples is the standard deviation (in samples at 44.1 kHz;
	// 1 sample ≈ 7.8 mm of path) of the per-trial time-of-flight wander on
	// inter-device paths. It aggregates the effects the paper's physical
	// testbed suffered that a static geometry model does not: hand/body
	// micro-motion of the person near the devices, air movement and
	// temperature gradients (outdoors especially), and the wandering
	// composite of unresolved multipath as people and cars move. Busier
	// environments wander more — this is the main reason street errors in
	// Fig. 1 are roughly double the office errors.
	PathJitterSamples float64
}

// ProfileFor returns the calibrated profile for an environment. Calibration
// targets the paper's measured error bands (office ≈5–7 cm mean absolute
// error, street ≈10–15 cm; see EXPERIMENTS.md for the comparison).
func ProfileFor(env Environment) Profile {
	base := Profile{
		Env:                env,
		HumCutoffHz:        900,
		ReflectionCount:    3,
		ReflectionGainMin:  0.04,
		ReflectionGainMax:  0.10,
		ReflectionDelayMin: 8,
		ReflectionDelayMax: 90,
		BurstDurMinSec:     0.005,
		BurstDurMaxSec:     0.025,
	}
	switch env {
	case EnvQuiet:
		base.ReflectionCount = 0
	case EnvOffice:
		base.HumRMS = 900
		base.FloorRMS = 110
		base.BurstRatePerSec = 4
		base.BurstRMSMin, base.BurstRMSMax = 100, 420
		base.PathJitterSamples = 10.5
	case EnvHome:
		base.HumRMS = 1200
		base.FloorRMS = 160
		base.BurstRatePerSec = 6
		base.BurstRMSMin, base.BurstRMSMax = 180, 700
		base.ReflectionCount = 4
		base.PathJitterSamples = 18
	case EnvRestaurant:
		base.HumRMS = 1500
		base.FloorRMS = 150
		base.BurstRatePerSec = 8
		base.BurstRMSMin, base.BurstRMSMax = 160, 620
		base.ReflectionCount = 5
		base.PathJitterSamples = 23
	case EnvStreet:
		base.HumRMS = 3000
		base.FloorRMS = 200
		base.BurstRatePerSec = 10
		base.BurstRMSMin, base.BurstRMSMax = 250, 900
		base.ReflectionCount = 4
		base.ReflectionGainMax = 0.12
		base.PathJitterSamples = 25
	default:
		base.Env = EnvQuiet
	}
	return base
}

// GenerateNoise synthesizes n samples of this environment's ambient noise
// at the given rate. The output is on the int16 amplitude scale but kept in
// float64; the world mixer quantizes once at the end.
func (p Profile) GenerateNoise(sampleRate float64, n int, rng *rand.Rand) ([]float64, error) {
	if sampleRate <= 0 {
		return nil, errors.New("acoustic: sample rate must be positive")
	}
	if n < 0 {
		return nil, errors.New("acoustic: negative length")
	}
	if rng == nil {
		return nil, errors.New("acoustic: nil rng")
	}
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}

	// Low-passed hum. Two cascaded one-pole IIR stages give a -24 dB/oct
	// rolloff so the hum genuinely stays below ~6 kHz; normalized to the
	// target RMS afterwards.
	if p.HumRMS > 0 {
		k := 1 - math.Exp(-2*math.Pi*p.HumCutoffHz/sampleRate)
		var y1, y2, sumSq float64
		hum := make([]float64, n)
		for i := range hum {
			y1 += k * (rng.NormFloat64() - y1)
			y2 += k * (y1 - y2)
			hum[i] = y2
			sumSq += y2 * y2
		}
		rms := math.Sqrt(sumSq / float64(n))
		if rms > 0 {
			scale := p.HumRMS / rms
			for i, v := range hum {
				out[i] += v * scale
			}
		}
	}

	// Wideband floor.
	if p.FloorRMS > 0 {
		for i := range out {
			out[i] += p.FloorRMS * rng.NormFloat64()
		}
	}

	// Transient bursts: Poisson-count arrivals over the buffer duration.
	// Bursts are low-tilted (one-pole low-pass at ~3.5 kHz) like real
	// clatter: most energy below 6 kHz, with a wideband tail that reaches
	// the candidate band and is what actually perturbs detection.
	if p.BurstRatePerSec > 0 {
		const burstCutoffHz = 3500
		k := 1 - math.Exp(-2*math.Pi*burstCutoffHz/sampleRate)
		durSec := float64(n) / sampleRate
		count := poisson(p.BurstRatePerSec*durSec, rng)
		for b := 0; b < count; b++ {
			start := rng.Intn(n)
			burstDur := p.BurstDurMinSec + rng.Float64()*(p.BurstDurMaxSec-p.BurstDurMinSec)
			length := int(burstDur * sampleRate)
			if length < 1 {
				length = 1
			}
			rms := p.BurstRMSMin + rng.Float64()*(p.BurstRMSMax-p.BurstRMSMin)
			var y float64
			// One-pole LP halves RMS roughly by sqrt(k/(2-k)); rescale so
			// the burst hits its target RMS after filtering.
			norm := 1 / math.Sqrt(k/(2-k))
			for i := 0; i < length && start+i < n; i++ {
				y += k * (rng.NormFloat64() - y)
				// Hann-shaped envelope keeps bursts click-free.
				env := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(length)))
				out[start+i] += rms * env * y * norm * math.Sqrt2
			}
		}
	}
	return out, nil
}

// poisson draws a Poisson-distributed count with the given mean using
// Knuth's method (means here are small; buffers are ~1 s).
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // safety for absurd means
			return k
		}
	}
}
