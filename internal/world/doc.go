// Package world renders the shared acoustic scene: every scheduled speaker
// playback propagates through the channel model to every microphone, then
// each device's recording is quantized to the int16 PCM its detector sees.
// This is the simulation substitute for the paper's physical testbed.
//
// Key types: Config holds scene-wide parameters (rate, duration,
// environment, channel constants); World is one scene — build it, add
// devices, SchedulePlay, Render, discard. Render runs in two phases: a
// sequential draw phase consumes the scene RNG in the historical order
// (channel paths, ambient noise), then the mixing phase runs each device on
// a bounded worker pool, folding every path's taps into one composite
// sparse FIR (acoustic.Path.CompositeKernel) applied by a single
// audio.MixSparseFIR convolution per play. RenderNaive keeps the historical
// per-tap loop as the parity oracle and A/B baseline.
//
// Invariants: a World belongs to one session, and a seeded scene renders
// bit-identically at any GOMAXPROCS (the draw phase is serialized under the
// scene lock; mixing touches no shared state). SchedulePlay aliases the
// caller's samples — the world reads but never writes them, and the caller
// must not mutate them until after Render. Rendering allocates a constant
// number of times per path regardless of tap count (the zero-alloc contract
// pinned by TestRenderNoPerTapAllocations). The composite fold changes
// floating-point summation order relative to the per-tap loop; goldens
// under testdata/ re-baseline via `go test ./internal/world/ -run
// TestRenderGolden -update` (procedure documented in golden_test.go).
package world
