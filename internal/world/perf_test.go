package world

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/dsp"
)

func newBenchDevice(tb testing.TB, name string, pos [2]float64) *device.Device {
	tb.Helper()
	d, err := device.New(device.Config{
		Name:       name,
		Position:   pos,
		SampleRate: 44100,
		ProcDelay:  device.DefaultProcessingDelay(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// buildScene assembles a two-device office scene with both devices playing,
// approximating one ACTION session's render workload.
func buildScene(tb testing.TB, seed int64, taps int) *World {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.DurationSec = 0.6
	cfg.Channel.TransducerTaps = taps
	w, err := New(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		tb.Fatal(err)
	}
	a := newBenchDevice(tb, "a", [2]float64{0, 0})
	b := newBenchDevice(tb, "b", [2]float64{0.8, 0})
	if err := w.AddDevice(a); err != nil {
		tb.Fatal(err)
	}
	if err := w.AddDevice(b); err != nil {
		tb.Fatal(err)
	}
	tone, err := dsp.Sine(30000, 8000, 0, 44100, 4096)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.SchedulePlay(a, tone, 0.1); err != nil {
		tb.Fatal(err)
	}
	if err := w.SchedulePlay(b, tone, 0.35); err != nil {
		tb.Fatal(err)
	}
	return w
}

// TestRenderNoPerTapAllocations is the satellite gate for the renderer:
// adding impulse-response taps must not add heap allocations (the per-tap
// scaled copy and per-play allpass buffers are gone). Only the per-path
// bookkeeping inside NewPath may grow, by a constant per scene.
func TestRenderNoPerTapAllocations(t *testing.T) {
	few := buildScene(t, 31, 2)   // 2 transducer taps
	many := buildScene(t, 32, 12) // 10 extra taps × 2 plays × 2 devices = 40 extra mixes

	measure := func(w *World) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := w.Render(); err != nil {
				t.Fatal(err)
			}
		})
	}
	fewAllocs := measure(few)
	manyAllocs := measure(many)
	// 40 extra tap mixes used to cost ≥40 scaled-copy allocations; now the
	// only growth allowed is NewPath's tap-slice resize (constant per
	// path, 4 paths per render).
	if manyAllocs > fewAllocs+8 {
		t.Fatalf("allocations scale with taps: %.0f (2 taps) → %.0f (12 taps)", fewAllocs, manyAllocs)
	}
}

// TestRenderDeterministicAcrossWorkerCounts asserts the two-phase renderer
// produces bit-identical recordings whether the mixing phase runs on one
// worker or several — the seeded-reproducibility contract.
func TestRenderDeterministicAcrossWorkerCounts(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	render := func() map[string][]float64 {
		w := buildScene(t, 33, 2)
		recs, err := w.Render()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]float64, len(recs))
		for d, buf := range recs {
			out[d.Name()] = buf.Float()
		}
		return out
	}
	runtime.GOMAXPROCS(1)
	seq := render()
	runtime.GOMAXPROCS(4)
	par := render()

	for name, s := range seq {
		p := par[name]
		if len(p) != len(s) {
			t.Fatalf("%s: length %d != %d", name, len(p), len(s))
		}
		for i := range s {
			if s[i] != p[i] {
				t.Fatalf("%s: sample %d: sequential %g != parallel %g (diff %g)",
					name, i, s[i], p[i], math.Abs(s[i]-p[i]))
			}
		}
	}
}

// TestSchedulePlayAliasesCallerSlice documents the new ownership contract:
// the world holds a reference to the scheduled samples rather than copying.
func TestSchedulePlayAliasesCallerSlice(t *testing.T) {
	w := quietWorld(t, 0.2)
	d := newDevice(t, "a", [2]float64{0, 0}, 0, 0)
	if err := w.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	samples := []float64{1, 2, 3}
	if err := w.SchedulePlay(d, samples, 0); err != nil {
		t.Fatal(err)
	}
	if &w.plays[0].samples[0] != &samples[0] {
		t.Fatal("SchedulePlay copied the samples; the ownership contract says it must alias")
	}
}

// TestRenderDoesNotMutateScheduledSamples pins the other half of the
// ownership contract: the world only ever reads a scheduled slice, so a
// caller may safely share one immutable waveform across several plays
// (buildScene schedules the same tone twice) and reuse it after Render —
// what it must not do is write to it before Render.
func TestRenderDoesNotMutateScheduledSamples(t *testing.T) {
	w := buildScene(t, 51, 2)
	scheduled := w.plays[0].samples
	if &scheduled[0] != &w.plays[1].samples[0] {
		t.Fatal("buildScene no longer shares one slice across plays; update this test")
	}
	before := append([]float64(nil), scheduled...)
	if _, err := w.Render(); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if scheduled[i] != before[i] {
			t.Fatalf("Render mutated scheduled samples at %d: %g != %g", i, scheduled[i], before[i])
		}
	}
}

// TestConcurrentRendersAreIsolated: concurrent sessions each own a World
// and an RNG stream; rendering them in parallel must be race-free and give
// every scene the same recording it gets when rendered alone (run under
// -race in CI).
func TestConcurrentRendersAreIsolated(t *testing.T) {
	recordingOf := func(w *World, name string) []int16 {
		recs, err := w.Render()
		if err != nil {
			t.Error(err)
			return nil
		}
		for dev, buf := range recs {
			if dev.Name() == name {
				return buf.Samples
			}
		}
		t.Errorf("device %q not rendered", name)
		return nil
	}
	serial := make([][]int16, 4)
	for i := range serial {
		serial[i] = append([]int16(nil), recordingOf(buildScene(t, int64(60+i), 2), "a")...)
	}
	var wg sync.WaitGroup
	for i := range serial {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := recordingOf(buildScene(t, int64(60+i), 2), "a")
			if len(got) != len(serial[i]) {
				t.Errorf("scene %d: length %d != serial %d", i, len(got), len(serial[i]))
				return
			}
			for k := range got {
				if got[k] != serial[i][k] {
					t.Errorf("scene %d: sample %d differs under concurrency", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkRender(b *testing.B) {
	w := buildScene(b, 34, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Render(); err != nil {
			b.Fatal(err)
		}
	}
}
