package world

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/dsp"
)

// buildEnvScene is buildScene with a selectable environment (reflection
// richness scales with the environment, so the restaurant profile exercises
// multi-segment composite kernels).
func buildEnvScene(tb testing.TB, seed int64, taps int, env acoustic.Environment) *World {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.DurationSec = 0.6
	cfg.Environment = env
	cfg.Channel.TransducerTaps = taps
	w, err := New(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		tb.Fatal(err)
	}
	a := newBenchDevice(tb, "a", [2]float64{0, 0})
	b := newBenchDevice(tb, "b", [2]float64{0.8, 0})
	if err := w.AddDevice(a); err != nil {
		tb.Fatal(err)
	}
	if err := w.AddDevice(b); err != nil {
		tb.Fatal(err)
	}
	tone, err := dsp.Sine(30000, 8000, 0, 44100, 4096)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.SchedulePlay(a, tone, 0.1); err != nil {
		tb.Fatal(err)
	}
	if err := w.SchedulePlay(b, tone, 0.35); err != nil {
		tb.Fatal(err)
	}
	return w
}

// TestRenderCompositeMatchesNaive is the render-level parity oracle: for the
// same pre-drawn channel realizations, the composite-kernel mixer must match
// the historical per-tap loop within 1e-9 of the recording peak, in the
// float domain (before int16 quantization hides sub-LSB differences). The
// two mixers differ only in floating-point summation order — per-tap
// contributions are folded into kernel coefficients before multiplying the
// source — so anything past ~1e-12 relative indicates a folding bug.
// Exercised at a small tap count (the default channel) and at a large one
// (the regime the composite path exists for), per the cache-invalidation
// satellite.
func TestRenderCompositeMatchesNaive(t *testing.T) {
	cases := []struct {
		name string
		taps int
		env  acoustic.Environment
	}{
		{"small: 2 transducer taps, office", 2, acoustic.EnvOffice},
		{"large: 16 transducer taps, restaurant reflections", 16, acoustic.EnvRestaurant},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := buildEnvScene(t, 71, tc.taps, tc.env)
			jobs, err := w.drawJobs()
			if err != nil {
				t.Fatal(err)
			}
			for ji := range jobs {
				naive := w.mixNaiveFloat(&jobs[ji])
				composite := w.mixFloat(&jobs[ji])
				peak := 0.0
				for _, v := range naive {
					if a := math.Abs(v); a > peak {
						peak = a
					}
				}
				tol := 1e-9 * math.Max(1, peak)
				for i := range naive {
					if d := math.Abs(naive[i] - composite[i]); d > tol {
						t.Fatalf("device %q sample %d: naive %g vs composite %g (diff %g > tol %g)",
							jobs[ji].dst.Name(), i, naive[i], composite[i], d, tol)
					}
				}
			}
		})
	}
}

// TestRenderOneConvolutionPerPlayPerPath is the acceptance op-count gate:
// Render must perform exactly one sparse-FIR convolution per (play, device)
// path and zero per-tap sinc mixes, however many taps the channel has.
func TestRenderOneConvolutionPerPlayPerPath(t *testing.T) {
	w := buildEnvScene(t, 72, 12, acoustic.EnvRestaurant)
	sparse0, sinc0 := audio.SparseFIRMixCalls(), audio.SincMixCalls()
	if _, err := w.Render(); err != nil {
		t.Fatal(err)
	}
	plays, devices := len(w.plays), len(w.devices)
	if got, want := audio.SparseFIRMixCalls()-sparse0, uint64(plays*devices); got != want {
		t.Fatalf("%d sparse-FIR convolutions, want exactly %d (plays %d × devices %d)",
			got, want, plays, devices)
	}
	if got := audio.SincMixCalls() - sinc0; got != 0 {
		t.Fatalf("Render made %d per-tap sinc mixes, want 0 (all taps must fold into the composite kernel)", got)
	}
}

// TestRenderRebuildsKernelsAfterGeometryChange is the world-level
// cache-invalidation regression test: a render caches composite kernels on
// its freshly drawn paths, and a geometry change (the user walked away)
// before the next render must produce recordings reflecting the new
// geometry, never a stale kernel. Structurally guaranteed — every Render
// redraws its paths — but pinned here so a future path-reuse optimization
// cannot silently break it.
func TestRenderRebuildsKernelsAfterGeometryChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Environment = acoustic.EnvQuiet
	cfg.DurationSec = 0.5
	cfg.Channel.TransducerTaps = 0
	w, err := New(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	src := newDevice(t, "src", [2]float64{0, 0}, 0, 0)
	dst := newDevice(t, "dst", [2]float64{1.0, 0}, 0, 0)
	if err := w.AddDevice(src); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDevice(dst); err != nil {
		t.Fatal(err)
	}
	tone, err := dsp.Sine(10000, 10000, 0, 44100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SchedulePlay(src, tone, 0.1); err != nil {
		t.Fatal(err)
	}

	arrival := func() int {
		recs, err := w.Render()
		if err != nil {
			t.Fatal(err)
		}
		// Threshold well below the far-position peak (gain(2 m)·10000 =
		// 1600) but above the windowed-sinc pre-ring.
		for i, v := range recs[dst].Float() {
			if math.Abs(v) > 800 {
				return i
			}
		}
		t.Fatal("tone never arrived")
		return -1
	}

	near := arrival()
	dst.SetPosition([2]float64{2.0, 0}) // one meter further
	far := arrival()
	wantShift := 1.0 / acoustic.SpeedOfSoundMPS * 44100 // ≈128.6 samples
	if d := float64(far - near); math.Abs(d-wantShift) > 8 {
		t.Fatalf("arrival shifted %g samples after moving 1 m, want ≈%g (stale composite kernel?)", d, wantShift)
	}
}

// BenchmarkRenderMix is the composite-vs-naive A/B on the mixing phase
// alone (channel draw and noise synthesis excluded): the same pre-drawn jobs
// are mixed by the historical per-tap loop and by the composite-kernel
// convolution. Composite kernels are invalidated every iteration so the
// measurement includes the per-render kernel fold, exactly as Render pays
// it. The win grows with tap count: at 2 transducer taps the direct path +
// smearing + 3 office reflections cost 6×48 madds/sample naively vs one
// ~⩽100-coefficient folded kernel; at 24 taps the naive cost quadruples
// while the composite kernel barely widens. Record results in
// BENCH_render.json (run with -count≥3, interleaved).
func BenchmarkRenderMix(b *testing.B) {
	for _, taps := range []int{2, 8, 24} {
		w := buildEnvScene(b, 90, taps, acoustic.EnvOffice)
		jobs, err := w.drawJobs()
		if err != nil {
			b.Fatal(err)
		}
		for _, engine := range []string{"naive", "composite"} {
			b.Run(fmt.Sprintf("engine=%s/taps=%d", engine, taps), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for ji := range jobs {
						if engine == "naive" {
							w.mixNaiveFloat(&jobs[ji])
						} else {
							for _, p := range jobs[ji].paths {
								p.InvalidateKernel()
							}
							w.mixFloat(&jobs[ji])
						}
					}
				}
			})
		}
	}
}

// BenchmarkRenderNaive is RenderNaive end-to-end (draw + per-tap mix), the
// A/B partner of BenchmarkRender in perf_test.go.
func BenchmarkRenderNaive(b *testing.B) {
	w := buildScene(b, 34, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RenderNaive(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRenderDeterministicAcrossGOMAXPROCS extends the worker-count
// determinism test to the full acceptance sweep: the composite-kernel render
// must be bit-identical at GOMAXPROCS 1, 2, 4, and 8 (kernels are built and
// applied entirely inside each device's goroutine; the draw phase stays
// sequential).
func TestRenderDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	render := func() map[string][]int16 {
		w := buildEnvScene(t, 73, 8, acoustic.EnvRestaurant)
		recs, err := w.Render()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]int16, len(recs))
		for d, buf := range recs {
			out[d.Name()] = buf.Samples
		}
		return out
	}

	runtime.GOMAXPROCS(1)
	want := render()
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		got := render()
		for name, w := range want {
			g := got[name]
			if len(g) != len(w) {
				t.Fatalf("GOMAXPROCS=%d %s: length %d != %d", procs, name, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("GOMAXPROCS=%d %s: sample %d differs (%d != %d)", procs, name, i, g[i], w[i])
				}
			}
		}
	}
}
