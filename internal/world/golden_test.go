package world

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden re-baselines testdata/render_golden.json.
//
// Golden re-baseline procedure (see also PERFORMANCE.md): any change to the
// renderer's floating-point summation order — like PR 4's composite-kernel
// fold, which sums per-tap kernel coefficients before multiplying the source
// instead of accumulating tap by tap — legitimately changes recordings at
// the ~1e-12 relative level and therefore the checksums below. Such a change
// must (1) pass TestRenderCompositeMatchesNaive (≤1e-9 of peak against the
// per-tap oracle) and TestRenderDeterministicAcrossGOMAXPROCS first, then
// (2) re-record the baseline explicitly:
//
//	go test ./internal/world/ -run TestRenderGolden -update
//
// and (3) call out the re-baseline in the PR/PERFORMANCE.md. A golden diff
// without a deliberate summation-order change is a regression.
var updateGolden = flag.Bool("update", false, "re-baseline the golden render checksums in testdata/")

const goldenPath = "testdata/render_golden.json"

// renderChecksum renders the scene and returns one FNV-1a/64 hex digest per
// device over the little-endian int16 recording — a compact whole-recording
// fingerprint of bit-exact output.
func renderChecksum(t *testing.T, w *World) map[string]string {
	t.Helper()
	recs, err := w.Render()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(recs))
	var b [2]byte
	for d, buf := range recs {
		h := fnv.New64a()
		for _, s := range buf.Samples {
			binary.LittleEndian.PutUint16(b[:], uint16(s))
			h.Write(b[:])
		}
		out[d.Name()] = fmt.Sprintf("%016x", h.Sum64())
	}
	return out
}

// TestRenderGolden pins the renderer's exact output for two seeded scenes
// (the default 2-tap channel and a dense 12-tap one). The goldens were
// recorded on linux/amd64 with the composite-kernel mixer; Go floating-point
// is deterministic per architecture, but compilers may fuse multiply-adds on
// some targets (e.g. arm64), so on a non-amd64 machine a mismatch here with
// every other world test green means "re-baseline locally", not "broken".
func TestRenderGolden(t *testing.T) {
	got := map[string]map[string]string{
		"seed77_taps2":  renderChecksum(t, buildScene(t, 77, 2)),
		"seed78_taps12": renderChecksum(t, buildScene(t, 78, 12)),
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("re-baselined %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden baseline (run with -update to record it): %v", err)
	}
	var want map[string]map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for scene, devs := range want {
		for name, sum := range devs {
			if got[scene][name] != sum {
				t.Errorf("%s device %q: checksum %s, golden %s — see the re-baseline procedure at the top of this file",
					scene, name, got[scene][name], sum)
			}
		}
	}
	for scene := range got {
		if _, ok := want[scene]; !ok {
			t.Errorf("scene %s missing from golden file; run with -update", scene)
		}
	}
}
