// Package world renders the shared acoustic scene: every scheduled speaker
// playback propagates through the channel model to every microphone, then
// each device's recording is quantized to the int16 PCM its detector sees.
// This is the simulation substitute for the paper's physical testbed.
package world

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/device"
)

// Config describes the scene-wide simulation parameters.
type Config struct {
	// SampleRate is the nominal scene sampling rate (44100 Hz).
	SampleRate float64
	// DurationSec is how long every device records.
	DurationSec float64
	// Environment selects the ambient-noise profile.
	Environment acoustic.Environment
	// Channel holds the physical channel constants.
	Channel acoustic.ChannelConfig
}

// DefaultConfig returns a 1.2 s office scene at 44.1 kHz.
func DefaultConfig() Config {
	return Config{
		SampleRate:  44100,
		DurationSec: 1.2,
		Environment: acoustic.EnvOffice,
		Channel:     acoustic.DefaultChannelConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SampleRate <= 0 {
		return errors.New("world: sample rate must be positive")
	}
	if c.DurationSec <= 0 {
		return errors.New("world: duration must be positive")
	}
	return c.Channel.Validate()
}

// playEvent is one scheduled speaker emission.
type playEvent struct {
	src      *device.Device
	samples  []float64
	startSec float64 // global time sound leaves the speaker
}

// World is a single acoustic scene.
type World struct {
	cfg     Config
	profile acoustic.Profile
	rng     *rand.Rand
	devices []*device.Device
	plays   []playEvent
}

// New builds a scene. The rng drives noise, reflection geometry, and any
// randomness in scheduled interference; callers seed it for reproducible
// experiments.
func New(cfg Config, rng *rand.Rand) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("world: nil rng")
	}
	return &World{
		cfg:     cfg,
		profile: acoustic.ProfileFor(cfg.Environment),
		rng:     rng,
		devices: nil,
		plays:   nil,
	}, nil
}

// Config returns the scene configuration.
func (w *World) Config() Config { return w.cfg }

// AddDevice registers a device in the scene. Its microphone records for the
// scene duration starting at its own clock offset.
func (w *World) AddDevice(d *device.Device) error {
	if d == nil {
		return errors.New("world: nil device")
	}
	for _, existing := range w.devices {
		if existing == d {
			return fmt.Errorf("world: device %q already added", d.Name())
		}
	}
	w.devices = append(w.devices, d)
	return nil
}

// SchedulePlay queues samples to leave src's speaker at the given global
// time. The samples are in int16 amplitude scale.
func (w *World) SchedulePlay(src *device.Device, samples []float64, globalStartSec float64) error {
	if src == nil {
		return errors.New("world: nil source device")
	}
	found := false
	for _, d := range w.devices {
		if d == src {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("world: device %q not in scene", src.Name())
	}
	cp := make([]float64, len(samples))
	copy(cp, samples)
	w.plays = append(w.plays, playEvent{src: src, samples: cp, startSec: globalStartSec})
	return nil
}

// Render produces each device's recording: the superposition of every
// scheduled play propagated through a freshly drawn channel realization,
// plus the environment's ambient noise, quantized once to int16.
func (w *World) Render() (map[*device.Device]*audio.Buffer, error) {
	out := make(map[*device.Device]*audio.Buffer, len(w.devices))
	for _, dst := range w.devices {
		rec, err := w.renderFor(dst)
		if err != nil {
			return nil, fmt.Errorf("world: render for %q: %w", dst.Name(), err)
		}
		out[dst] = rec
	}
	return out, nil
}

// renderFor computes one microphone's recording.
func (w *World) renderFor(dst *device.Device) (*audio.Buffer, error) {
	n := int(w.cfg.DurationSec * dst.Clock().TrueRate())
	acc := make([]float64, n)

	for _, play := range w.plays {
		distance := play.src.DistanceTo(dst)
		sameRoom := play.src.SameRoom(dst)
		if play.src == dst {
			distance = dst.SelfDistance()
			sameRoom = true
		}
		path, err := acoustic.NewPath(w.cfg.Channel, w.profile, distance, sameRoom, w.cfg.SampleRate, w.rng)
		if err != nil {
			return nil, err
		}
		dispersed := acoustic.ApplyAllpass(play.samples, path.AllpassCoeffs)
		for _, tap := range path.Taps {
			delaySec := (path.BaseDelaySamples + tap.DelaySamples) / w.cfg.SampleRate
			arrival := dst.Clock().SampleAt(play.startSec + delaySec)
			scaled := make([]float64, len(dispersed))
			for i, v := range dispersed {
				scaled[i] = v * tap.Gain
			}
			audio.MixFloatSinc(acc, scaled, arrival)
		}
	}

	noise, err := w.profile.GenerateNoise(dst.Clock().TrueRate(), n, w.rng)
	if err != nil {
		return nil, err
	}
	for i := range acc {
		acc[i] += noise[i]
	}

	return &audio.Buffer{SampleRate: dst.SampleRate(), Samples: audio.FromFloat(acc)}, nil
}
