// Package world renders the shared acoustic scene: every scheduled speaker
// playback propagates through the channel model to every microphone, then
// each device's recording is quantized to the int16 PCM its detector sees.
// This is the simulation substitute for the paper's physical testbed.
package world

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/device"
)

// Config describes the scene-wide simulation parameters.
type Config struct {
	// SampleRate is the nominal scene sampling rate (44100 Hz).
	SampleRate float64
	// DurationSec is how long every device records.
	DurationSec float64
	// Environment selects the ambient-noise profile.
	Environment acoustic.Environment
	// Channel holds the physical channel constants.
	Channel acoustic.ChannelConfig
}

// DefaultConfig returns a 1.2 s office scene at 44.1 kHz.
func DefaultConfig() Config {
	return Config{
		SampleRate:  44100,
		DurationSec: 1.2,
		Environment: acoustic.EnvOffice,
		Channel:     acoustic.DefaultChannelConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SampleRate <= 0 {
		return errors.New("world: sample rate must be positive")
	}
	if c.DurationSec <= 0 {
		return errors.New("world: duration must be positive")
	}
	return c.Channel.Validate()
}

// playEvent is one scheduled speaker emission.
type playEvent struct {
	src      *device.Device
	samples  []float64
	startSec float64 // global time sound leaves the speaker
}

// World is a single acoustic scene. A World belongs to one session: build
// it, add devices, schedule plays, render, discard. Concurrent sessions
// must each use their own World with their own seeded RNG stream — the
// scene RNG is consumed in a defined sequential order during Render, which
// is what makes a seeded session reproducible. As a safety net the RNG
// draw phase is serialized under an internal lock, so a World erroneously
// shared between goroutines corrupts determinism but not memory.
type World struct {
	cfg     Config
	profile acoustic.Profile
	// mu serializes the Render draw phase (the only consumer of rng once
	// the scene is built).
	mu      sync.Mutex
	rng     *rand.Rand
	devices []*device.Device
	// members mirrors devices for O(1) membership checks in AddDevice and
	// SchedulePlay (scenes with many interferers used to pay a linear scan
	// per scheduled play).
	members map[*device.Device]bool
	plays   []playEvent
}

// New builds a scene. The rng drives noise, reflection geometry, and any
// randomness in scheduled interference; callers seed it for reproducible
// experiments.
func New(cfg Config, rng *rand.Rand) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("world: nil rng")
	}
	return &World{
		cfg:     cfg,
		profile: acoustic.ProfileFor(cfg.Environment),
		rng:     rng,
		devices: nil,
		members: make(map[*device.Device]bool),
		plays:   nil,
	}, nil
}

// Config returns the scene configuration.
func (w *World) Config() Config { return w.cfg }

// AddDevice registers a device in the scene. Its microphone records for the
// scene duration starting at its own clock offset.
func (w *World) AddDevice(d *device.Device) error {
	if d == nil {
		return errors.New("world: nil device")
	}
	if w.members[d] {
		return fmt.Errorf("world: device %q already added", d.Name())
	}
	w.devices = append(w.devices, d)
	w.members[d] = true
	return nil
}

// SchedulePlay queues samples to leave src's speaker at the given global
// time. The samples are in int16 amplitude scale.
//
// Ownership contract: the world keeps a reference to samples instead of
// deep-copying it (reference signals are synthesized per session and never
// mutated, so the copy was pure overhead). The caller must not modify the
// slice until after Render; callers that reuse a scratch waveform buffer
// should pass their own copy.
func (w *World) SchedulePlay(src *device.Device, samples []float64, globalStartSec float64) error {
	if src == nil {
		return errors.New("world: nil source device")
	}
	if !w.members[src] {
		return fmt.Errorf("world: device %q not in scene", src.Name())
	}
	w.plays = append(w.plays, playEvent{src: src, samples: samples, startSec: globalStartSec})
	return nil
}

// renderJob carries the pre-drawn randomness for one device's recording:
// every channel realization plus the ambient noise, in the exact order the
// historical sequential renderer consumed the scene RNG.
type renderJob struct {
	dst   *device.Device
	n     int
	paths []*acoustic.Path // one per scheduled play, in play order
	noise []float64
}

// Render produces each device's recording: the superposition of every
// scheduled play propagated through a freshly drawn channel realization,
// plus the environment's ambient noise, quantized once to int16.
//
// Rendering is split in two phases. Phase one walks devices sequentially
// and draws everything random (channel paths, ambient noise) from the scene
// RNG, preserving the historical draw order so a seeded scene renders
// bit-identically regardless of parallelism. Phase two — the allpass
// cascades and windowed-sinc tap mixing, which dominate render cost and
// touch no shared state — runs each device on a bounded worker pool.
func (w *World) Render() (map[*device.Device]*audio.Buffer, error) {
	jobs, err := w.drawJobs()
	if err != nil {
		return nil, err
	}

	bufs := make([]*audio.Buffer, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for di := range jobs {
			bufs[di] = w.mix(&jobs[di])
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for di := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(di int) {
				defer wg.Done()
				bufs[di] = w.mix(&jobs[di])
				<-sem
			}(di)
		}
		wg.Wait()
	}

	out := make(map[*device.Device]*audio.Buffer, len(w.devices))
	for di, dst := range w.devices {
		out[dst] = bufs[di]
	}
	return out, nil
}

// drawJobs is Render's phase one: walk devices sequentially and draw
// everything random (channel paths, ambient noise) from the scene RNG in
// the historical order, under the scene lock.
func (w *World) drawJobs() ([]renderJob, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	jobs := make([]renderJob, len(w.devices))
	for di, dst := range w.devices {
		job := renderJob{
			dst:   dst,
			n:     int(w.cfg.DurationSec * dst.Clock().TrueRate()),
			paths: make([]*acoustic.Path, len(w.plays)),
		}
		for pi, play := range w.plays {
			distance := play.src.DistanceTo(dst)
			sameRoom := play.src.SameRoom(dst)
			if play.src == dst {
				distance = dst.SelfDistance()
				sameRoom = true
			}
			path, err := acoustic.NewPath(w.cfg.Channel, w.profile, distance, sameRoom, w.cfg.SampleRate, w.rng)
			if err != nil {
				return nil, fmt.Errorf("world: render for %q: %w", dst.Name(), err)
			}
			job.paths[pi] = path
		}
		noise, err := w.profile.GenerateNoise(dst.Clock().TrueRate(), job.n, w.rng)
		if err != nil {
			return nil, fmt.Errorf("world: render for %q: %w", dst.Name(), err)
		}
		job.noise = noise
		jobs[di] = job
	}
	return jobs, nil
}

// mix computes one microphone's recording from pre-drawn randomness. It is
// the render hot path: per play one allpass cascade into workspace-owned
// scratch, then one gain-folded windowed-sinc mix per tap — no per-play or
// per-tap heap allocations.
func (w *World) mix(job *renderJob) *audio.Buffer {
	acc := make([]float64, job.n)
	var allpass acoustic.AllpassWorkspace

	for pi, play := range w.plays {
		path := job.paths[pi]
		dispersed := allpass.Apply(play.samples, path.AllpassCoeffs)
		for _, tap := range path.Taps {
			delaySec := (path.BaseDelaySamples + tap.DelaySamples) / w.cfg.SampleRate
			arrival := job.dst.Clock().SampleAt(play.startSec + delaySec)
			audio.MixFloatSincGain(acc, dispersed, arrival, tap.Gain)
		}
	}

	for i := range acc {
		acc[i] += job.noise[i]
	}
	return &audio.Buffer{SampleRate: job.dst.SampleRate(), Samples: audio.FromFloat(acc)}
}
