package world

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/device"
)

// Config describes the scene-wide simulation parameters.
type Config struct {
	// SampleRate is the nominal scene sampling rate (44100 Hz).
	SampleRate float64
	// DurationSec is how long every device records.
	DurationSec float64
	// Environment selects the ambient-noise profile.
	Environment acoustic.Environment
	// Channel holds the physical channel constants.
	Channel acoustic.ChannelConfig
}

// DefaultConfig returns a 1.2 s office scene at 44.1 kHz.
func DefaultConfig() Config {
	return Config{
		SampleRate:  44100,
		DurationSec: 1.2,
		Environment: acoustic.EnvOffice,
		Channel:     acoustic.DefaultChannelConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SampleRate <= 0 {
		return errors.New("world: sample rate must be positive")
	}
	if c.DurationSec <= 0 {
		return errors.New("world: duration must be positive")
	}
	return c.Channel.Validate()
}

// playEvent is one scheduled speaker emission.
type playEvent struct {
	src      *device.Device
	samples  []float64
	startSec float64 // global time sound leaves the speaker
}

// World is a single acoustic scene. A World belongs to one session: build
// it, add devices, schedule plays, render, discard. Concurrent sessions
// must each use their own World with their own seeded RNG stream — the
// scene RNG is consumed in a defined sequential order during Render, which
// is what makes a seeded session reproducible. As a safety net the RNG
// draw phase is serialized under an internal lock, so a World erroneously
// shared between goroutines corrupts determinism but not memory.
type World struct {
	cfg     Config
	profile acoustic.Profile
	// mu serializes the Render draw phase (the only consumer of rng once
	// the scene is built).
	mu      sync.Mutex
	rng     *rand.Rand
	devices []*device.Device
	// members mirrors devices for O(1) membership checks in AddDevice and
	// SchedulePlay (scenes with many interferers used to pay a linear scan
	// per scheduled play).
	members map[*device.Device]bool
	plays   []playEvent
}

// New builds a scene. The rng drives noise, reflection geometry, and any
// randomness in scheduled interference; callers seed it for reproducible
// experiments.
func New(cfg Config, rng *rand.Rand) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("world: nil rng")
	}
	return &World{
		cfg:     cfg,
		profile: acoustic.ProfileFor(cfg.Environment),
		rng:     rng,
		devices: nil,
		members: make(map[*device.Device]bool),
		plays:   nil,
	}, nil
}

// Config returns the scene configuration.
func (w *World) Config() Config { return w.cfg }

// AddDevice registers a device in the scene. Its microphone records for the
// scene duration starting at its own clock offset.
func (w *World) AddDevice(d *device.Device) error {
	if d == nil {
		return errors.New("world: nil device")
	}
	if w.members[d] {
		return fmt.Errorf("world: device %q already added", d.Name())
	}
	w.devices = append(w.devices, d)
	w.members[d] = true
	return nil
}

// SchedulePlay queues samples to leave src's speaker at the given global
// time. The samples are in int16 amplitude scale.
//
// Ownership contract: the world keeps a reference to samples instead of
// deep-copying it (reference signals are synthesized per session and never
// mutated, so the copy was pure overhead). The caller must not modify the
// slice until after Render; callers that reuse a scratch waveform buffer
// should pass their own copy.
func (w *World) SchedulePlay(src *device.Device, samples []float64, globalStartSec float64) error {
	if src == nil {
		return errors.New("world: nil source device")
	}
	if !w.members[src] {
		return fmt.Errorf("world: device %q not in scene", src.Name())
	}
	w.plays = append(w.plays, playEvent{src: src, samples: samples, startSec: globalStartSec})
	return nil
}

// renderJob carries the pre-drawn randomness for one device's recording:
// every channel realization plus the ambient noise, in the exact order the
// historical sequential renderer consumed the scene RNG.
type renderJob struct {
	dst   *device.Device
	n     int
	paths []*acoustic.Path // one per scheduled play, in play order
	noise []float64
}

// Render produces each device's recording: the superposition of every
// scheduled play propagated through a freshly drawn channel realization,
// plus the environment's ambient noise, quantized once to int16.
//
// Rendering is split in two phases. Phase one walks devices sequentially
// and draws everything random (channel paths, ambient noise) from the scene
// RNG, preserving the historical draw order so a seeded scene renders
// bit-identically regardless of parallelism. Phase two — the allpass
// cascades and windowed-sinc tap mixing, which dominate render cost and
// touch no shared state — runs each device on a bounded worker pool.
func (w *World) Render() (map[*device.Device]*audio.Buffer, error) {
	jobs, err := w.drawJobs()
	if err != nil {
		return nil, err
	}

	bufs := make([]*audio.Buffer, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for di := range jobs {
			bufs[di] = w.mix(&jobs[di])
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for di := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(di int) {
				defer wg.Done()
				bufs[di] = w.mix(&jobs[di])
				<-sem
			}(di)
		}
		wg.Wait()
	}

	out := make(map[*device.Device]*audio.Buffer, len(w.devices))
	for di, dst := range w.devices {
		out[dst] = bufs[di]
	}
	return out, nil
}

// drawJobs is Render's phase one: walk devices sequentially and draw
// everything random (channel paths, ambient noise) from the scene RNG in
// the historical order, under the scene lock.
func (w *World) drawJobs() ([]renderJob, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	jobs := make([]renderJob, len(w.devices))
	for di, dst := range w.devices {
		job := renderJob{
			dst:   dst,
			n:     int(w.cfg.DurationSec * dst.Clock().TrueRate()),
			paths: make([]*acoustic.Path, len(w.plays)),
		}
		for pi, play := range w.plays {
			distance := play.src.DistanceTo(dst)
			sameRoom := play.src.SameRoom(dst)
			if play.src == dst {
				distance = dst.SelfDistance()
				sameRoom = true
			}
			path, err := acoustic.NewPath(w.cfg.Channel, w.profile, distance, sameRoom, w.cfg.SampleRate, w.rng)
			if err != nil {
				return nil, fmt.Errorf("world: render for %q: %w", dst.Name(), err)
			}
			job.paths[pi] = path
		}
		noise, err := w.profile.GenerateNoise(dst.Clock().TrueRate(), job.n, w.rng)
		if err != nil {
			return nil, fmt.Errorf("world: render for %q: %w", dst.Name(), err)
		}
		job.noise = noise
		jobs[di] = job
	}
	return jobs, nil
}

// mix computes one microphone's recording from pre-drawn randomness. It is
// the render hot path: per play one allpass cascade into workspace-owned
// scratch, then the path's taps folded into one composite sparse FIR
// (acoustic.Path.CompositeKernel) applied by a single convolution
// (audio.MixSparseFIR) — exactly one convolution per play per path, and a
// per-path-constant number of heap allocations however many taps the channel
// has.
//
// Folding the taps first changes the floating-point summation order relative
// to the historical per-tap loop (kept below as mixNaive / RenderNaive, the
// parity oracle): coefficients that land on the same destination sample are
// summed inside the kernel before multiplying the source sample, instead of
// accumulating per tap. Outputs therefore agree with the oracle to ~1e-12
// relative — not bit-exactly — which is why the golden recordings under
// testdata/ were re-baselined for this path (procedure: world_golden_test.go
// and PERFORMANCE.md).
func (w *World) mix(job *renderJob) *audio.Buffer {
	return &audio.Buffer{SampleRate: job.dst.SampleRate(), Samples: audio.FromFloat(w.mixFloat(job))}
}

// mixFloat is mix before int16 quantization; split out so parity tests can
// compare the composite and naive mixers in the float domain, where sub-LSB
// differences are visible.
func (w *World) mixFloat(job *renderJob) []float64 {
	acc := make([]float64, job.n)
	var allpass acoustic.AllpassWorkspace
	rate := job.dst.Clock().TrueRate() / w.cfg.SampleRate

	for pi, play := range w.plays {
		path := job.paths[pi]
		dispersed := allpass.Apply(play.samples, path.AllpassCoeffs)
		base := job.dst.Clock().SampleAt(play.startSec + path.BaseDelaySamples/w.cfg.SampleRate)
		audio.MixSparseFIR(acc, dispersed, path.CompositeKernel(base, rate))
	}

	for i := range acc {
		acc[i] += job.noise[i]
	}
	return acc
}

// mixNaive is the historical per-tap mixing loop: one gain-folded
// windowed-sinc mix per impulse-response tap. Kept as the composite kernel's
// test oracle (the CrossCorrelateNaive pattern): it consumes the same
// pre-drawn renderJob, so a seeded scene rendered through RenderNaive is the
// tap-by-tap ground truth the composite path must match to ~1e-9 relative.
func (w *World) mixNaive(job *renderJob) *audio.Buffer {
	return &audio.Buffer{SampleRate: job.dst.SampleRate(), Samples: audio.FromFloat(w.mixNaiveFloat(job))}
}

// mixNaiveFloat is mixNaive before int16 quantization (see mixFloat).
func (w *World) mixNaiveFloat(job *renderJob) []float64 {
	acc := make([]float64, job.n)
	var allpass acoustic.AllpassWorkspace

	for pi, play := range w.plays {
		path := job.paths[pi]
		dispersed := allpass.Apply(play.samples, path.AllpassCoeffs)
		for _, tap := range path.Taps {
			delaySec := (path.BaseDelaySamples + tap.DelaySamples) / w.cfg.SampleRate
			arrival := job.dst.Clock().SampleAt(play.startSec + delaySec)
			audio.MixFloatSincGain(acc, dispersed, arrival, tap.Gain)
		}
	}

	for i := range acc {
		acc[i] += job.noise[i]
	}
	return acc
}

// RenderNaive is Render with the historical per-tap mixing loop instead of
// the composite-kernel convolution. It exists as a test oracle and A/B
// benchmark baseline only — it draws from the scene RNG exactly like Render
// (so two worlds built with equal seeds, one rendered each way, see
// identical channel realizations) and runs the mixing phase sequentially.
func (w *World) RenderNaive() (map[*device.Device]*audio.Buffer, error) {
	jobs, err := w.drawJobs()
	if err != nil {
		return nil, err
	}
	out := make(map[*device.Device]*audio.Buffer, len(w.devices))
	for di := range jobs {
		out[jobs[di].dst] = w.mixNaive(&jobs[di])
	}
	return out, nil
}
