package world

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/dsp"
)

func newDevice(t *testing.T, name string, pos [2]float64, room int, offset float64) *device.Device {
	t.Helper()
	d, err := device.New(device.Config{
		Name:           name,
		Position:       pos,
		Room:           room,
		SampleRate:     44100,
		ClockOffsetSec: offset,
		ProcDelay:      device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func quietWorld(t *testing.T, dur float64) *World {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Environment = acoustic.EnvQuiet
	cfg.DurationSec = dur
	w, err := New(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleRate = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	cfg = DefaultConfig()
	cfg.DurationSec = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	cfg = DefaultConfig()
	cfg.Channel.RefGain = -1
	if err := cfg.Validate(); err == nil {
		t.Error("bad channel accepted")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestAddDeviceDuplicates(t *testing.T) {
	w := quietWorld(t, 0.2)
	d := newDevice(t, "a", [2]float64{0, 0}, 0, 0)
	if err := w.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDevice(d); err == nil {
		t.Error("duplicate accepted")
	}
	if err := w.AddDevice(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestSchedulePlayRequiresMembership(t *testing.T) {
	w := quietWorld(t, 0.2)
	d := newDevice(t, "a", [2]float64{0, 0}, 0, 0)
	if err := w.SchedulePlay(d, []float64{1}, 0); err == nil {
		t.Error("non-member accepted")
	}
	if err := w.SchedulePlay(nil, []float64{1}, 0); err == nil {
		t.Error("nil source accepted")
	}
}

// TestRenderPropagationDelay plants an impulse-like tone and verifies the
// receiving device records it delayed by distance/343 seconds and
// attenuated by the channel gain.
func TestRenderPropagationDelay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Environment = acoustic.EnvQuiet
	cfg.DurationSec = 0.5
	cfg.Channel.TransducerTaps = 0
	w, err := New(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	src := newDevice(t, "src", [2]float64{0, 0}, 0, 0)
	dst := newDevice(t, "dst", [2]float64{1.0, 0}, 0, 0)
	if err := w.AddDevice(src); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDevice(dst); err != nil {
		t.Fatal(err)
	}

	// A 1000-sample tone burst leaving at t=0.1 s.
	tone, err := dsp.Sine(10000, 10000, 0, 44100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SchedulePlay(src, tone, 0.1); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Render()
	if err != nil {
		t.Fatal(err)
	}

	rec := recs[dst].Float()
	// Expected arrival: (0.1 + 1/343)·44100 ≈ 4538.6 samples. The
	// windowed-sinc fractional delay pre-rings by a few low-amplitude
	// samples, so threshold at a substantial fraction of the peak.
	wantArrival := (0.1 + 1.0/acoustic.SpeedOfSoundMPS) * 44100
	first := -1
	for i, v := range rec {
		if math.Abs(v) > 2000 {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("tone never arrived")
	}
	if math.Abs(float64(first)-wantArrival) > 6 {
		t.Fatalf("arrival at %d, want ≈%g", first, wantArrival)
	}

	// Amplitude ≈ gain(1 m)·10000 = 0.5·10000.
	peak := dsp.PeakAbs(rec[first : first+1000])
	wantPeak := cfg.Channel.Gain(1.0) * 10000
	if peak < 0.6*wantPeak || peak > 1.6*wantPeak {
		t.Fatalf("peak %g, want ≈%g", peak, wantPeak)
	}

	// The source's own recording starts earlier (self distance) and is
	// louder (clamped gain).
	srcRec := recs[src].Float()
	srcFirst := -1
	for i, v := range srcRec {
		if math.Abs(v) > 100 {
			srcFirst = i
			break
		}
	}
	if srcFirst < 0 || srcFirst >= first {
		t.Fatalf("self arrival %d not before remote %d", srcFirst, first)
	}
}

// TestRenderClockOffsetShiftsArrival verifies recordings are in each
// device's private time coordinate.
func TestRenderClockOffsetShiftsArrival(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Environment = acoustic.EnvQuiet
	cfg.DurationSec = 0.5
	w, err := New(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	src := newDevice(t, "src", [2]float64{0, 0}, 0, 0)
	late := newDevice(t, "late", [2]float64{1, 0}, 0, 0.2) // starts recording at t=0.2
	if err := w.AddDevice(src); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDevice(late); err != nil {
		t.Fatal(err)
	}
	tone, err := dsp.Sine(10000, 10000, 0, 44100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SchedulePlay(src, tone, 0.3); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Render()
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[late].Float()
	first := -1
	for i, v := range rec {
		if math.Abs(v) > 100 {
			first = i
			break
		}
	}
	want := (0.3 + 1.0/acoustic.SpeedOfSoundMPS - 0.2) * 44100
	if first < 0 || math.Abs(float64(first)-want) > 5 {
		t.Fatalf("arrival %d, want ≈%g", first, want)
	}
}

// TestRenderWallAttenuates puts the receiver in another room.
func TestRenderWallAttenuates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Environment = acoustic.EnvQuiet
	cfg.DurationSec = 0.3
	w, err := New(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	src := newDevice(t, "src", [2]float64{0, 0}, 0, 0)
	other := newDevice(t, "other", [2]float64{1, 0}, 1, 0)
	if err := w.AddDevice(src); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDevice(other); err != nil {
		t.Fatal(err)
	}
	tone, err := dsp.Sine(10000, 10000, 0, 44100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SchedulePlay(src, tone, 0.05); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Render()
	if err != nil {
		t.Fatal(err)
	}
	peak := dsp.PeakAbs(recs[other].Float())
	open := cfg.Channel.Gain(1.0) * 10000
	if peak > open*cfg.Channel.WallTransmission*3 {
		t.Fatalf("walled peak %g too loud (open would be %g)", peak, open)
	}
}

func TestRenderNoiseOnlyHasEnvironmentPower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Environment = acoustic.EnvStreet
	cfg.DurationSec = 0.4
	w, err := New(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	d := newDevice(t, "a", [2]float64{0, 0}, 0, 0)
	if err := w.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Render()
	if err != nil {
		t.Fatal(err)
	}
	rms := math.Sqrt(dsp.TotalPower(recs[d].Float()))
	if rms < 1000 { // street hum is 3000 RMS
		t.Fatalf("street recording rms %g too quiet", rms)
	}
}
