// Package simclock models the per-device time coordinates of the paper's
// protocol. Each device has its own Clock: an arbitrary origin offset from
// global simulation time plus a slightly skewed sample clock (crystal ppm
// error). ACTION's Eq. 3 is designed so these never need to be reconciled;
// the simulator keeps them distinct precisely so tests can prove that.
//
// Key conversions: SampleAt maps global seconds to a device's (fractional)
// local sample index; TimeOfSample inverts it; TrueRate is the skewed ADC
// rate the renderer uses while NominalRate is what protocol code believes.
// SampleAt is affine in time — the property the composite-kernel renderer
// relies on to fold per-tap delays into one kernel per play.
package simclock
