package simclock

import "fmt"

// Clock converts between global simulation time (seconds) and a device's
// local sample indices.
type Clock struct {
	// OffsetSec is the global time at which the device's recording
	// (local sample 0) starts.
	OffsetSec float64
	// NominalRate is the sampling rate the device believes it has
	// (e.g. 44100 Hz) and reports to protocol code.
	NominalRate float64
	// SkewPPM is the crystal error: the true rate is
	// NominalRate·(1+SkewPPM·1e-6).
	SkewPPM float64
}

// New validates and builds a Clock.
func New(offsetSec, nominalRate, skewPPM float64) (*Clock, error) {
	if nominalRate <= 0 {
		return nil, fmt.Errorf("simclock: nominal rate %g must be positive", nominalRate)
	}
	return &Clock{OffsetSec: offsetSec, NominalRate: nominalRate, SkewPPM: skewPPM}, nil
}

// TrueRate returns the actual samples-per-second of the device's ADC.
func (c *Clock) TrueRate() float64 {
	return c.NominalRate * (1 + c.SkewPPM*1e-6)
}

// SampleAt returns the (fractional) local sample index corresponding to
// global time t seconds.
func (c *Clock) SampleAt(globalSec float64) float64 {
	return (globalSec - c.OffsetSec) * c.TrueRate()
}

// TimeOfSample returns the global time at which local sample index s is
// captured.
func (c *Clock) TimeOfSample(s float64) float64 {
	return c.OffsetSec + s/c.TrueRate()
}
