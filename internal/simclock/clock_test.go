package simclock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := New(0, -44100, 0); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestTrueRateSkew(t *testing.T) {
	c, err := New(0, 44100, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := 44100 * (1 + 20e-6)
	if math.Abs(c.TrueRate()-want) > 1e-9 {
		t.Fatalf("TrueRate = %g, want %g", c.TrueRate(), want)
	}
}

func TestSampleTimeRoundTrip(t *testing.T) {
	f := func(offset, skew float64, sRaw uint32) bool {
		offset = math.Mod(offset, 100)
		skew = math.Mod(skew, 100)
		c, err := New(offset, 44100, skew)
		if err != nil {
			return false
		}
		s := float64(sRaw % 10_000_000)
		back := c.SampleAt(c.TimeOfSample(s))
		return math.Abs(back-s) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleAtOffset(t *testing.T) {
	c, err := New(2.0, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SampleAt(2.0); got != 0 {
		t.Fatalf("SampleAt(offset) = %g", got)
	}
	if got := c.SampleAt(3.0); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("SampleAt(offset+1s) = %g", got)
	}
}
