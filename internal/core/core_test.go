package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/energy"
)

// newPair builds an authenticating device at the origin and a vouching
// device at the given distance, with distinct clock skews.
func newPair(t testing.TB, distM float64, sameRoom bool) (*device.Device, *device.Device) {
	t.Helper()
	authRoom, vouchRoom := 0, 0
	if !sameRoom {
		vouchRoom = 1
	}
	auth, err := device.New(device.Config{
		Name:         "auth",
		Position:     [2]float64{0, 0},
		Room:         authRoom,
		SampleRate:   44100,
		ClockSkewPPM: 18,
		ProcDelay:    device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vouch, err := device.New(device.Config{
		Name:         "vouch",
		Position:     [2]float64{distM, 0},
		Room:         vouchRoom,
		SampleRate:   44100,
		ClockSkewPPM: -24,
		ProcDelay:    device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return auth, vouch
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad signal", func(c *Config) { c.Signal.Length = 1000 }},
		{"bad detect", func(c *Config) { c.Detect.Alpha = 0 }},
		{"bad world", func(c *Config) { c.World.DurationSec = 0 }},
		{"rate mismatch", func(c *Config) { c.World.SampleRate = 48000 }},
		{"zero bt range", func(c *Config) { c.BTRangeM = 0 }},
		{"zero threshold", func(c *Config) { c.ThresholdM = 0 }},
		{"negative lead", func(c *Config) { c.LeadSec = -1 }},
		{"gap shorter than signal", func(c *Config) { c.GapSec = 0.05 }},
		{"negative fft cost", func(c *Config) { c.PhoneFFTSec = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewAuthenticatorValidation(t *testing.T) {
	auth, vouch := newPair(t, 1, true)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewAuthenticator(DefaultConfig(), nil, vouch, rng); err == nil {
		t.Error("nil auth accepted")
	}
	if _, err := NewAuthenticator(DefaultConfig(), auth, vouch, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := DefaultConfig()
	bad.ThresholdM = -1
	if _, err := NewAuthenticator(bad, auth, vouch, rng); err == nil {
		t.Error("bad config accepted")
	}
}

// TestACTIONAccuracyAtOneMeter is the core accuracy gate: distance
// estimation at 1 m in a quiet room must land within a few centimeters.
func TestACTIONAccuracyAtOneMeter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.World.Environment = acoustic.EnvQuiet
	auth, vouch := newPair(t, 1.0, true)
	rng := rand.New(rand.NewSource(2))
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sr, err := a.Measure()
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Found {
			t.Fatalf("trial %d: signal absent (%s)", i, sr.AbsentDetail)
		}
		if e := math.Abs(sr.DistanceM - 1.0); e > 0.13 {
			t.Fatalf("trial %d: distance %.3f m (error %.1f cm)", i, sr.DistanceM, e*100)
		}
	}
}

// TestACTIONClockOffsetInvariance verifies Eq. 3's core property: arbitrary
// per-device clock origins must not move the estimate. RunACTION already
// derives offsets from BT latencies; here we additionally confirm accuracy
// survives extreme skew settings.
func TestACTIONClockOffsetInvariance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.World.Environment = acoustic.EnvQuiet
	auth, err := device.New(device.Config{
		Name: "auth", Position: [2]float64{0, 0}, SampleRate: 44100,
		ClockSkewPPM: 120, ProcDelay: device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vouch, err := device.New(device.Config{
		Name: "vouch", Position: [2]float64{1.5, 0}, SampleRate: 44100,
		ClockSkewPPM: -150, ProcDelay: device.ProcessingDelay{MeanSec: 0.35, JitterSec: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.World.DurationSec = 1.6 // cover the slow vouch processing delay
	rng := rand.New(rand.NewSource(3))
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := a.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Found {
		t.Fatalf("absent: %s", sr.AbsentDetail)
	}
	if e := math.Abs(sr.DistanceM - 1.5); e > 0.13 {
		t.Fatalf("distance %.3f m (error %.1f cm) despite Eq. 3", sr.DistanceM, e*100)
	}
}

func TestAuthenticateGrantAndDeny(t *testing.T) {
	cfg := DefaultConfig()
	cfg.World.Environment = acoustic.EnvOffice
	cfg.ThresholdM = 1.0
	auth, vouch := newPair(t, 0.5, true)
	rng := rand.New(rand.NewSource(4))
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}

	res, err := a.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted || res.Reason != ReasonGranted {
		t.Fatalf("0.5 m ≤ τ=1 m should grant; got %v (%s)", res.Granted, res.Reason)
	}

	// The user walks to 2 m: still detectable, beyond τ.
	vouch.SetPosition([2]float64{2.0, 0})
	res, err = a.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatalf("2 m > τ=1 m granted (distance %.2f)", res.DistanceM)
	}
	if res.Reason != ReasonDistanceExceedsThreshold && res.Reason != ReasonSignalAbsent {
		t.Fatalf("unexpected reason %s", res.Reason)
	}
}

func TestAuthenticateDeniesThroughWall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.World.Environment = acoustic.EnvOffice
	auth, vouch := newPair(t, 1.0, false) // adjacent rooms
	rng := rand.New(rand.NewSource(5))
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("granted through a wall")
	}
	if res.Reason != ReasonSignalAbsent {
		t.Fatalf("reason %s, want signal absent", res.Reason)
	}
}

func TestAuthenticateDeniesFarApart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.World.Environment = acoustic.EnvOffice
	auth, vouch := newPair(t, 4.0, true) // beyond d_s ≈ 2.5 m
	rng := rand.New(rand.NewSource(6))
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatalf("granted at 4 m (distance %.2f)", res.DistanceM)
	}
}

func TestAuthenticateOutOfBluetoothRange(t *testing.T) {
	cfg := DefaultConfig()
	auth, vouch := newPair(t, 1.0, true)
	rng := rand.New(rand.NewSource(7))
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	vouch.SetPosition([2]float64{12, 0}) // beyond the 10 m BT range
	res, err := a.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted || res.Reason != ReasonBluetoothOutOfRange {
		t.Fatalf("got %v (%s)", res.Granted, res.Reason)
	}
	if res.Session != nil {
		t.Fatal("ACTION should not run when BT is out of range")
	}
}

func TestSetThreshold(t *testing.T) {
	auth, vouch := newPair(t, 1.0, true)
	a, err := NewAuthenticator(DefaultConfig(), auth, vouch, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetThreshold(0.5); err != nil {
		t.Fatal(err)
	}
	if a.Config().ThresholdM != 0.5 {
		t.Fatal("threshold not applied")
	}
	if err := a.SetThreshold(0); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if a.AuthDevice() != auth || a.VouchDevice() != vouch {
		t.Fatal("device accessors")
	}
}

func TestEnergyAndTimingAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.World.Environment = acoustic.EnvOffice
	auth, vouch := newPair(t, 1.0, true)
	rng := rand.New(rand.NewSource(9))
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := energy.NewLedger(energy.DefaultPowerModel())
	if err != nil {
		t.Fatal(err)
	}
	battery, err := energy.NewBattery(energy.GalaxyS4CapacityJoules)
	if err != nil {
		t.Fatal(err)
	}
	a.TrackEnergy(ledger, battery)

	sr, err := a.Measure()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "authentication can be finished within 3 seconds".
	if sr.AuthTimeSec <= 0.5 || sr.AuthTimeSec > 3.5 {
		t.Fatalf("modeled auth time %.2f s outside the prototype band", sr.AuthTimeSec)
	}
	if sr.WindowsScanned <= 0 || sr.DetectSeconds <= 0 {
		t.Fatal("cost accounting missing")
	}
	if ledger.TotalJoules() <= 0 {
		t.Fatal("ledger not charged")
	}
	if math.Abs(battery.UsedJoules()-ledger.TotalJoules()) > 1e-9 {
		t.Fatalf("battery %.3f J vs ledger %.3f J", battery.UsedJoules(), ledger.TotalJoules())
	}
	// Single-auth energy should be on the order of a couple of joules
	// (0.6% battery per 100 auths ⇒ ≈2.1 J each).
	if j := ledger.TotalJoules(); j < 0.5 || j > 5 {
		t.Fatalf("per-auth energy %.2f J outside plausible band", j)
	}
}

func TestRunACTIONValidation(t *testing.T) {
	cfg := DefaultConfig()
	auth, vouch := newPair(t, 1.0, true)
	rng := rand.New(rand.NewSource(10))
	if _, err := RunACTION(cfg, nil, vouch, nil, nil, rng, nil); err == nil {
		t.Error("nil links accepted")
	}
	a, err := NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Extra play sharing a protocol device must be rejected.
	if _, err := a.Measure(ExtraPlay{Device: auth, Samples: []float64{1}}); err == nil {
		t.Error("extra play on protocol device accepted")
	}
	if _, err := a.Measure(ExtraPlay{}); err == nil {
		t.Error("nil extra device accepted")
	}
	// Too-short recording window should error, not silently truncate.
	short := cfg
	short.World.DurationSec = 0.3
	b, err := NewAuthenticator(short, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Measure(); err == nil {
		t.Error("short recording accepted")
	}
}

func TestLocDiffCodec(t *testing.T) {
	m := locDiffMsg{diff: -12345, rate: 44100}
	got, err := decodeLocDiff(encodeLocDiff(m))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := decodeLocDiff([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonGranted:                  "granted",
		ReasonBluetoothOutOfRange:      "denied: vouching device out of Bluetooth range",
		ReasonSignalAbsent:             "denied: reference signal not present",
		ReasonDistanceExceedsThreshold: "denied: distance exceeds threshold",
		Reason(42):                     "reason(42)",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q", r, got)
		}
	}
}
