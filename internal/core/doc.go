// Package core implements the paper's two contributions: the ACTION
// acoustic distance-estimation protocol (Steps I–VI of §IV) and the PIANO
// proximity-based authenticator built on top of it.
//
// Key entry points: RunACTION executes one complete distance estimation —
// signal construction (sigref), descriptor exchange over the secure channel
// (bluetooth), scene render (world), two-signal detection on each device
// (detect), and the clock-offset-free Eq. 3 distance. RunACTIONWith is the
// same session with service-owned machinery injected via SessionDeps (a
// shared detect.Detector whose Config must equal the session's — a mismatch
// is rejected rather than silently diverging). Authenticator wraps the
// protocol in the paper's Algorithm 1 decision rule with the τ threshold;
// ExtraPlay injects interferers and attackers into the scene.
//
// OpenACTIONStream is the online form of the same session: Steps I–III
// run eagerly, then Step IV consumes each role's PCM in chunks
// (SessionStream.Feed) through detect.Stream, and TryResult finalizes
// Steps V–VI once every role has fed past its early horizon — the sample
// index by which all scheduled playbacks plus worst-case propagation have
// provably passed, which is what makes the early decision bit-identical
// to the batch RunACTIONWith result. AuthStream wraps it in the
// Authenticator decision rule.
//
// Invariants: a session's rng must be private to it — every draw happens in
// a fixed sequential order, which is what makes a seeded session
// reproducible and concurrent service sessions bit-identical to serial
// runs. ExtraPlay.Samples are scheduled by reference and never written;
// callers must not mutate them while a session is in flight. The two
// devices' detections run in parallel goroutines, but each scan reduces
// deterministically, so the session result does not depend on scheduling.
package core
