package core

import (
	"testing"
)

// TestSameIndexSet covers the Step-I collision guard: identical frequency
// sets between S_A and S_V would let each device detect its own play as
// both signals, collapsing the distance to zero with the user absent.
func TestSameIndexSet(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, nil, true},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 3}, false},
		{[]int{1, 2}, []int{1, 2, 3}, false},
		{[]int{1}, nil, false},
	}
	for _, c := range cases {
		if got := sameIndexSet(c.a, c.b); got != c.want {
			t.Errorf("sameIndexSet(%v, %v) = %v", c.a, c.b, got)
		}
	}
}
