package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/bluetooth"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/energy"
)

// Reason explains an authentication decision.
type Reason int

// Decision reasons, in the order PIANO's authentication phase checks them.
const (
	// ReasonGranted: estimated distance ≤ τ.
	ReasonGranted Reason = iota + 1
	// ReasonBluetoothOutOfRange: the vouching device is unreachable, so
	// access is denied without estimating distance (and FAR is 0).
	ReasonBluetoothOutOfRange
	// ReasonSignalAbsent: a reference signal was not present in a
	// recording (⊥) — devices too far apart, separated by a wall, or a
	// spoofing attempt tripped the sanity checks.
	ReasonSignalAbsent
	// ReasonDistanceExceedsThreshold: distance measured fine but > τ.
	ReasonDistanceExceedsThreshold
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonGranted:
		return "granted"
	case ReasonBluetoothOutOfRange:
		return "denied: vouching device out of Bluetooth range"
	case ReasonSignalAbsent:
		return "denied: reference signal not present"
	case ReasonDistanceExceedsThreshold:
		return "denied: distance exceeds threshold"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Result is one authentication decision.
type Result struct {
	// Granted is the access decision.
	Granted bool
	// Reason explains it.
	Reason Reason
	// DistanceM is the ACTION estimate (valid when Session.Found).
	DistanceM float64
	// Session holds the protocol internals; nil when the decision was
	// made before ACTION ran (e.g. Bluetooth out of range).
	Session *SessionResult
}

// Authenticator is a registered PIANO pairing: one authenticating device
// guarded by one vouching device.
type Authenticator struct {
	cfg       Config
	auth      *device.Device
	vouch     *device.Device
	linkAuth  *bluetooth.Link
	linkVouch *bluetooth.Link
	rng       *rand.Rand
	det       *detect.Detector
	ledger    *energy.Ledger
	battery   *energy.Battery
}

// NewAuthenticator performs the registration phase (Bluetooth pairing with
// key agreement) and returns a ready authenticator.
func NewAuthenticator(cfg Config, auth, vouch *device.Device, rng *rand.Rand) (*Authenticator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if auth == nil || vouch == nil {
		return nil, errors.New("core: nil device")
	}
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	la, lv, err := bluetooth.Pair(auth, vouch, cfg.BTLatency, cfg.BTRangeM)
	if err != nil {
		return nil, fmt.Errorf("core: registration: %w", err)
	}
	return &Authenticator{
		cfg:       cfg,
		auth:      auth,
		vouch:     vouch,
		linkAuth:  la,
		linkVouch: lv,
		rng:       rng,
	}, nil
}

// Config returns the deployment configuration.
func (a *Authenticator) Config() Config { return a.cfg }

// SetThreshold tunes τ — the personalization knob of the paper's abstract
// ("users can set the authentication threshold to be 0.5 meter if ... 1
// meter is too long to be safe").
func (a *Authenticator) SetThreshold(m float64) error {
	if m <= 0 {
		return errors.New("core: threshold must be positive")
	}
	a.cfg.ThresholdM = m
	return nil
}

// UseDetector attaches a shared Step-IV detector (typically service-owned,
// with a worker pool and pinned FFT plans) so this pairing's sessions stop
// building per-session detection machinery. The detector's parameters must
// equal the deployment's Detect config; sessions fail otherwise. Call
// before authenticating; a nil detector restores self-contained sessions.
func (a *Authenticator) UseDetector(det *detect.Detector) { a.det = det }

// TrackEnergy attaches an energy ledger (and optionally a battery) so
// subsequent authentications account their consumption.
func (a *Authenticator) TrackEnergy(l *energy.Ledger, b *energy.Battery) {
	a.ledger = l
	a.battery = b
}

// AuthDevice returns the authenticating device.
func (a *Authenticator) AuthDevice() *device.Device { return a.auth }

// VouchDevice returns the vouching device.
func (a *Authenticator) VouchDevice() *device.Device { return a.vouch }

// Measure runs ACTION once without making an access decision (the
// distance-accuracy experiments use this directly).
func (a *Authenticator) Measure(extras ...ExtraPlay) (*SessionResult, error) {
	return a.MeasureContext(nil, extras...)
}

// MeasureContext is Measure with cooperative cancellation: the session
// observes ctx between protocol steps and between scan hop blocks,
// returning ctx.Err() once it is done. A nil ctx runs uncancellably.
//
// A canceled session may already have consumed draws from the session RNG,
// so abandoning a session mid-run and retrying it on the same Authenticator
// yields a fresh realization (exactly as a real retry would); sessions that
// complete are bit-identical to uncancellable runs.
func (a *Authenticator) MeasureContext(ctx context.Context, extras ...ExtraPlay) (*SessionResult, error) {
	sr, err := RunACTIONWith(SessionDeps{Detector: a.det, Ctx: ctx}, a.cfg, a.auth, a.vouch, a.linkAuth, a.linkVouch, a.rng, extras)
	if err != nil {
		return nil, err
	}
	a.account(sr)
	return sr, nil
}

// Authenticate executes the paper's authentication phase:
//  1. check the vouching device is reachable over Bluetooth — if not,
//     deny immediately;
//  2. run ACTION;
//  3. grant iff the estimated distance ≤ τ.
func (a *Authenticator) Authenticate(extras ...ExtraPlay) (*Result, error) {
	return a.AuthenticateContext(nil, extras...)
}

// AuthenticateContext is Authenticate with cooperative cancellation (see
// MeasureContext for the contract). A nil ctx runs uncancellably.
func (a *Authenticator) AuthenticateContext(ctx context.Context, extras ...ExtraPlay) (*Result, error) {
	if !a.linkAuth.InRange() {
		return &Result{Granted: false, Reason: ReasonBluetoothOutOfRange}, nil
	}
	sr, err := a.MeasureContext(ctx, extras...)
	if err != nil {
		return nil, err
	}
	return a.decide(sr), nil
}

// decide maps one completed ACTION run onto the access decision: deny on ⊥,
// grant iff the estimated distance ≤ τ. Shared verbatim between the batch
// path (AuthenticateContext) and the streaming path (AuthStream), so a
// streamed session's decision is byte-identical to the batch decision for
// the same SessionResult.
func (a *Authenticator) decide(sr *SessionResult) *Result {
	if !sr.Found {
		return &Result{Granted: false, Reason: ReasonSignalAbsent, Session: sr}
	}
	if sr.DistanceM > a.cfg.ThresholdM {
		return &Result{
			Granted:   false,
			Reason:    ReasonDistanceExceedsThreshold,
			DistanceM: sr.DistanceM,
			Session:   sr,
		}
	}
	return &Result{
		Granted:   true,
		Reason:    ReasonGranted,
		DistanceM: sr.DistanceM,
		Session:   sr,
	}
}

// account books one session's energy into the attached ledger/battery.
func (a *Authenticator) account(sr *SessionResult) {
	if a.ledger == nil || sr == nil {
		return
	}
	a.ledger.RecordMic(sr.RecordSeconds)
	a.ledger.RecordSpeaker(sr.PlaySeconds)
	a.ledger.RecordCPU(sr.DetectSeconds + a.cfg.SigConstructSec)
	a.ledger.RecordBluetooth(sr.BTSeconds)
	a.ledger.RecordBaseline(sr.AuthTimeSec)
	if a.battery != nil {
		m := a.ledger.Model()
		j := m.MicW*sr.RecordSeconds +
			m.SpeakerW*sr.PlaySeconds +
			m.CPUW*(sr.DetectSeconds+a.cfg.SigConstructSec) +
			m.BluetoothW*sr.BTSeconds +
			m.BaselineW*sr.AuthTimeSec
		a.battery.Drain(j)
	}
}
