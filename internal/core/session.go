package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sync"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/audio"
	"github.com/acoustic-auth/piano/internal/bluetooth"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/sigref"
	"github.com/acoustic-auth/piano/internal/world"
)

// ExtraPlay injects an additional acoustic emission into a session's scene:
// other PIANO users (Fig. 2a), spoofing attackers (§VI-E), or any ambient
// source. The playing device must be distinct from the protocol devices.
type ExtraPlay struct {
	// Device is the emitting device (position/room already set).
	Device *device.Device
	// Samples is the waveform on the int16 amplitude scale.
	//
	// Ownership: the session schedules this slice by reference (see
	// world.SchedulePlay) — it is read, never written, but the caller must
	// not mutate it until the session that consumed the play returns.
	// Callers that reuse a scratch waveform buffer across sessions must
	// pass a private copy per session. Sharing one (immutable) slice
	// across several ExtraPlays is fine.
	Samples []float64
	// AtSec schedules the emission at a global time; ignored if Random.
	AtSec float64
	// Random schedules the emission uniformly over the recording span.
	Random bool
}

// SessionDeps injects long-lived, service-owned machinery into a session.
// The zero value makes RunACTION self-contained (it builds what it needs
// per session); a batching service fills it in so concurrent sessions
// share one bounded detect worker pool, one pooled scratch arena, and one
// pinned FFT plan per window length.
type SessionDeps struct {
	// Detector, when non-nil, performs the Step-IV scans. Its Config must
	// equal cfg.Detect — results would silently diverge from the session's
	// declared parameters otherwise, so RunACTIONWith rejects a mismatch.
	// The detector must be safe for concurrent use (detect.Detector is).
	Detector *detect.Detector
	// Ctx, when non-nil, cancels the session cooperatively: RunACTIONWith
	// checks it between protocol steps and threads it into the Step-IV
	// scans, which observe it between hop blocks. A canceled session
	// returns ctx.Err() and stops burning pool workers mid-scan; sessions
	// that complete are bit-identical to uncancellable runs (checkpoints
	// never reorder or change any computation).
	Ctx context.Context
}

// Degraded reports the transport loss a streaming decision survived: the
// session decided from the audio that arrived, with the lost spans'
// windows excluded from scoring and the exact-at-peak candidate bands
// verified intact. Populated only on decisions made over a lossy feed —
// clean sessions (and the batch pipeline) carry a nil report.
type Degraded struct {
	// LostSamples counts samples declared lost across both roles' feeds.
	LostSamples int
	// LostWindows counts the coarse grid windows those spans excluded
	// from scoring, across both roles.
	LostWindows int
}

// SessionResult captures one full run of ACTION.
type SessionResult struct {
	// DistanceM is the Eq. 3 estimate; valid only when Found.
	DistanceM float64
	// Found is false when any of the four detections returned ⊥.
	Found bool
	// AbsentDetail names the detection that came back ⊥ (diagnostics).
	AbsentDetail string

	// Raw detected locations (sample indices in each device's recording).
	LocAA, LocAV, LocVA, LocVV int

	// AuthTimeSec is the modeled wall-clock duration of the whole
	// authentication on the prototype handset.
	AuthTimeSec float64
	// BTSeconds is the modeled total Bluetooth exchange time.
	BTSeconds float64
	// DetectSeconds is the modeled detection CPU time on the
	// authenticating device.
	DetectSeconds float64
	// RecordSeconds is the microphone capture duration.
	RecordSeconds float64
	// PlaySeconds is the speaker playback duration on the authenticating
	// device.
	PlaySeconds float64
	// WindowsScanned counts NormPower evaluations on the authenticating
	// device (shared coarse scan counted once).
	WindowsScanned int

	// Degraded is the lossy-transport accounting of a streaming decision
	// that survived loss; nil for clean feeds and batch sessions.
	Degraded *Degraded
}

// sameIndexSet reports whether two sorted index slices are identical.
func sameIndexSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ctxErr reports a done context without blocking; a nil ctx (the
// uncancellable session form) never errs.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// locDiffMsg is the Step V payload: the vouching device's local location
// difference l_VV − l_VA plus its nominal sampling rate.
type locDiffMsg struct {
	diff int64
	rate float64
}

func encodeLocDiff(m locDiffMsg) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(m.diff))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(m.rate))
	return buf
}

func decodeLocDiff(data []byte) (locDiffMsg, error) {
	if len(data) != 16 {
		return locDiffMsg{}, fmt.Errorf("core: location-difference payload is %d bytes, want 16", len(data))
	}
	return locDiffMsg{
		diff: int64(binary.LittleEndian.Uint64(data[0:8])),
		rate: math.Float64frombits(binary.LittleEndian.Uint64(data[8:16])),
	}, nil
}

// RunACTION executes one complete distance estimation between the
// authenticating device (linkAuth.local side) and the vouching device over
// a freshly rendered acoustic scene. It is the self-contained form of
// RunACTIONWith: every session builds its own detector.
//
// The returned SessionResult carries both the protocol outcome and the
// modeled time/energy figures for the efficiency experiment.
func RunACTION(
	cfg Config,
	auth, vouch *device.Device,
	linkAuth, linkVouch *bluetooth.Link,
	rng *rand.Rand,
	extras []ExtraPlay,
) (*SessionResult, error) {
	return RunACTIONWith(SessionDeps{}, cfg, auth, vouch, linkAuth, linkVouch, rng, extras)
}

// sessionPrep carries a session from the end of Step III (scene rendered,
// recordings in hand) to Steps IV–VI. Splitting the pipeline here is what
// lets Step IV run either as the batch scan (RunACTIONWith) or as the
// incremental per-device feed (SessionStream) over identical state: both
// paths share prepareACTION and finishACTION verbatim, so every RNG draw
// and every arithmetic step outside Step IV is common by construction.
type sessionPrep struct {
	deps SessionDeps
	cfg  Config

	auth, vouch         *device.Device
	linkAuth, linkVouch *bluetooth.Link
	rng                 *rand.Rand

	// The authenticating device's constructed signals and the vouching
	// device's decoded copies (Step II ships descriptors, not samples).
	sigA, sigV           *sigref.Signal
	vouchSigA, vouchSigV *sigref.Signal

	// recs are the rendered per-device recordings.
	recs map[*device.Device]*audio.Buffer
	det  *detect.Detector

	// Timeline (global seconds): latencies, play commands, recording end.
	lat1, lat2   float64
	playA, playV float64
	sigDur       float64
	recEnd       float64
}

// RunACTIONWith is RunACTION with injected service context (see
// SessionDeps). The rng must be private to this session: every draw it
// makes (signal construction, latency and processing-delay realizations,
// channel geometry, ambient noise) happens in a fixed sequential order, so
// a per-session seeded stream makes concurrent sessions bit-identical to
// serial ones; a stream shared across concurrent sessions would be both a
// data race and a determinism break.
func RunACTIONWith(
	deps SessionDeps,
	cfg Config,
	auth, vouch *device.Device,
	linkAuth, linkVouch *bluetooth.Link,
	rng *rand.Rand,
	extras []ExtraPlay,
) (*SessionResult, error) {
	p, err := prepareACTION(deps, cfg, auth, vouch, linkAuth, linkVouch, rng, extras)
	if err != nil {
		return nil, err
	}
	resAuth, resVouch, err := p.detectBatch()
	if err != nil {
		return nil, err
	}
	return p.finishACTION(resAuth, resVouch)
}

// prepareACTION runs Steps I–III: signal construction, the descriptor
// exchange, the session timeline, and the rendered acoustic scene. It
// consumes RNG draws in the exact order the historical monolithic pipeline
// did (signal draws, link latencies, processing delays, world/channel
// draws, extra-play schedules), which is what keeps both Step-IV engines
// bit-identical to each other and to earlier releases.
func prepareACTION(
	deps SessionDeps,
	cfg Config,
	auth, vouch *device.Device,
	linkAuth, linkVouch *bluetooth.Link,
	rng *rand.Rand,
	extras []ExtraPlay,
) (*sessionPrep, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if auth == nil || vouch == nil || linkAuth == nil || linkVouch == nil {
		return nil, errors.New("core: nil device or link")
	}
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	if deps.Detector != nil && deps.Detector.Config() != cfg.Detect {
		return nil, errors.New("core: injected detector parameters differ from session config")
	}
	if err := ctxErr(deps.Ctx); err != nil {
		return nil, err
	}

	// --- Step I: the authenticating device constructs S_A and S_V. ---
	sigA, err := sigref.New(cfg.Signal, rng)
	if err != nil {
		return nil, fmt.Errorf("core: construct S_A: %w", err)
	}
	// S_V must not share S_A's exact frequency set: identical sets make
	// each device detect its own play as both signals (both location
	// differences collapse to zero ⇒ distance 0 ⇒ grant with the user
	// absent). The α/β checks already reject strict sub/supersets, so
	// redrawing on exact equality closes the only dangerous collision.
	var sigV *sigref.Signal
	for tries := 0; ; tries++ {
		sigV, err = sigref.New(cfg.Signal, rng)
		if err != nil {
			return nil, fmt.Errorf("core: construct S_V: %w", err)
		}
		if !sameIndexSet(sigA.Indices(), sigV.Indices()) {
			break
		}
		if tries > 64 {
			return nil, errors.New("core: could not draw distinct reference signals")
		}
	}

	// --- Step II: ship both descriptors over the secure channel. ---
	descA, err := sigA.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal S_A: %w", err)
	}
	descV, err := sigV.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal S_V: %w", err)
	}
	lat1, err := linkAuth.Send(descA, rng)
	if err != nil {
		return nil, fmt.Errorf("core: step II: %w", err)
	}
	lat2, err := linkAuth.Send(descV, rng)
	if err != nil {
		return nil, fmt.Errorf("core: step II: %w", err)
	}
	gotA, err := linkVouch.Recv()
	if err != nil {
		return nil, fmt.Errorf("core: step II recv: %w", err)
	}
	gotB, err := linkVouch.Recv()
	if err != nil {
		return nil, fmt.Errorf("core: step II recv: %w", err)
	}
	vouchSigA, err := sigref.UnmarshalSignal(gotA)
	if err != nil {
		return nil, fmt.Errorf("core: step II decode: %w", err)
	}
	vouchSigV, err := sigref.UnmarshalSignal(gotB)
	if err != nil {
		return nil, fmt.Errorf("core: step II decode: %w", err)
	}

	// --- Timeline. Global t=0 is when the authenticating device starts
	// the session. Recording origins become each device's private clock
	// offset, so Eq. 3's clock-independence is genuinely exercised. ---
	recStartA := cfg.SigConstructSec
	recStartV := recStartA + lat1 + lat2
	if err := auth.ResetClock(recStartA); err != nil {
		return nil, err
	}
	if err := vouch.ResetClock(recStartV); err != nil {
		return nil, err
	}

	cmdA := recStartV + cfg.LeadSec
	playA := cmdA + auth.ProcDelay().Sample(rng)
	cmdV := cmdA + cfg.GapSec
	playV := cmdV + vouch.ProcDelay().Sample(rng)

	sigDur := cfg.Signal.DurationSec()
	recEnd := math.Min(recStartA, recStartV) + cfg.World.DurationSec
	maxProp := cfg.BTRangeM / acoustic.SpeedOfSoundMPS
	if playV+sigDur+maxProp+0.02 > recEnd {
		return nil, fmt.Errorf("core: recording window %.2fs too short for schedule ending %.2fs",
			cfg.World.DurationSec, playV+sigDur+maxProp+0.02)
	}

	// --- Step III: build the scene and play. ---
	// Cancellation checkpoint before the render — the most expensive
	// non-detection phase; an abandoned caller stops here instead of
	// rendering a scene nobody will scan.
	if err := ctxErr(deps.Ctx); err != nil {
		return nil, err
	}
	w, err := world.New(cfg.World, rng)
	if err != nil {
		return nil, err
	}
	if err := w.AddDevice(auth); err != nil {
		return nil, err
	}
	if err := w.AddDevice(vouch); err != nil {
		return nil, err
	}
	added := make(map[*device.Device]bool, len(extras))
	for _, ex := range extras {
		if ex.Device == nil {
			return nil, errors.New("core: extra play with nil device")
		}
		if ex.Device == auth || ex.Device == vouch {
			return nil, errors.New("core: extra play must use a third device")
		}
		if added[ex.Device] {
			continue // one device may emit several plays
		}
		if err := w.AddDevice(ex.Device); err != nil {
			return nil, err
		}
		added[ex.Device] = true
	}
	if err := w.SchedulePlay(auth, sigA.Samples(), playA); err != nil {
		return nil, err
	}
	if err := w.SchedulePlay(vouch, vouchSigV.Samples(), playV); err != nil {
		return nil, err
	}
	for _, ex := range extras {
		at := ex.AtSec
		if ex.Random {
			span := recEnd - recStartV - sigDur
			if span < 0 {
				span = 0
			}
			at = recStartV + rng.Float64()*span
		}
		if err := w.SchedulePlay(ex.Device, ex.Samples, at); err != nil {
			return nil, err
		}
	}
	recs, err := w.Render()
	if err != nil {
		return nil, err
	}

	det := deps.Detector
	if det == nil {
		det, err = detect.New(cfg.Detect)
		if err != nil {
			return nil, err
		}
	}
	return &sessionPrep{
		deps: deps, cfg: cfg,
		auth: auth, vouch: vouch,
		linkAuth: linkAuth, linkVouch: linkVouch,
		rng:  rng,
		sigA: sigA, sigV: sigV,
		vouchSigA: vouchSigA, vouchSigV: vouchSigV,
		recs: recs, det: det,
		lat1: lat1, lat2: lat2,
		playA: playA, playV: playV,
		sigDur: sigDur, recEnd: recEnd,
	}, nil
}

// detectBatch is the batch form of Step IV: each device locates both
// signals in its complete recording. The two devices detect independently
// on real hardware, so the session pipeline runs their scans in parallel
// goroutines; each scan is deterministic, so the session result stays
// bit-identical to the sequential pipeline. A service-injected detector
// batches these scans through its shared worker pool instead of
// per-session machinery.
func (p *sessionPrep) detectBatch() (resAuth, resVouch []detect.Result, err error) {
	if err := ctxErr(p.deps.Ctx); err != nil {
		return nil, nil, err
	}
	deps, cfg, det := p.deps, p.cfg, p.det
	auth, vouch := p.auth, p.vouch
	sigA, sigV := p.sigA, p.sigV
	vouchSigA, vouchSigV := p.vouchSigA, p.vouchSigV
	recs := p.recs
	var errAuth, errVouch error
	var wg sync.WaitGroup
	wg.Add(2)
	// Panic isolation for the per-device detection goroutines: a panic
	// there would otherwise kill the whole process (no recover on the
	// goroutine's stack). Convert it to the same typed *detect.PanicError
	// the scan engine reports for its own workers, captured into the
	// goroutine's error slot. Registered after wg.Done (defers run LIFO),
	// so the error is in place before wg.Wait observes completion.
	trap := func(errp *error) {
		if r := recover(); r != nil {
			*errp = &detect.PanicError{Value: r, Stack: debug.Stack()}
		}
	}
	if cfg.Mode == DetectCrossCorrelation {
		// ACTION-CC baseline: locate each signal by normalized
		// cross-correlation against the original waveform.
		ccDetect := func(rec []float64, sigs ...*sigref.Signal) ([]detect.Result, error) {
			out := make([]detect.Result, 0, len(sigs))
			for _, s := range sigs {
				r, err := det.DetectCrossCorrelation(rec, s)
				if err != nil {
					return nil, fmt.Errorf("core: cross-correlation detect: %w", err)
				}
				out = append(out, r)
			}
			return out, nil
		}
		go func() {
			defer wg.Done()
			defer trap(&errAuth)
			resAuth, errAuth = ccDetect(recs[auth].Float(), sigA, sigV)
		}()
		go func() {
			defer wg.Done()
			defer trap(&errVouch)
			resVouch, errVouch = ccDetect(recs[vouch].Float(), vouchSigA, vouchSigV)
		}()
	} else {
		// Zero-copy PCM ingestion: each device's recording is scanned as
		// the int16 PCM it was captured as (audio.Buffer.Samples) — the
		// engine fuses the widening conversion into its FFT pack stage and
		// sliding-window feed, so the per-device 4×-sized float64 copy the
		// session used to make (Buffer.Float) is gone, and results are
		// bit-identical to scanning the converted recording.
		go func() {
			defer wg.Done()
			defer trap(&errAuth)
			resAuth, errAuth = det.DetectAllPCMContext(deps.Ctx, recs[auth].Samples, sigA, sigV)
			if errAuth != nil {
				errAuth = fmt.Errorf("core: detect on authenticating device: %w", errAuth)
			}
		}()
		go func() {
			defer wg.Done()
			defer trap(&errVouch)
			resVouch, errVouch = det.DetectAllPCMContext(deps.Ctx, recs[vouch].Samples, vouchSigA, vouchSigV)
			if errVouch != nil {
				errVouch = fmt.Errorf("core: detect on vouching device: %w", errVouch)
			}
		}()
	}
	wg.Wait()
	if errAuth != nil {
		return nil, nil, errAuth
	}
	if errVouch != nil {
		return nil, nil, errVouch
	}
	return resAuth, resVouch, nil
}

// finishACTION runs Steps V–VI over the four detection results: the
// vouching device's location-difference report (one Bluetooth exchange,
// the session's final RNG draw) and the Eq. 3 distance estimate with its
// plausibility gate. It must run exactly once per session — the Step-V
// latency draw advances the session RNG stream.
func (p *sessionPrep) finishACTION(resAuth, resVouch []detect.Result) (*SessionResult, error) {
	cfg, rng := p.cfg, p.rng
	auth, vouch := p.auth, p.vouch
	linkAuth, linkVouch := p.linkAuth, p.linkVouch

	res := &SessionResult{}
	res.WindowsScanned = resAuth[0].WindowsScanned + resAuth[1].WindowsScanned - resAuth[0].CoarseScanned
	res.RecordSeconds = cfg.World.DurationSec
	res.PlaySeconds = p.sigDur
	res.DetectSeconds = float64(res.WindowsScanned) * cfg.PhoneFFTSec

	// --- Step V: vouching device reports its local difference. ---
	// (The message is sent regardless; on ⊥ it reports failure upstream —
	// we model that as the same exchange.)
	latBack, err := linkVouch.Send(encodeLocDiff(locDiffMsg{
		diff: int64(resVouch[1].Location - resVouch[0].Location),
		rate: vouch.SampleRate(),
	}), rng)
	if err != nil {
		return nil, fmt.Errorf("core: step V: %w", err)
	}
	back, err := linkAuth.Recv()
	if err != nil {
		return nil, fmt.Errorf("core: step V recv: %w", err)
	}
	msg, err := decodeLocDiff(back)
	if err != nil {
		return nil, err
	}

	res.BTSeconds = p.lat1 + p.lat2 + latBack
	res.AuthTimeSec = cfg.SigConstructSec + res.BTSeconds + (p.recEnd - 0) + res.DetectSeconds

	// ⊥ anywhere denies the authentication (Algorithm 1 line 13).
	switch {
	case !resAuth[0].Found:
		res.AbsentDetail = "authenticating device could not locate S_A"
	case !resAuth[1].Found:
		res.AbsentDetail = "authenticating device could not locate S_V"
	case !resVouch[0].Found:
		res.AbsentDetail = "vouching device could not locate S_A"
	case !resVouch[1].Found:
		res.AbsentDetail = "vouching device could not locate S_V"
	}
	if res.AbsentDetail != "" {
		res.Found = false
		return res, nil
	}

	res.LocAA = resAuth[0].Location
	res.LocAV = resAuth[1].Location
	res.LocVA = resVouch[0].Location
	res.LocVV = resVouch[1].Location

	// --- Step VI: Eq. 3 — clock-offset-free two-way distance. ---
	fA := auth.SampleRate()
	fV := msg.rate
	if fV <= 0 {
		return nil, fmt.Errorf("core: vouching device reported invalid rate %g", fV)
	}
	res.DistanceM = 0.5 * acoustic.SpeedOfSoundMPS *
		(float64(res.LocAV-res.LocAA)/fA - float64(msg.diff)/fV)
	// Plausibility gate: detections displaced onto partial-overlap
	// windows produce estimates no physical geometry could (signals are
	// undetectable beyond d_s). Treat them as the signal not being
	// (correctly) present.
	if res.DistanceM < cfg.PlausibleMinM || res.DistanceM > cfg.PlausibleMaxM {
		res.AbsentDetail = fmt.Sprintf("implausible distance estimate %.2f m", res.DistanceM)
		res.DistanceM = 0
		res.Found = false
		return res, nil
	}
	res.Found = true
	return res, nil
}
