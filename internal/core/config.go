package core

import (
	"errors"
	"fmt"

	"github.com/acoustic-auth/piano/internal/bluetooth"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/sigref"
	"github.com/acoustic-auth/piano/internal/world"
)

// DetectorMode selects the Step-IV signal-detection algorithm.
type DetectorMode int

// Detector modes. The zero value means frequency-based (the paper's
// algorithm); cross-correlation exists for the ACTION-CC baseline of
// Fig. 2(b).
const (
	// DetectFrequency is the paper's frequency-based detector
	// (Algorithms 1 and 2).
	DetectFrequency DetectorMode = iota
	// DetectCrossCorrelation replaces Step IV with BeepBeep-style
	// normalized cross-correlation (the ACTION-CC baseline).
	DetectCrossCorrelation
)

// Config assembles every tunable of a PIANO deployment. Zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Signal is the reference-signal design (Step I).
	Signal sigref.Params
	// Detect holds Algorithm 1/2 parameters (Step IV).
	Detect detect.Config
	// Mode selects the Step-IV detector (frequency-based by default).
	Mode DetectorMode
	// World is the simulated scene (environment, duration, channel).
	World world.Config
	// BTLatency models per-message Bluetooth latency.
	BTLatency bluetooth.LatencyModel
	// BTRangeM is the Bluetooth communication range (FAR is exactly 0
	// beyond it).
	BTRangeM float64
	// ThresholdM is the user-selected authentication threshold τ.
	ThresholdM float64

	// LeadSec is the pause between both devices recording and the first
	// play command (lets the recording settle).
	LeadSec float64
	// GapSec separates the two play commands so the reference signals
	// never overlap in the air.
	GapSec float64

	// PlausibleMinM / PlausibleMaxM bound physically possible estimates.
	// Reference signals are undetectable beyond d_s ≈ 2.5 m, so an
	// estimate far outside (0, d_s] can only mean a detection locked onto
	// a displaced window (e.g. a partial interferer overlap blocked the
	// true window); ACTION reports ⊥ in that case, extending the paper's
	// "signal not present ⇒ deny" rule to implausible geometry.
	PlausibleMinM float64
	PlausibleMaxM float64

	// PhoneFFTSec is the modeled per-window NormPower cost on the
	// reference handset CPU (drives the §VI-D timing/energy results).
	PhoneFFTSec float64
	// SigConstructSec is the modeled Step-I synthesis cost.
	SigConstructSec float64
}

// DefaultConfig returns the paper's prototype configuration with the
// simulator's calibrated physical constants.
func DefaultConfig() Config {
	return Config{
		Signal:          sigref.DefaultParams(),
		Detect:          detect.DefaultConfig(),
		World:           world.DefaultConfig(),
		BTLatency:       bluetooth.DefaultLatency(),
		BTRangeM:        bluetooth.DefaultRangeM,
		ThresholdM:      1.0,
		LeadSec:         0.05,
		GapSec:          0.30,
		PlausibleMinM:   -0.5,
		PlausibleMaxM:   3.0,
		PhoneFFTSec:     0.0025,
		SigConstructSec: 0.005,
	}
}

// Validate checks cross-field consistency.
func (c Config) Validate() error {
	if err := c.Signal.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Detect.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.World.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Signal.SampleRate != c.World.SampleRate {
		return fmt.Errorf("core: signal rate %g != world rate %g", c.Signal.SampleRate, c.World.SampleRate)
	}
	if c.BTRangeM <= 0 {
		return errors.New("core: bluetooth range must be positive")
	}
	if c.ThresholdM <= 0 {
		return errors.New("core: threshold must be positive")
	}
	if c.LeadSec < 0 || c.GapSec <= 0 {
		return errors.New("core: scheduling times must be non-negative (gap positive)")
	}
	if c.GapSec < c.Signal.DurationSec() {
		return fmt.Errorf("core: gap %gs shorter than signal duration %gs (plays would overlap)",
			c.GapSec, c.Signal.DurationSec())
	}
	if c.PhoneFFTSec < 0 || c.SigConstructSec < 0 {
		return errors.New("core: cost-model times must be non-negative")
	}
	if c.PlausibleMaxM <= 0 || c.PlausibleMinM >= 0 {
		return errors.New("core: plausibility bounds must straddle zero")
	}
	return nil
}
