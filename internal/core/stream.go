package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/bluetooth"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/sigref"
)

// Role names one of the two protocol participants in a streaming session:
// each role feeds its own microphone's PCM independently.
type Role int

// The two ACTION participants.
const (
	// RoleAuth is the authenticating device (detects S_A then S_V in its
	// own recording).
	RoleAuth Role = iota
	// RoleVouch is the vouching device.
	RoleVouch
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleAuth:
		return "auth"
	case RoleVouch:
		return "vouch"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

func (r Role) valid() bool { return r == RoleAuth || r == RoleVouch }

// ErrStreamDecided is returned by Feed once a streaming session has reached
// its decision: the session finalization (Step V's Bluetooth exchange draws
// from the session RNG) runs exactly once, so audio arriving after it can
// never alter the result and is rejected instead of silently dropped.
var ErrStreamDecided = errors.New("core: streaming session already decided")

// earlySlack pads the per-role decision horizon by a few samples against
// clock-skew rounding at the horizon boundary (one sliding-DFT resync block
// is far more than enough).
const earlySlack = 64

// SessionStream is the incremental form of RunACTIONWith: Steps I–III run
// up front exactly as in the batch pipeline (same RNG draw order, same
// rendered scene), but Step IV consumes each device's PCM in chunks as the
// audio "arrives" and the session can decide as soon as both recordings
// have revealed their signals — before either recording is complete.
//
// Determinism contract: feeding each role its complete recording — in
// chunks of any size, including all at once — and calling TryResult yields
// a SessionResult bit-identical to RunACTIONWith over the same inputs, at
// any GOMAXPROCS. Deciding at the EarlyFeedLen horizon yields that same
// result whenever the tail of each recording contains no window that both
// passes the α/β sanity checks and beats the scanned maximum — guaranteed
// for protocol-compliant schedules, where the horizon covers every sample
// the batch fine scan can touch (see EarlyFeedLen).
//
// A SessionStream serializes its own methods; the two roles may be fed
// from separate goroutines.
type SessionStream struct {
	p *sessionPrep

	mu      sync.Mutex
	streams [2]*detect.Stream
	rec     [2][]int16
	early   [2]int
	done    bool
	res     *SessionResult
	err     error
}

// OpenACTIONStream runs Steps I–III of a session (signal construction,
// descriptor exchange, timeline, scene render) and returns a stream that
// performs Step IV incrementally. Only the frequency-detection pipeline
// streams; the ACTION-CC baseline is batch-only. See RunACTIONWith for the
// rng contract.
func OpenACTIONStream(
	deps SessionDeps,
	cfg Config,
	auth, vouch *device.Device,
	linkAuth, linkVouch *bluetooth.Link,
	rng *rand.Rand,
	extras []ExtraPlay,
) (*SessionStream, error) {
	if cfg.Mode != DetectFrequency {
		return nil, errors.New("core: streaming sessions require the frequency-detection mode")
	}
	p, err := prepareACTION(deps, cfg, auth, vouch, linkAuth, linkVouch, rng, extras)
	if err != nil {
		return nil, err
	}
	ss := &SessionStream{p: p}
	devs := [2]*device.Device{p.auth, p.vouch}
	sigs := [2][2]*sigref.Signal{{p.sigA, p.sigV}, {p.vouchSigA, p.vouchSigV}}
	for r, dev := range devs {
		pcm := p.recs[dev].Samples
		st, err := p.det.NewStream(len(pcm), sigs[r][0], sigs[r][1])
		if err != nil {
			return nil, err
		}
		ss.streams[r] = st
		ss.rec[r] = pcm
		ss.early[r] = earlyFeedLen(dev, cfg, p, len(pcm))
	}
	return ss, nil
}

// earlyFeedLen computes one role's decision horizon: the sample index in
// that device's recording past which the schedule guarantees no reference
// signal energy remains, plus everything the batch fine scan can touch
// beyond a coarse argmax there (± CoarseStep, one window length), plus a
// small resync slack. The last acoustic arrival ends by
// max(playA, playV) + signal duration + the maximum propagation delay
// inside Bluetooth range (prepareACTION rejects schedules that overrun the
// recording), so every coarse window the batch argmax can select starts at
// or before that instant on the device's own skewed clock.
func earlyFeedLen(dev *device.Device, cfg Config, p *sessionPrep, total int) int {
	maxProp := cfg.BTRangeM / acoustic.SpeedOfSoundMPS
	lastGlobal := math.Max(p.playA, p.playV) + p.sigDur + maxProp
	idxEnd := int(math.Ceil(dev.Clock().SampleAt(lastGlobal)))
	early := idxEnd + cfg.Detect.CoarseStep + cfg.Signal.Length + earlySlack
	if early > total {
		early = total
	}
	if early < cfg.Signal.Length {
		early = cfg.Signal.Length
	}
	return early
}

// Recording returns the role's complete rendered recording — the simulated
// microphone the caller feeds chunks from. The slice is the session's own;
// callers must not mutate it.
func (ss *SessionStream) Recording(role Role) []int16 {
	if !role.valid() {
		return nil
	}
	return ss.rec[role]
}

// EarlyFeedLen returns the role's decision horizon in samples: once at
// least this much of each role's recording has been fed, TryResult decides
// without waiting for the rest (and equals the batch result for compliant
// schedules). Feeding less MAY already suffice; feeding the full recording
// always does.
func (ss *SessionStream) EarlyFeedLen(role Role) int {
	if !role.valid() {
		return 0
	}
	return ss.early[role]
}

// Fed returns how many samples of the role's recording have arrived.
func (ss *SessionStream) Fed(role Role) int {
	if !role.valid() {
		return 0
	}
	return ss.streams[role].Fed()
}

// Feed appends a chunk of the role's recording and advances that role's
// coarse scan over exactly the windows the chunk completed. After the
// session has decided, Feed reports ErrStreamDecided. An over-length chunk
// is rejected whole with detect.ErrFeedOverflow (match with errors.Is),
// leaving the stream usable. Scan errors (cancellation via the session
// deps' context, a recovered worker panic) leave the audio ingested with
// the scan resumable.
func (ss *SessionStream) Feed(role Role, pcm []int16) error {
	if !role.valid() {
		return fmt.Errorf("core: unknown stream role %d", int(role))
	}
	ss.mu.Lock()
	done := ss.done
	ss.mu.Unlock()
	if done {
		return ErrStreamDecided
	}
	return ss.streams[role].Feed(ss.p.deps.Ctx, pcm)
}

// FeedLost declares the role's next n samples lost to the transport: the
// reassembly layer gave up repairing a gap. The span is zero-filled and
// every coarse window overlapping it is deterministically excluded from
// the role's scoring; when cumulative loss crosses the detect config's
// MaxLossFraction ceiling the error (detect.ErrInsufficientAudio, match
// with errors.Is) is sticky and the session can no longer decide.
func (ss *SessionStream) FeedLost(role Role, n int) error {
	if !role.valid() {
		return fmt.Errorf("core: unknown stream role %d", int(role))
	}
	ss.mu.Lock()
	done := ss.done
	ss.mu.Unlock()
	if done {
		return ErrStreamDecided
	}
	return ss.streams[role].FeedLost(ss.p.deps.Ctx, n)
}

// TryResult attempts the session decision over the audio fed so far.
//
// A role is ready once it has been fed to its EarlyFeedLen horizon (the
// point past which the schedule guarantees no signal energy remains — a
// full feed always qualifies) and every candidate's fine band has arrived.
// When both roles are ready, TryResult runs the fine scans and Steps V–VI
// exactly once, caches the SessionResult, and returns it with need 0 —
// every later call returns the cached result. Otherwise it returns a nil
// result and the largest number of additional samples some role still
// needs (need > 0, nil error). Gating the decision on the horizon — not
// merely on the scan engine having enough audio for a local answer — is
// what makes the early decision equal to the batch oracle rather than a
// guess from a prefix. Errors from the scan engine (cancellation,
// worker panics as *detect.PanicError) are returned without deciding; the
// session remains resumable.
func (ss *SessionStream) TryResult() (*SessionResult, int, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.done {
		return ss.res, 0, ss.err
	}
	var roleRes [2][]detect.Result
	need := 0
	for r := range ss.streams {
		res, n, err := ss.streams[r].Results(ss.p.deps.Ctx)
		if err != nil {
			return nil, 0, fmt.Errorf("core: streaming detect (%s role): %w", Role(r), err)
		}
		if hn := ss.early[r] - ss.streams[r].Fed(); hn > n {
			n = hn
		}
		if n > need {
			need = n
		}
		roleRes[r] = res
	}
	if need > 0 {
		return nil, need, nil
	}
	// Finalize exactly once: Step V draws the report latency from the
	// session RNG, so re-running it would fork the deterministic stream.
	ss.res, ss.err = ss.p.finishACTION(roleRes[RoleAuth], roleRes[RoleVouch])
	ss.done = true
	if ss.err == nil && ss.res != nil {
		// A decision that survived transport loss carries its degraded-
		// mode accounting; a clean session's report stays nil, keeping the
		// zero-loss result bit-identical to the batch pipeline's.
		var d Degraded
		for r := range ss.streams {
			s, w := ss.streams[r].Loss()
			d.LostSamples += s
			d.LostWindows += w
		}
		if d.LostSamples > 0 {
			ss.res.Degraded = &d
		}
	}
	return ss.res, 0, ss.err
}

// AuthStream wraps a SessionStream in the authentication phase's decision
// logic: the Bluetooth reachability pre-check, the τ threshold, and energy
// accounting — the streaming twin of Authenticator.AuthenticateContext,
// sharing its decide step verbatim.
type AuthStream struct {
	a  *Authenticator
	ss *SessionStream // nil when pre-decided (Bluetooth out of range)

	mu   sync.Mutex
	done bool
	res  *Result
	err  error
}

// OpenStream opens a streaming authentication session (uncancellable form).
func (a *Authenticator) OpenStream(extras ...ExtraPlay) (*AuthStream, error) {
	return a.OpenStreamContext(nil, extras...)
}

// OpenStreamContext opens a streaming authentication session. Steps I–III
// run now; audio is then fed per role with Feed, and TryResult yields the
// decision as soon as both recordings have revealed their signals. The ctx
// cancels cooperatively exactly as in AuthenticateContext. When the
// vouching device is out of Bluetooth range the stream is born decided:
// TryResult immediately returns the denial, and Feed reports
// ErrStreamDecided.
func (a *Authenticator) OpenStreamContext(ctx context.Context, extras ...ExtraPlay) (*AuthStream, error) {
	if !a.linkAuth.InRange() {
		return &AuthStream{
			a:    a,
			done: true,
			res:  &Result{Granted: false, Reason: ReasonBluetoothOutOfRange},
		}, nil
	}
	ss, err := OpenACTIONStream(SessionDeps{Detector: a.det, Ctx: ctx}, a.cfg, a.auth, a.vouch, a.linkAuth, a.linkVouch, a.rng, extras)
	if err != nil {
		return nil, err
	}
	return &AuthStream{a: a, ss: ss}, nil
}

// Recording returns the role's complete rendered recording (nil when the
// stream was pre-decided without running ACTION).
func (as *AuthStream) Recording(role Role) []int16 {
	if as.ss == nil {
		return nil
	}
	return as.ss.Recording(role)
}

// EarlyFeedLen returns the role's decision horizon (0 when pre-decided).
func (as *AuthStream) EarlyFeedLen(role Role) int {
	if as.ss == nil {
		return 0
	}
	return as.ss.EarlyFeedLen(role)
}

// Fed returns how many samples of the role's recording have arrived.
func (as *AuthStream) Fed(role Role) int {
	if as.ss == nil {
		return 0
	}
	return as.ss.Fed(role)
}

// Feed appends a chunk of the role's recording (see SessionStream.Feed).
func (as *AuthStream) Feed(role Role, pcm []int16) error {
	if as.ss == nil {
		return ErrStreamDecided
	}
	return as.ss.Feed(role, pcm)
}

// FeedLost declares the role's next n samples lost to the transport (see
// SessionStream.FeedLost).
func (as *AuthStream) FeedLost(role Role, n int) error {
	if as.ss == nil {
		return ErrStreamDecided
	}
	return as.ss.FeedLost(role, n)
}

// TryResult attempts the authentication decision over the audio fed so
// far: need > 0 when more samples are required, otherwise the decision —
// computed, accounted, and cached exactly once (see SessionStream.TryResult
// for the error contract).
func (as *AuthStream) TryResult() (*Result, int, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.done {
		return as.res, 0, as.err
	}
	sr, need, err := as.ss.TryResult()
	if err != nil {
		return nil, 0, err
	}
	if need > 0 {
		return nil, need, nil
	}
	as.a.account(sr)
	as.res = as.a.decide(sr)
	as.done = true
	return as.res, 0, nil
}
