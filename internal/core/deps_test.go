package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/bluetooth"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/dsp"
)

// runSession executes one seeded ACTION session between a 0.8 m pair, with
// optional injected deps and extra plays built by mkExtras (which draws
// from the same session rng, exactly like the public Deployment path).
func runSession(t *testing.T, seed int64, deps SessionDeps,
	mkExtras func(cfg Config, rng *rand.Rand) []ExtraPlay) *SessionResult {
	t.Helper()
	cfg := DefaultConfig()
	auth, vouch := newPair(t, 0.8, true)
	la, lv, err := bluetooth.Pair(auth, vouch, cfg.BTLatency, cfg.BTRangeM)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var extras []ExtraPlay
	if mkExtras != nil {
		extras = mkExtras(cfg, rng)
	}
	sr, err := RunACTIONWith(deps, cfg, auth, vouch, la, lv, rng, extras)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestInjectedDetectorBitIdentical: a session driven by a service-shared
// detector (worker pool + pinned plans) must reproduce the self-contained
// session bit for bit.
func TestInjectedDetectorBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	det, err := detect.New(cfg.Detect)
	if err != nil {
		t.Fatal(err)
	}
	pool := detect.NewPool(3)
	defer pool.Close()
	plans, err := dsp.NewPlanSet(cfg.Signal.Length)
	if err != nil {
		t.Fatal(err)
	}
	det.UsePool(pool)
	det.UsePlans(plans)

	for _, seed := range []int64{1, 42, 977} {
		plain := runSession(t, seed, SessionDeps{}, nil)
		shared := runSession(t, seed, SessionDeps{Detector: det}, nil)
		if *plain != *shared {
			t.Fatalf("seed %d: injected-detector session diverged:\nplain  %+v\nshared %+v", seed, plain, shared)
		}
		if math.Float64bits(plain.DistanceM) != math.Float64bits(shared.DistanceM) {
			t.Fatalf("seed %d: distance bits differ", seed)
		}
	}
}

// TestInjectedDetectorConfigMismatchRejected: silently scanning with
// parameters other than the session's declared ones would corrupt results;
// the session must refuse instead.
func TestInjectedDetectorConfigMismatchRejected(t *testing.T) {
	cfg := DefaultConfig()
	other := cfg.Detect
	other.Theta++
	det, err := detect.New(other)
	if err != nil {
		t.Fatal(err)
	}
	auth, vouch := newPair(t, 0.8, true)
	la, lv, err := bluetooth.Pair(auth, vouch, cfg.BTLatency, cfg.BTRangeM)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := RunACTIONWith(SessionDeps{Detector: det}, cfg, auth, vouch, la, lv, rng, nil); err == nil {
		t.Fatal("detector with mismatched parameters accepted")
	}
}

// TestExtraPlaySharedBackingSliceSafe pins the ExtraPlay ownership
// contract: one immutable waveform may back several plays of one session
// (sessions only read scheduled samples), and reusing the same plays for a
// second session renders from the unchanged waveform.
func TestExtraPlaySharedBackingSliceSafe(t *testing.T) {
	mk := func(cfg Config, rng *rand.Rand) []ExtraPlay {
		dev, err := device.New(device.Config{
			Name:       "interferer",
			Position:   [2]float64{2.5, 1.5},
			SampleRate: 44100,
			ProcDelay:  device.DefaultProcessingDelay(),
		})
		if err != nil {
			t.Fatal(err)
		}
		burst := make([]float64, cfg.Signal.Length)
		for i := range burst {
			burst[i] = 2000 * math.Sin(2*math.Pi*30500/cfg.Signal.SampleRate*float64(i))
		}
		// Both plays alias one backing slice on purpose.
		return []ExtraPlay{
			{Device: dev, Samples: burst, AtSec: 0.3},
			{Device: dev, Samples: burst, AtSec: 0.9},
		}
	}
	a := runSession(t, 7, SessionDeps{}, mk)
	b := runSession(t, 7, SessionDeps{}, mk)
	if *a != *b {
		t.Fatalf("re-running with shared-backing extra plays diverged:\n%+v\n%+v", a, b)
	}
}
