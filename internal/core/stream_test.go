package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/bluetooth"
)

// openStream opens a seeded streaming session between a 0.8 m pair — the
// streaming twin of runSession's setup, so the two are oracle-comparable
// per seed.
func openStream(t *testing.T, seed int64) *SessionStream {
	t.Helper()
	cfg := DefaultConfig()
	auth, vouch := newPair(t, 0.8, true)
	la, lv, err := bluetooth.Pair(auth, vouch, cfg.BTLatency, cfg.BTRangeM)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := OpenACTIONStream(SessionDeps{}, cfg, auth, vouch, la, lv, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// feedInterleaved feeds both roles' recordings in alternating chunks (the
// shape of two live microphones draining concurrently), up to each role's
// given limit.
func feedInterleaved(t *testing.T, ss *SessionStream, chunk int, limit [2]int) {
	t.Helper()
	at := [2]int{}
	for at[RoleAuth] < limit[RoleAuth] || at[RoleVouch] < limit[RoleVouch] {
		for _, role := range []Role{RoleAuth, RoleVouch} {
			if at[role] >= limit[role] {
				continue
			}
			end := at[role] + chunk
			if end > limit[role] {
				end = limit[role]
			}
			if err := ss.Feed(role, ss.Recording(role)[at[role]:end]); err != nil {
				t.Fatalf("feed %s [%d, %d): %v", role, at[role], end, err)
			}
			at[role] = end
		}
	}
}

func fullLimits(ss *SessionStream) [2]int {
	return [2]int{len(ss.Recording(RoleAuth)), len(ss.Recording(RoleVouch))}
}

// TestStreamSessionReplayBitIdentical is the session-level oracle check:
// feeding each role its complete recording — whole, or interleaved in
// 1-sample, prime, and window-aligned chunks — must reproduce the batch
// RunACTIONWith result field for field.
func TestStreamSessionReplayBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		want := runSession(t, seed, SessionDeps{}, nil)
		for _, chunk := range []int{2048, 4096, 1 << 20} {
			ss := openStream(t, seed)
			feedInterleaved(t, ss, chunk, fullLimits(ss))
			got, need, err := ss.TryResult()
			if err != nil {
				t.Fatal(err)
			}
			if need != 0 {
				t.Fatalf("seed %d chunk %d: full feed still needs %d", seed, chunk, need)
			}
			if *got != *want {
				t.Fatalf("seed %d chunk %d: stream session diverged:\nstream %+v\nbatch  %+v", seed, chunk, got, want)
			}
			if math.Float64bits(got.DistanceM) != math.Float64bits(want.DistanceM) {
				t.Fatalf("seed %d chunk %d: distance bits differ", seed, chunk)
			}
		}
	}
}

// TestStreamSessionEarlyDecision: feeding each role only to its
// EarlyFeedLen horizon must yield the exact batch result — the decision
// lands while a large tail of both recordings has never been fed — and the
// session then refuses further audio with ErrStreamDecided.
func TestStreamSessionEarlyDecision(t *testing.T) {
	const seed = 42
	want := runSession(t, seed, SessionDeps{}, nil)
	ss := openStream(t, seed)
	limits := [2]int{ss.EarlyFeedLen(RoleAuth), ss.EarlyFeedLen(RoleVouch)}
	for _, role := range []Role{RoleAuth, RoleVouch} {
		if total := len(ss.Recording(role)); limits[role] >= total {
			t.Fatalf("%s horizon %d does not precede the recording end %d — early decision untested", role, limits[role], total)
		}
	}
	feedInterleaved(t, ss, 4096, limits)
	got, need, err := ss.TryResult()
	if err != nil {
		t.Fatal(err)
	}
	if need != 0 {
		t.Fatalf("horizon feed still needs %d samples", need)
	}
	if *got != *want {
		t.Fatalf("early decision diverged:\nearly %+v\nbatch %+v", got, want)
	}
	if err := ss.Feed(RoleAuth, ss.Recording(RoleAuth)[limits[RoleAuth]:]); !errors.Is(err, ErrStreamDecided) {
		t.Fatalf("post-decision feed returned %v, want ErrStreamDecided", err)
	}
	// The cached result is stable across repeated calls.
	again, need, err := ss.TryResult()
	if err != nil || need != 0 || again != got {
		t.Fatalf("repeated TryResult: %p need=%d err=%v, want cached %p", again, need, err, got)
	}
}

// TestStreamSessionNeedProgression: with no audio, TryResult must demand at
// least one window; the need must shrink as audio arrives and never demand
// more than the recording holds.
func TestStreamSessionNeedProgression(t *testing.T) {
	ss := openStream(t, 7)
	_, need, err := ss.TryResult()
	if err != nil {
		t.Fatal(err)
	}
	if need <= 0 {
		t.Fatalf("empty session reported need %d", need)
	}
	feedInterleaved(t, ss, 4096, [2]int{8192, 8192})
	_, need2, err := ss.TryResult()
	if err != nil {
		t.Fatal(err)
	}
	if need2 != need-8192 {
		t.Fatalf("need went %d → %d after feeding 8192 per role, want %d", need, need2, need-8192)
	}
	if max := len(ss.Recording(RoleAuth)); need2 > max {
		t.Fatalf("need %d exceeds recording %d", need2, max)
	}
}

// TestOpenStreamRejectsCCMode: the cross-correlation baseline has no
// incremental engine; opening a stream in that mode must fail loudly.
func TestOpenStreamRejectsCCMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = DetectCrossCorrelation
	auth, vouch := newPair(t, 0.8, true)
	la, lv, err := bluetooth.Pair(auth, vouch, cfg.BTLatency, cfg.BTRangeM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenACTIONStream(SessionDeps{}, cfg, auth, vouch, la, lv, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("CC-mode stream accepted")
	}
}

// TestAuthStreamMatchesAuthenticate: the public streaming decision must be
// byte-identical to Authenticate for the same seed, and account the same
// energy.
func TestAuthStreamMatchesAuthenticate(t *testing.T) {
	mk := func() *Authenticator {
		cfg := DefaultConfig()
		auth, vouch := newPair(t, 0.5, true)
		a, err := NewAuthenticator(cfg, auth, vouch, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	want, err := mk().Authenticate()
	if err != nil {
		t.Fatal(err)
	}

	as, err := mk().OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	for _, role := range []Role{RoleAuth, RoleVouch} {
		if err := as.Feed(role, as.Recording(role)); err != nil {
			t.Fatal(err)
		}
	}
	got, need, err := as.TryResult()
	if err != nil {
		t.Fatal(err)
	}
	if need != 0 {
		t.Fatalf("full feed still needs %d", need)
	}
	if got.Granted != want.Granted || got.Reason != want.Reason ||
		math.Float64bits(got.DistanceM) != math.Float64bits(want.DistanceM) {
		t.Fatalf("stream decision %+v != batch %+v", got, want)
	}
	if *got.Session != *want.Session {
		t.Fatalf("stream session %+v != batch %+v", got.Session, want.Session)
	}
}

// TestAuthStreamOutOfRangePreDecided: Bluetooth unreachability decides the
// stream at open time, without running ACTION or accepting audio.
func TestAuthStreamOutOfRangePreDecided(t *testing.T) {
	cfg := DefaultConfig()
	auth, vouch := newPair(t, 1.0, true)
	a, err := NewAuthenticator(cfg, auth, vouch, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	vouch.SetPosition([2]float64{12, 0}) // beyond the 10 m BT range
	as, err := a.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	res, need, err := as.TryResult()
	if err != nil || need != 0 {
		t.Fatalf("need=%d err=%v", need, err)
	}
	if res.Granted || res.Reason != ReasonBluetoothOutOfRange || res.Session != nil {
		t.Fatalf("got %+v", res)
	}
	if as.Recording(RoleAuth) != nil || as.EarlyFeedLen(RoleVouch) != 0 {
		t.Fatal("pre-decided stream exposed a recording")
	}
	if err := as.Feed(RoleAuth, make([]int16, 16)); !errors.Is(err, ErrStreamDecided) {
		t.Fatalf("feed returned %v, want ErrStreamDecided", err)
	}
}
