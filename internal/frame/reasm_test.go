package frame

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// testPCM builds a recording whose sample at index i is a function of i,
// so deliveries can be checked for positional integrity.
func testPCM(total int) []int16 {
	pcm := make([]int16, total)
	for i := range pcm {
		pcm[i] = int16(i*31 + 7)
	}
	return pcm
}

// addT is Add with test plumbing: failures are fatal.
func addT(t *testing.T, r *Reassembler, f Frame, now time.Time) []Delivery {
	t.Helper()
	dv, _, err := r.Add(f, now)
	if err != nil {
		t.Fatalf("Add(seq=%d off=%d): %v", f.Seq, f.Offset, err)
	}
	return dv
}

// replay verifies that a delivery sequence covers [from, to) in order and
// returns the samples delivered as data (lost spans yield no samples).
func replay(t *testing.T, dv []Delivery, at int) int {
	t.Helper()
	for _, d := range dv {
		if d.Offset != at {
			t.Fatalf("delivery at %d, frontier %d", d.Offset, at)
		}
		if d.Lost > 0 {
			at += d.Lost
			continue
		}
		at += len(d.PCM)
	}
	return at
}

// TestReassemblerInOrder: clean in-order frames deliver immediately and
// bit-exactly.
func TestReassemblerInOrder(t *testing.T) {
	pcm := testPCM(1000)
	r, err := NewReassembler(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	at := 0
	for off := 0; off < 1000; off += 100 {
		dv := addT(t, r, New(uint32(off/100), off, pcm[off:off+100]), time.Time{})
		if len(dv) != 1 || dv[0].Lost != 0 {
			t.Fatalf("off %d: deliveries %+v", off, dv)
		}
		for i, s := range dv[0].PCM {
			if s != pcm[at+i] {
				t.Fatalf("sample %d: %d != %d", at+i, s, pcm[at+i])
			}
		}
		at = replay(t, dv, at)
	}
	if r.Next() != 1000 || len(r.Gaps()) != 0 {
		t.Fatalf("next %d gaps %v after clean feed", r.Next(), r.Gaps())
	}
}

// TestReassemblerReorderRepair: an out-of-order frame buffers, the missing
// frame repairs the gap, and both deliver in order with no loss.
func TestReassemblerReorderRepair(t *testing.T) {
	pcm := testPCM(300)
	r, err := NewReassembler(300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dv := addT(t, r, New(1, 100, pcm[100:200]), time.Time{}); len(dv) != 0 {
		t.Fatalf("out-of-order frame delivered: %+v", dv)
	}
	if g := r.Gaps(); len(g) != 1 || g[0] != [2]int{0, 100} {
		t.Fatalf("gaps %v, want [[0 100]]", g)
	}
	dv := addT(t, r, New(0, 0, pcm[0:100]), time.Time{})
	if end := replay(t, dv, 0); end != 200 {
		t.Fatalf("repair delivered to %d, want 200", end)
	}
	for _, d := range dv {
		if d.Lost > 0 {
			t.Fatalf("repaired feed declared loss: %+v", dv)
		}
	}
}

// TestReassemblerStructuralExpiry: when buffered data runs past the
// reorder window, the oldest gap is declared lost deterministically.
func TestReassemblerStructuralExpiry(t *testing.T) {
	pcm := testPCM(2000)
	r, err := NewReassembler(2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Gap [0, 100), data [100, 450): data runs 450 ahead of the frontier,
	// within the 500-sample window.
	if dv := addT(t, r, New(1, 100, pcm[100:450]), time.Time{}); len(dv) != 0 {
		t.Fatalf("within-window data delivered early: %+v", dv)
	}
	// Data [450, 700): maxEnd 700 - next 0 > 500 → gap [0, 100) lost,
	// everything behind it delivered.
	dv := addT(t, r, New(2, 450, pcm[450:700]), time.Time{})
	if len(dv) < 2 || dv[0].Lost != 100 || dv[0].Offset != 0 {
		t.Fatalf("deliveries %+v, want lost [0,100) first", dv)
	}
	if end := replay(t, dv, 0); end != 700 {
		t.Fatalf("frontier %d, want 700", end)
	}
	if st := r.Stats(); st.LostSamples != 100 {
		t.Fatalf("LostSamples %d, want 100", st.LostSamples)
	}
}

// TestReassemblerWallClockExpiry: Expire converts a stale leading gap into
// a lost span once the repair deadline passes, and not before.
func TestReassemblerWallClockExpiry(t *testing.T) {
	pcm := testPCM(400)
	r, err := NewReassembler(400, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0)
	addT(t, r, New(1, 100, pcm[100:200]), t0)
	if dv := r.Expire(t0.Add(50*time.Millisecond), 100*time.Millisecond); len(dv) != 0 {
		t.Fatalf("gap expired before its deadline: %+v", dv)
	}
	dv := r.Expire(t0.Add(150*time.Millisecond), 100*time.Millisecond)
	if len(dv) != 2 || dv[0].Lost != 100 || len(dv[1].PCM) != 100 {
		t.Fatalf("deliveries %+v, want lost 100 then data 100", dv)
	}
	if r.Next() != 200 {
		t.Fatalf("frontier %d, want 200", r.Next())
	}
}

// TestReassemblerSplitGapKeepsStamp: a frame landing inside a gap splits
// it; both children keep the parent's openedAt, so they expire on the
// original deadline.
func TestReassemblerSplitGapKeepsStamp(t *testing.T) {
	pcm := testPCM(600)
	r, err := NewReassembler(600, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0)
	addT(t, r, New(1, 400, pcm[400:500]), t0) // gap [0, 400) opened at t0
	addT(t, r, New(2, 200, pcm[200:300]), t0.Add(90*time.Millisecond))
	if g := r.Gaps(); len(g) != 2 {
		t.Fatalf("gaps %v, want two children", g)
	}
	// At t0+100ms both children are past the ORIGINAL deadline.
	dv := r.Expire(t0.Add(100*time.Millisecond), 100*time.Millisecond)
	if end := replay(t, dv, 0); end != 500 {
		t.Fatalf("frontier %d, want 500 (both children expired)", end)
	}
}

// TestReassemblerDupAndOverlap: duplicates are silently absorbed, partial
// overlaps contribute only their fresh tail, and first arrival wins.
func TestReassemblerDupAndOverlap(t *testing.T) {
	pcm := testPCM(500)
	r, err := NewReassembler(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	addT(t, r, New(0, 0, pcm[0:200]), time.Time{})
	dv, fresh, err := r.Add(New(0, 0, pcm[0:200]), time.Time{})
	if err != nil || fresh || len(dv) != 0 {
		t.Fatalf("exact dup: dv=%v fresh=%v err=%v", dv, fresh, err)
	}
	// Overlapping frame with a poisoned overlap region: first arrival must
	// win, and only the fresh tail is delivered.
	evil := append([]int16{-1, -2, -3}, pcm[153:300]...)
	dv, fresh, err = r.Add(Frame{Seq: 9, Offset: 150, CRC: checksum(9, 150, evil), PCM: evil}, time.Time{})
	if err != nil || !fresh {
		t.Fatalf("overlap: fresh=%v err=%v", fresh, err)
	}
	if end := replay(t, dv, 200); end != 300 {
		t.Fatalf("overlap delivered to %d, want 300", end)
	}
	for _, d := range dv {
		for i, s := range d.PCM {
			if s != pcm[d.Offset+i] {
				t.Fatalf("sample %d: %d != %d (first arrival must win)", d.Offset+i, s, pcm[d.Offset+i])
			}
		}
	}
	if st := r.Stats(); st.Dups != 1 {
		t.Fatalf("Dups %d, want 1", st.Dups)
	}
}

// TestReassemblerRejectsTyped: corrupt and out-of-range frames are
// rejected typed with no state change.
func TestReassemblerRejectsTyped(t *testing.T) {
	r, err := NewReassembler(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := New(1, 0, []int16{1, 2, 3})
	bad.CRC ^= 1
	if _, _, err := r.Add(bad, time.Time{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: %v", err)
	}
	if _, _, err := r.Add(New(2, 98, []int16{1, 2, 3}), time.Time{}); !errors.Is(err, ErrRange) {
		t.Fatalf("out-of-range frame: %v", err)
	}
	if _, _, err := r.Add(New(3, -1, []int16{1}), time.Time{}); !errors.Is(err, ErrRange) {
		t.Fatalf("negative-offset frame: %v", err)
	}
	if r.Next() != 0 || r.Pending() != 0 {
		t.Fatalf("rejected frames mutated state: next=%d pending=%d", r.Next(), r.Pending())
	}
	st := r.Stats()
	if st.Corrupt != 1 || st.Rejected != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestReassemblerFlush: Flush declares every hole and the undelivered tail
// lost, covering the full declared length exactly once.
func TestReassemblerFlush(t *testing.T) {
	pcm := testPCM(1000)
	r, err := NewReassembler(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	addT(t, r, New(0, 0, pcm[0:100]), time.Time{})
	addT(t, r, New(2, 200, pcm[200:300]), time.Time{})
	dv := r.Flush()
	if end := replay(t, dv, 100); end != 1000 {
		t.Fatalf("flush frontier %d, want 1000", end)
	}
	if r.Next() != 1000 {
		t.Fatalf("Next %d after Flush", r.Next())
	}
	lost := 0
	for _, d := range dv {
		lost += d.Lost
	}
	if lost != 800 { // [100,200) + [300,1000)
		t.Fatalf("flush lost %d samples, want 800", lost)
	}
}

// TestReassemblerRandomizedCoverage: a randomized storm of loss,
// duplication, and reordering followed by Flush always yields a delivery
// sequence covering [0, total) exactly once, in order, with delivered
// data positionally intact.
func TestReassemblerRandomizedCoverage(t *testing.T) {
	const total = 20000
	pcm := testPCM(total)
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r, err := NewReassembler(total, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		// Partition into frames, then shuffle with drops and dups.
		type piece struct{ lo, hi int }
		var pieces []piece
		for at := 0; at < total; {
			n := 50 + rng.Intn(400)
			if at+n > total {
				n = total - at
			}
			pieces = append(pieces, piece{at, at + n})
			at += n
		}
		var sched []piece
		for i, p := range pieces {
			if rng.Float64() < 0.15 { // lost
				continue
			}
			sched = append(sched, p)
			if rng.Float64() < 0.1 { // duplicated
				sched = append(sched, p)
			}
			_ = i
		}
		rng.Shuffle(len(sched), func(i, j int) { sched[i], sched[j] = sched[j], sched[i] })
		at := 0
		for i, p := range sched {
			dv, _, err := r.Add(New(uint32(i), p.lo, pcm[p.lo:p.hi]), time.Time{})
			if err != nil {
				t.Fatalf("seed %d: add: %v", seed, err)
			}
			for _, d := range dv {
				if d.Offset != at {
					t.Fatalf("seed %d: delivery at %d, frontier %d", seed, d.Offset, at)
				}
				for k, s := range d.PCM {
					if s != pcm[d.Offset+k] {
						t.Fatalf("seed %d: sample %d corrupted", seed, d.Offset+k)
					}
				}
				at += d.Lost + len(d.PCM)
			}
		}
		for _, d := range r.Flush() {
			if d.Offset != at {
				t.Fatalf("seed %d: flush delivery at %d, frontier %d", seed, d.Offset, at)
			}
			at += d.Lost + len(d.PCM)
		}
		if at != total {
			t.Fatalf("seed %d: coverage ends at %d, want %d", seed, at, total)
		}
	}
}
