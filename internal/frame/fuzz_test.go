package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// frameFuzzSeeds builds the seed corpus: a valid frame plus the malformed
// and damaged shapes the decoder's checks exist for — truncations, a CRC
// bit-flip, a wrapped sequence number, and a payload whose offset overlaps
// the uint32 horizon.
func frameFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	valid, err := New(41, 12345, []int16{100, -200, 300, -400}).Encode()
	if err != nil {
		tb.Fatal(err)
	}
	crcFlip := append([]byte(nil), valid...)
	crcFlip[15] ^= 0x80

	payloadFlip := append([]byte(nil), valid...)
	payloadFlip[HeaderLen+1] ^= 0x01

	seqWrap, err := New(math.MaxUint32, 12345, []int16{1, 2}).Encode()
	if err != nil {
		tb.Fatal(err)
	}

	// offset at the top of the uint32 range: offset+n overflows a naive
	// 32-bit range check downstream.
	offsetOverlap, err := New(7, math.MaxUint32-1, []int16{1, 2, 3}).Encode()
	if err != nil {
		tb.Fatal(err)
	}

	lengthBomb := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(lengthBomb[11:], math.MaxUint16)

	return [][]byte{
		valid,
		valid[:HeaderLen-1],
		valid[:len(valid)-1],
		{},
		crcFlip,
		payloadFlip,
		seqWrap,
		offsetOverlap,
		lengthBomb,
	}
}

// FuzzFrameDecode fuzzes the lossy-transport trust boundary. Properties:
// Decode never panics; every error is one of the typed sentinels; an
// accepted frame round-trips byte-identically through Encode; and an
// accepted frame always passes Verify (Decode checked the CRC).
func FuzzFrameDecode(f *testing.F) {
	for _, seed := range frameFuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if err := fr.Verify(); err != nil {
			t.Fatalf("accepted frame fails Verify: %v", err)
		}
		re, err := fr.Encode()
		if err != nil {
			t.Fatalf("accepted frame fails Encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", re, data)
		}
	})
}

// TestFrameFuzzSeeds runs the seed corpus as a plain test so `go test`
// covers the shapes without the fuzz engine.
func TestFrameFuzzSeeds(t *testing.T) {
	for i, seed := range frameFuzzSeeds(t) {
		fr, err := Decode(seed)
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrCorrupt) {
				t.Errorf("seed %d: untyped error %v", i, err)
			}
			continue
		}
		if err := fr.Verify(); err != nil {
			t.Errorf("seed %d: accepted frame fails Verify: %v", i, err)
		}
	}
}
