package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire-format constants. A frame is a fixed 17-byte header followed by the
// PCM payload, little-endian throughout:
//
//	offset  size  field
//	0       2     magic "PF"
//	2       1     version (1)
//	3       4     Seq     uint32
//	7       4     Offset  uint32 (samples into the recording)
//	11      2     n       uint16 (payload length in samples)
//	13      4     CRC     uint32 (CRC-32/IEEE over bytes [3,13) + payload)
//	17      2·n   PCM     int16 little-endian
const (
	// HeaderLen is the fixed encoded header size in bytes.
	HeaderLen = 17
	// Version is the wire-format version this package encodes and accepts.
	Version = 1
	// MaxFrameSamples is the largest payload one frame may carry — the
	// uint16 length field's ceiling, ~1.5 s of audio at 44.1 kHz.
	MaxFrameSamples = 1<<16 - 1
)

// The two magic bytes opening every encoded frame.
const (
	magic0 = 'P'
	magic1 = 'F'
)

// Typed frame-codec failures; match with errors.Is.
var (
	// ErrMalformed rejects bytes that are not a frame at all: short of a
	// header, wrong magic or version, or a length field disagreeing with
	// the buffer. Nothing about the content can be trusted.
	ErrMalformed = errors.New("frame: malformed frame")
	// ErrCorrupt rejects a structurally valid frame whose CRC does not
	// match its header and payload: the transport damaged it in flight.
	// Corrupt frames are never scored — the receiver treats them as
	// missing audio, repairable by retransmission.
	ErrCorrupt = errors.New("frame: payload CRC mismatch")
	// ErrRange rejects a frame whose payload lies (partly) outside the
	// session's declared recording: a hostile or desynchronized sender.
	ErrRange = errors.New("frame: payload outside the declared recording")
)

// Frame is one wire chunk of a streamed recording: PCM samples claiming
// positions [Offset, Offset+len(PCM)) of the session's recording, tagged
// with a sender sequence number and a CRC over header and payload. Offset
// is authoritative for reassembly; Seq is a diagnostic ordering tag
// (duplicate and retransmitted frames reuse the original's Seq).
type Frame struct {
	// Seq is the sender's frame counter.
	Seq uint32
	// Offset is the payload's first sample index in the recording.
	Offset int
	// CRC is the CRC-32 (IEEE) over the encoded seq/offset/length header
	// fields and the little-endian payload bytes. New computes it;
	// Verify and Decode check it.
	CRC uint32
	// PCM is the payload.
	PCM []int16
}

// New builds a frame with its CRC computed — the sender-side constructor.
func New(seq uint32, offset int, pcm []int16) Frame {
	return Frame{Seq: seq, Offset: offset, CRC: checksum(seq, offset, pcm), PCM: pcm}
}

// Verify recomputes the frame's checksum against its CRC field, returning
// ErrCorrupt on mismatch. Decode already verifies; Verify exists for
// frames that arrived as in-memory values rather than wire bytes.
func (f Frame) Verify() error {
	if checksum(f.Seq, f.Offset, f.PCM) != f.CRC {
		return fmt.Errorf("%w: seq %d offset %d", ErrCorrupt, f.Seq, f.Offset)
	}
	return nil
}

// checksum is the frame CRC: CRC-32/IEEE over the 10 encoded header bytes
// (seq, offset, length) followed by the payload's little-endian bytes, so
// a frame whose header was damaged in flight fails the check exactly like
// one with damaged samples.
func checksum(seq uint32, offset int, pcm []int16) uint32 {
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:], seq)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(offset))
	binary.LittleEndian.PutUint16(hdr[8:], uint16(len(pcm)))
	crc := crc32.ChecksumIEEE(hdr[:])
	var buf [256]byte
	for at := 0; at < len(pcm); {
		n := 0
		for ; n < len(buf)/2 && at+n < len(pcm); n++ {
			binary.LittleEndian.PutUint16(buf[2*n:], uint16(pcm[at+n]))
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:2*n])
		at += n
	}
	return crc
}

// EncodedLen returns the wire size of a frame carrying n samples.
func EncodedLen(n int) int { return HeaderLen + 2*n }

// Encode serializes the frame. The frame must satisfy the wire format's
// bounds: payload within MaxFrameSamples, offset within uint32.
func (f Frame) Encode() ([]byte, error) {
	if len(f.PCM) > MaxFrameSamples {
		return nil, fmt.Errorf("frame: payload %d samples exceeds the %d-sample frame bound", len(f.PCM), MaxFrameSamples)
	}
	if f.Offset < 0 || int64(f.Offset) > int64(^uint32(0)) {
		return nil, fmt.Errorf("frame: offset %d outside the wire format's uint32 range", f.Offset)
	}
	buf := make([]byte, EncodedLen(len(f.PCM)))
	buf[0], buf[1], buf[2] = magic0, magic1, Version
	binary.LittleEndian.PutUint32(buf[3:], f.Seq)
	binary.LittleEndian.PutUint32(buf[7:], uint32(f.Offset))
	binary.LittleEndian.PutUint16(buf[11:], uint16(len(f.PCM)))
	binary.LittleEndian.PutUint32(buf[13:], f.CRC)
	for i, s := range f.PCM {
		binary.LittleEndian.PutUint16(buf[HeaderLen+2*i:], uint16(s))
	}
	return buf, nil
}

// Decode parses and verifies one encoded frame occupying exactly buf:
// structural failures return ErrMalformed, a checksum failure ErrCorrupt
// (both wrapped with detail). The returned frame's PCM is freshly
// allocated — it does not alias buf.
func Decode(buf []byte) (Frame, error) {
	if len(buf) < HeaderLen {
		return Frame{}, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrMalformed, len(buf), HeaderLen)
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrMalformed, buf[0:2])
	}
	if buf[2] != Version {
		return Frame{}, fmt.Errorf("%w: unknown version %d", ErrMalformed, buf[2])
	}
	n := int(binary.LittleEndian.Uint16(buf[11:]))
	if len(buf) != EncodedLen(n) {
		return Frame{}, fmt.Errorf("%w: length field %d disagrees with %d buffer bytes", ErrMalformed, n, len(buf))
	}
	f := Frame{
		Seq:    binary.LittleEndian.Uint32(buf[3:]),
		Offset: int(binary.LittleEndian.Uint32(buf[7:])),
		CRC:    binary.LittleEndian.Uint32(buf[13:]),
	}
	if n > 0 {
		f.PCM = make([]int16, n)
		for i := range f.PCM {
			f.PCM[i] = int16(binary.LittleEndian.Uint16(buf[HeaderLen+2*i:]))
		}
	}
	if err := f.Verify(); err != nil {
		return Frame{}, err
	}
	return f, nil
}
