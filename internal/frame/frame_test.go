package frame

import (
	"errors"
	"math/rand"
	"testing"
)

// TestFrameRoundTrip: Encode→Decode is the identity for payloads of many
// sizes, including empty.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 127, 1024, MaxFrameSamples} {
		pcm := make([]int16, n)
		for i := range pcm {
			pcm[i] = int16(rng.Intn(1 << 16))
		}
		f := New(uint32(n)*7, 3*n+1, pcm)
		buf, err := f.Encode()
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		if len(buf) != EncodedLen(n) {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, len(buf), EncodedLen(n))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if got.Seq != f.Seq || got.Offset != f.Offset || got.CRC != f.CRC {
			t.Fatalf("n=%d: header round-trip %+v != %+v", n, got, f)
		}
		if len(got.PCM) != len(f.PCM) {
			t.Fatalf("n=%d: payload length %d != %d", n, len(got.PCM), len(f.PCM))
		}
		for i := range f.PCM {
			if got.PCM[i] != f.PCM[i] {
				t.Fatalf("n=%d: sample %d: %d != %d", n, i, got.PCM[i], f.PCM[i])
			}
		}
	}
}

// TestFrameEncodeBounds: payloads over the frame bound and offsets outside
// uint32 are rejected at encode time.
func TestFrameEncodeBounds(t *testing.T) {
	if _, err := (Frame{PCM: make([]int16, MaxFrameSamples+1)}).Encode(); err == nil {
		t.Error("over-long payload encoded")
	}
	if _, err := (Frame{Offset: -1}).Encode(); err == nil {
		t.Error("negative offset encoded")
	}
	if _, err := (Frame{Offset: 1 << 33}).Encode(); err == nil {
		t.Error("offset beyond uint32 encoded")
	}
}

// TestFrameDecodeMalformed pins the typed rejection of every structural
// failure shape.
func TestFrameDecodeMalformed(t *testing.T) {
	good, err := New(7, 100, []int16{1, -2, 3}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:HeaderLen-1],
		"bad magic":    append([]byte{'X'}, good[1:]...),
		"bad version":  append([]byte{good[0], good[1], 99}, good[3:]...),
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte{}, good...), 0),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

// TestFrameDecodeCorrupt: flipping any payload or protected-header bit
// fails the CRC typed.
func TestFrameDecodeCorrupt(t *testing.T) {
	good, err := New(7, 100, []int16{1, -2, 3}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int{3, 8, 13, HeaderLen, len(good) - 1} {
		buf := append([]byte{}, good...)
		buf[at] ^= 0x40
		if _, err := Decode(buf); err == nil {
			t.Errorf("flip at %d: decoded clean", at)
		}
	}
	// A payload flip specifically must be ErrCorrupt (header flips may
	// legitimately surface as a CRC-field mismatch too).
	buf := append([]byte{}, good...)
	buf[HeaderLen] ^= 0x01
	if _, err := Decode(buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("payload flip: got %v, want ErrCorrupt", err)
	}
	f := New(1, 2, []int16{5, 6})
	f.PCM[0] = 7
	if err := f.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Verify after mutation: got %v, want ErrCorrupt", err)
	}
}
