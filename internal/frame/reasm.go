package frame

import (
	"fmt"
	"sort"
	"time"
)

// DefaultWindow is the default reorder-window bound in samples (~0.74 s at
// 44.1 kHz): how far ahead of the in-order delivery frontier a reassembler
// buffers before it stops waiting for a retransmission and declares the
// oldest gap lost.
const DefaultWindow = 1 << 15

// Delivery is one in-order step of the reassembled feed: either a
// contiguous run of PCM or an explicit lost span the downstream scan must
// account for. Deliveries from one Reassembler cover the recording's
// prefix [0, Next()) exactly once, in order, with no overlaps.
type Delivery struct {
	// Offset is the delivery's first sample index in the recording.
	Offset int
	// PCM is the delivered run (nil for a lost span). It aliases the
	// reassembler's buffer; consume it before the next Add call.
	PCM []int16
	// Lost is the span length declared lost (0 for a data run).
	Lost int
}

// Stats counts a reassembler's frame dispositions (diagnostics).
type Stats struct {
	// Frames counts frames accepted with at least one fresh sample.
	Frames int
	// Dups counts frames carrying only already-covered samples.
	Dups int
	// Corrupt counts frames rejected for a CRC mismatch.
	Corrupt int
	// Rejected counts frames rejected for an out-of-range payload.
	Rejected int
	// LostSamples counts samples declared lost so far.
	LostSamples int
}

// span is a half-open covered sample range [lo, hi).
type span struct{ lo, hi int }

// hole is a half-open missing sample range [lo, hi) — a gap awaiting
// repair — stamped with when the reassembler first observed it, so a
// wall-clock repair deadline can expire it.
type hole struct {
	lo, hi   int
	openedAt time.Time
}

// Reassembler converts an out-of-order, lossy frame arrival sequence into
// the in-order delivery sequence the contiguous scan path consumes. Frames
// land at their Offset; runs contiguous with the delivery frontier are
// delivered immediately; everything else is buffered. A gap (a hole before
// buffered data) stays repairable by a retransmitted frame until either
// (a) the buffered data runs more than the reorder window ahead of the
// frontier — the structural bound, a pure function of the frame sequence,
// which is what keeps loss handling bit-deterministic — or (b) a caller-
// driven wall-clock deadline expires it (Expire), or (c) the feed is
// declared over (Flush). An expired gap becomes an explicit lost-span
// delivery, never silently skipped audio.
//
// A Reassembler is not safe for concurrent use; callers serialize access
// (the session layer holds one per role under a per-role lock).
type Reassembler struct {
	total  int
	window int
	buf    []int16
	next   int // delivery frontier: [0, next) fully delivered
	maxEnd int // highest sample covered by any accepted frame
	spans  []span
	holes  []hole // holes between next and the spans, ascending
	stats  Stats
}

// NewReassembler builds a reassembler for a recording declared total
// samples long, with the given reorder-window bound in samples (0 →
// DefaultWindow).
func NewReassembler(total, window int) (*Reassembler, error) {
	if total < 1 {
		return nil, fmt.Errorf("frame: declared recording length %d must be ≥ 1", total)
	}
	if window == 0 {
		window = DefaultWindow
	}
	if window < 1 {
		return nil, fmt.Errorf("frame: reorder window %d must be ≥ 1 (0 for the default)", window)
	}
	return &Reassembler{total: total, window: window, buf: make([]int16, total)}, nil
}

// Next returns the delivery frontier: every sample below it has been
// delivered, as data or as part of a lost span.
func (r *Reassembler) Next() int { return r.next }

// Pending returns how many samples are buffered beyond the frontier.
func (r *Reassembler) Pending() int {
	n := 0
	for _, sp := range r.spans {
		n += sp.hi - sp.lo
	}
	return n
}

// Gaps returns the open (still repairable) holes before buffered data as
// [lo, hi) sample ranges, ascending.
func (r *Reassembler) Gaps() [][2]int {
	out := make([][2]int, len(r.holes))
	for i, h := range r.holes {
		out[i] = [2]int{h.lo, h.hi}
	}
	return out
}

// Stats returns the frame-disposition counters so far.
func (r *Reassembler) Stats() Stats { return r.stats }

// Add ingests one frame at time now and returns the in-order deliveries it
// unlocked (often none — the frame may only fill buffer). The frame's CRC
// is verified first: a corrupt frame returns ErrCorrupt with no state
// change, an out-of-range payload ErrRange likewise. fresh reports whether
// the frame contributed at least one not-yet-covered sample (the session
// layer's definition of client progress). Duplicate and already-delivered
// payloads are accepted silently (retransmissions crossing a repair are
// normal); overlapping payloads keep the first-arrived samples.
func (r *Reassembler) Add(f Frame, now time.Time) (dv []Delivery, fresh bool, err error) {
	if err := f.Verify(); err != nil {
		r.stats.Corrupt++
		return nil, false, err
	}
	if f.Offset < 0 || f.Offset+len(f.PCM) > r.total {
		r.stats.Rejected++
		return nil, false, fmt.Errorf("%w: [%d, %d) against declared length %d",
			ErrRange, f.Offset, f.Offset+len(f.PCM), r.total)
	}
	lo, hi := f.Offset, f.Offset+len(f.PCM)
	if lo < r.next {
		lo = r.next
	}
	if lo >= hi {
		r.stats.Dups++
		return nil, false, nil
	}
	fresh = r.insert(lo, hi, f.PCM[lo-f.Offset:])
	if !fresh {
		r.stats.Dups++
		return nil, false, nil
	}
	r.stats.Frames++
	if hi > r.maxEnd {
		r.maxEnd = hi
	}
	r.rebuildHoles(now)
	dv = r.pop(nil)
	// Structural expiry: buffered data may run at most window samples
	// ahead of the frontier. Past that, the oldest gap will not be waited
	// on any longer — it is declared lost, which unlocks the data behind
	// it, until the bound holds again.
	for r.maxEnd-r.next > r.window && len(r.holes) > 0 {
		dv = r.loseFront(dv)
		dv = r.pop(dv)
	}
	return dv, true, nil
}

// insert copies the not-yet-covered samples of data (covering [lo, hi))
// into the buffer and merges the range into the span set, reporting
// whether any sample was fresh. First arrival wins on overlaps.
func (r *Reassembler) insert(lo, hi int, data []int16) bool {
	fresh := false
	i := sort.Search(len(r.spans), func(i int) bool { return r.spans[i].hi >= lo })
	cur := lo
	for j := i; j < len(r.spans) && r.spans[j].lo <= hi; j++ {
		if cur < r.spans[j].lo {
			copy(r.buf[cur:r.spans[j].lo], data[cur-lo:])
			fresh = true
		}
		if r.spans[j].hi > cur {
			cur = r.spans[j].hi
		}
	}
	if cur < hi {
		copy(r.buf[cur:hi], data[cur-lo:])
		fresh = true
	}
	if !fresh {
		return false
	}
	// Merge [lo, hi) with every span it touches (adjacency counts).
	j := i
	mlo, mhi := lo, hi
	for j < len(r.spans) && r.spans[j].lo <= hi {
		if r.spans[j].lo < mlo {
			mlo = r.spans[j].lo
		}
		if r.spans[j].hi > mhi {
			mhi = r.spans[j].hi
		}
		j++
	}
	merged := append(r.spans[:i:i], span{mlo, mhi})
	r.spans = append(merged, r.spans[j:]...)
	return true
}

// rebuildHoles recomputes the hole list from (next, spans), carrying each
// surviving hole's openedAt stamp: a hole overlapping an old hole keeps
// the old (earliest) stamp — those samples have been missing since then —
// and a genuinely new hole is stamped now.
func (r *Reassembler) rebuildHoles(now time.Time) {
	old := r.holes
	fresh := r.holes[:0:0]
	cur := r.next
	for _, sp := range r.spans {
		if sp.lo > cur {
			h := hole{lo: cur, hi: sp.lo, openedAt: now}
			for _, o := range old {
				if o.lo < h.hi && o.hi > h.lo && o.openedAt.Before(h.openedAt) {
					h.openedAt = o.openedAt
				}
			}
			fresh = append(fresh, h)
		}
		cur = sp.hi
	}
	r.holes = fresh
}

// pop appends deliveries for the contiguous data at the frontier.
func (r *Reassembler) pop(dv []Delivery) []Delivery {
	for len(r.spans) > 0 && r.spans[0].lo == r.next {
		hi := r.spans[0].hi
		dv = append(dv, Delivery{Offset: r.next, PCM: r.buf[r.next:hi:hi]})
		r.next = hi
		r.spans = r.spans[1:]
	}
	return dv
}

// loseFront declares the front hole lost and appends its delivery. The
// front hole always starts at the frontier (pop ran first).
func (r *Reassembler) loseFront(dv []Delivery) []Delivery {
	h := r.holes[0]
	dv = append(dv, Delivery{Offset: r.next, Lost: h.hi - h.lo})
	r.stats.LostSamples += h.hi - h.lo
	r.next = h.hi
	r.holes = r.holes[1:]
	return dv
}

// Expire declares lost every leading hole whose repair deadline has
// passed — openedAt + timeout ≤ now — and returns the deliveries that
// unlocks. Only leading holes can expire (delivery is in-order); a
// deeper expired hole emerges as the frontier advances. The caller drives
// the clock; the reassembler never consults time itself.
func (r *Reassembler) Expire(now time.Time, timeout time.Duration) []Delivery {
	var dv []Delivery
	for len(r.holes) > 0 && r.holes[0].lo == r.next && now.Sub(r.holes[0].openedAt) >= timeout {
		dv = r.loseFront(dv)
		dv = r.pop(dv)
	}
	return dv
}

// Flush ends the feed: every remaining hole — including the undelivered
// tail up to the declared total — is declared lost and everything buffered
// is delivered. After Flush the frontier equals the declared total. The
// session layer calls this when the client declares itself done feeding
// (FinishFeed), so a session can decide with a lost tail instead of
// waiting forever for audio that will never come.
func (r *Reassembler) Flush() []Delivery {
	dv := r.pop(nil)
	for len(r.holes) > 0 {
		dv = r.loseFront(dv)
		dv = r.pop(dv)
	}
	if r.next < r.total {
		n := r.total - r.next
		dv = append(dv, Delivery{Offset: r.next, Lost: n})
		r.stats.LostSamples += n
		r.next = r.total
	}
	return dv
}
