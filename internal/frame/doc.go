// Package frame is the lossy-transport ingestion layer of a streaming
// authentication session: a small self-describing wire format for PCM
// chunks (Frame, Encode, Decode — seq/offset/CRC-protected) and a
// Reassembler that accepts frames out of order, buffers a bounded reorder
// window, repairs gaps from retransmissions, and converts what cannot be
// repaired into explicit lost-span deliveries — so the in-order scan
// engine above it never sees desynchronized audio and the session layer
// can make typed degraded-mode decisions instead of silently scoring a
// hole.
//
// The reassembler is deterministic: the delivery sequence (data runs and
// lost spans alike) is a pure function of the frame arrival sequence and
// the reorder-window bound. Wall-clock gap expiry (Expire) is the only
// time-dependent path, and it is driven explicitly by the caller's clock,
// never by an internal timer.
package frame
