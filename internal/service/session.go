package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

// Streaming-session sentinels, re-exported from the layers that own them so
// service callers match every failure mode against one package.
var (
	// ErrStreamDecided: audio arrived after the session reached its
	// decision (or after Close resolved it).
	ErrStreamDecided = core.ErrStreamDecided
	// ErrFeedOverflow: a chunk would exceed the session's declared
	// recording length; it was rejected whole and the session stays open.
	ErrFeedOverflow = detect.ErrFeedOverflow
	// ErrNeedMoreAudio: Result was called before enough audio arrived to
	// decide. The wrapped message carries how many samples are still
	// missing; keep feeding and retry.
	ErrNeedMoreAudio = errors.New("service: streaming session needs more audio")
)

// Session is one admitted streaming authentication session: Steps I–III
// already ran, and the session now consumes each role's microphone PCM in
// chunks, deciding as soon as both recordings have revealed their signals —
// typically well before either recording is complete.
//
// A Session occupies one of the service's MaxSessions slots from OpenSession
// until it resolves — by decision, by error, by Close (either the session's
// or the service's), by context cancellation, or by the lifecycle watchdog
// (ErrSessionStalled past Config.SessionIdleTimeout, ErrSessionExpired past
// Config.SessionMaxLifetime). Every resolution path releases the slot
// exactly once. The methods are safe for concurrent use; the intended shape
// is one feeder goroutine per role.
type Session struct {
	svc *AuthService
	// shard is the worker group this session was pinned to at admission:
	// every scan its feeds trigger runs on this shard's pool and
	// workspaces, and a panic in its feed path replenishes this shard.
	shard  *shard
	as     *core.AuthStream
	ctx    context.Context
	cancel context.CancelFunc

	// Lifecycle-watchdog clocks: when the session was opened, and the
	// UnixNano of the last successful Feed (initialized to the open time,
	// so the open→first-Feed gap is bounded too). lastFeed is atomic
	// because feeders store it while the watchdog loads it off-lock.
	// active counts Feed/TryResult calls currently running: while it is
	// nonzero the client is mid-delivery (or waiting on the decision scan)
	// and the idle clock does not tick — a scan that outlasts
	// SessionIdleTimeout is work, not a stall (only SessionMaxLifetime
	// bounds it).
	opened   time.Time
	lastFeed atomic.Int64
	active   atomic.Int32

	mu       sync.Mutex
	resolved bool
	res      *core.Result
	err      error
}

// OpenSession admits and opens a streaming session for the request:
// validation and admission control are identical to AuthenticateContext
// (ErrOverloaded, ErrClosed, ctx.Err() from the queue), and Steps I–III run
// before it returns, so the returned session is ready to ingest audio. The
// ctx governs the whole session: canceling it resolves an undecided session
// to ctx's error. The caller must resolve the session — feed it to a
// decision or Close it — or its slot stays occupied.
func (s *AuthService) OpenSession(ctx context.Context, req Request) (*Session, error) {
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	// Chaos hook: same admission perturbation point as the batch path.
	if err := faultinject.Fire(faultinject.SiteServiceAcquire); err != nil {
		return nil, err
	}
	if err := s.begin(ctx); err != nil {
		return nil, err
	}
	sh := s.pin()
	sess, err := s.openStream(ctx, req, sh)
	if err != nil {
		var pe *detect.PanicError
		if errors.As(err, &pe) {
			err = &InternalError{Panic: pe.Value, Stack: pe.Stack}
		}
		if errors.Is(err, ErrInternal) {
			sh.replenish(s.cfg)
		}
		s.end()
		return nil, err
	}
	return sess, nil
}

// openStream builds and registers the session once a slot is held. Panic
// isolation for the open phase (device build, scene render) lives here.
func (s *AuthService) openStream(ctx context.Context, req Request, sh *shard) (sess *Session, err error) {
	defer func() {
		if r := recover(); r != nil {
			sess, err = nil, &InternalError{Panic: r, Stack: debug.Stack()}
		}
	}()
	// Chaos hook: same per-session crash point as the batch path.
	if err := faultinject.Fire(faultinject.SiteServiceSession); err != nil {
		return nil, err
	}
	a, plays, err := s.buildSession(req, sh)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sctx, cancel := context.WithCancel(ctx)
	as, err := a.OpenStreamContext(sctx, plays...)
	if err != nil {
		cancel()
		if ctxe := sctx.Err(); ctxe != nil && errors.Is(err, ctxe) {
			return nil, ctxe
		}
		return nil, fmt.Errorf("service: %w", err)
	}
	sess = &Session{svc: s, shard: sh, as: as, ctx: sctx, cancel: cancel, opened: time.Now()}
	sess.lastFeed.Store(sess.opened.UnixNano())
	// Register under the service lock, re-checking closed: a Close racing
	// this open may already have swept the streams map, and a session
	// registered after the sweep would never be force-resolved.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	s.streams[sess] = struct{}{}
	s.mu.Unlock()
	return sess, nil
}

// resolve finishes the session exactly once: records the outcome, cancels
// any in-flight scan, unregisters from the service, and releases the
// session slot. First writer wins; later calls are no-ops.
func (sn *Session) resolve(res *core.Result, err error) bool {
	sn.mu.Lock()
	if sn.resolved {
		sn.mu.Unlock()
		return false
	}
	sn.resolved = true
	sn.res, sn.err = res, err
	sn.mu.Unlock()
	sn.cancel()
	s := sn.svc
	s.mu.Lock()
	delete(s.streams, sn)
	if err == nil {
		s.sessions++
	}
	s.mu.Unlock()
	s.end()
	return true
}

// outcome returns the recorded resolution (valid once resolved).
func (sn *Session) outcome() (*core.Result, error, bool) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.res, sn.err, sn.resolved
}

// fail classifies an error out of the streaming engine and resolves the
// session when it is fatal: a recovered scan-worker panic becomes
// ErrInternal (with the workspace replenished, as in the batch path) and a
// session-context error becomes that error. Non-fatal errors — an
// over-length chunk, audio after the decision — pass through typed with the
// session still open.
func (sn *Session) fail(err error) error {
	if errors.Is(err, ErrFeedOverflow) || errors.Is(err, ErrStreamDecided) {
		return err
	}
	var pe *detect.PanicError
	if errors.As(err, &pe) {
		ie := &InternalError{Panic: pe.Value, Stack: pe.Stack}
		sn.shard.replenish(sn.svc.cfg)
		sn.resolve(nil, ie)
		return ie
	}
	if ctxe := sn.ctx.Err(); ctxe != nil && errors.Is(err, ctxe) {
		sn.resolve(nil, ctxe)
		// The session context is also canceled by resolve itself, so a
		// feed whose scan was interrupted because the watchdog (or Close)
		// resolved the session first reports the session's actual
		// resolution error, not a bare context error — callers see the
		// same typed outcome no matter when their feed lost the race.
		if _, rerr, done := sn.outcome(); done && rerr != nil {
			return rerr
		}
		return ctxe
	}
	return fmt.Errorf("service: %w", err)
}

// Recording returns the role's complete rendered recording — the simulated
// microphone the caller feeds chunks from (nil once resolved by Close
// without a decision, or when the session was pre-decided).
func (sn *Session) Recording(role core.Role) []int16 { return sn.as.Recording(role) }

// EarlyFeedLen returns the role's decision horizon: once every role has
// been fed this much, Result decides without the rest of the recording.
func (sn *Session) EarlyFeedLen(role core.Role) int { return sn.as.EarlyFeedLen(role) }

// Fed returns how many samples of the role's recording have arrived.
func (sn *Session) Fed(role core.Role) int { return sn.as.Fed(role) }

// Feed ingests one chunk of the role's recording and advances that role's
// scan. Typed failures: ErrFeedOverflow (chunk rejected whole, session
// open), ErrStreamDecided (decision already made — or the session's own
// resolution error, if it resolved to one), ErrInternal (a panic anywhere
// in the feed path; the session is resolved and its slot released), or the
// session context's error once canceled. A panic in the feed path is
// recovered here, mirroring the batch pipeline's session-goroutine
// isolation.
func (sn *Session) Feed(role core.Role, pcm []int16) (err error) {
	if _, rerr, done := sn.outcome(); done {
		if rerr != nil {
			return rerr
		}
		return ErrStreamDecided
	}
	sn.active.Add(1)
	defer sn.active.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Panic: r, Stack: debug.Stack()}
			sn.shard.replenish(sn.svc.cfg)
			sn.resolve(nil, ie)
			err = ie
		}
	}()
	// Chaos hook: perturb ingestion itself (error → one failed feed with
	// the session open; panic → feeder crash, session resolves internal).
	if ferr := faultinject.Fire(faultinject.SiteStreamFeed); ferr != nil {
		return fmt.Errorf("service: feed: %w", ferr)
	}
	if ferr := sn.as.Feed(role, pcm); ferr != nil {
		return sn.fail(ferr)
	}
	// Only a successful feed resets the idle clock: refused chunks
	// (overflow, injected faults) are not progress, so a client spamming
	// garbage still stalls out.
	sn.lastFeed.Store(time.Now().UnixNano())
	return nil
}

// TryResult attempts the decision over the audio fed so far. need > 0
// means the session is healthy but undecided: at least that many more
// samples are required for some role. need == 0 with a nil error is the
// decision (cached; the slot is released and later calls keep returning
// it). Errors follow Feed's taxonomy. Decisions are bit-identical to
// AuthenticateContext on the same request — fed any chunking, at any
// GOMAXPROCS, decided at the horizon or after the full feed.
func (sn *Session) TryResult() (res *core.Result, need int, err error) {
	if r, rerr, done := sn.outcome(); done {
		return r, 0, rerr
	}
	sn.active.Add(1)
	defer sn.active.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Panic: r, Stack: debug.Stack()}
			sn.shard.replenish(sn.svc.cfg)
			sn.resolve(nil, ie)
			res, need, err = nil, 0, ie
		}
	}()
	r, need, terr := sn.as.TryResult()
	if terr != nil {
		return nil, 0, sn.fail(terr)
	}
	if need > 0 {
		return nil, need, nil
	}
	sn.resolve(r, nil)
	return r, 0, nil
}

// Result is TryResult for callers done feeding: an undecided session
// reports ErrNeedMoreAudio (wrapped with the missing sample count) instead
// of a need.
func (sn *Session) Result() (*core.Result, error) {
	res, need, err := sn.TryResult()
	if err != nil {
		return nil, err
	}
	if need > 0 {
		return nil, fmt.Errorf("%w: %d more samples required", ErrNeedMoreAudio, need)
	}
	return res, nil
}

// Close abandons an undecided session, resolving it to context.Canceled
// and releasing its slot; after a decision it is a no-op. Idempotent.
func (sn *Session) Close() {
	sn.resolve(nil, context.Canceled)
}
