package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/faultinject"
	"github.com/acoustic-auth/piano/internal/frame"
)

// Streaming-session sentinels, re-exported from the layers that own them so
// service callers match every failure mode against one package.
var (
	// ErrStreamDecided: audio arrived after the session reached its
	// decision (or after Close resolved it).
	ErrStreamDecided = core.ErrStreamDecided
	// ErrFeedOverflow: a chunk would exceed the session's declared
	// recording length; it was rejected whole and the session stays open.
	ErrFeedOverflow = detect.ErrFeedOverflow
	// ErrNeedMoreAudio: Result was called before enough audio arrived to
	// decide. The wrapped message carries how many samples are still
	// missing; keep feeding and retry.
	ErrNeedMoreAudio = errors.New("service: streaming session needs more audio")
	// ErrInsufficientAudio: transport loss crossed the point where a
	// decision would be a guess — cumulative loss over the detect config's
	// MaxLossFraction ceiling, or loss inside the peak's fine-scan band.
	// It resolves the session through the same first-writer-wins path as
	// every other resolution; the slot is released.
	ErrInsufficientAudio = detect.ErrInsufficientAudio
	// ErrFrameCorrupt: a frame's payload contradicts its CRC. The frame
	// was rejected whole — corrupt audio is never scored — and the session
	// stays open for a retransmission.
	ErrFrameCorrupt = frame.ErrCorrupt
	// ErrFrameRange: a frame's samples fall outside the declared recording
	// (or behind already-delivered audio with different sample values).
	// Rejected whole; session open.
	ErrFrameRange = frame.ErrRange
	// ErrMixedFeed: a role was fed through both Feed (trusted transport)
	// and FeedFrame (lossy transport). The two paths have incompatible
	// ordering contracts, so a role commits to one on its first feed.
	ErrMixedFeed = errors.New("service: role fed through both Feed and FeedFrame")
)

// Session is one admitted streaming authentication session: Steps I–III
// already ran, and the session now consumes each role's microphone PCM in
// chunks, deciding as soon as both recordings have revealed their signals —
// typically well before either recording is complete.
//
// A Session occupies one of the service's MaxSessions slots from OpenSession
// until it resolves — by decision, by error, by Close (either the session's
// or the service's), by context cancellation, or by the lifecycle watchdog
// (ErrSessionStalled past Config.SessionIdleTimeout, ErrSessionExpired past
// Config.SessionMaxLifetime). Every resolution path releases the slot
// exactly once. The methods are safe for concurrent use; the intended shape
// is one feeder goroutine per role.
type Session struct {
	svc *AuthService
	// shard is the worker group this session was pinned to at admission:
	// every scan its feeds trigger runs on this shard's pool and
	// workspaces, and a panic in its feed path replenishes this shard.
	shard  *shard
	as     *core.AuthStream
	ctx    context.Context
	cancel context.CancelFunc

	// Lifecycle-watchdog clocks: when the session was opened, and the
	// UnixNano of the last successful Feed (initialized to the open time,
	// so the open→first-Feed gap is bounded too). lastFeed is atomic
	// because feeders store it while the watchdog loads it off-lock.
	// active counts Feed/TryResult calls currently running: while it is
	// nonzero the client is mid-delivery (or waiting on the decision scan)
	// and the idle clock does not tick — a scan that outlasts
	// SessionIdleTimeout is work, not a stall (only SessionMaxLifetime
	// bounds it).
	opened   time.Time
	lastFeed atomic.Int64
	active   atomic.Int32

	// ingest holds each role's lossy-transport reassembly state, indexed
	// by core.Role. A role that never sees a FeedFrame keeps a nil
	// reassembler and costs nothing.
	ingest [2]roleIngest

	mu       sync.Mutex
	resolved bool
	res      *core.Result
	err      error
}

// roleIngest is one role's framed-transport state: the jitter buffer
// reassembling out-of-order frames into the in-order feed, and the
// plain/framed commitment that keeps the two transports from interleaving.
// Its mutex serializes FeedFrame/FinishFeed/gap-expiry for the role and is
// always taken before the engine's own locks, so delivery order into the
// scan — the thing the determinism contract hangs on — is the reassembler's
// order, never a race between callers.
type roleIngest struct {
	mu    sync.Mutex
	reasm *frame.Reassembler
	plain bool // role committed to Feed; FeedFrame is refused
}

// OpenSession admits and opens a streaming session for the request:
// validation and admission control are identical to AuthenticateContext
// (ErrOverloaded, ErrClosed, ctx.Err() from the queue), and Steps I–III run
// before it returns, so the returned session is ready to ingest audio. The
// ctx governs the whole session: canceling it resolves an undecided session
// to ctx's error. The caller must resolve the session — feed it to a
// decision or Close it — or its slot stays occupied.
func (s *AuthService) OpenSession(ctx context.Context, req Request) (*Session, error) {
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	// Chaos hook: same admission perturbation point as the batch path.
	if err := faultinject.Fire(faultinject.SiteServiceAcquire); err != nil {
		return nil, err
	}
	if err := s.begin(ctx); err != nil {
		return nil, err
	}
	sh := s.pin()
	sess, err := s.openStream(ctx, req, sh)
	if err != nil {
		var pe *detect.PanicError
		if errors.As(err, &pe) {
			err = &InternalError{Panic: pe.Value, Stack: pe.Stack}
		}
		if errors.Is(err, ErrInternal) {
			sh.replenish(s.cfg)
		}
		s.end()
		return nil, err
	}
	return sess, nil
}

// openStream builds and registers the session once a slot is held. Panic
// isolation for the open phase (device build, scene render) lives here.
func (s *AuthService) openStream(ctx context.Context, req Request, sh *shard) (sess *Session, err error) {
	defer func() {
		if r := recover(); r != nil {
			sess, err = nil, &InternalError{Panic: r, Stack: debug.Stack()}
		}
	}()
	// Chaos hook: same per-session crash point as the batch path.
	if err := faultinject.Fire(faultinject.SiteServiceSession); err != nil {
		return nil, err
	}
	a, plays, err := s.buildSession(req, sh)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sctx, cancel := context.WithCancel(ctx)
	as, err := a.OpenStreamContext(sctx, plays...)
	if err != nil {
		cancel()
		if ctxe := sctx.Err(); ctxe != nil && errors.Is(err, ctxe) {
			return nil, ctxe
		}
		return nil, fmt.Errorf("service: %w", err)
	}
	sess = &Session{svc: s, shard: sh, as: as, ctx: sctx, cancel: cancel, opened: time.Now()}
	sess.lastFeed.Store(sess.opened.UnixNano())
	// Register under the service lock, re-checking closed: a Close racing
	// this open may already have swept the streams map, and a session
	// registered after the sweep would never be force-resolved.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	s.streams[sess] = struct{}{}
	s.mu.Unlock()
	return sess, nil
}

// resolve finishes the session exactly once: records the outcome, cancels
// any in-flight scan, unregisters from the service, and releases the
// session slot. First writer wins; later calls are no-ops.
func (sn *Session) resolve(res *core.Result, err error) bool {
	sn.mu.Lock()
	if sn.resolved {
		sn.mu.Unlock()
		return false
	}
	sn.resolved = true
	sn.res, sn.err = res, err
	sn.mu.Unlock()
	sn.cancel()
	s := sn.svc
	s.mu.Lock()
	delete(s.streams, sn)
	if err == nil {
		s.sessions++
	}
	s.mu.Unlock()
	s.end()
	return true
}

// outcome returns the recorded resolution (valid once resolved).
func (sn *Session) outcome() (*core.Result, error, bool) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.res, sn.err, sn.resolved
}

// fail classifies an error out of the streaming engine and resolves the
// session when it is fatal: a recovered scan-worker panic becomes
// ErrInternal (with the workspace replenished, as in the batch path) and a
// session-context error becomes that error. Non-fatal errors — an
// over-length chunk, audio after the decision — pass through typed with the
// session still open.
func (sn *Session) fail(err error) error {
	if errors.Is(err, ErrFeedOverflow) || errors.Is(err, ErrStreamDecided) {
		return err
	}
	if errors.Is(err, ErrInsufficientAudio) {
		// Too much of the recording is gone for any decision to be
		// trustworthy. This is fatal and final: resolve the session (first
		// writer wins — a decision that raced in first stands) rather than
		// leave a slot occupied by a session that can never decide.
		sn.resolve(nil, err)
		if _, rerr, done := sn.outcome(); done && rerr != nil {
			return rerr
		}
		return err
	}
	var pe *detect.PanicError
	if errors.As(err, &pe) {
		ie := &InternalError{Panic: pe.Value, Stack: pe.Stack}
		sn.shard.replenish(sn.svc.cfg)
		sn.resolve(nil, ie)
		return ie
	}
	if ctxe := sn.ctx.Err(); ctxe != nil && errors.Is(err, ctxe) {
		sn.resolve(nil, ctxe)
		// The session context is also canceled by resolve itself, so a
		// feed whose scan was interrupted because the watchdog (or Close)
		// resolved the session first reports the session's actual
		// resolution error, not a bare context error — callers see the
		// same typed outcome no matter when their feed lost the race.
		if _, rerr, done := sn.outcome(); done && rerr != nil {
			return rerr
		}
		return ctxe
	}
	return fmt.Errorf("service: %w", err)
}

// Recording returns the role's complete rendered recording — the simulated
// microphone the caller feeds chunks from (nil once resolved by Close
// without a decision, or when the session was pre-decided).
func (sn *Session) Recording(role core.Role) []int16 { return sn.as.Recording(role) }

// EarlyFeedLen returns the role's decision horizon: once every role has
// been fed this much, Result decides without the rest of the recording.
func (sn *Session) EarlyFeedLen(role core.Role) int { return sn.as.EarlyFeedLen(role) }

// Fed returns how many samples of the role's recording have arrived.
func (sn *Session) Fed(role core.Role) int { return sn.as.Fed(role) }

// Feed ingests one chunk of the role's recording and advances that role's
// scan. Typed failures: ErrFeedOverflow (chunk rejected whole, session
// open), ErrStreamDecided (decision already made — or the session's own
// resolution error, if it resolved to one), ErrInternal (a panic anywhere
// in the feed path; the session is resolved and its slot released), or the
// session context's error once canceled. A panic in the feed path is
// recovered here, mirroring the batch pipeline's session-goroutine
// isolation.
func (sn *Session) Feed(role core.Role, pcm []int16) (err error) {
	if _, rerr, done := sn.outcome(); done {
		if rerr != nil {
			return rerr
		}
		return ErrStreamDecided
	}
	sn.active.Add(1)
	defer sn.active.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Panic: r, Stack: debug.Stack()}
			sn.shard.replenish(sn.svc.cfg)
			sn.resolve(nil, ie)
			err = ie
		}
	}()
	// Chaos hook: perturb ingestion itself (error → one failed feed with
	// the session open; panic → feeder crash, session resolves internal).
	if ferr := faultinject.Fire(faultinject.SiteStreamFeed); ferr != nil {
		return fmt.Errorf("service: feed: %w", ferr)
	}
	if ing := sn.ingestFor(role); ing != nil {
		ing.mu.Lock()
		if ing.reasm != nil {
			ing.mu.Unlock()
			return ErrMixedFeed
		}
		ing.plain = true
		ing.mu.Unlock()
	}
	if ferr := sn.as.Feed(role, pcm); ferr != nil {
		return sn.fail(ferr)
	}
	// Only a successful feed resets the idle clock: refused chunks
	// (overflow, injected faults) are not progress, so a client spamming
	// garbage still stalls out.
	sn.lastFeed.Store(time.Now().UnixNano())
	return nil
}

// ingestFor returns the role's ingest cell (nil for an unknown role, which
// the engine then rejects with its own typed error).
func (sn *Session) ingestFor(role core.Role) *roleIngest {
	if int(role) < 0 || int(role) >= len(sn.ingest) {
		return nil
	}
	return &sn.ingest[int(role)]
}

// FeedFrame ingests one framed chunk of the role's recording from a lossy
// transport. Frames may arrive out of order, duplicated, or overlapping;
// the per-role reassembler buffers them (bounded by Config.ReorderWindow)
// and delivers contiguous runs to the same scan path as Feed, so a framed
// session on a clean transport decides bit-identically to a Feed session
// and to the batch pipeline.
//
// Typed failures, all leaving the session open: ErrFrameCorrupt (CRC
// mismatch — the frame is rejected whole and never scored; resend it),
// ErrFrameRange (samples outside the declared recording), ErrMixedFeed
// (the role already committed to plain Feed). When buffered audio runs
// more than the reorder window past the in-order frontier, the oldest gap
// is declared lost instead of waiting — and once cumulative loss crosses
// the detect ceiling the session resolves to ErrInsufficientAudio (fatal,
// slot released). ErrStreamDecided, ErrInternal, and context errors follow
// Feed's taxonomy.
func (sn *Session) FeedFrame(role core.Role, f frame.Frame) (err error) {
	if _, rerr, done := sn.outcome(); done {
		if rerr != nil {
			return rerr
		}
		return ErrStreamDecided
	}
	sn.active.Add(1)
	defer sn.active.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Panic: r, Stack: debug.Stack()}
			sn.shard.replenish(sn.svc.cfg)
			sn.resolve(nil, ie)
			err = ie
		}
	}()
	// Chaos hook: perturb framed ingestion (error → one failed frame with
	// the session open; panic → feeder crash, session resolves internal;
	// delay → congested transport).
	if ferr := faultinject.Fire(faultinject.SiteFrameFeed); ferr != nil {
		return fmt.Errorf("service: frame feed: %w", ferr)
	}
	ing := sn.ingestFor(role)
	if ing == nil {
		return fmt.Errorf("service: unknown stream role %d", int(role))
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.plain {
		return ErrMixedFeed
	}
	if ing.reasm == nil {
		rec := sn.as.Recording(role)
		if rec == nil {
			// Pre-decided stream (Bluetooth out of range): no recording to
			// reassemble against.
			return ErrStreamDecided
		}
		r, rerr := frame.NewReassembler(len(rec), sn.svc.cfg.ReorderWindow)
		if rerr != nil {
			return fmt.Errorf("service: %w", rerr)
		}
		ing.reasm = r
	}
	dv, fresh, ferr := ing.reasm.Add(f, time.Now())
	if derr := sn.deliver(role, dv); derr != nil {
		return derr
	}
	if ferr != nil {
		// Typed rejection (corrupt, out of range): nothing was ingested and
		// the session stays open. Returned after any deliveries the frame's
		// arrival unblocked structurally (there are none today — rejected
		// frames never advance the frontier — but the order is load-bearing
		// if that ever changes).
		return fmt.Errorf("service: frame rejected: %w", ferr)
	}
	if fresh {
		// Only a frame that contributed new samples resets the idle clock:
		// duplicate spam must not keep a stalled session alive forever.
		sn.lastFeed.Store(time.Now().UnixNano())
	}
	return nil
}

// deliver replays the reassembler's in-order deliveries into the scan
// engine: data spans through the Feed path, lost spans through FeedLost
// (zero-filled, their windows deterministically excluded from scoring).
// Called with the role's ingest mutex held, so the engine sees exactly the
// reassembler's delivery order.
func (sn *Session) deliver(role core.Role, dv []frame.Delivery) error {
	for _, d := range dv {
		var err error
		if d.Lost > 0 {
			err = sn.as.FeedLost(role, d.Lost)
		} else {
			err = sn.as.Feed(role, d.PCM)
		}
		if err != nil {
			return sn.fail(err)
		}
	}
	return nil
}

// FinishFeed declares the role's lossy transport finished: every gap still
// awaiting retransmission and the entire unreceived tail of the recording
// are declared lost, unlocking whatever audio was buffered behind them.
// After FinishFeed the role is fully fed (data plus loss), so TryResult
// will either decide from the surviving windows or report
// ErrInsufficientAudio — it will never wait for more audio from this role.
// Only meaningful for framed roles; a role committed to plain Feed gets
// ErrMixedFeed. Idempotent.
func (sn *Session) FinishFeed(role core.Role) (err error) {
	if _, rerr, done := sn.outcome(); done {
		if rerr != nil {
			return rerr
		}
		return ErrStreamDecided
	}
	sn.active.Add(1)
	defer sn.active.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Panic: r, Stack: debug.Stack()}
			sn.shard.replenish(sn.svc.cfg)
			sn.resolve(nil, ie)
			err = ie
		}
	}()
	ing := sn.ingestFor(role)
	if ing == nil {
		return fmt.Errorf("service: unknown stream role %d", int(role))
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.plain {
		return ErrMixedFeed
	}
	if ing.reasm == nil {
		rec := sn.as.Recording(role)
		if rec == nil {
			return ErrStreamDecided
		}
		// No frame ever arrived: the whole recording is the tail, and
		// Flush below declares all of it lost (which resolves the session
		// ErrInsufficientAudio through the ceiling — the honest outcome for
		// a transport that delivered nothing).
		r, rerr := frame.NewReassembler(len(rec), sn.svc.cfg.ReorderWindow)
		if rerr != nil {
			return fmt.Errorf("service: %w", rerr)
		}
		ing.reasm = r
	}
	return sn.deliver(role, ing.reasm.Flush())
}

// FrameStats returns the role's framed-transport counters (zero for a role
// never fed through FeedFrame).
func (sn *Session) FrameStats(role core.Role) frame.Stats {
	ing := sn.ingestFor(role)
	if ing == nil {
		return frame.Stats{}
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.reasm == nil {
		return frame.Stats{}
	}
	return ing.reasm.Stats()
}

// expireGaps is the lifecycle watchdog's entry point for the wall-clock
// gap-repair bound: any leading reassembly gap older than timeout is
// declared lost, releasing the audio buffered behind it into the scan. A
// panic out of the replay (a scan-worker crash) resolves the session to
// ErrInternal exactly as a Feed-path panic would.
func (sn *Session) expireGaps(now time.Time, timeout time.Duration) {
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Panic: r, Stack: debug.Stack()}
			sn.shard.replenish(sn.svc.cfg)
			sn.resolve(nil, ie)
		}
	}()
	for r := range sn.ingest {
		role := core.Role(r)
		ing := &sn.ingest[r]
		func() {
			ing.mu.Lock()
			defer ing.mu.Unlock() // deferred: a panicking replay must not wedge the role
			if ing.reasm == nil {
				return
			}
			if dv := ing.reasm.Expire(now, timeout); len(dv) > 0 {
				// The error (insufficient audio, cancellation) resolves the
				// session inside fail; the watchdog itself has no caller to
				// report to.
				_ = sn.deliver(role, dv)
			}
		}()
	}
}

// TryResult attempts the decision over the audio fed so far. need > 0
// means the session is healthy but undecided: at least that many more
// samples are required for some role. need == 0 with a nil error is the
// decision (cached; the slot is released and later calls keep returning
// it). Errors follow Feed's taxonomy. Decisions are bit-identical to
// AuthenticateContext on the same request — fed any chunking, at any
// GOMAXPROCS, decided at the horizon or after the full feed.
func (sn *Session) TryResult() (res *core.Result, need int, err error) {
	if r, rerr, done := sn.outcome(); done {
		return r, 0, rerr
	}
	sn.active.Add(1)
	defer sn.active.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Panic: r, Stack: debug.Stack()}
			sn.shard.replenish(sn.svc.cfg)
			sn.resolve(nil, ie)
			res, need, err = nil, 0, ie
		}
	}()
	r, need, terr := sn.as.TryResult()
	if terr != nil {
		return nil, 0, sn.fail(terr)
	}
	if need > 0 {
		return nil, need, nil
	}
	sn.resolve(r, nil)
	return r, 0, nil
}

// Result is TryResult for callers done feeding: an undecided session
// reports ErrNeedMoreAudio (wrapped with the missing sample count) instead
// of a need.
func (sn *Session) Result() (*core.Result, error) {
	res, need, err := sn.TryResult()
	if err != nil {
		return nil, err
	}
	if need > 0 {
		return nil, fmt.Errorf("%w: %d more samples required", ErrNeedMoreAudio, need)
	}
	return res, nil
}

// Close abandons an undecided session, resolving it to context.Canceled
// and releasing its slot; after a decision it is a no-op. Idempotent.
func (sn *Session) Close() {
	sn.resolve(nil, context.Canceled)
}
