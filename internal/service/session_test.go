package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

// feedSession drains both roles' recordings into the session in alternating
// chunks (two live microphones arriving concurrently), up to each role's
// limit (≤ 0 → the whole recording).
func feedSession(t *testing.T, sn *Session, chunk int, limitAuth, limitVouch int) {
	t.Helper()
	roles := []core.Role{core.RoleAuth, core.RoleVouch}
	limits := map[core.Role]int{core.RoleAuth: limitAuth, core.RoleVouch: limitVouch}
	at := map[core.Role]int{}
	for _, role := range roles {
		if limits[role] <= 0 {
			limits[role] = len(sn.Recording(role))
		}
	}
	for at[roles[0]] < limits[roles[0]] || at[roles[1]] < limits[roles[1]] {
		for _, role := range roles {
			if at[role] >= limits[role] {
				continue
			}
			end := at[role] + chunk
			if end > limits[role] {
				end = limits[role]
			}
			if err := sn.Feed(role, sn.Recording(role)[at[role]:end]); err != nil {
				t.Fatalf("feed %v [%d, %d): %v", role, at[role], end, err)
			}
			at[role] = end
		}
	}
}

// TestSessionStreamBitIdenticalAnyChunking is the service-level property
// test: a streaming session fed 1-sample, prime-sized, block-aligned, and
// whole-recording chunks must decide bit-identically to Authenticate on the
// same request, at GOMAXPROCS 1, 2, 4, and 8.
func TestSessionStreamBitIdenticalAnyChunking(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	req := pairRequest(0.8, 41)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for _, chunk := range []int{1, 1009, 4000, 1 << 30} {
			if chunk == 1 && procs > 1 && testing.Short() {
				continue
			}
			sn, err := svc.OpenSession(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			feedSession(t, sn, chunk, 0, 0)
			res, err := sn.Result()
			if err != nil {
				t.Fatalf("procs=%d chunk=%d: %v", procs, chunk, err)
			}
			if !sameDecision(res, want) {
				t.Fatalf("procs=%d chunk=%d: streamed decision diverged:\nstream %+v\nbatch  %+v",
					procs, chunk, res, want)
			}
		}
	}
}

// TestSessionEarlyDecision: the session must decide once both roles reach
// their horizons, with a real tail of both recordings never fed — and keep
// returning the cached decision afterwards.
func TestSessionEarlyDecision(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	req := pairRequest(0.8, 43)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := svc.OpenSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ea, ev := sn.EarlyFeedLen(core.RoleAuth), sn.EarlyFeedLen(core.RoleVouch)
	if ea >= len(sn.Recording(core.RoleAuth)) || ev >= len(sn.Recording(core.RoleVouch)) {
		t.Fatalf("horizons (%d, %d) do not precede the recording ends (%d, %d)",
			ea, ev, len(sn.Recording(core.RoleAuth)), len(sn.Recording(core.RoleVouch)))
	}
	feedSession(t, sn, 4096, ea, ev)
	res, err := sn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(res, want) {
		t.Fatalf("early decision diverged:\nearly %+v\nbatch %+v", res, want)
	}
	if err := sn.Feed(core.RoleAuth, sn.Recording(core.RoleAuth)[ea:]); !errors.Is(err, ErrStreamDecided) {
		t.Fatalf("post-decision feed returned %v, want ErrStreamDecided", err)
	}
	again, err := sn.Result()
	if err != nil || !sameDecision(again, want) {
		t.Fatalf("cached decision changed: %+v, %v", again, err)
	}
	if got := svc.Sessions(); got != 2 {
		t.Fatalf("completed sessions %d, want 2 (batch + stream)", got)
	}
}

// TestSessionFeedOverflowTyped is the streamed-PCM ingestion-bound
// regression test: a chunk overrunning the declared recording is rejected
// whole with ErrFeedOverflow and the session stays open and correct.
func TestSessionFeedOverflowTyped(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	req := pairRequest(0.8, 47)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := svc.OpenSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rec := sn.Recording(core.RoleAuth)
	over := make([]int16, len(rec)+1)
	copy(over, rec)
	if err := sn.Feed(core.RoleAuth, over); !errors.Is(err, ErrFeedOverflow) {
		t.Fatalf("over-length feed returned %v, want ErrFeedOverflow", err)
	}
	if got := sn.Fed(core.RoleAuth); got != 0 {
		t.Fatalf("rejected chunk ingested %d samples", got)
	}
	// The session is still usable and still exact.
	feedSession(t, sn, 4096, 0, 0)
	res, err := sn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(res, want) {
		t.Fatalf("post-overflow decision diverged:\nstream %+v\nbatch  %+v", res, want)
	}
}

// TestSessionNeedMoreAudioTyped: Result before enough audio is a typed,
// retryable failure, not a decision.
func TestSessionNeedMoreAudioTyped(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 48))
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if _, err := sn.Result(); !errors.Is(err, ErrNeedMoreAudio) {
		t.Fatalf("empty session Result returned %v, want ErrNeedMoreAudio", err)
	}
	if _, need, err := sn.TryResult(); err != nil || need <= 0 {
		t.Fatalf("TryResult need=%d err=%v, want a positive need", need, err)
	}
}

// TestSessionSlotLifecycle: a streaming session holds one MaxSessions slot
// until it resolves; Close releases it for the next session.
func TestSessionSlotLifecycle(t *testing.T) {
	svc, err := New(Config{
		Core:          core.DefaultConfig(),
		Workers:       2,
		MaxSessions:   1,
		MaxQueueWait:  20 * time.Millisecond,
		MaxQueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := pairRequest(0.8, 51)

	sn, err := svc.OpenSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The open (undecided) session occupies the only slot.
	if _, err := svc.Authenticate(req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second session got %v, want ErrOverloaded while the stream holds the slot", err)
	}
	sn.Close()
	if _, err := sn.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("closed session Result returned %v, want context.Canceled", err)
	}
	if err := sn.Feed(core.RoleAuth, make([]int16, 8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("closed session Feed returned %v, want context.Canceled", err)
	}
	// The slot is free again.
	if _, err := svc.Authenticate(req); err != nil {
		t.Fatalf("slot not released by Close: %v", err)
	}
}

// TestSessionContextCancelMidFeed: canceling the session context resolves
// an undecided session to the context error and frees its slot, mid-feed.
func TestSessionContextCancelMidFeed(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	sn, err := svc.OpenSession(ctx, pairRequest(0.8, 52))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if err := sn.Feed(core.RoleAuth, sn.Recording(core.RoleAuth)[:8192]); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := sn.Feed(core.RoleAuth, sn.Recording(core.RoleAuth)[8192:16384]); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel feed returned %v, want context.Canceled", err)
	}
	if _, err := sn.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Result returned %v, want context.Canceled", err)
	}
}

// TestSessionServiceCloseResolvesOpenStreams: AuthService.Close must not
// deadlock behind a half-fed stream — it force-resolves open sessions to
// ErrClosed and drains.
func TestSessionServiceCloseResolvesOpenStreams(t *testing.T) {
	svc := newService(t, 2)
	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 53))
	if err != nil {
		t.Fatal(err)
	}
	if err := sn.Feed(core.RoleAuth, sn.Recording(core.RoleAuth)[:4096]); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked behind an open streaming session")
	}
	if _, err := sn.Result(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained session Result returned %v, want ErrClosed", err)
	}
	if _, err := svc.OpenSession(context.Background(), pairRequest(0.8, 53)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close OpenSession returned %v, want ErrClosed", err)
	}
}

// errChaosFeed is the injected feed fault for the chaos suite.
var errChaosFeed = errors.New("chaos: injected feed fault")

// TestChaosStreamingFeedStorm extends the PR-6 chaos suite to the feed
// path: concurrent streaming sessions are fed while injected faults fail
// individual feeds, crash session goroutines, and stall scans; some callers
// cancel mid-feed, some Close mid-feed, and the service is drained by Close
// at the end. The invariant is the batch storm's: every session resolves to
// a typed error or to a decision bit-identical to its fault-free baseline,
// and the service stays serviceable until drained.
func TestChaosStreamingFeedStorm(t *testing.T) {
	svc, err := New(Config{
		Core:          core.DefaultConfig(),
		Workers:       2,
		MaxSessions:   3,
		MaxQueueWait:  200 * time.Millisecond,
		MaxQueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = pairRequest(0.5+0.4*float64(i), int64(60+i))
	}
	baseline := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		if baseline[i], err = svc.Authenticate(req); err != nil {
			t.Fatal(err)
		}
	}

	faultinject.Enable(29)
	defer faultinject.Disable()
	// Individual feed failures: the chunk is refused, the session stays
	// open, the feeder retries.
	faultinject.Arm(faultinject.SiteStreamFeed, faultinject.Fault{
		Action: faultinject.ActError, Err: errChaosFeed, Prob: 0.05,
	})
	// Session-goroutine crashes at open.
	faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
		Action: faultinject.ActPanic, Prob: 0.1,
	})
	// Slow-scan stalls inside the block grid.
	faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
		Action: faultinject.ActDelay, Delay: 200 * time.Microsecond, Prob: 0.01, Skip: 5,
	})

	const storm = 12
	var wg sync.WaitGroup
	results := make([]*core.Result, storm)
	errs := make([]error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if g%4 == 1 {
				// Mid-feed cancellation, racing the feed loop below.
				timer := time.AfterFunc(time.Duration(1+g)*time.Millisecond, cancel)
				defer timer.Stop()
			}
			sn, err := svc.OpenSession(ctx, reqs[g%len(reqs)])
			if err != nil {
				errs[g] = err
				return
			}
			roles := []core.Role{core.RoleAuth, core.RoleVouch}
			at := map[core.Role]int{}
			fed := 0
		feeding:
			for {
				advanced := false
				for _, role := range roles {
					rec := sn.Recording(role)
					if at[role] >= len(rec) {
						continue
					}
					end := at[role] + 2048
					if end > len(rec) {
						end = len(rec)
					}
					err := sn.Feed(role, rec[at[role]:end])
					switch {
					case err == nil:
						at[role] = end
						advanced = true
						fed++
					case errors.Is(err, errChaosFeed):
						// Chunk refused, session open: retry it.
						advanced = true
					default:
						errs[g] = err
						break feeding
					}
				}
				if g%4 == 2 && fed > 6 {
					// Abandon mid-feed.
					sn.Close()
					_, errs[g] = sn.Result()
					break feeding
				}
				if !advanced {
					results[g], errs[g] = sn.Result()
					break feeding
				}
			}
			if errs[g] != nil {
				sn.Close()
			}
		}(g)
	}
	wg.Wait()

	var ok, typed int
	for g := 0; g < storm; g++ {
		if errs[g] == nil {
			ok++
			if !sameDecision(results[g], baseline[g%len(reqs)]) {
				t.Fatalf("session %d completed under chaos but diverged:\n%+v\n%+v",
					g, results[g], baseline[g%len(reqs)])
			}
			continue
		}
		typed++
		if !chaosTyped(errs[g], true) {
			t.Fatalf("session %d resolved to an untyped error: %v", g, errs[g])
		}
	}
	t.Logf("streaming storm: %d bit-identical decisions, %d typed failures", ok, typed)

	// Fully serviceable once chaos stops: a fresh streamed session matches
	// its baseline.
	faultinject.Disable()
	sn, err := svc.OpenSession(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	feedSession(t, sn, 4096, 0, 0)
	res, err := sn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(res, baseline[0]) {
		t.Fatalf("post-chaos streamed session diverged:\n%+v\n%+v", res, baseline[0])
	}
}
