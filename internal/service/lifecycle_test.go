package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

// newLifecycleService builds a service with the lifecycle watchdog armed.
func newLifecycleService(t testing.TB, maxSessions int, idle, life time.Duration) *AuthService {
	t.Helper()
	svc, err := New(Config{
		Core:               core.DefaultConfig(),
		Workers:            2,
		MaxSessions:        maxSessions,
		SessionIdleTimeout: idle,
		SessionMaxLifetime: life,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// waitResolved polls the session until it resolves (decision or error) or
// the deadline passes.
func waitResolved(t *testing.T, sn *Session, within time.Duration) (*core.Result, error) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if res, err, done := sn.outcome(); done {
			return res, err
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not resolved within %v", within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertNoLeak is the slot-leak check behind the PR's acceptance criterion:
// with every session resolved, no streaming session may remain registered
// and no MaxSessions slot may still be held.
func assertNoLeak(t *testing.T, svc *AuthService) {
	t.Helper()
	svc.mu.Lock()
	open := len(svc.streams)
	svc.mu.Unlock()
	if open != 0 {
		t.Fatalf("%d streaming sessions still registered after resolution", open)
	}
	if held := len(svc.sem); held != 0 {
		t.Fatalf("%d of %d session slots still held after resolution", held, cap(svc.sem))
	}
}

// TestLifecycleConfigValidation: negative durations are configuration bugs,
// not "unbounded". A negative MaxQueueWait used to silently disable the
// queue-wait bound (the > 0 check never armed the timer) — this is its
// regression test, extended to the two new lifecycle knobs.
func TestLifecycleConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Core: core.DefaultConfig(), Workers: 1}
	}
	mutations := map[string]func(*Config){
		"MaxQueueWait":       func(c *Config) { c.MaxQueueWait = -time.Second },
		"SessionIdleTimeout": func(c *Config) { c.SessionIdleTimeout = -time.Millisecond },
		"SessionMaxLifetime": func(c *Config) { c.SessionMaxLifetime = -time.Hour },
	}
	for name, mutate := range mutations {
		cfg := base()
		mutate(&cfg)
		svc, err := New(cfg)
		if err == nil {
			svc.Close()
			t.Fatalf("negative %s accepted", name)
		}
		if !errors.Is(err, ErrConfig) {
			t.Fatalf("negative %s rejected with untyped error %v, want ErrConfig", name, err)
		}
	}
	// The zero values still mean "legacy unbounded" and must keep working.
	svc, err := New(base())
	if err != nil {
		t.Fatalf("zero-valued lifecycle config rejected: %v", err)
	}
	svc.Close()
}

// TestLifecycleWatchdogInterval pins the sweep-cadence derivation: a
// quarter of the tightest enabled bound, clamped to [1ms, 1s], zero when
// disabled.
func TestLifecycleWatchdogInterval(t *testing.T) {
	cases := []struct {
		idle, life, gap, want time.Duration
	}{
		{0, 0, 0, 0},
		{40 * time.Millisecond, 0, 0, 10 * time.Millisecond},
		{0, 8 * time.Second, 0, time.Second},
		{40 * time.Millisecond, 8 * time.Millisecond, 0, 2 * time.Millisecond},
		{2 * time.Millisecond, 0, 0, time.Millisecond},
		{0, 0, 20 * time.Millisecond, 5 * time.Millisecond},
		{40 * time.Millisecond, 0, 8 * time.Millisecond, 2 * time.Millisecond},
	}
	for _, c := range cases {
		if got := watchdogInterval(c.idle, c.life, c.gap); got != c.want {
			t.Fatalf("watchdogInterval(%v, %v, %v) = %v, want %v", c.idle, c.life, c.gap, got, c.want)
		}
	}
}

// TestLifecycleStalledSessionReaped: a session opened and never fed is
// resolved with ErrSessionStalled (category ErrSessionReaped), its slot is
// released, and every later call reports the same typed error
// deterministically.
func TestLifecycleStalledSessionReaped(t *testing.T) {
	svc := newLifecycleService(t, 1, 30*time.Millisecond, 0)
	defer svc.Close()
	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 71))
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := waitResolved(t, sn, 5*time.Second)
	if !errors.Is(rerr, ErrSessionStalled) {
		t.Fatalf("abandoned session resolved to %v, want ErrSessionStalled", rerr)
	}
	if !errors.Is(rerr, ErrSessionReaped) {
		t.Fatal("ErrSessionStalled does not match the ErrSessionReaped category")
	}
	// Feed and result calls after the reap return the stall error, every
	// time (the satellite determinism pin).
	for i := 0; i < 3; i++ {
		if err := sn.Feed(core.RoleAuth, make([]int16, 16)); !errors.Is(err, ErrSessionStalled) {
			t.Fatalf("post-reap Feed %d returned %v, want ErrSessionStalled", i, err)
		}
		if _, _, err := sn.TryResult(); !errors.Is(err, ErrSessionStalled) {
			t.Fatalf("post-reap TryResult %d returned %v, want ErrSessionStalled", i, err)
		}
	}
	// The slot is free again: a batch session fits through MaxSessions=1.
	if _, err := svc.Authenticate(pairRequest(0.8, 71)); err != nil {
		t.Fatalf("slot not released by the reap: %v", err)
	}
	assertNoLeak(t, svc)
}

// TestLifecycleExpiredSessionReaped: SessionMaxLifetime bounds the whole
// open→resolution span even for a session that keeps feeding — the
// trickle-feeder that the idle bound can never catch.
func TestLifecycleExpiredSessionReaped(t *testing.T) {
	svc := newLifecycleService(t, 1, 0, 60*time.Millisecond)
	defer svc.Close()
	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 72))
	if err != nil {
		t.Fatal(err)
	}
	// Trickle-feed a few samples at a time until the watchdog fires.
	rec := sn.Recording(core.RoleAuth)
	at := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := sn.Feed(core.RoleAuth, rec[at:at+8])
		if err == nil {
			at += 8
			time.Sleep(5 * time.Millisecond)
			if time.Now().After(deadline) {
				t.Fatal("session never expired")
			}
			continue
		}
		if !errors.Is(err, ErrSessionExpired) {
			t.Fatalf("trickle-fed session failed with %v, want ErrSessionExpired", err)
		}
		break
	}
	if _, rerr, done := sn.outcome(); !done || !errors.Is(rerr, ErrSessionExpired) || !errors.Is(rerr, ErrSessionReaped) {
		t.Fatalf("resolution = %v (done=%v), want ErrSessionExpired in the ErrSessionReaped category", rerr, done)
	}
	assertNoLeak(t, svc)
}

// TestLifecycleActiveFeederNotReaped: a client feeding within the idle
// bound must never be reaped — it decides, and bit-identically to batch.
func TestLifecycleActiveFeederNotReaped(t *testing.T) {
	svc := newLifecycleService(t, 2, 500*time.Millisecond, 0)
	defer svc.Close()
	req := pairRequest(0.8, 73)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := svc.OpenSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// A paced feed, comfortably inside the bound.
	roles := []core.Role{core.RoleAuth, core.RoleVouch}
	at := map[core.Role]int{}
	for at[roles[0]] < len(sn.Recording(roles[0])) || at[roles[1]] < len(sn.Recording(roles[1])) {
		for _, role := range roles {
			rec := sn.Recording(role)
			if at[role] >= len(rec) {
				continue
			}
			end := at[role] + 32768
			if end > len(rec) {
				end = len(rec)
			}
			if err := sn.Feed(role, rec[at[role]:end]); err != nil {
				t.Fatalf("active feeder failed: %v", err)
			}
			at[role] = end
		}
		time.Sleep(2 * time.Millisecond)
	}
	res, err := sn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(res, want) {
		t.Fatalf("watchdog-supervised decision diverged:\nstream %+v\nbatch  %+v", res, want)
	}
	assertNoLeak(t, svc)
}

// TestLifecycleRejectedFeedsDoNotResetIdleClock: refused chunks are not
// progress — a client spamming over-length feeds still stalls out.
func TestLifecycleRejectedFeedsDoNotResetIdleClock(t *testing.T) {
	svc := newLifecycleService(t, 1, 40*time.Millisecond, 0)
	defer svc.Close()
	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 74))
	if err != nil {
		t.Fatal(err)
	}
	over := make([]int16, len(sn.Recording(core.RoleAuth))+1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := sn.Feed(core.RoleAuth, over)
		if errors.Is(err, ErrFeedOverflow) {
			time.Sleep(4 * time.Millisecond)
			if time.Now().After(deadline) {
				t.Fatal("overflow-spamming session never stalled out")
			}
			continue
		}
		if !errors.Is(err, ErrSessionStalled) {
			t.Fatalf("overflow spam ended with %v, want ErrSessionStalled", err)
		}
		break
	}
	assertNoLeak(t, svc)
}

// TestLifecycleSlotLeakStorm is the acceptance-criterion leak proof: a
// storm of N ≫ MaxSessions abandoned and half-fed sessions, every one
// reaped by the watchdog, and afterwards every MaxSessions slot is
// demonstrably reusable at once.
func TestLifecycleSlotLeakStorm(t *testing.T) {
	const maxSessions = 4
	const storm = 24
	svc := newLifecycleService(t, maxSessions, 25*time.Millisecond, 0)
	defer svc.Close()

	var wg sync.WaitGroup
	errs := make([]error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// MaxQueueWait is 0 (indefinite): every open eventually gets a
			// slot freed by a reap — the recovery this test proves.
			sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, int64(100+g)))
			if err != nil {
				errs[g] = err
				return
			}
			if g%2 == 1 {
				// Half-fed, then silence: a client that died mid-stream.
				rec := sn.Recording(core.RoleAuth)
				if err := sn.Feed(core.RoleAuth, rec[:4096]); err != nil {
					errs[g] = err
					return
				}
			}
			// Abandon: no Close, no further feeds. Wait for the watchdog.
			deadline := time.Now().Add(10 * time.Second)
			for {
				if _, rerr, done := sn.outcome(); done {
					errs[g] = rerr
					return
				}
				if time.Now().After(deadline) {
					errs[g] = errors.New("session never reaped")
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, ErrSessionReaped) {
			t.Fatalf("storm session %d resolved to %v, want an ErrSessionReaped-category error", g, err)
		}
	}
	assertNoLeak(t, svc)

	// All MaxSessions slots must be usable simultaneously. assertNoLeak
	// above proved none is held; now a full complement of concurrent batch
	// sessions (same slot semaphore, no idle constraint) must each hold a
	// slot and complete — with MaxQueueWait unbounded, a leaked slot would
	// hang this forever instead of passing.
	var fg sync.WaitGroup
	ferrs := make([]error, maxSessions)
	for i := 0; i < maxSessions; i++ {
		fg.Add(1)
		go func(i int) {
			defer fg.Done()
			_, ferrs[i] = svc.Authenticate(pairRequest(0.8, int64(200+i)))
		}(i)
	}
	fg.Wait()
	for i, err := range ferrs {
		if err != nil {
			t.Fatalf("post-storm session %d failed: %v", i, err)
		}
	}
	assertNoLeak(t, svc)
}

// TestLifecycleResolutionRaces is the satellite race pin: concurrent
// Close + Feed + TryResult (plus a double Close) on the same session must
// resolve it to exactly one typed outcome, release the slot exactly once,
// and keep reporting that outcome afterwards. Run under -race.
func TestLifecycleResolutionRaces(t *testing.T) {
	svc := newLifecycleService(t, 2, 200*time.Millisecond, 0)
	defer svc.Close()
	for round := 0; round < 8; round++ {
		sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, int64(300+round)))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		rec := sn.Recording(core.RoleAuth)
		wg.Add(4)
		go func() { defer wg.Done(); <-start; sn.Close() }()
		go func() { defer wg.Done(); <-start; sn.Close() }() // double Close
		go func() {
			defer wg.Done()
			<-start
			at := 0
			for at < len(rec) {
				end := at + 2048
				if end > len(rec) {
					end = len(rec)
				}
				if err := sn.Feed(core.RoleAuth, rec[at:end]); err != nil {
					return
				}
				at = end
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 64; i++ {
				if _, _, err := sn.TryResult(); err != nil {
					return
				}
			}
		}()
		close(start)
		wg.Wait()
		_, rerr, done := sn.outcome()
		if !done {
			t.Fatalf("round %d: session unresolved after Close raced Feed/TryResult", round)
		}
		if !errors.Is(rerr, context.Canceled) {
			t.Fatalf("round %d: raced Close resolved to %v, want context.Canceled", round, rerr)
		}
		// The outcome is sticky: every later call agrees.
		if err := sn.Feed(core.RoleAuth, rec[:16]); !errors.Is(err, rerr) {
			t.Fatalf("round %d: post-race Feed returned %v, want %v", round, err, rerr)
		}
		if _, err := sn.Result(); !errors.Is(err, rerr) {
			t.Fatalf("round %d: post-race Result returned %v, want %v", round, err, rerr)
		}
		assertNoLeak(t, svc)
	}
}

// lifecycleTyped reports whether err is one of the typed outcomes a
// lifecycle-storm session may resolve to.
func lifecycleTyped(err error) bool {
	switch {
	case errors.Is(err, ErrSessionReaped),
		errors.Is(err, ErrClosed),
		errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrInternal),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return true
	}
	return false
}

// TestChaosLifecycleStorm is the lifecycle chaos scenario: a small service
// under a concurrent storm of healthy feeders, slow feeders (inter-chunk
// gaps past SessionIdleTimeout), and mid-feed abandoners — while injected
// faults panic the watchdog's own sweeps (recovered; the watchdog must
// survive its own crashes). Invariants: every session resolves to a typed
// error or a decision bit-identical to its fault-free baseline, no slot
// leaks, and the service stays serviceable afterwards. Run under -race.
func TestChaosLifecycleStorm(t *testing.T) {
	svc, err := New(Config{
		Core:               core.DefaultConfig(),
		Workers:            2,
		MaxSessions:        3,
		SessionIdleTimeout: 40 * time.Millisecond,
		SessionMaxLifetime: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reqs := make([]Request, 3)
	baseline := make([]*core.Result, len(reqs))
	for i := range reqs {
		reqs[i] = pairRequest(0.5+0.4*float64(i), int64(400+i))
		if baseline[i], err = svc.Authenticate(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}

	faultinject.Enable(31)
	defer faultinject.Disable()
	// Panicking sweeps: the watchdog must recover and keep reaping.
	faultinject.Arm(faultinject.SiteServiceWatchdog, faultinject.Fault{
		Action: faultinject.ActPanic, Prob: 0.3,
	})

	const storm = 12
	var wg sync.WaitGroup
	results := make([]*core.Result, storm)
	errs := make([]error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sn, err := svc.OpenSession(context.Background(), reqs[g%len(reqs)])
			if err != nil {
				errs[g] = err
				return
			}
			roles := []core.Role{core.RoleAuth, core.RoleVouch}
			at := map[core.Role]int{}
			chunks := 0
			for {
				advanced := false
				for _, role := range roles {
					rec := sn.Recording(role)
					if at[role] >= len(rec) {
						continue
					}
					end := at[role] + 8192
					if end > len(rec) {
						end = len(rec)
					}
					if err := sn.Feed(role, rec[at[role]:end]); err != nil {
						errs[g] = err
						return
					}
					at[role] = end
					advanced = true
					chunks++
				}
				switch g % 3 {
				case 1:
					// Slow feeder: inter-chunk gaps past the idle bound.
					time.Sleep(60 * time.Millisecond)
				case 2:
					if chunks > 4 {
						// Abandon mid-feed: stop feeding, await the reap.
						deadline := time.Now().Add(15 * time.Second)
						for {
							if _, rerr, done := sn.outcome(); done {
								errs[g] = rerr
								return
							}
							if time.Now().After(deadline) {
								errs[g] = errors.New("abandoned session never reaped")
								return
							}
							time.Sleep(2 * time.Millisecond)
						}
					}
				}
				if !advanced {
					results[g], errs[g] = sn.Result()
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var ok, typed int
	for g := 0; g < storm; g++ {
		if errs[g] == nil {
			ok++
			if !sameDecision(results[g], baseline[g%len(reqs)]) {
				t.Fatalf("session %d completed under lifecycle chaos but diverged:\n%+v\n%+v",
					g, results[g], baseline[g%len(reqs)])
			}
			continue
		}
		typed++
		if !lifecycleTyped(errs[g]) {
			t.Fatalf("session %d resolved to an untyped error: %v", g, errs[g])
		}
	}
	if hits := faultinject.Hits(faultinject.SiteServiceWatchdog); hits == 0 {
		t.Fatal("storm never exercised a watchdog-sweep fault")
	}
	t.Logf("lifecycle storm: %d bit-identical decisions, %d typed failures", ok, typed)
	assertNoLeak(t, svc)

	// Serviceable once chaos stops: a fresh streamed session, fed promptly,
	// matches its baseline.
	faultinject.Disable()
	sn, err := svc.OpenSession(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
		if err := sn.Feed(role, sn.Recording(role)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(res, baseline[0]) {
		t.Fatalf("post-chaos streamed session diverged:\n%+v\n%+v", res, baseline[0])
	}
	assertNoLeak(t, svc)
}

// TestChaosLifecycleWatchdogCloseRace races slowed watchdog sweeps against
// Close: sessions reaped by a sweep that started before Close and sessions
// force-resolved by Close must both end typed, the first resolver must win
// exactly once per session (slots released exactly once), and Close must
// return with no goroutine left behind. Run under -race.
func TestChaosLifecycleWatchdogCloseRace(t *testing.T) {
	for round := 0; round < 6; round++ {
		svc, err := New(Config{
			Core:               core.DefaultConfig(),
			Workers:            2,
			MaxSessions:        3,
			SessionIdleTimeout: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Enable(int64(500 + round))
		// Slow sweeps: each sweep holds faultinject for a few ms, so Close
		// reliably lands mid-sweep in some rounds and between sweeps in
		// others (the round index staggers the overlap).
		faultinject.Arm(faultinject.SiteServiceWatchdog, faultinject.Fault{
			Action: faultinject.ActDelay, Delay: 3 * time.Millisecond,
		})
		open := make([]*Session, 3)
		for i := range open {
			sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, int64(600+i)))
			if err != nil {
				t.Fatalf("round %d open %d: %v", round, i, err)
			}
			open[i] = sn
		}
		time.Sleep(time.Duration(2+3*round) * time.Millisecond)
		done := make(chan struct{})
		go func() {
			svc.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Close deadlocked against the watchdog", round)
		}
		for i, sn := range open {
			_, rerr, resolved := sn.outcome()
			if !resolved {
				t.Fatalf("round %d session %d unresolved after Close", round, i)
			}
			if !errors.Is(rerr, ErrClosed) && !errors.Is(rerr, ErrSessionReaped) {
				t.Fatalf("round %d session %d resolved to %v, want ErrClosed or an ErrSessionReaped-category error",
					round, i, rerr)
			}
		}
		assertNoLeak(t, svc)
		faultinject.Disable()
	}
}
