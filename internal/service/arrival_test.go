package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/arrival"
	"github.com/acoustic-auth/piano/internal/core"
)

// feedArrival drives one role's feed from a deterministic arrival schedule,
// delivering the chunk partition the model draws (gaps are skipped: the
// decision is timing-independent, which is exactly what the test pins).
func feedArrival(t *testing.T, sn *Session, role core.Role, cfg arrival.Config, seed int64) {
	t.Helper()
	rec := sn.Recording(role)
	chunks, err := arrival.Chunks(cfg, seed, len(rec))
	if err != nil {
		t.Fatalf("arrival.Chunks: %v", err)
	}
	at := 0
	for i, n := range chunks {
		if err := sn.Feed(role, rec[at:at+n]); err != nil {
			t.Fatalf("%v arrival chunk %d [%d, %d): %v", role, i, at, at+n, err)
		}
		at += n
	}
	if at != len(rec) {
		t.Fatalf("%v arrival schedule fed %d of %d samples", role, at, len(rec))
	}
}

// TestSessionArrivalBitIdentical is the arrival-model determinism contract
// at the service level: a session fed by the live-microphone traffic model
// — jittered chunk sizes, underrun backlog bursts, a different seed per
// role — decides bit-identically to batch Authenticate on the same
// request, for every arrival seed.
func TestSessionArrivalBitIdentical(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	req := pairRequest(0.8, 59)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	cfg := arrival.Config{Jitter: 0.4, UnderrunProb: 0.25}
	for seed := int64(1); seed <= 8; seed++ {
		sn, err := svc.OpenSession(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		feedArrival(t, sn, core.RoleAuth, cfg, seed)
		feedArrival(t, sn, core.RoleVouch, cfg, seed+1000)
		res, err := sn.Result()
		if err != nil {
			t.Fatalf("arrival seed %d: %v", seed, err)
		}
		if !sameDecision(res, want) {
			t.Fatalf("arrival seed %d: jittered feed diverged from batch:\nstream %+v\nbatch  %+v",
				seed, res, want)
		}
	}
}

// TestSessionArrivalAbandonReaped closes the loop between the traffic
// model and the lifecycle watchdog: a client whose arrival schedule draws
// the Abandon fate feeds its prefix, vanishes, and the watchdog resolves
// the session ErrSessionReaped — the slot comes back without any client
// cooperation.
func TestSessionArrivalAbandonReaped(t *testing.T) {
	svc := newLifecycleService(t, 2, 30*time.Millisecond, 0)
	defer svc.Close()

	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 60))
	if err != nil {
		t.Fatal(err)
	}
	cfg := arrival.Config{Jitter: 0.3, AbandonProb: 1}
	src, err := arrival.New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec := sn.Recording(core.RoleAuth)
	fed := 0
	for {
		ev := src.Next(fed, len(rec))
		if ev.Kind != arrival.Chunk && ev.Kind != arrival.Underrun {
			if ev.Kind != arrival.Abandon {
				t.Fatalf("terminal event = %v, want abandon", ev.Kind)
			}
			break
		}
		if err := sn.Feed(core.RoleAuth, rec[fed:fed+ev.N]); err != nil {
			t.Fatalf("feed [%d, %d): %v", fed, fed+ev.N, err)
		}
		fed += ev.N
	}
	if fed <= 0 || fed >= len(rec) {
		t.Fatalf("abandon fired after %d of %d samples, want strictly mid-feed", fed, len(rec))
	}

	// The client is gone; only the watchdog can resolve the session now.
	_, rerr := waitResolved(t, sn, time.Second)
	if !errors.Is(rerr, ErrSessionStalled) || !errors.Is(rerr, ErrSessionReaped) {
		t.Fatalf("abandoned session resolved %v, want ErrSessionStalled", rerr)
	}
	assertNoLeak(t, svc)
}
