package service

import (
	"fmt"

	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/dsp"
)

// shard is one worker group of the service's detection machinery: a private
// bounded detect.Pool, a private detect.Detector (and with it a private
// pooled-workspace freelist), and a private pinned dsp.PlanSet. Before
// sharding, every concurrent session offered its scan blocks to ONE pool's
// unbuffered task channel and recycled scratch through ONE workspace
// freelist — a single point of cross-core contention that flattens the
// scaling curve long before the cores run out. With ShardCount > 1,
// sessions are pinned to a shard at admission (round-robin) and never touch
// another shard's queue or freelist.
//
// Sharding is invisible in results: every shard is built from the same
// Config, and a session's decision is a pure function of its request and
// seed (the private RNG stream draws every random number the session
// consumes), so which shard scans a session can never change its decision —
// the bit-determinism contract survives sharding, and the shard property
// tests pin it at every ShardCount × GOMAXPROCS combination.
type shard struct {
	pool  *detect.Pool
	det   *detect.Detector
	plans *dsp.PlanSet
}

// newShard builds one worker group: pool of `workers` scan workers, a
// detector attached to that pool and a freshly pinned plan set, prewarmed
// with one workspace per worker plus one for the submitting goroutine.
func newShard(cfg Config, workers int) (*shard, error) {
	plans, err := dsp.NewPlanSet(cfg.Core.Signal.Length)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	det, err := detect.New(cfg.Core.Detect)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	pool := detect.NewPool(workers)
	det.UsePool(pool)
	det.UsePlans(plans)
	if err := det.Prewarm(cfg.Core.Signal, workers+1); err != nil {
		pool.Close()
		return nil, fmt.Errorf("service: %w", err)
	}
	return &shard{pool: pool, det: det, plans: plans}, nil
}

// replenish rebuilds one prewarmed scan workspace after a panic poisoned
// and discarded one of this shard's, restoring the steady-state "no
// cold-start allocations" property chaos would otherwise erode.
// Best-effort: if it fails, the next scan simply rebuilds its own scratch
// on checkout.
func (sh *shard) replenish(cfg Config) {
	_ = sh.det.Prewarm(cfg.Core.Signal, 1)
}

// buildShards constructs the service's worker groups. count is the
// resolved shard count (≥ 1); totalWorkers is Config.Workers after
// defaulting, distributed across the shards as evenly as possible with a
// floor of one worker per shard (so ShardCount > Workers over-provisions
// rather than creating workerless groups).
func buildShards(cfg Config, count, totalWorkers int) ([]*shard, error) {
	shards := make([]*shard, 0, count)
	base, rem := totalWorkers/count, totalWorkers%count
	for i := 0; i < count; i++ {
		w := base
		if i < rem {
			w++
		}
		if w < 1 {
			w = 1
		}
		sh, err := newShard(cfg, w)
		if err != nil {
			for _, prev := range shards {
				prev.pool.Close()
			}
			return nil, err
		}
		shards = append(shards, sh)
	}
	return shards, nil
}

// pin assigns an admitted session to a shard. Round-robin off an atomic
// counter: admission order decides the shard, nothing about the request
// does, which keeps the assignment contention-free and makes plain that
// results cannot depend on it (the determinism tests would catch it if
// they somehow did).
func (s *AuthService) pin() *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[(s.nextShard.Add(1)-1)%uint64(len(s.shards))]
}

// ShardCount returns the number of worker-group shards the service runs
// (1 for the legacy unsharded layout).
func (s *AuthService) ShardCount() int { return len(s.shards) }
