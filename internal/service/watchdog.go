package service

import (
	"errors"
	"fmt"
	"time"

	"github.com/acoustic-auth/piano/internal/faultinject"
)

// Session-lifecycle errors. A streaming session holds one of the service's
// MaxSessions slots from OpenSession until it resolves, so a client that
// stops feeding (a crashed process, a half-dead TCP peer, a phone that
// walked out of Bluetooth range) would leak that slot forever. When the
// lifecycle watchdog is enabled (Config.SessionIdleTimeout /
// SessionMaxLifetime), it resolves such sessions through the same
// first-writer-wins path as every other resolution, releasing the slot
// exactly once.
var (
	// ErrSessionReaped is the category sentinel for watchdog resolutions:
	// errors.Is(err, ErrSessionReaped) matches both ErrSessionStalled and
	// ErrSessionExpired, for callers that only care that the server gave
	// up on the client rather than why.
	ErrSessionReaped = errors.New("service: session reaped by lifecycle watchdog")
	// ErrSessionStalled resolves a session whose gap between successful
	// Feed calls (or between open and the first Feed) exceeded
	// Config.SessionIdleTimeout.
	ErrSessionStalled = fmt.Errorf("%w: stalled (no Feed within SessionIdleTimeout)", ErrSessionReaped)
	// ErrSessionExpired resolves a session that stayed unresolved past
	// Config.SessionMaxLifetime, however actively it was fed.
	ErrSessionExpired = fmt.Errorf("%w: expired (open past SessionMaxLifetime)", ErrSessionReaped)
)

// ErrConfig marks a Config rejected by New. Match with errors.Is; the
// message names the offending field.
var ErrConfig = errors.New("service: invalid config")

// validateConfig rejects configuration values that would otherwise be
// silently misread. Negative durations are the regression this guards: a
// negative MaxQueueWait used to be treated as "unbounded" (the > 0 check
// simply never armed the timer), which inverts the caller's intent.
func validateConfig(cfg Config) error {
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"MaxQueueWait", cfg.MaxQueueWait},
		{"SessionIdleTimeout", cfg.SessionIdleTimeout},
		{"SessionMaxLifetime", cfg.SessionMaxLifetime},
		{"GapRepairTimeout", cfg.GapRepairTimeout},
	} {
		if d.v < 0 {
			return fmt.Errorf("%w: %s %v is negative (0 disables the bound)", ErrConfig, d.name, d.v)
		}
	}
	if cfg.ShardCount < 0 {
		return fmt.Errorf("%w: ShardCount %d is negative (0 means one shard)", ErrConfig, cfg.ShardCount)
	}
	if cfg.ReorderWindow < 0 {
		return fmt.Errorf("%w: ReorderWindow %d is negative (0 means the default window)", ErrConfig, cfg.ReorderWindow)
	}
	return nil
}

// watchdogInterval derives the sweep cadence from the configured bounds: a
// quarter of the tightest enabled bound, clamped to [1ms, 1s], so a
// session is reaped (or a gap declared lost) within ~1.25× its bound
// without a hot spin for generous bounds. Zero when no bound is enabled
// (no watchdog runs).
func watchdogInterval(idle, life, gap time.Duration) time.Duration {
	tightest := time.Duration(0)
	for _, d := range []time.Duration{idle, life, gap} {
		if d > 0 && (tightest == 0 || d < tightest) {
			tightest = d
		}
	}
	if tightest == 0 {
		return 0
	}
	every := tightest / 4
	if every < time.Millisecond {
		every = time.Millisecond
	}
	if every > time.Second {
		every = time.Second
	}
	return every
}

// watchdog is the per-service lifecycle goroutine: it sweeps the open
// streaming sessions every interval and resolves the ones past their
// idle/lifetime deadlines. It exits when Close begins draining.
func (s *AuthService) watchdog(every time.Duration) {
	defer close(s.watchdogDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.draining:
			return
		case now := <-t.C:
			s.sweep(now)
		}
	}
}

// sweep checks every open streaming session against the configured bounds
// and resolves the violators. Resolution goes through Session.resolve —
// the same first-writer-wins path as decisions, Close, and cancellation —
// so a sweep racing any of those releases the slot exactly once. A panic
// out of a sweep (only reachable via fault injection today) is recovered:
// losing one sweep is fine, losing the watchdog would silently disable
// reaping for the rest of the service's life.
func (s *AuthService) sweep(now time.Time) {
	defer func() { _ = recover() }()
	// Chaos hook: delay a sweep (late watchdog racing Close), error (skip
	// the sweep), panic (recovered above), or Hook (trigger Close
	// mid-sweep).
	if err := faultinject.Fire(faultinject.SiteServiceWatchdog); err != nil {
		return
	}
	s.mu.Lock()
	open := make([]*Session, 0, len(s.streams))
	for sn := range s.streams {
		open = append(open, sn)
	}
	s.mu.Unlock()
	for _, sn := range open {
		if err := sn.pastDeadline(now, s.cfg.SessionIdleTimeout, s.cfg.SessionMaxLifetime); err != nil {
			sn.resolve(nil, err)
			continue
		}
		// Gap repair deadlines: reassembly gaps older than GapRepairTimeout
		// are declared lost, which unlocks the audio buffered behind them
		// (and may resolve the session ErrInsufficientAudio past the loss
		// ceiling — through the same first-writer-wins path).
		if s.cfg.GapRepairTimeout > 0 {
			sn.expireGaps(now, s.cfg.GapRepairTimeout)
		}
	}
}

// pastDeadline reports which lifecycle bound (if any) the session has
// violated at time now. Lifetime is checked first: an expired session is
// expired even if it was fed a moment ago. The idle bound only applies
// between client calls — a Feed mid-ingestion or a TryResult mid-decision
// (a long scan on a slow or heavily loaded box) is activity, not a stall.
func (sn *Session) pastDeadline(now time.Time, idle, life time.Duration) error {
	if life > 0 && now.Sub(sn.opened) > life {
		return ErrSessionExpired
	}
	if idle > 0 && sn.active.Load() == 0 && now.Sub(time.Unix(0, sn.lastFeed.Load())) > idle {
		return ErrSessionStalled
	}
	return nil
}
