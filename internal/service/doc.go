// Package service turns the per-call PIANO session machinery into a
// long-lived, concurrency-safe authentication service — the batched
// multi-session server the always-on voice-powered hub deployment needs.
//
// One AuthService owns, for its whole lifetime: a bounded detect.Pool of
// scan workers shared by every session (concurrent sessions batch their
// Step-IV windows through one worker set instead of each fanning out its
// own goroutines); one shared detect.Detector whose pooled FFT workspaces
// and score buffers are recycled across sessions; and a dsp.PlanSet pinning
// one FFT plan per window length the configured signal design can produce,
// resolved lock-free on the hot path. Construction prewarms one scan
// workspace per worker, so steady-state traffic allocates nothing on the
// scan path.
//
// Invariants: each Authenticate call is one complete PIANO session with a
// session-private seeded RNG stream; because every random draw a session
// makes comes from its own stream, and window scores reduce in window order
// regardless of which pool workers computed them, a session's result is
// bit-identical to running the same request through the serial
// piano.Deployment path — at any concurrency level (race-tested). The pool
// recruits a session's own goroutine when all workers are busy, so a
// saturated service degrades to serial execution instead of deadlocking.
//
// Failure semantics (PR 6 hardening; see ARCHITECTURE.md "Failure
// semantics"): admission is deadline-aware — past MaxSessions a request
// waits at most MaxQueueWait in a queue at most MaxQueueDepth deep and
// sheds with ErrOverloaded beyond either bound; Close stops admission,
// sheds queued waiters with ErrClosed, and drains admitted sessions.
// Cancellation is cooperative (between protocol steps and scan hop blocks)
// and surfaces as the caller's bare ctx.Err(). A panic anywhere in a
// session's pipeline is recovered into ErrInternal (the *InternalError
// carries the stack), the poisoned scan workspace is discarded and
// re-prewarmed, and the service keeps serving. None of this perturbs the
// bit-identity contract: a session that completes is byte-for-byte the
// serial result. internal/faultinject provides the chaos hooks the tests
// (and piano-serve -chaos) use to prove all of the above under -race.
//
// Streaming sessions (PR 7): OpenSession admits a session, runs Steps
// I–III eagerly, and returns a Session that consumes per-role PCM in
// chunks (Feed) and decides at the early horizon (TryResult/Result) —
// bit-identical to AuthenticateContext on the same request for any
// chunking. A streaming session holds its admission slot from open to
// resolution; resolution is exactly-once and first-writer-wins across
// decision, Close, context cancellation, service Close (ErrClosed), and
// recovered panics (ErrInternal). Feed-protocol sentinels
// (ErrNeedMoreAudio, ErrFeedOverflow, ErrStreamDecided) report misuse
// without resolving the session.
//
// Session lifecycle (PR 8): a client that vanishes mid-feed without
// closing would leak its slot forever, so Config.SessionIdleTimeout and
// Config.SessionMaxLifetime (both 0 = legacy unbounded) arm a per-service
// lifecycle watchdog that resolves stalled sessions (no successful Feed
// within the idle bound) to ErrSessionStalled and over-age sessions to
// ErrSessionExpired — both through the same first-writer-wins path, both
// matching the ErrSessionReaped category. Time inside an in-flight
// Feed/TryResult does not count as idle (a long scan is work, not a
// stall) and refused chunks do not reset the idle clock. New rejects
// negative durations with ErrConfig. The slot-leak storm test proves
// every MaxSessions slot is recoverable after a storm of abandoned
// sessions, and the watchdog chaos tests race sweeps against Close under
// fault injection (the service.watchdog site).
//
// Sharded worker groups (PR 9): with Config.ShardCount > 1 the detection
// machinery above — pool, detector workspace freelist, plan set — is
// replicated into independent shards, and each admitted session is pinned
// to one shard round-robin, so concurrent sessions stop contending on a
// single scan queue and freelist. Workers stays the TOTAL budget, spread
// across shards with a floor of one each; admission control (MaxSessions,
// queue bounds) remains global. Because every shard is built from the same
// Config and a session's decision is a pure function of (request, seed),
// shard assignment cannot influence results: TestShardDeterminism pins
// bit-identity across ShardCount 0/1/2/4 × GOMAXPROCS 1/2/4/8 under -race.
package service
