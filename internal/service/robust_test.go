package service

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

// blockSession arms the session fault site so the next session parks inside
// runSession (holding its slot) until release is closed. Returns a channel
// that closes once the session has entered the hook.
func blockSession(t *testing.T, release chan struct{}) chan struct{} {
	t.Helper()
	entered := make(chan struct{})
	faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
		Action: faultinject.ActHook,
		Times:  1,
		Hook: func() {
			close(entered)
			<-release
		},
	})
	return entered
}

// waitWaiters polls until the slot queue holds n waiters.
func waitWaiters(t *testing.T, svc *AuthService, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.mu.Lock()
		w := svc.waiters
		svc.mu.Unlock()
		if w == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (at %d)", n, w)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServiceRejectsNonFiniteThreshold: NaN passes a plain `< 0` check, so
// τ validation must reject non-finite values explicitly (PR-6 satellite).
func TestServiceRejectsNonFiniteThreshold(t *testing.T) {
	svc := newService(t, 1)
	defer svc.Close()
	for _, tau := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		req := pairRequest(0.8, 2)
		req.ThresholdM = tau
		if _, err := svc.Authenticate(req); err == nil {
			t.Fatalf("threshold %g accepted", tau)
		}
	}
}

// TestServiceRejectsUnknownEnvironment: an environment override must name a
// defined scenario — unknown values error instead of silently mapping to
// some profile.
func TestServiceRejectsUnknownEnvironment(t *testing.T) {
	svc := newService(t, 1)
	defer svc.Close()
	for _, env := range []int{-1, 6, 99} {
		req := pairRequest(0.8, 2)
		req.Environment = acoustic.Environment(env)
		if _, err := svc.Authenticate(req); err == nil {
			t.Fatalf("environment %d accepted", env)
		}
	}
}

// TestServiceOverloadQueueWait: with every slot busy, a request waits at
// most MaxQueueWait and then sheds with ErrOverloaded — within latency
// bounds on both sides (it must actually wait, and must not hang).
func TestServiceOverloadQueueWait(t *testing.T) {
	const wait = 50 * time.Millisecond
	svc, err := New(Config{Core: core.DefaultConfig(), Workers: 1, MaxSessions: 1, MaxQueueWait: wait})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	faultinject.Enable(1)
	defer faultinject.Disable()
	release := make(chan struct{})
	entered := blockSession(t, release)
	hold := make(chan error, 1)
	go func() {
		_, err := svc.Authenticate(pairRequest(0.8, 2))
		hold <- err
	}()
	<-entered

	start := time.Now()
	_, err = svc.Authenticate(pairRequest(0.8, 3))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated service returned %v, want ErrOverloaded", err)
	}
	if elapsed < wait {
		t.Fatalf("shed after %v, before MaxQueueWait %v", elapsed, wait)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("shed took %v — not a bounded wait", elapsed)
	}

	close(release)
	if err := <-hold; err != nil {
		t.Fatalf("slot-holding session failed: %v", err)
	}
}

// TestServiceOverloadQueueDepth: a request arriving at a full wait queue is
// shed immediately, and a queued waiter can abandon the queue via its
// context.
func TestServiceOverloadQueueDepth(t *testing.T) {
	svc, err := New(Config{Core: core.DefaultConfig(), Workers: 1, MaxSessions: 1, MaxQueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	faultinject.Enable(1)
	defer faultinject.Disable()
	release := make(chan struct{})
	entered := blockSession(t, release)
	hold := make(chan error, 1)
	go func() {
		_, err := svc.Authenticate(pairRequest(0.8, 2))
		hold <- err
	}()
	<-entered

	// Fill the (depth-1) queue with a cancellable waiter.
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := svc.AuthenticateContext(ctx, pairRequest(0.8, 3))
		queued <- err
	}()
	waitWaiters(t, svc, 1)

	// The queue is full: the next request sheds with no waiting at all.
	start := time.Now()
	if _, err := svc.Authenticate(pairRequest(0.8, 4)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("immediate shed took %v", elapsed)
	}

	// The queued waiter gives up: it must return its ctx.Err(), not a slot.
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}

	close(release)
	if err := <-hold; err != nil {
		t.Fatalf("slot-holding session failed: %v", err)
	}
}

// TestServiceCancelMidScan: cancellation landing in the middle of a scan's
// block grid aborts the session with ctx.Err(), frees its slot, and leaves
// the service producing bit-identical results afterwards.
func TestServiceCancelMidScan(t *testing.T) {
	svc := newService(t, 1)
	defer svc.Close()
	req := pairRequest(0.8, 7)
	clean, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Enable(1)
	faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
		Action: faultinject.ActHook, Skip: 5, Times: 1, Hook: cancel,
	})
	if _, err := svc.AuthenticateContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancel returned %v, want context.Canceled", err)
	}
	if faultinject.Hits(faultinject.SiteDetectBlock) != 1 {
		t.Fatal("cancellation hook never fired inside the scan")
	}
	faultinject.Disable()

	after, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(after.DistanceM) != math.Float64bits(clean.DistanceM) ||
		after.Granted != clean.Granted || after.Reason != clean.Reason {
		t.Fatalf("post-cancel session diverged: %+v != %+v", after, clean)
	}
}

// TestServicePreCanceledContext: a context already canceled at call time
// returns ctx.Err() without running the session.
func TestServicePreCanceledContext(t *testing.T) {
	svc := newService(t, 1)
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.AuthenticateContext(ctx, pairRequest(0.8, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled request returned %v, want context.Canceled", err)
	}
	if got := svc.Sessions(); got != 0 {
		t.Fatalf("canceled request counted as a session (%d)", got)
	}
}

// TestServicePanicIsolation: panics at every layer of the pipeline — the
// session goroutine and the scan engine — surface as ErrInternal with a
// stack, and the service keeps producing bit-identical results.
func TestServicePanicIsolation(t *testing.T) {
	svc := newService(t, 2)
	defer svc.Close()
	req := pairRequest(0.8, 9)
	clean, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range []string{faultinject.SiteServiceSession, faultinject.SiteDetectBlock} {
		faultinject.Enable(1)
		faultinject.Arm(site, faultinject.Fault{Action: faultinject.ActPanic, Times: 1})
		_, err := svc.Authenticate(req)
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("site %s: panic returned %v, want ErrInternal", site, err)
		}
		var ie *InternalError
		if !errors.As(err, &ie) || len(ie.Stack) == 0 {
			t.Fatalf("site %s: error %v carries no *InternalError with stack", site, err)
		}
		faultinject.Disable()

		after, err := svc.Authenticate(req)
		if err != nil {
			t.Fatalf("site %s: post-panic session failed: %v", site, err)
		}
		if math.Float64bits(after.DistanceM) != math.Float64bits(clean.DistanceM) ||
			after.Granted != clean.Granted || after.Reason != clean.Reason {
			t.Fatalf("site %s: post-panic session diverged: %+v != %+v", site, after, clean)
		}
	}
}

// TestServiceCloseShedsWaiters: the PR-6 Close/begin race regression — a
// request already past inFlight.Add(1) but still waiting for a slot when
// Close begins must observe the drain and return ErrClosed promptly, not be
// admitted to run a full session mid-drain.
func TestServiceCloseShedsWaiters(t *testing.T) {
	svc, err := New(Config{Core: core.DefaultConfig(), Workers: 1, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(1)
	defer faultinject.Disable()
	release := make(chan struct{})
	entered := blockSession(t, release)
	hold := make(chan error, 1)
	go func() {
		_, err := svc.Authenticate(pairRequest(0.8, 2))
		hold <- err
	}()
	<-entered

	queued := make(chan error, 1)
	go func() {
		_, err := svc.Authenticate(pairRequest(0.8, 3))
		queued <- err
	}()
	waitWaiters(t, svc, 1)

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()

	// The waiter must shed with ErrClosed while the admitted session still
	// holds its slot — i.e. before the drain can possibly hand it the slot.
	select {
	case err := <-queued:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter at Close returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still queued 5 s after Close began")
	}

	// The already-admitted session drains to completion.
	close(release)
	if err := <-hold; err != nil {
		t.Fatalf("in-flight session failed during drain: %v", err)
	}
	<-closed
	if _, err := svc.Authenticate(pairRequest(0.8, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close authenticate returned %v, want ErrClosed", err)
	}
}

// TestServiceSeedSweepAcrossGOMAXPROCS: the determinism half of the PR-6
// contract — a seed sweep must decide bit-identically when the runtime is
// given different parallelism budgets.
func TestServiceSeedSweepAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("GOMAXPROCS sweep is slow")
	}
	seeds := []int64{21, 22, 23}
	run := func(procs int) []*core.Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		svc := newService(t, 2)
		defer svc.Close()
		out := make([]*core.Result, len(seeds))
		for i, seed := range seeds {
			res, err := svc.Authenticate(pairRequest(0.4+0.3*float64(i), seed))
			if err != nil {
				t.Fatalf("procs=%d seed=%d: %v", procs, seed, err)
			}
			out[i] = res
		}
		return out
	}
	base := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		for i := range seeds {
			if math.Float64bits(got[i].DistanceM) != math.Float64bits(base[i].DistanceM) ||
				got[i].Granted != base[i].Granted || got[i].Reason != base[i].Reason {
				t.Fatalf("seed %d: GOMAXPROCS=%d %+v != GOMAXPROCS=1 %+v", seeds[i], procs, got[i], base[i])
			}
			if base[i].Session != nil && *got[i].Session != *base[i].Session {
				t.Fatalf("seed %d: GOMAXPROCS=%d session diverged", seeds[i], procs)
			}
		}
	}
}
