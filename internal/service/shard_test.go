package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"github.com/acoustic-auth/piano/internal/core"
)

func newShardedService(t testing.TB, workers, shards int) *AuthService {
	t.Helper()
	svc, err := New(Config{Core: core.DefaultConfig(), Workers: workers, ShardCount: shards})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestShardConfigRejectsNegativeCount(t *testing.T) {
	_, err := New(Config{Core: core.DefaultConfig(), ShardCount: -1})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("ShardCount -1 returned %v, want ErrConfig", err)
	}
}

// TestShardWorkerDistribution: Workers is the TOTAL budget, spread across
// shards as evenly as possible with a floor of one worker per shard.
func TestShardWorkerDistribution(t *testing.T) {
	cases := []struct {
		workers, shards int
		want            []int
	}{
		{workers: 4, shards: 0, want: []int{4}}, // 0 = legacy single shard
		{workers: 4, shards: 1, want: []int{4}},
		{workers: 4, shards: 2, want: []int{2, 2}},
		{workers: 5, shards: 2, want: []int{3, 2}}, // remainder to the first shards
		{workers: 2, shards: 4, want: []int{1, 1, 1, 1}}, // floor of 1, over-provisioned
	}
	for _, tc := range cases {
		svc := newShardedService(t, tc.workers, tc.shards)
		if got := svc.ShardCount(); got != len(tc.want) {
			t.Errorf("workers=%d shards=%d: ShardCount() = %d, want %d",
				tc.workers, tc.shards, got, len(tc.want))
		}
		for i, sh := range svc.shards {
			if got := sh.pool.Workers(); got != tc.want[i] {
				t.Errorf("workers=%d shards=%d: shard %d has %d workers, want %d",
					tc.workers, tc.shards, i, got, tc.want[i])
			}
		}
		svc.Close()
	}
}

// TestShardPinRoundRobin: admission order alone decides the shard, cycling
// through all of them, so load spreads evenly without inspecting requests.
func TestShardPinRoundRobin(t *testing.T) {
	svc := newShardedService(t, 3, 3)
	defer svc.Close()
	seen := make(map[*shard]int)
	for i := 0; i < 9; i++ {
		seen[svc.pin()]++
	}
	if len(seen) != 3 {
		t.Fatalf("9 pins touched %d shards, want 3", len(seen))
	}
	for sh, n := range seen {
		if n != 3 {
			t.Fatalf("shard %p pinned %d times, want 3", sh, n)
		}
	}
}

// TestShardDeterminism is the acceptance property for sharding: the same
// request set decides bit-identically (Float64bits on the measured distance,
// plus the full session report) at ShardCount 0, 1, 2, and 4 under GOMAXPROCS
// 1, 2, 4, and 8, with the sessions running concurrently — both the batch and
// the streaming path. Runs under -race in CI.
func TestShardDeterminism(t *testing.T) {
	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = pairRequest(0.4+0.5*float64(i), int64(90+i))
	}
	reqs[1].Interferers = []DeviceSpec{{Name: "other-user", X: 2.1, Y: 1.3}}

	// Baseline from the legacy unsharded layout, serial.
	ref := newShardedService(t, 2, 0)
	want := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		res, err := ref.Authenticate(req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	wantStream, err := streamOne(ref, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(wantStream, want[0]) {
		t.Fatalf("baseline stream diverged from batch:\nstream %+v\nbatch  %+v", wantStream, want[0])
	}
	ref.Close()

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{0, 1, 2, 4} {
			if testing.Short() && procs > 1 && procs != 4 {
				continue
			}
			svc := newShardedService(t, 2, shards)

			var wg sync.WaitGroup
			results := make([]*core.Result, len(reqs))
			errs := make([]error, len(reqs))
			for i := range reqs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = svc.Authenticate(reqs[i])
				}(i)
			}
			wg.Wait()
			for i := range reqs {
				if errs[i] != nil {
					t.Fatalf("procs=%d shards=%d request %d: %v", procs, shards, i, errs[i])
				}
				if !sameDecision(results[i], want[i]) {
					t.Fatalf("procs=%d shards=%d request %d: decision diverged:\nsharded  %+v\nbaseline %+v",
						procs, shards, i, results[i], want[i])
				}
			}

			res, err := streamOne(svc, reqs[0])
			if err != nil {
				t.Fatalf("procs=%d shards=%d stream: %v", procs, shards, err)
			}
			if !sameDecision(res, want[0]) {
				t.Fatalf("procs=%d shards=%d: streamed decision diverged:\nsharded  %+v\nbaseline %+v",
					procs, shards, res, want[0])
			}
			svc.Close()
		}
	}
}

// streamOne runs one full streaming session to its decision.
func streamOne(svc *AuthService, req Request) (*core.Result, error) {
	sn, err := svc.OpenSession(context.Background(), req)
	if err != nil {
		return nil, err
	}
	for _, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
		rec := sn.Recording(role)
		for at := 0; at < len(rec); at += 4096 {
			end := at + 4096
			if end > len(rec) {
				end = len(rec)
			}
			if err := sn.Feed(role, rec[at:end]); err != nil {
				if errors.Is(err, ErrStreamDecided) {
					break
				}
				return nil, err
			}
		}
	}
	return sn.Result()
}
