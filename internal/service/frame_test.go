package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/arrival"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/faultinject"
	"github.com/acoustic-auth/piano/internal/frame"
)

// frameOutcome captures how a framed session ended, in a form comparable
// across GOMAXPROCS values and repeats: either a decision (with its
// degraded-mode accounting) or a typed error's string.
type frameOutcome struct {
	decided   bool
	granted   bool
	reason    core.Reason
	distBits  uint64
	lostSamp  int
	lostWin   int
	errString string
}

func outcomeOf(res *core.Result, err error) frameOutcome {
	if err != nil {
		return frameOutcome{errString: err.Error()}
	}
	o := frameOutcome{decided: true, granted: res.Granted, reason: res.Reason,
		distBits: math.Float64bits(res.DistanceM)}
	if res.Session != nil && res.Session.Degraded != nil {
		o.lostSamp = res.Session.Degraded.LostSamples
		o.lostWin = res.Session.Degraded.LostWindows
	}
	return o
}

// feedWire replays one role's wire schedule into the session as frames:
// corrupt frames are sent with a damaged CRC and must be refused typed
// (never scored); every other frame must be accepted. The role's transport
// is then declared finished, so unrepaired gaps become loss. A fatal typed
// resolution (insufficient audio past the ceiling) ends the replay early
// and is returned.
func feedWire(t *testing.T, sn *Session, role core.Role, evs []arrival.WireEvent) error {
	t.Helper()
	rec := sn.Recording(role)
	for _, ev := range evs {
		f := frame.New(ev.Seq, ev.Offset, rec[ev.Offset:ev.Offset+ev.N])
		if ev.Corrupt {
			f.CRC ^= 0xDEAD
			err := sn.FeedFrame(role, f)
			switch {
			case errors.Is(err, ErrFrameCorrupt):
				continue // refused whole, session open — the contract
			case errors.Is(err, ErrInsufficientAudio), errors.Is(err, ErrStreamDecided):
				return err
			default:
				t.Fatalf("corrupt frame seq %d returned %v, want ErrFrameCorrupt", ev.Seq, err)
			}
		}
		if err := sn.FeedFrame(role, f); err != nil {
			if errors.Is(err, ErrInsufficientAudio) || errors.Is(err, ErrStreamDecided) {
				return err
			}
			t.Fatalf("frame seq %d [%d, %d): %v", ev.Seq, ev.Offset, ev.Offset+ev.N, err)
		}
	}
	if err := sn.FinishFeed(role); err != nil {
		if errors.Is(err, ErrInsufficientAudio) || errors.Is(err, ErrStreamDecided) {
			return err
		}
		t.Fatalf("FinishFeed(%v): %v", role, err)
	}
	return nil
}

// runFramed opens a session and replays each role's wire schedule
// (derived deterministically from seed — per-role streams are
// decorrelated), returning the comparable outcome.
func runFramed(t *testing.T, svc *AuthService, req Request, wire arrival.WireConfig, seed int64) frameOutcome {
	t.Helper()
	sn, err := svc.OpenSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	for i, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
		evs, err := arrival.Wire(arrival.Config{Jitter: 0.2}, wire, seed+int64(i)*977, len(sn.Recording(role)))
		if err != nil {
			t.Fatal(err)
		}
		if ferr := feedWire(t, sn, role, evs); ferr != nil {
			return outcomeOf(nil, ferr)
		}
	}
	return outcomeOf(sn.Result())
}

// TestSessionFramedCleanBitIdentical is the acceptance property: a framed
// session on a clean transport — frames in order, intact, nothing lost —
// decides bit-identically (Float64bits) to the batch pipeline and reports
// no degradation, at GOMAXPROCS 1, 2, 4, and 8.
func TestSessionFramedCleanBitIdentical(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	req := pairRequest(0.8, 73)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		sn, err := svc.OpenSession(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		for i, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
			evs, err := arrival.Wire(arrival.Config{Jitter: 0.2}, arrival.WireConfig{}, 31+int64(i), len(sn.Recording(role)))
			if err != nil {
				t.Fatal(err)
			}
			if ferr := feedWire(t, sn, role, evs); ferr != nil {
				t.Fatalf("procs=%d: clean framed feed failed: %v", procs, ferr)
			}
		}
		res, err := sn.Result()
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !sameDecision(res, want) {
			t.Fatalf("procs=%d: clean framed decision diverged:\nframed %+v\nbatch  %+v", procs, res, want)
		}
		if res.Session == nil || res.Session.Degraded != nil {
			t.Fatalf("procs=%d: clean framed session reported degradation: %+v", procs, res.Session)
		}
	}
}

// TestSessionFramedSeededLossDeterministic is the loss-determinism
// property: for any seeded loss/dup/reorder/corrupt pattern, a framed
// session reaches the same decision — or the same typed error — at
// GOMAXPROCS 1, 2, 4, and 8, across repeats. Light loss must stay under
// the ceiling (a decision, possibly degraded); total loss must refuse
// typed with ErrInsufficientAudio, never decide.
func TestSessionFramedSeededLossDeterministic(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()

	wires := []struct {
		name       string
		cfg        arrival.WireConfig
		mustRefuse bool
	}{
		// Light loss may decide degraded or refuse typed (if the peak's
		// fine band was hit) — what matters is that the outcome is a pure
		// function of the seed. Total loss must always refuse typed.
		{"light", arrival.WireConfig{LossProb: 0.04, DupProb: 0.1, ReorderProb: 0.2, CorruptProb: 0.03}, false},
		{"heavy", arrival.WireConfig{LossProb: 0.9}, true},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, w := range wires {
		for _, seed := range []int64{5, 9} {
			req := pairRequest(0.8, 100+seed)
			var base frameOutcome
			first := true
			for _, procs := range []int{1, 2, 4, 8} {
				runtime.GOMAXPROCS(procs)
				reps := 2
				if testing.Short() {
					reps = 1
				}
				for rep := 0; rep < reps; rep++ {
					got := runFramed(t, svc, req, w.cfg, seed)
					if first {
						base, first = got, false
						if w.mustRefuse && (got.decided || got.errString == "") {
							t.Fatalf("%s seed=%d: total loss decided anyway: %+v", w.name, seed, got)
						}
						if !got.decided && got.errString == "" {
							t.Fatalf("%s seed=%d: no outcome recorded", w.name, seed)
						}
						continue
					}
					if got != base {
						t.Fatalf("%s seed=%d procs=%d rep=%d: outcome diverged:\n got %+v\nbase %+v",
							w.name, seed, procs, rep, got, base)
					}
				}
			}
		}
	}
}

// TestSessionFramedTailLossDecidesDegraded pins the degraded-decision
// contract: loss confined to the recording's tail — past every signal, so
// the peak's fine band is intact — must not block the decision. The
// session decides with the same Granted/Reason/DistanceM bits as batch and
// reports exactly the lost samples in Degraded; the excluded-window count
// is a pure function of the hop grid, so it too is identical across
// GOMAXPROCS.
func TestSessionFramedTailLossDecidesDegraded(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	req := pairRequest(0.8, 87)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	const tailGap = 8000
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var base frameOutcome
	for pi, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		sn, err := svc.OpenSession(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		for _, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
			rec := sn.Recording(role)
			stop := len(rec) - tailGap
			const chunk = 4096
			seq := uint32(0)
			for off := 0; off < stop; off += chunk {
				end := off + chunk
				if end > stop {
					end = stop
				}
				if err := sn.FeedFrame(role, frame.New(seq, off, rec[off:end])); err != nil {
					t.Fatal(err)
				}
				seq++
			}
			// The tail never arrives; FinishFeed declares it lost.
			if err := sn.FinishFeed(role); err != nil {
				t.Fatalf("FinishFeed(%v): %v", role, err)
			}
		}
		res, err := sn.Result()
		if err != nil {
			t.Fatalf("procs=%d: tail loss blocked the decision: %v", procs, err)
		}
		if res.Granted != want.Granted || res.Reason != want.Reason ||
			math.Float64bits(res.DistanceM) != math.Float64bits(want.DistanceM) {
			t.Fatalf("procs=%d: degraded decision diverged from batch:\nframed %+v\nbatch  %+v", procs, res, want)
		}
		d := res.Session.Degraded
		if d == nil || d.LostSamples != 2*tailGap || d.LostWindows == 0 {
			t.Fatalf("procs=%d: degraded report %+v, want %d lost samples across both roles", procs, d, 2*tailGap)
		}
		got := outcomeOf(res, nil)
		if pi == 0 {
			base = got
		} else if got != base {
			t.Fatalf("procs=%d: degraded outcome diverged: %+v vs %+v", procs, got, base)
		}
	}
}

// TestSessionFramedMixedFeedTyped: a role commits to one transport on its
// first feed; crossing over is refused typed in both directions, with the
// session still usable on the committed path.
func TestSessionFramedMixedFeedTyped(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 81))
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	// RoleAuth commits to plain Feed; a frame is then refused.
	rec := sn.Recording(core.RoleAuth)
	if err := sn.Feed(core.RoleAuth, rec[:1000]); err != nil {
		t.Fatal(err)
	}
	if err := sn.FeedFrame(core.RoleAuth, frame.New(0, 1000, rec[1000:2000])); !errors.Is(err, ErrMixedFeed) {
		t.Fatalf("FeedFrame on a plain role returned %v, want ErrMixedFeed", err)
	}
	if err := sn.FinishFeed(core.RoleAuth); !errors.Is(err, ErrMixedFeed) {
		t.Fatalf("FinishFeed on a plain role returned %v, want ErrMixedFeed", err)
	}

	// RoleVouch commits to frames; a plain chunk is then refused.
	vrec := sn.Recording(core.RoleVouch)
	if err := sn.FeedFrame(core.RoleVouch, frame.New(0, 0, vrec[:1000])); err != nil {
		t.Fatal(err)
	}
	if err := sn.Feed(core.RoleVouch, vrec[1000:2000]); !errors.Is(err, ErrMixedFeed) {
		t.Fatalf("Feed on a framed role returned %v, want ErrMixedFeed", err)
	}
	// The committed paths still work.
	if err := sn.Feed(core.RoleAuth, rec[1000:2000]); err != nil {
		t.Fatal(err)
	}
	if err := sn.FeedFrame(core.RoleVouch, frame.New(1, 1000, vrec[1000:2000])); err != nil {
		t.Fatal(err)
	}
}

// TestSessionFramedCorruptThenRepair: a corrupt frame is refused whole and
// never scored; retransmitting it intact repairs the stream and the
// decision is bit-identical to batch with no degradation.
func TestSessionFramedCorruptThenRepair(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()
	req := pairRequest(0.8, 83)
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := svc.OpenSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
		rec := sn.Recording(role)
		const chunk = 2048
		seq := uint32(0)
		for off := 0; off < len(rec); off += chunk {
			end := off + chunk
			if end > len(rec) {
				end = len(rec)
			}
			f := frame.New(seq, off, rec[off:end])
			if seq%5 == 2 {
				bad := f
				bad.CRC ^= 1
				if err := sn.FeedFrame(role, bad); !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("corrupt frame returned %v, want ErrFrameCorrupt", err)
				}
			}
			if err := sn.FeedFrame(role, f); err != nil {
				t.Fatal(err)
			}
			seq++
		}
		if st := sn.FrameStats(role); st.Corrupt == 0 || st.LostSamples != 0 {
			t.Fatalf("%v stats %+v: want corrupt counted, nothing lost", role, st)
		}
	}
	res, err := sn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(res, want) {
		t.Fatalf("repaired framed decision diverged:\nframed %+v\nbatch  %+v", res, want)
	}
	if res.Session.Degraded != nil {
		t.Fatalf("fully repaired session reported degradation: %+v", res.Session.Degraded)
	}
}

// TestSessionGapRepairTimeout: a gap the transport never repairs is
// declared lost by the lifecycle watchdog once GapRepairTimeout passes,
// releasing the audio buffered behind it — the session then resolves
// without the client ever calling FinishFeed: either a degraded decision
// accounting exactly the withheld samples, or a typed insufficient-audio
// refusal if the gap hit audio the decision needed.
func TestSessionGapRepairTimeout(t *testing.T) {
	svc, err := New(Config{
		Core:             core.DefaultConfig(),
		Workers:          2,
		MaxSessions:      2,
		GapRepairTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sn, err := svc.OpenSession(context.Background(), pairRequest(0.8, 85))
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	const gapLo, gapN = 1000, 500
	for _, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
		rec := sn.Recording(role)
		if err := sn.FeedFrame(role, frame.New(0, 0, rec[:gapLo])); err != nil {
			t.Fatal(err)
		}
		lo := gapLo
		if role == core.RoleAuth {
			lo += gapN // withhold [gapLo, gapLo+gapN) forever on one role
		} else {
			// The vouch role feeds clean.
			lo = gapLo
		}
		const chunk = 4096
		seq := uint32(1)
		for off := lo; off < len(rec); off += chunk {
			end := off + chunk
			if end > len(rec) {
				end = len(rec)
			}
			if err := sn.FeedFrame(role, frame.New(seq, off, rec[off:end])); err != nil {
				t.Fatal(err)
			}
			seq++
		}
	}
	// The auth role is fully fed except the withheld gap; nothing more will
	// arrive. Only the watchdog can unwedge it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, need, err := sn.TryResult()
		if err != nil {
			if !errors.Is(err, ErrInsufficientAudio) {
				t.Fatalf("gap expiry resolved to %v, want a decision or ErrInsufficientAudio", err)
			}
			return
		}
		if need == 0 {
			if res.Session.Degraded == nil || res.Session.Degraded.LostSamples != gapN {
				t.Fatalf("degraded report %+v, want exactly the %d withheld samples", res.Session.Degraded, gapN)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never declared the gap lost (still need %d)", need)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosLossStorm is the loss-storm chaos scenario: concurrent framed
// sessions over seeded lossy wires while injected faults fail individual
// frames and stall scans, with some callers abandoning mid-feed. The
// invariant extends the PR-6 storms: every session resolves to a typed
// error or to a deterministic decision (clean sessions bit-identical to
// their baseline; degraded sessions deterministic per seed), no slot
// leaks, and the service stays serviceable after the storm.
func TestChaosLossStorm(t *testing.T) {
	svc, err := New(Config{
		Core:          core.DefaultConfig(),
		Workers:       2,
		MaxSessions:   3,
		MaxQueueWait:  200 * time.Millisecond,
		MaxQueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = pairRequest(0.5+0.4*float64(i), int64(90+i))
	}
	baseline := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		if baseline[i], err = svc.Authenticate(req); err != nil {
			t.Fatal(err)
		}
	}

	errChaosFrame := fmt.Errorf("chaos: injected frame fault")
	faultinject.Enable(37)
	defer faultinject.Disable()
	faultinject.Arm(faultinject.SiteFrameFeed, faultinject.Fault{
		Action: faultinject.ActError, Err: errChaosFrame, Prob: 0.05,
	})
	faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
		Action: faultinject.ActDelay, Delay: 200 * time.Microsecond, Prob: 0.01, Skip: 5,
	})

	const storm = 12
	var wg sync.WaitGroup
	outcomes := make([]frameOutcome, storm)
	errs := make([]error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sn, err := svc.OpenSession(context.Background(), reqs[g%len(reqs)])
			if err != nil {
				errs[g] = err
				return
			}
			wire := arrival.WireConfig{LossProb: 0.05, DupProb: 0.1, ReorderProb: 0.2, CorruptProb: 0.05}
			if g%3 == 0 {
				wire = arrival.WireConfig{} // a third of the fleet has a clean wire
			}
		roles:
			for i, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
				rec := sn.Recording(role)
				evs, werr := arrival.Wire(arrival.Config{Jitter: 0.2}, wire, int64(g*13+7+i*977), len(rec))
				if werr != nil {
					errs[g] = werr
					return
				}
				for j, ev := range evs {
					if g%4 == 1 && i == 1 && j > len(evs)/2 {
						// Abandon mid-feed: the slot must still come back.
						sn.Close()
						_, errs[g] = sn.Result()
						return
					}
					f := frame.New(ev.Seq, ev.Offset, rec[ev.Offset:ev.Offset+ev.N])
					if ev.Corrupt {
						bad := f
						bad.CRC ^= 0xBEEF
						ferr := sn.FeedFrame(role, bad)
						if !errors.Is(ferr, ErrFrameCorrupt) && !errors.Is(ferr, errChaosFrame) {
							errs[g] = fmt.Errorf("corrupt frame returned %v, want ErrFrameCorrupt", ferr)
							break roles
						}
						// The sender's retransmission repairs it below.
					}
					// Injected frame faults refuse the frame with the
					// session open: retransmit until it lands, like a real
					// sender with acks.
					var ferr error
					for try := 0; try < 50; try++ {
						if ferr = sn.FeedFrame(role, f); !errors.Is(ferr, errChaosFrame) {
							break
						}
					}
					switch {
					case ferr == nil:
					case errors.Is(ferr, ErrInsufficientAudio):
						errs[g] = ferr
						return
					default:
						errs[g] = ferr
						break roles
					}
				}
				if ferr := sn.FinishFeed(role); ferr != nil {
					errs[g] = ferr
					break roles
				}
			}
			if errs[g] != nil {
				sn.Close()
				return
			}
			res, rerr := sn.Result()
			if rerr != nil {
				errs[g] = rerr
				sn.Close()
				return
			}
			outcomes[g] = outcomeOf(res, nil)
			if res.Session != nil && res.Session.Degraded == nil {
				// Clean-wire decisions must be bit-identical to baseline.
				if !sameDecision(res, baseline[g%len(reqs)]) {
					errs[g] = fmt.Errorf("clean framed session diverged: %+v vs %+v", res, baseline[g%len(reqs)])
				}
			}
		}(g)
	}
	wg.Wait()

	var ok, typed int
	for g := 0; g < storm; g++ {
		if errs[g] == nil {
			ok++
			continue
		}
		typed++
		if !chaosTyped(errs[g], true) && !errors.Is(errs[g], ErrInsufficientAudio) {
			t.Fatalf("session %d resolved to an untyped error: %v", g, errs[g])
		}
	}
	t.Logf("loss storm: %d decisions, %d typed failures", ok, typed)
	if ok == 0 {
		t.Fatal("loss storm produced no decisions at all — the scenario proved nothing")
	}

	// No slot leaks and fully serviceable: with chaos off, MaxSessions
	// fresh sessions must all be admittable and a framed clean session must
	// match its baseline.
	faultinject.Disable()
	open := make([]*Session, 0, 3)
	for i := 0; i < 3; i++ {
		sn, err := svc.OpenSession(context.Background(), reqs[i])
		if err != nil {
			t.Fatalf("slot %d leaked: %v", i, err)
		}
		open = append(open, sn)
	}
	for _, sn := range open[1:] {
		sn.Close()
	}
	sn := open[0]
	for i, role := range []core.Role{core.RoleAuth, core.RoleVouch} {
		evs, err := arrival.Wire(arrival.Config{Jitter: 0.2}, arrival.WireConfig{}, 301+int64(i), len(sn.Recording(role)))
		if err != nil {
			t.Fatal(err)
		}
		if ferr := feedWire(t, sn, role, evs); ferr != nil {
			t.Fatal(ferr)
		}
	}
	res, err := sn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(res, baseline[0]) {
		t.Fatalf("post-storm framed session diverged:\n%+v\n%+v", res, baseline[0])
	}
}
