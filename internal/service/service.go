package service

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/attack"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/dsp"
)

// ErrClosed is returned by Authenticate after Close.
var ErrClosed = errors.New("service: closed")

// Config configures a long-lived AuthService.
type Config struct {
	// Core is the base session configuration (signal design, detection
	// parameters, scene, timing). Per-request threshold and environment
	// overrides apply on top; everything that shapes detection is fixed
	// for the service lifetime so the shared detector matches every
	// session.
	Core core.Config
	// Workers sizes the shared detect worker pool (≤ 0 → GOMAXPROCS).
	Workers int
	// MaxSessions bounds the number of concurrently running sessions
	// (≤ 0 → 4 × Workers). Excess Authenticate calls block until a slot
	// frees up, which keeps memory and goroutine counts flat under burst
	// load.
	MaxSessions int
}

// DeviceSpec describes one session device's placement and hardware quirks
// (mirrors the public piano.DeviceSpec).
type DeviceSpec struct {
	Name         string
	X, Y         float64
	Room         int
	ClockSkewPPM float64
}

// Request is one authentication session: a device pair, an optional set of
// interfering PIANO users, and the session seed.
type Request struct {
	// Auth and Vouch are the authenticating and vouching devices.
	Auth, Vouch DeviceSpec
	// Interferers are other PIANO users' devices in the scene; during the
	// session each plays two randomized reference signals at random times
	// (the Fig. 2a multi-user scenario). They are placed in the
	// authenticating device's room.
	Interferers []DeviceSpec
	// Seed drives every random draw of this session (0 → 1). Equal
	// requests with equal seeds produce bit-identical results, serial or
	// concurrent.
	Seed int64
	// ThresholdM overrides the service's τ for this session (0 → service
	// default).
	ThresholdM float64
	// Environment overrides the ambient scenario (0 → service default).
	Environment acoustic.Environment
}

// AuthService is the long-lived batched authentication server. It is safe
// for concurrent use; sessions run concurrently up to MaxSessions while
// sharing one detect worker pool and one pinned FFT plan set.
type AuthService struct {
	cfg   Config
	pool  *detect.Pool
	det   *detect.Detector
	plans *dsp.PlanSet

	sem chan struct{} // session slots

	mu       sync.Mutex
	closed   bool
	inFlight sync.WaitGroup
	sessions uint64
}

// New validates cfg and builds the service: the worker pool is started,
// the FFT plan for the configured window length is built and pinned, and
// the shared detector is attached to both.
func New(cfg Config) (*AuthService, error) {
	if err := cfg.Core.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4 * cfg.Workers
	}
	plans, err := dsp.NewPlanSet(cfg.Core.Signal.Length)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	det, err := detect.New(cfg.Core.Detect)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	pool := detect.NewPool(cfg.Workers)
	det.UsePool(pool)
	det.UsePlans(plans)
	// Pin the scan scratch now, one workspace per pool worker plus the
	// submitting goroutine: the full-length spectrum buffers, the packed
	// FFT scratch, and (when the configured coarse step streams) the
	// sliding-DFT state and its rotation table all live in the detector's
	// workspace pool for the service lifetime, so steady-state sessions
	// run the band-limited engine allocation-free from the first request.
	if err := det.Prewarm(cfg.Core.Signal, cfg.Workers+1); err != nil {
		pool.Close()
		return nil, fmt.Errorf("service: %w", err)
	}
	return &AuthService{
		cfg:   cfg,
		pool:  pool,
		det:   det,
		plans: plans,
		sem:   make(chan struct{}, cfg.MaxSessions),
	}, nil
}

// Config returns the service configuration (after defaulting).
func (s *AuthService) Config() Config { return s.cfg }

// Sessions returns the number of sessions completed successfully so far
// (requests that failed validation or errored out are not counted).
func (s *AuthService) Sessions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// begin reserves a session slot; it blocks while MaxSessions sessions are
// in flight and fails once the service is closed.
func (s *AuthService) begin() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.inFlight.Add(1)
	s.mu.Unlock()
	s.sem <- struct{}{}
	return nil
}

func (s *AuthService) end() {
	<-s.sem
	s.inFlight.Done()
}

// sessionConfig applies a request's overrides to the base config.
func (s *AuthService) sessionConfig(req Request) core.Config {
	cfg := s.cfg.Core
	if req.ThresholdM > 0 {
		cfg.ThresholdM = req.ThresholdM
	}
	if req.Environment != 0 {
		cfg.World.Environment = req.Environment
	}
	return cfg
}

// Authenticate runs one complete PIANO session and returns the access
// decision. It blocks while the service is at its concurrent-session
// bound. The session's scans are batched through the service's shared
// worker pool; its result is bit-identical to a serial run of the same
// request.
func (s *AuthService) Authenticate(req Request) (*core.Result, error) {
	// τ is an access-control parameter: reject nonsense instead of
	// silently deciding at the service default (0 means "use default").
	if req.ThresholdM < 0 {
		return nil, fmt.Errorf("service: threshold %g m must be positive (or 0 for the service default)", req.ThresholdM)
	}
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()

	cfg := s.sessionConfig(req)

	// Shared with piano.NewDeployment (device.NewSessionDevice) so service
	// sessions build devices identically to the serial path.
	mk := func(spec DeviceSpec, fallback string) (*device.Device, error) {
		return device.NewSessionDevice(spec.Name, fallback, spec.X, spec.Y, spec.Room, spec.ClockSkewPPM)
	}
	auth, err := mk(req.Auth, "authenticating-device")
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	vouch, err := mk(req.Vouch, "vouching-device")
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	interferers := make([]*device.Device, 0, len(req.Interferers))
	for i, spec := range req.Interferers {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("interferer-%d", i+1)
		}
		dev, err := attack.NewAttackerDevice(name, [2]float64{spec.X, spec.Y}, req.Auth.Room)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		interferers = append(interferers, dev)
	}

	// The session-private RNG stream: every draw this session makes —
	// interference schedules, reference-signal construction, latency and
	// processing-delay realizations, channel geometry, ambient noise —
	// comes from here, in the same order as the serial Deployment path,
	// which is what makes concurrent results bit-identical to serial ones.
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	a.UseDetector(s.det)

	var plays []core.ExtraPlay
	if len(interferers) > 0 {
		plays, err = attack.Interference(cfg.Signal, interferers, rng)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	res, err := a.Authenticate(plays...)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.mu.Lock()
	s.sessions++
	s.mu.Unlock()
	return res, nil
}

// Close drains in-flight sessions and stops the worker pool. Subsequent
// Authenticate calls return ErrClosed. Close is idempotent.
func (s *AuthService) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inFlight.Wait()
	s.pool.Close()
}
