package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/attack"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

// ErrClosed is returned by Authenticate after Close has begun: both for
// calls arriving after Close and for callers that were still waiting for a
// session slot when draining started (they are shed, not admitted).
var ErrClosed = errors.New("service: closed")

// ErrOverloaded is the admission-control shed signal: the service is at
// its concurrent-session bound and the request either exceeded
// Config.MaxQueueWait waiting for a slot or found the wait queue already
// MaxQueueDepth deep. Callers should back off and retry; the service
// itself remains healthy.
var ErrOverloaded = errors.New("service: overloaded")

// ErrInternal marks a session that died to a recovered panic (a bug or an
// injected fault) anywhere in its pipeline — scan workers, per-device
// detection goroutines, or the session goroutine itself. Match with
// errors.Is; the concrete *InternalError in the chain carries the panic
// value and stack. The service stays serviceable: the poisoned scan
// workspace is discarded and a replacement is re-prewarmed.
var ErrInternal = errors.New("service: internal error")

// InternalError is the concrete error behind ErrInternal: one recovered
// panic with the stack of the goroutine that panicked.
type InternalError struct {
	// Panic is the recovered panic value.
	Panic any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error (the stack is carried, not printed — log it from
// the field).
func (e *InternalError) Error() string {
	return fmt.Sprintf("service: internal error: panic: %v", e.Panic)
}

// Is reports errors.Is(e, ErrInternal).
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Config configures a long-lived AuthService.
type Config struct {
	// Core is the base session configuration (signal design, detection
	// parameters, scene, timing). Per-request threshold and environment
	// overrides apply on top; everything that shapes detection is fixed
	// for the service lifetime so the shared detector matches every
	// session.
	Core core.Config
	// Workers sizes the shared detect worker pool (≤ 0 → GOMAXPROCS).
	Workers int
	// MaxSessions bounds the number of concurrently running sessions
	// (≤ 0 → 4 × Workers). Excess Authenticate calls wait for a slot,
	// which keeps memory and goroutine counts flat under burst load; how
	// long they may wait is governed by MaxQueueWait/MaxQueueDepth.
	MaxSessions int
	// MaxQueueWait bounds how long a request may wait for a session slot
	// once all MaxSessions are busy; past it the request is shed with
	// ErrOverloaded instead of blocking forever behind a saturated
	// service. 0 (the default) waits indefinitely — the pre-hardening
	// behaviour — though a request context can still cancel the wait.
	MaxQueueWait time.Duration
	// MaxQueueDepth bounds how many requests may wait for a slot at once;
	// a request arriving at a full queue is shed immediately with
	// ErrOverloaded (SEDA-style admission control: bounded queue, bounded
	// wait, load shedding beyond both). 0 means unbounded.
	MaxQueueDepth int
	// SessionIdleTimeout bounds the gap between successful Feed calls on a
	// streaming session (the open→first-Feed gap counts too). A session
	// idle past it is resolved with ErrSessionStalled by the lifecycle
	// watchdog, releasing its MaxSessions slot — a client that opens a
	// session and vanishes cannot leak a slot. Failed feeds (overflow, an
	// injected fault) do not reset the clock: refused chunks are not
	// progress. Time spent inside an in-flight Feed call does not count
	// toward the gap — a scan that outruns the bound on a loaded box is
	// work, not a stall (SessionMaxLifetime bounds it instead). 0 (the
	// default) disables the bound — the legacy unbounded behaviour.
	// Enforcement granularity is a quarter of the tightest enabled bound,
	// clamped to [1ms, 1s].
	SessionIdleTimeout time.Duration
	// SessionMaxLifetime bounds a streaming session's whole open→resolution
	// span, however actively it is fed; past it the watchdog resolves the
	// session with ErrSessionExpired. A client feeding one sample per
	// second is making "progress" the idle bound never sees — this bound
	// caps the total slot-hold time. 0 disables it.
	SessionMaxLifetime time.Duration
	// ShardCount splits the detection machinery — the worker pool, the
	// detector with its pooled scan workspaces, and the pinned FFT plan
	// set — into that many independent per-worker-group shards. Sessions
	// are pinned to one shard at admission (round-robin), so concurrent
	// sessions on different shards stop contending on a single pool's task
	// queue and a single workspace freelist. 0 (the default) and 1 both
	// mean one shard — the legacy layout. Workers stays the TOTAL worker
	// budget: it is distributed across shards as evenly as possible, with
	// at least one worker per shard. Sharding never changes results: every
	// shard is built from the same Config, and a session's decision is a
	// pure function of its request and seed (see the determinism contract),
	// so results are bit-identical at any ShardCount. Negative values are
	// rejected with ErrConfig.
	ShardCount int

	// ReorderWindow bounds, in samples, how far ahead of the in-order
	// delivery frontier a framed session (FeedFrame) buffers out-of-order
	// audio per role. Once buffered data runs past it, the oldest gap is
	// declared lost instead of waiting for a retransmission — the
	// structural repair bound, a pure function of the frame sequence, so
	// framed decisions stay deterministic. 0 means frame.DefaultWindow;
	// negative values are rejected with ErrConfig.
	ReorderWindow int
	// GapRepairTimeout bounds how long a framed session waits, in wall-
	// clock time, for a retransmission to repair a reassembly gap; past
	// it the lifecycle watchdog declares the gap lost. 0 disables the
	// wall-clock deadline (gaps then expire only structurally or at
	// FinishFeed); negative values are rejected with ErrConfig.
	GapRepairTimeout time.Duration
}

// DeviceSpec describes one session device's placement and hardware quirks
// (mirrors the public piano.DeviceSpec).
type DeviceSpec struct {
	Name         string
	X, Y         float64
	Room         int
	ClockSkewPPM float64
}

// Request is one authentication session: a device pair, an optional set of
// interfering PIANO users, and the session seed.
type Request struct {
	// Auth and Vouch are the authenticating and vouching devices.
	Auth, Vouch DeviceSpec
	// Interferers are other PIANO users' devices in the scene; during the
	// session each plays two randomized reference signals at random times
	// (the Fig. 2a multi-user scenario). They are placed in the
	// authenticating device's room.
	Interferers []DeviceSpec
	// Seed drives every random draw of this session (0 → 1). Equal
	// requests with equal seeds produce bit-identical results, serial or
	// concurrent.
	Seed int64
	// ThresholdM overrides the service's τ for this session (0 → service
	// default).
	ThresholdM float64
	// Environment overrides the ambient scenario (0 → service default).
	Environment acoustic.Environment
}

// AuthService is the long-lived batched authentication server. It is safe
// for concurrent use; sessions run concurrently up to MaxSessions while
// sharing one detect worker pool and one pinned FFT plan set.
type AuthService struct {
	cfg Config
	// shards are the per-worker-group detection machinery (pool, detector,
	// plan set); always at least one. nextShard drives the round-robin
	// session pinning (see shard.go).
	shards    []*shard
	nextShard atomic.Uint64

	sem      chan struct{} // session slots
	draining chan struct{} // closed when Close begins: sheds queued waiters

	// watchdogDone is closed when the lifecycle watchdog goroutine exits
	// (nil when no lifecycle bound is configured — no watchdog runs).
	watchdogDone chan struct{}

	mu       sync.Mutex
	closed   bool
	waiters  int // requests currently queued for a slot
	inFlight sync.WaitGroup
	sessions uint64
	streams  map[*Session]struct{} // open streaming sessions (force-resolved on Close)
}

// New validates cfg and builds the service: each shard's worker pool is
// started, its FFT plan for the configured window length is built and
// pinned, and its detector is attached to both — with every workspace
// prewarmed (the full-length spectrum buffers, the packed FFT scratch, and,
// when the configured steps stream, the sliding-DFT state and its rotation
// table), so steady-state sessions run the band-limited engine
// allocation-free from the first request.
func New(cfg Config) (*AuthService, error) {
	if err := cfg.Core.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4 * cfg.Workers
	}
	shardCount := cfg.ShardCount
	if shardCount < 1 {
		shardCount = 1
	}
	shards, err := buildShards(cfg, shardCount, cfg.Workers)
	if err != nil {
		return nil, err
	}
	s := &AuthService{
		cfg:      cfg,
		shards:   shards,
		sem:      make(chan struct{}, cfg.MaxSessions),
		draining: make(chan struct{}),
		streams:  make(map[*Session]struct{}),
	}
	if every := watchdogInterval(cfg.SessionIdleTimeout, cfg.SessionMaxLifetime, cfg.GapRepairTimeout); every > 0 {
		s.watchdogDone = make(chan struct{})
		go s.watchdog(every)
	}
	return s, nil
}

// Config returns the service configuration (after defaulting).
func (s *AuthService) Config() Config { return s.cfg }

// Sessions returns the number of sessions completed successfully so far
// (requests that failed validation or errored out are not counted).
func (s *AuthService) Sessions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// begin reserves a session slot. Admission is deadline-aware and
// drain-aware: while all MaxSessions slots are busy the request waits at
// most MaxQueueWait (0 → indefinitely) in a queue at most MaxQueueDepth
// deep (0 → unbounded), sheds with ErrOverloaded past either bound,
// aborts with ctx.Err() if the caller gives up, and is turned away with
// ErrClosed the moment Close starts draining — a waiter already counted
// in inFlight must never be admitted to run a full session after Close
// began (the PR-6 Close/begin race).
func (s *AuthService) begin(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.inFlight.Add(1)
	s.mu.Unlock()

	// Fast path: a free slot admits without queue accounting.
	select {
	case s.sem <- struct{}{}:
		return s.admitted()
	default:
	}

	// Queue path: bounded depth, bounded wait, cancellable, drain-aware.
	if !s.enqueue() {
		s.inFlight.Done()
		return ErrOverloaded
	}
	defer s.dequeue()
	var timeout <-chan time.Time
	if s.cfg.MaxQueueWait > 0 {
		t := time.NewTimer(s.cfg.MaxQueueWait)
		defer t.Stop()
		timeout = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case s.sem <- struct{}{}:
		return s.admitted()
	case <-s.draining:
		s.inFlight.Done()
		return ErrClosed
	case <-timeout:
		s.inFlight.Done()
		return ErrOverloaded
	case <-done:
		s.inFlight.Done()
		return ctx.Err()
	}
}

// admitted re-checks closed after slot acquisition: a select racing Close
// may take the slot case even though draining is also ready, and a session
// admitted then would outlive the drain. The slot is given back and the
// caller sheds with ErrClosed.
func (s *AuthService) admitted() error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		<-s.sem
		s.inFlight.Done()
		return ErrClosed
	}
	return nil
}

// enqueue reserves a wait-queue position, refusing when the queue is
// already MaxQueueDepth deep.
func (s *AuthService) enqueue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxQueueDepth > 0 && s.waiters >= s.cfg.MaxQueueDepth {
		return false
	}
	s.waiters++
	return true
}

func (s *AuthService) dequeue() {
	s.mu.Lock()
	s.waiters--
	s.mu.Unlock()
}

func (s *AuthService) end() {
	<-s.sem
	s.inFlight.Done()
}

// sessionConfig applies a request's overrides to the base config.
func (s *AuthService) sessionConfig(req Request) core.Config {
	cfg := s.cfg.Core
	if req.ThresholdM > 0 {
		cfg.ThresholdM = req.ThresholdM
	}
	if req.Environment != 0 {
		cfg.World.Environment = req.Environment
	}
	return cfg
}

// validateRequest rejects request parameters that would otherwise be
// silently misinterpreted: τ is an access-control parameter, so NaN/±Inf
// (which pass a plain `< 0` check) and negatives are errors rather than
// "use the service default", and an environment value must name a known
// scenario instead of falling through to some profile.
func validateRequest(req Request) error {
	switch {
	case math.IsNaN(req.ThresholdM) || math.IsInf(req.ThresholdM, 0):
		return fmt.Errorf("service: threshold %g m is not a finite value", req.ThresholdM)
	case req.ThresholdM < 0:
		return fmt.Errorf("service: threshold %g m must be positive (or 0 for the service default)", req.ThresholdM)
	}
	if req.Environment != 0 && !acoustic.KnownEnvironment(req.Environment) {
		return fmt.Errorf("service: unknown environment %d (known: quiet through street, or 0 for the service default)", int(req.Environment))
	}
	return nil
}

// Authenticate runs one complete PIANO session and returns the access
// decision, waiting (subject to the configured queue bounds) while the
// service is at its concurrent-session limit. It is
// AuthenticateContext with an uncancellable context.
func (s *AuthService) Authenticate(req Request) (*core.Result, error) {
	return s.AuthenticateContext(context.Background(), req)
}

// AuthenticateContext runs one complete PIANO session under ctx and
// returns the access decision. The session's scans are batched through the
// service's shared worker pool; a session that completes is bit-identical
// to a serial run of the same request. Failure semantics (see also
// ARCHITECTURE.md "Failure semantics"):
//
//   - invalid request parameters error before admission;
//   - admission sheds with ErrOverloaded past MaxQueueWait/MaxQueueDepth,
//     ErrClosed once Close has begun, or ctx.Err() if the caller gives up
//     in the queue;
//   - after admission, cancellation is cooperative: the session observes
//     ctx between protocol steps and between scan hop blocks and returns
//     ctx.Err(), freeing its slot and pool workers mid-scan;
//   - a panic anywhere in the session pipeline is recovered into
//     ErrInternal (errors.Is; the *InternalError carries the stack), the
//     poisoned scan workspace is discarded, and a replacement is
//     re-prewarmed — the service keeps serving.
func (s *AuthService) AuthenticateContext(ctx context.Context, req Request) (*core.Result, error) {
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	// Chaos hook: lets tests and piano-serve perturb admission itself
	// (delay → queue pressure, error → forced shed).
	if err := faultinject.Fire(faultinject.SiteServiceAcquire); err != nil {
		return nil, err
	}
	if err := s.begin(ctx); err != nil {
		return nil, err
	}
	defer s.end()

	// Pinned at admission: everything this session scans goes through one
	// shard's pool, workspaces, and plans.
	sh := s.pin()
	res, err := s.runSession(ctx, req, sh)
	if err != nil {
		// Panics recovered inside the scan engine or the per-device
		// detection goroutines arrive as *detect.PanicError; fold them
		// into the service's typed internal error.
		var pe *detect.PanicError
		if errors.As(err, &pe) {
			err = &InternalError{Panic: pe.Value, Stack: pe.Stack}
		}
		if errors.Is(err, ErrInternal) {
			sh.replenish(s.cfg)
		}
		return nil, err
	}
	s.mu.Lock()
	s.sessions++
	s.mu.Unlock()
	return res, nil
}

// runSession executes the admitted session. Panic isolation for the
// session goroutine itself lives here: whatever the pipeline panics with
// (world render, protocol plumbing, an injected fault) is recovered into a
// typed *InternalError instead of crashing the process, and the shared
// detector/pool stay serviceable.
func (s *AuthService) runSession(ctx context.Context, req Request, sh *shard) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &InternalError{Panic: r, Stack: debug.Stack()}
		}
	}()
	// Chaos hook: a panic here simulates a session-goroutine crash; a
	// delay holds a session slot (slot starvation for queued requests).
	if err := faultinject.Fire(faultinject.SiteServiceSession); err != nil {
		return nil, err
	}

	a, plays, err := s.buildSession(req, sh)
	if err != nil {
		return nil, err
	}
	res, err = a.AuthenticateContext(ctx, plays...)
	if err != nil {
		// Cancellation comes back as ctx.Err() itself, not wrapped in scan
		// provenance: the caller canceled, so "which device's scan noticed
		// first" is scheduling noise, and the bare sentinel is what callers
		// compare against.
		if ctxe := ctx.Err(); ctxe != nil && errors.Is(err, ctxe) {
			return nil, ctxe
		}
		return nil, fmt.Errorf("service: %w", err)
	}
	return res, nil
}

// buildSession constructs one session's devices, interferers, seeded RNG,
// and authenticator (with the pinned shard's detector attached) from a
// request — the part of the pipeline common to the batch path (runSession)
// and the streaming path (OpenSession), so both build sessions identically.
func (s *AuthService) buildSession(req Request, sh *shard) (*core.Authenticator, []core.ExtraPlay, error) {
	cfg := s.sessionConfig(req)

	// Shared with piano.NewDeployment (device.NewSessionDevice) so service
	// sessions build devices identically to the serial path.
	mk := func(spec DeviceSpec, fallback string) (*device.Device, error) {
		return device.NewSessionDevice(spec.Name, fallback, spec.X, spec.Y, spec.Room, spec.ClockSkewPPM)
	}
	auth, err := mk(req.Auth, "authenticating-device")
	if err != nil {
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	vouch, err := mk(req.Vouch, "vouching-device")
	if err != nil {
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	interferers := make([]*device.Device, 0, len(req.Interferers))
	for i, spec := range req.Interferers {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("interferer-%d", i+1)
		}
		dev, err := attack.NewAttackerDevice(name, [2]float64{spec.X, spec.Y}, req.Auth.Room)
		if err != nil {
			return nil, nil, fmt.Errorf("service: %w", err)
		}
		interferers = append(interferers, dev)
	}

	// The session-private RNG stream: every draw this session makes —
	// interference schedules, reference-signal construction, latency and
	// processing-delay realizations, channel geometry, ambient noise —
	// comes from here, in the same order as the serial Deployment path,
	// which is what makes concurrent results bit-identical to serial ones.
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	a.UseDetector(sh.det)

	var plays []core.ExtraPlay
	if len(interferers) > 0 {
		plays, err = attack.Interference(cfg.Signal, interferers, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("service: %w", err)
		}
	}
	return a, plays, nil
}

// Close stops admission, sheds every request still waiting for a session
// slot (they return ErrClosed), force-resolves every open streaming
// session to ErrClosed (a streaming session holds its slot until its
// decision, so an abandoned half-fed stream would otherwise stall the
// drain forever), drains the sessions already admitted, and stops the
// worker pool. Subsequent Authenticate calls return ErrClosed. Close is
// idempotent.
func (s *AuthService) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Wake every waiter parked on the slot queue before draining: a
	// goroutine already counted in inFlight but not yet holding a slot
	// must shed, or inFlight.Wait would admit it mid-drain (or deadlock
	// behind sessions that never free enough slots).
	close(s.draining)
	open := make([]*Session, 0, len(s.streams))
	for sn := range s.streams {
		open = append(open, sn)
	}
	s.mu.Unlock()
	for _, sn := range open {
		sn.resolve(nil, ErrClosed)
	}
	s.inFlight.Wait()
	// The watchdog exits on draining; a sweep racing this drain can only
	// lose the first-writer-wins race on sessions Close already resolved.
	// Waiting for it here means Close never leaves a goroutine behind.
	if s.watchdogDone != nil {
		<-s.watchdogDone
	}
	for _, sh := range s.shards {
		sh.pool.Close()
	}
}
