package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

// sameDecision compares the externally visible decision bits.
func sameDecision(a, b *core.Result) bool {
	if a.Granted != b.Granted || a.Reason != b.Reason ||
		math.Float64bits(a.DistanceM) != math.Float64bits(b.DistanceM) {
		return false
	}
	if (a.Session == nil) != (b.Session == nil) {
		return false
	}
	return a.Session == nil || *a.Session == *b.Session
}

// chaosTyped reports whether err is one of the typed outcomes every chaos
// request is allowed to resolve to.
func chaosTyped(err error, allowClosed bool) bool {
	switch {
	case errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrInternal),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return true
	case errors.Is(err, ErrClosed):
		return allowClosed
	}
	return false
}

// TestChaosMixedFaultStorm is the PR-6 chaos scenario: a saturated service
// hammered by concurrent requests while injected faults force slot
// starvation (admission delays against a bounded queue), worker panics,
// slow-scan stalls, and caller-side cancellations/timeouts — all at once,
// under -race in CI. The invariant: every request resolves to a typed error
// or to a result bit-identical to its request's fault-free run, and the
// service remains fully serviceable afterwards.
func TestChaosMixedFaultStorm(t *testing.T) {
	svc, err := New(Config{
		Core:          core.DefaultConfig(),
		Workers:       2,
		MaxSessions:   2,
		MaxQueueWait:  100 * time.Millisecond,
		MaxQueueDepth: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = pairRequest(0.4+0.4*float64(i), int64(70+i))
	}
	reqs[1].Interferers = []DeviceSpec{{Name: "other-user", X: 2.1, Y: 1.3}}
	baseline := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		if baseline[i], err = svc.Authenticate(req); err != nil {
			t.Fatal(err)
		}
	}

	faultinject.Enable(42)
	defer faultinject.Disable()
	// Admission pressure: a probabilistic stall right before slot
	// acquisition backs requests up against MaxQueueWait/MaxQueueDepth.
	faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
		Action: faultinject.ActDelay, Delay: 2 * time.Millisecond, Prob: 0.3,
	})
	// Session-goroutine crashes.
	faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
		Action: faultinject.ActPanic, Prob: 0.2,
	})
	// Slow-scan stalls deep inside the block grid.
	faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
		Action: faultinject.ActDelay, Delay: 200 * time.Microsecond, Prob: 0.01, Skip: 10,
	})

	const storm = 32
	var wg sync.WaitGroup
	results := make([]*core.Result, storm)
	errs := make([]error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			switch g % 4 {
			case 1:
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
				defer cancel()
			case 2:
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 30*time.Millisecond)
				defer cancel()
			case 3:
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel() // abandoned before the call
			}
			results[g], errs[g] = svc.AuthenticateContext(ctx, reqs[g%len(reqs)])
		}(g)
	}
	wg.Wait()

	var ok, typed int
	for g := 0; g < storm; g++ {
		if errs[g] == nil {
			ok++
			if !sameDecision(results[g], baseline[g%len(reqs)]) {
				t.Fatalf("request %d completed under chaos but diverged:\n%+v\n%+v",
					g, results[g], baseline[g%len(reqs)])
			}
			continue
		}
		typed++
		if !chaosTyped(errs[g], false) {
			t.Fatalf("request %d resolved to an untyped error: %v", g, errs[g])
		}
	}
	t.Logf("storm: %d bit-identical completions, %d typed failures", ok, typed)

	// The service must be fully serviceable once chaos stops.
	faultinject.Disable()
	for i, req := range reqs {
		after, err := svc.Authenticate(req)
		if err != nil {
			t.Fatalf("post-chaos request %d failed: %v", i, err)
		}
		if !sameDecision(after, baseline[i]) {
			t.Fatalf("post-chaos request %d diverged:\n%+v\n%+v", i, after, baseline[i])
		}
	}
}

// TestChaosCloseMidStorm drains the service while a fault storm is in
// flight: every request must still resolve to a typed error (now including
// ErrClosed) or a bit-identical result, and Close must return.
func TestChaosCloseMidStorm(t *testing.T) {
	svc, err := New(Config{
		Core:        core.DefaultConfig(),
		Workers:     2,
		MaxSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := pairRequest(0.8, 90)
	baseline, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(7)
	defer faultinject.Disable()
	faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
		Action: faultinject.ActPanic, Prob: 0.25,
	})

	const storm = 16
	var wg sync.WaitGroup
	results := make([]*core.Result, storm)
	errs := make([]error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = svc.Authenticate(req)
		}(g)
	}
	// Let some of the storm land, then pull the plug.
	time.Sleep(5 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	wg.Wait()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close never returned with the storm resolved")
	}

	for g := 0; g < storm; g++ {
		if errs[g] == nil {
			if !sameDecision(results[g], baseline) {
				t.Fatalf("request %d completed during drain but diverged:\n%+v\n%+v",
					g, results[g], baseline)
			}
			continue
		}
		if !chaosTyped(errs[g], true) {
			t.Fatalf("request %d resolved to an untyped error: %v", g, errs[g])
		}
	}
}
