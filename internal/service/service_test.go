package service

import (
	"math"
	"sync"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
)

func newService(t testing.TB, workers int) *AuthService {
	t.Helper()
	svc, err := New(Config{Core: core.DefaultConfig(), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func pairRequest(dist float64, seed int64) Request {
	return Request{
		Auth:  DeviceSpec{Name: "hub", X: 0, Y: 0, ClockSkewPPM: 12},
		Vouch: DeviceSpec{Name: "watch", X: dist, Y: 0, ClockSkewPPM: -17},
		Seed:  seed,
	}
}

func TestServiceGrantsAndDenies(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()

	near, err := svc.Authenticate(pairRequest(0.8, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !near.Granted || near.Reason != core.ReasonGranted {
		t.Fatalf("0.8 m under τ=1 m should grant; got %+v", near)
	}
	far, err := svc.Authenticate(pairRequest(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if far.Granted || far.Reason != core.ReasonSignalAbsent {
		t.Fatalf("6 m should be absent; got %+v", far)
	}
	if got := svc.Sessions(); got != 2 {
		t.Fatalf("sessions = %d", got)
	}
}

func TestServiceOverrides(t *testing.T) {
	svc := newService(t, 0)
	defer svc.Close()

	req := pairRequest(0.8, 5)
	req.ThresholdM = 0.5
	dec, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Granted || dec.Reason != core.ReasonDistanceExceedsThreshold {
		t.Fatalf("0.8 m with τ=0.5 m should deny on threshold; got %+v", dec)
	}

	// The environment override must change the scene (and hence the
	// measured value) relative to the default-office run of the same seed.
	req = pairRequest(0.8, 5)
	office, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Environment = acoustic.EnvStreet
	street, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}
	if office.DistanceM == street.DistanceM {
		t.Fatal("street override produced the office measurement; override ignored?")
	}
}

// TestServiceWorkerCountInvariant: the same request must decide
// bit-identically no matter how the pool is sized — the scan reduction is
// in window order, so worker scheduling can never leak into results.
func TestServiceWorkerCountInvariant(t *testing.T) {
	reqs := []Request{
		pairRequest(0.4, 11),
		pairRequest(0.9, 12),
		pairRequest(1.6, 13),
	}
	reqs[2].Interferers = []DeviceSpec{{Name: "other-user", X: 2.2, Y: 1.4}}

	one := newService(t, 1)
	defer one.Close()
	four := newService(t, 4)
	defer four.Close()
	for i, req := range reqs {
		a, err := one.Authenticate(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := four.Authenticate(req)
		if err != nil {
			t.Fatal(err)
		}
		if a.Granted != b.Granted || a.Reason != b.Reason ||
			math.Float64bits(a.DistanceM) != math.Float64bits(b.DistanceM) {
			t.Fatalf("request %d: 1-worker %+v != 4-worker %+v", i, a, b)
		}
	}
}

// TestServiceConcurrentBitIdentical: ≥4 concurrent sessions, each
// bit-identical to its own serial run (exercised under -race in CI).
func TestServiceConcurrentBitIdentical(t *testing.T) {
	svc := newService(t, 2)
	defer svc.Close()

	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = pairRequest(0.3+0.35*float64(i), int64(40+i))
	}
	reqs[1].Interferers = []DeviceSpec{{Name: "neighbor", X: 1.9, Y: 1.1}}

	serial := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		res, err := svc.Authenticate(req)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}

	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		results := make([]*core.Result, len(reqs))
		errs := make([]error, len(reqs))
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = svc.Authenticate(reqs[i])
			}(i)
		}
		wg.Wait()
		for i := range reqs {
			if errs[i] != nil {
				t.Fatalf("round %d request %d: %v", round, i, errs[i])
			}
			got, want := results[i], serial[i]
			if got.Granted != want.Granted || got.Reason != want.Reason ||
				math.Float64bits(got.DistanceM) != math.Float64bits(want.DistanceM) {
				t.Fatalf("round %d request %d: concurrent %+v != serial %+v", round, i, got, want)
			}
			if want.Session != nil && *got.Session != *want.Session {
				t.Fatalf("round %d request %d: session diverged:\n%+v\n%+v", round, i, got.Session, want.Session)
			}
		}
	}
}

func TestServiceClose(t *testing.T) {
	svc := newService(t, 1)
	if _, err := svc.Authenticate(pairRequest(0.8, 2)); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // idempotent
	if _, err := svc.Authenticate(pairRequest(0.8, 2)); err != ErrClosed {
		t.Fatalf("authenticate after close: %v", err)
	}
}

func TestServiceRejectsNegativeThreshold(t *testing.T) {
	svc := newService(t, 1)
	defer svc.Close()
	req := pairRequest(0.8, 2)
	req.ThresholdM = -0.5
	if _, err := svc.Authenticate(req); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestServiceRejectsBadConfig(t *testing.T) {
	bad := core.DefaultConfig()
	bad.ThresholdM = -1
	if _, err := New(Config{Core: bad}); err == nil {
		t.Fatal("invalid core config accepted")
	}
}
