package arrival

import (
	"testing"
	"time"
)

func TestArrivalsValidation(t *testing.T) {
	for _, rate := range []float64{0, -3} {
		if _, err := NewArrivals(rate, 1); err == nil {
			t.Errorf("rate %g accepted", rate)
		}
	}
}

// TestArrivalsDeterministic: the gap sequence is a pure function of
// (rate, seed) — and seed 0 aliases seed 1, matching Source.
func TestArrivalsDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		a, err := NewArrivals(50, seed)
		if err != nil {
			t.Fatal(err)
		}
		gaps := make([]time.Duration, 32)
		for i := range gaps {
			gaps[i] = a.NextGap()
		}
		return gaps
	}
	a, b, zero, other := draw(7), draw(7), draw(0), draw(8)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d: %v != %v for the same seed", i, a[i], b[i])
		}
		if zero[i] != draw(1)[i] {
			t.Fatalf("gap %d: seed 0 does not alias seed 1", i)
		}
		if a[i] != other[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 drew identical gap sequences")
	}
}

// TestArrivalsMeanRate: over many draws the empirical mean gap approaches
// 1/rate — the exponential inter-arrival law.
func TestArrivalsMeanRate(t *testing.T) {
	const rate = 200.0
	a, err := NewArrivals(rate, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += a.NextGap()
	}
	mean := sum.Seconds() / n
	want := 1 / rate
	if mean < want*0.9 || mean > want*1.1 {
		t.Fatalf("mean gap %.4fs, want %.4fs ± 10%%", mean, want)
	}
}
