package arrival

import (
	"reflect"
	"testing"
)

// TestWirePerfectIsIdentity: the zero WireConfig delivers every chunk
// exactly once, in order, intact — the framed twin of a plain feed.
func TestWirePerfectIsIdentity(t *testing.T) {
	const total = 44100
	chunks, err := Chunks(Config{Jitter: 0.3}, 7, total)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := Wire(Config{Jitter: 0.3}, WireConfig{}, 7, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(chunks) {
		t.Fatalf("perfect wire delivered %d events for %d chunks", len(evs), len(chunks))
	}
	off := 0
	for i, ev := range evs {
		if ev.Seq != uint32(i) || ev.Offset != off || ev.N != chunks[i] || ev.Corrupt {
			t.Fatalf("event %d = %+v, want seq %d offset %d n %d intact", i, ev, i, off, chunks[i])
		}
		off += ev.N
	}
	if off != total {
		t.Fatalf("perfect wire delivered %d of %d samples", off, total)
	}
}

// TestWireDeterministic: the same (cfg, wire, seed, total) replays the
// same schedule, and different seeds diverge.
func TestWireDeterministic(t *testing.T) {
	cfg := Config{Jitter: 0.2}
	wire := WireConfig{LossProb: 0.1, DupProb: 0.1, ReorderProb: 0.2, CorruptProb: 0.05}
	a, err := Wire(cfg, wire, 42, 88200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Wire(cfg, wire, 42, 88200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different wire schedules")
	}
	c, err := Wire(cfg, wire, 43, 88200)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical wire schedules")
	}
}

// TestWireScheduleStability: WireConfigs sharing a seed agree on frame
// boundaries — probability knobs change which frames suffer, never the
// partition. The surviving frames of a lossy schedule are a subset of the
// perfect schedule's frames, byte for byte.
func TestWireScheduleStability(t *testing.T) {
	cfg := Config{Jitter: 0.25}
	const total = 88200
	perfect, err := Wire(cfg, WireConfig{}, 11, total)
	if err != nil {
		t.Fatal(err)
	}
	byseq := map[uint32]WireEvent{}
	for _, ev := range perfect {
		byseq[ev.Seq] = ev
	}
	lossy, err := Wire(cfg, WireConfig{LossProb: 0.3, DupProb: 0.2, ReorderProb: 0.3, CorruptProb: 0.2}, 11, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(lossy) == len(perfect) {
		t.Fatal("lossy wire suffered no fates (suspicious fixture)")
	}
	for _, ev := range lossy {
		ref, ok := byseq[ev.Seq]
		if !ok {
			t.Fatalf("lossy schedule invented frame seq %d", ev.Seq)
		}
		if ev.Offset != ref.Offset || ev.N != ref.N {
			t.Fatalf("frame %d boundaries changed under loss: %+v vs %+v", ev.Seq, ev, ref)
		}
	}
}

// TestWireValidate: out-of-range probabilities and negative spans are
// rejected with named errors.
func TestWireValidate(t *testing.T) {
	bad := []WireConfig{
		{LossProb: -0.1},
		{LossProb: 1.1},
		{DupProb: 2},
		{ReorderProb: -1},
		{CorruptProb: 1.5},
		{ReorderSpan: -4},
	}
	for _, w := range bad {
		if _, err := Wire(Config{}, w, 1, 1000); err == nil {
			t.Errorf("WireConfig %+v accepted", w)
		}
	}
}

// TestWireTotalLoss: LossProb 1 delivers nothing at all.
func TestWireTotalLoss(t *testing.T) {
	evs, err := Wire(Config{}, WireConfig{LossProb: 1}, 3, 44100)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("LossProb 1 still delivered %d frames", len(evs))
	}
}
