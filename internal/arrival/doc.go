// Package arrival models live-microphone traffic: how a real client's
// audio actually reaches a streaming authentication session. Real capture
// pipelines do not deliver tidy fixed-size chunks on a metronome — chunk
// sizes and inter-chunk gaps jitter with device scheduling, pipelines
// starve and deliver backlog bursts (underruns), and clients stall or
// vanish mid-feed without closing the session.
//
// A Source turns a (Config, seed) pair into a deterministic event
// schedule: the same seed replays the same chunking, gaps, and failure
// point, so a flaky-looking live feed is exactly reproducible in a test —
// and, because the streaming engine's decisions are bit-identical under
// any chunking, a jittered, underrun-riddled feed must decide exactly what
// the batch path decides. That property is what the service-level arrival
// tests pin.
//
// The model drives both the test suites (chunk-partition property tests,
// lifecycle chaos storms) and the piano-serve -stream demo, where
// -jitter, -underrun, and -abandon-rate map onto Config fields.
package arrival
