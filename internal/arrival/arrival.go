package arrival

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind classifies one arrival event.
type Kind int

// Event kinds, in the order a healthy feed emits them.
const (
	// Chunk delivers N samples after Gap — the ordinary microphone
	// callback cadence.
	Chunk Kind = iota
	// Underrun delivers N samples after a long Gap: the capture pipeline
	// starved (a GC pause, a Bluetooth retransmit window, a busy CPU),
	// buffered the missed audio, and now delivers the backlog as one
	// burst. N therefore includes the samples that accumulated during the
	// gap — underruns delay audio, they never drop it.
	Underrun
	// Stall ends the feed without delivering the rest: the client froze —
	// a half-dead TCP peer, a process wedged on a lock — and will never
	// feed again, but the connection is notionally still "up". No further
	// events follow.
	Stall
	// Abandon ends the feed without delivering the rest: the client
	// vanished — app killed, phone out of range — without closing the
	// session. Indistinguishable from Stall on the wire (that is the
	// point: only a server-side watchdog can tell either from a slow
	// client); the two kinds exist so drivers can report them separately.
	Abandon
	// Done reports a completed feed: every sample was delivered. No
	// further events follow.
	Done
)

// String names the kind for reports and test failures.
func (k Kind) String() string {
	switch k {
	case Chunk:
		return "chunk"
	case Underrun:
		return "underrun"
	case Stall:
		return "stall"
	case Abandon:
		return "abandon"
	case Done:
		return "done"
	}
	return fmt.Sprintf("arrival.Kind(%d)", int(k))
}

// Event is one step of a simulated live-microphone feed: wait Gap of
// simulated wall-clock, then deliver the next N samples of the recording
// (Chunk/Underrun), or learn that the client will never deliver the rest
// (Stall/Abandon), or that the feed is complete (Done).
type Event struct {
	// Kind classifies the event.
	Kind Kind
	// Gap is the simulated wall-clock wait preceding the event. Drivers
	// pace real time by sleeping Gap (scaled by their pace factor); tests
	// that only care about chunking ignore it.
	Gap time.Duration
	// N is the number of samples delivered (Chunk and Underrun only).
	N int
}

// Config parameterizes the traffic model. The zero value is a well-formed
// jitter-free feed: fixed 20 ms chunks at 44.1 kHz, no underruns, no
// client failures.
type Config struct {
	// SampleRate is the capture rate in samples per second (0 → 44100).
	SampleRate float64
	// ChunkMS is the nominal chunk duration in milliseconds — the
	// microphone callback period (0 → 20).
	ChunkMS int
	// Jitter is the fractional ± spread applied independently to each
	// chunk's size and each inter-chunk gap, in [0, 1). 0.2 means chunks
	// arrive carrying 80–120% of the nominal samples, 80–120% of the
	// nominal period apart — the scheduling noise of a real device.
	Jitter float64
	// UnderrunProb is the per-chunk probability that the chunk is
	// preceded by an underrun burst, in [0, 1].
	UnderrunProb float64
	// UnderrunMS bounds the underrun duration in milliseconds,
	// min..max inclusive ({0, 0} → {60, 250}).
	UnderrunMS [2]int
	// StallProb is the probability that this client stalls forever
	// mid-feed, in [0, 1]. The stall point is drawn once per Source.
	StallProb float64
	// AbandonProb is the probability that this client abandons the
	// session mid-feed, in [0, 1]. StallProb + AbandonProb must be ≤ 1.
	AbandonProb float64
}

// withDefaults fills the zero-value fields.
func (c Config) withDefaults() Config {
	if c.SampleRate == 0 {
		c.SampleRate = 44100
	}
	if c.ChunkMS == 0 {
		c.ChunkMS = 20
	}
	if c.UnderrunMS == [2]int{} {
		c.UnderrunMS = [2]int{60, 250}
	}
	return c
}

// validate rejects configurations that would silently misbehave.
func (c Config) validate() error {
	switch {
	case c.SampleRate < 0:
		return fmt.Errorf("arrival: SampleRate %g is negative", c.SampleRate)
	case c.ChunkMS < 0:
		return fmt.Errorf("arrival: ChunkMS %d is negative", c.ChunkMS)
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("arrival: Jitter %g outside [0, 1)", c.Jitter)
	case c.UnderrunProb < 0 || c.UnderrunProb > 1:
		return fmt.Errorf("arrival: UnderrunProb %g outside [0, 1]", c.UnderrunProb)
	case c.StallProb < 0 || c.StallProb > 1:
		return fmt.Errorf("arrival: StallProb %g outside [0, 1]", c.StallProb)
	case c.AbandonProb < 0 || c.AbandonProb > 1:
		return fmt.Errorf("arrival: AbandonProb %g outside [0, 1]", c.AbandonProb)
	case c.StallProb+c.AbandonProb > 1:
		return fmt.Errorf("arrival: StallProb %g + AbandonProb %g exceeds 1", c.StallProb, c.AbandonProb)
	case c.UnderrunMS[0] < 0 || c.UnderrunMS[1] < c.UnderrunMS[0]:
		return fmt.Errorf("arrival: UnderrunMS %v is not a 0 ≤ min ≤ max range", c.UnderrunMS)
	}
	return nil
}

// Source generates one feed's arrival events. It is deterministic: the
// event sequence is a pure function of (Config, seed, total), so the same
// seed replays the same chunking — and, by the streaming engine's
// any-chunking guarantee, the same bit-identical decision. A Source is not
// safe for concurrent use; drive each role's feed with its own Source.
type Source struct {
	cfg Config
	rng *rand.Rand

	// fate is the client's drawn failure mode (Stall, Abandon, or Done
	// for a healthy client) and fateAt the fed-fraction at which it
	// fires. Both are drawn at New so the failure point is part of the
	// deterministic schedule, not a per-event coin flip.
	fate   Kind
	fateAt float64
}

// New validates cfg, applies defaults, and builds a Source seeded with
// seed (0 → 1).
func New(cfg Config, seed int64) (*Source, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Source{cfg: cfg, rng: rng, fate: Done}
	// Fate draws happen first, unconditionally, so the per-chunk draw
	// sequence that follows is identical whether or not this client is
	// doomed — a stalling client's chunks match a healthy client's with
	// the same seed, exactly like the real world.
	u := rng.Float64()
	at := 0.1 + 0.8*rng.Float64() // failures fire between 10% and 90% fed
	switch {
	case u < cfg.StallProb:
		s.fate, s.fateAt = Stall, at
	case u < cfg.StallProb+cfg.AbandonProb:
		s.fate, s.fateAt = Abandon, at
	}
	return s, nil
}

// jittered spreads v by the configured ± jitter fraction. It always
// consumes exactly one RNG draw so event schedules stay aligned across
// configurations that differ only in Jitter.
func (s *Source) jittered(v float64) float64 {
	u := s.rng.Float64()
	if s.cfg.Jitter == 0 {
		return v
	}
	return v * (1 + s.cfg.Jitter*(2*u-1))
}

// Next returns the next event for a feed that has delivered fed of total
// samples. Calling Next after a Stall/Abandon/Done event (or with
// fed ≥ total) keeps returning that terminal event.
func (s *Source) Next(fed, total int) Event {
	if fed >= total {
		return Event{Kind: Done}
	}
	if s.fate != Done && float64(fed) >= s.fateAt*float64(total) {
		return Event{Kind: s.fate}
	}

	nominal := s.cfg.SampleRate * float64(s.cfg.ChunkMS) / 1000
	n := int(s.jittered(nominal))
	if n < 1 {
		n = 1
	}
	period := time.Duration(s.jittered(float64(s.cfg.ChunkMS) * float64(time.Millisecond)))
	if period < 0 {
		period = 0
	}
	ev := Event{Kind: Chunk, Gap: period, N: n}

	// Underrun: the pipeline starves for a drawn duration, then the
	// backlog that accumulated arrives with the chunk. Both draws happen
	// unconditionally (see jittered) to keep schedules seed-stable.
	uu := s.rng.Float64()
	ud := s.rng.Float64()
	if s.cfg.UnderrunProb > 0 && uu < s.cfg.UnderrunProb {
		lo, hi := s.cfg.UnderrunMS[0], s.cfg.UnderrunMS[1]
		ms := float64(lo) + ud*float64(hi-lo)
		ev.Kind = Underrun
		ev.Gap += time.Duration(ms * float64(time.Millisecond))
		ev.N += int(ms * s.cfg.SampleRate / 1000)
	}

	if remaining := total - fed; ev.N > remaining {
		ev.N = remaining
	}
	return ev
}

// Chunks returns the deterministic chunk partition a Source with this
// (cfg, seed) delivers for a total-sample feed, timing and failure events
// stripped — the shape property tests compare across runs and feed into
// the streaming engine's any-chunking bit-identity check. The slice sums
// to total exactly when the client is healthy; a stalling or abandoning
// client's partition stops at its failure point.
func Chunks(cfg Config, seed int64, total int) ([]int, error) {
	src, err := New(cfg, seed)
	if err != nil {
		return nil, err
	}
	var chunks []int
	fed := 0
	for {
		ev := src.Next(fed, total)
		switch ev.Kind {
		case Chunk, Underrun:
			chunks = append(chunks, ev.N)
			fed += ev.N
		default:
			return chunks, nil
		}
	}
}
