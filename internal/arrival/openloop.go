package arrival

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrivals is the session-level counterpart of Source: an open-loop Poisson
// arrival process emitting the gaps between successive session openings at a
// target mean rate. Open-loop is the load-model distinction that matters:
// a closed-loop driver (N workers, each opening its next session when the
// last finishes) slows its offered load down exactly when the server slows
// down, hiding overload; an open-loop driver keeps offering sessions at the
// outside world's rate regardless of how the server is doing, which is how
// real traffic behaves and what admission control exists to survive.
//
// Like Source, it is deterministic — the gap sequence is a pure function of
// (rate, seed) — and not safe for concurrent use.
type Arrivals struct {
	rate float64
	rng  *rand.Rand
}

// NewArrivals builds a Poisson arrival process with the given mean rate in
// sessions per second, seeded with seed (0 → 1).
func NewArrivals(ratePerSec float64, seed int64) (*Arrivals, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("arrival: rate %g sessions/sec is not positive", ratePerSec)
	}
	if seed == 0 {
		seed = 1
	}
	return &Arrivals{rate: ratePerSec, rng: rand.New(rand.NewSource(seed))}, nil
}

// NextGap draws the wait before the next session arrival: exponentially
// distributed with mean 1/rate, the inter-arrival law of a Poisson process.
func (a *Arrivals) NextGap() time.Duration {
	return time.Duration(a.rng.ExpFloat64() / a.rate * float64(time.Second))
}
