package arrival

import (
	"fmt"
	"math/rand"
	"sort"
)

// WireConfig parameterizes the lossy transport between a client's chunker
// and the service's frame reassembler: each framed chunk independently
// risks being dropped, duplicated, delivered out of order, or corrupted in
// flight. The zero value is a perfect wire — every frame arrives exactly
// once, in order, intact.
type WireConfig struct {
	// LossProb is the per-frame probability the frame never arrives, in
	// [0, 1]. Loss dominates the other fates: a lost frame is not also
	// duplicated, reordered, or corrupted.
	LossProb float64
	// DupProb is the per-frame probability a second copy of the frame
	// arrives later, in [0, 1].
	DupProb float64
	// ReorderProb is the per-frame probability the frame is delayed past
	// later frames, in [0, 1].
	ReorderProb float64
	// CorruptProb is the per-frame probability the frame's bytes are
	// damaged in flight (its CRC will not verify), in [0, 1].
	CorruptProb float64
	// ReorderSpan bounds how many frames later a reordered frame lands
	// (0 → 8). Together with the reassembler's reorder window it decides
	// whether a reordered frame is repaired or structurally expired.
	ReorderSpan int
}

// withDefaults fills the zero-value fields.
func (c WireConfig) withDefaults() WireConfig {
	if c.ReorderSpan == 0 {
		c.ReorderSpan = 8
	}
	return c
}

// validate rejects configurations that would silently misbehave.
func (c WireConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"LossProb", c.LossProb},
		{"DupProb", c.DupProb},
		{"ReorderProb", c.ReorderProb},
		{"CorruptProb", c.CorruptProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("arrival: %s %g outside [0, 1]", p.name, p.v)
		}
	}
	if c.ReorderSpan < 0 {
		return fmt.Errorf("arrival: ReorderSpan %d is negative (0 means the default span)", c.ReorderSpan)
	}
	return nil
}

// WireEvent is one frame delivery as the receiver sees it: frame Seq
// carries samples [Offset, Offset+N) of the recording, and Corrupt marks a
// frame whose bytes were damaged in flight (the driver flips payload bits
// after encoding, so the receiver's CRC check rejects it). Lost frames
// emit no event at all — the receiver only ever learns about them from the
// gap they leave.
type WireEvent struct {
	Seq     uint32
	Offset  int
	N       int
	Corrupt bool
}

// wireMix decorrelates the wire RNG from the chunking RNG: both are
// derived from the caller's one seed, but the wire stream must not replay
// the chunk-size draws as frame fates. (The golden-ratio constant,
// interpreted as a signed 64-bit value; wrap-around multiplication is
// well-defined and deterministic.)
const wireMix = int64(-0x61C8864680B583EB)

// Wire builds the deterministic delivery schedule a lossy transport
// produces for one role's feed: the chunk partition comes from
// Chunks(cfg, seed, total) — so the frame boundaries are identical to what
// a clean transport with the same seed delivers — and each frame's fate
// comes from exactly five unconditional draws on a separate seeded RNG.
// The draw count per frame is fixed regardless of which fates trigger, so
// schedules are stable across WireConfigs that differ only in
// probabilities: raising LossProb changes which frames are lost, never the
// boundaries or fates of the others. The same (cfg, wire, seed, total)
// always replays the same schedule.
func Wire(cfg Config, wire WireConfig, seed int64, total int) ([]WireEvent, error) {
	wire = wire.withDefaults()
	if err := wire.validate(); err != nil {
		return nil, err
	}
	chunks, err := Chunks(cfg, seed, total)
	if err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed*wireMix + 1))

	// key orders deliveries; tie breaks equal keys by emission order so
	// the sort below is fully deterministic. An in-order frame sits at an
	// even key 2i; a reordered frame lands at an odd key past its drawn
	// landing slot, so it arrives after every in-order frame up to there.
	type slot struct {
		ev   WireEvent
		key  int
		tie  int
	}
	var slots []slot
	emit := func(ev WireEvent, key int) {
		slots = append(slots, slot{ev: ev, key: key, tie: len(slots)})
	}
	off := 0
	for i, n := range chunks {
		// Five unconditional draws per frame, always in this order —
		// the schedule-stability contract.
		uLoss := rng.Float64()
		uDup := rng.Float64()
		uReorder := rng.Float64()
		uDelay := rng.Float64()
		uCorrupt := rng.Float64()

		ev := WireEvent{Seq: uint32(i), Offset: off, N: n}
		off += n
		if uLoss < wire.LossProb {
			continue // lost frames never reach the wire
		}
		ev.Corrupt = uCorrupt < wire.CorruptProb
		key := 2 * i
		if uReorder < wire.ReorderProb {
			key = 2*(i+1+int(uDelay*float64(wire.ReorderSpan))) + 1
		}
		emit(ev, key)
		if uDup < wire.DupProb {
			// The duplicate lands a few slots after the original (whether
			// or not the original was reordered).
			emit(ev, key+2*(1+int(uDelay*float64(wire.ReorderSpan))))
		}
	}
	sort.SliceStable(slots, func(a, b int) bool {
		if slots[a].key != slots[b].key {
			return slots[a].key < slots[b].key
		}
		return slots[a].tie < slots[b].tie
	})
	out := make([]WireEvent, len(slots))
	for i, s := range slots {
		out[i] = s.ev
	}
	return out, nil
}
