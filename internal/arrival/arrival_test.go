package arrival

import (
	"testing"
	"time"
)

// collect drains a fresh Source into its full event sequence (terminal
// event included) for a total-sample feed.
func collect(t *testing.T, cfg Config, seed int64, total int) []Event {
	t.Helper()
	src, err := New(cfg, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var evs []Event
	fed := 0
	for {
		ev := src.Next(fed, total)
		evs = append(evs, ev)
		if ev.Kind != Chunk && ev.Kind != Underrun {
			return evs
		}
		fed += ev.N
		if len(evs) > total+1 {
			t.Fatalf("runaway schedule: %d events for %d samples", len(evs), total)
		}
	}
}

func TestArrivalValidation(t *testing.T) {
	bad := []Config{
		{SampleRate: -1},
		{ChunkMS: -5},
		{Jitter: -0.1},
		{Jitter: 1.0},
		{UnderrunProb: 1.5},
		{UnderrunProb: -0.5},
		{StallProb: -0.2},
		{AbandonProb: 2},
		{StallProb: 0.6, AbandonProb: 0.6},
		{UnderrunMS: [2]int{-5, 10}},
		{UnderrunMS: [2]int{100, 60}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 1); err == nil {
			t.Errorf("config %d %+v: want validation error, got nil", i, cfg)
		}
	}
	// Zero value is valid and defaults to 20 ms chunks at 44.1 kHz.
	src, err := New(Config{}, 1)
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	ev := src.Next(0, 100000)
	if ev.Kind != Chunk {
		t.Fatalf("zero config first event = %v, want chunk", ev.Kind)
	}
	if want := 882; ev.N != want { // 44100 * 20ms
		t.Errorf("default chunk size = %d, want %d", ev.N, want)
	}
	if ev.Gap != 20*time.Millisecond {
		t.Errorf("default gap = %v, want 20ms", ev.Gap)
	}
}

// TestArrivalDeterminism is the replay contract: the same (Config, seed,
// total) produces the identical event sequence — sizes, gaps, and failure
// events alike — across independent Sources.
func TestArrivalDeterminism(t *testing.T) {
	cfg := Config{
		Jitter:       0.35,
		UnderrunProb: 0.2,
		StallProb:    0.15,
		AbandonProb:  0.15,
	}
	const total = 120000
	for seed := int64(1); seed <= 25; seed++ {
		a := collect(t, cfg, seed, total)
		b := collect(t, cfg, seed, total)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d event %d: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
	// Different seeds must actually differ (jitter is live).
	a := collect(t, cfg, 1, total)
	b := collect(t, cfg, 2, total)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules; model is not seed-sensitive")
	}
}

// TestArrivalPartition pins the delivery invariants: a healthy client's
// chunks partition the recording exactly (sum == total, every chunk ≥ 1),
// and underruns lengthen gaps rather than drop audio.
func TestArrivalPartition(t *testing.T) {
	cfg := Config{Jitter: 0.5, UnderrunProb: 0.3}
	const total = 250000
	for seed := int64(1); seed <= 25; seed++ {
		chunks, err := Chunks(cfg, seed, total)
		if err != nil {
			t.Fatalf("Chunks: %v", err)
		}
		sum := 0
		for i, n := range chunks {
			if n < 1 {
				t.Fatalf("seed %d chunk %d: size %d < 1", seed, i, n)
			}
			sum += n
		}
		if sum != total {
			t.Fatalf("seed %d: chunks sum to %d, want %d", seed, sum, total)
		}
	}
}

// TestArrivalUnderrunShape verifies an underrun event carries both the
// longer gap and the backlog samples, relative to the jitter-free nominal
// chunk.
func TestArrivalUnderrunShape(t *testing.T) {
	cfg := Config{UnderrunProb: 1, UnderrunMS: [2]int{100, 100}}
	src, err := New(cfg, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ev := src.Next(0, 1 << 30)
	if ev.Kind != Underrun {
		t.Fatalf("kind = %v, want underrun", ev.Kind)
	}
	// Nominal: 882 samples / 20 ms. Underrun adds exactly 100 ms → 4410
	// samples of backlog and 100 ms of extra gap.
	if want := 882 + 4410; ev.N != want {
		t.Errorf("underrun N = %d, want %d", ev.N, want)
	}
	if want := 120 * time.Millisecond; ev.Gap != want {
		t.Errorf("underrun gap = %v, want %v", ev.Gap, want)
	}
}

// TestArrivalFates checks the client-failure model: with StallProb or
// AbandonProb at 1 the schedule ends in that terminal event strictly
// mid-feed, the terminal event is sticky, and with both at 0 every
// schedule runs to Done.
func TestArrivalFates(t *testing.T) {
	const total = 120000
	for _, tc := range []struct {
		name string
		cfg  Config
		want Kind
	}{
		{"stall", Config{StallProb: 1}, Stall},
		{"abandon", Config{AbandonProb: 1}, Abandon},
		{"healthy", Config{}, Done},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				evs := collect(t, tc.cfg, seed, total)
				last := evs[len(evs)-1]
				if last.Kind != tc.want {
					t.Fatalf("seed %d: terminal = %v, want %v", seed, last.Kind, tc.want)
				}
				fed := 0
				for _, ev := range evs[:len(evs)-1] {
					fed += ev.N
				}
				if tc.want == Done {
					if fed != total {
						t.Fatalf("seed %d: healthy client fed %d of %d", seed, fed, total)
					}
					continue
				}
				// Failures fire mid-feed: some audio delivered, not all.
				if fed <= 0 || fed >= total {
					t.Fatalf("seed %d: %v after %d of %d samples, want strictly mid-feed", seed, tc.want, fed, total)
				}
				// Terminal events are sticky.
				src, _ := New(tc.cfg, seed)
				for f := 0; f < total; {
					ev := src.Next(f, total)
					if ev.Kind != Chunk && ev.Kind != Underrun {
						for i := 0; i < 3; i++ {
							if again := src.Next(f, total); again.Kind != ev.Kind {
								t.Fatalf("seed %d: terminal %v not sticky, got %v", seed, ev.Kind, again.Kind)
							}
						}
						break
					}
					f += ev.N
				}
			}
		})
	}
}

// TestArrivalKindString keeps the report labels stable.
func TestArrivalKindString(t *testing.T) {
	want := map[Kind]string{
		Chunk:    "chunk",
		Underrun: "underrun",
		Stall:    "stall",
		Abandon:  "abandon",
		Done:     "done",
		Kind(42): "arrival.Kind(42)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, s)
		}
	}
}
