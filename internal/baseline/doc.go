// Package baseline implements the comparison protocols of Fig. 2(b):
// ACTION-CC — ACTION with the frequency-based detector replaced by
// cross-correlation (provided via core.DetectCrossCorrelation; this package
// offers a convenience wrapper) — and Echo-Secure, the Echo
// distance-bounding protocol hardened with randomized reference signals and
// the frequency-based detector. Echo-Secure remains inaccurate because it
// is one-way: the unpredictable audio processing delay enters the estimate
// directly and can only be subtracted as a calibrated average.
//
// These baselines exist to reproduce the paper's comparative claims; they
// share the same world/acoustic/detect machinery as PIANO proper so the
// comparison isolates the protocol difference, not implementation quality.
package baseline
