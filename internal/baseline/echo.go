package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/detect"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/sigref"
	"github.com/acoustic-auth/piano/internal/world"
)

// MeasureACTIONCC runs one ACTION-CC distance estimation: the full ACTION
// session with Step IV swapped to cross-correlation.
func MeasureACTIONCC(cfg core.Config, auth, vouch *device.Device, rng *rand.Rand) (*core.SessionResult, error) {
	cfg.Mode = core.DetectCrossCorrelation
	a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: action-cc: %w", err)
	}
	return a.Measure()
}

// EchoSecure is the hardened Echo protocol: the authenticating device
// ships a randomized reference signal over Bluetooth; the vouching device
// plays it "immediately"; the authenticating device measures the elapsed
// time until the signal arrives and subtracts a pre-calibrated processing
// delay.
type EchoSecure struct {
	cfg          core.Config
	auth, vouch  *device.Device
	rng          *rand.Rand
	calibrated   bool
	calDelaySec  float64
	detectConfig detect.Config
}

// EchoResult is one Echo-Secure measurement.
type EchoResult struct {
	DistanceM float64
	Found     bool
}

// NewEchoSecure builds the protocol instance.
func NewEchoSecure(cfg core.Config, auth, vouch *device.Device, rng *rand.Rand) (*EchoSecure, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if auth == nil || vouch == nil {
		return nil, errors.New("baseline: nil device")
	}
	if rng == nil {
		return nil, errors.New("baseline: nil rng")
	}
	return &EchoSecure{cfg: cfg, auth: auth, vouch: vouch, rng: rng, detectConfig: cfg.Detect}, nil
}

// measureElapsed runs one Echo round and returns the raw elapsed seconds
// between the send command and the signal's arrival at the authenticating
// device, or found=false if the signal never arrived.
func (e *EchoSecure) measureElapsed() (float64, bool, error) {
	sig, err := sigref.New(e.cfg.Signal, e.rng)
	if err != nil {
		return 0, false, err
	}

	// t=0: auth sends the reference signal and starts recording.
	if err := e.auth.ResetClock(0); err != nil {
		return 0, false, err
	}
	btLat := e.cfg.BTLatency.Sample(e.rng)
	// The vouching device plays as soon as its audio stack allows — the
	// processing delay the paper calls "very unpredictable".
	playAt := btLat + e.vouch.ProcDelay().Sample(e.rng)

	w, err := world.New(e.cfg.World, e.rng)
	if err != nil {
		return 0, false, err
	}
	if err := w.AddDevice(e.auth); err != nil {
		return 0, false, err
	}
	if err := w.AddDevice(e.vouch); err != nil {
		return 0, false, err
	}
	if err := w.SchedulePlay(e.vouch, sig.Samples(), playAt); err != nil {
		return 0, false, err
	}
	recs, err := w.Render()
	if err != nil {
		return 0, false, err
	}

	det, err := detect.New(e.detectConfig)
	if err != nil {
		return 0, false, err
	}
	res, err := det.Detect(recs[e.auth].Float(), sig)
	if err != nil {
		return 0, false, err
	}
	if !res.Found {
		return 0, false, nil
	}
	return float64(res.Location) / e.auth.SampleRate(), true, nil
}

// Calibrate estimates the average processing delay by putting the two
// devices together (distance ≈ 0) and averaging the elapsed time, exactly
// as the paper calibrates Echo. Device positions are restored afterwards.
func (e *EchoSecure) Calibrate(trials int) error {
	if trials < 1 {
		return errors.New("baseline: calibration needs at least one trial")
	}
	origVouch := e.vouch.Position()
	origRoom := e.vouch.Room()
	e.vouch.SetPosition(e.auth.Position())
	e.vouch.SetRoom(e.auth.Room())
	defer func() {
		e.vouch.SetPosition(origVouch)
		e.vouch.SetRoom(origRoom)
	}()

	var sum float64
	var n int
	for i := 0; i < trials; i++ {
		elapsed, found, err := e.measureElapsed()
		if err != nil {
			return fmt.Errorf("baseline: calibrate: %w", err)
		}
		if found {
			sum += elapsed
			n++
		}
	}
	if n == 0 {
		return errors.New("baseline: calibration never detected the signal")
	}
	e.calDelaySec = sum / float64(n)
	e.calibrated = true
	return nil
}

// Measure runs one Echo-Secure distance estimation.
func (e *EchoSecure) Measure() (*EchoResult, error) {
	if !e.calibrated {
		return nil, errors.New("baseline: echo-secure requires Calibrate first")
	}
	elapsed, found, err := e.measureElapsed()
	if err != nil {
		return nil, err
	}
	if !found {
		return &EchoResult{Found: false}, nil
	}
	d := acoustic.SpeedOfSoundMPS * (elapsed - e.calDelaySec)
	return &EchoResult{DistanceM: d, Found: true}, nil
}

// CalibratedDelaySec exposes the calibration result (diagnostics).
func (e *EchoSecure) CalibratedDelaySec() float64 { return e.calDelaySec }
