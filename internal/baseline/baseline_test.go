package baseline

import (
	"math"
	"math/rand"
	"testing"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/device"
)

func pair(t testing.TB, distM float64) (*device.Device, *device.Device) {
	t.Helper()
	auth, err := device.New(device.Config{
		Name: "auth", Position: [2]float64{0, 0}, SampleRate: 44100,
		ProcDelay: device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vouch, err := device.New(device.Config{
		Name: "vouch", Position: [2]float64{distM, 0}, SampleRate: 44100,
		ProcDelay: device.DefaultProcessingDelay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return auth, vouch
}

// TestACTIONCCIsWorseThanACTION reproduces the Fig. 2(b) ordering: under
// the channel's frequency smoothing, cross-correlation detection produces
// errors at least an order of magnitude larger than ACTION's.
func TestACTIONCCIsWorseThanACTION(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.World.Environment = acoustic.EnvOffice

	const trials = 4
	var actionErr, ccErr float64
	var actionN, ccN int

	rng := rand.New(rand.NewSource(1))
	auth, vouch := pair(t, 1.0)
	a, err := core.NewAuthenticator(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		sr, err := a.Measure()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Found {
			actionErr += math.Abs(sr.DistanceM - 1.0)
			actionN++
		}
	}

	// ACTION-CC has no ⊥ detection and meter-scale errors blow through
	// the plausibility gate, so measure it without the gate to observe
	// the raw detector error, as Fig. 2(b) does.
	ccCfg := cfg
	ccCfg.PlausibleMinM = -1000
	ccCfg.PlausibleMaxM = 1000
	rng = rand.New(rand.NewSource(2))
	auth2, vouch2 := pair(t, 1.0)
	for i := 0; i < trials; i++ {
		sr, err := MeasureACTIONCC(ccCfg, auth2, vouch2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Found {
			ccErr += math.Abs(sr.DistanceM - 1.0)
			ccN++
		}
	}

	if actionN == 0 || ccN == 0 {
		t.Fatalf("no trials: action=%d cc=%d", actionN, ccN)
	}
	actionErr /= float64(actionN)
	ccErr /= float64(ccN)
	if ccErr < 5*actionErr {
		t.Fatalf("ACTION-CC error %.1f cm not ≫ ACTION %.1f cm", ccErr*100, actionErr*100)
	}
}

func TestEchoSecureRequiresCalibration(t *testing.T) {
	cfg := core.DefaultConfig()
	auth, vouch := pair(t, 1.0)
	rng := rand.New(rand.NewSource(3))
	e, err := NewEchoSecure(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Measure(); err == nil {
		t.Fatal("uncalibrated measure accepted")
	}
	if err := e.Calibrate(0); err == nil {
		t.Fatal("zero calibration trials accepted")
	}
}

func TestEchoSecureValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	auth, vouch := pair(t, 1.0)
	if _, err := NewEchoSecure(cfg, nil, vouch, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := NewEchoSecure(cfg, auth, vouch, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := cfg
	bad.ThresholdM = -1
	if _, err := NewEchoSecure(bad, auth, vouch, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bad config accepted")
	}
}

// TestEchoSecureMeterScaleErrors: the calibrated position restores, the
// calibration produces a plausible delay, and the one-way estimate carries
// meter-scale error (the processing-delay jitter dominates).
func TestEchoSecureMeterScaleErrors(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.World.Environment = acoustic.EnvOffice
	auth, vouch := pair(t, 1.0)
	rng := rand.New(rand.NewSource(4))
	e, err := NewEchoSecure(cfg, auth, vouch, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	// Position restored after calibration.
	if vouch.Position() != [2]float64{1, 0} {
		t.Fatalf("vouch position %v after calibrate", vouch.Position())
	}
	// Calibrated delay ≈ BT latency + processing delay ∈ [0.05, 0.3].
	if d := e.CalibratedDelaySec(); d < 0.03 || d > 0.4 {
		t.Fatalf("calibrated delay %.3f s implausible", d)
	}

	var errSum float64
	n := 0
	for i := 0; i < 5; i++ {
		r, err := e.Measure()
		if err != nil {
			t.Fatal(err)
		}
		if r.Found {
			errSum += math.Abs(r.DistanceM - 1.0)
			n++
		}
	}
	if n == 0 {
		t.Fatal("echo never detected the signal")
	}
	if mean := errSum / float64(n); mean < 1.0 {
		t.Fatalf("echo mean error %.2f m suspiciously small — processing delay not biting", mean)
	}
}
