// Package faultinject is the repo's deterministic fault-injection
// registry: named injection sites compiled into production code paths
// (slot acquisition, session start, scan hop blocks) that chaos tests and
// cmd/piano-serve arm to force the failure modes the hardened service
// must survive — worker panics mid-scan, slow-scan stalls, forced
// cancellations, and slot starvation.
//
// # Key types
//
//   - Fault — one armed behaviour at a site: an Action (panic, delay,
//     error, or hook-only) plus trigger discipline (Skip/Times counts, or
//     a seeded probability) and an optional Hook callback.
//   - Fire — the hot-path call instrumented code makes. Disabled (the
//     default and the production state) it is one atomic load and returns
//     nil, so instrumented loops pay ~nothing; see BENCH_hardening.json.
//
// # Invariants
//
//   - Count-based triggers (Skip/Times) are driven by a per-site firing
//     counter, so for a fixed per-site call sequence they are fully
//     deterministic regardless of goroutine scheduling. Probability
//     triggers draw from one seeded RNG under the registry lock: runs
//     with equal seeds draw the same stream, but which concurrent Fire
//     consumes which draw depends on the schedule — chaos tests that need
//     exact replay use counts, not probabilities.
//   - Enable resets all sites and the RNG; Disable restores the zero-cost
//     path. Both are safe to call at any time, including while
//     instrumented code is firing.
//   - The package never imports other repo packages, so any layer may
//     instrument itself without import cycles.
package faultinject
