package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Site names compiled into production code. Arming any other name is legal
// (tests may instrument their own code), but these are the points the
// service stack fires on every request:
const (
	// SiteServiceAcquire fires in AuthService slot acquisition, before the
	// request waits for a session slot. Delay here simulates queue
	// pressure; an error sheds the request with that error.
	SiteServiceAcquire = "service.acquire"
	// SiteServiceSession fires once per admitted session, before the
	// session pipeline runs. Panic here simulates a session-goroutine
	// crash; a long delay holds a session slot (slot starvation for
	// everyone queued behind it).
	SiteServiceSession = "service.session"
	// SiteDetectBlock fires once per claimed hop block in the detect scan
	// engine — the innermost cancellation checkpoint. Panic here simulates
	// a pool-worker crash mid-scan; delay simulates a slow-scan stall; a
	// Hook can cancel the session's context mid-scan.
	SiteDetectBlock = "detect.block"
	// SiteStreamFeed fires once per Session.Feed call on a streaming
	// authentication session, before the chunk is ingested. An error fails
	// that feed (the chunk is not ingested; the session stays open); panic
	// here simulates a feeder-goroutine crash, which resolves the whole
	// session to ErrInternal; delay simulates a stalled audio source.
	SiteStreamFeed = "service.feed"
	// SiteFrameFeed fires once per Session.FeedFrame call on a streaming
	// authentication session, before the frame enters the reassembler. An
	// error fails that frame (nothing is ingested; the session stays
	// open); panic here simulates a framed-feeder crash, which resolves
	// the whole session to ErrInternal; delay simulates a congested
	// transport.
	SiteFrameFeed = "service.framefeed"
	// SiteServiceWatchdog fires once per lifecycle-watchdog sweep, before
	// any open session's idle/lifetime deadlines are checked. An error
	// skips that sweep (the watchdog stays alive and sweeps again next
	// tick); a panic is recovered by the watchdog (one lost sweep, never a
	// dead watchdog); delay simulates a late watchdog racing Close; a Hook
	// can trigger Close mid-sweep to pin the reap/drain race.
	SiteServiceWatchdog = "service.watchdog"
)

// Action says what a triggered Fault does to the firing goroutine.
type Action int

// Actions, in increasing order of violence.
const (
	// ActHook only runs the Hook (if any) and returns nil — used to
	// observe a site or cancel a context without perturbing the call.
	ActHook Action = iota
	// ActDelay sleeps Delay, runs the Hook, and returns nil.
	ActDelay
	// ActError runs the Hook and returns Err from Fire.
	ActError
	// ActPanic runs the Hook and panics with a descriptive value — the
	// injected stand-in for a bug in a worker or session goroutine.
	ActPanic
)

// Fault is one armed behaviour at a site.
type Fault struct {
	// Action selects the behaviour when the fault triggers.
	Action Action
	// Err is what Fire returns for ActError (nil → a generic error).
	Err error
	// Delay is the ActDelay sleep duration.
	Delay time.Duration
	// Skip suppresses the first Skip firings of the site (deterministic,
	// counted per site).
	Skip int
	// Times bounds how often the fault triggers (0 → every eligible
	// firing). Counted per site, so count-based schedules replay exactly.
	Times int
	// Prob, when in (0, 1), gates each eligible firing on a draw from the
	// registry's seeded RNG; 0 (or ≥ 1) means "always". Schedule-dependent
	// under concurrency — prefer Skip/Times for exact replay.
	Prob float64
	// Hook, when non-nil, runs on every trigger before the action takes
	// effect (e.g. a context.CancelFunc for forced mid-scan cancellation).
	Hook func()
}

// armed is a Fault plus its per-site trigger bookkeeping.
type armed struct {
	f     Fault
	calls int // firings seen at this site
	hits  int // firings that triggered
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	rng     *rand.Rand
	sites   map[string]*armed
)

// Enable arms the registry: clears all sites and reseeds the RNG. Faults
// armed before Enable are discarded, so each chaos scenario starts from a
// clean slate.
func Enable(seed int64) {
	mu.Lock()
	rng = rand.New(rand.NewSource(seed))
	sites = make(map[string]*armed)
	mu.Unlock()
	enabled.Store(true)
}

// Disable restores the zero-cost path and clears every armed fault.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	sites = nil
	rng = nil
	mu.Unlock()
}

// Enabled reports whether the registry is armed.
func Enabled() bool { return enabled.Load() }

// Arm installs (or replaces) the fault at site. A site holds one fault at
// a time; arming resets its counters. No-op unless Enable has run.
func Arm(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		return
	}
	sites[site] = &armed{f: f}
}

// Hits reports how many times the fault at site has triggered (0 for
// unknown sites) — chaos tests assert on it to prove a scenario actually
// exercised the failure path it claims to.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if a, ok := sites[site]; ok {
		return a.hits
	}
	return 0
}

// Fire is the instrumented-code entry point. Disabled (the production
// state) it is one atomic load. Enabled, it checks whether site has an
// armed fault whose trigger discipline matches this firing and, if so,
// performs its Action — sleeping, returning an error, or panicking on the
// caller's goroutine.
func Fire(site string) error {
	if !enabled.Load() {
		return nil
	}
	return fire(site)
}

// fire is the armed slow path, split out so Fire stays inlinable.
func fire(site string) error {
	mu.Lock()
	a, ok := sites[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.calls++
	if a.calls <= a.f.Skip {
		mu.Unlock()
		return nil
	}
	if a.f.Times > 0 && a.hits >= a.f.Times {
		mu.Unlock()
		return nil
	}
	if a.f.Prob > 0 && a.f.Prob < 1 && rng.Float64() >= a.f.Prob {
		mu.Unlock()
		return nil
	}
	a.hits++
	f := a.f
	mu.Unlock()

	// Side effects happen outside the lock: a sleeping or panicking site
	// must not serialize every other site in the process.
	if f.Hook != nil {
		f.Hook()
	}
	switch f.Action {
	case ActDelay:
		time.Sleep(f.Delay)
	case ActError:
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("faultinject: injected error at %s", site)
	case ActPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
	return nil
}
