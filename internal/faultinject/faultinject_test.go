package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDisabledFireIsNoop(t *testing.T) {
	Disable()
	if err := Fire(SiteDetectBlock); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
	// Arming without Enable is a documented no-op.
	Arm(SiteDetectBlock, Fault{Action: ActPanic})
	if err := Fire(SiteDetectBlock); err != nil {
		t.Fatalf("disabled Fire after Arm returned %v", err)
	}
	if Enabled() {
		t.Fatal("registry reports enabled after Disable")
	}
}

func TestSkipAndTimes(t *testing.T) {
	Enable(1)
	defer Disable()
	sentinel := errors.New("boom")
	Arm("test.site", Fault{Action: ActError, Err: sentinel, Skip: 2, Times: 3})
	var hits int
	for i := 0; i < 10; i++ {
		if err := Fire("test.site"); err != nil {
			if !errors.Is(err, sentinel) {
				t.Fatalf("fire %d: got %v", i, err)
			}
			hits++
		}
	}
	// Skip 2, then trigger 3 times, then exhausted.
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	if got := Hits("test.site"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
	if got := Hits("unknown.site"); got != 0 {
		t.Fatalf("Hits(unknown) = %d, want 0", got)
	}
}

func TestPanicAction(t *testing.T) {
	Enable(1)
	defer Disable()
	Arm("test.panic", Fault{Action: ActPanic, Times: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed panic site did not panic")
			}
		}()
		_ = Fire("test.panic")
	}()
	// Exhausted after one trigger.
	if err := Fire("test.panic"); err != nil {
		t.Fatalf("exhausted panic site returned %v", err)
	}
}

func TestDelayAndHook(t *testing.T) {
	Enable(1)
	defer Disable()
	var hooked bool
	Arm("test.delay", Fault{Action: ActDelay, Delay: 5 * time.Millisecond, Times: 1, Hook: func() { hooked = true }})
	start := time.Now()
	if err := Fire("test.delay"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay fired after %v, want ≥ 5ms", d)
	}
	if !hooked {
		t.Fatal("hook did not run")
	}
}

func TestErrorDefault(t *testing.T) {
	Enable(1)
	defer Disable()
	Arm("test.err", Fault{Action: ActError})
	if err := Fire("test.err"); err == nil {
		t.Fatal("ActError with nil Err returned nil")
	}
}

// TestSeededProbDeterministic: equal seeds draw the same trigger sequence
// when firings are sequential.
func TestSeededProbDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		Enable(seed)
		defer Disable()
		Arm("test.prob", Fault{Action: ActError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire("test.prob") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged between equal-seed runs", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical 64-firing pattern (suspicious)")
	}
}

// TestConcurrentFire: hammering an armed registry from many goroutines
// must be race-free (run under -race in CI) and respect Times exactly.
func TestConcurrentFire(t *testing.T) {
	Enable(7)
	defer Disable()
	sentinel := errors.New("boom")
	Arm("test.conc", Fault{Action: ActError, Err: sentinel, Times: 5})
	var wg sync.WaitGroup
	var mu sync.Mutex
	hits := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Fire("test.conc") != nil {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if hits != 5 {
		t.Fatalf("Times=5 triggered %d times", hits)
	}
}

func TestEnableResetsSites(t *testing.T) {
	Enable(1)
	Arm("test.reset", Fault{Action: ActError})
	Enable(1) // re-enable clears armed faults
	defer Disable()
	if err := Fire("test.reset"); err != nil {
		t.Fatalf("site survived re-Enable: %v", err)
	}
}

// TestChaosRegistryConcurrentSites hammers the registry itself from many
// goroutines across several sites while the armed set is live — the -race
// smoke for the chaos tooling (the CI chaos step runs TestChaos* here and
// in internal/service).
func TestChaosRegistryConcurrentSites(t *testing.T) {
	Enable(99)
	defer Disable()
	sites := []string{SiteServiceAcquire, SiteServiceSession, SiteDetectBlock}
	for _, site := range sites {
		Arm(site, Fault{Action: ActError, Skip: 5, Times: 7})
	}
	var wg sync.WaitGroup
	injected := make([]atomic.Int64, len(sites))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for si, site := range sites {
					if Fire(site) != nil {
						injected[si].Add(1)
					}
				}
				_ = Hits(sites[i%len(sites)])
			}
		}()
	}
	wg.Wait()
	for si, site := range sites {
		if got := injected[si].Load(); got != 7 {
			t.Fatalf("site %s injected %d errors, want exactly Times=7", site, got)
		}
		if Hits(site) != 7 {
			t.Fatalf("site %s Hits=%d, want 7", site, Hits(site))
		}
	}
}
