package motion

import (
	"math"
	"math/rand"
	"testing"
)

func TestSyntheticRestingIsQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := SyntheticResting(2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Fatalf("len %d", tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if m := tr.Magnitude(i); math.Abs(m-GravityMS2) > 0.5 {
			t.Fatalf("resting magnitude %g at %d", m, i)
		}
	}
}

func TestPickupDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	det := DefaultDetector()
	tr, err := SyntheticPickup(4, 50, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	at, ok, err := det.PickupAt(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pickup not detected")
	}
	// The detector reports the start of the detection window, so the
	// verdict can precede the gesture onset by up to WindowSec.
	atSec := float64(at) / 50
	if atSec < 1.5-DefaultDetector().WindowSec-0.05 || atSec > 2.0 {
		t.Fatalf("pickup located at %.2f s, want ≈1.5 s (±window)", atSec)
	}
}

func TestRestingAndWalkingDoNotTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	det := DefaultDetector()

	rest, err := SyntheticResting(5, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := det.PickupAt(rest); err != nil || ok {
		t.Fatalf("resting trace triggered pickup (ok=%v err=%v)", ok, err)
	}

	walk, err := SyntheticWalking(5, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := det.PickupAt(walk); err != nil || ok {
		t.Fatalf("walking trace triggered pickup (ok=%v err=%v)", ok, err)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := SyntheticResting(0, 50, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := SyntheticResting(1, 50, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := SyntheticPickup(2, 50, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("pickup beyond duration accepted")
	}
	bad := Trace{RateHz: 50, X: make([]float64, 3), Y: make([]float64, 2), Z: make([]float64, 3)}
	det := DefaultDetector()
	if _, _, err := det.PickupAt(bad); err == nil {
		t.Error("mismatched axes accepted")
	}
	if _, _, err := det.PickupAt(Trace{RateHz: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	short := Detector{JerkThresholdMS3: 100, MinFraction: 0.5, WindowSec: 0.001}
	good := Trace{RateHz: 50, X: make([]float64, 10), Y: make([]float64, 10), Z: make([]float64, 10)}
	if _, _, err := short.PickupAt(good); err == nil {
		t.Error("degenerate window accepted")
	}
}

func TestShortTraceNoPickup(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, err := SyntheticResting(0.1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := DefaultDetector().PickupAt(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("pickup in a 5-sample trace")
	}
}

func TestPreAuthLatency(t *testing.T) {
	if got := PreAuthLatency(2.4, 1.0); math.Abs(got-1.4) > 1e-12 {
		t.Fatalf("latency %g", got)
	}
	if got := PreAuthLatency(2.4, 3.0); got != 0 {
		t.Fatalf("latency floor %g", got)
	}
}
