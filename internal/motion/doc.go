// Package motion implements the paper's §VI-D latency optimization sketch:
// "when accelerometer and gyroscope data are available, we can detect a
// device is picked up. Therefore, we can perform authentication before the
// device is used." It provides synthetic 3-axis accelerometer traces and a
// jerk-based pickup Detector; the pickup event triggers PIANO early so the
// ~2.4 s authentication overlaps the user's grab-and-speak gesture.
//
// The trace generator and detector are deterministic given a seeded RNG,
// matching the repo-wide reproducibility contract.
package motion
