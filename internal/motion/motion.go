package motion

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// GravityMS2 is standard gravity, the resting accelerometer magnitude.
const GravityMS2 = 9.81

// Trace is a 3-axis accelerometer recording in m/s².
type Trace struct {
	RateHz  float64
	X, Y, Z []float64
}

// Len returns the sample count.
func (t Trace) Len() int { return len(t.X) }

// Validate checks structural consistency.
func (t Trace) Validate() error {
	if t.RateHz <= 0 {
		return errors.New("motion: rate must be positive")
	}
	if len(t.X) != len(t.Y) || len(t.X) != len(t.Z) {
		return fmt.Errorf("motion: axis lengths differ (%d/%d/%d)", len(t.X), len(t.Y), len(t.Z))
	}
	return nil
}

// Magnitude returns |a| at sample i.
func (t Trace) Magnitude(i int) float64 {
	return math.Sqrt(t.X[i]*t.X[i] + t.Y[i]*t.Y[i] + t.Z[i]*t.Z[i])
}

// SyntheticResting generates a device lying on a table: gravity on Z plus
// sensor noise.
func SyntheticResting(durSec, rateHz float64, rng *rand.Rand) (Trace, error) {
	return synth(durSec, rateHz, rng, func(tr *Trace, i int) {
		tr.X[i] = 0.03 * rng.NormFloat64()
		tr.Y[i] = 0.03 * rng.NormFloat64()
		tr.Z[i] = GravityMS2 + 0.05*rng.NormFloat64()
	})
}

// SyntheticWalking generates the periodic sway of a device carried in a
// pocket — motion that must NOT trigger pickup detection.
func SyntheticWalking(durSec, rateHz float64, rng *rand.Rand) (Trace, error) {
	const stepHz = 1.8
	return synth(durSec, rateHz, rng, func(tr *Trace, i int) {
		ph := 2 * math.Pi * stepHz * float64(i) / rateHz
		tr.X[i] = 0.8*math.Sin(ph) + 0.1*rng.NormFloat64()
		tr.Y[i] = 0.5*math.Sin(ph/2+0.7) + 0.1*rng.NormFloat64()
		tr.Z[i] = GravityMS2 + 1.2*math.Sin(ph+0.3) + 0.15*rng.NormFloat64()
	})
}

// SyntheticPickup generates resting followed by a grab: a sharp jerk and an
// orientation change starting at pickupAtSec.
func SyntheticPickup(durSec, rateHz, pickupAtSec float64, rng *rand.Rand) (Trace, error) {
	if pickupAtSec < 0 || pickupAtSec >= durSec {
		return Trace{}, fmt.Errorf("motion: pickup time %g outside (0, %g)", pickupAtSec, durSec)
	}
	start := int(pickupAtSec * rateHz)
	return synth(durSec, rateHz, rng, func(tr *Trace, i int) {
		if i < start {
			tr.X[i] = 0.03 * rng.NormFloat64()
			tr.Y[i] = 0.03 * rng.NormFloat64()
			tr.Z[i] = GravityMS2 + 0.05*rng.NormFloat64()
			return
		}
		// Grab: ~0.6 s of high-jerk motion settling into a held pose
		// tilted away from gravity-on-Z.
		dt := float64(i-start) / rateHz
		envelope := math.Exp(-dt/0.4) * 8
		tr.X[i] = envelope*math.Sin(2*math.Pi*6*dt) + 2.5 + 0.3*rng.NormFloat64()
		tr.Y[i] = envelope*math.Cos(2*math.Pi*5*dt) + 1.5 + 0.3*rng.NormFloat64()
		tr.Z[i] = GravityMS2*0.7 + envelope*math.Sin(2*math.Pi*4*dt+1) + 0.3*rng.NormFloat64()
	})
}

func synth(durSec, rateHz float64, rng *rand.Rand, fill func(*Trace, int)) (Trace, error) {
	if durSec <= 0 || rateHz <= 0 {
		return Trace{}, errors.New("motion: duration and rate must be positive")
	}
	if rng == nil {
		return Trace{}, errors.New("motion: nil rng")
	}
	n := int(durSec * rateHz)
	tr := Trace{RateHz: rateHz, X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
	for i := 0; i < n; i++ {
		fill(&tr, i)
	}
	return tr, nil
}

// Detector recognizes pickup gestures from jerk (derivative of
// acceleration magnitude) sustained over a short window.
type Detector struct {
	// JerkThresholdMS3 is the per-sample jerk magnitude that counts as
	// "energetic" motion. Walking sway stays well below it.
	JerkThresholdMS3 float64
	// MinFraction is the fraction of window samples that must be
	// energetic for a pickup verdict.
	MinFraction float64
	// WindowSec is the detection window length.
	WindowSec float64
}

// DefaultDetector returns thresholds calibrated against the synthetic
// traces (and the walking rejection test).
func DefaultDetector() Detector {
	return Detector{JerkThresholdMS3: 150, MinFraction: 0.35, WindowSec: 0.3}
}

// PickupAt scans the trace and returns the sample index where a pickup
// gesture begins, or ok=false when none is present.
func (d Detector) PickupAt(tr Trace) (int, bool, error) {
	if err := tr.Validate(); err != nil {
		return 0, false, err
	}
	win := int(d.WindowSec * tr.RateHz)
	if win < 2 {
		return 0, false, errors.New("motion: window too short for rate")
	}
	if tr.Len() < win+1 {
		return 0, false, nil
	}
	// Jerk per sample: |Δa|·rate.
	jerk := make([]float64, tr.Len()-1)
	for i := range jerk {
		dx := tr.X[i+1] - tr.X[i]
		dy := tr.Y[i+1] - tr.Y[i]
		dz := tr.Z[i+1] - tr.Z[i]
		jerk[i] = math.Sqrt(dx*dx+dy*dy+dz*dz) * tr.RateHz
	}
	need := int(d.MinFraction * float64(win))
	count := 0
	for i, j := range jerk {
		if j > d.JerkThresholdMS3 {
			count++
		}
		if i >= win {
			if jerk[i-win] > d.JerkThresholdMS3 {
				count--
			}
		}
		if count >= need {
			start := i - win + 1
			if start < 0 {
				start = 0
			}
			return start, true, nil
		}
	}
	return 0, false, nil
}

// PreAuthLatency computes the §VI-D headline: with authentication started
// at the pickup instant, the user-perceived latency is the authentication
// time minus the natural grab-to-command gesture time, floored at zero.
func PreAuthLatency(authTimeSec, gestureSec float64) float64 {
	l := authTimeSec - gestureSec
	if l < 0 {
		return 0
	}
	return l
}
