package dsp

import "math"

// Hann returns an n-point Hann window. Windowing is used by the acoustic
// simulator's noise shaping and by diagnostics; the paper's detector uses
// rectangular windows (raw sample windows), matching Algorithm 2.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ApplyWindow multiplies x by window w element-wise in place. Extra window
// values are ignored; a short window leaves the tail of x untouched.
func ApplyWindow(x, w []float64) {
	n := len(x)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		x[i] *= w[i]
	}
}
