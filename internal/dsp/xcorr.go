package dsp

import (
	"fmt"
	"math"
)

// CrossCorrelate computes the normalized cross-correlation of the reference
// signal ref against every alignment in the longer sequence x, returning one
// coefficient per starting index (len(x)-len(ref)+1 values).
//
// This is the classical detector used by BeepBeep and by the ACTION-CC
// baseline of the paper's Fig. 2(b). PIANO itself does not use it — the
// whole point of the frequency-based detector is that cross-correlation
// collapses under the channel's frequency smoothing.
func CrossCorrelate(x, ref []float64) ([]float64, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("dsp: cross-correlate: empty reference")
	}
	if len(x) < len(ref) {
		return nil, fmt.Errorf("dsp: cross-correlate: sequence (%d) shorter than reference (%d)", len(x), len(ref))
	}

	var refEnergy float64
	for _, v := range ref {
		refEnergy += v * v
	}
	refNorm := math.Sqrt(refEnergy)

	n := len(x) - len(ref) + 1
	out := make([]float64, n)

	// Sliding window energy of x, maintained incrementally.
	var winEnergy float64
	for i := 0; i < len(ref); i++ {
		winEnergy += x[i] * x[i]
	}
	for i := 0; i < n; i++ {
		var dot float64
		for j, r := range ref {
			dot += x[i+j] * r
		}
		denom := refNorm * math.Sqrt(winEnergy)
		if denom > 0 {
			out[i] = dot / denom
		}
		if i+1 < n {
			winEnergy += x[i+len(ref)]*x[i+len(ref)] - x[i]*x[i]
			if winEnergy < 0 {
				winEnergy = 0 // guard against accumulated rounding
			}
		}
	}
	return out, nil
}

// ArgMax returns the index of the maximum value in x and the value itself.
// It returns (-1, -Inf) for an empty slice.
func ArgMax(x []float64) (int, float64) {
	best, bestIdx := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx, best
}
