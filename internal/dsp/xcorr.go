package dsp

import (
	"fmt"
	"math"
)

// CrossCorrelate computes the normalized cross-correlation of the reference
// signal ref against every alignment in the longer sequence x, returning one
// coefficient per starting index (len(x)-len(ref)+1 values).
//
// This is the classical detector used by BeepBeep and by the ACTION-CC
// baseline of the paper's Fig. 2(b). PIANO itself does not use it — the
// whole point of the frequency-based detector is that cross-correlation
// collapses under the channel's frequency smoothing.
//
// The sliding dot products are evaluated with an FFT overlap-save scheme in
// O((n+m)·log m) instead of the naive O(n·m) inner loop, which is what kept
// the ACTION-CC baseline ~two orders of magnitude slower than PIANO in the
// benchmark suite. CrossCorrelateNaive retains the direct evaluation as a
// test oracle. Results agree with the oracle to floating-point rounding
// (~1e-12 relative), not bit-exactly.
func CrossCorrelate(x, ref []float64) ([]float64, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("dsp: cross-correlate: empty reference")
	}
	if len(x) < len(ref) {
		return nil, fmt.Errorf("dsp: cross-correlate: sequence (%d) shorter than reference (%d)", len(x), len(ref))
	}
	dots, err := slidingDotsFFT(x, ref)
	if err != nil {
		return nil, err
	}
	return normalizeSlidingDots(dots, x, ref), nil
}

// CrossCorrelateNaive is the direct O(n·m) evaluation of CrossCorrelate,
// kept as the reference implementation for testing the FFT path. Both
// functions share the same normalization.
func CrossCorrelateNaive(x, ref []float64) ([]float64, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("dsp: cross-correlate: empty reference")
	}
	if len(x) < len(ref) {
		return nil, fmt.Errorf("dsp: cross-correlate: sequence (%d) shorter than reference (%d)", len(x), len(ref))
	}
	n := len(x) - len(ref) + 1
	dots := make([]float64, n)
	for i := 0; i < n; i++ {
		var dot float64
		for j, r := range ref {
			dot += x[i+j] * r
		}
		dots[i] = dot
	}
	return normalizeSlidingDots(dots, x, ref), nil
}

// slidingDotsFFT computes dots[i] = Σ_j x[i+j]·ref[j] for every full
// alignment via overlap-save block correlation: each FFT block of length L
// yields L−m+1 wrap-free lags, so the whole sequence costs ⌈n/(L−m+1)⌉
// forward transforms plus one transform of the reference.
func slidingDotsFFT(x, ref []float64) ([]float64, error) {
	m := len(ref)
	nOut := len(x) - m + 1

	// Block length: ≥2m so most of each transform produces output, capped
	// at the single-block size when the input is short.
	fftLen := NextPowerOfTwo(4 * m)
	if single := NextPowerOfTwo(len(x)); single < fftLen {
		fftLen = single
	}
	if fftLen < NextPowerOfTwo(m) {
		fftLen = NextPowerOfTwo(m)
	}
	if fftLen < 2 {
		fftLen = 2
	}
	plan, err := SharedFFTPlan(fftLen)
	if err != nil {
		return nil, err
	}

	// Conjugated reference spectrum (correlation theorem: the spectrum of
	// the sliding dot products is X·conj(REF)).
	refSpec := make([]complex128, fftLen)
	for i, v := range ref {
		refSpec[i] = complex(v, 0)
	}
	if err := plan.Forward(refSpec); err != nil {
		return nil, err
	}
	for i, c := range refSpec {
		refSpec[i] = complex(real(c), -imag(c))
	}

	dots := make([]float64, nOut)
	block := make([]complex128, fftLen)
	step := fftLen - m + 1
	for start := 0; start < nOut; start += step {
		end := start + fftLen
		if end > len(x) {
			end = len(x)
		}
		for i := 0; i < end-start; i++ {
			block[i] = complex(x[start+i], 0)
		}
		for i := end - start; i < fftLen; i++ {
			block[i] = 0
		}
		if err := plan.Forward(block); err != nil {
			return nil, err
		}
		for i := range block {
			block[i] *= refSpec[i]
		}
		if err := plan.Inverse(block); err != nil {
			return nil, err
		}
		lim := step
		if start+lim > nOut {
			lim = nOut - start
		}
		for i := 0; i < lim; i++ {
			dots[start+i] = real(block[i])
		}
	}
	return dots, nil
}

// normalizeSlidingDots converts raw sliding dot products into normalized
// correlation coefficients, maintaining the window energy incrementally.
func normalizeSlidingDots(dots, x, ref []float64) []float64 {
	var refEnergy float64
	for _, v := range ref {
		refEnergy += v * v
	}
	refNorm := math.Sqrt(refEnergy)

	n := len(dots)
	out := make([]float64, n)
	var winEnergy float64
	for i := 0; i < len(ref); i++ {
		winEnergy += x[i] * x[i]
	}
	for i := 0; i < n; i++ {
		denom := refNorm * math.Sqrt(winEnergy)
		if denom > 0 {
			out[i] = dots[i] / denom
		}
		if i+1 < n {
			winEnergy += x[i+len(ref)]*x[i+len(ref)] - x[i]*x[i]
			if winEnergy < 0 {
				winEnergy = 0 // guard against accumulated rounding
			}
		}
	}
	return out
}

// ArgMax returns the index of the maximum value in x and the value itself,
// skipping NaN elements (a single NaN would otherwise poison every `>`
// comparison after it and silently return a wrong argmax). It returns
// (-1, -Inf) for an empty or all-NaN slice.
func ArgMax(x []float64) (int, float64) {
	best, bestIdx := math.Inf(-1), -1
	for i, v := range x {
		if v > best { // NaN > best is always false, so NaNs are skipped
			best, bestIdx = v, i
		}
	}
	return bestIdx, best
}
