package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGoertzelMatchesPowerSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const n = 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 100
	}
	spec, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range []int{0, 1, 17, 300, 511, 512, 700, 1023} {
		got, err := Goertzel(x, bin)
		if err != nil {
			t.Fatal(err)
		}
		want := spec[bin]
		if math.Abs(got-want) > 1e-6*(want+1) {
			t.Errorf("bin %d: goertzel %g vs fft %g", bin, got, want)
		}
	}
}

func TestGoertzelMatchesPowerSpectrumProperty(t *testing.T) {
	f := func(seed int64, binRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 256
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		bin := int(binRaw) % n
		spec, err := PowerSpectrum(x)
		if err != nil {
			return false
		}
		got, err := Goertzel(x, bin)
		if err != nil {
			return false
		}
		return math.Abs(got-spec[bin]) < 1e-7*(spec[bin]+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGoertzelBandMatchesBandPower(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 512
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, center := range []int{0, 5, 250, 511} {
		want := BandPower(spec, center, 5)
		got, err := GoertzelBand(x, center, 5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-7*(want+1) {
			t.Errorf("center %d: %g vs %g", center, got, want)
		}
	}
}

func TestGoertzelErrors(t *testing.T) {
	if _, err := Goertzel(nil, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Goertzel([]float64{1, 2}, 2); err == nil {
		t.Error("out-of-range bin accepted")
	}
	if _, err := Goertzel([]float64{1, 2}, -1); err == nil {
		t.Error("negative bin accepted")
	}
	if _, err := GoertzelBand(nil, 0, 1); err == nil {
		t.Error("empty band input accepted")
	}
}

func BenchmarkGoertzelVsFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// The detector reads 30 candidates × 11 bins each.
	bins := make([]int, 0, 330)
	for c := 0; c < 30; c++ {
		center := 2337 + 31*c
		for k := center - 5; k <= center+5; k++ {
			bins = append(bins, k)
		}
	}
	b.Run("fft-full-spectrum", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec, err := PowerSpectrum(x)
			if err != nil {
				b.Fatal(err)
			}
			var sum float64
			for _, bin := range bins {
				sum += spec[bin]
			}
			_ = sum
		}
	})
	b.Run("goertzel-candidate-bins", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum float64
			for _, bin := range bins {
				p, err := Goertzel(x, bin)
				if err != nil {
					b.Fatal(err)
				}
				sum += p
			}
			_ = sum
		}
	})
}
