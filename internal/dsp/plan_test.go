package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// relClose reports whether a and b agree to within tol relative error
// (falling back to absolute for tiny magnitudes).
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= tol
	}
	return d/scale <= tol
}

func randomWindow(n int, rng *rand.Rand) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 2*rng.Float64() - 1
	}
	return w
}

func TestFFTPlanValidation(t *testing.T) {
	if _, err := NewFFTPlan(0); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := NewFFTPlan(100); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewFFTPlan(1); err == nil {
		t.Error("length 1 accepted")
	}
	p, err := NewFFTPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 64 {
		t.Fatalf("N = %d", p.N())
	}
	if err := p.Forward(make([]complex128, 32)); err == nil {
		t.Error("short Forward input accepted")
	}
	if err := p.PowerSpectrumInto(make([]float64, 64), make([]float64, 32), p.NewScratch()); err == nil {
		t.Error("short window accepted")
	}
	if err := p.PowerSpectrumInto(make([]float64, 32), make([]float64, 64), p.NewScratch()); err == nil {
		t.Error("short dst accepted")
	}
	if err := p.PowerSpectrumInto(make([]float64, 64), make([]float64, 64), nil); err == nil {
		t.Error("nil scratch accepted")
	}
}

// TestFFTPlanForwardMatchesFFT checks the planned complex transform agrees
// with the one-shot FFT. The fused radix-2² schedule rounds a few ULPs
// differently (its multiply-by-−i is exact where the table stores
// (6.1e-17, −1)), so the comparison is at 1e-10 relative — far tighter than
// the 1e-9 the engine promises.
func TestFFTPlanForwardMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 64, 512, 2048, 4096} {
		p, err := NewFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := append([]complex128(nil), x...)
		if err := FFT(want); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !relClose(real(got[i]), real(want[i]), 1e-10) || !relClose(imag(got[i]), imag(want[i]), 1e-10) {
				t.Fatalf("n=%d: bin %d: plan %v != fft %v", n, i, got[i], want[i])
			}
		}
		// Round trip through Inverse.
		if err := p.Inverse(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !relClose(real(got[i]), real(x[i]), 1e-10) || !relClose(imag(got[i]), imag(x[i]), 1e-10) {
				t.Fatalf("n=%d: round trip bin %d: %v != %v", n, i, got[i], x[i])
			}
		}
	}
}

// TestPowerSpectrumIntoMatchesPowerSpectrum is the parity gate of the
// zero-alloc engine: the packed real path must reproduce the legacy
// full-complex PowerSpectrum to within 1e-9 on random windows.
func TestPowerSpectrumIntoMatchesPowerSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 16, 256, 4096} {
		p, err := NewFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		scratch := p.NewScratch()
		dst := make([]float64, n)
		for trial := 0; trial < 8; trial++ {
			w := randomWindow(n, rng)
			want, err := PowerSpectrum(w)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.PowerSpectrumInto(dst, w, scratch); err != nil {
				t.Fatal(err)
			}
			for k := range dst {
				if !relClose(dst[k], want[k], 1e-9) {
					t.Fatalf("n=%d trial=%d bin %d: plan %g, oracle %g", n, trial, k, dst[k], want[k])
				}
			}
		}
	}
}

// TestPowerSpectrumIntoAliasedSine checks the plan keeps the above-Nyquist
// conjugate-bin indexing Algorithm 2 depends on.
func TestPowerSpectrumIntoAliasedSine(t *testing.T) {
	const n = 4096
	const fs = 44100.0
	p, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{25000, 30017, 34961} {
		x, err := Sine(f, 1.0, 0, fs, n)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, n)
		if err := p.PowerSpectrumInto(dst, x, p.NewScratch()); err != nil {
			t.Fatal(err)
		}
		bin := BinIndex(f, fs, n)
		got := BandPower(dst, bin, 2)
		if got < 0.5 || got > 2.0 {
			t.Fatalf("f=%g: band power %g, want ≈1", f, got)
		}
	}
}

func TestSharedFFTPlanCaches(t *testing.T) {
	a, err := SharedFFTPlan(1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedFFTPlan(1024)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("shared plan not cached")
	}
	if _, err := SharedFFTPlan(1000); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

// TestPowerSpectrumIntoZeroAlloc asserts the steady-state spectrum path
// performs no heap allocations per window.
func TestPowerSpectrumIntoZeroAlloc(t *testing.T) {
	const n = 4096
	p, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	scratch := p.NewScratch()
	dst := make([]float64, n)
	w := randomWindow(n, rand.New(rand.NewSource(3)))
	allocs := testing.AllocsPerRun(50, func() {
		if err := p.PowerSpectrumInto(dst, w, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PowerSpectrumInto allocates %g per window, want 0", allocs)
	}
}

func BenchmarkPowerSpectrum(b *testing.B) {
	w := randomWindow(4096, rand.New(rand.NewSource(4)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PowerSpectrum(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerSpectrumInto(b *testing.B) {
	w := randomWindow(4096, rand.New(rand.NewSource(4)))
	p, err := NewFFTPlan(4096)
	if err != nil {
		b.Fatal(err)
	}
	scratch := p.NewScratch()
	dst := make([]float64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PowerSpectrumInto(dst, w, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
