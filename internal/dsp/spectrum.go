package dsp

import (
	"fmt"
	"math"
)

// PowerSpectrum computes the normalized power spectrum of a real-valued
// window, returning one power value per FFT bin over the full transform
// length (not folded at Nyquist).
//
// The normalization is chosen so that a sinusoid of amplitude A centered on
// bin k contributes power ≈ A² at bin k (and at its conjugate bin N−k).
// This matches the paper's parameterization where a reference sinusoid of
// time-domain amplitude 32000/n has R_f = (32000/n)².
//
// Returning the full-length spectrum matters for PIANO: the candidate
// frequencies live in [25 kHz, 35 kHz] while the sampling rate is 44.1 kHz,
// so the bin index ⌊f/fs·N⌋ used by Algorithm 2 lands above Nyquist — on the
// conjugate bin of the aliased component — which carries exactly the power
// of the (aliased) sinusoid. Folding the spectrum would break that indexing.
func PowerSpectrum(w []float64) ([]float64, error) {
	spec, err := FFTReal(w)
	if err != nil {
		return nil, fmt.Errorf("dsp: power spectrum: %w", err)
	}
	n := float64(len(w))
	out := make([]float64, len(spec))
	for i, c := range spec {
		mag := 2 * math.Hypot(real(c), imag(c)) / n
		out[i] = mag * mag
	}
	return out, nil
}

// BinIndex returns the power-spectrum bin index the paper's Algorithm 2
// (line 4) uses for frequency f: ⌊f/fs · N⌋ where N is the window length.
func BinIndex(freqHz, sampleRate float64, windowLen int) int {
	return int(freqHz / sampleRate * float64(windowLen))
}

// BandPower sums spectrum power over bins [center−theta, center+theta],
// clamped to the valid range. This implements the θ-wide aggregation of
// Algorithm 2 (line 5) that absorbs the frequency-smoothing effect.
func BandPower(spectrum []float64, center, theta int) float64 {
	lo := center - theta
	if lo < 0 {
		lo = 0
	}
	hi := center + theta
	if hi > len(spectrum)-1 {
		hi = len(spectrum) - 1
	}
	var sum float64
	for k := lo; k <= hi; k++ {
		sum += spectrum[k]
	}
	return sum
}

// TotalPower returns the mean squared sample value of w (time-domain signal
// power), used for calibration and diagnostics.
func TotalPower(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var sum float64
	for _, v := range w {
		sum += v * v
	}
	return sum / float64(len(w))
}
