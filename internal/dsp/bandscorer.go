package dsp

import (
	"fmt"
	"math"
)

// BandScorer computes Algorithm 2's θ-wide band powers for a fixed set of
// band centers over windows of a fixed length, picking the cheaper of two
// strategies at construction time:
//
//   - pruned DFT (Goertzel recurrence) over only the bins the bands touch,
//     O(bins·N) — wins when the bands cover fewer than ~log₂N distinct bins
//     (wake-tone detection, single-frequency probes);
//   - one packed real FFT via FFTPlan, O(N log N) — wins for PIANO's full
//     candidate grid (~30 bands × (2θ+1) bins ≈ 330 of 4096).
//
// Both strategies produce band powers matching PowerSpectrum+BandPower to
// within 1e-9 relative error. A BandScorer owns its scratch buffers and is
// NOT safe for concurrent use; build one per worker (construction is cheap —
// the dominant cost, the FFT tables, can be shared by passing a prebuilt
// plan to NewBandScorerWithPlan).
//
// Note the detector does NOT route through BandScorer: its coarse scan
// shares one spectrum across several signals and wants Algorithm 2's
// early-exit sanity checks, so it uses FFTPlan.PowerSpectrumInto directly —
// and its ~330-bin workload sits firmly on the FFT side of the crossover
// anyway. BandScorer is the standalone engine for few-bin scoring tasks
// (wake-tone detection, single-frequency probes) where the pruned DFT is
// the measured winner.
type BandScorer struct {
	n       int
	theta   int
	centers []int
	bands   [][2]int // clamped [lo, hi] bin range per center

	// Goertzel path.
	useGoertzel bool
	bins        []int     // deduped sorted bins covered by any band
	coeffs      []float64 // 2cos(2πb/n) per entry of bins
	binPower    []float64 // scratch: power per entry of bins

	// FFT path.
	plan    *FFTPlan
	spec    []float64
	scratch []complex128
	// fftLo/fftHi is the canonical bin range covering every bin any band
	// reads, so the FFT path unpacks only that range
	// (PowerSpectrumBandInto) instead of the full spectrum.
	fftLo, fftHi int
}

// goertzelBreakEvenBins returns the crossover point between the pruned-DFT
// and FFT strategies. Goertzel costs ~N multiply-adds per bin and its
// recurrence is a serial dependency chain (latency-bound, ~2.5 ns/sample
// measured), while the FFT path computes every bin at once. Re-measured
// after the FFT side switched to the fused packed transform + band-
// restricted unpack (PowerSpectrumBandInto): the FFT path now costs
// ~0.32 ns·N·log₂N (≈15.7 µs at N=4096, barely above a single 10.3 µs
// Goertzel bin), so the break-even fell from ~log₂N/4 to ~log₂N/8 — at the
// paper's N=4096 only single-bin probes (wake tones) still favor Goertzel
// (see BenchmarkBandScorerGrid/SingleTone and PERFORMANCE.md).
func goertzelBreakEvenBins(log2n int) int {
	be := log2n / 8
	if be < 1 {
		be = 1
	}
	return be
}

// NewBandScorer builds a scorer for windows of length n (power of two) and
// the given band centers with half-width theta.
func NewBandScorer(n int, centers []int, theta int) (*BandScorer, error) {
	return newBandScorer(n, centers, theta, nil)
}

// NewBandScorerWithPlan is NewBandScorer reusing a prebuilt plan of matching
// length, so a worker pool shares one set of FFT tables.
func NewBandScorerWithPlan(plan *FFTPlan, centers []int, theta int) (*BandScorer, error) {
	if plan == nil {
		return nil, fmt.Errorf("dsp: band scorer: nil plan")
	}
	return newBandScorer(plan.N(), centers, theta, plan)
}

func newBandScorer(n int, centers []int, theta int, plan *FFTPlan) (*BandScorer, error) {
	if !IsPowerOfTwo(n) || n < 2 {
		return nil, fmt.Errorf("dsp: band scorer of %d samples: %w", n, ErrNotPowerOfTwo)
	}
	if theta < 0 {
		return nil, fmt.Errorf("dsp: band scorer: negative theta %d", theta)
	}
	if len(centers) == 0 {
		return nil, fmt.Errorf("dsp: band scorer: no band centers")
	}
	s := &BandScorer{n: n, theta: theta, centers: append([]int(nil), centers...)}
	seen := make(map[int]bool)
	for _, c := range centers {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("dsp: band scorer: center %d out of range [0, %d)", c, n)
		}
		lo, hi := c-theta, c+theta
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		s.bands = append(s.bands, [2]int{lo, hi})
		for b := lo; b <= hi; b++ {
			if !seen[b] {
				seen[b] = true
				s.bins = append(s.bins, b)
			}
		}
	}

	log2n := 0
	for v := n; v > 1; v >>= 1 {
		log2n++
	}
	s.useGoertzel = len(s.bins) <= goertzelBreakEvenBins(log2n)

	if s.useGoertzel {
		s.coeffs = make([]float64, len(s.bins))
		for i, b := range s.bins {
			s.coeffs[i] = 2 * math.Cos(2*math.Pi*float64(b)/float64(n))
		}
		s.binPower = make([]float64, len(s.bins))
	} else {
		if plan == nil {
			var err error
			plan, err = NewFFTPlan(n)
			if err != nil {
				return nil, err
			}
		}
		s.plan = plan
		s.spec = make([]float64, n)
		s.scratch = plan.NewScratch()
		// Fold every read bin to its canonical image (spectrum[b] ==
		// spectrum[n−b] for b > n/2) so the unpack runs only over the
		// range the bands actually touch.
		half := n / 2
		minB, maxB := n, -1
		for _, b := range s.bins {
			m := b
			if m > half {
				m = n - m
			}
			if m < minB {
				minB = m
			}
			if m > maxB {
				maxB = m
			}
		}
		s.fftLo, s.fftHi = minB, maxB+1
	}
	return s, nil
}

// N returns the window length the scorer was built for.
func (s *BandScorer) N() int { return s.n }

// NumBands returns the number of band centers.
func (s *BandScorer) NumBands() int { return len(s.centers) }

// UsesGoertzel reports which strategy construction picked (exposed for
// tests and diagnostics).
func (s *BandScorer) UsesGoertzel() bool { return s.useGoertzel }

// ScoreInto writes one band power per center into dst (len == NumBands) for
// the given window (len == N). Zero heap allocations in steady state.
func (s *BandScorer) ScoreInto(dst, window []float64) error {
	if len(window) != s.n {
		return fmt.Errorf("dsp: band scorer length %d, window %d", s.n, len(window))
	}
	if len(dst) != len(s.centers) {
		return fmt.Errorf("dsp: band scorer dst length %d, want %d", len(dst), len(s.centers))
	}
	if s.useGoertzel {
		// One pass per bin: the Goertzel recurrence evaluates a single DFT
		// bin in O(N) multiply-adds with the same normalization as
		// PowerSpectrum.
		norm := 2 / float64(s.n)
		norm *= norm
		for i, coeff := range s.coeffs {
			var s1, s2 float64
			for _, v := range window {
				s0 := v + coeff*s1 - s2
				s2 = s1
				s1 = s0
			}
			s.binPower[i] = (s1*s1 + s2*s2 - coeff*s1*s2) * norm
		}
		for bi, band := range s.bands {
			var sum float64
			for i, b := range s.bins {
				if b >= band[0] && b <= band[1] {
					sum += s.binPower[i]
				}
			}
			dst[bi] = sum
		}
		return nil
	}
	if err := s.plan.PowerSpectrumBandInto(s.spec, window, s.scratch, s.fftLo, s.fftHi); err != nil {
		return err
	}
	for bi, band := range s.bands {
		var sum float64
		for b := band[0]; b <= band[1]; b++ {
			sum += s.spec[b]
		}
		dst[bi] = sum
	}
	return nil
}
