package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestPowerSpectrumSineAmplitude verifies the normalization contract: a
// bin-centered sinusoid of amplitude A yields power ≈ A² at its bin.
func TestPowerSpectrumSineAmplitude(t *testing.T) {
	const (
		n    = 4096
		fs   = 44100.0
		ampl = 1000.0
	)
	bin := 300
	freq := float64(bin) * fs / n // exactly bin-centered
	x, err := Sine(freq, ampl, 0, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec[bin]; math.Abs(got-ampl*ampl) > 1e-6*ampl*ampl {
		t.Fatalf("power at bin %d = %g, want %g", bin, got, ampl*ampl)
	}
	// Conjugate bin carries the same power.
	if got := spec[n-bin]; math.Abs(got-ampl*ampl) > 1e-6*ampl*ampl {
		t.Fatalf("power at conjugate bin = %g, want %g", got, ampl*ampl)
	}
}

// TestPowerSpectrumAliasedCandidate exercises the property PIANO depends on:
// a 25–35 kHz sinusoid sampled at 44.1 kHz is detectable at bin ⌊f/fs·N⌋ of
// the full-length spectrum even though f exceeds Nyquist.
func TestPowerSpectrumAliasedCandidate(t *testing.T) {
	const (
		n  = 4096
		fs = 44100.0
	)
	for _, freq := range []float64{25166.67, 30166.67, 34833.33} {
		x, err := Sine(freq, 500, 0.3, fs, n)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := PowerSpectrum(x)
		if err != nil {
			t.Fatal(err)
		}
		idx := BinIndex(freq, fs, n)
		got := BandPower(spec, idx, 5)
		if got < 0.8*500*500 {
			t.Errorf("freq %g Hz: band power %g too small (want ≳ %g)", freq, got, 0.8*500*500)
		}
	}
}

func TestBinIndex(t *testing.T) {
	// Paper setting: f=25 kHz, fs=44.1 kHz, N=4096 → ⌊25000/44100·4096⌋=2321.
	if got := BinIndex(25000, 44100, 4096); got != 2321 {
		t.Fatalf("BinIndex = %d, want 2321", got)
	}
	if got := BinIndex(0, 44100, 4096); got != 0 {
		t.Fatalf("BinIndex(0) = %d", got)
	}
}

func TestBandPowerClamping(t *testing.T) {
	spec := []float64{1, 2, 3, 4, 5}
	if got := BandPower(spec, 0, 2); got != 1+2+3 {
		t.Errorf("low clamp: got %g", got)
	}
	if got := BandPower(spec, 4, 2); got != 3+4+5 {
		t.Errorf("high clamp: got %g", got)
	}
	if got := BandPower(spec, 2, 0); got != 3 {
		t.Errorf("theta=0: got %g", got)
	}
}

func TestTotalPower(t *testing.T) {
	if got := TotalPower(nil); got != 0 {
		t.Errorf("TotalPower(nil) = %g", got)
	}
	x := []float64{3, -3, 3, -3}
	if got := TotalPower(x); got != 9 {
		t.Errorf("TotalPower = %g, want 9", got)
	}
}

// TestPowerSpectrumParsevalLike checks that white noise distributes power
// across bins with the expected total under our normalization.
func TestPowerSpectrumParsevalLike(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2048
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range spec {
		sum += p
	}
	// Parseval: Σ|X_k|² = N·Σx² ⇒ Σ(2|X_k|/N)² = 4Σx²/N = 4·TotalPower.
	if math.Abs(sum-4*TotalPower(x)) > 1e-6*sum {
		t.Fatalf("spectrum sum = %g, want %g", sum, 4*TotalPower(x))
	}
}
