package dsp

import "sort"

// PlanSet is a set of FFT plans pinned at construction time for a known
// collection of window lengths. Long-lived services build one per
// deployment so every hot-path transform resolves its plan with a plain
// (lock-free) map lookup instead of going through the process-wide
// sync.Map in SharedFFTPlan.
//
// The set is immutable after construction and safe for concurrent use.
// Lookups for lengths that were not pinned fall back to SharedFFTPlan, so
// a PlanSet is always a safe drop-in plan source.
type PlanSet struct {
	plans map[int]*FFTPlan
}

// NewPlanSet builds and pins one shared plan per distinct length. Lengths
// must satisfy the FFTPlan constraints (power of two, ≥ 2); duplicates are
// collapsed.
func NewPlanSet(lengths ...int) (*PlanSet, error) {
	s := &PlanSet{plans: make(map[int]*FFTPlan, len(lengths))}
	for _, n := range lengths {
		if _, ok := s.plans[n]; ok {
			continue
		}
		p, err := SharedFFTPlan(n)
		if err != nil {
			return nil, err
		}
		s.plans[n] = p
	}
	return s, nil
}

// Plan returns the pinned plan for length n, falling back to the
// process-wide cache for lengths the set was not built with.
func (s *PlanSet) Plan(n int) (*FFTPlan, error) {
	if p, ok := s.plans[n]; ok {
		return p, nil
	}
	return SharedFFTPlan(n)
}

// Lengths returns the pinned lengths in ascending order.
func (s *PlanSet) Lengths() []int {
	out := make([]int, 0, len(s.plans))
	for n := range s.plans {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
