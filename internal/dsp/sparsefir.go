package dsp

import (
	"math"
	"sort"
)

// SincHalfWidth is the one-sided length L of the Hann-windowed sinc
// interpolation kernel used for band-limited fractional delay throughout the
// simulator. Linear interpolation is a 2-tap averaging filter that attenuates
// near-Nyquist content by up to −13 dB — fatal for PIANO's candidate band,
// which aliases to 9–19 kHz — so propagation delays are applied with a 48-tap
// Hann-windowed sinc that stays flat through the candidate band. This is the
// single source of truth for the kernel; audio.MixFloatSincGain and the
// composite-kernel builder below both evaluate it through SincDelayKernel, so
// the per-tap mixer and the folded sparse FIR use bit-identical coefficients.
const SincHalfWidth = 24

// SincKernelLen is the dense length (2L) of one fractional-delay kernel.
const SincKernelLen = 2 * SincHalfWidth

// IntegerDelayEps is the fractional-offset threshold below which a delay is
// treated as a pure integer shift (a single unit coefficient) instead of a
// full sinc kernel. It matches the historical audio.MixFloatSincGain fast
// path exactly, which is what keeps the composite kernel's tap folding
// faithful to the per-tap oracle.
const IntegerDelayEps = 1e-9

// SincDelayKernel fills k with the 2L-tap band-limited fractional-delay
// kernel for frac ∈ (0, 1): k[j+L−1] = sinc(j−frac)·hann(j−frac) for
// j ∈ [−L+1, L]. The Hann window is centered on the delayed impulse so the
// kernel sums to ~1 and stays flat through the candidate band.
func SincDelayKernel(frac float64, k *[SincKernelLen]float64) {
	const l = SincHalfWidth
	for j := -l + 1; j <= l; j++ {
		x := float64(j) - frac
		var s float64
		if math.Abs(x) < 1e-12 {
			s = 1
		} else {
			s = math.Sin(math.Pi*x) / (math.Pi * x)
		}
		// Hann window centered on the delayed impulse.
		w := 0.5 * (1 + math.Cos(math.Pi*x/float64(l)))
		if x < -float64(l) || x > float64(l) {
			w = 0
		}
		k[j+l-1] = s * w
	}
}

// FIRTap is one impulse-response component to fold into a SparseFIR: a
// (possibly fractional) delay in destination samples and an amplitude gain.
type FIRTap struct {
	Offset float64
	Gain   float64
}

// FIRSegment is one contiguous run of composite-kernel coefficients.
// Coeffs[i] weights dst[Start+i] for a source sample whose nominal (zero
// delay) destination index is 0; i.e. mixing src through the segment adds
// src[n]·Coeffs[i] into dst[Start+n+i].
type FIRSegment struct {
	Start  int
	Coeffs []float64
}

// SparseFIR is a precomputed sparse impulse response: several fractional-
// delay taps folded into a few dense coefficient segments. Taps closer than
// segmentMergeSlack destination samples coalesce into one segment (transducer
// smearing taps sit within a few samples of the direct path, so a typical
// path folds direct+transducer into one short segment plus one small segment
// per distant reflection cluster); applying the FIR therefore costs
// Σ len(segment) multiply-adds per source sample instead of taps·2L.
//
// A SparseFIR is immutable after construction and safe for concurrent reads.
type SparseFIR struct {
	Segments []FIRSegment
	// TapCount is the number of taps folded in (diagnostics and op-count
	// tests).
	TapCount int
}

// segmentMergeSlack is the largest gap (in destination samples) between two
// taps' kernel supports that still coalesces them into one dense segment.
// Bridging a small gap wastes a few zero-coefficient multiply-adds but saves
// per-segment loop overhead; distant reflections stay in their own segments,
// which is where the "sparse" in SparseFIR comes from.
const segmentMergeSlack = 16

// Width returns the total number of stored coefficients across all segments
// — the per-source-sample multiply-add cost of MixSparseFIR.
func (f *SparseFIR) Width() int {
	w := 0
	for _, seg := range f.Segments {
		w += len(seg.Coeffs)
	}
	return w
}

// tapSupport returns the closed integer coefficient range [lo, hi] a tap
// occupies, mirroring audio.MixFloatSincGain: a pure integer delay is a
// single unit coefficient at floor(offset); a fractional delay spans the full
// kernel [floor−L+1, floor+L].
func tapSupport(offset float64) (lo, hi int, integer bool) {
	base := int(math.Floor(offset))
	frac := offset - math.Floor(offset)
	if frac < IntegerDelayEps {
		return base, base, true
	}
	return base - SincHalfWidth + 1, base + SincHalfWidth, false
}

// NewSparseFIR folds taps into a composite sparse kernel. Tap kernels are
// accumulated in tap order with coefficients ascending, so rebuilding from
// the same taps is bit-deterministic. The result owns its storage (two heap
// allocations regardless of tap count) and never aliases the input.
func NewSparseFIR(taps []FIRTap) *SparseFIR {
	f := &SparseFIR{TapCount: len(taps)}
	if len(taps) == 0 {
		return f
	}

	// Sort tap indices by support start to plan the merged segments.
	order := make([]int, len(taps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, _, _ := tapSupport(taps[order[a]].Offset)
		lb, _, _ := tapSupport(taps[order[b]].Offset)
		return la < lb
	})

	// Plan merged [lo, hi] coefficient ranges.
	type span struct{ lo, hi int }
	spans := make([]span, 0, 4)
	for _, ti := range order {
		lo, hi, _ := tapSupport(taps[ti].Offset)
		if n := len(spans); n > 0 && lo <= spans[n-1].hi+1+segmentMergeSlack {
			if hi > spans[n-1].hi {
				spans[n-1].hi = hi
			}
			continue
		}
		spans = append(spans, span{lo, hi})
	}

	// One backing array for every segment keeps the allocation count
	// constant in the tap count (the renderer's zero-alloc contract).
	total := 0
	for _, s := range spans {
		total += s.hi - s.lo + 1
	}
	backing := make([]float64, total)
	f.Segments = make([]FIRSegment, len(spans))
	at := 0
	for i, s := range spans {
		n := s.hi - s.lo + 1
		f.Segments[i] = FIRSegment{Start: s.lo, Coeffs: backing[at : at+n : at+n]}
		at += n
	}

	// Accumulate every tap's kernel into its segment, in original tap order.
	var kernel [SincKernelLen]float64
	for _, tap := range taps {
		lo, hi, integer := tapSupport(tap.Offset)
		seg := f.segmentContaining(lo)
		if integer {
			seg.Coeffs[lo-seg.Start] += tap.Gain
			continue
		}
		frac := tap.Offset - math.Floor(tap.Offset)
		SincDelayKernel(frac, &kernel)
		dst := seg.Coeffs[lo-seg.Start : hi-seg.Start+1]
		for j, kv := range kernel {
			dst[j] += tap.Gain * kv
		}
	}
	return f
}

// segmentContaining returns the segment whose range holds coefficient index
// lo. Segments are sorted and disjoint by construction.
func (f *SparseFIR) segmentContaining(lo int) *FIRSegment {
	i := sort.Search(len(f.Segments), func(i int) bool {
		seg := &f.Segments[i]
		return lo < seg.Start+len(seg.Coeffs)
	})
	return &f.Segments[i]
}
