package dsp

import (
	"math"
	"testing"
)

func TestNewSparseFIRSingleFractionalTap(t *testing.T) {
	const offset, gain = 10.3, 0.7
	f := NewSparseFIR([]FIRTap{{Offset: offset, Gain: gain}})
	if f.TapCount != 1 {
		t.Fatalf("TapCount = %d, want 1", f.TapCount)
	}
	if len(f.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(f.Segments))
	}
	seg := f.Segments[0]
	wantStart := 10 - SincHalfWidth + 1
	if seg.Start != wantStart {
		t.Fatalf("Start = %d, want %d", seg.Start, wantStart)
	}
	if len(seg.Coeffs) != SincKernelLen {
		t.Fatalf("width = %d, want %d", len(seg.Coeffs), SincKernelLen)
	}
	// frac must be derived exactly as the builder derives it (offset −
	// floor(offset) ≠ the literal 0.3 by one ulp).
	var kernel [SincKernelLen]float64
	SincDelayKernel(offset-math.Floor(offset), &kernel)
	for i, c := range seg.Coeffs {
		if want := gain * kernel[i]; c != want {
			t.Fatalf("coeff %d = %g, want %g", i, c, want)
		}
	}
}

func TestNewSparseFIRIntegerTapIsImpulse(t *testing.T) {
	f := NewSparseFIR([]FIRTap{{Offset: 5, Gain: 0.25}})
	if len(f.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(f.Segments))
	}
	seg := f.Segments[0]
	if seg.Start != 5 || len(seg.Coeffs) != 1 || seg.Coeffs[0] != 0.25 {
		t.Fatalf("integer tap folded as %+v, want unit impulse 0.25 at 5", seg)
	}
	// A fractional offset just under the integer threshold takes the same
	// impulse path as audio.MixFloatSincGain.
	f = NewSparseFIR([]FIRTap{{Offset: 5 + IntegerDelayEps/2, Gain: 1}})
	if len(f.Segments[0].Coeffs) != 1 {
		t.Fatalf("offset within IntegerDelayEps not folded as impulse: width %d", len(f.Segments[0].Coeffs))
	}
}

func TestNewSparseFIRMergesCloseTapsSplitsDistant(t *testing.T) {
	// Two taps 3 samples apart: their kernel supports overlap → one segment.
	close := NewSparseFIR([]FIRTap{{Offset: 0.5, Gain: 1}, {Offset: 3.5, Gain: 0.1}})
	if len(close.Segments) != 1 {
		t.Fatalf("close taps: %d segments, want 1", len(close.Segments))
	}
	if w := close.Width(); w != SincKernelLen+3 {
		t.Fatalf("close taps width = %d, want %d", w, SincKernelLen+3)
	}
	// Two taps 500 samples apart: far beyond the merge slack → two segments.
	far := NewSparseFIR([]FIRTap{{Offset: 0.5, Gain: 1}, {Offset: 500.5, Gain: 0.1}})
	if len(far.Segments) != 2 {
		t.Fatalf("far taps: %d segments, want 2", len(far.Segments))
	}
	if w := far.Width(); w != 2*SincKernelLen {
		t.Fatalf("far taps width = %d, want %d", w, 2*SincKernelLen)
	}
	if far.Segments[0].Start >= far.Segments[1].Start {
		t.Fatalf("segments not sorted: %d, %d", far.Segments[0].Start, far.Segments[1].Start)
	}
}

func TestNewSparseFIRAccumulatesCoincidentTaps(t *testing.T) {
	one := NewSparseFIR([]FIRTap{{Offset: 7.25, Gain: 0.6}})
	two := NewSparseFIR([]FIRTap{{Offset: 7.25, Gain: 0.2}, {Offset: 7.25, Gain: 0.4}})
	if len(two.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(two.Segments))
	}
	for i, c := range two.Segments[0].Coeffs {
		want := one.Segments[0].Coeffs[i]
		if math.Abs(c-want) > 1e-15*math.Abs(want)+1e-18 {
			t.Fatalf("coeff %d = %g, want %g", i, c, want)
		}
	}
}

func TestNewSparseFIREmptyAndDeterministic(t *testing.T) {
	if f := NewSparseFIR(nil); len(f.Segments) != 0 || f.TapCount != 0 || f.Width() != 0 {
		t.Fatalf("empty tap set folded to %+v", f)
	}
	taps := []FIRTap{{Offset: 12.7, Gain: 0.3}, {Offset: 90.1, Gain: -0.05}, {Offset: 14, Gain: 0.9}}
	a, b := NewSparseFIR(taps), NewSparseFIR(taps)
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(a.Segments), len(b.Segments))
	}
	for s := range a.Segments {
		if a.Segments[s].Start != b.Segments[s].Start {
			t.Fatalf("segment %d starts differ", s)
		}
		for i := range a.Segments[s].Coeffs {
			if a.Segments[s].Coeffs[i] != b.Segments[s].Coeffs[i] {
				t.Fatalf("rebuild not bit-deterministic at segment %d coeff %d", s, i)
			}
		}
	}
}
