// Package dsp provides the digital-signal-processing primitives PIANO's
// distance-estimation protocol is built on: planned real-input FFTs, power
// spectra (full, band-restricted, and streaming), window functions,
// sinusoid synthesis, cross-correlation, Goertzel single-bin evaluation,
// and the sparse composite FIR kernels the acoustic renderer convolves
// with. The package is deliberately dependency-free (stdlib only) because
// the simulated IoT devices run the exact same code an embedded port would.
//
// Key types: FFTPlan precomputes twiddle/bit-reversal tables for one window
// length and transforms real input with zero allocations into caller
// scratch (PowerSpectrumInto, and PowerSpectrumBandInto which unpacks only
// the candidate band; the *PCM variants ingest raw int16 with the exact
// widening conversion fused into the pack stage); PlanSet pins one plan
// per window length for lock-free hot-path lookup; SlidingBandDFT advances
// band spectra incrementally per hop with periodic full-FFT resync, used
// below the measured StreamingWins break-even, feeding on float64 or raw
// PCM with a mutable hop size (SetStep); BandScorer picks Goertzel vs FFT
// by the measured crossover; SparseFIR folds many fractional-delay taps
// (FIRTap) into a few dense coefficient segments using the canonical
// Hann-windowed sinc kernel (SincDelayKernel — the single source of truth
// shared with audio's per-tap mixer); HopGrid is the stateless chunk
// arithmetic behind online ingestion — which coarse windows and
// resync-aligned blocks a streamed prefix of samples completes, so a
// chunked feed scans exactly the grid a batch scan would.
//
// Invariants: *Into methods write into caller-owned scratch and allocate
// nothing on the hot path; plan methods are safe for concurrent use but
// workspaces are not (one per goroutine); naive reference implementations
// (CrossCorrelateNaive) are kept as test oracles for every optimized path,
// agreeing to floating-point rounding rather than bit-exactly.
package dsp
