package dsp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// streamTestRecording builds a deterministic wideband recording with a few
// strong in-band tones, shaped like detection input.
func streamTestRecording(seed int64, total, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	rec := make([]float64, total)
	for i := range rec {
		rec[i] = 40 * rng.NormFloat64()
	}
	for _, bin := range []int{850, 1200, 1700} {
		f := float64(bin) / float64(n)
		ph := rng.Float64() * 2 * math.Pi
		for i := range rec {
			rec[i] += 900 * math.Cos(2*math.Pi*f*float64(i)+ph)
		}
	}
	return rec
}

// TestPowerSpectrumBandIntoExactParity pins the band-restricted unpack to
// the full unpack bit for bit on every bin of the band (and its conjugate
// mirror): the band loop must run exactly the same arithmetic.
func TestPowerSpectrumBandIntoExactParity(t *testing.T) {
	const n = 4096
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	rec := streamTestRecording(31, n, n)
	scratch := plan.NewScratch()
	full := make([]float64, n)
	if err := plan.PowerSpectrumInto(full, rec, scratch); err != nil {
		t.Fatal(err)
	}

	for _, band := range [][2]int{{841, 1780}, {0, 1}, {0, n/2 + 1}, {n / 2, n/2 + 1}, {1, 7}, {2040, 2049}} {
		lo, hi := band[0], band[1]
		got := make([]float64, n)
		for i := range got {
			got[i] = math.NaN() // poison: untouched bins must stay untouched
		}
		if err := plan.PowerSpectrumBandInto(got, rec, scratch, lo, hi); err != nil {
			t.Fatalf("band [%d, %d): %v", lo, hi, err)
		}
		written := make(map[int]bool)
		for k := lo; k < hi; k++ {
			written[k] = true
			if k > 0 && k < n/2 {
				written[n-k] = true
			}
		}
		for i := range got {
			if written[i] {
				if got[i] != full[i] {
					t.Fatalf("band [%d, %d) bin %d: %g != full %g (must be bit-identical)", lo, hi, i, got[i], full[i])
				}
			} else if !math.IsNaN(got[i]) {
				t.Fatalf("band [%d, %d) bin %d written outside the band", lo, hi, i)
			}
		}
	}

	// Degenerate bands are refused.
	dst := make([]float64, n)
	for _, band := range [][2]int{{-1, 5}, {5, 5}, {9, 3}, {0, n/2 + 2}} {
		if err := plan.PowerSpectrumBandInto(dst, rec, scratch, band[0], band[1]); err == nil {
			t.Fatalf("band [%d, %d) accepted", band[0], band[1])
		}
	}
}

// TestBandSpectrumIntoMatchesPower: the SoA complex band spectrum must square
// to exactly the band-restricted powers (it is the same unpack arithmetic).
func TestBandSpectrumIntoMatchesPower(t *testing.T) {
	const n = 4096
	const lo, hi = 0, n/2 + 1 // full range, including DC and Nyquist specials
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	rec := streamTestRecording(32, n, n)
	scratch := plan.NewScratch()
	pow := make([]float64, n)
	if err := plan.PowerSpectrumInto(pow, rec, scratch); err != nil {
		t.Fatal(err)
	}
	re := make([]float64, hi-lo)
	im := make([]float64, hi-lo)
	if err := plan.BandSpectrumInto(re, im, rec, scratch, lo, hi); err != nil {
		t.Fatal(err)
	}
	invN := 2 / float64(n)
	norm := invN * invN
	for k := lo; k < hi; k++ {
		got := (re[k-lo]*re[k-lo] + im[k-lo]*im[k-lo]) * norm
		if got != pow[k] {
			t.Fatalf("bin %d: |X|²·norm = %g != PowerSpectrumInto %g", k, got, pow[k])
		}
	}
}

// TestSlidingBandDFTParity drives the sliding engine across several resync
// boundaries (Reset every StreamResyncHops hops, incremental advances in
// between) and pins every window's band powers against an independent
// band-restricted FFT to within 1e-9 relative — the engine's drift budget.
func TestSlidingBandDFTParity(t *testing.T) {
	const n = 4096
	const lo, hi = 841, 1780 // the paper's candidate band
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{1, 7, 16, 50} {
		hops := 3*StreamResyncHops + 5 // cross several resync boundaries
		rec := streamTestRecording(33, n+hops*step+1, n)
		sd, err := NewSlidingBandDFT(plan, lo, hi, step)
		if err != nil {
			t.Fatal(err)
		}
		scratch := plan.NewScratch()
		want := make([]float64, n)
		got := make([]float64, n)
		var ref float64 // scale for the relative tolerance
		for h := 0; h <= hops; h++ {
			pos := h * step
			if h%StreamResyncHops == 0 {
				if err := sd.Reset(rec, pos); err != nil {
					t.Fatal(err)
				}
			} else if err := sd.Advance(); err != nil {
				t.Fatal(err)
			}
			if sd.Pos() != pos {
				t.Fatalf("step %d hop %d: pos %d != %d", step, h, sd.Pos(), pos)
			}
			if err := sd.PowersInto(got); err != nil {
				t.Fatal(err)
			}
			if err := plan.PowerSpectrumBandInto(want, rec[pos:pos+n], scratch, lo, hi); err != nil {
				t.Fatal(err)
			}
			for k := lo; k < hi; k++ {
				if want[k] > ref {
					ref = want[k]
				}
			}
			for k := lo; k < hi; k++ {
				if diff := math.Abs(got[k] - want[k]); diff > 1e-9*ref {
					t.Fatalf("step %d hop %d bin %d: sliding %g vs fft %g (drift %g > 1e-9·%g)",
						step, h, k, got[k], want[k], diff, ref)
				}
				if got[n-k] != got[k] {
					t.Fatalf("step %d hop %d bin %d: mirror %g != %g", step, h, k, got[n-k], got[k])
				}
			}
			// Right after a resync the powers are bit-identical, not just
			// within tolerance: Reset runs the exact unpack.
			if h%StreamResyncHops == 0 {
				for k := lo; k < hi; k++ {
					if got[k] != want[k] {
						t.Fatalf("step %d resync hop %d bin %d: %g != %g (must be exact)", step, h, k, got[k], want[k])
					}
				}
			}
		}
	}
}

// TestSlidingBandDFTMisuse: bounds and ordering errors are reported, not
// silently mangled.
func TestSlidingBandDFTMisuse(t *testing.T) {
	const n = 1024
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSlidingBandDFT(nil, 0, 1, 1); err == nil {
		t.Fatal("nil plan accepted")
	}
	for _, bad := range [][3]int{{-1, 5, 1}, {5, 5, 1}, {0, n/2 + 2, 1}, {0, 5, 0}} {
		if _, err := NewSlidingBandDFT(plan, bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("bad geometry %v accepted", bad)
		}
	}
	sd, err := NewSlidingBandDFT(plan, 10, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Advance(); err == nil {
		t.Fatal("Advance before Reset accepted")
	}
	rec := streamTestRecording(34, n+4, n)
	if err := sd.Reset(rec, 8); err == nil {
		t.Fatal("Reset past recording end accepted")
	}
	if err := sd.Reset(rec, 0); err != nil {
		t.Fatal(err)
	}
	if err := sd.Advance(); err == nil {
		t.Fatal("Advance past recording end accepted")
	}
	short := make([]float64, 16)
	if err := sd.PowersInto(short); err == nil {
		t.Fatal("short dst accepted")
	}
}

// TestStreamingWinsShape: the break-even must be monotone (streaming can
// only lose ground as bins·step grows) and land on the right side for the
// workloads the detector actually runs.
func TestStreamingWinsShape(t *testing.T) {
	const n, bins = 4096, 939
	if StreamingWins(n, bins, 1000) {
		t.Fatal("paper's coarse step 1000 must use independent FFTs")
	}
	if !StreamingWins(n, bins, 1) {
		t.Fatal("hop of 1 sample must stream")
	}
	last := true
	for step := 1; step <= 2048; step *= 2 {
		w := StreamingWins(n, bins, step)
		if w && !last {
			t.Fatalf("break-even not monotone at step %d", step)
		}
		last = w
	}
	if StreamingWins(0, bins, 1) || StreamingWins(n, 0, 1) || StreamingWins(n, bins, 0) {
		t.Fatal("degenerate geometry must not stream")
	}
}

func BenchmarkPowerSpectrumBandInto(b *testing.B) {
	const n = 4096
	const lo, hi = 841, 1780 // the paper's candidate band (~45% of bins)
	plan, err := NewFFTPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	rec := streamTestRecording(41, n, n)
	scratch := plan.NewScratch()
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.PowerSpectrumBandInto(dst, rec, scratch, lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlidingBandDFTAdvance measures the per-hop incremental update at
// a few hop sizes around the streaming break-even (cost ∝ bins·step).
func BenchmarkSlidingBandDFTAdvance(b *testing.B) {
	const n = 4096
	const lo, hi = 841, 1780
	plan, err := NewFFTPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, step := range []int{1, 10, 16, 64} {
		b.Run(fmt.Sprintf("step-%d", step), func(b *testing.B) {
			rec := streamTestRecording(42, 4*n, n)
			sd, err := NewSlidingBandDFT(plan, lo, hi, step)
			if err != nil {
				b.Fatal(err)
			}
			if err := sd.Reset(rec, 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sd.Pos()+step+n > len(rec) {
					b.StopTimer()
					if err := sd.Reset(rec, 0); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := sd.Advance(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
