package dsp

import (
	"fmt"
	"math"
)

// Goertzel computes the squared magnitude of a single DFT bin of x using
// the Goertzel recurrence, normalized identically to PowerSpectrum (a
// bin-centered sinusoid of amplitude A yields ≈ A²).
//
// Algorithm 2 only reads the candidate bins (30 candidates × (2θ+1) bins ≈
// 330 of 4096), which makes Goertzel look like an attractive replacement
// for the full FFT. BenchmarkGoertzelVsFFT shows it is not: Goertzel costs
// O(N) per bin, so the break-even is ≈ log₂N ≈ 12 bins and the 330-bin
// workload is ~18× slower than one 4096-point FFT. The detector therefore
// keeps the FFT; Goertzel remains available for single-tone tasks (e.g.
// wake-tone detection on severely constrained devices).
func Goertzel(x []float64, bin int) (float64, error) {
	n := len(x)
	if n == 0 {
		return 0, fmt.Errorf("dsp: goertzel: empty input")
	}
	if bin < 0 || bin >= n {
		return 0, fmt.Errorf("dsp: goertzel: bin %d out of range [0, %d)", bin, n)
	}
	w := 2 * math.Pi * float64(bin) / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// |X[k]|² = s1² + s2² − coeff·s1·s2
	mag2 := s1*s1 + s2*s2 - coeff*s1*s2
	norm := 2 / float64(n)
	return mag2 * norm * norm, nil
}

// GoertzelBand sums Goertzel powers over bins [center−theta, center+theta],
// clamped to the valid range — the drop-in counterpart of BandPower.
func GoertzelBand(x []float64, center, theta int) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("dsp: goertzel band: empty input")
	}
	lo := center - theta
	if lo < 0 {
		lo = 0
	}
	hi := center + theta
	if hi > len(x)-1 {
		hi = len(x) - 1
	}
	var sum float64
	for k := lo; k <= hi; k++ {
		p, err := Goertzel(x, k)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum, nil
}
