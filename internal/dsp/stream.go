package dsp

import "fmt"

// StreamResyncHops is the recommended maximum number of incremental hops a
// SlidingBandDFT should take between full-FFT resynchronizations (Reset
// calls), and the contiguous hop-range (block) size the detector's
// range-claiming coarse scan uses.
//
// Drift analysis: each single-sample advance multiplies the per-bin state by
// a unit-modulus rotation and adds one sample, so rounding error grows at
// most linearly in the number of samples slid: after H hops of S samples the
// accumulated relative error is O(H·S·ε) with ε = 2⁻⁵². Near the streaming
// break-even (S ≲ 15 at N = 4096, see StreamingWins) that is at worst
// 64·15·2.2e-16 ≈ 2e-13 relative — three orders of magnitude inside the
// 1e-9 parity the spectral engine promises elsewhere. Larger hops drift
// proportionally more but are exactly the hops StreamingWins routes to
// independent FFTs anyway, so the incremental path never runs long enough
// to matter.
const StreamResyncHops = 64

// streamAdvanceNsPerOp and bandFFTNsPerUnitNLog2N are the measured cost
// constants behind StreamingWins, taken on the reference machine (see
// PERFORMANCE.md and BenchmarkSlidingBandDFTAdvance /
// BenchmarkPowerSpectrumBandInto): the SoA rotate-accumulate inner loop
// retires ~1.3 ns per (bin, sample) update, and the fused packed
// half-length FFT plus band-restricted unpack costs ~0.38 ns per
// n·log₂(n) unit (≈18.8 µs at N = 4096 with the paper's 939-bin band).
// Only the ratio matters; both paths scale linearly on the machines we
// target.
const (
	streamAdvanceNsPerOp   = 1.3
	bandFFTNsPerUnitNLog2N = 0.38
)

// StreamingWins reports whether advancing a band-limited sliding DFT by one
// hop of step samples (cost ∝ bins·step rotate-accumulate updates) beats
// recomputing an independent band-restricted FFT for the new window (cost ∝
// n·log₂n butterflies + band unpack). The detector consults this the same
// way BandScorer consults its Goertzel/FFT crossover: once per scan, from
// measured constants rather than naive op counts.
//
// At the paper's parameters (n = 4096, 939-bin candidate band) the
// break-even hop is ~15 samples: the default coarse step of 1000 stays on
// independent FFTs, while high-resolution scanning configurations (step ≤
// ~15, or narrower bands pushing the break-even up) stream.
func StreamingWins(n, bins, step int) bool {
	if n < 2 || bins < 1 || step < 1 {
		return false
	}
	log2n := 0
	for v := n; v > 1; v >>= 1 {
		log2n++
	}
	streamNs := streamAdvanceNsPerOp * float64(bins) * float64(step)
	fftNs := bandFFTNsPerUnitNLog2N * float64(n) * float64(log2n)
	return streamNs < fftNs
}

// SlidingBandDFT advances the DFT values of one sliding window over a
// recording incrementally, restricted to the canonical half-spectrum bin
// band [lo, hi). Where an independent FFT pays O(N log N) per window, the
// sliding update pays O((hi−lo)·step) per hop — the winner for small hops
// and narrow bands (see StreamingWins).
//
// The per-bin state is kept as split re/im float64 slices (SoA) so the
// per-sample rotate-accumulate loop vectorizes; the rotation table is
// shared, immutable, and cached on the plan. State drifts by O(hops·step·ε)
// between Reset calls (see StreamResyncHops for the resync policy); a Reset
// recomputes the band exactly via the plan's packed FFT, so powers read
// right after Reset are bit-identical to PowerSpectrumBandInto.
//
// The engine slides over either representation of a recording: float64
// samples (Reset) or raw int16 PCM (ResetPCM), with the widening conversion
// fused into the per-sample feed — PCM scans are bit-identical to scanning
// the converted recording, without the copy.
//
// A SlidingBandDFT owns its state and is NOT safe for concurrent use; build
// one per worker. Construction is cheap once the plan's rotation table for
// the band exists (first construction per (plan, band) builds and caches
// it).
type SlidingBandDFT struct {
	plan    *FFTPlan
	lo, hi  int
	step    int
	rot     *bandRot
	re, im  []float64
	scratch []complex128

	// Exactly one of rec/recPCM is non-nil between a Reset and the next
	// Release: the recording in whichever representation the caller holds.
	rec    []float64
	recPCM []int16
	pos    int // current window start; -1 before the first Reset
}

// NewSlidingBandDFT builds a sliding engine on plan for canonical bins
// [lo, hi) (0 ≤ lo < hi ≤ N/2+1) hopping step ≥ 1 samples per Advance.
func NewSlidingBandDFT(plan *FFTPlan, lo, hi, step int) (*SlidingBandDFT, error) {
	if plan == nil {
		return nil, fmt.Errorf("dsp: sliding band dft: nil plan")
	}
	if lo < 0 || hi <= lo || hi > plan.half+1 {
		return nil, fmt.Errorf("dsp: sliding band dft band [%d, %d) outside [0, %d]", lo, hi, plan.half+1)
	}
	if step < 1 {
		return nil, fmt.Errorf("dsp: sliding band dft step %d must be ≥ 1", step)
	}
	return &SlidingBandDFT{
		plan:    plan,
		lo:      lo,
		hi:      hi,
		step:    step,
		rot:     plan.bandRotTable(lo, hi),
		re:      make([]float64, hi-lo),
		im:      make([]float64, hi-lo),
		scratch: plan.NewScratch(),
		pos:     -1,
	}, nil
}

// Band returns the canonical bin range [lo, hi).
func (s *SlidingBandDFT) Band() (lo, hi int) { return s.lo, s.hi }

// Step returns the hop size in samples.
func (s *SlidingBandDFT) Step() int { return s.step }

// SetStep changes the hop size for subsequent Advance calls. The per-bin
// state and the cached rotation table depend only on the band, not the hop,
// so one pooled engine can serve both the coarse and the fine hop sequences
// of a scan without reallocating (the detector's workspaces rely on this).
func (s *SlidingBandDFT) SetStep(step int) error {
	if step < 1 {
		return fmt.Errorf("dsp: sliding band dft step %d must be ≥ 1", step)
	}
	s.step = step
	return nil
}

// Pos returns the current window start, or -1 before the first Reset.
func (s *SlidingBandDFT) Pos() int { return s.pos }

// Release drops the engine's reference to the recording so a pooled engine
// does not pin a finished scan's audio in memory. The next Reset re-arms
// it; Advance/PowersInto before that report the un-Reset state.
func (s *SlidingBandDFT) Release() {
	s.rec = nil
	s.recPCM = nil
	s.pos = -1
}

// recLen returns the length of whichever recording representation is armed.
func (s *SlidingBandDFT) recLen() int {
	if s.recPCM != nil {
		return len(s.recPCM)
	}
	return len(s.rec)
}

// Reset points the engine at rec[start : start+N] and computes the band
// exactly with a full packed FFT — the resynchronization that bounds drift.
func (s *SlidingBandDFT) Reset(rec []float64, start int) error {
	n := s.plan.n
	if start < 0 || start+n > len(rec) {
		return fmt.Errorf("dsp: sliding band dft window [%d, %d) outside recording of %d", start, start+n, len(rec))
	}
	if err := s.plan.BandSpectrumInto(s.re, s.im, rec[start:start+n], s.scratch, s.lo, s.hi); err != nil {
		return err
	}
	s.rec = rec
	s.recPCM = nil
	s.pos = start
	return nil
}

// ResetPCM is Reset over raw int16 PCM: the resynchronizing FFT fuses the
// widening conversion into its pack stage (dsp.BandSpectrumIntoPCM), and
// subsequent Advance calls convert each slid sample on the fly, so the
// stream is bit-identical to Reset over the converted recording with no
// float64 copy anywhere.
func (s *SlidingBandDFT) ResetPCM(rec []int16, start int) error {
	n := s.plan.n
	if start < 0 || start+n > len(rec) {
		return fmt.Errorf("dsp: sliding band dft window [%d, %d) outside recording of %d", start, start+n, len(rec))
	}
	if err := s.plan.BandSpectrumIntoPCM(s.re, s.im, rec[start:start+n], s.scratch, s.lo, s.hi); err != nil {
		return err
	}
	s.rec = nil
	s.recPCM = rec
	s.pos = start
	return nil
}

// Advance slides the window forward by Step samples, updating every band
// bin incrementally: per slid sample, X[k] ← (X[k] + x[i+N] − x[i])·e^(+2πik/N).
func (s *SlidingBandDFT) Advance() error {
	if s.pos < 0 {
		return fmt.Errorf("dsp: sliding band dft advanced before Reset")
	}
	if s.pos+s.step+s.plan.n > s.recLen() {
		return fmt.Errorf("dsp: sliding band dft window [%d, %d) outside recording of %d", s.pos+s.step, s.pos+s.step+s.plan.n, s.recLen())
	}
	if s.recPCM != nil {
		advanceOver(s, s.recPCM)
	} else {
		advanceOver(s, s.rec)
	}
	s.pos += s.step
	return nil
}

// advanceOver is Advance's rotate-accumulate hot loop, generic over the
// recording representation (the int16 instantiation widens each slid sample
// exactly, see realSample). It does not move s.pos; Advance does.
func advanceOver[T realSample](s *SlidingBandDFT, x []T) {
	n := s.plan.n
	re, im := s.re, s.im
	rr, ri := s.rot.re, s.rot.im
	for m := 0; m < s.step; m++ {
		d := float64(x[s.pos+n+m]) - float64(x[s.pos+m])
		for k := range re {
			nr := re[k] + d
			ni := im[k]
			re[k] = nr*rr[k] - ni*ri[k]
			im[k] = nr*ri[k] + ni*rr[k]
		}
	}
}

// PowersInto writes the normalized power of every band bin into the
// full-length spectrum slice dst (len == N): dst[k] for k in [lo, hi), plus
// the conjugate mirror dst[N−k] for interior bins, exactly the entries
// PowerSpectrumBandInto writes. Entries outside the band are untouched.
func (s *SlidingBandDFT) PowersInto(dst []float64) error {
	n := s.plan.n
	if len(dst) != n {
		return fmt.Errorf("dsp: sliding band dft dst length %d, want %d", len(dst), n)
	}
	invN := 2 / float64(n)
	norm := invN * invN
	h := s.plan.half
	for k := s.lo; k < s.hi; k++ {
		xr, xi := s.re[k-s.lo], s.im[k-s.lo]
		pw := (xr*xr + xi*xi) * norm
		dst[k] = pw
		if k > 0 && k < h {
			dst[n-k] = pw
		}
	}
	return nil
}
