package dsp

import "testing"

// bruteCompleteWindows is the obvious O(Count) oracle for CompleteWindows.
func bruteCompleteWindows(g HopGrid, fed int) int {
	c := 0
	for w := 0; w < g.Count; w++ {
		if g.NeedFor(w) > fed {
			break
		}
		c++
	}
	return c
}

func TestHopGridValidate(t *testing.T) {
	good := HopGrid{Lo: 0, Step: 1000, WinLen: 4096, Count: 49, Block: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []HopGrid{
		{Lo: -1, Step: 1, WinLen: 1, Count: 1, Block: 1},
		{Lo: 0, Step: 0, WinLen: 1, Count: 1, Block: 1},
		{Lo: 0, Step: 1, WinLen: 0, Count: 1, Block: 1},
		{Lo: 0, Step: 1, WinLen: 1, Count: 0, Block: 1},
		{Lo: 0, Step: 1, WinLen: 1, Count: 1, Block: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid grid %+v accepted", i, g)
		}
	}
}

func TestHopGridCompleteWindowsMatchesBruteForce(t *testing.T) {
	grids := []HopGrid{
		{Lo: 0, Step: 1000, WinLen: 4096, Count: 49, Block: 4},    // paper coarse grid
		{Lo: 3000, Step: 10, WinLen: 4096, Count: 201, Block: 64}, // fine grid
		{Lo: 0, Step: 1, WinLen: 7, Count: 13, Block: 5},          // dense tiny
		{Lo: 5, Step: 3, WinLen: 4, Count: 6, Block: 64},          // offset, short
	}
	for gi, g := range grids {
		last := g.NeedFor(g.Count-1) + 3
		for fed := 0; fed <= last; fed++ {
			want := bruteCompleteWindows(g, fed)
			if got := g.CompleteWindows(fed); got != want {
				t.Fatalf("grid %d fed=%d: CompleteWindows=%d want %d", gi, fed, got, want)
			}
		}
	}
}

func TestHopGridCompleteWindowsMonotoneAndSaturating(t *testing.T) {
	g := HopGrid{Lo: 0, Step: 1000, WinLen: 4096, Count: 49, Block: StreamResyncHops}
	prev := 0
	for fed := 0; fed <= g.NeedFor(g.Count-1)+5000; fed += 97 {
		c := g.CompleteWindows(fed)
		if c < prev {
			t.Fatalf("fed=%d: frontier went backwards %d -> %d", fed, prev, c)
		}
		if c > g.Count {
			t.Fatalf("fed=%d: frontier %d exceeds Count %d", fed, c, g.Count)
		}
		prev = c
	}
	if prev != g.Count {
		t.Fatalf("frontier saturated at %d, want %d", prev, g.Count)
	}
}

func TestHopGridBlocks(t *testing.T) {
	g := HopGrid{Lo: 0, Step: 10, WinLen: 100, Count: 130, Block: 64}
	if got := g.Blocks(); got != 3 {
		t.Fatalf("Blocks=%d want 3", got)
	}
	// Block bounds tile [0, Count) exactly.
	at := 0
	for b := 0; b < g.Blocks(); b++ {
		w0, w1 := g.BlockBounds(b)
		if w0 != at || w1 <= w0 || w1 > g.Count {
			t.Fatalf("block %d bounds [%d, %d) at frontier %d", b, w0, w1, at)
		}
		at = w1
	}
	if at != g.Count {
		t.Fatalf("blocks tile to %d, want %d", at, g.Count)
	}

	// A whole block completes only when its last window does; the final
	// short block completes with the grid.
	if got := g.CompleteBlocks(g.NeedFor(63) - 1); got != 0 {
		t.Fatalf("CompleteBlocks just before window 63 closes = %d, want 0", got)
	}
	if got := g.CompleteBlocks(g.NeedFor(63)); got != 1 {
		t.Fatalf("CompleteBlocks at window 63 close = %d, want 1", got)
	}
	if got := g.CompleteBlocks(g.NeedFor(g.Count - 1)); got != g.Blocks() {
		t.Fatalf("CompleteBlocks at grid close = %d, want %d", got, g.Blocks())
	}
}

// TestHopGridWindowsOverlapping checks the lost-span→window mapping
// against a brute-force sweep over every window, across several grid
// shapes and span positions (block edges, 1-sample spans, empty spans).
func TestHopGridWindowsOverlapping(t *testing.T) {
	grids := []HopGrid{
		{Lo: 0, Step: 1000, WinLen: 4410, Count: 49, Block: 64},
		{Lo: 0, Step: 10, WinLen: 100, Count: 130, Block: 64},
		{Lo: 7, Step: 3, WinLen: 5, Count: 40, Block: 4},
	}
	for gi, g := range grids {
		spans := [][2]int{
			{0, 1},
			{g.WindowStart(3), g.WindowStart(3) + 1},            // window-start edge
			{g.NeedFor(3) - 1, g.NeedFor(3)},                    // last sample of a window
			{g.NeedFor(3), g.NeedFor(3) + 1},                    // just past a window
			{g.WindowStart(5), g.NeedFor(7)},                    // exact multi-window span
			{g.NeedFor(g.Count - 1), g.NeedFor(g.Count-1) + 50}, // past the grid
			{-20, 1},
			{15, 15}, // empty
			{0, g.NeedFor(g.Count-1) + 100}, // everything
		}
		for _, sp := range spans {
			lo, hi := sp[0], sp[1]
			w0, w1 := g.WindowsOverlapping(lo, hi)
			for w := 0; w < g.Count; w++ {
				start := g.WindowStart(w)
				want := hi > lo && start < hi && start+g.WinLen > lo
				got := w >= w0 && w < w1
				if got != want {
					t.Fatalf("grid %d span [%d,%d): window %d in [%d,%d)=%v, brute force %v",
						gi, lo, hi, w, w0, w1, got, want)
				}
			}
			if w0 < 0 || w1 > g.Count || w0 > w1 {
				t.Fatalf("grid %d span [%d,%d): malformed range [%d,%d)", gi, lo, hi, w0, w1)
			}
		}
	}
}
