package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := DFTNaive(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-7*float64(n) {
				t.Fatalf("n=%d bin %d: fft=%v dft=%v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 100} {
		x := make([]complex128, n)
		if err := FFT(x); err == nil {
			t.Errorf("FFT accepted length %d", n)
		}
		if err := IFFT(x); err == nil {
			t.Errorf("IFFT accepted length %d", n)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 512)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, c := range x {
		freqEnergy += real(c)*real(c) + imag(c)*imag(c)
	}
	freqEnergy /= float64(len(x))
	if !almostEqual(timeEnergy, freqEnergy, 1e-6*timeEnergy) {
		t.Fatalf("Parseval violated: time=%g freq=%g", timeEnergy, freqEnergy)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(r.NormFloat64(), r.NormFloat64())
			b[i] = complex(r.NormFloat64(), r.NormFloat64())
			sum[i] = a[i] + b[i]
		}
		if err := FFT(a); err != nil {
			return false
		}
		if err := FFT(b); err != nil {
			return false
		}
		if err := FFT(sum); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRealMatchesComplexPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := FFTReal(x)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(x))
	for i, v := range x {
		want[i] = complex(v, 0)
	}
	if err := FFT(want); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 128)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, c := range x {
		if cmplx.Abs(c-1) > 1e-10 {
			t.Fatalf("impulse spectrum bin %d = %v, want 1", i, c)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 4095: 4096, 4096: 4096, 4097: 8192}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 4096} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 4095} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func BenchmarkFFT4096(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}
