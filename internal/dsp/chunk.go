package dsp

import "fmt"

// HopGrid is the chunk-arrival companion to SlidingBandDFT: the fixed
// arithmetic window grid of one scan pass — windows start at
// Lo, Lo+Step, …, Lo+(Count−1)·Step, each WinLen samples long — together
// with the resync-block structure the scan engine claims work on (Block
// windows per block, dsp.StreamResyncHops for streaming scans). As PCM is
// appended chunk by chunk, the grid reports how many leading windows (and
// how many whole blocks) are fully contained in the audio received so far,
// so an incremental scan can advance exactly to the frontier — on the same
// grid, in the same order, as a batch scan of the complete recording —
// and no further.
//
// HopGrid is pure arithmetic over a value receiver: it holds no state and
// is trivially safe to share.
type HopGrid struct {
	// Lo is the first window's start sample.
	Lo int
	// Step is the hop between consecutive window starts.
	Step int
	// WinLen is each window's length in samples.
	WinLen int
	// Count is the total number of windows in the grid.
	Count int
	// Block is the resync-block size in windows (StreamResyncHops for
	// streaming scans); CompleteBlocks reports in units of it.
	Block int
}

// Validate checks grid sanity.
func (g HopGrid) Validate() error {
	switch {
	case g.Lo < 0:
		return fmt.Errorf("dsp: hop grid lo %d negative", g.Lo)
	case g.Step < 1:
		return fmt.Errorf("dsp: hop grid step %d must be ≥ 1", g.Step)
	case g.WinLen < 1:
		return fmt.Errorf("dsp: hop grid window length %d must be ≥ 1", g.WinLen)
	case g.Count < 1:
		return fmt.Errorf("dsp: hop grid window count %d must be ≥ 1", g.Count)
	case g.Block < 1:
		return fmt.Errorf("dsp: hop grid block size %d must be ≥ 1", g.Block)
	}
	return nil
}

// WindowStart returns window w's start sample.
func (g HopGrid) WindowStart(w int) int { return g.Lo + w*g.Step }

// NeedFor returns how many samples of recording must exist before window w
// is complete: its start plus the full window length.
func (g HopGrid) NeedFor(w int) int { return g.WindowStart(w) + g.WinLen }

// CompleteWindows returns how many leading windows of the grid are fully
// contained in the first fed samples of the recording: the largest c ≤
// Count such that every window w < c satisfies NeedFor(w) ≤ fed. This is
// the scan frontier an incremental engine may score after an append.
func (g HopGrid) CompleteWindows(fed int) int {
	if fed < g.NeedFor(0) {
		return 0
	}
	c := (fed-g.Lo-g.WinLen)/g.Step + 1
	if c > g.Count {
		c = g.Count
	}
	return c
}

// CompleteBlocks returns how many whole resync blocks are complete at fed
// samples — CompleteWindows(fed)/Block, except that the grid's final block
// (which may be short) counts as complete once the last window is. Streaming
// scans resynchronize (full-FFT Reset) at block starts, so advancing
// block-by-block reproduces the batch scan's drift pattern bit-exactly.
func (g HopGrid) CompleteBlocks(fed int) int {
	c := g.CompleteWindows(fed)
	if c == g.Count {
		return g.Blocks()
	}
	return c / g.Block
}

// Blocks returns the total number of resync blocks in the grid.
func (g HopGrid) Blocks() int { return (g.Count + g.Block - 1) / g.Block }

// WindowsOverlapping returns the index range [w0, w1) of grid windows
// whose sample span [WindowStart(w), WindowStart(w)+WinLen) intersects the
// half-open sample range [lo, hi) — the windows a lost transport span
// taints. The range is clamped to [0, Count]; an empty intersection
// returns w0 == w1. This is the gap-accounting primitive of the lossy
// ingestion layer: exclusion is decided per fixed grid window, so it is a
// pure function of the lost span, independent of chunking or scan order.
func (g HopGrid) WindowsOverlapping(lo, hi int) (w0, w1 int) {
	if hi <= lo {
		return 0, 0
	}
	// First window with start+WinLen > lo, i.e. start > lo-WinLen.
	if v := lo - g.WinLen - g.Lo; v >= 0 {
		w0 = v/g.Step + 1
	}
	// First window with start ≥ hi bounds the overlap from above.
	if v := hi - g.Lo; v > 0 {
		w1 = (v + g.Step - 1) / g.Step
	}
	if w1 > g.Count {
		w1 = g.Count
	}
	if w0 > w1 {
		w0 = w1
	}
	return w0, w1
}

// BlockBounds returns block b's window range [w0, w1).
func (g HopGrid) BlockBounds(b int) (w0, w1 int) {
	w0 = b * g.Block
	w1 = w0 + g.Block
	if w1 > g.Count {
		w1 = g.Count
	}
	return w0, w1
}
