package dsp

import "testing"

func TestPlanSetPinsAndFallsBack(t *testing.T) {
	s, err := NewPlanSet(1024, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lengths(); len(got) != 2 || got[0] != 1024 || got[1] != 4096 {
		t.Fatalf("lengths = %v", got)
	}
	p, err := s.Plan(4096)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedFFTPlan(4096)
	if err != nil {
		t.Fatal(err)
	}
	if p != shared {
		t.Fatal("pinned plan is not the shared instance")
	}
	// Unpinned length falls back to the process cache.
	fb, err := s.Plan(512)
	if err != nil {
		t.Fatal(err)
	}
	if fb.N() != 512 {
		t.Fatalf("fallback plan length %d", fb.N())
	}
}

func TestPlanSetRejectsBadLength(t *testing.T) {
	if _, err := NewPlanSet(1000); err == nil {
		t.Fatal("non-power-of-two length accepted")
	}
}
