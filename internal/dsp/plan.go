package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFTPlan holds the precomputed machinery for repeated transforms of one
// fixed power-of-two length: the bit-reversal permutation, the per-stage
// twiddle factors, and the half-length tables plus unpack twiddles that let
// a real-input transform run as a packed half-length complex FFT.
//
// A plan is immutable after construction and safe for concurrent use; the
// per-call scratch lives in the caller (see NewScratch), so one plan can be
// shared by a pool of workers. Building a plan costs O(n) memory and time;
// detection hot paths build one per window length and reuse it for every
// window, eliminating the per-window twiddle recomputation and the
// complex/float buffer churn of the one-shot FFTReal/PowerSpectrum path.
type FFTPlan struct {
	n    int // real-input transform length
	half int // packed complex transform length (n/2)

	fullT fftTables // tables for length-n complex transforms
	halfT fftTables // tables for length-n/2 packed real transforms

	// unpack[k] = e^{-2πik/n}, k in [0, n/2): the split twiddles that
	// recombine the packed half-length spectrum into the real-input
	// spectrum.
	unpack []complex128

	// rots caches immutable per-band rotation tables (bandRot) for the
	// sliding-DFT engine, keyed by lo<<32|hi. The cache is append-only and
	// lock-free on the read path; it does not affect the plan's logical
	// immutability (every table for a given band is identical).
	rots sync.Map
}

// fftTables is the immutable butterfly schedule for one transform length.
type fftTables struct {
	n      int
	bitrev []int32
	// twiddle is the forward-transform factor table, flattened over stages:
	// the stage with half-size h (h = 1, 2, 4, …, n/2) owns
	// twiddle[h-1 : 2h-1], whose k-th entry is e^(-2πik/(2h)).
	twiddle []complex128
}

func newFFTTables(n int) fftTables {
	t := fftTables{n: n}
	if n <= 1 {
		return t
	}
	t.bitrev = make([]int32, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		t.bitrev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	t.twiddle = make([]complex128, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wStep := complex(math.Cos(step), math.Sin(step))
		// Generate the factors with the same incremental recurrence the
		// one-shot FFT uses, so planned and unplanned transforms agree to
		// the last bit.
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			t.twiddle[half-1+k] = w
			w *= wStep
		}
	}
	return t
}

// transform runs the in-place butterfly network over x (len == t.n) using
// the precomputed tables. inverse conjugates the twiddles; normalization is
// left to the caller.
//
// Stages run in fused pairs (the radix-2² schedule): each pair combines the
// two radix-2 butterflies into one 4-point kernel that keeps intermediates
// in registers and needs only 3 complex multiplies per 4 outputs — the
// fourth twiddle of the pair is w·e^(-iπ/2), applied as an exact
// multiply-by-(−i) (swap and negate). That substitution makes the result
// differ from the one-shot radix-2 FFT by a few ULPs (e^(-iπ/2) rounds to
// (6.1e-17, −1) in the table), which is why planned transforms promise 1e-9
// agreement with the legacy path rather than bit equality. The schedule is
// fixed, so planned transforms are bit-reproducible run to run.
func (t *fftTables) transform(x []complex128, inverse bool) {
	n := t.n
	if n <= 1 {
		return
	}
	for i := 1; i < n; i++ {
		j := int(t.bitrev[i])
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	h0 := 1
	if t.stages()%2 == 1 {
		// Odd stage count: one plain radix-2 stage (twiddle 1), then pairs.
		for s := 0; s+1 < n; s += 2 {
			a, b := x[s], x[s+1]
			x[s], x[s+1] = a+b, a-b
		}
		h0 = 2
	}
	t.pairStages(x, h0, inverse)
}

func (t *fftTables) stages() int {
	stages := 0
	for v := t.n; v > 1; v >>= 1 {
		stages++
	}
	return stages
}

// pairStages runs the fused radix-2² stage pairs from half-size h0 upward,
// assuming x is already bit-reverse permuted and (when the stage count is
// odd) the first plain radix-2 stage has been applied.
func (t *fftTables) pairStages(x []complex128, h0 int, inverse bool) {
	n := t.n
	for h := h0; 4*h <= n; h *= 4 {
		quad := 4 * h
		// Slice every operand to exactly h so the loop condition j < h
		// proves all six indexings in range (bounds-check-free inner loop).
		twA := t.twiddle[h-1 : 2*h-1][:h]     // first stage of the pair (size 2h)
		twB := t.twiddle[2*h-1 : 2*h-1+h][:h] // second stage (size 4h); only the first h entries are needed
		for start := 0; start < n; start += quad {
			q0 := x[start : start+h : start+h][:h]
			q1 := x[start+h : start+2*h : start+2*h][:h]
			q2 := x[start+2*h : start+3*h : start+3*h][:h]
			q3 := x[start+3*h : start+quad : start+quad][:h]
			if inverse {
				for j := 0; j < h; j++ {
					wa := twA[j]
					wb := twB[j]
					wa = complex(real(wa), -imag(wa))
					wb = complex(real(wb), -imag(wb))
					p0, p1, p2, p3 := q0[j], q1[j], q2[j], q3[j]
					t1 := p1 * wa
					t3 := p3 * wa
					a0, a1 := p0+t1, p0-t1
					a2, a3 := p2+t3, p2-t3
					u2 := a2 * wb
					v := a3 * wb
					u3 := complex(-imag(v), real(v)) // +i·v (conjugate of −i)
					q0[j] = a0 + u2
					q2[j] = a0 - u2
					q1[j] = a1 + u3
					q3[j] = a1 - u3
				}
			} else {
				for j := 0; j < h; j++ {
					wa := twA[j]
					wb := twB[j]
					p0, p1, p2, p3 := q0[j], q1[j], q2[j], q3[j]
					t1 := p1 * wa
					t3 := p3 * wa
					a0, a1 := p0+t1, p0-t1
					a2, a3 := p2+t3, p2-t3
					u2 := a2 * wb
					v := a3 * wb
					u3 := complex(imag(v), -real(v)) // −i·v, exact
					q0[j] = a0 + u2
					q2[j] = a0 - u2
					q1[j] = a1 + u3
					q3[j] = a1 - u3
				}
			}
		}
	}
}

// NewFFTPlan builds a plan for real-input transforms of length n (a power of
// two, n ≥ 2).
func NewFFTPlan(n int) (*FFTPlan, error) {
	if !IsPowerOfTwo(n) || n < 2 {
		return nil, fmt.Errorf("dsp: fft plan of %d samples: %w", n, ErrNotPowerOfTwo)
	}
	p := &FFTPlan{
		n:     n,
		half:  n / 2,
		fullT: newFFTTables(n),
		halfT: newFFTTables(n / 2),
	}
	p.unpack = make([]complex128, p.half)
	for k := 0; k < p.half; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.unpack[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p, nil
}

// N returns the plan's real-input transform length.
func (p *FFTPlan) N() int { return p.n }

// sharedPlans caches one immutable plan per length so independent hot paths
// (detection workers, cross-correlation blocks) share twiddle tables instead
// of rebuilding them. Plans are never evicted; only a handful of lengths
// occur in practice.
var sharedPlans sync.Map // int → *FFTPlan

// SharedFFTPlan returns a process-wide cached plan for length n, building it
// on first use. The returned plan is immutable and safe for concurrent use.
func SharedFFTPlan(n int) (*FFTPlan, error) {
	if p, ok := sharedPlans.Load(n); ok {
		return p.(*FFTPlan), nil
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := sharedPlans.LoadOrStore(n, p)
	return actual.(*FFTPlan), nil
}

// NewScratch allocates the complex workspace one goroutine needs to run the
// plan's real-input transforms. Scratch is reused across calls; allocate one
// per worker, not per window.
func (p *FFTPlan) NewScratch() []complex128 {
	return make([]complex128, p.half)
}

// realSample constrains the sample representations the packed real-input
// transforms ingest: float64 samples, or raw int16 PCM whose widening
// conversion is fused into the pack stage. float64(int16) is exact for every
// representable value, so the PCM instantiations are bit-identical to
// converting the recording up front with audio.ToFloat — minus the 4×-sized
// copy and its allocation.
type realSample interface{ ~float64 | ~int16 }

// Forward computes the in-place unnormalized FFT of x (len == N) using the
// precomputed tables. It matches FFT to within a few ULPs (the fused
// radix-2² schedule rounds differently), i.e. well inside 1e-9 relative.
func (p *FFTPlan) Forward(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: fft plan length %d, input %d", p.n, len(x))
	}
	p.fullT.transform(x, false)
	return nil
}

// Inverse computes the in-place inverse FFT of x (len == N) including the
// 1/N normalization, matching IFFT to within a few ULPs (see Forward).
func (p *FFTPlan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: fft plan length %d, input %d", p.n, len(x))
	}
	p.fullT.transform(x, true)
	scale := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*scale, imag(x[i])*scale)
	}
	return nil
}

// PowerSpectrumInto computes the same full-length normalized power spectrum
// as PowerSpectrum, writing into dst (len == N) with zero heap allocations.
// scratch must come from NewScratch (len == N/2) and is clobbered.
//
// The real input is packed into a half-length complex sequence (evens in the
// real lane, odds in the imaginary lane), transformed with the half-length
// tables, and unpacked with the split twiddles — half the butterflies of the
// full-length complex path. Power is then 4(Re²+Im²)/N² per bin, avoiding
// the per-bin Hypot+square of the one-shot path; bins above Nyquist mirror
// their conjugates exactly as PowerSpectrum's full-length output does.
// Results match PowerSpectrum to within a few ULPs (callers needing strict
// bit-equality with the legacy path should keep using PowerSpectrum).
func (p *FFTPlan) PowerSpectrumInto(dst, window []float64, scratch []complex128) error {
	return powerSpectrumBandInto(p, dst, window, scratch, 0, p.half+1)
}

// PowerSpectrumBandInto is PowerSpectrumInto restricted to the canonical
// half-spectrum bin range [lo, hi): only dst[k] — and its conjugate mirror
// dst[N−k] for 0 < k < N/2 — is written for k in the band; every other
// entry of dst is left untouched (stale). Callers that only read a known
// band (Algorithm 2's candidate band is ~45% of the bins at the paper's
// parameters) skip the rest of the split-twiddle unpack, which costs about
// as much per bin as the FFT butterflies it follows.
//
// Bounds: 0 ≤ lo < hi ≤ N/2+1 (hi = N/2+1 includes the Nyquist bin). The
// written bins are bit-identical to a full PowerSpectrumInto call — the
// band loop runs exactly the same arithmetic on the same packed transform.
func (p *FFTPlan) PowerSpectrumBandInto(dst, window []float64, scratch []complex128, lo, hi int) error {
	return powerSpectrumBandInto(p, dst, window, scratch, lo, hi)
}

// PowerSpectrumBandIntoPCM is PowerSpectrumBandInto over raw int16 PCM: the
// int16→float64 widening is fused into the transform's pack stage, so the
// caller never materializes a float copy of the window. Written bins are
// bit-identical to converting the window with audio.ToFloat first (the
// conversion is exact).
func (p *FFTPlan) PowerSpectrumBandIntoPCM(dst []float64, window []int16, scratch []complex128, lo, hi int) error {
	return powerSpectrumBandInto(p, dst, window, scratch, lo, hi)
}

// powerSpectrumBandInto is the shared generic core of the power-spectrum
// entry points, instantiated per sample representation (see realSample).
func powerSpectrumBandInto[T realSample](p *FFTPlan, dst []float64, window []T, scratch []complex128, lo, hi int) error {
	if len(window) != p.n {
		return fmt.Errorf("dsp: power spectrum plan length %d, window %d", p.n, len(window))
	}
	if len(dst) != p.n {
		return fmt.Errorf("dsp: power spectrum dst length %d, want %d", len(dst), p.n)
	}
	if len(scratch) < p.half {
		return fmt.Errorf("dsp: power spectrum scratch length %d, want %d", len(scratch), p.half)
	}
	if lo < 0 || hi <= lo || hi > p.half+1 {
		return fmt.Errorf("dsp: power spectrum band [%d, %d) outside [0, %d]", lo, hi, p.half+1)
	}
	packedHalfTransform(p, window, scratch)
	p.unpackPowerBand(dst, scratch, lo, hi)
	return nil
}

// packedHalfTransform packs the real window into scratch (evens in the real
// lane, odds in the imaginary lane) and runs the half-length transform in
// place, leaving scratch[:N/2] holding Z[k].
//
// The pack is fused with the transform's bit-reversal permutation (gather:
// output slot k reads input index bitrev[k], since the permutation is an
// involution) and, when the stage count is odd, with the first plain
// radix-2 stage — one pass over the data instead of three. The arithmetic
// per output is unchanged, so results are bit-identical to pack + the
// generic transform. Generic over the sample representation: the int16
// instantiation additionally fuses the PCM widening conversion into the
// same pass (float64(int16) is exact, so it changes no bits either).
func packedHalfTransform[T realSample](p *FFTPlan, window []T, scratch []complex128) {
	h := p.half
	z := scratch[:h]
	t := &p.halfT
	if h == 1 {
		z[0] = complex(float64(window[0]), float64(window[1]))
		return
	}
	if t.stages()%2 == 1 {
		for s := 0; s+1 < h; s += 2 {
			ia := 2 * int(t.bitrev[s])
			ib := 2 * int(t.bitrev[s+1])
			a := complex(float64(window[ia]), float64(window[ia+1]))
			b := complex(float64(window[ib]), float64(window[ib+1]))
			z[s], z[s+1] = a+b, a-b
		}
		t.pairStages(z, 2, false)
		return
	}
	for k := 0; k < h; k++ {
		i := 2 * int(t.bitrev[k])
		z[k] = complex(float64(window[i]), float64(window[i+1]))
	}
	t.pairStages(z, 1, false)
}

// unpackPowerBand recombines the packed half-length spectrum in scratch into
// normalized power for canonical bins [lo, hi), mirroring interior bins to
// their conjugates as PowerSpectrum's full-length output does.
func (p *FFTPlan) unpackPowerBand(dst []float64, scratch []complex128, lo, hi int) {
	h := p.half
	z := scratch[:h]

	// norm = (2/N)² applied to |X[k]|².
	invN := 2 / float64(p.n)
	norm := invN * invN

	// DC and Nyquist bins are real: X[0] = Re+Im, X[N/2] = Re−Im of Z[0].
	re0, im0 := real(z[0]), imag(z[0])
	if lo == 0 {
		dc := re0 + im0
		dst[0] = dc * dc * norm
		lo = 1
	}
	if hi == h+1 {
		ny := re0 - im0
		dst[h] = ny * ny * norm
		hi = h
	}

	// Reindex the four streams onto [0, hi−lo) so every access is provably
	// in range (no per-bin bounds checks): zf/df walk forward from lo,
	// zc/dc walk the conjugate mirrors backward.
	m := hi - lo
	zf := z[lo:hi][:m]
	zc := z[h-hi+1 : h-lo+1][:m] // zc[m-1-j] == z[h-(lo+j)]
	up := p.unpack[lo:hi][:m]
	df := dst[lo:hi][:m]
	dc2 := dst[p.n-hi+1 : p.n-lo+1][:m] // dc2[m-1-j] == dst[n-(lo+j)]
	for j := 0; j < m; j++ {
		zk := zf[j]
		zq := zc[m-1-j]
		// Even/odd split: Fe = (Z[k]+conj(Z[h−k]))/2, Fo = (Z[k]−conj(Z[h−k]))/(2i).
		feR := (real(zk) + real(zq)) / 2
		feI := (imag(zk) - imag(zq)) / 2
		foR := (imag(zk) + imag(zq)) / 2
		foI := (real(zq) - real(zk)) / 2
		// X[k] = Fe + unpack[k]·Fo.
		w := up[j]
		xr := feR + real(w)*foR - imag(w)*foI
		xi := feI + real(w)*foI + imag(w)*foR
		pw := (xr*xr + xi*xi) * norm
		df[j] = pw
		dc2[m-1-j] = pw
	}
}

// BandSpectrumInto writes the raw (unnormalized) real-input DFT values
// X[k] = Σ_j window[j]·e^(−2πijk/N) for canonical bins k in [lo, hi) into
// the split re/im slices (SoA layout, len ≥ hi−lo), via the same packed
// half-length transform + split-twiddle unpack as PowerSpectrumBandInto.
// This is the resynchronization primitive of SlidingBandDFT; power follows
// as (re²+im²)·(2/N)², matching PowerSpectrum's normalization exactly.
func (p *FFTPlan) BandSpectrumInto(re, im, window []float64, scratch []complex128, lo, hi int) error {
	return bandSpectrumInto(p, re, im, window, scratch, lo, hi)
}

// BandSpectrumIntoPCM is BandSpectrumInto over raw int16 PCM with the
// widening conversion fused into the pack stage (see
// PowerSpectrumBandIntoPCM); written values are bit-identical to converting
// the window to float64 first.
func (p *FFTPlan) BandSpectrumIntoPCM(re, im []float64, window []int16, scratch []complex128, lo, hi int) error {
	return bandSpectrumInto(p, re, im, window, scratch, lo, hi)
}

// bandSpectrumInto is the shared generic core of the band-spectrum entry
// points, instantiated per sample representation (see realSample).
func bandSpectrumInto[T realSample](p *FFTPlan, re, im []float64, window []T, scratch []complex128, lo, hi int) error {
	if len(window) != p.n {
		return fmt.Errorf("dsp: band spectrum plan length %d, window %d", p.n, len(window))
	}
	if lo < 0 || hi <= lo || hi > p.half+1 {
		return fmt.Errorf("dsp: band spectrum band [%d, %d) outside [0, %d]", lo, hi, p.half+1)
	}
	if len(re) < hi-lo || len(im) < hi-lo {
		return fmt.Errorf("dsp: band spectrum re/im length %d/%d, want ≥ %d", len(re), len(im), hi-lo)
	}
	if len(scratch) < p.half {
		return fmt.Errorf("dsp: band spectrum scratch length %d, want %d", len(scratch), p.half)
	}
	packedHalfTransform(p, window, scratch)
	h := p.half
	z := scratch[:h]
	re0, im0 := real(z[0]), imag(z[0])
	for k := lo; k < hi; k++ {
		switch k {
		case 0:
			re[k-lo], im[k-lo] = re0+im0, 0
		case h:
			re[k-lo], im[k-lo] = re0-im0, 0
		default:
			zk := z[k]
			zc := z[h-k]
			feR := (real(zk) + real(zc)) / 2
			feI := (imag(zk) - imag(zc)) / 2
			foR := (imag(zk) + imag(zc)) / 2
			foI := (real(zc) - real(zk)) / 2
			w := p.unpack[k]
			re[k-lo] = feR + real(w)*foR - imag(w)*foI
			im[k-lo] = feI + real(w)*foI + imag(w)*foR
		}
	}
	return nil
}

// bandRot is the immutable single-sample advance rotation table for one
// canonical bin band: rot[k−lo] = e^(+2πik/N), the factor that re-references
// a window's DFT value when the window slides forward one sample. Split
// re/im (SoA) so the sliding-DFT inner loop vectorizes.
type bandRot struct {
	lo, hi int
	re, im []float64
}

// bandRotTable returns the cached rotation table for [lo, hi), building it
// on first use. Tables are shared by every SlidingBandDFT on this plan (and
// hence pinned for the lifetime of a PlanSet that pins the plan).
func (p *FFTPlan) bandRotTable(lo, hi int) *bandRot {
	key := uint64(lo)<<32 | uint64(uint32(hi))
	if r, ok := p.rots.Load(key); ok {
		return r.(*bandRot)
	}
	r := &bandRot{lo: lo, hi: hi, re: make([]float64, hi-lo), im: make([]float64, hi-lo)}
	for k := lo; k < hi; k++ {
		ang := 2 * math.Pi * float64(k) / float64(p.n)
		r.re[k-lo] = math.Cos(ang)
		r.im[k-lo] = math.Sin(ang)
	}
	actual, _ := p.rots.LoadOrStore(key, r)
	return actual.(*bandRot)
}
