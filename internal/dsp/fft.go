package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrNotPowerOfTwo is returned by transforms that require power-of-two input
// lengths (the radix-2 FFT used throughout PIANO, matching the paper's
// 4096-sample reference signals).
var ErrNotPowerOfTwo = errors.New("dsp: length is not a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-place decimation-in-time radix-2 fast Fourier
// transform of x. The length of x must be a power of two.
//
// The transform is unnormalized: FFT followed by IFFT returns the original
// sequence (IFFT applies the 1/N factor).
func FFT(x []complex128) error {
	if !IsPowerOfTwo(len(x)) {
		return fmt.Errorf("dsp: fft of %d samples: %w", len(x), ErrNotPowerOfTwo)
	}
	fftInPlace(x, false)
	return nil
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalization. The length of x must be a power of two.
func IFFT(x []complex128) error {
	if !IsPowerOfTwo(len(x)) {
		return fmt.Errorf("dsp: ifft of %d samples: %w", len(x), ErrNotPowerOfTwo)
	}
	fftInPlace(x, true)
	scale := 1 / float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])*scale, imag(x[i])*scale)
	}
	return nil
}

// fftInPlace runs the iterative Cooley-Tukey butterfly network. inverse
// selects the conjugated twiddle factors.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}

	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// w = e^(i*step) applied incrementally per butterfly group.
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// FFTReal transforms a real-valued sequence, returning the full complex
// spectrum of the same length. The input length must be a power of two.
func FFTReal(x []float64) ([]complex128, error) {
	if !IsPowerOfTwo(len(x)) {
		return nil, fmt.Errorf("dsp: fft of %d samples: %w", len(x), ErrNotPowerOfTwo)
	}
	buf := make([]complex128, len(x))
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf, false)
	return buf, nil
}

// DFTNaive computes the discrete Fourier transform directly in O(n²) time.
// It exists as a reference implementation for testing the FFT and is not
// used on any hot path.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * complex(math.Cos(angle), math.Sin(angle))
		}
		out[k] = sum
	}
	return out
}

// NextPowerOfTwo returns the smallest power of two >= n (and 1 for n <= 0).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
