package dsp

import (
	"math/rand"
	"testing"
)

// randomPCM builds a deterministic full-range int16 test window and its
// exact float64 conversion.
func randomPCM(seed int64, n int) ([]int16, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pcm := make([]int16, n)
	f := make([]float64, n)
	for i := range pcm {
		pcm[i] = int16(rng.Intn(1<<16) - 1<<15)
		f[i] = float64(pcm[i])
	}
	return pcm, f
}

// TestPowerSpectrumBandIntoPCMBitIdentical: the fused int16 pack must
// produce exactly the bits of converting the window to float64 first —
// float64(int16) is exact, so there is no tolerance here.
func TestPowerSpectrumBandIntoPCMBitIdentical(t *testing.T) {
	const n = 4096
	pcm, f := randomPCM(41, n)
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	scratch := plan.NewScratch()
	want := make([]float64, n)
	got := make([]float64, n)
	for _, band := range [][2]int{{0, n/2 + 1}, {856, 1765}, {0, 1}, {n / 2, n/2 + 1}} {
		lo, hi := band[0], band[1]
		if err := plan.PowerSpectrumBandInto(want, f, scratch, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := plan.PowerSpectrumBandIntoPCM(got, pcm, scratch, lo, hi); err != nil {
			t.Fatal(err)
		}
		for k := lo; k < hi && k < n/2+1; k++ {
			if got[k] != want[k] {
				t.Fatalf("band [%d,%d): bin %d: pcm %v != float %v", lo, hi, k, got[k], want[k])
			}
			if k > 0 && k < n/2 && got[n-k] != want[n-k] {
				t.Fatalf("band [%d,%d): mirror bin %d: pcm %v != float %v", lo, hi, n-k, got[n-k], want[n-k])
			}
		}
	}
	// The PCM path validates like the float path.
	if err := plan.PowerSpectrumBandIntoPCM(got, pcm[:100], scratch, 0, 10); err == nil {
		t.Fatal("short PCM window accepted")
	}
	if err := plan.PowerSpectrumBandIntoPCM(got, pcm, scratch, 10, 5); err == nil {
		t.Fatal("inverted band accepted")
	}
}

// TestBandSpectrumIntoPCMBitIdentical: same bit-exactness contract for the
// raw band spectrum (the sliding-DFT resynchronization primitive).
func TestBandSpectrumIntoPCMBitIdentical(t *testing.T) {
	const n = 4096
	pcm, f := randomPCM(42, n)
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	scratch := plan.NewScratch()
	const lo, hi = 856, 1765
	wantRe, wantIm := make([]float64, hi-lo), make([]float64, hi-lo)
	gotRe, gotIm := make([]float64, hi-lo), make([]float64, hi-lo)
	if err := plan.BandSpectrumInto(wantRe, wantIm, f, scratch, lo, hi); err != nil {
		t.Fatal(err)
	}
	if err := plan.BandSpectrumIntoPCM(gotRe, gotIm, pcm, scratch, lo, hi); err != nil {
		t.Fatal(err)
	}
	for k := range wantRe {
		if gotRe[k] != wantRe[k] || gotIm[k] != wantIm[k] {
			t.Fatalf("bin %d: pcm (%v,%v) != float (%v,%v)", lo+k, gotRe[k], gotIm[k], wantRe[k], wantIm[k])
		}
	}
}

// TestSlidingBandDFTPCMBitIdentical: a stream fed raw PCM (ResetPCM + fused
// widening in Advance) must reproduce the float64-fed stream bit for bit at
// every hop.
func TestSlidingBandDFTPCMBitIdentical(t *testing.T) {
	const n, total = 4096, 8192
	pcm, f := randomPCM(43, total)
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 856, 1765
	sf, err := NewSlidingBandDFT(plan, lo, hi, 10)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSlidingBandDFT(plan, lo, hi, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Reset(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := sp.ResetPCM(pcm, 0); err != nil {
		t.Fatal(err)
	}
	wantP := make([]float64, n)
	gotP := make([]float64, n)
	for hop := 0; hop < 64; hop++ {
		if hop > 0 {
			if err := sf.Advance(); err != nil {
				t.Fatal(err)
			}
			if err := sp.Advance(); err != nil {
				t.Fatal(err)
			}
		}
		if err := sf.PowersInto(wantP); err != nil {
			t.Fatal(err)
		}
		if err := sp.PowersInto(gotP); err != nil {
			t.Fatal(err)
		}
		for k := lo; k < hi; k++ {
			if gotP[k] != wantP[k] {
				t.Fatalf("hop %d bin %d: pcm %v != float %v", hop, k, gotP[k], wantP[k])
			}
		}
	}
	if sp.Pos() != sf.Pos() {
		t.Fatalf("positions diverged: pcm %d, float %d", sp.Pos(), sf.Pos())
	}
	// Release drops both backings; advancing afterwards is refused.
	sp.Release()
	if err := sp.Advance(); err == nil {
		t.Fatal("advance after Release accepted")
	}
	// PCM bounds are enforced like float bounds.
	if err := sp.ResetPCM(pcm, total-n+1); err == nil {
		t.Fatal("out-of-range PCM reset accepted")
	}
}

// TestSlidingBandDFTSetStep: the hop size is mutable without rebuilding
// state — the detector reuses one pooled engine across the coarse and fine
// hop sequences — and a stream advanced at the new step matches a fresh
// engine built with it.
func TestSlidingBandDFTSetStep(t *testing.T) {
	const n, total = 1024, 4096
	_, f := randomPCM(44, total)
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 100, 300
	s, err := NewSlidingBandDFT(plan, lo, hi, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetStep(0); err == nil {
		t.Fatal("step 0 accepted")
	}
	if err := s.SetStep(3); err != nil {
		t.Fatal(err)
	}
	if s.Step() != 3 {
		t.Fatalf("step %d after SetStep(3)", s.Step())
	}
	fresh, err := NewSlidingBandDFT(plan, lo, hi, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Reset(f, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	want := make([]float64, n)
	for hop := 0; hop < 20; hop++ {
		if err := s.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PowersInto(got); err != nil {
		t.Fatal(err)
	}
	if err := fresh.PowersInto(want); err != nil {
		t.Fatal(err)
	}
	for k := lo; k < hi; k++ {
		if got[k] != want[k] {
			t.Fatalf("bin %d: SetStep stream %v != fresh stream %v", k, got[k], want[k])
		}
	}
}
