package dsp

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadSampleRate is returned when a non-positive sampling rate is supplied.
var ErrBadSampleRate = errors.New("dsp: sample rate must be positive")

// Sine synthesizes length samples of amplitude·sin(2π·freq·t + phase) at the
// given sampling rate. Frequencies above Nyquist alias exactly as they would
// through a real ADC, which is the behaviour PIANO relies on (25–35 kHz
// references sampled at 44.1 kHz).
func Sine(freqHz, amplitude, phase, sampleRate float64, length int) ([]float64, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: sine at %g Hz: %w", freqHz, ErrBadSampleRate)
	}
	if length < 0 {
		return nil, fmt.Errorf("dsp: sine length %d must be non-negative", length)
	}
	out := make([]float64, length)
	w := 2 * math.Pi * freqHz / sampleRate
	for i := range out {
		out[i] = amplitude * math.Sin(w*float64(i)+phase)
	}
	return out, nil
}

// AddInto accumulates src into dst element-wise. The slices must have the
// same length.
func AddInto(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("dsp: add: length mismatch %d vs %d", len(dst), len(src))
	}
	for i, v := range src {
		dst[i] += v
	}
	return nil
}

// Scale multiplies every sample of x by g in place.
func Scale(x []float64, g float64) {
	for i := range x {
		x[i] *= g
	}
}

// PeakAbs returns the maximum absolute sample value of x.
func PeakAbs(x []float64) float64 {
	var peak float64
	for _, v := range x {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	return peak
}
