package dsp

import (
	"math/rand"
	"testing"
)

// bandOracle computes band powers the legacy way: full PowerSpectrum plus
// BandPower per center.
func bandOracle(t *testing.T, w []float64, centers []int, theta int) []float64 {
	t.Helper()
	spec, err := PowerSpectrum(w)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(centers))
	for i, c := range centers {
		out[i] = BandPower(spec, c, theta)
	}
	return out
}

func TestBandScorerValidation(t *testing.T) {
	if _, err := NewBandScorer(100, []int{1}, 1); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewBandScorer(64, nil, 1); err == nil {
		t.Error("no centers accepted")
	}
	if _, err := NewBandScorer(64, []int{64}, 1); err == nil {
		t.Error("out-of-range center accepted")
	}
	if _, err := NewBandScorer(64, []int{1}, -1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := NewBandScorerWithPlan(nil, []int{1}, 1); err == nil {
		t.Error("nil plan accepted")
	}
	s, err := NewBandScorer(64, []int{3, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScoreInto(make([]float64, 2), make([]float64, 32)); err == nil {
		t.Error("short window accepted")
	}
	if err := s.ScoreInto(make([]float64, 1), make([]float64, 64)); err == nil {
		t.Error("short dst accepted")
	}
}

// TestBandScorerStrategySelection pins the construction-time crossover: few
// bins → pruned DFT, PIANO's full grid → FFT.
func TestBandScorerStrategySelection(t *testing.T) {
	few, err := NewBandScorer(4096, []int{500}, 0) // 1 bin ≤ break-even of 1
	if err != nil {
		t.Fatal(err)
	}
	if !few.UsesGoertzel() {
		t.Error("1-bin workload should use the pruned DFT")
	}
	// Since the FFT side only pays a band-restricted unpack, even a 3-bin
	// workload lands on the FFT path (re-measured break-even: ~log₂N/8).
	three, err := NewBandScorer(4096, []int{500}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if three.UsesGoertzel() {
		t.Error("3-bin workload should use the FFT after the band-restricted unpack")
	}
	centers := make([]int, 30)
	for i := range centers {
		centers[i] = 2300 + 25*i // ≈ the candidate grid spacing
	}
	grid, err := NewBandScorer(4096, centers, 5)
	if err != nil {
		t.Fatal(err)
	}
	if grid.UsesGoertzel() {
		t.Error("330-bin workload should use the FFT")
	}
}

// TestBandScorerParityBothPaths is the satellite parity gate: both
// strategies must match PowerSpectrum+BandPower to 1e-9 on random windows,
// including clamped edge bands.
func TestBandScorerParityBothPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 1024
	cases := []struct {
		name    string
		centers []int
		theta   int
	}{
		{"goertzel-path", []int{700}, 0},
		// 2 bins sat on the Goertzel side of the old ~log₂N/4 break-even;
		// with the FFT path down to a band-restricted unpack the measured
		// crossover is ~log₂N/8 and this workload now picks the FFT. The
		// case still pins the θ-clamp at the spectrum edge (shared by both
		// strategies).
		{"fft-edge-clamp", []int{0}, 1},
		{"fft-path", []int{100, 200, 300, 400, 500, 600, 700, 800}, 4},
		{"fft-overlapping-bands", []int{100, 103, 106, 109, 112, 115, 118, 121, 124}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewBandScorer(n, tc.centers, tc.theta)
			if err != nil {
				t.Fatal(err)
			}
			wantGoertzel := tc.name[:3] == "goe"
			if s.UsesGoertzel() != wantGoertzel {
				t.Fatalf("case %q picked goertzel=%v", tc.name, s.UsesGoertzel())
			}
			dst := make([]float64, len(tc.centers))
			for trial := 0; trial < 5; trial++ {
				w := randomWindow(n, rng)
				want := bandOracle(t, w, tc.centers, tc.theta)
				if err := s.ScoreInto(dst, w); err != nil {
					t.Fatal(err)
				}
				for i := range dst {
					if !relClose(dst[i], want[i], 1e-9) {
						t.Fatalf("strategy goertzel=%v band %d: got %g, oracle %g",
							s.UsesGoertzel(), i, dst[i], want[i])
					}
				}
			}
		})
	}
}

func TestBandScorerZeroAlloc(t *testing.T) {
	centers := make([]int, 30)
	for i := range centers {
		centers[i] = 2300 + 25*i
	}
	for _, theta := range []int{0, 5} {
		s, err := NewBandScorer(4096, centers, theta)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, len(centers))
		w := randomWindow(4096, rand.New(rand.NewSource(6)))
		allocs := testing.AllocsPerRun(20, func() {
			if err := s.ScoreInto(dst, w); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("theta=%d: ScoreInto allocates %g per window, want 0", theta, allocs)
		}
	}
}

func BenchmarkBandScorerGrid(b *testing.B) {
	centers := make([]int, 30)
	for i := range centers {
		centers[i] = 2300 + 25*i
	}
	s, err := NewBandScorer(4096, centers, 5)
	if err != nil {
		b.Fatal(err)
	}
	w := randomWindow(4096, rand.New(rand.NewSource(7)))
	dst := make([]float64, len(centers))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ScoreInto(dst, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandScorerSingleTone(b *testing.B) {
	s, err := NewBandScorer(4096, []int{2500}, 0)
	if err != nil {
		b.Fatal(err)
	}
	w := randomWindow(4096, rand.New(rand.NewSource(8)))
	dst := make([]float64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ScoreInto(dst, w); err != nil {
			b.Fatal(err)
		}
	}
}
