package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrossCorrelateFindsCleanEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ref := make([]float64, 256)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	x := make([]float64, 2048)
	for i := range x {
		x[i] = 0.01 * rng.NormFloat64()
	}
	const at = 700
	for i, v := range ref {
		x[at+i] += v
	}
	corr, err := CrossCorrelate(x, ref)
	if err != nil {
		t.Fatal(err)
	}
	idx, val := ArgMax(corr)
	if idx != at {
		t.Fatalf("peak at %d, want %d", idx, at)
	}
	if val < 0.9 {
		t.Fatalf("peak correlation %g too low", val)
	}
}

func TestCrossCorrelateErrors(t *testing.T) {
	if _, err := CrossCorrelate([]float64{1, 2}, nil); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := CrossCorrelate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("reference longer than sequence accepted")
	}
}

func TestCrossCorrelatePeakIsNormalized(t *testing.T) {
	ref := []float64{1, -1, 1, -1}
	x := make([]float64, 32)
	copy(x[10:], ref)
	corr, err := CrossCorrelate(x, ref)
	if err != nil {
		t.Fatal(err)
	}
	_, val := ArgMax(corr)
	if math.Abs(val-1) > 1e-9 {
		t.Fatalf("self-match correlation = %g, want 1", val)
	}
}

func TestArgMaxEmpty(t *testing.T) {
	idx, val := ArgMax(nil)
	if idx != -1 || !math.IsInf(val, -1) {
		t.Fatalf("ArgMax(nil) = %d, %g", idx, val)
	}
}

func TestSineErrors(t *testing.T) {
	if _, err := Sine(1000, 1, 0, 0, 10); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := Sine(1000, 1, 0, 44100, -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestAddIntoAndScale(t *testing.T) {
	dst := []float64{1, 2, 3}
	if err := AddInto(dst, []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2 || dst[2] != 4 {
		t.Fatalf("AddInto result %v", dst)
	}
	if err := AddInto(dst, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	Scale(dst, 2)
	if dst[0] != 4 {
		t.Fatalf("Scale result %v", dst)
	}
	if got := PeakAbs([]float64{-5, 3}); got != 5 {
		t.Fatalf("PeakAbs = %g", got)
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(1)
	if w[0] != 1 {
		t.Fatalf("Hann(1) = %v", w)
	}
	w = Hann(64)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[63]) > 1e-12 {
		t.Fatalf("Hann endpoints %g %g", w[0], w[63])
	}
	mid := w[31] + w[32]
	if mid < 1.9 {
		t.Fatalf("Hann midpoint sum %g", mid)
	}
	x := []float64{2, 2, 2}
	ApplyWindow(x, []float64{0.5, 0.5})
	if x[0] != 1 || x[2] != 2 {
		t.Fatalf("ApplyWindow result %v", x)
	}
}
