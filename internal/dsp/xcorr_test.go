package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrossCorrelateFindsCleanEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ref := make([]float64, 256)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	x := make([]float64, 2048)
	for i := range x {
		x[i] = 0.01 * rng.NormFloat64()
	}
	const at = 700
	for i, v := range ref {
		x[at+i] += v
	}
	corr, err := CrossCorrelate(x, ref)
	if err != nil {
		t.Fatal(err)
	}
	idx, val := ArgMax(corr)
	if idx != at {
		t.Fatalf("peak at %d, want %d", idx, at)
	}
	if val < 0.9 {
		t.Fatalf("peak correlation %g too low", val)
	}
}

func TestCrossCorrelateErrors(t *testing.T) {
	if _, err := CrossCorrelate([]float64{1, 2}, nil); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := CrossCorrelate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("reference longer than sequence accepted")
	}
}

func TestCrossCorrelatePeakIsNormalized(t *testing.T) {
	ref := []float64{1, -1, 1, -1}
	x := make([]float64, 32)
	copy(x[10:], ref)
	corr, err := CrossCorrelate(x, ref)
	if err != nil {
		t.Fatal(err)
	}
	_, val := ArgMax(corr)
	if math.Abs(val-1) > 1e-9 {
		t.Fatalf("self-match correlation = %g, want 1", val)
	}
}

func TestArgMaxEmpty(t *testing.T) {
	idx, val := ArgMax(nil)
	if idx != -1 || !math.IsInf(val, -1) {
		t.Fatalf("ArgMax(nil) = %d, %g", idx, val)
	}
}

// TestArgMaxSkipsNaN is the regression test for NaN poisoning: NaN elements
// must never win the comparison or mask a later finite maximum.
func TestArgMaxSkipsNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		x       []float64
		wantIdx int
		wantVal float64
	}{
		{[]float64{nan, 1, 3, 2}, 2, 3},
		{[]float64{1, nan, 3, nan, 2}, 2, 3},
		{[]float64{3, 2, nan}, 0, 3},
		{[]float64{nan, nan, -5}, 2, -5},
	}
	for _, c := range cases {
		idx, val := ArgMax(c.x)
		if idx != c.wantIdx || val != c.wantVal {
			t.Errorf("ArgMax(%v) = (%d, %g), want (%d, %g)", c.x, idx, val, c.wantIdx, c.wantVal)
		}
	}
	// All-NaN behaves like empty.
	idx, val := ArgMax([]float64{nan, nan})
	if idx != -1 || !math.IsInf(val, -1) {
		t.Errorf("ArgMax(all-NaN) = (%d, %g), want (-1, -Inf)", idx, val)
	}
}

// TestCrossCorrelateFFTMatchesNaiveOracle validates the overlap-save path
// against the retained direct evaluation over a sweep of shapes, including
// block-boundary-straddling sizes.
func TestCrossCorrelateFFTMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ n, m int }{
		{1, 1}, {7, 3}, {64, 64}, {100, 33}, {1000, 256},
		{4097, 512}, {10000, 1024}, {3000, 1000},
	}
	for _, s := range shapes {
		x := make([]float64, s.n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, s.m)
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
		want, err := CrossCorrelateNaive(x, ref)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CrossCorrelate(x, ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d m=%d: length %d, want %d", s.n, s.m, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d m=%d: corr[%d] = %g, oracle %g", s.n, s.m, i, got[i], want[i])
			}
		}
	}
}

func TestCrossCorrelateNaiveErrors(t *testing.T) {
	if _, err := CrossCorrelateNaive([]float64{1, 2}, nil); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := CrossCorrelateNaive([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("reference longer than sequence accepted")
	}
}

func BenchmarkCrossCorrelateFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 52920) // one 1.2 s recording at 44.1 kHz
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, 4096)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossCorrelate(x, ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossCorrelateNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 52920)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, 4096)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossCorrelateNaive(x, ref); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSineErrors(t *testing.T) {
	if _, err := Sine(1000, 1, 0, 0, 10); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := Sine(1000, 1, 0, 44100, -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestAddIntoAndScale(t *testing.T) {
	dst := []float64{1, 2, 3}
	if err := AddInto(dst, []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2 || dst[2] != 4 {
		t.Fatalf("AddInto result %v", dst)
	}
	if err := AddInto(dst, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	Scale(dst, 2)
	if dst[0] != 4 {
		t.Fatalf("Scale result %v", dst)
	}
	if got := PeakAbs([]float64{-5, 3}); got != 5 {
		t.Fatalf("PeakAbs = %g", got)
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(1)
	if w[0] != 1 {
		t.Fatalf("Hann(1) = %v", w)
	}
	w = Hann(64)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[63]) > 1e-12 {
		t.Fatalf("Hann endpoints %g %g", w[0], w[63])
	}
	mid := w[31] + w[32]
	if mid < 1.9 {
		t.Fatalf("Hann midpoint sum %g", mid)
	}
	x := []float64{2, 2, 2}
	ApplyWindow(x, []float64{0.5, 0.5})
	if x[0] != 1 || x[2] != 2 {
		t.Fatalf("ApplyWindow result %v", x)
	}
}
