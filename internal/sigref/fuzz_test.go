package sigref

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// fuzzSeeds builds the seed corpus: a valid Step-II descriptor plus the
// malformed shapes the decoder's checks exist for — truncations, a
// length-bomb header, an over-count n, a NaN phase.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	sig, err := New(DefaultParams(), rng)
	if err != nil {
		tb.Fatal(err)
	}
	valid, err := sig.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	bomb := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bomb[:4], math.MaxUint32)

	overCount := append([]byte(nil), valid...)
	overCount[37] = 255 // n beyond the trailing bytes

	nanPhase := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(nanPhase[len(nanPhase)-8:], math.Float64bits(math.NaN()))

	nanRate := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(nanRate[4:12], math.Float64bits(math.NaN()))

	return [][]byte{
		valid,
		valid[:10],
		valid[:38],
		{},
		bomb,
		overCount,
		nanPhase,
		nanRate,
	}
}

// FuzzUnmarshalSignal fuzzes the Step-II trust boundary. Properties:
// UnmarshalSignal never panics and never allocates past MaxSignalLength; an
// accepted descriptor describes a signal whose parameters pass Validate;
// and marshal∘unmarshal is a fixpoint — re-encoding an accepted signal
// re-decodes to an Equal signal with byte-identical encoding.
func FuzzUnmarshalSignal(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sig, err := UnmarshalSignal(data)
		if err != nil {
			if sig != nil {
				t.Fatalf("error %v with a non-nil signal", err)
			}
			return
		}
		p := sig.Params()
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted descriptor fails Validate: %v", verr)
		}
		if p.Length > MaxSignalLength {
			t.Fatalf("accepted length %d beyond the %d cap", p.Length, MaxSignalLength)
		}
		if sig.Count() < 1 || sig.Count() >= p.NumCandidates {
			t.Fatalf("accepted component count %d outside 1..%d", sig.Count(), p.NumCandidates-1)
		}
		out, err := sig.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted signal failed: %v", err)
		}
		sig2, err := UnmarshalSignal(out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded signal failed: %v", err)
		}
		if !Equal(sig, sig2) {
			t.Fatal("round-tripped signal not Equal to the original")
		}
		out2, err := sig2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("MarshalBinary is not a fixpoint after one round-trip")
		}
	})
}

// TestFuzzSeedsBehave runs the seed corpus through the decoder as a plain
// test, so the malformed shapes stay covered even when no fuzz engine runs:
// the valid seed must decode, every malformed seed must be rejected typed.
func TestFuzzSeedsBehave(t *testing.T) {
	seeds := fuzzSeeds(t)
	if _, err := UnmarshalSignal(seeds[0]); err != nil {
		t.Fatalf("valid seed rejected: %v", err)
	}
	for i, seed := range seeds[1:] {
		if _, err := UnmarshalSignal(seed); err == nil {
			t.Errorf("malformed seed %d accepted", i+1)
		}
	}
}

// TestValidateRejectsNonFinite pins the NaN/Inf hardening: NaN passes every
// ordered comparison, so each float field needs an explicit finiteness
// check.
func TestValidateRejectsNonFinite(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Params, float64)
	}{
		{"SampleRate", func(p *Params, v float64) { p.SampleRate = v }},
		{"BandLowHz", func(p *Params, v float64) { p.BandLowHz = v }},
		{"BandHighHz", func(p *Params, v float64) { p.BandHighHz = v }},
		{"FullScale", func(p *Params, v float64) { p.FullScale = v }},
	}
	for _, m := range mutate {
		for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			p := DefaultParams()
			m.f(&p, v)
			if err := p.Validate(); err == nil {
				t.Errorf("%s = %g validated", m.name, v)
			}
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}
