package sigref

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/acoustic-auth/piano/internal/dsp"
)

// Common errors reported by this package.
var (
	ErrBadParams   = errors.New("sigref: invalid parameters")
	ErrBadEncoding = errors.New("sigref: malformed signal encoding")
)

// Params describes the reference-signal design space. The zero value is not
// usable; start from DefaultParams.
type Params struct {
	// SampleRate of the devices' audio path, Hz. Paper: 44100.
	SampleRate float64
	// Length of the reference signal in samples; must be a power of two
	// (FFT requirement). Paper: 4096 (~93 ms).
	Length int
	// BandLowHz/BandHighHz bound the candidate frequency band.
	// Paper: [25000, 35000] — above audible noise and (after aliasing)
	// clear of the <6 kHz ambient concentration.
	BandLowHz  float64
	BandHighHz float64
	// NumCandidates is the number of candidate frequencies N. Paper: 30.
	NumCandidates int
	// FullScale is the peak time-domain amplitude budget. Paper: 32000
	// (16-bit Android audio path).
	FullScale float64
}

// DefaultParams returns the exact configuration of the paper's prototype.
func DefaultParams() Params {
	return Params{
		SampleRate:    44100,
		Length:        4096,
		BandLowHz:     25000,
		BandHighHz:    35000,
		NumCandidates: 30,
		FullScale:     32000,
	}
}

// Validate checks internal consistency. Non-finite floats are rejected
// explicitly: NaN slips through every ordered comparison below (NaN <= 0 is
// false), so without these checks a NaN sample rate or band edge would
// validate and then poison the synthesis downstream.
func (p Params) Validate() error {
	switch {
	case !finite(p.SampleRate) || p.SampleRate <= 0:
		return fmt.Errorf("%w: sample rate %g", ErrBadParams, p.SampleRate)
	case !dsp.IsPowerOfTwo(p.Length):
		return fmt.Errorf("%w: length %d not a power of two", ErrBadParams, p.Length)
	case !finite(p.BandLowHz) || !finite(p.BandHighHz) || p.BandLowHz <= 0 || p.BandHighHz <= p.BandLowHz:
		return fmt.Errorf("%w: band [%g, %g]", ErrBadParams, p.BandLowHz, p.BandHighHz)
	case p.NumCandidates < 2 || p.NumCandidates > 255:
		return fmt.Errorf("%w: %d candidates (need 2..255)", ErrBadParams, p.NumCandidates)
	case !finite(p.FullScale) || p.FullScale <= 0:
		return fmt.Errorf("%w: full scale %g", ErrBadParams, p.FullScale)
	}
	return nil
}

// finite reports whether v is an ordinary float (not NaN, not ±Inf).
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Candidates returns the N candidate frequencies: the center of each of the
// N equal-width bins partitioning [BandLowHz, BandHighHz].
func (p Params) Candidates() []float64 {
	width := (p.BandHighHz - p.BandLowHz) / float64(p.NumCandidates)
	out := make([]float64, p.NumCandidates)
	for i := range out {
		out[i] = p.BandLowHz + (float64(i)+0.5)*width
	}
	return out
}

// DurationSec returns the reference-signal duration in seconds.
func (p Params) DurationSec() float64 {
	return float64(p.Length) / p.SampleRate
}

// Signal is one constructed reference signal. It is fully described by the
// indices of its chosen candidate frequencies plus per-sinusoid phases;
// the time-domain samples are synthesized on first use and cached (see
// Samples). A Signal must not be copied after first use (the cache is
// guarded by a sync.Once).
type Signal struct {
	params  Params
	indices []int // sorted indices into params.Candidates()
	phases  []float64

	// synthOnce guards the one-time synthesis behind Samples: the waveform
	// costs O(Length·n) math.Sin calls, is scheduled and scanned strictly
	// by reference (world.SchedulePlay's ownership contract), and is never
	// mutated — so experiments that replay one signal were re-synthesizing
	// it for nothing.
	synthOnce sync.Once
	samples   []float64
}

// New constructs a randomized reference signal per the paper's Step I:
// sample n uniformly from 1..N-1, then choose n candidate frequencies
// uniformly at random without replacement. Phases are randomized too (the
// detector is phase-blind; random phases just avoid coherent peaking).
func New(p Params, rng *rand.Rand) (*Signal, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("sigref: nil rng")
	}
	n := 1 + rng.Intn(p.NumCandidates-1) // 1..N-1
	return NewWithCount(p, n, rng)
}

// NewWithCount constructs a reference signal with exactly n component
// frequencies (used by tests, ablations, and attack simulations).
func NewWithCount(p Params, n int, rng *rand.Rand) (*Signal, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("sigref: nil rng")
	}
	if n < 1 || n >= p.NumCandidates {
		return nil, fmt.Errorf("%w: component count %d (need 1..%d)", ErrBadParams, n, p.NumCandidates-1)
	}
	perm := rng.Perm(p.NumCandidates)[:n]
	indices := append([]int(nil), perm...)
	sortInts(indices)
	phases := make([]float64, n)
	for i := range phases {
		phases[i] = rng.Float64() * 2 * math.Pi
	}
	return &Signal{params: p, indices: indices, phases: phases}, nil
}

// NewFromIndices builds a signal from explicit candidate indices (sorted,
// deduplicated by the caller). Used to reconstruct a received signal and by
// the attack harness to craft spoofing signals.
func NewFromIndices(p Params, indices []int, phases []float64) (*Signal, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(indices) < 1 || len(indices) >= p.NumCandidates {
		return nil, fmt.Errorf("%w: %d indices", ErrBadParams, len(indices))
	}
	if len(phases) != 0 && len(phases) != len(indices) {
		return nil, fmt.Errorf("%w: %d phases for %d indices", ErrBadParams, len(phases), len(indices))
	}
	seen := make(map[int]bool, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= p.NumCandidates {
			return nil, fmt.Errorf("%w: index %d out of range", ErrBadParams, idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("%w: duplicate index %d", ErrBadParams, idx)
		}
		seen[idx] = true
	}
	idxCopy := append([]int(nil), indices...)
	sortInts(idxCopy)
	ph := make([]float64, len(indices))
	copy(ph, phases)
	return &Signal{params: p, indices: idxCopy, phases: ph}, nil
}

// Params returns the design parameters the signal was built with.
func (s *Signal) Params() Params { return s.params }

// Indices returns a copy of the chosen candidate indices (sorted).
func (s *Signal) Indices() []int {
	return append([]int(nil), s.indices...)
}

// Count returns n, the number of component frequencies.
func (s *Signal) Count() int { return len(s.indices) }

// Frequencies returns the chosen candidate frequencies in Hz.
func (s *Signal) Frequencies() []float64 {
	all := s.params.Candidates()
	out := make([]float64, len(s.indices))
	for i, idx := range s.indices {
		out[i] = all[idx]
	}
	return out
}

// RF returns the per-frequency reference power R_f = (FullScale/n)².
func (s *Signal) RF() float64 {
	a := s.params.FullScale / float64(len(s.indices))
	return a * a
}

// TotalRF returns R_S = Σ_f R_f = FullScale²/n, the threshold base used by
// Algorithm 1's absent-signal check.
func (s *Signal) TotalRF() float64 {
	return s.RF() * float64(len(s.indices))
}

// Samples returns the time-domain reference signal: the sum of the
// component sinusoids, each with amplitude FullScale/n.
//
// Immutability contract: the waveform is synthesized once and cached, so
// every call returns the SAME underlying array, possibly to several
// goroutines at once. Callers may schedule, window, or correlate against
// it but must never write to it; a caller needing a scratch buffer must
// make its own copy. (world.SchedulePlay already imposes the same
// read-only contract on scheduled slices.)
func (s *Signal) Samples() []float64 {
	s.synthOnce.Do(func() { s.samples = s.synthesize() })
	return s.samples
}

// synthesize renders the waveform; callers go through Samples.
func (s *Signal) synthesize() []float64 {
	out := make([]float64, s.params.Length)
	amp := s.params.FullScale / float64(len(s.indices))
	freqs := s.Frequencies()
	for i, f := range freqs {
		w := 2 * math.Pi * f / s.params.SampleRate
		ph := s.phases[i]
		for t := range out {
			out[t] += amp * math.Sin(w*float64(t)+ph)
		}
	}
	return out
}

// MarshalBinary encodes the signal descriptor for transmission over the
// Bluetooth secure channel (Step II). Layout (little-endian):
//
//	uint32 length | float64 sampleRate | float64 bandLow | float64 bandHigh |
//	uint8 numCandidates | float64 fullScale | uint8 n | n×uint8 index | n×float64 phase
func (s *Signal) MarshalBinary() ([]byte, error) {
	n := len(s.indices)
	buf := make([]byte, 0, 38+n*9)
	var scratch [8]byte

	binary.LittleEndian.PutUint32(scratch[:4], uint32(s.params.Length))
	buf = append(buf, scratch[:4]...)
	for _, v := range []float64{s.params.SampleRate, s.params.BandLowHz, s.params.BandHighHz} {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf = append(buf, scratch[:]...)
	}
	buf = append(buf, byte(s.params.NumCandidates))
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(s.params.FullScale))
	buf = append(buf, scratch[:]...)
	buf = append(buf, byte(n))
	for _, idx := range s.indices {
		buf = append(buf, byte(idx))
	}
	for _, ph := range s.phases {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(ph))
		buf = append(buf, scratch[:]...)
	}
	return buf, nil
}

// MaxSignalLength bounds the Length field UnmarshalSignal accepts: 2²⁰
// samples (~24 s at 44.1 kHz) is orders of magnitude beyond any plausible
// reference-signal design, while a raw uint32 length would let a malformed
// (or hostile) Step-II descriptor demand a multi-gigabyte synthesis buffer
// from whoever first calls Samples on the decoded signal.
const MaxSignalLength = 1 << 20

// UnmarshalSignal decodes a descriptor produced by MarshalBinary. It is the
// Step-II trust boundary: descriptors arrive over the Bluetooth channel
// from the peer device, so every field is bounds-checked — in particular
// Length is capped at MaxSignalLength before the signal (and its eventual
// synthesis buffer) can come to life.
func UnmarshalSignal(data []byte) (*Signal, error) {
	const fixed = 4 + 8*3 + 1 + 8 + 1
	if len(data) < fixed {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadEncoding, len(data))
	}
	var p Params
	p.Length = int(binary.LittleEndian.Uint32(data[0:4]))
	if p.Length <= 0 || p.Length > MaxSignalLength {
		return nil, fmt.Errorf("%w: length %d outside (0, %d]", ErrBadEncoding, p.Length, MaxSignalLength)
	}
	p.SampleRate = math.Float64frombits(binary.LittleEndian.Uint64(data[4:12]))
	p.BandLowHz = math.Float64frombits(binary.LittleEndian.Uint64(data[12:20]))
	p.BandHighHz = math.Float64frombits(binary.LittleEndian.Uint64(data[20:28]))
	p.NumCandidates = int(data[28])
	p.FullScale = math.Float64frombits(binary.LittleEndian.Uint64(data[29:37]))
	n := int(data[37])
	if len(data) != fixed+n+8*n {
		return nil, fmt.Errorf("%w: %d bytes for n=%d", ErrBadEncoding, len(data), n)
	}
	indices := make([]int, n)
	for i := 0; i < n; i++ {
		indices[i] = int(data[fixed+i])
	}
	phases := make([]float64, n)
	for i := 0; i < n; i++ {
		off := fixed + n + 8*i
		phases[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
		// Phases come off the wire too: a NaN or ±Inf phase validates
		// nowhere downstream but would synthesize a waveform of NaNs.
		if !finite(phases[i]) {
			return nil, fmt.Errorf("%w: non-finite phase %g at %d", ErrBadEncoding, phases[i], i)
		}
	}
	sig, err := NewFromIndices(p, indices, phases)
	if err != nil {
		return nil, fmt.Errorf("sigref: decode: %w", err)
	}
	return sig, nil
}

// Equal reports whether two signals have identical parameters, frequency
// sets, and phases.
func Equal(a, b *Signal) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.params != b.params || len(a.indices) != len(b.indices) {
		return false
	}
	for i := range a.indices {
		if a.indices[i] != b.indices[i] || a.phases[i] != b.phases[i] {
			return false
		}
	}
	return true
}

// TimeDomainRandom synthesizes the strawman the paper rejects in §IV-B: a
// reference signal that is simply an array of uniform random samples at
// full scale. It exists for the randomization-domain ablation bench.
func TimeDomainRandom(p Params, rng *rand.Rand) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("sigref: nil rng")
	}
	out := make([]float64, p.Length)
	for i := range out {
		out[i] = (2*rng.Float64() - 1) * p.FullScale
	}
	return out, nil
}

// sortInts is an insertion sort; candidate sets are ≤255 entries so this
// avoids pulling in sort for a trivial case.
func sortInts(x []int) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
