package sigref

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/acoustic-auth/piano/internal/dsp"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero rate", func(p *Params) { p.SampleRate = 0 }},
		{"length not pow2", func(p *Params) { p.Length = 4000 }},
		{"band inverted", func(p *Params) { p.BandHighHz = p.BandLowHz - 1 }},
		{"band zero low", func(p *Params) { p.BandLowHz = 0 }},
		{"one candidate", func(p *Params) { p.NumCandidates = 1 }},
		{"too many candidates", func(p *Params) { p.NumCandidates = 256 }},
		{"zero full scale", func(p *Params) { p.FullScale = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := DefaultParams()
			c.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
}

func TestCandidatesMatchPaperGrid(t *testing.T) {
	p := DefaultParams()
	c := p.Candidates()
	if len(c) != 30 {
		t.Fatalf("%d candidates", len(c))
	}
	// 30 bins over [25k, 35k]: width 333.33 Hz, first center 25166.67 Hz.
	if math.Abs(c[0]-25000-10000.0/60) > 1e-9 {
		t.Errorf("first candidate %g", c[0])
	}
	if math.Abs(c[29]-35000+10000.0/60) > 1e-9 {
		t.Errorf("last candidate %g", c[29])
	}
	for i := 1; i < len(c); i++ {
		if math.Abs(c[i]-c[i-1]-10000.0/30) > 1e-9 {
			t.Errorf("uneven spacing at %d", i)
		}
	}
}

func TestDurationMatchesPaper(t *testing.T) {
	// 4096 samples at 44.1 kHz lasts ~93 ms per the paper.
	d := DefaultParams().DurationSec()
	if d < 0.092 || d > 0.094 {
		t.Fatalf("duration %g s, want ≈0.093", d)
	}
}

func TestNewProducesValidCounts(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		s, err := New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s.Count() < 1 || s.Count() >= p.NumCandidates {
			t.Fatalf("count %d out of range", s.Count())
		}
		idx := s.Indices()
		for j := 1; j < len(idx); j++ {
			if idx[j] <= idx[j-1] {
				t.Fatalf("indices not strictly increasing: %v", idx)
			}
		}
	}
}

func TestNewNilRNG(t *testing.T) {
	if _, err := New(DefaultParams(), nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewWithCount(DefaultParams(), 3, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := TimeDomainRandom(DefaultParams(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestPowerBudgetInvariants(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 15, 29} {
		s, err := NewWithCount(p, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		wantRF := (32000.0 / float64(n)) * (32000.0 / float64(n))
		if math.Abs(s.RF()-wantRF) > 1e-6 {
			t.Errorf("n=%d: RF=%g want %g", n, s.RF(), wantRF)
		}
		if math.Abs(s.TotalRF()-32000*32000/float64(n)) > 1e-3 {
			t.Errorf("n=%d: TotalRF=%g", n, s.TotalRF())
		}
		// Never clips: peak ≤ FullScale ≤ int16 range.
		if peak := dsp.PeakAbs(s.Samples()); peak > p.FullScale {
			t.Errorf("n=%d: peak %g exceeds full scale", n, peak)
		}
	}
}

// TestSpectralConcentration verifies the constructed signal's power lands on
// its chosen candidate bins and nowhere else above the β floor.
func TestSpectralConcentration(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(11))
	s, err := NewWithCount(p, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dsp.PowerSpectrum(s.Samples())
	if err != nil {
		t.Fatal(err)
	}
	chosen := make(map[int]bool)
	for _, f := range s.Frequencies() {
		chosen[s.paramsBin(f)] = true
	}
	const theta = 5
	// Power at chosen bins ≈ RF.
	for _, f := range s.Frequencies() {
		got := dsp.BandPower(spec, s.paramsBin(f), theta)
		if got < 0.5*s.RF() {
			t.Errorf("freq %g: band power %g < RF/2 (%g)", f, got, s.RF()/2)
		}
	}
	// Power at non-chosen candidates below β = 0.5%·RF.
	beta := 0.005 * s.RF()
	for i, f := range p.Candidates() {
		if chosen[s.paramsBin(f)] {
			continue
		}
		if got := dsp.BandPower(spec, s.paramsBin(f), theta); got > beta {
			t.Errorf("candidate %d (%g Hz): leakage %g exceeds beta %g", i, f, got, beta)
		}
	}
}

// paramsBin is a test helper mirroring Algorithm 2's bin indexing.
func (s *Signal) paramsBin(f float64) int {
	return dsp.BinIndex(f, s.params.SampleRate, s.params.Length)
}

func TestMarshalRoundTripProperty(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(p, rng)
		if err != nil {
			return false
		}
		data, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalSignal(data)
		if err != nil {
			return false
		}
		return Equal(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSignal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalSignal(make([]byte, 10)); err == nil {
		t.Error("short accepted")
	}
	s, err := New(DefaultParams(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSignal(data[:len(data)-1]); err == nil {
		t.Error("truncated accepted")
	}
}

// TestUnmarshalBoundsLength is the hardening regression test: a descriptor
// whose Length field is absurd (here 2³⁰, a power of two that would pass
// Params.Validate and later demand an 8 GiB synthesis buffer from
// Samples) must be rejected at the Step-II trust boundary, as must a zero
// length. A length at the bound itself still decodes.
func TestUnmarshalBoundsLength(t *testing.T) {
	s, err := New(DefaultParams(), rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	forge := func(length uint32) []byte {
		d := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(d[0:4], length)
		return d
	}
	for _, bad := range []uint32{0, 1 << 30, MaxSignalLength * 2, ^uint32(0)} {
		if _, err := UnmarshalSignal(forge(bad)); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("length %d: got %v, want ErrBadEncoding", bad, err)
		}
	}
	if _, err := UnmarshalSignal(forge(MaxSignalLength)); err != nil {
		t.Errorf("length at the bound rejected: %v", err)
	}
}

// TestSamplesCachedAndStable pins the lazy-synthesis contract: Samples
// returns the same backing array on every call (no re-synthesis), the
// cached waveform matches a from-scratch synthesis bit for bit, and
// concurrent first calls settle on one buffer.
func TestSamplesCachedAndStable(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(23))
	s, err := New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	// An equal twin synthesizes the reference waveform independently.
	twin, err := NewFromIndices(p, s.Indices(), s.phases)
	if err != nil {
		t.Fatal(err)
	}

	var bufs [4][]float64
	var wg sync.WaitGroup
	for i := range bufs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bufs[i] = s.Samples()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(bufs); i++ {
		if &bufs[i][0] != &bufs[0][0] {
			t.Fatal("Samples returned distinct buffers across calls")
		}
	}
	if &s.Samples()[0] != &bufs[0][0] {
		t.Fatal("later Samples call re-synthesized")
	}
	want := twin.Samples()
	got := bufs[0]
	if len(got) != p.Length || len(want) != p.Length {
		t.Fatalf("lengths %d/%d, want %d", len(got), len(want), p.Length)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: cached %v != fresh synthesis %v", i, got[i], want[i])
		}
	}
}

func TestNewFromIndicesValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := NewFromIndices(p, nil, nil); err == nil {
		t.Error("empty indices accepted")
	}
	if _, err := NewFromIndices(p, []int{0, 0}, nil); err == nil {
		t.Error("duplicate indices accepted")
	}
	if _, err := NewFromIndices(p, []int{30}, nil); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NewFromIndices(p, []int{1, 2}, []float64{0}); err == nil {
		t.Error("phase length mismatch accepted")
	}
	s, err := NewFromIndices(p, []int{5, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx := s.Indices(); idx[0] != 2 || idx[1] != 5 {
		t.Errorf("indices not sorted: %v", idx)
	}
}

func TestEqual(t *testing.T) {
	p := DefaultParams()
	a, err := NewFromIndices(p, []int{1, 2}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFromIndices(p, []int{1, 2}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewFromIndices(p, []int{1, 3}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) || Equal(a, c) || Equal(a, nil) || !Equal(nil, nil) {
		t.Error("Equal misbehaves")
	}
}

func TestTimeDomainRandomFullScale(t *testing.T) {
	p := DefaultParams()
	x, err := TimeDomainRandom(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != p.Length {
		t.Fatalf("length %d", len(x))
	}
	if peak := dsp.PeakAbs(x); peak > p.FullScale {
		t.Fatalf("peak %g", peak)
	}
}
