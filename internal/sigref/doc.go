// Package sigref implements Step I of the ACTION protocol: construction of
// frequency-domain randomized reference signals.
//
// A reference Signal is a sum of n sinusoids (1 ≤ n < N) whose frequencies
// are drawn uniformly at random without replacement from N candidate
// frequencies — the centers of N equal bins spanning [25 kHz, 35 kHz] in
// the paper's configuration. Each sinusoid has amplitude FullScale/n so the
// sum never clips the 16-bit PCM range, giving per-frequency reference
// power R_f = (FullScale/n)² under the dsp.PowerSpectrum normalization.
//
// Invariants: signals marshal to a compact binary descriptor (the bytes
// shipped over the secure channel in Step II) and unmarshal to a
// bit-identical waveform; Samples returns the signal's own backing slice,
// which downstream code schedules by reference and never mutates — the
// slice-ownership contract audited in PR 2.
package sigref
