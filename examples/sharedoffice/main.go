// Sharedoffice: the multi-user scenario of Fig. 2(a). Three colleagues all
// use PIANO; while ours authenticates, the other two users' devices play
// their own randomized reference signals nearby. Sessions either succeed
// with slightly degraded accuracy or — when reference signals overlap
// significantly in the air — are denied outright (⊥), never silently
// wrong.
package main

import (
	"fmt"
	"log"

	"github.com/acoustic-auth/piano"
)

func main() {
	cfg := piano.DefaultConfig()
	cfg.Environment = piano.Office
	cfg.Seed = 23

	dep, err := piano.NewDeployment(cfg,
		piano.DeviceSpec{Name: "my-laptop", X: 0, Y: 0},
		piano.DeviceSpec{Name: "my-watch", X: 0.9, Y: 0})
	if err != nil {
		log.Fatal(err)
	}
	if err := dep.AddInterferer("colleague-1", 1.8, 1.6); err != nil {
		log.Fatal(err)
	}
	if err := dep.AddInterferer("colleague-2", -1.4, 2.1); err != nil {
		log.Fatal(err)
	}

	granted, denied := 0, 0
	for i := 0; i < 8; i++ {
		dec, err := dep.Authenticate()
		if err != nil {
			log.Fatal(err)
		}
		if dec.Granted {
			granted++
			fmt.Printf("session %d: granted, measured %.2f m\n", i+1, dec.DistanceM)
		} else {
			denied++
			fmt.Printf("session %d: denied (%s)\n", i+1, dec.Reason)
		}
	}
	fmt.Printf("\n%d granted, %d denied out of 8 sessions with two interfering users\n", granted, denied)
	fmt.Println("overlapped sessions fail closed — interference can never forge proximity")
}
