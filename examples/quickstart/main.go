// Quickstart: pair two devices one meter apart in an office and run a
// single PIANO authentication.
package main

import (
	"fmt"
	"log"

	"github.com/acoustic-auth/piano"
)

func main() {
	// The authenticating device is a voice-powered smart speaker at the
	// origin; the vouching device is the user's watch 0.8 m away.
	dep, err := piano.NewDeployment(piano.DefaultConfig(),
		piano.DeviceSpec{Name: "smart-speaker", X: 0, Y: 0},
		piano.DeviceSpec{Name: "watch", X: 0.8, Y: 0})
	if err != nil {
		log.Fatal(err)
	}

	dec, err := dep.Authenticate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: %s\n", dec.Reason)
	fmt.Printf("measured distance: %.2f m (true %.2f m)\n", dec.DistanceM, dep.TrueDistance())
	fmt.Printf("latency: %.2f s\n", dec.AuthTimeSec)
}
