// Wearable: the smartwatch ↔ smartphone pairing from the paper's
// motivating scenario, demonstrating threshold personalization: a cautious
// user tightens τ from 1.0 m to 0.5 m and sees how the decision boundary
// moves while the same physical layout is measured.
package main

import (
	"fmt"
	"log"

	"github.com/acoustic-auth/piano"
)

func main() {
	cfg := piano.DefaultConfig()
	cfg.Environment = piano.Office
	cfg.Seed = 11

	dep, err := piano.NewDeployment(cfg,
		piano.DeviceSpec{Name: "phone", X: 0, Y: 0, ClockSkewPPM: 22},
		piano.DeviceSpec{Name: "watch", X: 0.7, Y: 0, ClockSkewPPM: -9})
	if err != nil {
		log.Fatal(err)
	}

	for _, tau := range []float64{1.0, 0.5} {
		if err := dep.SetThreshold(tau); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("τ = %.1f m:\n", tau)
		for _, d := range []float64{0.3, 0.7, 1.4} {
			dep.MoveVouchingDevice(d, 0, 0)
			dec, err := dep.Authenticate()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  watch at %.1f m: granted=%v (%s", d, dec.Granted, dec.Reason)
			if dec.DistanceM > 0 {
				fmt.Printf(", measured %.2f m", dec.DistanceM)
			}
			fmt.Println(")")
		}
	}
}
