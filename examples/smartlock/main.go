// Smartlock: the garage-door scenario from the paper's introduction. A
// voice-controlled door lock only obeys "open the door" when the owner's
// phone vouches from within arm's reach. The example walks through the
// legitimate use, the owner leaving, and an intruder trying the command
// while the owner is in another room.
package main

import (
	"fmt"
	"log"

	"github.com/acoustic-auth/piano"
)

func main() {
	cfg := piano.DefaultConfig()
	cfg.Environment = piano.Home
	cfg.ThresholdM = 1.0
	cfg.Seed = 7

	dep, err := piano.NewDeployment(cfg,
		piano.DeviceSpec{Name: "door-lock", X: 0, Y: 0},
		piano.DeviceSpec{Name: "owner-phone", X: 0.6, Y: 0.2})
	if err != nil {
		log.Fatal(err)
	}

	say := func(phase string) {
		dec, err := dep.Authenticate()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "DOOR STAYS LOCKED"
		if dec.Granted {
			verdict = "DOOR OPENS"
		}
		fmt.Printf("%-42s -> %s (%s", phase, verdict, dec.Reason)
		if dec.DistanceM > 0 {
			fmt.Printf(", %.2f m", dec.DistanceM)
		}
		fmt.Println(")")
	}

	fmt.Println(`voice command: "open the door"`)
	say("owner at the door, phone in pocket")

	// The owner walks to the garden, 7 m away but still in Bluetooth
	// range — an intruder tries the voice command.
	dep.MoveVouchingDevice(7, 0, 0)
	say("owner in the garden (7 m), intruder speaks")

	// The owner is in the next room, close as the crow flies, but a wall
	// separates them: acoustic signals do not penetrate.
	dep.MoveVouchingDevice(0.8, 0, 1)
	say("owner behind a wall (0.8 m), intruder speaks")

	// The owner comes back.
	dep.MoveVouchingDevice(0.5, 0, 0)
	say("owner back at the door")
}
