// Weblogin: the paper's concluding future-work direction — "adapting PIANO
// to other application scenarios, e.g., web authentication". A laptop
// (authenticating device) serves a login endpoint; each login request
// triggers a PIANO proximity proof against the user's phone. The example
// drives the HTTP server in-process and shows a nearby login succeeding
// and a walked-away login failing.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"github.com/acoustic-auth/piano"
)

// loginServer gates an HTTP login behind a PIANO proximity proof.
type loginServer struct {
	mu  sync.Mutex
	dep *piano.Deployment
}

// response is the login endpoint's JSON body.
type response struct {
	Granted   bool    `json:"granted"`
	Reason    string  `json:"reason"`
	DistanceM float64 `json:"distanceMeters,omitempty"`
}

func (s *loginServer) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	dec, err := s.dep.Authenticate()
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusOK
	if !dec.Granted {
		status = http.StatusUnauthorized
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(response{
		Granted:   dec.Granted,
		Reason:    dec.Reason.String(),
		DistanceM: dec.DistanceM,
	}); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func main() {
	dep, err := piano.NewDeployment(piano.DefaultConfig(),
		piano.DeviceSpec{Name: "laptop", X: 0, Y: 0},
		piano.DeviceSpec{Name: "phone", X: 0.5, Y: 0})
	if err != nil {
		log.Fatal(err)
	}
	srv := &loginServer{dep: dep}
	ts := httptest.NewServer(http.HandlerFunc(srv.handleLogin))
	defer ts.Close()

	login := func(label string) {
		resp, err := http.Post(ts.URL+"/login", "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s HTTP %d %s", label, resp.StatusCode, body)
	}

	fmt.Println("web login gated by PIANO proximity proof")
	login("phone on the desk (0.5 m):")

	dep.MoveVouchingDevice(8, 0, 0) // user went to a meeting
	login("user in a meeting (8 m):")

	dep.MoveVouchingDevice(0.5, 0, 0)
	login("user back at the desk:")
}
