// Pickup: the §VI-D latency optimization the paper sketches as future
// work. The phone's accelerometer notices the grab gesture and PIANO
// starts authenticating immediately, so by the time the user finishes
// raising the device and speaks, the proximity proof is already done —
// the perceived latency drops from ~2.4 s to (near) zero.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/acoustic-auth/piano"
	"github.com/acoustic-auth/piano/internal/motion"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// A 4 s accelerometer window: the device rests, then is picked up at
	// t ≈ 1.5 s.
	trace, err := motion.SyntheticPickup(4, 50, 1.5, rng)
	if err != nil {
		log.Fatal(err)
	}
	det := motion.DefaultDetector()
	at, ok, err := det.PickupAt(trace)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("pickup not detected")
	}
	pickupSec := float64(at) / trace.RateHz
	fmt.Printf("accelerometer: pickup gesture detected at t=%.2f s\n", pickupSec)

	dep, err := piano.NewDeployment(piano.DefaultConfig(),
		piano.DeviceSpec{Name: "phone", X: 0, Y: 0},
		piano.DeviceSpec{Name: "watch", X: 0.4, Y: 0})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := dep.Authenticate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PIANO authentication: %s in %.2f s\n", dec.Reason, dec.AuthTimeSec)

	// Users take ~2 s from grabbing a device to finishing a voice
	// command; authentication started at the pickup instant overlaps it.
	const gestureSec = 2.0
	fmt.Printf("grab-to-command gesture: %.1f s\n", gestureSec)
	fmt.Printf("perceived latency without pre-auth: %.2f s\n", dec.AuthTimeSec)
	fmt.Printf("perceived latency with pre-auth:    %.2f s\n",
		motion.PreAuthLatency(dec.AuthTimeSec, gestureSec))
}
