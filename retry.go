package piano

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy is a client-side backoff policy for transient admission
// failures: capped exponential backoff with deterministic, seeded jitter.
// The zero value is a sensible default (4 attempts, 50 ms base doubling to
// a 2 s cap, no jitter).
//
// Only ErrOverloaded is retryable — it is the one failure that means "the
// service is healthy but momentarily full, try again". Every other failure
// is final: ErrClosed will not heal, validation errors will not heal,
// ErrInternal already consumed the request's session, and a context error
// is the caller's own signal to stop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first call included
	// (0 → 4). 1 means no retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry (0 → 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown delay (0 → 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between retries (0 → 2).
	Multiplier float64
	// Jitter spreads each delay by a ± fraction in [0, 1), desynchronizing
	// clients that were shed by the same overload spike. 0 disables it.
	Jitter float64
	// Seed drives the jitter draws (0 → 1). Equal policies with equal
	// seeds back off identically — retry schedules are as reproducible as
	// the sessions they retry.
	Seed int64
}

// withDefaults fills the zero-value fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// validate rejects policies that would silently misbehave.
func (p RetryPolicy) validate() error {
	switch {
	case p.MaxAttempts < 0:
		return fmt.Errorf("%w: RetryPolicy.MaxAttempts %d is negative", ErrConfig, p.MaxAttempts)
	case p.BaseDelay < 0:
		return fmt.Errorf("%w: RetryPolicy.BaseDelay %v is negative", ErrConfig, p.BaseDelay)
	case p.MaxDelay < 0:
		return fmt.Errorf("%w: RetryPolicy.MaxDelay %v is negative", ErrConfig, p.MaxDelay)
	case p.MaxDelay < p.BaseDelay:
		return fmt.Errorf("%w: RetryPolicy.MaxDelay %v below BaseDelay %v", ErrConfig, p.MaxDelay, p.BaseDelay)
	case p.Multiplier < 0 || (p.Multiplier > 0 && p.Multiplier < 1):
		return fmt.Errorf("%w: RetryPolicy.Multiplier %g below 1", ErrConfig, p.Multiplier)
	case p.Jitter < 0 || p.Jitter >= 1:
		return fmt.Errorf("%w: RetryPolicy.Jitter %g outside [0, 1)", ErrConfig, p.Jitter)
	}
	return nil
}

// delay returns the wait before retry number retry (0-based), jittered.
func (p RetryPolicy) delay(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 0; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	// One draw per retry regardless of Jitter, so schedules stay aligned
	// across policies that differ only in Jitter.
	u := rng.Float64()
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*u-1)
	}
	return time.Duration(d)
}

// AuthenticateWithRetry is AuthenticateContext under a RetryPolicy: an
// ErrOverloaded shed backs off (capped exponential, seeded jitter,
// ctx-aware) and tries again, up to the policy's attempt budget. Every
// other failure — typed rejections, validation errors, context errors, and
// decisions most of all — returns immediately; retrying can never change a
// decision, only recover from a full queue. When the budget runs out the
// last ErrOverloaded is returned wrapped with the attempt count (still
// matchable with errors.Is).
func (s *Service) AuthenticateWithRetry(ctx context.Context, req AuthRequest, policy RetryPolicy) (*Decision, error) {
	policy = policy.withDefaults()
	if err := policy.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(policy.Seed))
	var err error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(policy.delay(attempt-1, rng))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		var dec *Decision
		dec, err = s.AuthenticateContext(ctx, req)
		if err == nil {
			return dec, nil
		}
		if !errors.Is(err, ErrOverloaded) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("piano: gave up after %d attempts: %w", policy.MaxAttempts, err)
}
