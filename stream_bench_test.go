package piano

import (
	"testing"
	"time"
)

// benchStreamRequest is the BenchmarkOnline workload: one granted pair.
func benchStreamRequest() AuthRequest {
	return AuthRequest{
		Auth:  DeviceSpec{Name: "hub", X: 0, Y: 0, ClockSkewPPM: 9},
		Vouch: DeviceSpec{Name: "watch", X: 0.7, Y: 0, ClockSkewPPM: -13},
		Seed:  321,
	}
}

// BenchmarkOnline measures the online session against the batch path
// (recorded in BENCH_online.json / PERFORMANCE.md):
//
//   - decision-latency: what streaming is for — the wall-clock from the
//     LAST NEEDED sample's arrival to the decision. Everything up to the
//     horizon is pre-fed untimed (that audio cost wall-clock time to
//     record, not to compute); the timed region feeds the final chunk and
//     resolves. The batch path's equivalent latency is a full detect scan,
//     because it cannot start until the recording ends.
//   - replay: the whole recording fed in one chunk, timed end to end —
//     the streaming engine running batch-shaped work (its overhead bound).
//   - batch: Authenticate on the same request, the PR-6 baseline. Its
//     timed region is the WHOLE session (Steps I–VI including the scene
//     render), while decision-latency and replay time only the post-open
//     work — so replay plus the open cost (batch minus replay ≈ the
//     render) bounds the streaming engine's overhead over the batch scan.
func BenchmarkOnline(b *testing.B) { benchOnline(b, false) }

// BenchmarkOnlineWatchdog is BenchmarkOnline with the lifecycle watchdog
// live: generous idle/lifetime bounds that no benchmark session ever
// violates, so the delta against BenchmarkOnline is pure watchdog overhead
// — the per-feed atomic clock stores plus the background sweep goroutine
// (recorded in BENCH_lifecycle.json; must stay within noise).
func BenchmarkOnlineWatchdog(b *testing.B) { benchOnline(b, true) }

// BenchmarkOnlineFramed is BenchmarkOnline's decision-latency measured
// through the framed lossy-transport path on a perfectly clean wire: the
// same pre-feed-to-horizon shape, but every chunk travels as a
// CRC-protected frame through the per-role reassembler. The delta against
// BenchmarkOnline/decision-latency is the framing overhead on clean
// transport — CRC verify plus in-order fast-path reassembly — recorded in
// BENCH_loss.json; the acceptance bound is under 2%.
func BenchmarkOnlineFramed(b *testing.B) {
	const finalChunk = 4096
	req := benchStreamRequest()
	svcCfg := DefaultServiceConfig()
	svcCfg.Workers = 2
	svc, err := NewService(svcCfg)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	b.Run("decision-latency", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sess, err := svc.OpenSession(req)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-feed each role to its horizon minus the final chunk,
			// frame by frame, exactly as a clean wire delivers them.
			finals := map[Role]Frame{}
			for _, role := range []Role{RoleAuth, RoleVouch} {
				horizon := sess.EarlyFeedLen(role)
				cut := horizon - finalChunk
				if cut < 0 {
					cut = 0
				}
				rec := sess.Recording(role)
				seq := uint32(0)
				for off := 0; off < cut; off += finalChunk {
					end := off + finalChunk
					if end > cut {
						end = cut
					}
					if err := sess.FeedFrame(role, NewFrame(seq, off, rec[off:end])); err != nil {
						b.Fatal(err)
					}
					seq++
				}
				finals[role] = NewFrame(seq, cut, rec[cut:horizon])
			}
			b.StartTimer()
			for _, role := range []Role{RoleAuth, RoleVouch} {
				if err := sess.FeedFrame(role, finals[role]); err != nil {
					b.Fatal(err)
				}
			}
			dec, need, err := sess.TryResult()
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if need != 0 || dec == nil {
				b.Fatalf("framed horizon feed undecided: need=%d", need)
			}
			if dec.Degraded != nil {
				b.Fatal("clean framed feed reported degraded")
			}
		}
	})
}

func benchOnline(b *testing.B, watchdog bool) {
	const finalChunk = 4096
	req := benchStreamRequest()

	newSvc := func(b *testing.B) *Service {
		svcCfg := DefaultServiceConfig()
		svcCfg.Workers = 2
		if watchdog {
			svcCfg.SessionIdleTimeout = 30 * time.Second
			svcCfg.SessionMaxLifetime = 10 * time.Minute
		}
		svc, err := NewService(svcCfg)
		if err != nil {
			b.Fatal(err)
		}
		return svc
	}

	b.Run("decision-latency", func(b *testing.B) {
		svc := newSvc(b)
		defer svc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sess, err := svc.OpenSession(req)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-feed each role to its horizon minus the final chunk:
			// the state of a live session one microphone callback before
			// it can decide.
			last := map[Role][2]int{}
			for _, role := range []Role{RoleAuth, RoleVouch} {
				horizon := sess.EarlyFeedLen(role)
				cut := horizon - finalChunk
				if cut < 0 {
					cut = 0
				}
				if err := sess.Feed(role, sess.Recording(role)[:cut]); err != nil {
					b.Fatal(err)
				}
				last[role] = [2]int{cut, horizon}
			}
			b.StartTimer()
			for _, role := range []Role{RoleAuth, RoleVouch} {
				if err := sess.Feed(role, sess.Recording(role)[last[role][0]:last[role][1]]); err != nil {
					b.Fatal(err)
				}
			}
			dec, need, err := sess.TryResult()
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if need != 0 || dec == nil {
				b.Fatalf("horizon feed undecided: need=%d", need)
			}
		}
	})

	b.Run("replay", func(b *testing.B) {
		svc := newSvc(b)
		defer svc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sess, err := svc.OpenSession(req)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, role := range []Role{RoleAuth, RoleVouch} {
				if err := sess.Feed(role, sess.Recording(role)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sess.Result(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batch", func(b *testing.B) {
		svc := newSvc(b)
		defer svc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Authenticate(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
