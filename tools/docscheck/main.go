// Command docscheck is the repo's documentation gate (run via `make
// docs-check` and CI). Using only the standard library (the build image
// cannot install revive), it enforces the subset of revive's
// package-comments and exported rules this repo commits to:
//
//  1. every Go package in the module has a package comment;
//  2. every internal/* package and the root piano package keeps that
//     comment in a dedicated doc.go (one place to read a package's
//     responsibility, key types, and invariants);
//  3. exported top-level identifiers in library packages (root +
//     internal/*) have doc comments starting with the identifier's name;
//  4. the narrative docs README.md and ARCHITECTURE.md exist and are
//     non-trivial.
//
// Exit status is non-zero with one line per violation, so CI output reads
// like a compiler error list.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	report := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	checkNarrativeDocs(root, report)

	pkgDirs := map[string][]string{} // dir -> non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgDirs[dir] = append(pkgDirs[dir], path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}

	dirs := make([]string, 0, len(pkgDirs))
	for dir := range pkgDirs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		checkPackage(dir, pkgDirs[dir], report)
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Printf("docscheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

func checkNarrativeDocs(root string, report func(string, ...any)) {
	for _, name := range []string{"README.md", "ARCHITECTURE.md"} {
		info, err := os.Stat(filepath.Join(root, name))
		switch {
		case err != nil:
			report("%s: missing (the docs gate requires it)", name)
		case info.Size() < 512:
			report("%s: suspiciously small (%d bytes); write the real document", name, info.Size())
		}
	}
}

// isLibraryDir reports whether dir holds a package we hold to the exported-
// comment rule and the doc.go convention (root package + internal/*).
func isLibraryDir(dir string) bool {
	clean := filepath.ToSlash(filepath.Clean(dir))
	// Match "internal" as a whole path segment — a directory merely named
	// e.g. "myinternal" is not a library package.
	return clean == "." || strings.Contains("/"+clean+"/", "/internal/")
}

func checkPackage(dir string, files []string, report func(string, ...any)) {
	fset := token.NewFileSet()
	sort.Strings(files)

	var pkgName string
	hasPkgComment := false
	docGoHasComment := false
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			report("%s: parse error: %v", file, err)
			continue
		}
		pkgName = f.Name.Name
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			if hasPkgComment {
				report("%s: duplicate package comment (keep exactly one, in doc.go)", file)
			}
			hasPkgComment = true
			if filepath.Base(file) == "doc.go" {
				docGoHasComment = true
			}
		}
		if isLibraryDir(dir) && pkgName != "main" {
			checkExported(fset, f, report)
		}
	}
	if pkgName == "" {
		return
	}
	if !hasPkgComment {
		report("%s: package %s has no package comment", dir, pkgName)
		return
	}
	if isLibraryDir(dir) && pkgName != "main" && !docGoHasComment {
		report("%s: package %s must keep its package comment in doc.go", dir, pkgName)
	}
}

func checkExported(fset *token.FileSet, f *ast.File, report func(string, ...any)) {
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report("%s: exported %s %s has no doc comment", pos(d), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
					}
				case *ast.ValueSpec:
					// Grouped consts/vars inherit the group comment, same
					// as revive's exported rule in its default mode.
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report("%s: exported value %s has no doc comment", pos(s), name.Name)
						}
					}
				}
			}
		}
	}
}
