package piano

import (
	"math"
	"strings"
	"testing"
)

func newDeploymentT(t testing.TB, cfg Config, distM float64) *Deployment {
	t.Helper()
	dep, err := NewDeployment(cfg,
		DeviceSpec{Name: "speaker", X: 0, Y: 0, ClockSkewPPM: 15},
		DeviceSpec{Name: "watch", X: distM, Y: 0, ClockSkewPPM: -20})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestQuickstartFlow(t *testing.T) {
	dep := newDeploymentT(t, DefaultConfig(), 0.8)
	dec, err := dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Granted || dec.Reason != ReasonGranted {
		t.Fatalf("0.8 m under τ=1 m should grant; got %+v", dec)
	}
	if dec.DistanceM < 0.5 || dec.DistanceM > 1.1 {
		t.Fatalf("distance %.2f implausible for 0.8 m", dec.DistanceM)
	}
	if dec.AuthTimeSec <= 0 || dec.AuthTimeSec > 3.5 {
		t.Fatalf("auth time %.2f s", dec.AuthTimeSec)
	}
}

func TestWalkAwayDenies(t *testing.T) {
	dep := newDeploymentT(t, DefaultConfig(), 0.8)
	dep.MoveVouchingDevice(6, 0, 0) // user leaves for lunch
	dec, err := dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Granted {
		t.Fatal("granted with user 6 m away")
	}
	if dec.Reason != ReasonSignalAbsent {
		t.Fatalf("reason %v", dec.Reason)
	}

	dep.MoveVouchingDevice(12, 0, 0) // beyond Bluetooth
	dec, err = dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Granted || dec.Reason != ReasonBluetoothOutOfRange {
		t.Fatalf("got %+v", dec)
	}

	dep.MoveVouchingDevice(0.8, 0, 0) // back at the desk
	dec, err = dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Granted {
		t.Fatalf("denied after returning: %v", dec.Reason)
	}
}

func TestWallDenies(t *testing.T) {
	dep := newDeploymentT(t, DefaultConfig(), 0.8)
	dep.MoveVouchingDevice(0.8, 0, 1) // next room, 0.8 m away
	dec, err := dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Granted || dec.Reason != ReasonSignalAbsent {
		t.Fatalf("wall should deny via absent signal; got %+v", dec)
	}
}

func TestThresholdPersonalization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Environment = Quiet
	dep := newDeploymentT(t, cfg, 0.8)
	if err := dep.SetThreshold(0.5); err != nil {
		t.Fatal(err)
	}
	if dep.Threshold() != 0.5 {
		t.Fatal("threshold accessor")
	}
	dec, err := dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Granted {
		t.Fatalf("0.8 m with τ=0.5 m granted (measured %.2f)", dec.DistanceM)
	}
	if dec.Reason != ReasonDistanceExceedsThreshold {
		t.Fatalf("reason %v", dec.Reason)
	}
	if err := dep.SetThreshold(-1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestMeasureDistanceAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Environment = Quiet
	dep := newDeploymentT(t, cfg, 1.5)
	m, err := dep.MeasureDistance()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found {
		t.Fatal("signal absent at 1.5 m in quiet room")
	}
	if e := math.Abs(m.DistanceM - 1.5); e > 0.12 {
		t.Fatalf("error %.1f cm", e*100)
	}
	if got := dep.TrueDistance(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("true distance %.3f", got)
	}
}

func TestEnergyTracking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackEnergy = true
	dep := newDeploymentT(t, cfg, 0.8)
	for i := 0; i < 2; i++ {
		if _, err := dep.Authenticate(); err != nil {
			t.Fatal(err)
		}
	}
	rep := dep.Energy()
	if rep.Authentications != 2 {
		t.Fatalf("count %d", rep.Authentications)
	}
	if rep.TotalJoules <= 0 || rep.BatteryPercent <= 0 {
		t.Fatalf("energy report %+v", rep)
	}
	if !strings.Contains(rep.Breakdown, "cpu") {
		t.Fatalf("breakdown %q", rep.Breakdown)
	}

	// Without tracking, report is zero-valued but counts sessions.
	dep2 := newDeploymentT(t, DefaultConfig(), 0.8)
	if _, err := dep2.Authenticate(); err != nil {
		t.Fatal(err)
	}
	rep2 := dep2.Energy()
	if rep2.TotalJoules != 0 || rep2.Authentications != 1 {
		t.Fatalf("untracked report %+v", rep2)
	}
}

func TestInterferers(t *testing.T) {
	dep := newDeploymentT(t, DefaultConfig(), 0.8)
	if err := dep.AddInterferer("", 2, 2); err == nil {
		t.Fatal("nameless interferer accepted")
	}
	if err := dep.AddInterferer("user2", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := dep.AddInterferer("user3", -1.5, 2); err != nil {
		t.Fatal(err)
	}
	// With interference, authentication must still terminate cleanly —
	// granted, threshold-denied, or ⊥ are all legal outcomes.
	dec, err := dep.Authenticate()
	if err != nil {
		t.Fatal(err)
	}
	switch dec.Reason {
	case ReasonGranted, ReasonSignalAbsent, ReasonDistanceExceedsThreshold:
	default:
		t.Fatalf("unexpected reason %v", dec.Reason)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	dep, err := NewDeployment(Config{}, DeviceSpec{}, DeviceSpec{X: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Threshold() != 1.0 {
		t.Fatalf("default threshold %g", dep.Threshold())
	}
	if dep.cfg.Environment != Office || dep.cfg.Seed != 1 {
		t.Fatalf("defaults %+v", dep.cfg)
	}
}

func TestEnvironmentStrings(t *testing.T) {
	for env, want := range map[Environment]string{
		Quiet: "quiet", Office: "office", Home: "home",
		Restaurant: "restaurant", Street: "street",
	} {
		if env.String() != want {
			t.Errorf("%d → %q", env, env.String())
		}
	}
}

func TestSeedReproducibility(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig()
		cfg.Seed = 99
		dep := newDeploymentT(t, cfg, 1.2)
		m, err := dep.MeasureDistance()
		if err != nil {
			t.Fatal(err)
		}
		return m.DistanceM
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different results: %g vs %g", a, b)
	}
}
