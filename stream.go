package piano

import (
	"context"
	"errors"
	"fmt"

	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/frame"
	"github.com/acoustic-auth/piano/internal/service"
)

// Role names one of the two participants in a streaming session; each role
// feeds its own microphone's PCM independently.
type Role = core.Role

// The two session roles.
const (
	// RoleAuth is the authenticating device (the voice-powered hub).
	RoleAuth = core.RoleAuth
	// RoleVouch is the vouching device (the user's wearable).
	RoleVouch = core.RoleVouch
)

// Streaming-session failure modes; match with errors.Is.
var (
	// ErrStreamDecided: audio arrived after the session reached its
	// decision (the decision is final; fetch it with Result).
	ErrStreamDecided = service.ErrStreamDecided
	// ErrFeedOverflow: a chunk would exceed the session's declared
	// recording length. It was rejected whole — nothing was ingested —
	// and the session stays open.
	ErrFeedOverflow = service.ErrFeedOverflow
	// ErrNeedMoreAudio: Result was called before enough audio had arrived
	// to decide. Keep feeding and retry.
	ErrNeedMoreAudio = service.ErrNeedMoreAudio
	// ErrInsufficientAudio: the transport lost too much of the recording
	// for any decision to be trustworthy — cumulative loss over the
	// configured ceiling, or loss inside the detected peak's fine-scan
	// band. The session is resolved (slot released); the caller must
	// restart the protocol, never accept a low-confidence answer.
	ErrInsufficientAudio = service.ErrInsufficientAudio
	// ErrFrameMalformed: bytes that are not a frame at all (short header,
	// wrong magic/version, length mismatch). From DecodeFrame only.
	ErrFrameMalformed = frame.ErrMalformed
	// ErrFrameCorrupt: a frame's payload contradicts its CRC. The frame
	// was rejected whole — corrupt audio is never scored — and the
	// session stays open for a retransmission.
	ErrFrameCorrupt = service.ErrFrameCorrupt
	// ErrFrameRange: a frame's samples fall outside the declared
	// recording or contradict already-delivered audio. Rejected whole;
	// session open.
	ErrFrameRange = service.ErrFrameRange
	// ErrMixedFeed: a role was fed through both Feed and FeedFrame; each
	// role commits to one transport on its first feed.
	ErrMixedFeed = service.ErrMixedFeed
)

// Frame is one wire chunk of a role's PCM on a lossy transport: a sequence
// number, the chunk's sample offset in the recording, a CRC-32 over header
// and payload, and the samples themselves. Build with NewFrame (which
// computes the CRC), serialize with EncodeFrame/Frame.Encode, parse with
// DecodeFrame.
type Frame = frame.Frame

// FrameStats counts one role's framed-transport traffic: accepted frames,
// duplicates, CRC rejections, range rejections, and samples declared lost.
type FrameStats = frame.Stats

// Degraded reports how much audio a decided session lost to the transport
// (see Decision.Degraded).
type Degraded = core.Degraded

// NewFrame builds a frame for the pcm chunk starting at sample offset,
// computing its CRC. The pcm slice is referenced, not copied.
func NewFrame(seq uint32, offset int, pcm []int16) Frame { return frame.New(seq, offset, pcm) }

// DecodeFrame parses one encoded frame. Typed failures: ErrFrameMalformed
// (not a frame), ErrFrameCorrupt (CRC mismatch).
func DecodeFrame(buf []byte) (Frame, error) { return frame.Decode(buf) }

// AuthSession is one online authentication session: the protocol's
// signal exchange runs at open time, and the session then ingests each
// role's microphone audio in chunks — deciding as soon as both recordings
// have revealed their reference signals, typically well before the
// recordings end (EarlyFeedLen marks the guaranteed decision point).
//
// Determinism contract: the decision is bit-identical to Authenticate on
// the same request — for any chunk sizes, any feeding interleaving, any
// GOMAXPROCS, whether decided early or after the full feed.
//
// A session occupies one of the service's concurrent-session slots until
// it resolves: reach a decision, or Close it. When the service configures
// SessionIdleTimeout/SessionMaxLifetime, a session the client stops
// feeding (or keeps open too long) is resolved ErrSessionStalled /
// ErrSessionExpired by the lifecycle watchdog and its slot reclaimed.
// Methods are safe for concurrent use; the intended shape is one feeder
// goroutine per role.
type AuthSession struct {
	sn *service.Session
}

// OpenSession opens a streaming session (OpenSessionContext with an
// uncancellable context).
func (s *Service) OpenSession(req AuthRequest) (*AuthSession, error) {
	return s.OpenSessionContext(context.Background(), req)
}

// OpenSessionContext validates and admits a streaming session — the same
// admission control, typed failures, and cancellation semantics as
// AuthenticateContext — and runs the protocol's pre-audio steps, so the
// returned session is ready to ingest PCM. Canceling ctx afterwards
// resolves an undecided session to ctx's error.
func (s *Service) OpenSessionContext(ctx context.Context, req AuthRequest) (*AuthSession, error) {
	sreq, err := convertRequest(req)
	if err != nil {
		return nil, err
	}
	sn, err := s.svc.OpenSession(ctx, sreq)
	if err != nil {
		return nil, wrapSessionErr(err)
	}
	return &AuthSession{sn: sn}, nil
}

// wrapSessionErr applies the package's error-wrapping convention: typed
// sentinels and context errors pass through unwrapped (callers match them
// directly), everything else gets the package prefix.
func wrapSessionErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrClosed),
		errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrInternal),
		errors.Is(err, ErrStreamDecided),
		errors.Is(err, ErrFeedOverflow),
		errors.Is(err, ErrNeedMoreAudio),
		errors.Is(err, ErrSessionReaped),
		errors.Is(err, ErrInsufficientAudio),
		errors.Is(err, ErrFrameCorrupt),
		errors.Is(err, ErrFrameRange),
		errors.Is(err, ErrMixedFeed):
		return err
	}
	return fmt.Errorf("piano: %w", err)
}

// Recording returns the role's complete simulated microphone recording —
// the source the caller feeds chunks from (a real deployment would feed
// live capture instead). Callers must not mutate it.
func (a *AuthSession) Recording(role Role) []int16 { return a.sn.Recording(role) }

// EarlyFeedLen returns the role's decision horizon in samples: once every
// role has been fed at least this much, the session decides without the
// rest of its recording. Feeding less may already suffice; feeding the
// full recording always does.
func (a *AuthSession) EarlyFeedLen(role Role) int { return a.sn.EarlyFeedLen(role) }

// Fed returns how many samples of the role's recording have arrived.
func (a *AuthSession) Fed(role Role) int { return a.sn.Fed(role) }

// Feed ingests one chunk of the role's audio and advances its detection
// incrementally. Typed failures: ErrFeedOverflow (chunk rejected whole,
// session open), ErrStreamDecided (decision already made), ErrInternal
// (the session died to a recovered panic and released its slot), or the
// session context's error once canceled.
func (a *AuthSession) Feed(role Role, pcm []int16) error {
	return wrapSessionErr(a.sn.Feed(role, pcm))
}

// FeedFrame ingests one framed chunk of the role's audio from a lossy
// transport: frames may arrive out of order, duplicated, overlapping, or
// corrupted, and the session reassembles them — bounded by the service's
// ReorderWindow — into the same scan path Feed uses, so a framed session
// on a clean transport decides bit-identically to Feed and to batch.
// Typed failures leaving the session open: ErrFrameCorrupt (resend it),
// ErrFrameRange, ErrMixedFeed. Gaps unrepaired past the reorder window
// (or GapRepairTimeout) are declared lost: their windows are excluded
// from scoring, and a session losing more than the detect ceiling — or
// audio the decision would have to trust — resolves ErrInsufficientAudio.
func (a *AuthSession) FeedFrame(role Role, f Frame) error {
	return wrapSessionErr(a.sn.FeedFrame(role, f))
}

// FinishFeed declares the role's lossy transport finished: outstanding
// gaps and the unreceived tail are declared lost, so Result will either
// decide from the surviving audio or report ErrInsufficientAudio rather
// than wait forever. Idempotent; framed roles only (ErrMixedFeed
// otherwise).
func (a *AuthSession) FinishFeed(role Role) error {
	return wrapSessionErr(a.sn.FinishFeed(role))
}

// FrameStats returns the role's framed-transport counters (zero for a
// role fed through plain Feed).
func (a *AuthSession) FrameStats(role Role) FrameStats { return a.sn.FrameStats(role) }

// TryResult attempts the decision over the audio fed so far: need > 0
// means the session is healthy but some role requires at least that many
// more samples; need == 0 with a nil error is the final decision (cached —
// later calls keep returning it).
func (a *AuthSession) TryResult() (*Decision, int, error) {
	res, need, err := a.sn.TryResult()
	if err != nil {
		return nil, 0, wrapSessionErr(err)
	}
	if need > 0 {
		return nil, need, nil
	}
	return toDecision(res), 0, nil
}

// Result is TryResult for callers done feeding: an undecided session
// reports ErrNeedMoreAudio instead of a need count.
func (a *AuthSession) Result() (*Decision, error) {
	res, err := a.sn.Result()
	if err != nil {
		return nil, wrapSessionErr(err)
	}
	return toDecision(res), nil
}

// Close abandons an undecided session and releases its service slot;
// after a decision it is a no-op. Idempotent.
func (a *AuthSession) Close() { a.sn.Close() }
