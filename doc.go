// Package piano is a faithful reimplementation of PIANO — the
// proximity-based user authentication method for voice-powered IoT devices
// from Gong et al., ICDCS 2017 — together with a complete simulation of the
// physical substrate the paper's prototype ran on (speakers, microphones,
// acoustic propagation, ambient noise, Bluetooth).
//
// A user carries a vouching device (say, a smartwatch); an authenticating
// device (say, a smart speaker or phone) grants access iff the acoustic
// distance between the two — measured by the ACTION protocol with
// randomized, spoofing-resistant reference signals — is within a
// user-chosen threshold.
//
// Quick start:
//
//	dep, err := piano.NewDeployment(piano.DefaultConfig(),
//	    piano.DeviceSpec{Name: "speaker", X: 0, Y: 0},
//	    piano.DeviceSpec{Name: "watch", X: 0.8, Y: 0})
//	...
//	dec, err := dep.Authenticate()
//	if dec.Granted { ... }
//
// # Serving many users
//
// A Deployment is one pairing running one session at a time. Always-on
// hubs that authenticate many users concurrently use a Service instead: a
// long-lived server that accepts concurrent Authenticate calls and batches
// every session's signal-detection work through one bounded worker pool
// with FFT plans pinned per window length. Detection runs the band-limited
// scan engine — per-window spectra are computed only over the candidate
// band Algorithm 2 reads, streamed incrementally between windows when the
// scan step is below the measured sliding-DFT break-even — and the service
// prewarms each worker's scan scratch at construction, so steady-state
// traffic allocates nothing on the scan path. Each session keeps its own
// seeded RNG stream, so its decision is bit-identical to running the same
// request through a Deployment — at any concurrency level.
//
//	svc, err := piano.NewService(piano.DefaultServiceConfig())
//	...
//	defer svc.Close()
//	dec, err := svc.Authenticate(piano.AuthRequest{
//	    Auth:  piano.DeviceSpec{Name: "hub", X: 0, Y: 0},
//	    Vouch: piano.DeviceSpec{Name: "watch", X: 0.8, Y: 0},
//	    Seed:  42,
//	})
//
// # Deciding while the audio arrives
//
// Authenticate scans a complete recording after the fact. The streaming
// session decides while the audio is still arriving: OpenSession runs the
// protocol's setup steps, then each role's PCM is fed in chunks of any
// size — a live microphone callback shape — and TryResult returns the
// decision as soon as both devices have heard everything that can matter
// (typically well before the recording ends), bit-identical to the batch
// decision for the same request no matter how the audio was chunked:
//
//	sess, err := svc.OpenSession(req)
//	...
//	for !decided {
//	    sess.Feed(piano.RoleAuth, nextChunkA)
//	    sess.Feed(piano.RoleVouch, nextChunkV)
//	    dec, need, err := sess.TryResult()
//	    decided = err == nil && need == 0
//	}
//
// ARCHITECTURE.md's "The online session" section explains the early
// horizon; cmd/piano-serve's -stream flag demonstrates it live.
//
// # Living with real clients
//
// Real clients misbehave: they vanish mid-feed without closing their
// session, and they arrive during overload spikes. ServiceConfig's
// SessionIdleTimeout and SessionMaxLifetime arm a lifecycle watchdog that
// resolves abandoned streaming sessions with typed errors
// (ErrSessionStalled / ErrSessionExpired, both matching ErrSessionReaped)
// and reclaims their slots; AuthenticateWithRetry applies a RetryPolicy —
// capped exponential backoff with deterministic seeded jitter — that
// retries only ErrOverloaded, the one failure that heals by waiting.
// ARCHITECTURE.md's "Session lifecycle" diagram shows every resolution
// path; cmd/piano-serve's -abandon-rate flag demonstrates reaping live.
//
// # Under the hood
//
// Each session renders a seeded acoustic scene (internal/world) through the
// physical channel model (internal/acoustic) — every impulse-response path
// folded into one composite sparse FIR and convolved once per play — then
// locates both randomized reference signals (internal/sigref) in each
// device's recording with the paper's frequency-domain detector
// (internal/detect) built on zero-alloc planned FFTs (internal/dsp), and
// finally applies the clock-offset-free Eq. 3 distance and the τ-threshold
// decision (internal/core). ARCHITECTURE.md traces one authentication
// through every layer and states the repo-wide determinism contract;
// PERFORMANCE.md records how each engine earned its place.
package piano
