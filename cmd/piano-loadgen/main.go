// Command piano-loadgen drives a piano.Service with thousands of concurrent
// authentication sessions and reports what the service did under that load:
// p50/p95/p99 decision latency, achieved sessions/sec, and shed counts by
// typed error category — human-readable on stdout and machine-readable with
// -json.
//
// Two load models, chosen by -rate:
//
//   - Closed loop (-rate 0, the default): -concurrency workers each open
//     their next session the moment the previous one resolves. The offered
//     load adapts to the server's speed, which makes it the right tool for
//     saturation search — raise -concurrency until sessions/sec stops
//     rising and latency starts climbing.
//   - Open loop (-rate R): sessions arrive on a seeded Poisson process at R
//     sessions/sec (internal/arrival.Arrivals) no matter how the server is
//     doing — the way real traffic behaves, and the model that actually
//     exercises admission control: when the service falls behind, arrivals
//     keep coming and the queue bounds shed them with ErrOverloaded.
//
// -stream switches each session from the batch Authenticate call to the
// online session API: audio is fed chunk-by-chunk on the session's seeded
// arrival schedule (jittered chunk sizes, underrun bursts, clients that
// stall or vanish mid-feed at -abandon-rate, reaped by the lifecycle
// watchdog), with chunks delivered flat-out — the chunking stresses the
// incremental scan path without slaving the run to audio real time.
//
// -shards exercises the service's sharded worker groups
// (ServiceConfig.ShardCount); -grid ignores the single-run flags and
// records the full scaling matrix — GOMAXPROCS × concurrency × {sharded,
// unsharded} × {batch, stream} — as the BENCH_loadgen.json report.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/acoustic-auth/piano"
	"github.com/acoustic-auth/piano/internal/arrival"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-loadgen:", err)
		os.Exit(1)
	}
}

// opts bundles one load run's knobs.
type opts struct {
	sessions    int
	rate        float64 // sessions/sec; > 0 switches to the open-loop driver
	concurrency int     // closed-loop worker count
	stream      bool
	retry       bool
	seed        int64

	// Service sizing.
	workers     int
	shards      int
	maxSessions int
	queueDepth  int
	queueWait   time.Duration
	idleTimeout time.Duration

	// Stream-mode arrival model.
	chunkMS     int
	jitter      float64
	underrun    float64
	abandonRate float64

	// Stream-mode lossy-transport model: any knob > 0 switches the feed
	// from plain chunks to framed chunks over a seeded lossy wire
	// (internal/arrival.Wire) — frames dropped, duplicated, reordered, and
	// corrupted on a schedule that replays exactly per seed.
	loss    float64
	dup     float64
	reorder float64
	corrupt float64
}

// framed reports whether the run feeds framed chunks over the lossy wire.
func (o opts) framed() bool {
	return o.loss > 0 || o.dup > 0 || o.reorder > 0 || o.corrupt > 0
}

// Shed categories, in report order. Every typed terminal error the service
// can hand a load-generator client maps to exactly one of these; "other" is
// reserved for errors the harness does not know — its count growing on a
// known typed error is a reporting bug (pinned by TestCategoryCoversTypedErrors).
var categories = []string{"overloaded", "closed", "stalled", "expired", "internal", "canceled", "insufficient", "other"}

// category buckets one failed session by its typed cause. The reap
// categories are checked before the context ones: a watchdog resolution is
// reported as what the server decided (stalled/expired), never as the bare
// context error the losing feeder also observed.
func category(err error) string {
	switch {
	case errors.Is(err, piano.ErrSessionStalled):
		return "stalled"
	case errors.Is(err, piano.ErrSessionExpired):
		return "expired"
	case errors.Is(err, piano.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, piano.ErrClosed):
		return "closed"
	case errors.Is(err, piano.ErrInternal):
		return "internal"
	case errors.Is(err, piano.ErrInsufficientAudio):
		// The transport lost audio the decision would have had to trust;
		// the server refused typed rather than guess. First-class, never
		// "other": operators alert on this one separately.
		return "insufficient"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "other"
	}
}

// Percentiles is the decision-latency distribution of completed sessions.
type Percentiles struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// percentile returns the q-quantile of the sorted latencies in
// milliseconds, by the nearest-rank method (0 when nothing completed).
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// Summary is one load run's machine-readable report.
type Summary struct {
	Mode           string         `json:"mode"` // "batch" | "stream"
	Loop           string         `json:"loop"` // "closed" | "open"
	GOMAXPROCS     int            `json:"gomaxprocs"`
	Workers        int            `json:"workers"`
	Shards         int            `json:"shards"`
	Concurrency    int            `json:"concurrency,omitempty"`
	OfferedRate    float64        `json:"offered_rate_per_sec,omitempty"`
	Sessions       int            `json:"sessions"`
	Completed      int            `json:"completed"`
	Granted        int            `json:"granted"`
	Degraded       int            `json:"degraded"`
	Shed           map[string]int `json:"shed"`
	WallMS         float64        `json:"wall_ms"`
	SessionsPerSec float64        `json:"sessions_per_sec"`
	Latency        Percentiles    `json:"decision_latency"`
}

// outcome is one session's terminal state.
type outcome struct {
	lat      time.Duration
	granted  bool
	degraded bool // decided despite transport loss (Decision.Degraded != nil)
	err      error
}

// driver runs sessions against one service under one opts set.
type driver struct {
	svc    *piano.Service
	o      opts
	arrCfg arrival.Config
}

// workload builds one request per simulated user: device pairs staggered
// around the threshold, distinct skews, per-session seeds derived from the
// run seed so every run is replayable.
func workload(sessions int, seed int64) []piano.AuthRequest {
	reqs := make([]piano.AuthRequest, sessions)
	for i := range reqs {
		dist := 0.3 + 0.15*float64(i%10)
		reqs[i] = piano.AuthRequest{
			Auth:  piano.DeviceSpec{Name: fmt.Sprintf("hub-%d", i), X: 0, Y: 0, ClockSkewPPM: float64(5 + i%25)},
			Vouch: piano.DeviceSpec{Name: fmt.Sprintf("watch-%d", i), X: dist, Y: 0, ClockSkewPPM: -float64(3 + i%20)},
			Seed:  seed + int64(i),
		}
	}
	return reqs
}

// one runs a single session to its terminal state.
func (d *driver) one(ctx context.Context, req piano.AuthRequest) outcome {
	if d.o.stream {
		return d.oneStream(ctx, req)
	}
	start := time.Now()
	var dec *piano.Decision
	var err error
	if d.o.retry {
		dec, err = d.svc.AuthenticateWithRetry(ctx, req, piano.RetryPolicy{Seed: req.Seed})
	} else {
		dec, err = d.svc.AuthenticateContext(ctx, req)
	}
	if err != nil {
		return outcome{err: err}
	}
	return outcome{lat: time.Since(start), granted: dec.Granted}
}

// oneStream runs a single streaming session: open, feed both roles on their
// seeded arrival chunk schedules (flat-out — the schedule shapes the
// chunking, not the pacing), decide at the horizon. A client whose drawn
// fate is Stall/Abandon stops feeding and waits for the lifecycle watchdog
// to reap the session with a typed error, exactly like a vanished device.
func (d *driver) oneStream(ctx context.Context, req piano.AuthRequest) outcome {
	if d.o.framed() {
		return d.oneStreamFramed(ctx, req)
	}
	start := time.Now()
	sess, err := d.svc.OpenSessionContext(ctx, req)
	if err != nil {
		return outcome{err: err}
	}
	roles := []piano.Role{piano.RoleAuth, piano.RoleVouch}
	src := map[piano.Role]*arrival.Source{}
	for ri, role := range roles {
		if src[role], err = arrival.New(d.arrCfg, req.Seed*2+int64(ri)); err != nil {
			sess.Close()
			return outcome{err: err}
		}
	}
	at := map[piano.Role]int{}
	alive := true
	for alive {
		fedAny := false
		for _, role := range roles {
			rec := sess.Recording(role)
			ev := src[role].Next(at[role], len(rec))
			switch ev.Kind {
			case arrival.Chunk, arrival.Underrun:
				if ferr := sess.Feed(role, rec[at[role]:at[role]+ev.N]); ferr != nil {
					if errors.Is(ferr, piano.ErrStreamDecided) {
						break // decided on the other role's feed; fetch below
					}
					return outcome{err: ferr}
				}
				at[role] += ev.N
				fedAny = true
			case arrival.Stall, arrival.Abandon:
				alive = false
			}
		}
		if !alive || ctx.Err() != nil {
			break
		}
		dec, need, terr := sess.TryResult()
		if terr != nil {
			return outcome{err: terr}
		}
		if need == 0 {
			return outcome{lat: time.Since(start), granted: dec.Granted}
		}
		if !fedAny {
			return outcome{err: fmt.Errorf("session undecided after the full feed (need %d)", need)}
		}
	}
	// The client vanished (or the run was interrupted): do what a dead
	// client does — stop feeding, never Close — and poll gently until the
	// watchdog (or cancellation) resolves the session with a typed error.
	// Audio already past the horizon may still decide during the wait.
	for {
		dec, need, terr := sess.TryResult()
		if terr != nil {
			return outcome{err: terr}
		}
		if need == 0 {
			return outcome{lat: time.Since(start), granted: dec.Granted}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// oneStreamFramed runs a single streaming session over the lossy wire:
// each role's frames arrive on their seeded wire schedule — dropped,
// duplicated, reordered, corrupted — and the session reassembles them,
// deciding early when it can. Corrupt frames are refused typed by the
// server and this client does not retransmit (no NACK channel), so they
// become gaps; once a role's schedule is exhausted the client declares
// that transport finished and unrepaired gaps become loss. A session past
// the loss ceiling resolves ErrInsufficientAudio — the "insufficient"
// category — and a decision that survived loss is counted degraded.
func (d *driver) oneStreamFramed(ctx context.Context, req piano.AuthRequest) outcome {
	start := time.Now()
	sess, err := d.svc.OpenSessionContext(ctx, req)
	if err != nil {
		return outcome{err: err}
	}
	wire := arrival.WireConfig{
		LossProb:    d.o.loss,
		DupProb:     d.o.dup,
		ReorderProb: d.o.reorder,
		CorruptProb: d.o.corrupt,
	}
	roles := []piano.Role{piano.RoleAuth, piano.RoleVouch}
	evs := map[piano.Role][]arrival.WireEvent{}
	for ri, role := range roles {
		evs[role], err = arrival.Wire(d.arrCfg, wire, req.Seed*2+int64(ri), len(sess.Recording(role)))
		if err != nil {
			sess.Close()
			return outcome{err: err}
		}
	}
	at := map[piano.Role]int{}
	finished := map[piano.Role]bool{}
	for {
		fedAny := false
		for _, role := range roles {
			if finished[role] {
				continue
			}
			rec := sess.Recording(role)
			if at[role] >= len(evs[role]) {
				// Schedule exhausted: the transport is done; gaps become
				// loss now rather than waiting forever.
				if ferr := sess.FinishFeed(role); ferr != nil && !errors.Is(ferr, piano.ErrStreamDecided) {
					return outcome{err: ferr}
				}
				finished[role] = true
				continue
			}
			ev := evs[role][at[role]]
			at[role]++
			f := piano.NewFrame(ev.Seq, ev.Offset, rec[ev.Offset:ev.Offset+ev.N])
			if ev.Corrupt {
				f.CRC ^= 0xDEAD
			}
			ferr := sess.FeedFrame(role, f)
			switch {
			case ferr == nil, errors.Is(ferr, piano.ErrFrameCorrupt):
				fedAny = true
			case errors.Is(ferr, piano.ErrStreamDecided):
				// Decided on the other role's feed; fetch below.
			default:
				return outcome{err: ferr}
			}
		}
		if ctx.Err() != nil {
			sess.Close()
			_, rerr := sess.Result()
			return outcome{err: rerr}
		}
		dec, need, terr := sess.TryResult()
		if terr != nil {
			return outcome{err: terr}
		}
		if need == 0 {
			return outcome{lat: time.Since(start), granted: dec.Granted, degraded: dec.Degraded != nil}
		}
		if !fedAny && finished[roles[0]] && finished[roles[1]] {
			return outcome{err: fmt.Errorf("session undecided after the full framed feed (need %d)", need)}
		}
	}
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runLoad drives the whole workload through the service and aggregates the
// outcomes. Closed loop: concurrency workers pulling the next request off a
// shared counter. Open loop: one goroutine per arrival, launched on the
// seeded Poisson schedule regardless of how many are still in flight.
func runLoad(ctx context.Context, svc *piano.Service, reqs []piano.AuthRequest, o opts) Summary {
	d := &driver{svc: svc, o: o, arrCfg: arrival.Config{
		ChunkMS:      o.chunkMS,
		Jitter:       o.jitter,
		UnderrunProb: o.underrun,
		StallProb:    o.abandonRate / 2,
		AbandonProb:  o.abandonRate - o.abandonRate/2,
	}}
	outcomes := make([]outcome, len(reqs))
	start := time.Now()
	var wg sync.WaitGroup
	if o.rate > 0 {
		arr, err := arrival.NewArrivals(o.rate, o.seed)
		if err != nil {
			panic(err) // unreachable: rate validated in runCtx
		}
		for i := range reqs {
			if ctx.Err() != nil {
				for j := i; j < len(reqs); j++ {
					outcomes[j] = outcome{err: ctx.Err()}
				}
				break
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outcomes[i] = d.one(ctx, reqs[i])
			}(i)
			if i < len(reqs)-1 {
				sleepCtx(ctx, arr.NextGap())
			}
		}
	} else {
		var next atomic.Int64
		for c := 0; c < o.concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(reqs) || ctx.Err() != nil {
						return
					}
					outcomes[i] = d.one(ctx, reqs[i])
				}
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start)
	return summarize(outcomes, wall, o)
}

// summarize folds per-session outcomes into the run report.
func summarize(outcomes []outcome, wall time.Duration, o opts) Summary {
	s := Summary{
		Mode:        "batch",
		Loop:        "closed",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     o.workers,
		Shards:      o.shards,
		Concurrency: o.concurrency,
		OfferedRate: o.rate,
		Sessions:    len(outcomes),
		Shed:        map[string]int{},
		WallMS:      float64(wall) / float64(time.Millisecond),
	}
	if o.stream {
		s.Mode = "stream"
	}
	if o.rate > 0 {
		s.Loop = "open"
		s.Concurrency = 0
	}
	var lats []time.Duration
	for _, out := range outcomes {
		if out.err != nil {
			s.Shed[category(out.err)]++
			continue
		}
		s.Completed++
		if out.granted {
			s.Granted++
		}
		if out.degraded {
			s.Degraded++
		}
		lats = append(lats, out.lat)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.Latency = Percentiles{
		P50MS: percentile(lats, 0.50),
		P95MS: percentile(lats, 0.95),
		P99MS: percentile(lats, 0.99),
	}
	if wall > 0 {
		s.SessionsPerSec = float64(s.Completed) / wall.Seconds()
	}
	return s
}

// printSummary renders the human-readable report.
func printSummary(w io.Writer, s Summary) {
	fmt.Fprintf(w, "\n%s/%s-loop: %d sessions offered, %d completed (%d granted)\n",
		s.Mode, s.Loop, s.Sessions, s.Completed, s.Granted)
	if s.Degraded > 0 {
		fmt.Fprintf(w, "degraded:          %8d decided despite transport loss\n", s.Degraded)
	}
	if s.Loop == "open" {
		fmt.Fprintf(w, "offered rate:      %8.1f sessions/s\n", s.OfferedRate)
	} else {
		fmt.Fprintf(w, "concurrency:       %8d workers\n", s.Concurrency)
	}
	fmt.Fprintf(w, "achieved:          %8.2f sessions/s over %.0f ms (GOMAXPROCS %d, %d workers, %d shards)\n",
		s.SessionsPerSec, s.WallMS, s.GOMAXPROCS, s.Workers, s.Shards)
	fmt.Fprintf(w, "decision latency:  p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
		s.Latency.P50MS, s.Latency.P95MS, s.Latency.P99MS)
	shed := 0
	for _, n := range s.Shed {
		shed += n
	}
	if shed > 0 {
		fmt.Fprintf(w, "shed %d/%d:", shed, s.Sessions)
		for _, cat := range categories {
			if n := s.Shed[cat]; n > 0 {
				fmt.Fprintf(w, " %s=%d", cat, n)
			}
		}
		fmt.Fprintln(w)
	}
}

// writeJSON writes v indented to path ("-" = w).
func writeJSON(w io.Writer, path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = w.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

func run(w io.Writer, args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, w, args)
}

func runCtx(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	var o opts
	fs.IntVar(&o.sessions, "sessions", 64, "total sessions to offer")
	fs.Float64Var(&o.rate, "rate", 0, "open-loop arrival rate in sessions/sec (0 = closed loop)")
	fs.IntVar(&o.concurrency, "concurrency", 2*runtime.GOMAXPROCS(0), "closed-loop concurrent workers")
	fs.BoolVar(&o.stream, "stream", false, "drive the online session API instead of batch Authenticate")
	fs.BoolVar(&o.retry, "retry", false, "retry ErrOverloaded sheds with the default RetryPolicy")
	fs.Int64Var(&o.seed, "seed", 1, "run seed: per-session request seeds, arrival schedules, retry jitter")
	fs.IntVar(&o.workers, "workers", 0, "detect worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&o.shards, "shards", 0, "worker-group shard count (0 = one shard)")
	fs.IntVar(&o.maxSessions, "max-sessions", 0, "concurrent-session bound (0 = 4 × workers)")
	fs.IntVar(&o.queueDepth, "queue-depth", 0, "admission queue depth bound (0 = unbounded)")
	fs.DurationVar(&o.queueWait, "queue-wait", 0, "admission queue wait bound (0 = unbounded)")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 0, "session idle timeout; required when -abandon-rate > 0 (0 = no watchdog)")
	fs.IntVar(&o.chunkMS, "chunk-ms", 20, "nominal chunk size in milliseconds (with -stream)")
	fs.Float64Var(&o.jitter, "jitter", 0, "± fractional spread on chunk sizes and gaps (with -stream)")
	fs.Float64Var(&o.underrun, "underrun", 0, "per-chunk underrun-burst probability (with -stream)")
	fs.Float64Var(&o.abandonRate, "abandon-rate", 0, "probability a client stalls/abandons mid-feed (with -stream)")
	fs.Float64Var(&o.loss, "loss", 0, "per-frame loss probability over the lossy wire (with -stream; any wire knob > 0 switches to framed feeding)")
	fs.Float64Var(&o.dup, "dup", 0, "per-frame duplication probability over the lossy wire (with -stream)")
	fs.Float64Var(&o.reorder, "reorder", 0, "per-frame reorder probability over the lossy wire (with -stream)")
	fs.Float64Var(&o.corrupt, "corrupt", 0, "per-frame corruption probability over the lossy wire (with -stream)")
	jsonPath := fs.String("json", "", "write the machine-readable summary to this path (\"-\" = stdout)")
	grid := fs.Bool("grid", false, "record the scaling grid (GOMAXPROCS × concurrency × shards × mode) instead of one run")
	gomaxprocs := fs.Int("gomaxprocs", 0, "set GOMAXPROCS for the run (0 = leave)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.sessions < 1 {
		return fmt.Errorf("sessions must be positive, got %d", o.sessions)
	}
	if o.rate < 0 {
		return fmt.Errorf("rate must be ≥ 0, got %g", o.rate)
	}
	if o.rate == 0 && o.concurrency < 1 {
		return fmt.Errorf("concurrency must be positive in closed-loop mode, got %d", o.concurrency)
	}
	if o.abandonRate > 0 && o.idleTimeout <= 0 {
		return fmt.Errorf("-abandon-rate %g needs -idle-timeout > 0: abandoned sessions resolve only when the lifecycle watchdog is armed", o.abandonRate)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"loss", o.loss}, {"dup", o.dup}, {"reorder", o.reorder}, {"corrupt", o.corrupt}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("-%s %g outside [0, 1]", p.name, p.v)
		}
	}
	if o.framed() && !o.stream {
		return fmt.Errorf("-loss/-dup/-reorder/-corrupt model the framed transport and need -stream")
	}
	if *gomaxprocs > 0 {
		prev := runtime.GOMAXPROCS(*gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
	}

	if *grid {
		return runGrid(ctx, w, *jsonPath)
	}

	cfg := piano.DefaultServiceConfig()
	cfg.Workers = o.workers
	cfg.ShardCount = o.shards
	cfg.MaxSessions = o.maxSessions
	cfg.MaxQueueDepth = o.queueDepth
	cfg.MaxQueueWait = o.queueWait
	cfg.SessionIdleTimeout = o.idleTimeout
	svc, err := piano.NewService(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	o.shards = svc.Shards()
	if o.workers == 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}

	mode, loop := "batch", "closed"
	if o.stream {
		mode = "stream"
	}
	if o.rate > 0 {
		loop = fmt.Sprintf("open @ %g/s", o.rate)
	}
	fmt.Fprintf(w, "piano-loadgen: %d %s sessions, %s loop, GOMAXPROCS %d, %d workers, %d shards\n",
		o.sessions, mode, loop, runtime.GOMAXPROCS(0), o.workers, o.shards)

	s := runLoad(ctx, svc, workload(o.sessions, o.seed), o)
	printSummary(w, s)
	if *jsonPath != "" {
		if err := writeJSON(w, *jsonPath, s); err != nil {
			return err
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(w, "interrupted: remaining sessions reported as canceled")
		return nil
	}
	if s.Completed == 0 {
		// A run where nothing succeeded must fail loudly — a dashboard
		// scripting this binary should never mistake "every session shed or
		// refused" for a healthy run with odd numbers. An interrupted run
		// (above) is exempt: zero completions there are the operator's doing.
		return fmt.Errorf("no sessions completed (%d offered, all shed or refused)", s.Sessions)
	}
	return nil
}
