package main

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"github.com/acoustic-auth/piano"
)

// The scaling grid: every combination of simulated core count (GOMAXPROCS,
// set in-process per cell), closed-loop concurrency, shard layout (0 = the
// legacy single shard, gridShards = sharded worker groups), and session
// mode (batch Authenticate vs streaming OpenSession). Closed loop keeps
// every cell at its saturation throughput for that concurrency, which is
// the quantity the scaling curve is about.
var (
	gridCores       = []int{1, 2, 4, 8}
	gridConcurrency = []int{1, 4, 16}
	gridShards      = 4
	gridModes       = []string{"batch", "stream"}
	// gridReps runs each cell this many times (fresh service per rep) and
	// records the best — the same outlier-damping the repo's other BENCH
	// records apply, since a shared box's scheduler can hand any single rep
	// an unlucky slice.
	gridReps = 2
)

// gridMachine mirrors the other BENCH_*.json files' machine stanza.
type gridMachine struct {
	Cores  int    `json:"cores"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Go     string `json:"go"`
}

// gridReport is the BENCH_loadgen.json shape: one Summary per cell.
type gridReport struct {
	Description string      `json:"description"`
	Machine     gridMachine `json:"machine"`
	Command     string      `json:"command"`
	Cells       []Summary   `json:"cells"`
}

const gridDescription = "Multi-core load-harness scaling record (ISSUE 9). Each cell drives one freshly built piano.Service with a closed-loop piano-loadgen workload (every worker opens its next session the moment the previous resolves — saturation throughput for that concurrency) and reports achieved sessions/sec plus p50/p95/p99 decision latency. Grid: GOMAXPROCS {1,2,4,8} (set in-process; cells above the machine's hardware core count measure scheduler behavior, not parallel speedup — compare 'machine.cores') × closed-loop concurrency {1,4,16} × shard layout {0 = legacy single worker group, 4 = sharded worker groups (ServiceConfig.ShardCount)} × mode {batch Authenticate, streaming OpenSession fed 20 ms chunks flat-out}. Workers defaults to GOMAXPROCS per cell, so the worker budget tracks the simulated core count; MaxSessions is set to the cell's concurrency so admission never queues. Each cell is run twice against a fresh service and the better run is recorded, damping shared-box scheduler noise. Session workload: device pairs staggered 0.3-1.65 m around the 1 m threshold, deterministic per-session seeds. See PERFORMANCE.md 'PR 9: the first real scaling curve' for the analysis."

// runGrid records the scaling matrix: cores × concurrency × {unsharded,
// sharded} × {batch, stream}, each cell a fresh service driven closed-loop
// to saturation.
func runGrid(ctx context.Context, w io.Writer, jsonPath string) error {
	if jsonPath == "" {
		jsonPath = "BENCH_loadgen.json"
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	report := gridReport{
		Description: gridDescription,
		Machine: gridMachine{
			Cores:  runtime.NumCPU(),
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			Go:     runtime.Version(),
		},
		Command: "go run ./cmd/piano-loadgen -grid -json BENCH_loadgen.json (make bench-loadgen)",
	}
	fmt.Fprintf(w, "piano-loadgen -grid: %d cells on a %d-core box (GOMAXPROCS set per cell)\n",
		len(gridCores)*len(gridConcurrency)*2*len(gridModes), report.Machine.Cores)

	for _, cores := range gridCores {
		runtime.GOMAXPROCS(cores)
		for _, mode := range gridModes {
			for _, conc := range gridConcurrency {
				for _, shards := range []int{0, gridShards} {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					// 4× the concurrency (min 16) keeps every cell long
					// enough that one scheduler hiccup can't move the mean.
					sessions := 4 * conc
					if sessions < 16 {
						sessions = 16
					}
					o := opts{
						sessions:    sessions,
						concurrency: conc,
						stream:      mode == "stream",
						seed:        1,
						workers:     cores, // Workers 0 = GOMAXPROCS, resolved per cell
						shards:      shards,
						chunkMS:     20,
					}
					var s Summary
					for rep := 0; rep < gridReps; rep++ {
						cfg := piano.DefaultServiceConfig()
						cfg.ShardCount = shards
						cfg.MaxSessions = conc
						svc, err := piano.NewService(cfg)
						if err != nil {
							return err
						}
						r := runLoad(ctx, svc, workload(sessions, 1), o)
						svc.Close()
						if rep == 0 || r.SessionsPerSec > s.SessionsPerSec {
							s = r
						}
					}
					report.Cells = append(report.Cells, s)
					fmt.Fprintf(w, "  %-6s cores=%d conc=%-2d shards=%d: %7.2f sessions/s, p50 %6.1f ms, p99 %6.1f ms\n",
						mode, cores, conc, shards, s.SessionsPerSec, s.Latency.P50MS, s.Latency.P99MS)
				}
			}
		}
	}
	if err := writeJSON(w, jsonPath, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d cells)\n", jsonPath, len(report.Cells))
	return nil
}
