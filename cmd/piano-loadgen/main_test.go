package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/acoustic-auth/piano"
)

// TestCategoryCoversTypedErrors is the shed-accounting contract: every
// typed terminal error a piano.Service can hand a client maps to exactly
// one report category — wrapped or bare — and "other" is reserved for
// errors the harness has never heard of. A known error landing in "other"
// is a reporting bug, not a new failure mode.
func TestCategoryCoversTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"overloaded", piano.ErrOverloaded, "overloaded"},
		{"overloaded wrapped by retry exhaustion",
			fmt.Errorf("piano: gave up after 4 attempts: %w", piano.ErrOverloaded), "overloaded"},
		{"closed", piano.ErrClosed, "closed"},
		{"stalled", piano.ErrSessionStalled, "stalled"},
		{"expired", piano.ErrSessionExpired, "expired"},
		{"internal", piano.ErrInternal, "internal"},
		{"internal wrapped", fmt.Errorf("piano: %w", piano.ErrInternal), "internal"},
		{"insufficient audio", piano.ErrInsufficientAudio, "insufficient"},
		{"insufficient audio wrapped",
			fmt.Errorf("core: streaming detect (auth role): %w", piano.ErrInsufficientAudio), "insufficient"},
		{"context canceled", context.Canceled, "canceled"},
		{"context deadline", context.DeadlineExceeded, "canceled"},
		{"unknown", errors.New("mystery"), "other"},
	}
	valid := map[string]bool{}
	for _, cat := range categories {
		valid[cat] = true
	}
	for _, tc := range cases {
		got := category(tc.err)
		if got != tc.want {
			t.Errorf("%s: category = %q, want %q", tc.name, got, tc.want)
		}
		if !valid[got] {
			t.Errorf("%s: category %q is not in the report order list", tc.name, got)
		}
		if tc.want != "other" && got == "other" {
			t.Errorf("%s: known typed error leaked into the other bucket", tc.name)
		}
	}
	// Both reap errors must match the category sentinel — the report's
	// stalled/expired split refines ErrSessionReaped, it does not fork it.
	for _, err := range []error{piano.ErrSessionStalled, piano.ErrSessionExpired} {
		if !errors.Is(err, piano.ErrSessionReaped) {
			t.Errorf("%v does not match ErrSessionReaped", err)
		}
	}
}

// parseSummary decodes the first JSON value in the output (a decoder stops
// at the end of the value, so trailing report text is fine).
func parseSummary(t *testing.T, out string) Summary {
	t.Helper()
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var s Summary
	if err := json.NewDecoder(strings.NewReader(out[i:])).Decode(&s); err != nil {
		t.Fatalf("summary JSON did not parse: %v\n%s", err, out)
	}
	return s
}

func TestRunClosedLoop(t *testing.T) {
	var buf bytes.Buffer
	err := runCtx(context.Background(), &buf,
		[]string{"-sessions", "6", "-concurrency", "3", "-seed", "7", "-json", "-"})
	if err != nil {
		t.Fatalf("runCtx: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"batch/closed-loop", "decision latency", "sessions/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	s := parseSummary(t, out)
	if s.Completed != 6 || s.Mode != "batch" || s.Loop != "closed" {
		t.Fatalf("summary %+v, want 6 completed batch/closed sessions", s)
	}
	if s.Latency.P50MS <= 0 || s.Latency.P99MS < s.Latency.P50MS {
		t.Fatalf("implausible latency distribution %+v", s.Latency)
	}
	if s.SessionsPerSec <= 0 {
		t.Fatalf("sessions/sec %g not positive", s.SessionsPerSec)
	}
}

// TestRunOpenLoopSheds: an open-loop run against a deliberately undersized
// service must shed — and every shed must land in the overloaded bucket,
// never "other".
func TestRunOpenLoopSheds(t *testing.T) {
	var buf bytes.Buffer
	err := runCtx(context.Background(), &buf, []string{
		"-sessions", "16", "-rate", "400", "-seed", "3",
		"-max-sessions", "1", "-queue-depth", "1", "-queue-wait", "1ms",
		"-json", "-",
	})
	if err != nil {
		t.Fatalf("runCtx: %v\n%s", err, buf.String())
	}
	out := buf.String()
	s := parseSummary(t, out)
	if s.Loop != "open" || s.OfferedRate != 400 {
		t.Fatalf("summary %+v, want an open-loop run at 400/s", s)
	}
	if s.Shed["overloaded"] == 0 {
		t.Fatalf("16 sessions at 400/s against a 1-slot service shed nothing: %+v\n%s", s, out)
	}
	if s.Shed["other"] != 0 {
		t.Fatalf("sheds leaked into the other bucket: %+v", s.Shed)
	}
	if s.Completed+s.Shed["overloaded"] != s.Sessions {
		t.Fatalf("sessions unaccounted for: %+v", s)
	}
}

// TestRunStreamWithAbandons: streaming sessions whose clients stall or
// vanish mid-feed must end typed (reaped by the watchdog), with the healthy
// remainder deciding normally — every offered session accounted for.
func TestRunStreamWithAbandons(t *testing.T) {
	var buf bytes.Buffer
	err := runCtx(context.Background(), &buf, []string{
		"-sessions", "8", "-concurrency", "4", "-stream", "-seed", "5",
		"-abandon-rate", "0.6", "-idle-timeout", "150ms",
		"-json", "-",
	})
	if err != nil {
		t.Fatalf("runCtx: %v\n%s", err, buf.String())
	}
	out := buf.String()
	s := parseSummary(t, out)
	if s.Mode != "stream" {
		t.Fatalf("mode %q, want stream", s.Mode)
	}
	shed := 0
	for cat, n := range s.Shed {
		if cat == "other" && n > 0 {
			t.Fatalf("stream sheds leaked into the other bucket: %+v", s.Shed)
		}
		shed += n
	}
	if s.Completed+shed != s.Sessions {
		t.Fatalf("sessions unaccounted for: completed %d + shed %d != %d (%+v)",
			s.Completed, shed, s.Sessions, s.Shed)
	}
	if s.Completed == 0 {
		t.Fatalf("no session survived an 0.6 abandon rate across 8 draws: %+v\n%s", s, out)
	}
}

// TestRunGridJSON shrinks the grid to a 1-core batch column and checks the
// recorded report shape end to end.
func TestRunGridJSON(t *testing.T) {
	oldCores, oldConc, oldModes, oldReps := gridCores, gridConcurrency, gridModes, gridReps
	gridCores, gridConcurrency, gridModes, gridReps = []int{1}, []int{2}, []string{"batch"}, 1
	defer func() { gridCores, gridConcurrency, gridModes, gridReps = oldCores, oldConc, oldModes, oldReps }()

	path := t.TempDir() + "/grid.json"
	var buf bytes.Buffer
	if err := runCtx(context.Background(), &buf, []string{"-grid", "-json", path}); err != nil {
		t.Fatalf("runCtx -grid: %v\n%s", err, buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep gridReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("grid JSON did not parse: %v", err)
	}
	if len(rep.Cells) != 2 { // shards 0 and gridShards
		t.Fatalf("grid recorded %d cells, want 2", len(rep.Cells))
	}
	for i, c := range rep.Cells {
		if c.Completed != c.Sessions || c.SessionsPerSec <= 0 || c.Latency.P50MS <= 0 {
			t.Fatalf("cell %d implausible: %+v", i, c)
		}
	}
	if rep.Cells[0].Shards == rep.Cells[1].Shards {
		t.Fatalf("grid cells did not alternate shard layouts: %+v", rep.Cells)
	}
	if rep.Machine.Cores <= 0 || rep.Description == "" {
		t.Fatalf("report metadata incomplete: %+v", rep.Machine)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-sessions", "0"},
		{"-rate", "-1"},
		{"-concurrency", "0"},
		{"-stream", "-abandon-rate", "0.5"}, // abandons without a watchdog
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := runCtx(context.Background(), &buf, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunStreamFramedLossyWire: the -loss/-dup/-reorder/-corrupt flags
// switch streaming sessions to framed feeding over the seeded lossy wire.
// Degraded decisions and insufficient-audio refusals are first-class in
// the report — "other" must stay empty — and light loss must let at least
// one session through.
func TestRunStreamFramedLossyWire(t *testing.T) {
	var buf bytes.Buffer
	err := runCtx(context.Background(), &buf, []string{
		"-sessions", "6", "-concurrency", "2", "-stream", "-seed", "5",
		"-loss", "0.02", "-dup", "0.1", "-reorder", "0.2", "-corrupt", "0.02",
		"-json", "-",
	})
	if err != nil {
		t.Fatalf("runCtx: %v\n%s", err, buf.String())
	}
	s := parseSummary(t, buf.String())
	if s.Completed == 0 {
		t.Fatalf("light wire loss completed nothing: %+v", s)
	}
	if s.Shed["other"] != 0 {
		t.Fatalf("lossy-wire outcomes leaked into the other bucket: %+v", s.Shed)
	}
	if s.Completed+s.Shed["insufficient"]+s.Shed["canceled"] != s.Sessions {
		t.Fatalf("sessions unaccounted for: %+v", s)
	}
}

// TestRunZeroSuccessExitsNonzero: a run where every session was refused
// must fail the process, so scripts cannot mistake total refusal for a
// healthy run. Total frame loss guarantees every session resolves
// ErrInsufficientAudio.
func TestRunZeroSuccessExitsNonzero(t *testing.T) {
	var buf bytes.Buffer
	err := runCtx(context.Background(), &buf, []string{
		"-sessions", "3", "-concurrency", "2", "-stream", "-loss", "1", "-json", "-",
	})
	if err == nil {
		t.Fatalf("all-refused run exited zero:\n%s", buf.String())
	}
	s := parseSummary(t, buf.String())
	if s.Completed != 0 || s.Shed["insufficient"] != s.Sessions {
		t.Fatalf("total loss should refuse every session typed: %+v", s)
	}
}

// TestRunRejectsWireFlagsWithoutStream: the wire knobs model the framed
// transport and are meaningless against batch Authenticate.
func TestRunRejectsWireFlagsWithoutStream(t *testing.T) {
	var buf bytes.Buffer
	if err := runCtx(context.Background(), &buf, []string{"-sessions", "2", "-loss", "0.1"}); err == nil {
		t.Fatal("-loss without -stream accepted")
	}
	if err := runCtx(context.Background(), &buf, []string{"-sessions", "2", "-stream", "-corrupt", "1.5"}); err == nil {
		t.Fatal("-corrupt 1.5 accepted")
	}
}

// TestRunCanceledContext: a pre-canceled run must report its sessions as
// canceled, not hang or crash.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := runCtx(ctx, &buf, []string{"-sessions", "4", "-rate", "50", "-json", "-"})
	if err != nil {
		t.Fatalf("runCtx: %v\n%s", err, buf.String())
	}
	out := buf.String()
	s := parseSummary(t, out)
	if s.Completed != 0 || s.Shed["canceled"] != s.Sessions {
		t.Fatalf("pre-canceled run: %+v", s)
	}
	if !strings.Contains(out, "interrupted") {
		t.Fatalf("output missing the interruption note:\n%s", out)
	}
}

// TestPercentileNearestRank pins the percentile math loadgen reports.
func TestPercentileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}} {
		if got := percentile(lats, tc.q); got != tc.want {
			t.Errorf("p%g of 1..100 ms = %g, want %g", tc.q*100, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
	if got := percentile(lats[:1], 0.99); got != 1 {
		t.Errorf("single-sample p99 = %g, want 1", got)
	}
}
