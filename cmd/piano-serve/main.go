// Command piano-serve demonstrates the batched multi-session
// authentication service: a long-lived piano.Service absorbing a burst of
// concurrent sessions from many device pairs, with all signal-detection
// work batched through one shared worker pool.
//
// It runs the same workload twice — first as a serial loop over the
// classic one-pairing Deployment path, then as concurrent sessions through
// the Service — verifies the decisions agree session by session (the
// service's bit-identity promise), and reports both throughputs.
//
// The process shuts down gracefully on SIGINT/SIGTERM: admission stops,
// in-flight sessions are cancelled cooperatively and drained under
// -drain-timeout, and the shed counts are reported by failure type.
// -chaos arms the fault-injection registry (seeded by -chaos-seed) so the
// hardened failure paths — admission stalls, session panics, slow scans —
// can be watched from the command line.
//
// -stream switches to the online session API driven by the arrival
// traffic model (internal/arrival): jittered chunk sizes and gaps
// (-jitter), underrun backlog bursts (-underrun), and clients that stall
// or vanish mid-feed (-abandon-rate), with the service's lifecycle
// watchdog armed so abandoned sessions are reaped with typed errors and
// their slots reclaimed during the drain.
//
// -loss/-dup/-reorder/-corrupt (with -stream) switch the feed to the
// framed lossy transport: chunks travel as CRC-protected frames that can
// be dropped, duplicated, reordered, or damaged in flight. Clean sessions
// stay bit-identical to batch; sessions that lost audio decide degraded
// (with a loss report) or refuse with a typed insufficient-audio error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"github.com/acoustic-auth/piano"
	"github.com/acoustic-auth/piano/internal/arrival"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-serve:", err)
		os.Exit(1)
	}
}

// run wires OS signals to the cancellable body: SIGINT/SIGTERM stop
// admission and start the drain.
func run(w io.Writer, args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, w, args)
}

// workload builds one session request per simulated user: device pairs at
// staggered distances around the threshold, distinct clock skews and
// seeds.
func workload(sessions int) []piano.AuthRequest {
	reqs := make([]piano.AuthRequest, sessions)
	for i := range reqs {
		dist := 0.3 + 0.15*float64(i%10)
		reqs[i] = piano.AuthRequest{
			Auth:  piano.DeviceSpec{Name: fmt.Sprintf("hub-%d", i), X: 0, Y: 0, ClockSkewPPM: float64(5 + i%25)},
			Vouch: piano.DeviceSpec{Name: fmt.Sprintf("watch-%d", i), X: dist, Y: 0, ClockSkewPPM: -float64(3 + i%20)},
			Seed:  int64(1000 + i),
		}
	}
	return reqs
}

// shedCategory buckets a failed session for the shutdown/chaos report.
func shedCategory(err error) string {
	switch {
	case errors.Is(err, piano.ErrSessionStalled):
		return "stalled"
	case errors.Is(err, piano.ErrSessionExpired):
		return "expired"
	case errors.Is(err, piano.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, piano.ErrClosed):
		return "closed"
	case errors.Is(err, piano.ErrInternal):
		return "internal"
	case errors.Is(err, piano.ErrInsufficientAudio):
		return "insufficient"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "other"
	}
}

// shedCategories is the report order for shed buckets.
var shedCategories = []string{"stalled", "expired", "overloaded", "closed", "internal", "insufficient", "canceled", "other"}

// printShed reports the shed map in category order.
func printShed(w io.Writer, shed map[string]int, total, completed int) {
	if len(shed) == 0 {
		return
	}
	fmt.Fprintf(w, "\nshed %d/%d sessions:", total-completed, total)
	for _, cat := range shedCategories {
		if n := shed[cat]; n > 0 {
			fmt.Fprintf(w, " %s=%d", cat, n)
		}
	}
	fmt.Fprintln(w)
}

// streamOpts bundles the -stream driver's knobs.
type streamOpts struct {
	pace         float64       // audio arrival speed vs real time (0 = flat out)
	chunkMS      int           // nominal microphone chunk period
	jitter       float64       // ± fractional spread on chunk sizes and gaps
	underrun     float64       // per-chunk underrun-burst probability
	abandonRate  float64       // probability a client stalls/abandons mid-feed
	idleTimeout  time.Duration // watchdog idle bound override (0 = auto from the arrival model)
	drainTimeout time.Duration // shutdown bound for resolving open sessions
	loss         float64       // per-frame loss probability (framed transport)
	dup          float64       // per-frame duplication probability
	reorder      float64       // per-frame reorder probability
	corrupt      float64       // per-frame in-flight corruption probability
}

// framed reports whether any wire-fault knob is set, switching the stream
// demo from plain ordered Feed to the framed lossy-transport path.
func (o streamOpts) framed() bool {
	return o.loss > 0 || o.dup > 0 || o.reorder > 0 || o.corrupt > 0
}

// feedFramed drives one session through a deterministic lossy-wire
// schedule: each role's chunk partition is framed, and frames are lost,
// duplicated, reordered, or corrupted per the WireConfig. Corrupt frames
// are sent damaged — the service rejects them with a typed error and the
// samples become a gap, resolved (with the lost tail) by FinishFeed when
// the schedule runs dry. Returns the decision, the furthest sample offset
// fed, and the count of corrupt frames sent.
func feedFramed(ctx context.Context, sess *piano.AuthSession, req piano.AuthRequest, arrCfg arrival.Config, wireCfg arrival.WireConfig) (dec *piano.Decision, fedMax, corrupt int, err error) {
	roles := []piano.Role{piano.RoleAuth, piano.RoleVouch}
	evs := make([][]arrival.WireEvent, len(roles))
	for ri, role := range roles {
		rec := sess.Recording(role)
		if evs[ri], err = arrival.Wire(arrCfg, wireCfg, req.Seed*2+int64(ri), len(rec)); err != nil {
			return nil, 0, 0, err
		}
	}
	idx := make([]int, len(roles))
	for {
		if ctx.Err() != nil {
			return nil, fedMax, corrupt, ctx.Err()
		}
		fedAny := false
		for ri, role := range roles {
			if idx[ri] >= len(evs[ri]) {
				continue
			}
			ev := evs[ri][idx[ri]]
			idx[ri]++
			fedAny = true
			rec := sess.Recording(role)
			f := piano.NewFrame(ev.Seq, ev.Offset, rec[ev.Offset:ev.Offset+ev.N])
			if ev.Corrupt {
				// Damage the payload's checksum: the service must reject
				// the frame with the typed corruption error, never score it.
				f.CRC ^= 0xBAD
				corrupt++
			}
			ferr := sess.FeedFrame(role, f)
			switch {
			case ferr == nil:
				if end := ev.Offset + ev.N; end > fedMax {
					fedMax = end
				}
			case ev.Corrupt && errors.Is(ferr, piano.ErrFrameCorrupt):
				// Expected: the damaged frame bounced. Its samples are now
				// a gap unless a duplicate repairs them.
			case errors.Is(ferr, piano.ErrStreamDecided):
				// The session decided mid-schedule; TryResult below
				// collects the decision.
			default:
				return nil, fedMax, corrupt, ferr
			}
		}
		d, need, terr := sess.TryResult()
		if terr != nil {
			return nil, fedMax, corrupt, terr
		}
		if need == 0 {
			return d, fedMax, corrupt, nil
		}
		if !fedAny {
			break
		}
	}
	// Schedule exhausted without a decision: the client is done sending, so
	// declare the feeds finished — unrepaired gaps and the lost tail become
	// declared losses and the session decides degraded or refuses.
	for _, role := range roles {
		if ferr := sess.FinishFeed(role); ferr != nil && !errors.Is(ferr, piano.ErrStreamDecided) {
			return nil, fedMax, corrupt, ferr
		}
	}
	d, need, terr := sess.TryResult()
	if terr != nil {
		return nil, fedMax, corrupt, terr
	}
	if need != 0 {
		return nil, fedMax, corrupt, fmt.Errorf("session undecided after the full framed feed (need %d)", need)
	}
	return d, fedMax, corrupt, nil
}

// runStreamDemo drives the online session API through the arrival traffic
// model: each role's audio arrives with jittered chunk sizes and gaps,
// underrun backlog bursts, and — at -abandon-rate — clients that stall or
// vanish mid-feed without closing their session. The service runs with a
// lifecycle watchdog armed, so abandoned sessions are reaped with typed
// errors and their slots reclaimed; healthy sessions decide the moment
// both recordings have revealed their signals, verified bit-identical
// against the batch path.
func runStreamDemo(ctx context.Context, w io.Writer, reqs []piano.AuthRequest, workers int, o streamOpts) error {
	if o.chunkMS <= 0 {
		return fmt.Errorf("chunk-ms must be positive, got %d", o.chunkMS)
	}
	arrCfg := arrival.Config{
		ChunkMS:      o.chunkMS,
		Jitter:       o.jitter,
		UnderrunProb: o.underrun,
		StallProb:    o.abandonRate / 2,
		AbandonProb:  o.abandonRate - o.abandonRate/2,
	}
	if _, err := arrival.New(arrCfg, 1); err != nil {
		return err
	}
	wireCfg := arrival.WireConfig{LossProb: o.loss, DupProb: o.dup, ReorderProb: o.reorder, CorruptProb: o.corrupt}
	if o.framed() {
		// Probe the wire model once so a bad probability fails fast, before
		// any headers print.
		if _, err := arrival.Wire(arrCfg, wireCfg, 1, 1); err != nil {
			return err
		}
	}

	// Arm the lifecycle watchdog: the idle bound must comfortably exceed
	// the longest legitimate inter-chunk gap the model can draw (jittered
	// period plus a worst-case underrun), scaled by the pace.
	idle := 250 * time.Millisecond
	if o.pace > 0 {
		maxGapMS := (float64(o.chunkMS)*(1+o.jitter) + 250) / o.pace
		if with := time.Duration(4 * maxGapMS * float64(time.Millisecond)); with > idle {
			idle = with
		}
	}
	if o.idleTimeout > 0 {
		idle = o.idleTimeout
	}
	svcCfg := piano.DefaultServiceConfig()
	svcCfg.Workers = workers
	svcCfg.SessionIdleTimeout = idle
	svc, err := piano.NewService(svcCfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	// The session devices' nominal sampling rate (piano.DeviceSpec pairs
	// run at the prototype's 44.1 kHz).
	const rate = 44100.0
	fmt.Fprintf(w, "piano-serve -stream: %d sessions, ~%d ms chunks ±%.0f%%, underrun p=%.2f, abandon p=%.2f, pace %gx\n",
		len(reqs), o.chunkMS, 100*o.jitter, o.underrun, o.abandonRate, o.pace)
	fmt.Fprintf(w, "lifecycle watchdog: SessionIdleTimeout %v (stalled clients reaped, slots reclaimed)\n", idle)
	if o.framed() {
		fmt.Fprintf(w, "lossy transport: framed chunks with loss p=%.2f, dup p=%.2f, reorder p=%.2f, corrupt p=%.2f\n",
			o.loss, o.dup, o.reorder, o.corrupt)
	}
	fmt.Fprintln(w)

	roles := []piano.Role{piano.RoleAuth, piano.RoleVouch}
	var sumAudio, sumFull, sumStreamWall, sumBatchWall float64
	var pending []*piano.AuthSession // abandoned/interrupted sessions, left to the watchdog
	shed := map[string]int{}
	underruns := 0
	fates := map[arrival.Kind]int{}
	done, degradedN, corruptN := 0, 0, 0
	for i, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		// Batch reference: the decision and its wall-clock scan time once
		// the full recording exists.
		batchStart := time.Now()
		ref, err := svc.Authenticate(req)
		if err != nil {
			return err
		}
		batchWall := time.Since(batchStart)

		sess, err := svc.OpenSessionContext(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return err
		}
		if o.framed() {
			start := time.Now()
			dec, fed, corr, ferr := feedFramed(ctx, sess, req, arrCfg, wireCfg)
			corruptN += corr
			if ferr != nil {
				if ctx.Err() != nil {
					pending = append(pending, sess)
					goto drain
				}
				if errors.Is(ferr, piano.ErrInsufficientAudio) {
					shed["insufficient"]++
					fmt.Fprintf(w, "  session %2d: refused — transport loss left too little intact audio (typed error, never a low-confidence guess)\n", i)
					continue
				}
				return ferr
			}
			streamWall := time.Since(start)
			note := ""
			if dec.Degraded != nil {
				// A degraded decision deliberately excluded lost windows, so
				// bit-identity with the loss-free batch scan is not promised.
				degradedN++
				note = fmt.Sprintf("  [degraded: %d samples lost, %d windows excluded]",
					dec.Degraded.LostSamples, dec.Degraded.LostWindows)
			} else if dec.Granted != ref.Granted || dec.Reason != ref.Reason ||
				math.Float64bits(dec.DistanceM) != math.Float64bits(ref.DistanceM) {
				return fmt.Errorf("session %d: clean framed decision %+v diverged from batch %+v", i, dec, ref)
			}
			audioSec := float64(fed) / rate
			fullSec := math.Max(float64(len(sess.Recording(piano.RoleAuth))), float64(len(sess.Recording(piano.RoleVouch)))) / rate
			sumAudio += audioSec
			sumFull += fullSec
			sumStreamWall += streamWall.Seconds()
			sumBatchWall += batchWall.Seconds()
			done++
			fmt.Fprintf(w, "  session %2d: %-45s decided on %4.0f of %4.0f ms of audio (%.0f%%)%s\n",
				i, dec.Reason, audioSec*1e3, fullSec*1e3, 100*audioSec/fullSec, note)
			continue
		}

		// One deterministic arrival source per role: this client's
		// microphone schedule, replayable from the request seed.
		src := map[piano.Role]*arrival.Source{}
		for ri, role := range roles {
			if src[role], err = arrival.New(arrCfg, req.Seed*2+int64(ri)); err != nil {
				return err
			}
		}
		at := map[piano.Role]int{}
		var gone arrival.Kind // Stall or Abandon once this client fails
		var failed bool
		start := time.Now()
		var dec *piano.Decision
		for dec == nil && !failed {
			var gap time.Duration
			fedAny := false
			for _, role := range roles {
				rec := sess.Recording(role)
				ev := src[role].Next(at[role], len(rec))
				switch ev.Kind {
				case arrival.Chunk, arrival.Underrun:
					if ev.Kind == arrival.Underrun {
						underruns++
					}
					if ev.Gap > gap {
						gap = ev.Gap
					}
					if err := sess.Feed(role, rec[at[role]:at[role]+ev.N]); err != nil {
						if ctx.Err() != nil {
							pending = append(pending, sess)
							goto drain
						}
						return err
					}
					at[role] = at[role] + ev.N
					fedAny = true
				case arrival.Stall, arrival.Abandon:
					gone, failed = ev.Kind, true
				}
			}
			if failed {
				break
			}
			if o.pace > 0 {
				time.Sleep(time.Duration(float64(gap) / o.pace))
			}
			d, need, err := sess.TryResult()
			if err != nil {
				if ctx.Err() != nil {
					pending = append(pending, sess)
					goto drain
				}
				return err
			}
			if need == 0 {
				dec = d
			} else if !fedAny {
				return fmt.Errorf("session %d: undecided after the full feed (need %d)", i, need)
			}
		}
		if failed {
			// The client vanished without closing its session. Do exactly
			// what a real dead client does — nothing — and let the
			// lifecycle watchdog reclaim the slot.
			fates[gone]++
			pending = append(pending, sess)
			fmt.Fprintf(w, "  session %2d: client %-8v after %4.0f ms of audio — left to the watchdog\n",
				i, gone, math.Max(float64(at[roles[0]]), float64(at[roles[1]]))/rate*1e3)
			continue
		}
		streamWall := time.Since(start)

		if dec.Granted != ref.Granted || dec.Reason != ref.Reason ||
			math.Float64bits(dec.DistanceM) != math.Float64bits(ref.DistanceM) {
			return fmt.Errorf("session %d: streamed decision %+v diverged from batch %+v", i, dec, ref)
		}

		audioSec := math.Max(float64(at[piano.RoleAuth]), float64(at[piano.RoleVouch])) / rate
		fullSec := math.Max(float64(len(sess.Recording(piano.RoleAuth))), float64(len(sess.Recording(piano.RoleVouch)))) / rate
		sumAudio += audioSec
		sumFull += fullSec
		sumStreamWall += streamWall.Seconds()
		sumBatchWall += batchWall.Seconds()
		done++
		fmt.Fprintf(w, "  session %2d: %-45s decided on %4.0f of %4.0f ms of audio (%.0f%%)\n",
			i, dec.Reason, audioSec*1e3, fullSec*1e3, 100*audioSec/fullSec)
	}

drain:
	// Shutdown/drain: every abandoned or interrupted session must resolve
	// with a typed error within the drain budget — the watchdog reaps
	// stalled clients (ErrSessionStalled), an interrupt cancels via the
	// session context — and its slot must come back. Sessions still open
	// at the deadline are closed explicitly so nothing leaks.
	lateDecided, abandonedAtDeadline := 0, 0
	if len(pending) > 0 {
		fmt.Fprintf(w, "\ndraining %d unresolved sessions (budget %v)...\n", len(pending), o.drainTimeout)
		drainStart := time.Now()
		deadline := drainStart.Add(o.drainTimeout)
		for _, sn := range pending {
			for {
				_, need, err := sn.TryResult()
				if err != nil {
					shed[shedCategory(err)]++
					break
				}
				if need == 0 {
					// The client vanished, but the audio it had already fed
					// crossed the decision horizon — the session decides
					// instead of stalling out.
					lateDecided++
					break
				}
				if time.Now().After(deadline) {
					sn.Close()
					shed["closed"]++
					abandonedAtDeadline++
					break
				}
				// Poll gently: a TryResult in flight counts as session
				// activity (a scan is work, not a stall), so a hot poll
				// loop would itself keep shrinking the watchdog's window.
				time.Sleep(50 * time.Millisecond)
			}
		}
		drainDur := time.Since(drainStart)
		if lateDecided > 0 {
			fmt.Fprintf(w, "%d abandoned sessions had already fed past the decision horizon and decided during the drain\n", lateDecided)
		}
		// The drained and abandoned populations get separate windows: the
		// drain duration describes only the sessions that resolved inside
		// it, never the ones the expired budget force-closed.
		if abandonedAtDeadline > 0 {
			fmt.Fprintf(w, "drained %d sessions in %.0f ms; abandoned %d at the deadline (budget %v)\n",
				len(pending)-abandonedAtDeadline, drainDur.Seconds()*1e3, abandonedAtDeadline, o.drainTimeout)
		} else {
			fmt.Fprintf(w, "drained all %d sessions in %.0f ms (budget %v)\n",
				len(pending), drainDur.Seconds()*1e3, o.drainTimeout)
		}
	}
	printShed(w, shed, len(reqs), len(reqs)-len(pending)+lateDecided-shed["insufficient"])
	if ctx.Err() != nil {
		fmt.Fprintf(w, "interrupted: %d/%d streamed sessions completed\n", done, len(reqs))
		return nil
	}

	if done == 0 {
		fmt.Fprintln(w, "no sessions decided")
		return nil
	}
	n := float64(done)
	if o.framed() {
		fmt.Fprintf(w, "\n%d decided over the lossy wire: %d clean (bit-identical to batch), %d degraded by declared loss; %d refused for insufficient intact audio; %d corrupt frames rejected",
			done, done-degradedN, degradedN, shed["insufficient"], corruptN)
	} else {
		fmt.Fprintf(w, "\nall %d streamed decisions bit-identical to the batch path", done)
	}
	if underruns > 0 || fates[arrival.Stall]+fates[arrival.Abandon] > 0 {
		fmt.Fprintf(w, " (through %d underrun bursts; %d stalls and %d abandons reaped)",
			underruns, fates[arrival.Stall], fates[arrival.Abandon])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "time-to-decision (audio):  streaming %6.0f ms avg vs %6.0f ms full recording (%.0f%% saved)\n",
		sumAudio/n*1e3, sumFull/n*1e3, 100*(1-sumAudio/sumFull))
	fmt.Fprintf(w, "wall clock per session:    streaming %6.1f ms avg (paced %gx), batch scan-after-the-fact %6.1f ms\n",
		sumStreamWall/n*1e3, o.pace, sumBatchWall/n*1e3)
	fmt.Fprintln(w, "\n(a batch deployment must wait out the whole recording before scanning;")
	fmt.Fprintln(w, " the streaming session scans as audio arrives and decides at the protocol")
	fmt.Fprintln(w, " horizon — see ARCHITECTURE.md \"Online session\" and BENCH_online.json)")
	return nil
}

func runCtx(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-serve", flag.ContinueOnError)
	sessions := fs.Int("sessions", 8, "number of authentication sessions in the burst")
	workers := fs.Int("workers", 0, "detect worker pool size (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight sessions to drain")
	chaos := fs.Bool("chaos", false, "inject faults (admission stalls, session panics, slow scans) into the service pass")
	chaosSeed := fs.Int64("chaos-seed", 42, "fault-injection RNG seed (with -chaos)")
	stream := fs.Bool("stream", false, "run the online streaming demo: live-microphone arrival model, decide before the recording ends")
	streamPace := fs.Float64("stream-pace", 1.0, "audio arrival speed as a multiple of real time (0 = feed as fast as possible; with -stream)")
	chunkMS := fs.Int("chunk-ms", 20, "nominal microphone chunk size in milliseconds (with -stream)")
	jitter := fs.Float64("jitter", 0.2, "± fractional spread on chunk sizes and inter-chunk gaps, 0 ≤ j < 1 (with -stream)")
	underrun := fs.Float64("underrun", 0.05, "per-chunk probability of an underrun backlog burst (with -stream)")
	abandonRate := fs.Float64("abandon-rate", 0, "probability a client stalls or abandons mid-feed, leaving its session to the watchdog (with -stream)")
	idleTimeout := fs.Duration("idle-timeout", 0, "override the lifecycle watchdog's idle bound (0 = derive from the arrival model; with -stream)")
	loss := fs.Float64("loss", 0, "per-frame probability a framed chunk is lost in flight, enabling the lossy framed transport (with -stream)")
	dup := fs.Float64("dup", 0, "per-frame probability a framed chunk is duplicated in flight (with -stream)")
	reorder := fs.Float64("reorder", 0, "per-frame probability a framed chunk is delivered out of order (with -stream)")
	corrupt := fs.Float64("corrupt", 0, "per-frame probability a framed chunk is corrupted in flight and rejected by CRC (with -stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqs := workload(*sessions)

	if (*loss > 0 || *dup > 0 || *reorder > 0 || *corrupt > 0) && !*stream {
		return errors.New("-loss/-dup/-reorder/-corrupt model the framed streaming transport and require -stream")
	}

	if *stream {
		return runStreamDemo(ctx, w, reqs, *workers, streamOpts{
			pace:         *streamPace,
			chunkMS:      *chunkMS,
			jitter:       *jitter,
			underrun:     *underrun,
			abandonRate:  *abandonRate,
			idleTimeout:  *idleTimeout,
			drainTimeout: *drainTimeout,
			loss:         *loss,
			dup:          *dup,
			reorder:      *reorder,
			corrupt:      *corrupt,
		})
	}

	fmt.Fprintf(w, "piano-serve: %d sessions, %d cores\n\n", len(reqs), runtime.GOMAXPROCS(0))

	// Reference pass: the classic serial path, one Deployment per pairing.
	// An interrupt truncates the workload so the service pass compares
	// against exactly the sessions that have references.
	serial := make([]*piano.Decision, 0, len(reqs))
	serialStart := time.Now()
	for _, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		cfg := piano.DefaultConfig()
		cfg.Seed = req.Seed
		dep, err := piano.NewDeployment(cfg, req.Auth, req.Vouch)
		if err != nil {
			return err
		}
		dec, err := dep.Authenticate()
		if err != nil {
			return err
		}
		serial = append(serial, dec)
	}
	serialDur := time.Since(serialStart)
	if len(serial) < len(reqs) {
		fmt.Fprintf(w, "interrupted: %d/%d serial sessions completed; skipping the service pass\n",
			len(serial), len(reqs))
		return nil
	}

	if *chaos {
		faultinject.Enable(*chaosSeed)
		defer faultinject.Disable()
		faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
			Action: faultinject.ActDelay, Delay: 2 * time.Millisecond, Prob: 0.3,
		})
		faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
			Action: faultinject.ActPanic, Prob: 0.2,
		})
		faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
			Action: faultinject.ActDelay, Delay: 200 * time.Microsecond, Prob: 0.01, Skip: 10,
		})
		fmt.Fprintf(w, "chaos: fault injection armed (seed %d): admission stalls, session panics, slow scans\n\n", *chaosSeed)
	}

	// Service pass: same sessions, all in flight at once, each under the
	// process context so SIGINT/SIGTERM cancels them cooperatively.
	svcCfg := piano.DefaultServiceConfig()
	svcCfg.Workers = *workers
	svcCfg.MaxSessions = len(reqs)
	svc, err := piano.NewService(svcCfg)
	if err != nil {
		return err
	}

	batched := make([]*piano.Decision, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	svcStart := time.Now()
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batched[i], errs[i] = svc.AuthenticateContext(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	svcDur := time.Since(svcStart)

	// Graceful shutdown: Close stops admission and drains whatever is
	// still in flight; the drain itself is bounded by -drain-timeout. The
	// drain is its own measured window — the burst stats above must never
	// absorb drain time, least of all a deadline that expired early.
	drainStart := time.Now()
	drained := make(chan struct{})
	go func() {
		svc.Close()
		close(drained)
	}()
	drainedOK := true
	select {
	case <-drained:
	case <-time.After(*drainTimeout):
		drainedOK = false
	}
	drainDur := time.Since(drainStart)
	if drainedOK {
		fmt.Fprintf(w, "drain: quiesced in %.1f ms (budget %v)\n", drainDur.Seconds()*1e3, *drainTimeout)
	} else {
		fmt.Fprintf(w, "drain: budget %v exhausted with sessions still in flight; stats cover the burst window only\n", *drainTimeout)
	}

	interrupted := ctx.Err() != nil
	shed := map[string]int{}
	granted, completed := 0, 0
	for i, dec := range batched {
		if errs[i] != nil {
			if !interrupted && !*chaos {
				return errs[i]
			}
			shed[shedCategory(errs[i])]++
			continue
		}
		ref := serial[i]
		if dec.Granted != ref.Granted || dec.Reason != ref.Reason ||
			math.Float64bits(dec.DistanceM) != math.Float64bits(ref.DistanceM) {
			return fmt.Errorf("session %d: service %+v diverged from serial %+v", i, dec, ref)
		}
		completed++
		if dec.Granted {
			granted++
		}
		fmt.Fprintf(w, "  session %2d: %-45s", i, dec.Reason)
		if dec.DistanceM != 0 {
			fmt.Fprintf(w, " (%.2f m)", dec.DistanceM)
		}
		fmt.Fprintln(w)
	}

	printShed(w, shed, len(reqs), completed)
	if interrupted {
		fmt.Fprintf(w, "interrupted: admission stopped, %d in-flight sessions drained\n", completed)
		return nil
	}

	// Rates are computed over the sessions that actually completed inside
	// the burst window (svcDur ends at the last Authenticate return, before
	// the drain starts), so a chaos run or an early-expiring drain budget
	// can never inflate — or dilute — the throughput figure.
	serialRate := float64(len(reqs)) / serialDur.Seconds()
	svcRate := float64(completed) / svcDur.Seconds()
	fmt.Fprintf(w, "\n%d/%d granted; every completed session bit-identical to its serial run\n", granted, completed)
	fmt.Fprintf(w, "serial loop:        %8.1f ms total, %6.2f sessions/s\n",
		serialDur.Seconds()*1e3, serialRate)
	fmt.Fprintf(w, "batched service:    %8.1f ms burst, %6.2f sessions/s over %d completed (%.2fx)\n",
		svcDur.Seconds()*1e3, svcRate, completed, svcRate/serialRate)
	fmt.Fprintln(w, "\n(the speedup scales with cores: sessions overlap through the shared")
	fmt.Fprintln(w, " worker pool, so a 1-core machine shows ~1x and an 8-core machine")
	fmt.Fprintln(w, " approaches the core count; see PERFORMANCE.md)")
	return nil
}
